module sbmlcompose

go 1.24
