module sbmlcompose

go 1.24

// x/tools is vendored (vendor/golang.org/x/tools) so the sbmlvet
// analyzer suite builds hermetically: the subset is exactly the
// go/analysis + unitchecker closure the Go toolchain itself vendors
// for cmd/vet, copied at the same pinned version.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
