package sbmlcompose

// Figure 9 measures speed; this file checks the correctness side of the
// same sweep: every one of the 17×17 annotated-model pairs must compose
// into a valid model under both engines, and the two engines must agree on
// the merged species count (ids aside) on every pair — not just the
// adjacent pairs the integration test samples.

import (
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/core"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/semanticsbml"
)

func TestFigure9SweepValidity(t *testing.T) {
	if testing.Short() {
		t.Skip("full 17×17 sweep with per-run baseline DB loads")
	}
	models := biomodels.Annotated17()
	merger := semanticsbml.NewMerger() // one load; validity is per-pair identical
	for i, a := range models {
		for j, b := range models {
			ours, err := core.Compose(a, b, core.Options{})
			if err != nil {
				t.Fatalf("pair %d×%d: compose: %v", i, j, err)
			}
			if err := sbml.Check(ours.Model); err != nil {
				t.Fatalf("pair %d×%d: composed model invalid: %v", i, j, err)
			}
			theirs, err := merger.MergeLoaded(a, b)
			if err != nil {
				t.Fatalf("pair %d×%d: baseline: %v", i, j, err)
			}
			if err := sbml.Check(theirs.Model); err != nil {
				t.Fatalf("pair %d×%d: baseline model invalid: %v", i, j, err)
			}
			if len(ours.Model.Species) != len(theirs.Model.Species) {
				t.Errorf("pair %d×%d: species disagree: ours %d, baseline %d",
					i, j, len(ours.Model.Species), len(theirs.Model.Species))
			}
		}
	}
}
