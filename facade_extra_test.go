package sbmlcompose

import (
	"testing"
)

func TestFacadeMatchModels(t *testing.T) {
	a, err := ParseModelString(modelA) // A → B
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseModelString(modelB) // B → C
	if err != nil {
		t.Fatal(err)
	}
	matches, err := MatchModels(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shared: compartment "cell" and species "B".
	got := make(map[string]string, len(matches))
	for _, m := range matches {
		got[m.First] = m.Second
	}
	if got["cell"] != "cell" || got["B"] != "B" {
		t.Errorf("matches = %v", matches)
	}
	if len(matches) != 2 {
		t.Errorf("len(matches) = %d, want 2", len(matches))
	}
	// Matching must not mutate inputs.
	if len(a.Species) != 2 || len(b.Species) != 2 {
		t.Error("MatchModels mutated inputs")
	}
}

func TestFacadeDecompose(t *testing.T) {
	a, err := ParseModelString(modelA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseModelString(modelB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compose(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A→B→C is one connected chain: decomposition keeps it whole.
	parts, err := Decompose(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Fatalf("connected chain split into %d parts", len(parts))
	}
	// Break the chain and decompose again.
	res.Model.Reactions = res.Model.Reactions[:1] // keep only A→B
	parts, err = Decompose(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 { // {A,B} chain + isolated C
		t.Fatalf("parts = %d, want 2", len(parts))
	}
	for _, p := range parts {
		if err := Validate(p); err != nil {
			t.Errorf("part %s invalid: %v", p.ID, err)
		}
	}
	// Round trip: recompose restores counts.
	back, err := ComposeAll(parts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Model.Species) != 3 || len(back.Model.Reactions) != 1 {
		t.Errorf("recomposed = %d species %d reactions", len(back.Model.Species), len(back.Model.Reactions))
	}
}
