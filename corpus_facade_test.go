package sbmlcompose

// Facade coverage for the corpus subsystem and the engine-holding
// simulation path.

import (
	"testing"

	"sbmlcompose/internal/biomodels"
)

func TestFacadeCorpusDefaultsAndSearch(t *testing.T) {
	c := NewCorpus(nil)
	models := facadeBatch(6)
	for _, m := range models {
		if _, err := c.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 6 {
		t.Fatalf("Len = %d, want 6", c.Len())
	}
	// The default synonym table must have been resolved: a clone query
	// must rank its original first with heavy-semantics evidence.
	hits, err := c.Search(models[2].Clone(), SearchOptions{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].ModelID != models[2].ID {
		t.Fatalf("top hit = %+v, want %s", hits, models[2].ID)
	}
	res, err := c.ComposeWith(hits[0].ModelID, models[3])
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Model); err != nil {
		t.Fatalf("composed model invalid: %v", err)
	}
}

func TestFacadeEngineMatchesOneShots(t *testing.T) {
	m := biomodels.Generate(biomodels.Config{
		ID: "engfacade", Nodes: 12, Edges: 16, Seed: 451, VocabularySize: 60, Decorate: true,
	})
	eng, err := CompileEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	opts := SimOptions{T0: 0, T1: 1, Step: 0.05, Seed: 11}
	want, err := SimulateODE(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.ODE(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatal("engine ODE trace length differs from one-shot")
	}
	for i := range want.Values {
		for j := range want.Values[i] {
			if got.Values[i][j] != want.Values[i][j] {
				t.Fatal("engine ODE trace differs from one-shot")
			}
		}
	}

	f, err := ParseFormula("G({" + m.Species[0].ID + " >= 0})")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := CheckTrace(got, f)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := CheckProperty(m, "G({"+m.Species[0].ID+" >= 0})", opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok != direct {
		t.Fatalf("engine-held check = %v, one-shot = %v", ok, direct)
	}
}
