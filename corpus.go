package sbmlcompose

import (
	corpuspkg "sbmlcompose/internal/corpus"
	"sbmlcompose/internal/mc2"
	"sbmlcompose/internal/sim"
	"sbmlcompose/internal/synonym"
)

// This file is the facade over the repository subsystem (internal/corpus):
// a concurrent, sharded in-memory model repository with scored top-K
// matching — the paper's motivating scenario of querying a curated model
// collection for composition partners — plus the engine-holding simulation
// path that lets repeated requests against the same model pay compilation
// once.

// Corpus is a sharded in-memory model repository. Models are compiled on
// Add and their match keys (canonical-synonym ids, MathML patterns, unit
// vectors) posted into inverted indexes, so Search retrieves candidates by
// shared keys instead of scanning the whole corpus pairwise; candidates
// are scored by greedy maximum-weight assignment over tiered shared-key
// evidence and ranked top-K. All methods are safe for concurrent use, and
// Search results are identical at any shard or worker count.
type Corpus = corpuspkg.Corpus

// CorpusOptions configures a Corpus: shard count, search worker pool and
// the match options every stored model is compiled under.
type CorpusOptions = corpuspkg.Options

// SearchOptions configures one Corpus.Search call: TopK, the per-evidence
// tier cutoff and the per-hit minimum score.
type SearchOptions = corpuspkg.SearchOptions

// Hit is one ranked search result with per-component match evidence.
type Hit = corpuspkg.Hit

// CompiledQuery is a query model's derived match state — canonical bytes
// plus tiered component keys — compiled once with Corpus.CompileQuery and
// reusable across Corpus.SearchCompiled / SearchCompiledContext calls.
// Rankings are identical to Search on the original model; only the
// per-call parse and key derivation are skipped.
type CompiledQuery = corpuspkg.CompiledQuery

// MatchEvidence is one component correspondence supporting a Hit.
type MatchEvidence = corpuspkg.Evidence

// Sentinel corpus errors, matchable with errors.Is on anything a Corpus
// method returns.
var (
	// ErrModelNotFound wraps every "no such model" failure.
	ErrModelNotFound = corpuspkg.ErrNotFound
	// ErrDuplicateModel wraps Corpus.Add failures on an id already stored.
	ErrDuplicateModel = corpuspkg.ErrDuplicate
	// ErrPersistFailed wraps corpus mutations that failed in the durable
	// store (WAL append, snapshot write) rather than on the model itself —
	// a server-side fault, not a bad request.
	ErrPersistFailed = corpuspkg.ErrPersist
)

// NewCorpus returns an empty model repository. A nil opts (or zero-valued
// match options) means heavy semantics with the built-in synonym table, 4
// shards and GOMAXPROCS search workers.
func NewCorpus(opts *CorpusOptions) *Corpus {
	o := CorpusOptions{}
	if opts != nil {
		o = *opts
	}
	if o.Match.Synonyms == nil && o.Match.Semantics == HeavySemantics {
		o.Match.Synonyms = synonym.Builtin()
	}
	return corpuspkg.New(o)
}

// Engine is a compiled simulation engine: the model's symbols resolved to
// dense slots, every expression compiled to a stack program, stoichiometry
// precomputed. An Engine is immutable and safe for concurrent use; compile
// once and reuse it across runs to amortize compilation (SimulateODE and
// SimulateSSA recompile per call, which is wasteful for repeated requests
// against the same model — the corpus caches one Engine per stored model
// for exactly this reason).
type Engine = sim.Engine

// CompileEngine compiles the model for repeated simulation. The returned
// engine's ODE, SSA and EnsembleSSA methods accept the same SimOptions as
// the facade one-shots and produce bitwise-identical traces.
func CompileEngine(m *Model) (*Engine, error) {
	return sim.Compile(m)
}

// Formula is a parsed temporal-logic property (mc2 syntax).
type Formula = mc2.Formula

// ParseFormula parses an mc2 temporal-logic formula, e.g.
// "G({A >= 0}) & F({B > 0.5})". Parse once and reuse the formula across
// traces.
func ParseFormula(src string) (Formula, error) {
	return mc2.Parse(src)
}

// CheckTrace evaluates a parsed formula over a simulation trace. Together
// with CompileEngine this is the engine-holding form of CheckProperty:
// compile the model once, simulate per request, check per request.
func CheckTrace(tr *Trace, f Formula) (bool, error) {
	return mc2.Check(tr, f)
}
