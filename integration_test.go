package sbmlcompose

// Integration tests spanning the whole pipeline: corpus generation →
// composition → the four §4.1 evaluation methods (textual comparison,
// simulation comparison, residual sum of squares, model checking), plus the
// baseline cross-check.

import (
	"strings"
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/core"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/semanticsbml"
	"sbmlcompose/internal/sim"
	"sbmlcompose/internal/trace"
)

// TestComposedEqualsExpected411 is the §4.1.1 check: composing a model with
// a subset of itself must reproduce the original, verified by the
// order-aware textual comparison.
func TestComposedEqualsExpected411(t *testing.T) {
	full := biomodels.Generate(biomodels.Config{ID: "full", Nodes: 20, Edges: 30, Seed: 11, Decorate: true})
	// The subset model: same generator, same seed, smaller edge budget —
	// its reactions are a prefix-compatible subnetwork by construction.
	subset := biomodels.Generate(biomodels.Config{ID: "full", Nodes: 20, Edges: 30, Seed: 11, Decorate: true})
	subset.Reactions = subset.Reactions[:len(subset.Reactions)/2]

	res, err := core.Compose(full, subset, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	diffs := Diff(full, res.Model)
	if len(diffs) != 0 {
		for _, d := range diffs {
			t.Logf("diff: %s", d)
		}
		t.Fatalf("full + subset != full (%d differences)", len(diffs))
	}
}

// TestTraceEquivalence413 is the §4.1.3 check: the composed model's
// simulation matches the expected model's with RSS ≈ 0 for all species.
func TestTraceEquivalence413(t *testing.T) {
	expected := biomodels.Generate(biomodels.Config{ID: "m", Nodes: 8, Edges: 12, Seed: 21})
	clone := expected.Clone()
	res, err := core.Compose(expected, clone, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{T0: 0, T1: 5, Step: 0.05}
	trExpected, err := sim.SimulateODE(expected, opts)
	if err != nil {
		t.Fatal(err)
	}
	trComposed, err := sim.SimulateODE(res.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	per, err := trace.RSS(trExpected, trComposed, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, rss := range per {
		if rss > 1e-12 {
			t.Errorf("RSS[%s] = %g, want ≈0", name, rss)
		}
	}
}

// TestModelChecking414 is the §4.1.4 check: temporal properties that hold
// on the expected model hold on the composed model.
func TestModelChecking414(t *testing.T) {
	a, err := ParseModelString(modelA) // A →(0.5) B
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseModelString(modelB) // B →(0.25) C
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compose(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := SimOptions{T0: 0, T1: 30, Step: 0.1}
	for _, prop := range []string{
		"G({A >= 0} & {B >= 0} & {C >= 0})", // non-negativity
		"F({C > 0.9})",                      // mass eventually reaches C
		"G({A + B + C <= 1.000001})",        // conservation
		"{C < 0.5} U {B > 0.1}",             // B rises before C accumulates
	} {
		ok, err := CheckProperty(res.Model, prop, opts)
		if err != nil {
			t.Fatalf("%s: %v", prop, err)
		}
		if !ok {
			t.Errorf("property %q fails on composed model", prop)
		}
	}
}

// TestComposerAgreesWithBaseline cross-checks the two engines on the
// annotated collection: for models the baseline can handle, both must
// produce the same species set (ids aside).
func TestComposerAgreesWithBaseline(t *testing.T) {
	models := biomodels.Annotated17()
	for i := 0; i < len(models)-1; i++ {
		a, b := models[i], models[i+1]
		ours, err := core.Compose(a, b, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		theirs, err := semanticsbml.Merge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ourNames := speciesNameSet(ours.Model)
		theirNames := speciesNameSet(theirs.Model)
		if len(ourNames) != len(theirNames) {
			t.Errorf("pair %d: species %d vs baseline %d", i, len(ourNames), len(theirNames))
			continue
		}
		for n := range ourNames {
			if !theirNames[n] {
				t.Errorf("pair %d: baseline missing species %q", i, n)
			}
		}
	}
}

func speciesNameSet(m *sbml.Model) map[string]bool {
	out := make(map[string]bool, len(m.Species))
	for _, s := range m.Species {
		key := s.Name
		if key == "" {
			key = s.ID
		}
		out[strings.ToLower(key)] = true
	}
	return out
}

// TestFigure8SweepSlice runs a slice of the Figure 8 sweep end to end:
// every composition must succeed and validate.
func TestFigure8SweepSlice(t *testing.T) {
	models := biomodels.Corpus187()
	stride := 23 // prime stride samples the size spectrum
	count := 0
	for i := 0; i < len(models); i += stride {
		for j := i; j < len(models); j += stride {
			res, err := core.Compose(models[i], models[j], core.Options{})
			if err != nil {
				t.Fatalf("compose %d×%d: %v", i, j, err)
			}
			if err := sbml.Check(res.Model); err != nil {
				t.Fatalf("compose %d×%d invalid: %v", i, j, err)
			}
			count++
		}
	}
	if count < 30 {
		t.Fatalf("sweep too small: %d pairs", count)
	}
}

// TestOrderOfMagnitudeGap asserts the Figure 9 headline on a small sample:
// SBMLCompose is at least 10× faster than the baseline on the annotated
// collection.
func TestOrderOfMagnitudeGap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	models := biomodels.Annotated17()
	a, b := models[3], models[8]
	// Warm up both paths once.
	if _, err := core.Compose(a, b, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := semanticsbml.Merge(a, b); err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	var ours, theirs float64
	for i := 0; i < rounds; i++ {
		res, err := core.Compose(a, b, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ours += res.Stats.Duration.Seconds()
		bres, err := semanticsbml.Merge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		theirs += bres.Duration.Seconds()
	}
	if theirs < 10*ours {
		t.Errorf("expected ≥10× gap: ours %.3gs, baseline %.3gs (%.1f×)",
			ours/rounds, theirs/rounds, theirs/ours)
	}
}
