package sbmlcompose

// Benchmark harness for the paper's evaluation (§4). One benchmark per
// figure plus the ablations DESIGN.md calls out:
//
//	BenchmarkFigure8Compose       — pairwise composition time vs model size
//	                                across the 187-model corpus (Figure 8)
//	BenchmarkFigure9SBMLCompose   — all pairs of the 17 annotated models,
//	                                our composer (Figure 9, upper series)
//	BenchmarkFigure9SemanticSBML  — same pairs, the semanticSBML baseline
//	                                with its per-run DB load (Figure 9,
//	                                lower series)
//	BenchmarkSemanticsLevels      — heavy vs light vs none (§5 future work)
//	BenchmarkIndexStructures      — hash vs linear vs sorted vs suffix tree
//	                                (§5 items 3 and 7)
//	BenchmarkMathPatternVsExact   — Figure 7 pattern matching vs exact tree
//	                                equality on commuted kinetic laws
//
// cmd/benchfig regenerates the actual figure series (log10 time vs size).

import (
	"fmt"
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/core"
	"sbmlcompose/internal/index"
	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/semanticsbml"
	"sbmlcompose/internal/xmlmerge"
)

var (
	corpusOnce    []*sbml.Model
	annotatedOnce []*sbml.Model
)

func corpus() []*sbml.Model {
	if corpusOnce == nil {
		corpusOnce = biomodels.Corpus187()
	}
	return corpusOnce
}

func annotated() []*sbml.Model {
	if annotatedOnce == nil {
		annotatedOnce = biomodels.Annotated17()
	}
	return annotatedOnce
}

// BenchmarkFigure8Compose measures composition across corpus size buckets:
// each sub-benchmark composes a model with its size neighbour, in ascending
// order of size exactly as the paper's sweep ran.
func BenchmarkFigure8Compose(b *testing.B) {
	models := corpus()
	for _, bucket := range []struct {
		name string
		idx  int
	}{
		{"size~0", 5},
		{"size~30", 60},
		{"size~120", 110},
		{"size~250", 150},
		{"size~500", 185},
	} {
		m1 := models[bucket.idx]
		m2 := models[bucket.idx+1]
		b.Run(fmt.Sprintf("%s/%dx%d", bucket.name, m1.Size(), m2.Size()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compose(m1, m2, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure9SBMLCompose runs the full 17×17 pairwise sweep of the
// annotated collection with SBMLCompose.
func BenchmarkFigure9SBMLCompose(b *testing.B) {
	models := annotated()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m1 := range models {
			for _, m2 := range models {
				if _, err := core.Compose(m1, m2, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkFigure9SemanticSBML runs the same sweep through the baseline,
// including its per-run annotation-database load (the measured behaviour of
// the real tool).
func BenchmarkFigure9SemanticSBML(b *testing.B) {
	models := annotated()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m1 := range models {
			for _, m2 := range models {
				if _, err := semanticsbml.Merge(m1, m2); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkFigure9SemanticSBMLPreloaded isolates the merge passes from the
// database load, quantifying how much of the baseline's cost is the load
// itself.
func BenchmarkFigure9SemanticSBMLPreloaded(b *testing.B) {
	models := annotated()
	merger := semanticsbml.NewMerger()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m1 := range models {
			for _, m2 := range models {
				if _, err := merger.MergeLoaded(m1, m2); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkSemanticsLevels ablates the matcher depth on a mid-size corpus
// pair.
func BenchmarkSemanticsLevels(b *testing.B) {
	models := corpus()
	m1, m2 := models[120], models[121]
	for _, level := range []core.SemanticsLevel{core.HeavySemantics, core.LightSemantics, core.NoSemantics} {
		b.Run(level.String(), func(b *testing.B) {
			opts := core.Options{Semantics: level}
			if level == core.HeavySemantics {
				opts.Synonyms = BuiltinSynonyms()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compose(m1, m2, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexStructures ablates the Figure 5 component index on a large
// corpus pair.
func BenchmarkIndexStructures(b *testing.B) {
	models := corpus()
	m1, m2 := models[180], models[181]
	for _, kind := range []index.Kind{index.Hash, index.Linear, index.Sorted, index.SuffixTree} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compose(m1, m2, core.Options{Index: kind}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMathPatternVsExact compares the Figure 7 pattern key against
// exact structural equality on a realistic kinetic law.
func BenchmarkMathPatternVsExact(b *testing.B) {
	law := mathml.MustParseInfix("k1*A*B - k2*C + Vmax*S/(Km + S)")
	commuted := mathml.MustParseInfix("B*A*k1 - k2*C + S*Vmax/(S + Km)")
	b.Run("pattern", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !mathml.PatternEqual(law, commuted, nil) {
				b.Fatal("patterns should match")
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if mathml.Equal(law, commuted) {
				b.Fatal("exact equality should fail on commuted input")
			}
		}
	})
}

// BenchmarkGenericVsSemantic compares the §5 future-work "generic method
// that requires no semantics" (generic XML merge) against the semantic
// composer on a mid-size corpus pair. The generic method is faster but
// blind to synonyms, commuted maths and units (see internal/xmlmerge
// tests).
func BenchmarkGenericVsSemantic(b *testing.B) {
	models := corpus()
	m1, m2 := models[120], models[121]
	x1 := sbml.WrapModel(m1).ToXML()
	x2 := sbml.WrapModel(m2).ToXML()
	b.Run("generic-xml", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmlmerge.Merge(x1, x2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("semantic-heavy", func(b *testing.B) {
		opts := core.Options{Synonyms: BuiltinSynonyms()}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Compose(m1, m2, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkComposeAllIncremental measures the incremental assembly workflow
// over ten corpus parts.
func BenchmarkComposeAllIncremental(b *testing.B) {
	models := corpus()[40:50]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ComposeAll(models, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// composeAllBatch builds an order-insensitive batch for the engine
// comparison: no merge order ever triggers a rename, so all three
// strategies must produce byte-identical models.
func composeAllBatch(n, nodes, edges int) []*sbml.Model {
	return biomodels.NamespacedBatch(n, nodes, edges, 9100)
}

// seedLeftFold is the pre-engine ComposeAll: re-Compose the accumulator
// from scratch at every step, re-cloning it and rebuilding every index,
// synonym expansion, math pattern and unit vector each time. Kept inline as
// the benchmark baseline the compiled engine is measured against.
func seedLeftFold(models []*sbml.Model, opts core.Options) (*sbml.Model, error) {
	acc := models[0].Clone()
	for _, m := range models[1:] {
		res, err := core.Compose(acc, m, opts)
		if err != nil {
			return nil, err
		}
		acc = res.Model
	}
	return acc, nil
}

// BenchmarkComposeAll compares batch-assembly strategies on 12 mid-size
// synthetic models: the seed's left fold, the compiled-accumulator
// incremental fold, and the parallel balanced binary reduction. The three
// must agree byte for byte before timing starts.
func BenchmarkComposeAll(b *testing.B) {
	models := composeAllBatch(12, 60, 90)
	opts := core.Options{Synonyms: BuiltinSynonyms()}
	par := opts
	par.Parallel = true

	seedModel, err := seedLeftFold(models, opts)
	if err != nil {
		b.Fatal(err)
	}
	incRes, err := core.ComposeAll(models, opts)
	if err != nil {
		b.Fatal(err)
	}
	parRes, err := core.ComposeAll(models, par)
	if err != nil {
		b.Fatal(err)
	}
	want := CanonicalXML(seedModel)
	if CanonicalXML(incRes.Model) != want {
		b.Fatal("incremental fold diverged from seed left fold")
	}
	if CanonicalXML(parRes.Model) != want {
		b.Fatal("parallel reduction diverged from seed left fold")
	}

	b.Run("seed-left-fold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := seedLeftFold(models, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ComposeAll(models, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ComposeAll(models, par); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkComposerStreaming isolates the marginal cost of folding one more
// model into an already-large compiled accumulator. The compiled indexes
// remove the accumulator re-clone and re-keying from each step; a linear
// initial-value collection scan over the accumulator remains, so Add is
// cheap-linear in the accumulator but dominated by the new model's size.
func BenchmarkComposerStreaming(b *testing.B) {
	models := composeAllBatch(9, 60, 90)
	base, next := models[:8], models[8]
	opts := core.Options{Synonyms: BuiltinSynonyms()}

	accRes, err := core.ComposeAll(base, opts)
	if err != nil {
		b.Fatal(err)
	}
	acc := accRes.Model

	b.Run("compiled-add", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Reseed an already-compiled accumulator outside the timer so
			// every iteration measures the same marginal operation the
			// recompose baseline performs: genuinely adding `next` once.
			b.StopTimer()
			cm, err := core.Compile(acc, opts)
			if err != nil {
				b.Fatal(err)
			}
			comp := core.NewComposerFrom(cm)
			b.StartTimer()
			if err := comp.Add(next); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompose", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Compose(acc, next, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
