package sbmlcompose

// This file is the context-aware client facade — the package's primary
// API since the v1 redesign. A Client bundles the composition/matching
// configuration (functional options over the former mutable *Options
// struct) with a small LRU of compiled simulation engines, and every
// potentially long-running method takes a context.Context first so callers
// can cancel, deadline, or tie work to an HTTP request's lifetime:
//
//	cli := sbmlcompose.New(
//		sbmlcompose.WithSynonyms(table),
//		sbmlcompose.WithParallel(8),
//	)
//	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
//	defer cancel()
//	res, err := cli.ComposeAll(ctx, models)
//
// Cancellation is honored at loop granularity end-to-end: composition
// checks between component families and reduction-tree nodes, simulation
// between integrator steps and stochastic events, probability estimation
// between and inside runs. A cancelled call drains any worker pool it
// started, returns the context's error, and never exposes a half-mutated
// result. An uncancelled context always produces results byte-identical
// to the legacy package-level functions, which remain supported as thin
// context.Background() wrappers over a default client.

import (
	"context"
	"fmt"
	"io"

	"sbmlcompose/internal/core"
	"sbmlcompose/internal/lru"
	"sbmlcompose/internal/mc2"
	"sbmlcompose/internal/sim"
	"sbmlcompose/internal/synonym"
)

// SemanticsLevel selects how much meaning the matcher uses; see
// HeavySemantics, LightSemantics and NoSemantics.
type SemanticsLevel = core.SemanticsLevel

// Option configures a Client; see New.
type Option func(*clientConfig)

type clientConfig struct {
	match       core.Options
	engineCache int
	// synonymsSet records that WithSynonyms was called, so an explicit
	// WithSynonyms(nil) suppresses the built-in table instead of being
	// indistinguishable from "not configured".
	synonymsSet bool
}

// WithSemantics selects the matching depth (HeavySemantics is the
// default: synonym tables, math patterns and unit conversion).
func WithSemantics(level SemanticsLevel) Option {
	return func(c *clientConfig) { c.match.Semantics = level }
}

// WithSynonyms supplies the synonym table used under heavy semantics. By
// default a client uses the built-in biological table; an explicit
// WithSynonyms(nil) suppresses it, falling back to exact name matching.
func WithSynonyms(t *SynonymTable) Option {
	return func(c *clientConfig) {
		c.match.Synonyms = t
		c.synonymsSet = true
	}
}

// WithParallel switches ComposeAll to the balanced-binary-reduction merge
// on a pool of `workers` goroutines (0 or less means GOMAXPROCS). See
// Options.Parallel for the determinism contract.
func WithParallel(workers int) Option {
	return func(c *clientConfig) {
		c.match.Parallel = true
		c.match.Workers = workers
	}
}

// WithWorkers caps worker pools without enabling the parallel composition
// mode (it sizes Options.Workers only).
func WithWorkers(n int) Option {
	return func(c *clientConfig) { c.match.Workers = n }
}

// WithLog mirrors composition warnings to w as they are produced.
func WithLog(w io.Writer) Option {
	return func(c *clientConfig) { c.match.Log = w }
}

// WithMatchOptions replaces the whole composition/matching configuration
// at once — the escape hatch for callers (CLIs, tests) that already build
// an Options value. Later options still apply on top. The legacy
// defaulting applies to the replaced value: a nil Synonyms under heavy
// semantics gets the built-in table, exactly like Compose(a, b, &opts);
// follow with WithSynonyms(nil) to suppress that.
func WithMatchOptions(o Options) Option {
	return func(c *clientConfig) {
		c.match = o
		c.synonymsSet = false
	}
}

// WithEngineCache bounds the client's LRU of compiled simulation engines,
// keyed by canonical model bytes: repeated SimulateODE/SimulateSSA/
// CheckProperty/EstimateProbability calls against the same model pay
// compilation once (the corpus keeps one engine per stored model for the
// same reason). 0 keeps the default of 16; negative disables caching.
func WithEngineCache(n int) Option {
	return func(c *clientConfig) { c.engineCache = n }
}

// Client is the context-aware facade over parsing, composition,
// simulation and model checking. It is immutable after New and safe for
// concurrent use; its stateless operations share only the configured
// options and the engine LRU. Corpus and CorpusStore are the stateful
// session counterparts (NewCorpus, OpenCorpus).
type Client struct {
	opts core.Options
	// engines is the compiled-engine LRU, keyed by canonical model
	// bytes; nil when caching is disabled. Engines are immutable and
	// concurrency-safe, so a hit can be shared by any number of
	// simultaneous simulations.
	engines *lru.Cache[*Engine]
}

// New returns a Client configured by the given options. With no options
// it composes with heavy semantics, the built-in synonym table, and a
// 16-entry compiled-engine LRU — the same defaults the package-level
// functions use.
func New(opts ...Option) *Client {
	cfg := clientConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	// The built-in table is a default, not a mandate: an explicit
	// WithSynonyms(nil) keeps heavy semantics synonym-free. The
	// WithMatchOptions escape hatch deliberately keeps the legacy
	// resolveOptions defaulting (a nil table there gets the builtin,
	// exactly as Compose(a, b, &Options{}) always has).
	if !cfg.synonymsSet && cfg.match.Synonyms == nil && cfg.match.Semantics == core.HeavySemantics {
		cfg.match.Synonyms = synonym.Builtin()
	}
	n := cfg.engineCache
	if n == 0 {
		n = 16
	}
	c := &Client{opts: cfg.match}
	if n > 0 {
		c.engines = lru.New[*Engine](n)
	}
	return c
}

// defaultClient backs the package-level wrappers: the legacy functions
// are context.Background() delegations to it.
var defaultClient = New()

// Options returns the composition/matching options the client resolved
// from its functional options.
func (c *Client) Options() Options { return c.opts }

// --- parsing and serialization (stateless, never long-running) ---

// ParseModel reads an SBML document from r.
func (c *Client) ParseModel(r io.Reader) (*Model, error) { return ParseModel(r) }

// ParseModelString parses an in-memory SBML document.
func (c *Client) ParseModelString(s string) (*Model, error) { return ParseModelString(s) }

// ParseModelFile reads an SBML file.
func (c *Client) ParseModelFile(path string) (*Model, error) { return ParseModelFile(path) }

// WriteModel serializes the model as an SBML Level 2 document.
func (c *Client) WriteModel(m *Model, w io.Writer) error { return WriteModel(m, w) }

// WriteModelFile writes the model to a file.
func (c *Client) WriteModelFile(m *Model, path string) error { return WriteModelFile(m, path) }

// Validate checks the model's structural and referential integrity.
func (c *Client) Validate(m *Model) error { return Validate(m) }

// --- composition and matching ---

// Compose merges model b into a copy of model a under the client's
// options, checking ctx between component families. Neither input is
// modified; a cancelled compose returns ctx's error and no model.
func (c *Client) Compose(ctx context.Context, a, b *Model) (*Result, error) {
	return core.ComposeContext(ctx, a, b, c.opts)
}

// ComposeAll batch-composes the models — the sequential incremental fold,
// or the deterministic parallel reduction when the client was built
// WithParallel. ctx is checked between component families of every fold
// step and between reduction-tree nodes; a cancelled call drains its
// worker pool and returns ctx's error with no partial model.
func (c *Client) ComposeAll(ctx context.Context, models []*Model) (*Result, error) {
	return core.ComposeAllContext(ctx, models, c.opts)
}

// MatchModels computes the component correspondence between two models
// without producing a merged model, checking ctx like Compose.
func (c *Client) MatchModels(ctx context.Context, a, b *Model) ([]Match, error) {
	return core.MatchModelsContext(ctx, a, b, c.opts)
}

// Decompose splits a model into its weakly connected reaction
// subnetworks; see the package-level Decompose.
func (c *Client) Decompose(m *Model) ([]*Model, error) { return core.Decompose(m) }

// Compile precompiles a model for repeated or streaming composition under
// the client's options.
func (c *Client) Compile(m *Model) (*CompiledModel, error) { return core.Compile(m, c.opts) }

// NewComposer returns an empty streaming composer under the client's
// options. Feed it with AddContext to make each fold step cancellable; a
// step cancelled mid-mutation poisons the composer (ErrComposerPoisoned)
// rather than exposing a half-merged accumulator.
func (c *Client) NewComposer() *Composer { return core.NewComposer(c.opts) }

// NewCorpus returns an empty model repository session. A nil opts
// inherits the client's match options (so corpus entries are compiled and
// matched exactly as the client composes); a non-nil opts is used as
// given, with NewCorpus's usual defaulting.
func (c *Client) NewCorpus(opts *CorpusOptions) *Corpus {
	if opts == nil {
		return NewCorpus(&CorpusOptions{Match: c.opts})
	}
	return NewCorpus(opts)
}

// OpenCorpus opens (or creates) a durable corpus session in dir; a nil
// opts inherits the client's match options like NewCorpus.
func (c *Client) OpenCorpus(dir string, opts *StoreOptions) (*CorpusStore, error) {
	if opts == nil {
		return OpenCorpus(dir, &StoreOptions{Corpus: CorpusOptions{Match: c.opts}})
	}
	return OpenCorpus(dir, opts)
}

// OpenReplica opens a durable corpus session in dir (like OpenCorpus,
// inheriting the client's match options when opts is nil) and starts it
// as a read-only follower of the primary at primaryURL. The returned
// store serves reads immediately from its recovered state while the
// replica converges it with the primary's log; call Replica.Promote to
// take writes after a primary failure, and Replica.Stop before closing
// the store.
func (c *Client) OpenReplica(dir, primaryURL string, opts *StoreOptions) (*CorpusStore, *Replica, error) {
	st, err := c.OpenCorpus(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	rep, err := StartReplica(st, ReplicaOptions{PrimaryURL: primaryURL})
	if err != nil {
		_ = st.Close()
		return nil, nil, err
	}
	return st, rep, nil
}

// --- simulation and model checking (engine-cached hot path) ---

// engineFor returns a compiled engine for m through the client's LRU.
// Cached engines are compiled from a private clone, so later mutations of
// the caller's model cannot corrupt them; the cache key is the model's
// canonical serialization, so a mutated model simply misses.
func (c *Client) engineFor(m *Model) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("sbmlcompose: nil model")
	}
	if c.engines == nil {
		return sim.Compile(m)
	}
	key := CanonicalXML(m)
	if eng, ok := c.engines.Get(key); ok {
		return eng, nil
	}
	eng, err := sim.Compile(m.Clone())
	if err != nil {
		return nil, err
	}
	c.engines.Put(key, eng)
	return eng, nil
}

// SimulateODE integrates the model deterministically (RK4, or RKF45 when
// opts.Adaptive), checking ctx between output steps. The engine is served
// from the client's LRU, so repeated simulations of the same model pay
// compilation once; traces are bitwise identical to the uncached path.
func (c *Client) SimulateODE(ctx context.Context, m *Model, opts SimOptions) (*Trace, error) {
	eng, err := c.engineFor(m)
	if err != nil {
		return nil, err
	}
	return eng.ODECtx(ctx, opts)
}

// SimulateSSA runs Gillespie's direct method over molecule counts,
// checking ctx periodically inside the event loop; equal seeds reproduce
// exactly, cached or not.
func (c *Client) SimulateSSA(ctx context.Context, m *Model, opts SimOptions) (*Trace, error) {
	eng, err := c.engineFor(m)
	if err != nil {
		return nil, err
	}
	return eng.SSACtx(ctx, opts)
}

// SimulateEnsembleSSA averages `runs` stochastic trajectories with
// consecutive seeds across opts.Workers workers. ctx is checked between
// runs and inside each run; the mean is identical for every worker count.
func (c *Client) SimulateEnsembleSSA(ctx context.Context, m *Model, runs int, opts SimOptions) (*Trace, error) {
	eng, err := c.engineFor(m)
	if err != nil {
		return nil, err
	}
	return eng.EnsembleSSACtx(ctx, runs, opts)
}

// CheckProperty evaluates a temporal-logic formula (mc2 syntax) over a
// deterministic simulation of the model, checking ctx during the
// integration. The simulation engine comes from the client's LRU.
func (c *Client) CheckProperty(ctx context.Context, m *Model, formula string, opts SimOptions) (bool, error) {
	f, err := mc2.Parse(formula)
	if err != nil {
		return false, err
	}
	eng, err := c.engineFor(m)
	if err != nil {
		return false, err
	}
	tr, err := eng.ODECtx(ctx, opts)
	if err != nil {
		return false, err
	}
	return mc2.Check(tr, f)
}

// ProbabilityEstimate estimates the probability that a stochastic
// trajectory satisfies the formula over `runs` SSA simulations, with its
// 95% Wilson score interval. ctx is checked between and inside runs; a
// cancelled estimate returns ctx's error, never a partial fraction. The
// estimate is bit-identical to the legacy path at every worker count.
func (c *Client) ProbabilityEstimate(ctx context.Context, m *Model, formula string, runs int, opts SimOptions) (Estimate, error) {
	f, err := mc2.Parse(formula)
	if err != nil {
		return Estimate{}, err
	}
	eng, err := c.engineFor(m)
	if err != nil {
		return Estimate{}, err
	}
	return mc2.ProbabilityEngine(ctx, eng, f, runs, opts)
}

// EstimateProbability is ProbabilityEstimate reduced to the point
// estimate.
func (c *Client) EstimateProbability(ctx context.Context, m *Model, formula string, runs int, opts SimOptions) (float64, error) {
	est, err := c.ProbabilityEstimate(ctx, m, formula, runs, opts)
	if err != nil {
		return 0, err
	}
	return est.Probability, nil
}
