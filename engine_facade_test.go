package sbmlcompose

// Facade coverage for the compiled-model engine: Compile, the streaming
// Composer, and the parallel ComposeAll mode, all with the facade's
// default-synonym resolution.

import (
	"testing"

	"sbmlcompose/internal/biomodels"
)

func facadeBatch(n int) []*Model {
	models := make([]*Model, n)
	for i := range models {
		models[i] = biomodels.Generate(biomodels.Config{
			ID:             "fpart" + string(rune('a'+i)),
			Nodes:          10 + i,
			Edges:          14 + i,
			Seed:           int64(4200 + 7*i),
			VocabularySize: 50,
			Decorate:       true,
		})
	}
	return models
}

func TestFacadeComposerMatchesComposeAll(t *testing.T) {
	models := facadeBatch(5)
	batch, err := ComposeAll(models, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewComposer(nil)
	for _, m := range models {
		if err := c.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := CanonicalXML(c.Result().Model), CanonicalXML(batch.Model); got != want {
		t.Error("streaming Composer and ComposeAll disagree")
	}
	if err := Validate(c.Result().Model); err != nil {
		t.Errorf("streamed model invalid: %v", err)
	}
}

func TestFacadeCompileSeedsComposer(t *testing.T) {
	models := facadeBatch(3)
	cm, err := Compile(models[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewComposerFrom(cm)
	for _, m := range models[1:] {
		if err := c.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	// The default synonym table must have been resolved: composing the same
	// batch through the plain facade fold gives the same model.
	want, err := ComposeAll(models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalXML(c.Model()) != CanonicalXML(want.Model) {
		t.Error("Compile+Composer diverged from ComposeAll")
	}
}

func TestFacadeParallelComposeAll(t *testing.T) {
	models := facadeBatch(6)
	seq, err := ComposeAll(models, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ComposeAll(models, &Options{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(par.Model); err != nil {
		t.Fatalf("parallel model invalid: %v", err)
	}
	// Generated models share species and reaction structures; whatever the
	// merge order, the same duplicates must collapse.
	if seq.Model.ComponentCount() != par.Model.ComponentCount() {
		t.Errorf("component counts differ: sequential %d, parallel %d",
			seq.Model.ComponentCount(), par.Model.ComponentCount())
	}
	res2, err := ComposeAll(models, &Options{Parallel: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalXML(res2.Model) != CanonicalXML(par.Model) {
		t.Error("parallel composition not deterministic across worker counts")
	}
}
