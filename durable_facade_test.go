package sbmlcompose_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sbmlcompose"
	"sbmlcompose/internal/biomodels"
)

// TestOpenCorpusRoundTrip drives the durable facade the way an embedding
// application would: open, mutate, close, reopen, and require identical
// query results.
func TestOpenCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := sbmlcompose.OpenCorpus(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var models []*sbmlcompose.Model
	for i := 0; i < 5; i++ {
		m := biomodels.Generate(biomodels.Config{
			ID:    []string{"alpha", "beta", "gamma", "delta", "eps"}[i],
			Nodes: 8, Edges: 11, Seed: int64(9100 + i), VocabularySize: 50, Decorate: true,
		})
		models = append(models, m)
		if _, err := st.Corpus().Add(m); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := st.Corpus().Remove("beta"); err != nil || !ok {
		t.Fatalf("Remove: ok=%v err=%v", ok, err)
	}
	query := models[2].Clone()
	want, err := st.Corpus().Search(query, sbmlcompose.SearchOptions{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing again is a no-op; mutating afterwards is a persist error.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Corpus().Add(models[1]); !errors.Is(err, sbmlcompose.ErrPersistFailed) {
		t.Fatalf("Add after Close: %v", err)
	}

	st2, err := sbmlcompose.OpenCorpus(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Corpus().IDs(); !reflect.DeepEqual(got, []string{"alpha", "delta", "eps", "gamma"}) {
		t.Fatalf("recovered IDs = %v", got)
	}
	got, err := st2.Corpus().Search(query, sbmlcompose.SearchOptions{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered Search diverges:\n got %+v\nwant %+v", got, want)
	}
	if rs := st2.Stats(); rs.SnapshotModels != 4 {
		t.Fatalf("recovery stats = %+v, want 4 snapshot models", rs)
	}
}

// TestOpenCorpusCorruptSnapshotSentinel pins the facade sentinel for
// recovery refusal.
func TestOpenCorpusCorruptSnapshotSentinel(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "corpus.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := sbmlcompose.OpenCorpus(dir, nil)
	if !errors.Is(err, sbmlcompose.ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}
}
