package mathml

import (
	"math"
	"strings"
	"testing"
)

func env(vals map[string]float64) *MapEnv { return &MapEnv{Values: vals} }

func evalInfix(t *testing.T, src string, vals map[string]float64) float64 {
	t.Helper()
	e, err := ParseInfix(src)
	if err != nil {
		t.Fatalf("ParseInfix(%q): %v", src, err)
	}
	v, err := Eval(e, env(vals))
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestInfixArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		vals map[string]float64
		want float64
	}{
		{"1+2*3", nil, 7},
		{"(1+2)*3", nil, 9},
		{"2^3^2", nil, 512}, // right associative
		{"-2^2", nil, -4},   // unary minus binds looser than power
		{"10/4", nil, 2.5},
		{"k1*A", map[string]float64{"k1": 2, "A": 3.5}, 7},
		{"k1*A - k2*B", map[string]float64{"k1": 1, "A": 5, "k2": 2, "B": 2}, 1},
		{"Vmax*S/(Km+S)", map[string]float64{"Vmax": 10, "S": 5, "Km": 5}, 5},
		{"1e3 + 2.5e-1", nil, 1000.25},
		{"min(3, 1, 2)", nil, 1},
		{"max(3, 1, 2)", nil, 3},
		{"abs(-4)", nil, 4},
		{"floor(2.7) + ceiling(2.1)", nil, 5},
		{"exp(0) + ln(1)", nil, 1},
		{"log(100)", nil, 2},
		{"1 < 2", nil, 1},
		{"2 <= 1", nil, 0},
		{"1 == 1 && 2 != 3", nil, 1},
		{"0 || 1", nil, 1},
		{"!(1 > 2)", nil, 1},
		{"pi", nil, math.Pi},
		{"factorial(5)", nil, 120},
		{"gcd(12, 18)", nil, 6},
		{"lcm(4, 6)", nil, 12},
		{"root(2, 9)", nil, 3},
		{"sin(0) + cos(0)", nil, 1},
	}
	for _, tc := range cases {
		t.Run(tc.src, func(t *testing.T) {
			got := evalInfix(t, tc.src, tc.vals)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("eval(%q) = %v, want %v", tc.src, got, tc.want)
			}
		})
	}
}

func TestInfixErrors(t *testing.T) {
	bad := []string{"", "1 +", "(1", "a b", "1..2 +", "f(1,", "*3", "1 ? 2"}
	for _, src := range bad {
		if _, err := ParseInfix(src); err == nil {
			t.Errorf("ParseInfix(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []struct {
		src  string
		vals map[string]float64
	}{
		{"x + 1", nil},          // unbound
		{"1/0", nil},            // division by zero
		{"f(1)", nil},           // unknown function
		{"factorial(3.5)", nil}, // non-integer factorial
		{"factorial(-1)", nil},  // negative factorial
	}
	for _, tc := range cases {
		e, err := ParseInfix(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		if _, err := Eval(e, env(tc.vals)); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", tc.src)
		}
	}
}

func TestUserFunctionEval(t *testing.T) {
	e := MustParseInfix("mm(S, 10, 5)")
	fenv := &MapEnv{
		Values: map[string]float64{"S": 5},
		Functions: map[string]Lambda{
			"mm": {Params: []string{"s", "vmax", "km"}, Body: MustParseInfix("vmax*s/(km+s)")},
		},
	}
	v, err := Eval(e, fenv)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("mm(5,10,5) = %v, want 5", v)
	}
}

func TestRecursiveFunctionDetected(t *testing.T) {
	fenv := &MapEnv{
		Functions: map[string]Lambda{
			"f": {Params: []string{"x"}, Body: MustParseInfix("f(x)")},
		},
	}
	if _, err := Eval(MustParseInfix("f(1)"), fenv); err == nil {
		t.Error("recursive function should error, not hang")
	}
}

func TestMathMLRoundTrip(t *testing.T) {
	exprs := []string{
		"k1*A",
		"k1*A - k2*B",
		"Vmax*S/(Km+S)",
		"2^n + abs(x)",
		"x < 3 && y >= 2",
		"min(a, b, c)",
	}
	for _, src := range exprs {
		e := MustParseInfix(src)
		xml := ToXML(e)
		back, err := ParseXML(xml)
		if err != nil {
			t.Fatalf("ParseXML round trip of %q: %v\n%s", src, err, xml.String())
		}
		if !Equal(e, back) {
			t.Errorf("round trip of %q: got %s", src, back)
		}
	}
}

func TestMathMLParseDocument(t *testing.T) {
	const doc = `<math xmlns="http://www.w3.org/1998/Math/MathML">
  <apply><times/>
    <ci> k1 </ci>
    <ci> A </ci>
  </apply>
</math>`
	e, err := ParseXMLString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(e, MustParseInfix("k1*A")) {
		t.Errorf("parsed %s, want k1*A", e)
	}
}

func TestMathMLENotationAndRational(t *testing.T) {
	e, err := ParseXMLString(`<math><cn type="e-notation">1.5<sep/>3</cn></math>`)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := e.(Num); !ok || n.Value != 1500 {
		t.Errorf("e-notation = %v", e)
	}
	e, err = ParseXMLString(`<math><cn type="rational">3<sep/>4</cn></math>`)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := e.(Num); !ok || n.Value != 0.75 {
		t.Errorf("rational = %v", e)
	}
}

func TestMathMLLambda(t *testing.T) {
	const doc = `<math>
  <lambda>
    <bvar><ci>x</ci></bvar>
    <bvar><ci>y</ci></bvar>
    <apply><plus/><ci>x</ci><ci>y</ci></apply>
  </lambda>
</math>`
	e, err := ParseXMLString(doc)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := e.(Lambda)
	if !ok {
		t.Fatalf("expected Lambda, got %T", e)
	}
	if len(l.Params) != 2 || l.Params[0] != "x" || l.Params[1] != "y" {
		t.Errorf("params = %v", l.Params)
	}
	// Round trip.
	back, err := ParseXML(ToXML(l))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(l, back) {
		t.Errorf("lambda round trip: %s", back)
	}
}

func TestMathMLPiecewise(t *testing.T) {
	const doc = `<math>
  <piecewise>
    <piece><cn>1</cn><apply><lt/><ci>x</ci><cn>0</cn></apply></piece>
    <otherwise><cn>2</cn></otherwise>
  </piecewise>
</math>`
	e, err := ParseXMLString(doc)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Eval(e, env(map[string]float64{"x": -1}))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("piecewise(x=-1) = %v, want 1", v)
	}
	v, _ = Eval(e, env(map[string]float64{"x": 1}))
	if v != 2 {
		t.Errorf("piecewise(x=1) = %v, want 2", v)
	}
	back, err := ParseXML(ToXML(e))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(e, back) {
		t.Errorf("piecewise round trip: %s", back)
	}
}

func TestMathMLParseErrors(t *testing.T) {
	bad := []string{
		`<math></math>`,
		`<math><cn>abc</cn></math>`,
		`<math><apply/></math>`,
		`<math><unknown/></math>`,
		`<math><lambda><bvar><ci>x</ci></bvar></lambda></math>`,
		`<math><piecewise><piece><cn>1</cn></piece></piecewise></math>`,
	}
	for _, doc := range bad {
		if _, err := ParseXMLString(doc); err == nil {
			t.Errorf("ParseXMLString(%q) succeeded, want error", doc)
		}
	}
}

func TestVars(t *testing.T) {
	e := MustParseInfix("k1*A - k2*B + f(C)")
	vars := Vars(e)
	for _, want := range []string{"k1", "A", "k2", "B", "C"} {
		if !vars[want] {
			t.Errorf("Vars missing %q", want)
		}
	}
	if len(vars) != 5 {
		t.Errorf("Vars = %v, want 5 entries", vars)
	}
	// Lambda params are bound.
	l := Lambda{Params: []string{"x"}, Body: MustParseInfix("x + y")}
	vars = Vars(l)
	if vars["x"] || !vars["y"] {
		t.Errorf("lambda Vars = %v", vars)
	}
}

func TestSubstituteAndRename(t *testing.T) {
	e := MustParseInfix("k1*A")
	sub := Substitute(e, map[string]Expr{"A": MustParseInfix("B+C")})
	want := MustParseInfix("k1*(B+C)")
	if !Equal(sub, want) {
		t.Errorf("Substitute = %s, want %s", sub, want)
	}
	ren := Rename(e, map[string]string{"A": "A2", "k1": "k9"})
	if !Equal(ren, MustParseInfix("k9*A2")) {
		t.Errorf("Rename = %s", ren)
	}
	// Renaming must not capture lambda params it does not mention, and must
	// rename params it does mention.
	l := Lambda{Params: []string{"x"}, Body: MustParseInfix("x*y")}
	rl := Rename(l, map[string]string{"y": "z", "x": "w"}).(Lambda)
	if rl.Params[0] != "w" || !Equal(rl.Body, MustParseInfix("w*z")) {
		t.Errorf("Rename lambda = %s", rl)
	}
}

func TestSimplify(t *testing.T) {
	cases := []struct{ in, want string }{
		{"1+2", "3"},
		{"x+0", "x"},
		{"0+x", "x"},
		{"x*1", "x"},
		{"x*0", "0"},
		{"x^1", "x"},
		{"x^0", "1"},
		{"x/1", "x"},
		{"0/x", "0"},
		{"x-0", "x"},
		{"-(-x)", "x"},
		{"2*3*x", "6 * x"},
		{"(x+1)+2", "x + 1 + 2"}, // flattened, not folded (x blocks)
	}
	for _, tc := range cases {
		got := Simplify(MustParseInfix(tc.in))
		if got.String() != tc.want {
			t.Errorf("Simplify(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSimplifyPreservesValue(t *testing.T) {
	exprs := []string{
		"k1*A - k2*B",
		"(a+0)*(b*1) + 0",
		"2^3 + x/1",
		"a*(b+(c+d))",
	}
	vals := map[string]float64{"k1": 2, "A": 3, "k2": 0.5, "B": 4, "a": 1.5, "b": 2.5, "c": 0.25, "d": 4, "x": 7}
	for _, src := range exprs {
		e := MustParseInfix(src)
		s := Simplify(e)
		v1, err1 := Eval(e, env(vals))
		v2, err2 := Eval(s, env(vals))
		if err1 != nil || err2 != nil {
			t.Fatalf("eval %q: %v %v", src, err1, err2)
		}
		if math.Abs(v1-v2) > 1e-12 {
			t.Errorf("Simplify changed value of %q: %v vs %v", src, v1, v2)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	e := MustParseInfix("a + b*c").(Apply)
	cp := Clone(e).(Apply)
	cp.Args[0] = Sym{Name: "zzz"}
	if e.Args[0].(Sym).Name == "zzz" {
		t.Error("Clone shares arg slice with original")
	}
	if !Equal(e, MustParseInfix("a + b*c")) {
		t.Error("original mutated")
	}
}

func TestFormatInfixParsesBack(t *testing.T) {
	exprs := []string{
		"k1*A - k2*B",
		"(a + b)*(c - d)",
		"a/b/c",
		"x^(y+1)",
		"f(a, b+1)",
		"-(a+b)",
		"a < b && c >= d",
	}
	vals := map[string]float64{"k1": 2, "A": 3, "k2": 0.5, "B": 4, "a": 5, "b": 2, "c": 7, "d": 1, "x": 2, "y": 2}
	fenv := &MapEnv{Values: vals, Functions: map[string]Lambda{
		"f": {Params: []string{"p", "q"}, Body: MustParseInfix("p+q")},
	}}
	for _, src := range exprs {
		e := MustParseInfix(src)
		back, err := ParseInfix(FormatInfix(e))
		if err != nil {
			t.Fatalf("reparse of %q → %q: %v", src, FormatInfix(e), err)
		}
		v1, err1 := Eval(e, fenv)
		v2, err2 := Eval(back, fenv)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval %q: %v %v", src, err1, err2)
		}
		if math.Abs(v1-v2) > 1e-12 {
			t.Errorf("format/reparse changed value of %q: %v vs %v", src, v1, v2)
		}
	}
}

func TestDepthAndSize(t *testing.T) {
	e := MustParseInfix("a + b*c")
	if d := Depth(e); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
	if s := Size(e); s != 5 {
		t.Errorf("Size = %d, want 5", s)
	}
	if s := Size(nil); s != 0 {
		t.Errorf("Size(nil) = %d", s)
	}
}

func TestInfixStringEscapesPrecedence(t *testing.T) {
	// (a+b)*c must not print as a+b*c.
	e := Mul(Add(S("a"), S("b")), S("c"))
	s := FormatInfix(e)
	if !strings.Contains(s, "(") {
		t.Errorf("precedence lost in %q", s)
	}
	back := MustParseInfix(s)
	v1, _ := Eval(e, env(map[string]float64{"a": 1, "b": 2, "c": 3}))
	v2, _ := Eval(back, env(map[string]float64{"a": 1, "b": 2, "c": 3}))
	if v1 != v2 {
		t.Errorf("value changed: %v vs %v", v1, v2)
	}
}
