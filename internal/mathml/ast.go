// Package mathml implements the MathML content-markup subset used by SBML
// kinetic laws, rules, constraints, events and function definitions.
//
// It provides an expression AST, parsers from MathML XML and from a
// conventional infix syntax, a numeric evaluator (which plays the role
// BeanShell played in the paper's Java implementation), algebraic
// simplification, and — the paper's key device — commutativity-aware
// pattern extraction (Figure 7). Two mathematically equivalent expressions
// that differ only in the order of commutative operands, in the nesting of
// associative applications, or in the names assigned by a renaming map
// produce the same pattern string, which makes the pattern usable as an
// index key during composition.
package mathml

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Expr is a MathML content expression. The concrete types are Num, Sym,
// Apply, Lambda and Piecewise.
type Expr interface {
	// String renders the expression in infix syntax.
	String() string
	isExpr()
}

// Num is a numeric literal (MathML <cn>).
type Num struct {
	Value float64
}

// Sym is an identifier reference (MathML <ci>), e.g. a species, parameter or
// compartment id, or a bound lambda variable.
type Sym struct {
	Name string
}

// Apply is an operator or function application (MathML <apply>). Op is the
// MathML operator name ("plus", "times", …) or, for user-defined function
// calls, the function id.
type Apply struct {
	Op   string
	Args []Expr
}

// Lambda is a function definition body (MathML <lambda>), used by SBML
// function definitions.
type Lambda struct {
	Params []string
	Body   Expr
}

// Piece is one <piece> of a piecewise expression: Value applies when Cond is
// true.
type Piece struct {
	Value Expr
	Cond  Expr
}

// Piecewise is a conditional expression (MathML <piecewise>).
type Piecewise struct {
	Pieces    []Piece
	Otherwise Expr // may be nil
}

func (Num) isExpr()       {}
func (Sym) isExpr()       {}
func (Apply) isExpr()     {}
func (Lambda) isExpr()    {}
func (Piecewise) isExpr() {}

// N returns a numeric literal expression.
func N(v float64) Num { return Num{Value: v} }

// S returns a symbol expression.
func S(name string) Sym { return Sym{Name: name} }

// Call returns an application of op to args.
func Call(op string, args ...Expr) Apply { return Apply{Op: op, Args: args} }

// Convenience constructors for the common arithmetic forms.

// Add returns args[0] + args[1] + … .
func Add(args ...Expr) Expr { return Apply{Op: "plus", Args: args} }

// Mul returns the product of args.
func Mul(args ...Expr) Expr { return Apply{Op: "times", Args: args} }

// Sub returns a - b.
func Sub(a, b Expr) Expr { return Apply{Op: "minus", Args: []Expr{a, b}} }

// Neg returns -a (unary minus).
func Neg(a Expr) Expr { return Apply{Op: "minus", Args: []Expr{a}} }

// Div returns a / b.
func Div(a, b Expr) Expr { return Apply{Op: "divide", Args: []Expr{a, b}} }

// Pow returns a ^ b.
func Pow(a, b Expr) Expr { return Apply{Op: "power", Args: []Expr{a, b}} }

// commutative lists the MathML operators for which argument order is
// irrelevant. Pattern extraction (Figure 7) sorts the operand patterns of
// these operators so that a+b and b+a produce identical patterns.
var commutative = map[string]bool{
	"plus":  true,
	"times": true,
	"eq":    true,
	"neq":   true,
	"and":   true,
	"or":    true,
	"xor":   true,
	"min":   true,
	"max":   true,
	"gcd":   true,
	"lcm":   true,
}

// IsCommutative reports whether op is a commutative MathML operator.
func IsCommutative(op string) bool { return commutative[op] }

// associative lists operators that can be flattened: a+(b+c) == (a+b)+c.
var associative = map[string]bool{
	"plus":  true,
	"times": true,
	"and":   true,
	"or":    true,
	"min":   true,
	"max":   true,
}

// String renders the literal. Integral values print without a decimal point
// so that <cn>2</cn> round-trips as "2".
func (n Num) String() string {
	if n.Value == math.Trunc(n.Value) && math.Abs(n.Value) < 1e15 {
		return strconv.FormatInt(int64(n.Value), 10)
	}
	return strconv.FormatFloat(n.Value, 'g', -1, 64)
}

func (s Sym) String() string { return s.Name }

// infix operators and their precedence for printing.
var infixOps = map[string]struct {
	symbol string
	prec   int
}{
	"plus":   {"+", 1},
	"minus":  {"-", 1},
	"times":  {"*", 2},
	"divide": {"/", 2},
	"power":  {"^", 3},
	"eq":     {"==", 0},
	"neq":    {"!=", 0},
	"gt":     {">", 0},
	"lt":     {"<", 0},
	"geq":    {">=", 0},
	"leq":    {"<=", 0},
	"and":    {"&&", -1},
	"or":     {"||", -2},
}

func (a Apply) String() string { return a.render(-10) }

func (a Apply) render(parentPrec int) string {
	if op, ok := infixOps[a.Op]; ok && len(a.Args) >= 2 {
		parts := make([]string, len(a.Args))
		for i, arg := range a.Args {
			parts[i] = renderChild(arg, op.prec)
		}
		s := strings.Join(parts, " "+op.symbol+" ")
		if op.prec <= parentPrec {
			return "(" + s + ")"
		}
		return s
	}
	if a.Op == "minus" && len(a.Args) == 1 {
		return "-" + renderChild(a.Args[0], 4)
	}
	parts := make([]string, len(a.Args))
	for i, arg := range a.Args {
		parts[i] = arg.String()
	}
	return a.Op + "(" + strings.Join(parts, ", ") + ")"
}

func renderChild(e Expr, parentPrec int) string {
	if ap, ok := e.(Apply); ok {
		return ap.render(parentPrec)
	}
	return e.String()
}

func (l Lambda) String() string {
	return "lambda(" + strings.Join(l.Params, ", ") + ": " + l.Body.String() + ")"
}

func (p Piecewise) String() string {
	var b strings.Builder
	b.WriteString("piecewise(")
	for i, piece := range p.Pieces {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s if %s", piece.Value, piece.Cond)
	}
	if p.Otherwise != nil {
		if len(p.Pieces) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("otherwise ")
		b.WriteString(p.Otherwise.String())
	}
	b.WriteString(")")
	return b.String()
}

// Equal reports exact structural equality (no commutativity handling; use
// Pattern for semantic equivalence).
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	switch x := a.(type) {
	case Num:
		y, ok := b.(Num)
		return ok && x.Value == y.Value
	case Sym:
		y, ok := b.(Sym)
		return ok && x.Name == y.Name
	case Apply:
		y, ok := b.(Apply)
		if !ok || x.Op != y.Op || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case Lambda:
		y, ok := b.(Lambda)
		if !ok || len(x.Params) != len(y.Params) {
			return false
		}
		for i := range x.Params {
			if x.Params[i] != y.Params[i] {
				return false
			}
		}
		return Equal(x.Body, y.Body)
	case Piecewise:
		y, ok := b.(Piecewise)
		if !ok || len(x.Pieces) != len(y.Pieces) {
			return false
		}
		for i := range x.Pieces {
			if !Equal(x.Pieces[i].Value, y.Pieces[i].Value) || !Equal(x.Pieces[i].Cond, y.Pieces[i].Cond) {
				return false
			}
		}
		return Equal(x.Otherwise, y.Otherwise)
	}
	return false
}

// Clone returns a deep copy of e.
func Clone(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case Num, Sym:
		return x
	case Apply:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Clone(a)
		}
		return Apply{Op: x.Op, Args: args}
	case Lambda:
		params := make([]string, len(x.Params))
		copy(params, x.Params)
		return Lambda{Params: params, Body: Clone(x.Body)}
	case Piecewise:
		pieces := make([]Piece, len(x.Pieces))
		for i, p := range x.Pieces {
			pieces[i] = Piece{Value: Clone(p.Value), Cond: Clone(p.Cond)}
		}
		var other Expr
		if x.Otherwise != nil {
			other = Clone(x.Otherwise)
		}
		return Piecewise{Pieces: pieces, Otherwise: other}
	}
	return nil
}

// Vars returns the set of free identifiers referenced by e. Lambda
// parameters are bound and excluded within the lambda body.
func Vars(e Expr) map[string]bool {
	out := make(map[string]bool)
	collectVars(e, out, nil)
	return out
}

func collectVars(e Expr, out map[string]bool, bound map[string]bool) {
	switch x := e.(type) {
	case Sym:
		if !bound[x.Name] {
			out[x.Name] = true
		}
	case Apply:
		for _, a := range x.Args {
			collectVars(a, out, bound)
		}
	case Lambda:
		inner := make(map[string]bool, len(bound)+len(x.Params))
		for k := range bound {
			inner[k] = true
		}
		for _, p := range x.Params {
			inner[p] = true
		}
		collectVars(x.Body, out, inner)
	case Piecewise:
		for _, p := range x.Pieces {
			collectVars(p.Value, out, bound)
			collectVars(p.Cond, out, bound)
		}
		if x.Otherwise != nil {
			collectVars(x.Otherwise, out, bound)
		}
	}
}

// Substitute returns e with every free occurrence of the mapped symbols
// replaced by the corresponding expression. It is used to inline function
// definitions and to apply id renamings discovered during composition.
func Substitute(e Expr, repl map[string]Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case Num:
		return x
	case Sym:
		if r, ok := repl[x.Name]; ok {
			return Clone(r)
		}
		return x
	case Apply:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Substitute(a, repl)
		}
		return Apply{Op: x.Op, Args: args}
	case Lambda:
		// Shadowed parameters are not substituted.
		inner := make(map[string]Expr, len(repl))
		for k, v := range repl {
			shadowed := false
			for _, p := range x.Params {
				if p == k {
					shadowed = true
					break
				}
			}
			if !shadowed {
				inner[k] = v
			}
		}
		return Lambda{Params: append([]string(nil), x.Params...), Body: Substitute(x.Body, inner)}
	case Piecewise:
		pieces := make([]Piece, len(x.Pieces))
		for i, p := range x.Pieces {
			pieces[i] = Piece{Value: Substitute(p.Value, repl), Cond: Substitute(p.Cond, repl)}
		}
		var other Expr
		if x.Otherwise != nil {
			other = Substitute(x.Otherwise, repl)
		}
		return Piecewise{Pieces: pieces, Otherwise: other}
	}
	return e
}

// Rename returns e with identifiers renamed per the given map. Unlike
// Substitute it also renames lambda parameters, which is what the composer
// needs when it renames a model-level id everywhere.
func Rename(e Expr, mapping map[string]string) Expr {
	if len(mapping) == 0 {
		return e
	}
	repl := make(map[string]Expr, len(mapping))
	for from, to := range mapping {
		repl[from] = Sym{Name: to}
	}
	switch x := e.(type) {
	case Lambda:
		params := make([]string, len(x.Params))
		for i, p := range x.Params {
			if to, ok := mapping[p]; ok {
				params[i] = to
			} else {
				params[i] = p
			}
		}
		return Lambda{Params: params, Body: Rename(x.Body, mapping)}
	default:
		return Substitute(x, repl)
	}
}

// sortExprs orders expressions by their pattern string; used for
// canonicalizing commutative argument lists.
func sortExprs(patterns []string) {
	sort.Strings(patterns)
}
