package mathml

import "math"

// Simplify performs conservative algebraic simplification:
//
//   - constant folding of operator applications whose arguments are all
//     numeric literals (0.5*2 → 1),
//   - flattening of nested associative operators (a+(b+c) → a+b+c),
//   - arithmetic identities: x+0, x*1, x*0, x^1, x^0, x/1, 0/x, --x.
//
// It never evaluates identifiers, so the result is defined over exactly the
// same environments as the input. Used by the composer to normalize initial
// assignment maths before value comparison.
func Simplify(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case Num, Sym:
		return x
	case Lambda:
		return Lambda{Params: append([]string(nil), x.Params...), Body: Simplify(x.Body)}
	case Piecewise:
		pieces := make([]Piece, len(x.Pieces))
		for i, p := range x.Pieces {
			pieces[i] = Piece{Value: Simplify(p.Value), Cond: Simplify(p.Cond)}
		}
		var other Expr
		if x.Otherwise != nil {
			other = Simplify(x.Otherwise)
		}
		return Piecewise{Pieces: pieces, Otherwise: other}
	case Apply:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Simplify(a)
		}
		args = flattenArgs(x.Op, args)
		ap := Apply{Op: x.Op, Args: args}
		if folded, ok := foldConstant(ap); ok {
			return folded
		}
		return applyIdentities(ap)
	}
	return e
}

// foldConstant evaluates an application whose arguments are all literals.
func foldConstant(a Apply) (Expr, bool) {
	if !knownOperators[a.Op] {
		return nil, false
	}
	vals := make([]float64, len(a.Args))
	for i, arg := range a.Args {
		n, ok := arg.(Num)
		if !ok {
			return nil, false
		}
		vals[i] = n.Value
	}
	v, err := applyOp(a.Op, vals)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, false
	}
	return Num{Value: v}, true
}

func applyIdentities(a Apply) Expr {
	switch a.Op {
	case "plus":
		var kept []Expr
		for _, arg := range a.Args {
			if n, ok := arg.(Num); ok && n.Value == 0 {
				continue
			}
			kept = append(kept, arg)
		}
		switch len(kept) {
		case 0:
			return Num{Value: 0}
		case 1:
			return kept[0]
		}
		return Apply{Op: "plus", Args: kept}
	case "times":
		var kept []Expr
		for _, arg := range a.Args {
			if n, ok := arg.(Num); ok {
				if n.Value == 0 {
					return Num{Value: 0}
				}
				if n.Value == 1 {
					continue
				}
			}
			kept = append(kept, arg)
		}
		switch len(kept) {
		case 0:
			return Num{Value: 1}
		case 1:
			return kept[0]
		}
		return Apply{Op: "times", Args: kept}
	case "minus":
		if len(a.Args) == 1 {
			// --x → x
			if inner, ok := a.Args[0].(Apply); ok && inner.Op == "minus" && len(inner.Args) == 1 {
				return inner.Args[0]
			}
			return a
		}
		if len(a.Args) == 2 {
			if n, ok := a.Args[1].(Num); ok && n.Value == 0 {
				return a.Args[0]
			}
		}
		return a
	case "divide":
		if len(a.Args) == 2 {
			if n, ok := a.Args[1].(Num); ok && n.Value == 1 {
				return a.Args[0]
			}
			if n, ok := a.Args[0].(Num); ok && n.Value == 0 {
				return Num{Value: 0}
			}
		}
		return a
	case "power":
		if len(a.Args) == 2 {
			if n, ok := a.Args[1].(Num); ok {
				if n.Value == 1 {
					return a.Args[0]
				}
				if n.Value == 0 {
					return Num{Value: 1}
				}
			}
		}
		return a
	}
	return a
}

// Depth returns the height of the expression tree; a size heuristic used in
// benchmarks and workload generation.
func Depth(e Expr) int {
	switch x := e.(type) {
	case Apply:
		d := 0
		for _, a := range x.Args {
			if ad := Depth(a); ad > d {
				d = ad
			}
		}
		return d + 1
	case Lambda:
		return Depth(x.Body) + 1
	case Piecewise:
		d := 0
		for _, p := range x.Pieces {
			if pd := Depth(p.Value); pd > d {
				d = pd
			}
			if cd := Depth(p.Cond); cd > d {
				d = cd
			}
		}
		if x.Otherwise != nil {
			if od := Depth(x.Otherwise); od > d {
				d = od
			}
		}
		return d + 1
	default:
		return 1
	}
}

// Size returns the number of nodes in the expression tree.
func Size(e Expr) int {
	switch x := e.(type) {
	case nil:
		return 0
	case Apply:
		n := 1
		for _, a := range x.Args {
			n += Size(a)
		}
		return n
	case Lambda:
		return 1 + len(x.Params) + Size(x.Body)
	case Piecewise:
		n := 1
		for _, p := range x.Pieces {
			n += Size(p.Value) + Size(p.Cond)
		}
		n += Size(x.Otherwise)
		return n
	default:
		return 1
	}
}
