package mathml

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseInfix parses a conventional infix expression such as
//
//	k1*A - k2*B
//	Vmax*S / (Km + S)
//	min(a, b) + f(x, 2.5e-3)
//
// into an expression tree. This plays the role BeanShell played in the
// paper's Java implementation: a convenient textual syntax for maths that is
// converted to the same AST the MathML parser produces.
//
// Supported syntax: numbers (decimal and e-notation), identifiers, function
// calls, parentheses, ^ (right-associative power), unary -, * /, + -,
// comparisons (== != < <= > >=), ! (not), && and ||.
func ParseInfix(s string) (Expr, error) {
	p := &infixParser{input: s}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("mathml: unexpected %q at offset %d in %q", p.tok.text, p.tok.pos, s)
	}
	return e, nil
}

// MustParseInfix is ParseInfix that panics on error; for tests and
// package-internal constant expressions.
func MustParseInfix(s string) Expr {
	e, err := ParseInfix(s)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokOp // single or double-char operator / punctuation
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type infixParser struct {
	input string
	pos   int
	tok   token
}

func (p *infixParser) next() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.input[p.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		for p.pos < len(p.input) {
			ch := p.input[p.pos]
			if ch >= '0' && ch <= '9' || ch == '.' {
				p.pos++
				continue
			}
			if (ch == 'e' || ch == 'E') && p.pos+1 < len(p.input) {
				nx := p.input[p.pos+1]
				if nx >= '0' && nx <= '9' || nx == '+' || nx == '-' {
					p.pos += 2
					continue
				}
			}
			break
		}
		p.tok = token{kind: tokNum, text: p.input[start:p.pos], pos: start}
	case isIdentStart(c):
		for p.pos < len(p.input) && isIdentPart(p.input[p.pos]) {
			p.pos++
		}
		p.tok = token{kind: tokIdent, text: p.input[start:p.pos], pos: start}
	default:
		// Two-character operators first.
		if p.pos+1 < len(p.input) {
			two := p.input[p.pos : p.pos+2]
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				p.pos += 2
				p.tok = token{kind: tokOp, text: two, pos: start}
				return
			}
		}
		p.pos++
		p.tok = token{kind: tokOp, text: string(c), pos: start}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (p *infixParser) expect(text string) error {
	if p.tok.kind != tokOp || p.tok.text != text {
		return fmt.Errorf("mathml: expected %q at offset %d, found %q", text, p.tok.pos, p.tok.text)
	}
	p.next()
	return nil
}

func (p *infixParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "||" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Apply{Op: "or", Args: []Expr{left, right}}
	}
	return left, nil
}

func (p *infixParser) parseAnd() (Expr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "&&" {
		p.next()
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = Apply{Op: "and", Args: []Expr{left, right}}
	}
	return left, nil
}

var cmpOps = map[string]string{
	"==": "eq", "!=": "neq", "<": "lt", "<=": "leq", ">": "gt", ">=": "geq",
}

func (p *infixParser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		if op, ok := cmpOps[p.tok.text]; ok {
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Apply{Op: op, Args: []Expr{left, right}}, nil
		}
	}
	return left, nil
}

func (p *infixParser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := "plus"
		if p.tok.text == "-" {
			op = "minus"
		}
		p.next()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = Apply{Op: op, Args: []Expr{left, right}}
	}
	return left, nil
}

func (p *infixParser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := "times"
		if p.tok.text == "/" {
			op = "divide"
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = Apply{Op: op, Args: []Expr{left, right}}
	}
	return left, nil
}

func (p *infixParser) parseUnary() (Expr, error) {
	if p.tok.kind == tokOp {
		switch p.tok.text {
		case "-":
			p.next()
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return Apply{Op: "minus", Args: []Expr{e}}, nil
		case "!":
			p.next()
			e, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return Apply{Op: "not", Args: []Expr{e}}, nil
		}
	}
	return p.parsePow()
}

func (p *infixParser) parsePow() (Expr, error) {
	base, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp && p.tok.text == "^" {
		p.next()
		exp, err := p.parseUnary() // right-associative
		if err != nil {
			return nil, err
		}
		return Apply{Op: "power", Args: []Expr{base, exp}}, nil
	}
	return base, nil
}

func (p *infixParser) parseAtom() (Expr, error) {
	switch p.tok.kind {
	case tokNum:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("mathml: bad number %q at offset %d", p.tok.text, p.tok.pos)
		}
		p.next()
		return Num{Value: v}, nil
	case tokIdent:
		name := p.tok.text
		p.next()
		if p.tok.kind == tokOp && p.tok.text == "(" {
			p.next()
			var args []Expr
			if !(p.tok.kind == tokOp && p.tok.text == ")") {
				for {
					a, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.tok.kind == tokOp && p.tok.text == "," {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return Apply{Op: name, Args: args}, nil
		}
		if v, ok := constants[name]; ok && (name == "pi" || name == "exponentiale" || name == "true" || name == "false") {
			return Num{Value: v}, nil
		}
		return Sym{Name: name}, nil
	case tokOp:
		if p.tok.text == "(" {
			p.next()
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("mathml: unexpected token %q at offset %d", p.tok.text, p.tok.pos)
}

// FormatInfix renders e in infix syntax; inverse of ParseInfix up to
// whitespace and redundant parentheses.
func FormatInfix(e Expr) string {
	if e == nil {
		return ""
	}
	return strings.TrimSpace(e.String())
}
