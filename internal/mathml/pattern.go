package mathml

import (
	"strings"
)

// Pattern implements the paper's Figure 7 "Get Maths Patterns" algorithm.
//
// It produces a canonical string for an expression such that two
// expressions equivalent under
//
//   - commutativity of plus/times/eq/and/or/… (operand order),
//   - associativity of plus/times/and/or (nesting), and
//   - the id renamings recorded in mappings (model-1 id → model-2 id)
//
// yield identical strings. Non-commutative operators keep each child tagged
// with its position prefix, exactly as the algorithm in Figure 7 prefixes
// children of non-commutative nodes with "(C + child number)".
//
// The mappings argument may be nil. Keys found in mappings are replaced by
// their mapped value before stringification ("after applying mappings" in
// Figure 7, lines 2 and 15).
func Pattern(e Expr, mappings map[string]string) string {
	var b strings.Builder
	writePattern(&b, e, mappings, nil)
	return b.String()
}

// PatternAppend writes e's pattern into b, letting callers that assemble
// composite keys (the compiled-model component indexes) avoid an
// intermediate string per subexpression. A nil e writes nothing.
func PatternAppend(b *strings.Builder, e Expr, mappings map[string]string) {
	if e == nil {
		return
	}
	writePattern(b, e, mappings, nil)
}

// PatternEqual reports whether a and b have identical patterns under the
// given mappings (applied to a only — mappings translate a's namespace into
// b's, mirroring how the composer stores model-1→model-2 renames).
func PatternEqual(a, b Expr, mappings map[string]string) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return Pattern(a, mappings) == Pattern(b, nil)
}

func writePattern(b *strings.Builder, e Expr, mappings map[string]string, bound map[string]int) {
	switch x := e.(type) {
	case Num:
		b.WriteString("#")
		b.WriteString(x.String())
	case Sym:
		name := x.Name
		if idx, ok := bound[name]; ok {
			// Bound lambda parameters are canonicalized positionally so
			// lambda(x: x+1) and lambda(y: y+1) share a pattern.
			b.WriteString("$")
			b.WriteString(itoa(idx))
			return
		}
		if mapped, ok := mappings[name]; ok {
			name = mapped
		}
		b.WriteString(name)
	case Apply:
		op := x.Op
		if mapped, ok := mappings[op]; ok {
			// Function-definition ids can be renamed too.
			op = mapped
		}
		if IsCommutative(x.Op) {
			args := flattenArgs(x.Op, x.Args)
			pats := make([]string, len(args))
			for i, a := range args {
				var sb strings.Builder
				writePattern(&sb, a, mappings, bound)
				pats[i] = sb.String()
			}
			sortExprs(pats)
			b.WriteString(op)
			b.WriteString("[")
			for i, p := range pats {
				if i > 0 {
					b.WriteString(",")
				}
				b.WriteString(p)
			}
			b.WriteString("]")
			return
		}
		b.WriteString(op)
		b.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(",")
			}
			// Position prefix for non-commutative operators (Figure 7
			// line 11: "C + child number").
			b.WriteString("c")
			b.WriteString(itoa(i))
			b.WriteString(":")
			writePattern(b, a, mappings, bound)
		}
		b.WriteString(")")
	case Lambda:
		inner := make(map[string]int, len(bound)+len(x.Params))
		for k, v := range bound {
			inner[k] = v
		}
		for i, p := range x.Params {
			inner[p] = len(bound) + i
		}
		b.WriteString("lambda")
		b.WriteString(itoa(len(x.Params)))
		b.WriteString("(")
		writePattern(b, x.Body, mappings, inner)
		b.WriteString(")")
	case Piecewise:
		b.WriteString("piecewise(")
		for i, p := range x.Pieces {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString("v:")
			writePattern(b, p.Value, mappings, bound)
			b.WriteString("|c:")
			writePattern(b, p.Cond, mappings, bound)
		}
		if x.Otherwise != nil {
			b.WriteString(",else:")
			writePattern(b, x.Otherwise, mappings, bound)
		}
		b.WriteString(")")
	}
}

// flattenArgs recursively inlines nested applications of the same
// associative operator: plus(a, plus(b, c)) → [a, b, c]. The recursion in
// Figure 7 lines 5-7 walks straight through commutative children, which has
// the same flattening effect.
func flattenArgs(op string, args []Expr) []Expr {
	if !associative[op] {
		return args
	}
	var out []Expr
	for _, a := range args {
		if ap, ok := a.(Apply); ok && ap.Op == op {
			out = append(out, flattenArgs(op, ap.Args)...)
			continue
		}
		out = append(out, a)
	}
	return out
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}
