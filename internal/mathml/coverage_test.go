package mathml

import (
	"math"
	"strings"
	"testing"
)

func TestConstructorHelpers(t *testing.T) {
	e := Div(Sub(Pow(S("a"), N(2)), Neg(S("b"))), Call("min", S("a"), S("b")))
	v, err := Eval(e, env(map[string]float64{"a": 3, "b": 2}))
	if err != nil {
		t.Fatal(err)
	}
	// (3² − (−2)) / min(3,2) = 11/2
	if v != 5.5 {
		t.Errorf("helper-built expr = %v, want 5.5", v)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Lambda{Params: []string{"x", "y"}, Body: Add(S("x"), S("y"))}, "lambda(x, y: x + y)"},
		{Neg(S("a")), "-a"},
		{Call("foo", N(1), S("b")), "foo(1, b)"},
		{N(2.5), "2.5"},
		{N(-3), "-3"},
		{Piecewise{
			Pieces:    []Piece{{Value: N(1), Cond: Call("lt", S("x"), N(0))}},
			Otherwise: N(2),
		}, "piecewise(1 if x < 0, otherwise 2)"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestCloneAllVariants(t *testing.T) {
	pw := Piecewise{
		Pieces:    []Piece{{Value: Add(S("a"), N(1)), Cond: Call("gt", S("a"), N(0))}},
		Otherwise: Mul(S("b"), N(2)),
	}
	lam := Lambda{Params: []string{"x"}, Body: pw}
	cp := Clone(lam).(Lambda)
	if !Equal(lam, cp) {
		t.Error("clone differs")
	}
	// Mutate the clone's innards; the original must not change.
	cpPw := cp.Body.(Piecewise)
	cpPw.Pieces[0].Value = N(99)
	if Equal(lam.Body, cp.Body) {
		t.Error("clone shares piece storage")
	}
	if Clone(nil) != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestSubstituteVariants(t *testing.T) {
	pw := Piecewise{
		Pieces:    []Piece{{Value: S("x"), Cond: Call("gt", S("x"), N(0))}},
		Otherwise: S("x"),
	}
	sub := Substitute(pw, map[string]Expr{"x": N(5)}).(Piecewise)
	v, err := Eval(sub, env(nil))
	if err != nil || v != 5 {
		t.Errorf("substituted piecewise = %v (%v)", v, err)
	}
	// Lambda shadowing: bound params must not be substituted.
	lam := Lambda{Params: []string{"x"}, Body: Add(S("x"), S("y"))}
	got := Substitute(lam, map[string]Expr{"x": N(1), "y": N(2)}).(Lambda)
	if !Equal(got.Body, Add(S("x"), N(2))) {
		t.Errorf("shadowed substitute = %s", got.Body)
	}
	if s := Substitute(nil, nil); s != nil {
		t.Error("Substitute(nil) should be nil")
	}
}

func TestVarsPiecewise(t *testing.T) {
	pw := Piecewise{
		Pieces:    []Piece{{Value: S("a"), Cond: Call("gt", S("b"), N(0))}},
		Otherwise: S("c"),
	}
	vars := Vars(pw)
	for _, want := range []string{"a", "b", "c"} {
		if !vars[want] {
			t.Errorf("Vars missing %q", want)
		}
	}
}

func TestEvalOperatorCorners(t *testing.T) {
	cases := []struct {
		src  string
		vals map[string]float64
		want float64
	}{
		{"sec(0)", nil, 1},
		{"csc(pi/2)", nil, 1},
		{"cot(pi/4)", nil, 1},
		{"arcsin(1)", nil, math.Pi / 2},
		{"arccos(1)", nil, 0},
		{"arctan(0)", nil, 0},
		{"sinh(0)", nil, 0},
		{"cosh(0)", nil, 1},
		{"tanh(0)", nil, 0},
		{"root(9)", nil, 3}, // single-arg root is sqrt
		{"log(10, 1000)", nil, 3},
		{"exponentiale", nil, math.E},
		{"true", nil, 1},
		{"false", nil, 0},
	}
	for _, tc := range cases {
		got := evalInfix(t, tc.src, tc.vals)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestEvalArityErrors(t *testing.T) {
	bad := []string{
		"abs(1, 2)",
		"exp()",
		"min()",
		"root(0, 4)",
	}
	for _, src := range bad {
		e, err := ParseInfix(src)
		if err != nil {
			continue // parse-level rejection also acceptable
		}
		if _, err := Eval(e, env(nil)); err == nil {
			t.Errorf("Eval(%q) succeeded, want arity error", src)
		}
	}
	// Bare lambda is not a value.
	if _, err := Eval(Lambda{Params: []string{"x"}, Body: S("x")}, env(nil)); err == nil {
		t.Error("bare lambda should not evaluate")
	}
	// Piecewise with no matching piece and no otherwise.
	pw := Piecewise{Pieces: []Piece{{Value: N(1), Cond: N(0)}}}
	if _, err := Eval(pw, env(nil)); err == nil {
		t.Error("exhausted piecewise should error")
	}
}

func TestParseNodeCsymbolAndConstants(t *testing.T) {
	e, err := ParseXMLString(`<math><csymbol definitionURL="http://www.sbml.org/sbml/symbols/time"> t </csymbol></math>`)
	if err != nil {
		t.Fatal(err)
	}
	if sym, ok := e.(Sym); !ok || sym.Name != "t" {
		t.Errorf("csymbol = %v", e)
	}
	// Empty csymbol text defaults to time.
	e, err = ParseXMLString(`<math><csymbol definitionURL="x"/></math>`)
	if err != nil {
		t.Fatal(err)
	}
	if sym, ok := e.(Sym); !ok || sym.Name != "time" {
		t.Errorf("empty csymbol = %v", e)
	}
	for name, want := range map[string]float64{"pi": math.Pi, "exponentiale": math.E, "true": 1, "false": 0} {
		e, err := ParseXMLString(`<math><` + name + `/></math>`)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n, ok := e.(Num)
		if !ok || n.Value != want {
			t.Errorf("constant %s = %v", name, e)
		}
	}
	// csymbol application head.
	e, err = ParseXMLString(`<math><apply><csymbol>delay</csymbol><ci>x</ci><cn>1</cn></apply></math>`)
	if err != nil {
		t.Fatal(err)
	}
	if ap, ok := e.(Apply); !ok || ap.Op != "delay" || len(ap.Args) != 2 {
		t.Errorf("csymbol apply = %v", e)
	}
}

func TestFormatInfixNil(t *testing.T) {
	if FormatInfix(nil) != "" {
		t.Error("FormatInfix(nil) should be empty")
	}
}

func TestRenderPrecedenceCorners(t *testing.T) {
	// Same-precedence nesting must parenthesize to preserve meaning.
	e := Div(S("a"), Div(S("b"), S("c"))) // a / (b/c)
	s := FormatInfix(e)
	back := MustParseInfix(s)
	vals := env(map[string]float64{"a": 12, "b": 6, "c": 2})
	v1, _ := Eval(e, vals)
	v2, _ := Eval(back, vals)
	if v1 != v2 {
		t.Errorf("rendering %q changed value: %v vs %v", s, v1, v2)
	}
	// Comparison chained with logic.
	e2 := Call("and", Call("lt", S("a"), S("b")), Call("gt", S("b"), S("c")))
	if !strings.Contains(FormatInfix(e2), "&&") {
		t.Errorf("logic rendering = %q", FormatInfix(e2))
	}
}
