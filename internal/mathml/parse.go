package mathml

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sbmlcompose/internal/xmltree"
)

// MathMLNamespace is the XML namespace for MathML 2.0 content markup.
const MathMLNamespace = "http://www.w3.org/1998/Math/MathML"

// knownOperators are the MathML operator elements accepted inside <apply>.
var knownOperators = map[string]bool{
	"plus": true, "minus": true, "times": true, "divide": true,
	"power": true, "root": true, "abs": true, "exp": true, "ln": true,
	"log": true, "floor": true, "ceiling": true, "factorial": true,
	"eq": true, "neq": true, "gt": true, "lt": true, "geq": true, "leq": true,
	"and": true, "or": true, "xor": true, "not": true,
	"sin": true, "cos": true, "tan": true, "sec": true, "csc": true, "cot": true,
	"arcsin": true, "arccos": true, "arctan": true,
	"sinh": true, "cosh": true, "tanh": true,
	"min": true, "max": true, "gcd": true, "lcm": true,
}

// constants maps MathML constant elements to values.
var constants = map[string]float64{
	"pi":           math.Pi,
	"exponentiale": math.E,
	"true":         1,
	"false":        0,
	"notanumber":   math.NaN(),
	"infinity":     math.Inf(1),
}

// ParseXML converts a MathML subtree into an expression. The node may be the
// <math> wrapper element or the operative element itself.
func ParseXML(n *xmltree.Node) (Expr, error) {
	if n == nil {
		return nil, fmt.Errorf("mathml: nil node")
	}
	if n.Name == "math" {
		elems := n.ChildElements("")
		if len(elems) != 1 {
			return nil, fmt.Errorf("mathml: <math> must contain exactly one expression, has %d", len(elems))
		}
		return parseNode(elems[0])
	}
	return parseNode(n)
}

// ParseXMLString parses a MathML document held in a string.
func ParseXMLString(s string) (Expr, error) {
	n, err := xmltree.ParseString(s)
	if err != nil {
		return nil, err
	}
	return ParseXML(n)
}

func parseNode(n *xmltree.Node) (Expr, error) {
	switch n.Name {
	case "cn":
		return parseCn(n)
	case "ci":
		name := n.InnerText()
		if name == "" {
			return nil, fmt.Errorf("mathml: empty <ci>")
		}
		return Sym{Name: name}, nil
	case "csymbol":
		// SBML uses csymbol for time and delay; we expose the symbol text.
		name := n.InnerText()
		if name == "" {
			name = "time"
		}
		return Sym{Name: name}, nil
	case "apply":
		return parseApply(n)
	case "lambda":
		return parseLambda(n)
	case "piecewise":
		return parsePiecewise(n)
	}
	if v, ok := constants[n.Name]; ok {
		return Num{Value: v}, nil
	}
	return nil, fmt.Errorf("mathml: unsupported element <%s>", n.Name)
}

func parseCn(n *xmltree.Node) (Expr, error) {
	typ := n.Attr("type")
	// e-notation and rational use <sep/> to split two text parts.
	if typ == "e-notation" || typ == "rational" {
		parts := splitSep(n)
		if len(parts) != 2 {
			return nil, fmt.Errorf("mathml: <cn type=%q> needs two parts", typ)
		}
		a, err1 := strconv.ParseFloat(parts[0], 64)
		b, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("mathml: bad <cn type=%q> %q/%q", typ, parts[0], parts[1])
		}
		if typ == "e-notation" {
			return Num{Value: a * math.Pow(10, b)}, nil
		}
		if b == 0 {
			return nil, fmt.Errorf("mathml: rational with zero denominator")
		}
		return Num{Value: a / b}, nil
	}
	text := n.InnerText()
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return nil, fmt.Errorf("mathml: bad <cn> value %q: %w", text, err)
	}
	return Num{Value: v}, nil
}

func splitSep(n *xmltree.Node) []string {
	var parts []string
	var cur strings.Builder
	for _, c := range n.Children {
		switch {
		case c.Kind == xmltree.Text:
			cur.WriteString(c.Text)
		case c.Kind == xmltree.Element && c.Name == "sep":
			parts = append(parts, strings.TrimSpace(cur.String()))
			cur.Reset()
		}
	}
	parts = append(parts, strings.TrimSpace(cur.String()))
	return parts
}

func parseApply(n *xmltree.Node) (Expr, error) {
	elems := n.ChildElements("")
	if len(elems) == 0 {
		return nil, fmt.Errorf("mathml: empty <apply>")
	}
	head, rest := elems[0], elems[1:]
	args := make([]Expr, 0, len(rest))
	for _, c := range rest {
		a, err := parseNode(c)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	switch {
	case knownOperators[head.Name]:
		if len(head.Children) != 0 {
			return nil, fmt.Errorf("mathml: operator <%s> must be empty", head.Name)
		}
		return Apply{Op: head.Name, Args: args}, nil
	case head.Name == "ci":
		// Call to a user-defined function (SBML function definition).
		fname := head.InnerText()
		if fname == "" {
			return nil, fmt.Errorf("mathml: empty function name in <apply>")
		}
		return Apply{Op: fname, Args: args}, nil
	case head.Name == "csymbol":
		name := head.InnerText()
		return Apply{Op: name, Args: args}, nil
	}
	return nil, fmt.Errorf("mathml: unsupported apply head <%s>", head.Name)
}

func parseLambda(n *xmltree.Node) (Expr, error) {
	var params []string
	var body Expr
	for _, c := range n.ChildElements("") {
		if c.Name == "bvar" {
			ci := c.Child("ci")
			if ci == nil {
				return nil, fmt.Errorf("mathml: <bvar> without <ci>")
			}
			params = append(params, ci.InnerText())
			continue
		}
		if body != nil {
			return nil, fmt.Errorf("mathml: <lambda> with multiple bodies")
		}
		b, err := parseNode(c)
		if err != nil {
			return nil, err
		}
		body = b
	}
	if body == nil {
		return nil, fmt.Errorf("mathml: <lambda> without body")
	}
	return Lambda{Params: params, Body: body}, nil
}

func parsePiecewise(n *xmltree.Node) (Expr, error) {
	var pw Piecewise
	for _, c := range n.ChildElements("") {
		switch c.Name {
		case "piece":
			elems := c.ChildElements("")
			if len(elems) != 2 {
				return nil, fmt.Errorf("mathml: <piece> needs value and condition")
			}
			v, err := parseNode(elems[0])
			if err != nil {
				return nil, err
			}
			cond, err := parseNode(elems[1])
			if err != nil {
				return nil, err
			}
			pw.Pieces = append(pw.Pieces, Piece{Value: v, Cond: cond})
		case "otherwise":
			elems := c.ChildElements("")
			if len(elems) != 1 {
				return nil, fmt.Errorf("mathml: <otherwise> needs one child")
			}
			o, err := parseNode(elems[0])
			if err != nil {
				return nil, err
			}
			pw.Otherwise = o
		default:
			return nil, fmt.Errorf("mathml: unexpected <%s> in <piecewise>", c.Name)
		}
	}
	return pw, nil
}

// ToXML converts an expression to a <math> element ready for embedding in an
// SBML document.
func ToXML(e Expr) *xmltree.Node {
	math := xmltree.NewElement("math")
	math.SetAttr("xmlns", MathMLNamespace)
	math.AppendChild(exprToXML(e))
	return math
}

func exprToXML(e Expr) *xmltree.Node {
	switch x := e.(type) {
	case Num:
		cn := xmltree.NewElement("cn")
		if x.Value != math.Trunc(x.Value) {
			cn.SetAttr("type", "real")
		}
		cn.AppendChild(xmltree.NewText(" " + x.String() + " "))
		return cn
	case Sym:
		ci := xmltree.NewElement("ci")
		ci.AppendChild(xmltree.NewText(" " + x.Name + " "))
		return ci
	case Apply:
		ap := xmltree.NewElement("apply")
		if knownOperators[x.Op] {
			ap.AppendChild(xmltree.NewElement(x.Op))
		} else {
			ci := xmltree.NewElement("ci")
			ci.AppendChild(xmltree.NewText(" " + x.Op + " "))
			ap.AppendChild(ci)
		}
		for _, a := range x.Args {
			ap.AppendChild(exprToXML(a))
		}
		return ap
	case Lambda:
		l := xmltree.NewElement("lambda")
		for _, p := range x.Params {
			bvar := xmltree.NewElement("bvar")
			ci := xmltree.NewElement("ci")
			ci.AppendChild(xmltree.NewText(" " + p + " "))
			bvar.AppendChild(ci)
			l.AppendChild(bvar)
		}
		l.AppendChild(exprToXML(x.Body))
		return l
	case Piecewise:
		pw := xmltree.NewElement("piecewise")
		for _, p := range x.Pieces {
			piece := xmltree.NewElement("piece")
			piece.AppendChild(exprToXML(p.Value))
			piece.AppendChild(exprToXML(p.Cond))
			pw.AppendChild(piece)
		}
		if x.Otherwise != nil {
			other := xmltree.NewElement("otherwise")
			other.AppendChild(exprToXML(x.Otherwise))
			pw.AppendChild(other)
		}
		return pw
	}
	return xmltree.NewElement("cn")
}
