package mathml

// This file implements the compiled evaluation path. Eval walks the AST
// through interface dispatch, resolves every identifier through an Env map
// lookup and allocates an argument slice per application — fine for a single
// evaluation, ruinous inside a simulator's inner loop that evaluates the
// same kinetic law millions of times. Compile performs all of that work
// once: user-defined function applications are inlined, constant subtrees
// are folded, every identifier is resolved to a dense slot index, and the
// result is a flat stack-machine Program evaluated against a []float64
// state vector with a caller-owned scratch stack — no maps, no interface
// dispatch, no per-call allocation.
//
// The compiled semantics are a bitwise replica of Eval's: n-ary operators
// fold in the same order from the same identity values, piecewise
// conditions short-circuit identically via jumps, division by zero and
// unmatched piecewise report the same errors, and the rare operators
// (factorial, gcd, lcm, two-argument root and log) dispatch through the
// very applyOp the tree walker uses. The equivalence tests compare the two
// evaluators bit for bit on randomized expressions.

import (
	"errors"
	"fmt"
	"math"
)

// Resolver supplies compile-time identifier and function resolution: the
// compile-time analogue of Env. Resolve maps a free identifier to its slot
// in the state vector handed to Program.Eval.
type Resolver interface {
	// Resolve returns the state-vector slot bound to name.
	Resolve(name string) (slot int, ok bool)
	// Function returns the lambda bound to name, for inlining.
	Function(name string) (Lambda, bool)
}

// BoundChecker is an optional Resolver refinement. When the resolver
// implements it, loads of slots for which NeedsBoundCheck reports true are
// compiled as checked loads: at evaluation time they consult the bound
// bitmap passed to Eval and fail like Eval's "unbound identifier" error
// when the slot is not (yet) bound. Simulators use this for symbols that
// exist in the model but acquire a value only once an assignment rule or
// event has run.
type BoundChecker interface {
	NeedsBoundCheck(slot int) bool
}

// SymbolTable is the standard Resolver: a dense name→slot interner with an
// attached function-definition table.
type SymbolTable struct {
	slots map[string]int
	names []string
	funcs map[string]Lambda
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{slots: make(map[string]int)}
}

// Intern returns the slot for name, assigning the next free slot on first
// use.
func (t *SymbolTable) Intern(name string) int {
	if s, ok := t.slots[name]; ok {
		return s
	}
	s := len(t.names)
	t.slots[name] = s
	t.names = append(t.names, name)
	return s
}

// Bind maps name to an existing slot, shadowing any earlier binding of the
// name without allocating a new slot. Simulators use it to express SBML's
// resolution layering (e.g. "time" over a like-named species).
func (t *SymbolTable) Bind(name string, slot int) { t.slots[name] = slot }

// Resolve implements Resolver.
func (t *SymbolTable) Resolve(name string) (int, bool) {
	s, ok := t.slots[name]
	return s, ok
}

// Slot is Resolve under its conventional name.
func (t *SymbolTable) Slot(name string) (int, bool) { return t.Resolve(name) }

// Function implements Resolver.
func (t *SymbolTable) Function(name string) (Lambda, bool) {
	f, ok := t.funcs[name]
	return f, ok
}

// DefineFunction registers a function definition for inlining.
func (t *SymbolTable) DefineFunction(id string, l Lambda) {
	if t.funcs == nil {
		t.funcs = make(map[string]Lambda)
	}
	t.funcs[id] = l
}

// Len returns the number of interned slots; state vectors passed to
// programs compiled against this table must be at least this long.
func (t *SymbolTable) Len() int { return len(t.names) }

// Names returns the interned names in slot order. The slice is live.
func (t *SymbolTable) Names() []string { return t.names }

// opcode enumerates the VM instructions.
type opcode uint8

const (
	opConst       opcode = iota // push f
	opLoad                      // push state[n]
	opLoadChecked               // push state[n], failing when !bound[n]
	opAddN                      // fold + over top n (identity 0, Eval order)
	opMulN                      // fold × over top n (identity 1)
	opNeg                       // unary minus
	opSub                       // binary minus
	opDiv                       // divide, error on zero divisor
	opPow                       // math.Pow
	opSqrt                      // single-argument root
	opUnary                     // unaryFuncs[n]
	opNot                       // logical not
	opEq2                       // binary ==
	opNeq                       // !=
	opGt                        // >
	opLt                        // <
	opGe                        // >=
	opLe                        // <=
	opAndN                      // n-ary and (no short-circuit, like Eval)
	opOrN                       // n-ary or
	opXorN                      // n-ary xor (odd count of nonzero)
	opMinN                      // n-ary min
	opMaxN                      // n-ary max
	opGeneric                   // applyOp(sym, top n) — rare operators
	opJmp                       // jump to n
	opJz                        // pop; jump to n when zero
	opNoPiece                   // piecewise fell through with no otherwise
	opPop                       // discard the top of stack
)

// instr is one VM instruction. n is a slot, argument count, unary-function
// index or jump target depending on op; f is the literal for opConst; sym
// carries the operator or identifier name for opGeneric and error messages.
type instr struct {
	op  opcode
	n   int32
	f   float64
	sym string
}

// unaryFuncs backs opUnary. Entries replicate applyOp's one-argument cases
// exactly (sec/csc/cot as reciprocals, log as log10).
var unaryFuncs = [...]func(float64) float64{
	math.Abs, math.Exp, math.Log, math.Log10, math.Floor, math.Ceil,
	math.Sin, math.Cos, math.Tan,
	func(x float64) float64 { return 1 / math.Cos(x) },
	func(x float64) float64 { return 1 / math.Sin(x) },
	func(x float64) float64 { return 1 / math.Tan(x) },
	math.Asin, math.Acos, math.Atan,
	math.Sinh, math.Cosh, math.Tanh,
}

// unaryIndex maps operator names to unaryFuncs entries.
var unaryIndex = map[string]int32{
	"abs": 0, "exp": 1, "ln": 2, "log": 3, "floor": 4, "ceiling": 5,
	"sin": 6, "cos": 7, "tan": 8, "sec": 9, "csc": 10, "cot": 11,
	"arcsin": 12, "arccos": 13, "arctan": 14,
	"sinh": 15, "cosh": 16, "tanh": 17,
}

// Preallocated runtime errors (messages identical to Eval's) so the error
// paths don't disturb the VM's zero-allocation guarantee.
var (
	errDivZero = errors.New("mathml: division by zero")
	errNoPiece = errors.New("mathml: piecewise with no matching piece and no otherwise")
)

// Program is a compiled expression: a flat instruction sequence evaluated
// against a state vector. A Program is immutable after Compile and safe for
// concurrent use; each goroutine supplies its own scratch stack.
type Program struct {
	code     []instr
	maxStack int
	checked  bool
}

// MaxStack returns the scratch-stack length Eval requires.
func (p *Program) MaxStack() int { return p.maxStack }

// Checked reports whether the program contains checked loads (and hence
// consults the bound bitmap).
func (p *Program) Checked() bool { return p.checked }

// NewStack allocates a scratch stack of the required size.
func (p *Program) NewStack() []float64 { return make([]float64, p.maxStack) }

// maxProgramLen bounds the compiled size; inlining nested function calls
// can in principle blow an expression up exponentially, and a runaway
// program is better reported than emitted.
const maxProgramLen = 1 << 20

// Compile translates e into a Program under the given resolver. Function
// applications are inlined (with Eval's recursion-depth limit), constant
// subtrees folded, and operator arities checked — arity mistakes Eval would
// report on every call surface once, here. Unresolvable identifiers are
// compile errors with Eval's wording.
func Compile(e Expr, r Resolver) (*Program, error) {
	if e == nil {
		return nil, fmt.Errorf("mathml: eval of nil expression")
	}
	inlined, err := inlineCalls(e, r, 0)
	if err != nil {
		return nil, err
	}
	c := &compiler{r: r}
	if bc, ok := r.(BoundChecker); ok {
		c.bc = bc
	}
	if err := c.emitExpr(foldConstants(inlined)); err != nil {
		return nil, err
	}
	if c.cur != 1 {
		return nil, fmt.Errorf("mathml: internal compile error: stack depth %d", c.cur)
	}
	return &Program{code: c.code, maxStack: c.max, checked: c.checked}, nil
}

// seqOp is an internal operator marking eager argument evaluation: all
// operands but the last are evaluated and discarded, then the last is the
// result. inlineCalls emits it so that a function argument Eval would have
// evaluated eagerly — but whose parameter the body uses only conditionally
// (or not at all) — still runs, and still surfaces its runtime errors. The
// NUL byte keeps it out of any parseable operator namespace.
const seqOp = "\x00seq"

// inlineCalls replaces user-defined function applications by their
// substituted bodies, mirroring Eval's call-by-value semantics: arguments
// are pure expressions, so by-name substitution computes identical values,
// and arguments the body does not unconditionally evaluate are forced
// through seqOp so their errors surface exactly as under eager evaluation.
func inlineCalls(e Expr, r Resolver, depth int) (Expr, error) {
	if depth > maxCallDepth {
		return nil, fmt.Errorf("mathml: call depth exceeded (recursive function definition?)")
	}
	switch x := e.(type) {
	case Apply:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			ia, err := inlineCalls(a, r, depth)
			if err != nil {
				return nil, err
			}
			args[i] = ia
		}
		if knownOperators[x.Op] {
			return Apply{Op: x.Op, Args: args}, nil
		}
		fn, ok := r.Function(x.Op)
		if !ok {
			return nil, fmt.Errorf("mathml: unknown operator or function %q", x.Op)
		}
		if len(fn.Params) != len(args) {
			return nil, fmt.Errorf("mathml: function %q wants %d args, got %d", x.Op, len(fn.Params), len(args))
		}
		repl := make(map[string]Expr, len(args))
		for i, p := range fn.Params {
			repl[p] = args[i]
		}
		body, err := inlineCalls(Substitute(fn.Body, repl), r, depth+1)
		if err != nil {
			return nil, err
		}
		// Eval computes every argument before entering the body; arguments
		// whose parameters the body evaluates only conditionally must be
		// forced so both evaluators fail on the same inputs. Literals
		// cannot fail and are skipped.
		uncond := unconditionalSyms(fn.Body)
		var forced []Expr
		for i, p := range fn.Params {
			if _, ok := args[i].(Num); ok {
				continue
			}
			if !uncond[p] {
				forced = append(forced, args[i])
			}
		}
		if len(forced) == 0 {
			return body, nil
		}
		return Apply{Op: seqOp, Args: append(forced, body)}, nil
	case Piecewise:
		pieces := make([]Piece, len(x.Pieces))
		for i, p := range x.Pieces {
			v, err := inlineCalls(p.Value, r, depth)
			if err != nil {
				return nil, err
			}
			cond, err := inlineCalls(p.Cond, r, depth)
			if err != nil {
				return nil, err
			}
			pieces[i] = Piece{Value: v, Cond: cond}
		}
		var other Expr
		if x.Otherwise != nil {
			var err error
			if other, err = inlineCalls(x.Otherwise, r, depth); err != nil {
				return nil, err
			}
		}
		return Piecewise{Pieces: pieces, Otherwise: other}, nil
	default:
		return e, nil
	}
}

// unconditionalSyms returns the free symbols e is guaranteed to evaluate
// whenever it is evaluated (successfully or not): all operands of an
// application are computed eagerly, but only a piecewise's first condition
// is certain to run. Lambda parameters shadow outer symbols. Used to decide
// which inlined function arguments need forcing; omitting a symbol here is
// safe (it merely forces an extra evaluation of a pure expression), wrongly
// including one is not.
func unconditionalSyms(e Expr) map[string]bool {
	out := make(map[string]bool)
	collectUnconditional(e, out, nil)
	return out
}

func collectUnconditional(e Expr, out map[string]bool, bound map[string]bool) {
	switch x := e.(type) {
	case Sym:
		if !bound[x.Name] {
			out[x.Name] = true
		}
	case Apply:
		for _, a := range x.Args {
			collectUnconditional(a, out, bound)
		}
	case Lambda:
		// A bare lambda fails before evaluating anything.
	case Piecewise:
		if len(x.Pieces) > 0 {
			collectUnconditional(x.Pieces[0].Cond, out, bound)
		} else if x.Otherwise != nil {
			collectUnconditional(x.Otherwise, out, bound)
		}
	}
}

// foldConstants collapses applications whose operands are all literals,
// using the very applyOp the runtime would, so the folded value is the
// value the instruction sequence would have produced. Applications that
// would error at runtime (division by zero, bad factorial) are left intact
// so the error still surfaces at evaluation time. Piecewise nodes fold
// their children but never collapse: Eval checks conditions lazily and
// folding across pieces could hide (or invent) runtime errors.
func foldConstants(e Expr) Expr {
	switch x := e.(type) {
	case Apply:
		args := make([]Expr, len(x.Args))
		allNum := true
		for i, a := range x.Args {
			args[i] = foldConstants(a)
			if _, ok := args[i].(Num); !ok {
				allNum = false
			}
		}
		if allNum && knownOperators[x.Op] {
			vals := make([]float64, len(args))
			for i, a := range args {
				vals[i] = a.(Num).Value
			}
			if v, err := applyOp(x.Op, vals); err == nil {
				return Num{Value: v}
			}
		}
		return Apply{Op: x.Op, Args: args}
	case Piecewise:
		pieces := make([]Piece, len(x.Pieces))
		for i, p := range x.Pieces {
			pieces[i] = Piece{Value: foldConstants(p.Value), Cond: foldConstants(p.Cond)}
		}
		var other Expr
		if x.Otherwise != nil {
			other = foldConstants(x.Otherwise)
		}
		return Piecewise{Pieces: pieces, Otherwise: other}
	default:
		return e
	}
}

// compiler emits instructions while tracking stack depth.
type compiler struct {
	r       Resolver
	bc      BoundChecker
	code    []instr
	cur     int
	max     int
	checked bool
}

// emit appends one instruction and returns its index (for jump patching).
func (c *compiler) emit(i instr) (int, error) {
	if len(c.code) >= maxProgramLen {
		return 0, fmt.Errorf("mathml: compiled program exceeds %d instructions (deeply nested function inlining?)", maxProgramLen)
	}
	c.code = append(c.code, i)
	return len(c.code) - 1, nil
}

// adjust moves the tracked stack depth.
func (c *compiler) adjust(delta int) {
	c.cur += delta
	if c.cur > c.max {
		c.max = c.cur
	}
}

func (c *compiler) emitExpr(e Expr) error {
	switch x := e.(type) {
	case nil:
		return fmt.Errorf("mathml: eval of nil expression")
	case Num:
		if _, err := c.emit(instr{op: opConst, f: x.Value}); err != nil {
			return err
		}
		c.adjust(1)
		return nil
	case Sym:
		slot, ok := c.r.Resolve(x.Name)
		if !ok {
			return fmt.Errorf("mathml: unbound identifier %q", x.Name)
		}
		op := opLoad
		if c.bc != nil && c.bc.NeedsBoundCheck(slot) {
			op = opLoadChecked
			c.checked = true
		}
		if _, err := c.emit(instr{op: op, n: int32(slot), sym: x.Name}); err != nil {
			return err
		}
		c.adjust(1)
		return nil
	case Apply:
		if x.Op == seqOp {
			return c.emitSeq(x)
		}
		return c.emitApply(x)
	case Lambda:
		return fmt.Errorf("mathml: cannot evaluate bare lambda")
	case Piecewise:
		return c.emitPiecewise(x)
	}
	return fmt.Errorf("mathml: unknown expression type %T", e)
}

// emitSeq compiles a seqOp marker: evaluate-and-discard every forced
// argument, then the body. Arguments that folded to literals cannot fail
// and are elided.
func (c *compiler) emitSeq(a Apply) error {
	for _, arg := range a.Args[:len(a.Args)-1] {
		if _, ok := arg.(Num); ok {
			continue
		}
		if err := c.emitExpr(arg); err != nil {
			return err
		}
		if _, err := c.emit(instr{op: opPop}); err != nil {
			return err
		}
		c.adjust(-1)
	}
	return c.emitExpr(a.Args[len(a.Args)-1])
}

// emitApply compiles one operator application. Arities mirror applyOp's
// checks; the error wording matches so compile-time diagnoses read like the
// runtime ones.
func (c *compiler) emitApply(a Apply) error {
	for _, arg := range a.Args {
		if err := c.emitExpr(arg); err != nil {
			return err
		}
	}
	n := len(a.Args)
	need := func(want int) error {
		if n != want {
			return fmt.Errorf("mathml: %s wants %d args, got %d", a.Op, want, n)
		}
		return nil
	}
	atLeast := func(want int) error {
		if n < want {
			return fmt.Errorf("mathml: %s wants at least %d args, got %d", a.Op, want, n)
		}
		return nil
	}
	nary := func(op opcode) error {
		if _, err := c.emit(instr{op: op, n: int32(n)}); err != nil {
			return err
		}
		c.adjust(1 - n) // n operands replaced by one result
		return nil
	}
	binary := func(op opcode) error {
		if err := need(2); err != nil {
			return err
		}
		if _, err := c.emit(instr{op: op}); err != nil {
			return err
		}
		c.adjust(-1)
		return nil
	}
	unary := func(op opcode, fn int32) error {
		if err := need(1); err != nil {
			return err
		}
		_, err := c.emit(instr{op: op, n: fn})
		return err
	}
	generic := func() error {
		if _, err := c.emit(instr{op: opGeneric, n: int32(n), sym: a.Op}); err != nil {
			return err
		}
		c.adjust(1 - n)
		return nil
	}
	switch a.Op {
	case "plus":
		return nary(opAddN)
	case "times":
		return nary(opMulN)
	case "minus":
		if n == 1 {
			return unary(opNeg, 0)
		}
		return binary(opSub)
	case "divide":
		return binary(opDiv)
	case "power":
		return binary(opPow)
	case "root":
		if n == 1 {
			return unary(opSqrt, 0)
		}
		if err := need(2); err != nil {
			return err
		}
		return generic() // zeroth-root check lives in applyOp
	case "log":
		if n == 1 {
			return unary(opUnary, unaryIndex["log"])
		}
		if err := need(2); err != nil {
			return err
		}
		return generic() // arbitrary-base log
	case "abs", "exp", "ln", "floor", "ceiling",
		"sin", "cos", "tan", "sec", "csc", "cot",
		"arcsin", "arccos", "arctan", "sinh", "cosh", "tanh":
		return unary(opUnary, unaryIndex[a.Op])
	case "not":
		return unary(opNot, 0)
	case "factorial":
		if err := need(1); err != nil {
			return err
		}
		return generic() // domain checks live in applyOp
	case "eq":
		if err := atLeast(2); err != nil {
			return err
		}
		if n == 2 {
			if _, err := c.emit(instr{op: opEq2}); err != nil {
				return err
			}
			c.adjust(-1)
			return nil
		}
		return generic()
	case "neq":
		return binary(opNeq)
	case "gt":
		return binary(opGt)
	case "lt":
		return binary(opLt)
	case "geq":
		return binary(opGe)
	case "leq":
		return binary(opLe)
	case "and":
		return nary(opAndN)
	case "or":
		return nary(opOrN)
	case "xor":
		return nary(opXorN)
	case "min":
		if err := atLeast(1); err != nil {
			return err
		}
		return nary(opMinN)
	case "max":
		if err := atLeast(1); err != nil {
			return err
		}
		return nary(opMaxN)
	case "gcd", "lcm":
		if err := atLeast(1); err != nil {
			return err
		}
		return generic()
	}
	// inlineCalls resolved every non-operator application, so this is a
	// MathML operator the VM has no lowering for.
	return fmt.Errorf("mathml: unimplemented operator %q", a.Op)
}

// emitPiecewise lowers lazy condition evaluation to conditional jumps:
// conditions run in order, the first nonzero one selects its value, later
// pieces are skipped entirely — exactly Eval's traversal.
func (c *compiler) emitPiecewise(p Piecewise) error {
	base := c.cur
	var ends []int
	for _, piece := range p.Pieces {
		if err := c.emitExpr(piece.Cond); err != nil {
			return err
		}
		jz, err := c.emit(instr{op: opJz})
		if err != nil {
			return err
		}
		c.adjust(-1)
		if err := c.emitExpr(piece.Value); err != nil {
			return err
		}
		jmp, err := c.emit(instr{op: opJmp})
		if err != nil {
			return err
		}
		ends = append(ends, jmp)
		c.code[jz].n = int32(len(c.code))
		c.cur = base // the fall-through path re-enters with the piece's value popped
	}
	if p.Otherwise != nil {
		if err := c.emitExpr(p.Otherwise); err != nil {
			return err
		}
	} else {
		if _, err := c.emit(instr{op: opNoPiece}); err != nil {
			return err
		}
		c.adjust(1) // unreachable fall-through; keep depth accounting consistent
	}
	for _, jmp := range ends {
		c.code[jmp].n = int32(len(c.code))
	}
	return nil
}

// Eval runs the program over the state vector. stack is caller-owned
// scratch of at least MaxStack() elements (a short or nil stack is
// replaced, at the cost of an allocation). bound is consulted only by
// checked loads and may be nil otherwise; bound[slot] reports whether the
// slot currently holds a value. The fast path performs no allocation.
func (p *Program) Eval(state, stack []float64, bound []bool) (float64, error) {
	if len(stack) < p.maxStack {
		stack = make([]float64, p.maxStack)
	}
	sp := 0
	code := p.code
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		switch in.op {
		case opConst:
			stack[sp] = in.f
			sp++
		case opLoad:
			stack[sp] = state[in.n]
			sp++
		case opLoadChecked:
			if bound != nil && !bound[in.n] {
				return 0, fmt.Errorf("mathml: unbound identifier %q", in.sym)
			}
			stack[sp] = state[in.n]
			sp++
		case opAddN:
			n := int(in.n)
			sum := 0.0
			for i := sp - n; i < sp; i++ {
				sum += stack[i]
			}
			sp -= n
			stack[sp] = sum
			sp++
		case opMulN:
			n := int(in.n)
			prod := 1.0
			for i := sp - n; i < sp; i++ {
				prod *= stack[i]
			}
			sp -= n
			stack[sp] = prod
			sp++
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opSub:
			stack[sp-2] -= stack[sp-1]
			sp--
		case opDiv:
			if stack[sp-1] == 0 {
				return 0, errDivZero
			}
			stack[sp-2] /= stack[sp-1]
			sp--
		case opPow:
			stack[sp-2] = math.Pow(stack[sp-2], stack[sp-1])
			sp--
		case opSqrt:
			stack[sp-1] = math.Sqrt(stack[sp-1])
		case opUnary:
			stack[sp-1] = unaryFuncs[in.n](stack[sp-1])
		case opNot:
			stack[sp-1] = b2f(stack[sp-1] == 0)
		case opEq2:
			stack[sp-2] = b2f(stack[sp-2] == stack[sp-1])
			sp--
		case opNeq:
			stack[sp-2] = b2f(stack[sp-2] != stack[sp-1])
			sp--
		case opGt:
			stack[sp-2] = b2f(stack[sp-2] > stack[sp-1])
			sp--
		case opLt:
			stack[sp-2] = b2f(stack[sp-2] < stack[sp-1])
			sp--
		case opGe:
			stack[sp-2] = b2f(stack[sp-2] >= stack[sp-1])
			sp--
		case opLe:
			stack[sp-2] = b2f(stack[sp-2] <= stack[sp-1])
			sp--
		case opAndN:
			n := int(in.n)
			v := 1.0
			for i := sp - n; i < sp; i++ {
				if stack[i] == 0 {
					v = 0
					break
				}
			}
			sp -= n
			stack[sp] = v
			sp++
		case opOrN:
			n := int(in.n)
			v := 0.0
			for i := sp - n; i < sp; i++ {
				if stack[i] != 0 {
					v = 1
					break
				}
			}
			sp -= n
			stack[sp] = v
			sp++
		case opXorN:
			n := int(in.n)
			cnt := 0
			for i := sp - n; i < sp; i++ {
				if stack[i] != 0 {
					cnt++
				}
			}
			sp -= n
			stack[sp] = b2f(cnt%2 == 1)
			sp++
		case opMinN:
			n := int(in.n)
			m := stack[sp-n]
			for i := sp - n + 1; i < sp; i++ {
				m = math.Min(m, stack[i])
			}
			sp -= n
			stack[sp] = m
			sp++
		case opMaxN:
			n := int(in.n)
			m := stack[sp-n]
			for i := sp - n + 1; i < sp; i++ {
				m = math.Max(m, stack[i])
			}
			sp -= n
			stack[sp] = m
			sp++
		case opGeneric:
			n := int(in.n)
			v, err := applyOp(in.sym, stack[sp-n:sp])
			if err != nil {
				return 0, err
			}
			sp -= n
			stack[sp] = v
			sp++
		case opJmp:
			pc = int(in.n) - 1
		case opJz:
			sp--
			if stack[sp] == 0 {
				pc = int(in.n) - 1
			}
		case opNoPiece:
			return 0, errNoPiece
		case opPop:
			sp--
		}
	}
	return stack[0], nil
}

// b2f encodes a boolean as MathML's numeric truth values.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
