package mathml

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// tableFor builds a symbol table and matching MapEnv over the given
// bindings.
func tableFor(vals map[string]float64, funcs map[string]Lambda) (*SymbolTable, []float64, *MapEnv) {
	st := NewSymbolTable()
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	// Deterministic slot order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	state := make([]float64, len(names))
	for _, name := range names {
		state[st.Intern(name)] = vals[name]
	}
	for id, l := range funcs {
		st.DefineFunction(id, l)
	}
	return st, state, &MapEnv{Values: vals, Functions: funcs}
}

func TestCompileBasicParity(t *testing.T) {
	vals := map[string]float64{"a": 2.5, "b": -3, "c": 0.125, "k": 4}
	funcs := map[string]Lambda{
		"mm": {Params: []string{"s", "v", "km"}, Body: MustParseInfix("v*s/(km+s)")},
	}
	st, state, env := tableFor(vals, funcs)
	exprs := []string{
		"a + b*c - k^2",
		"mm(a, k, c) + mm(b, a, k)",
		"a/c",
		"min(a, b, c) + max(a, b) - abs(b)",
		"exp(c) * ln(a) + sin(b) - cos(a)/tan(c)",
		"floor(a) + ceiling(c)",
		"(a > b) + (a < b) + (a >= b) + (a <= b) + (a == a) + (a != b)",
		"2^10 + 3*7 - 1",
		"root(k)",
		"-a + -(b*c)",
	}
	for _, src := range exprs {
		e := MustParseInfix(src)
		want, werr := Eval(e, env)
		prog, cerr := Compile(e, st)
		if cerr != nil {
			t.Fatalf("%s: compile: %v", src, cerr)
		}
		got, gerr := prog.Eval(state, prog.NewStack(), nil)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s: error mismatch: eval=%v compiled=%v", src, werr, gerr)
		}
		if werr == nil && math.Float64bits(want) != math.Float64bits(got) {
			t.Errorf("%s: eval=%v compiled=%v", src, want, got)
		}
	}
}

func TestCompilePiecewiseLaziness(t *testing.T) {
	// The second piece divides by zero but the first condition selects; the
	// compiled program must skip it exactly like the tree walker.
	e := Piecewise{
		Pieces: []Piece{
			{Cond: MustParseInfix("a > 0"), Value: N(7)},
			{Cond: MustParseInfix("a <= 0"), Value: MustParseInfix("1/zero")},
		},
	}
	st, state, env := tableFor(map[string]float64{"a": 1, "zero": 0}, nil)
	prog, err := Compile(e, st)
	if err != nil {
		t.Fatal(err)
	}
	want, werr := Eval(e, env)
	got, gerr := prog.Eval(state, prog.NewStack(), nil)
	if werr != nil || gerr != nil {
		t.Fatalf("unexpected errors: %v / %v", werr, gerr)
	}
	if want != 7 || got != 7 {
		t.Fatalf("want 7/7, got %v/%v", want, got)
	}
	// Flip the guard: both evaluators must now hit the division by zero
	// with the same message.
	state[st.Intern("a")] = -1
	env.Values["a"] = -1
	_, werr = Eval(e, env)
	_, gerr = prog.Eval(state, prog.NewStack(), nil)
	if werr == nil || gerr == nil || werr.Error() != gerr.Error() {
		t.Fatalf("error parity: eval=%v compiled=%v", werr, gerr)
	}
}

func TestCompilePiecewiseNoMatch(t *testing.T) {
	e := Piecewise{Pieces: []Piece{{Cond: MustParseInfix("a > 10"), Value: N(1)}}}
	st, state, env := tableFor(map[string]float64{"a": 0}, nil)
	prog, err := Compile(e, st)
	if err != nil {
		t.Fatal(err)
	}
	_, werr := Eval(e, env)
	_, gerr := prog.Eval(state, prog.NewStack(), nil)
	if werr == nil || gerr == nil || werr.Error() != gerr.Error() {
		t.Fatalf("error parity: eval=%v compiled=%v", werr, gerr)
	}
}

func TestCompileErrors(t *testing.T) {
	st := NewSymbolTable()
	st.Intern("x")
	cases := []struct {
		e    Expr
		want string
	}{
		{S("ghost"), "unbound identifier"},
		{Call("nosuchfn", N(1)), "unknown operator or function"},
		{Call("divide", N(1)), "wants 2 args"},
		{Lambda{Params: []string{"p"}, Body: N(1)}, "bare lambda"},
		{nil, "nil expression"},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.e, st); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Compile(%v) error = %v, want %q", tc.e, err, tc.want)
		}
	}
	// Recursive function definitions exhaust the inline depth.
	st.DefineFunction("f", Lambda{Params: []string{"p"}, Body: Call("f", S("p"))})
	if _, err := Compile(Call("f", N(1)), st); err == nil || !strings.Contains(err.Error(), "call depth") {
		t.Errorf("recursive inline error = %v", err)
	}
}

// TestCompileCallByValueErrorParity pins Eval's eager-argument semantics
// through inlining: an argument whose parameter the body never evaluates
// (unused, or reachable only through an untaken piecewise branch) must
// still run and still fail.
func TestCompileCallByValueErrorParity(t *testing.T) {
	funcs := map[string]Lambda{
		"constfn": {Params: []string{"x"}, Body: N(1)},
		"guarded": {Params: []string{"x", "sel"}, Body: Piecewise{
			Pieces:    []Piece{{Cond: MustParseInfix("sel > 0"), Value: S("x")}},
			Otherwise: N(0),
		}},
	}
	st, state, env := tableFor(map[string]float64{"a": 3, "zero": 0}, funcs)
	for _, src := range []string{
		"constfn(1/zero)",              // unused parameter
		"guarded(1/zero, 0 - 1)",       // parameter behind an untaken branch
		"constfn(a) + constfn(a/zero)", // one healthy call, one failing
	} {
		e := MustParseInfix(src)
		_, werr := Eval(e, env)
		prog, cerr := Compile(e, st)
		if cerr != nil {
			t.Fatalf("%s: compile: %v", src, cerr)
		}
		_, gerr := prog.Eval(state, prog.NewStack(), nil)
		if werr == nil || gerr == nil {
			t.Fatalf("%s: both evaluators must fail: eval=%v compiled=%v", src, werr, gerr)
		}
	}
	// And the healthy path still computes the same value with no
	// spurious forcing cost for literals.
	e := MustParseInfix("constfn(a) + guarded(a, 1)")
	want, werr := Eval(e, env)
	prog, cerr := Compile(e, st)
	if cerr != nil {
		t.Fatal(cerr)
	}
	got, gerr := prog.Eval(state, prog.NewStack(), nil)
	if werr != nil || gerr != nil || math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("healthy call: eval=%v/%v compiled=%v/%v", want, werr, got, gerr)
	}
}

func TestCompileCheckedLoads(t *testing.T) {
	st := NewSymbolTable()
	xs := st.Intern("x")
	ys := st.Intern("y")
	r := &checkedTable{SymbolTable: st, unbound: map[int]bool{ys: true}}
	prog, err := Compile(MustParseInfix("x + y"), r)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Checked() {
		t.Fatal("program should contain checked loads")
	}
	state := []float64{3, 4}
	bound := []bool{true, false}
	if _, err := prog.Eval(state, prog.NewStack(), bound); err == nil || !strings.Contains(err.Error(), `unbound identifier "y"`) {
		t.Fatalf("unbound load error = %v", err)
	}
	bound[ys] = true
	v, err := prog.Eval(state, prog.NewStack(), bound)
	if err != nil || v != 7 {
		t.Fatalf("bound eval = %v, %v", v, err)
	}
	_ = xs
}

type checkedTable struct {
	*SymbolTable
	unbound map[int]bool
}

func (c *checkedTable) NeedsBoundCheck(slot int) bool { return c.unbound[slot] }

// randomExpr generates a deterministic random expression over the given
// variables. Arities are always valid (arity mistakes are compile errors by
// design), but runtime errors (division by zero and friends) can and should
// occur so error parity is exercised.
func randomVMExpr(r *rand.Rand, vars []string, depth int) Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			// Small integers and awkward literals.
			lits := []float64{0, 1, -1, 2, 0.5, -3.25, 10}
			return N(lits[r.Intn(len(lits))])
		}
		return S(vars[r.Intn(len(vars))])
	}
	sub := func() Expr { return randomVMExpr(r, vars, depth-1) }
	switch r.Intn(12) {
	case 0:
		n := 2 + r.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = sub()
		}
		return Apply{Op: "plus", Args: args}
	case 1:
		n := 2 + r.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = sub()
		}
		return Apply{Op: "times", Args: args}
	case 2:
		return Sub(sub(), sub())
	case 3:
		return Neg(sub())
	case 4:
		return Div(sub(), sub())
	case 5:
		return Pow(sub(), N(float64(r.Intn(4))))
	case 6:
		ops := []string{"gt", "lt", "geq", "leq", "eq", "neq"}
		return Call(ops[r.Intn(len(ops))], sub(), sub())
	case 7:
		ops := []string{"and", "or", "xor"}
		n := 2 + r.Intn(2)
		args := make([]Expr, n)
		for i := range args {
			args[i] = sub()
		}
		return Apply{Op: ops[r.Intn(len(ops))], Args: args}
	case 8:
		ops := []string{"abs", "exp", "sin", "cos", "floor", "ceiling", "tanh"}
		return Call(ops[r.Intn(len(ops))], sub())
	case 9:
		ops := []string{"min", "max"}
		n := 1 + r.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = sub()
		}
		return Apply{Op: ops[r.Intn(len(ops))], Args: args}
	case 10:
		// Piecewise with 1-2 pieces and optional otherwise.
		pieces := []Piece{{Cond: Call("gt", sub(), N(0)), Value: sub()}}
		if r.Intn(2) == 0 {
			pieces = append(pieces, Piece{Cond: Call("leq", sub(), N(1)), Value: sub()})
		}
		var other Expr
		if r.Intn(3) > 0 {
			other = sub()
		}
		return Piecewise{Pieces: pieces, Otherwise: other}
	default:
		// User-defined call whose body references every parameter, so the
		// tree walker's eager argument evaluation and the compiler's
		// inlining agree on which errors surface.
		return Call("fsum", sub(), sub())
	}
}

func TestCompileRandomizedEquivalence(t *testing.T) {
	vars := []string{"a", "b", "c", "d"}
	funcs := map[string]Lambda{
		"fsum": {Params: []string{"u", "v"}, Body: MustParseInfix("u*v + u - v")},
	}
	r := rand.New(rand.NewSource(20100322))
	for trial := 0; trial < 400; trial++ {
		e := randomVMExpr(r, vars, 4)
		vals := make(map[string]float64, len(vars))
		for _, v := range vars {
			// Mix of zeros, negatives, fractions to provoke error paths.
			switch r.Intn(4) {
			case 0:
				vals[v] = 0
			case 1:
				vals[v] = float64(r.Intn(7) - 3)
			default:
				vals[v] = r.NormFloat64() * 3
			}
		}
		st, state, env := tableFor(vals, funcs)
		prog, cerr := Compile(e, st)
		if cerr != nil {
			t.Fatalf("trial %d: compile of %s: %v", trial, e, cerr)
		}
		stack := prog.NewStack()
		for probe := 0; probe < 3; probe++ {
			want, werr := Eval(e, env)
			got, gerr := prog.Eval(state, stack, nil)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("trial %d probe %d: %s\nerror mismatch: eval=%v compiled=%v", trial, probe, e, werr, gerr)
			}
			if werr == nil && math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("trial %d probe %d: %s\neval=%x compiled=%x", trial, probe, e, math.Float64bits(want), math.Float64bits(got))
			}
			// New state for the next probe, shared table.
			for _, v := range vars {
				nv := r.NormFloat64()
				vals[v] = nv
				state[mustSlot(st, v)] = nv
			}
		}
	}
}

func mustSlot(st *SymbolTable, name string) int {
	s, ok := st.Slot(name)
	if !ok {
		panic("missing slot " + name)
	}
	return s
}

func TestCompileConstantFolding(t *testing.T) {
	st := NewSymbolTable()
	st.Intern("x")
	prog, err := Compile(MustParseInfix("(2*3 + 4^2) * x"), st)
	if err != nil {
		t.Fatal(err)
	}
	// 2*3+4^2 folds to one constant: const, load, times.
	if len(prog.code) != 3 {
		t.Errorf("folded program has %d instructions, want 3", len(prog.code))
	}
	v, err := prog.Eval([]float64{2}, prog.NewStack(), nil)
	if err != nil || v != 44 {
		t.Errorf("eval = %v, %v; want 44", v, err)
	}
	// Division by zero must NOT fold: the error belongs to evaluation time.
	prog, err = Compile(MustParseInfix("x + 1/0"), st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Eval([]float64{2}, prog.NewStack(), nil); err == nil {
		t.Error("constant division by zero should still error at eval time")
	}
}

func TestCompileEvalNoAllocs(t *testing.T) {
	st := NewSymbolTable()
	st.Intern("s")
	st.Intern("vmax")
	st.Intern("km")
	prog, err := Compile(Add(MustParseInfix("vmax*s/(km+s)"), Mul(Call("min", S("s"), S("km")), Piecewise{Pieces: []Piece{{Cond: MustParseInfix("s > 0"), Value: N(1)}}, Otherwise: N(0)})), st)
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{2, 5, 1.5}
	stack := prog.NewStack()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := prog.Eval(state, stack, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Program.Eval allocates %v per call, want 0", allocs)
	}
}

func BenchmarkEvalTree(b *testing.B) {
	env := &MapEnv{Values: map[string]float64{"s": 2, "vmax": 5, "km": 1.5, "k": 0.3}}
	e := MustParseInfix("vmax*s/(km+s) + k*s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(e, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCompiled(b *testing.B) {
	st, state, _ := tableFor(map[string]float64{"s": 2, "vmax": 5, "km": 1.5, "k": 0.3}, nil)
	prog, err := Compile(MustParseInfix("vmax*s/(km+s) + k*s"), st)
	if err != nil {
		b.Fatal(err)
	}
	stack := prog.NewStack()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Eval(state, stack, nil); err != nil {
			b.Fatal(err)
		}
	}
}
