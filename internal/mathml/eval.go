package mathml

import (
	"fmt"
	"math"
)

// Env supplies identifier values and user-defined functions during
// evaluation. Identifiers include species, parameters and compartments; the
// functions are SBML function definitions (lambdas).
type Env interface {
	// Value returns the numeric value bound to name.
	Value(name string) (float64, bool)
	// Function returns the lambda bound to name.
	Function(name string) (Lambda, bool)
}

// MapEnv is a simple Env backed by maps. A nil MapEnv resolves nothing.
type MapEnv struct {
	Values    map[string]float64
	Functions map[string]Lambda
}

// Value implements Env.
func (m *MapEnv) Value(name string) (float64, bool) {
	if m == nil {
		return 0, false
	}
	v, ok := m.Values[name]
	return v, ok
}

// Function implements Env.
func (m *MapEnv) Function(name string) (Lambda, bool) {
	if m == nil {
		return Lambda{}, false
	}
	f, ok := m.Functions[name]
	return f, ok
}

// overlayEnv shadows a base Env with local bindings (lambda arguments).
type overlayEnv struct {
	base   Env
	locals map[string]float64
}

func (o overlayEnv) Value(name string) (float64, bool) {
	if v, ok := o.locals[name]; ok {
		return v, true
	}
	return o.base.Value(name)
}

func (o overlayEnv) Function(name string) (Lambda, bool) { return o.base.Function(name) }

const maxCallDepth = 64

// Eval computes the numeric value of e under env. Boolean results are
// encoded as 1 (true) and 0 (false), following MathML's numeric treatment.
func Eval(e Expr, env Env) (float64, error) {
	return eval(e, env, 0)
}

func eval(e Expr, env Env, depth int) (float64, error) {
	if depth > maxCallDepth {
		return 0, fmt.Errorf("mathml: call depth exceeded (recursive function definition?)")
	}
	switch x := e.(type) {
	case nil:
		return 0, fmt.Errorf("mathml: eval of nil expression")
	case Num:
		return x.Value, nil
	case Sym:
		if v, ok := env.Value(x.Name); ok {
			return v, nil
		}
		return 0, fmt.Errorf("mathml: unbound identifier %q", x.Name)
	case Apply:
		return evalApply(x, env, depth)
	case Lambda:
		return 0, fmt.Errorf("mathml: cannot evaluate bare lambda")
	case Piecewise:
		for _, p := range x.Pieces {
			c, err := eval(p.Cond, env, depth)
			if err != nil {
				return 0, err
			}
			if c != 0 {
				return eval(p.Value, env, depth)
			}
		}
		if x.Otherwise != nil {
			return eval(x.Otherwise, env, depth)
		}
		return 0, fmt.Errorf("mathml: piecewise with no matching piece and no otherwise")
	}
	return 0, fmt.Errorf("mathml: unknown expression type %T", e)
}

func evalApply(a Apply, env Env, depth int) (float64, error) {
	// User-defined function call.
	if !knownOperators[a.Op] {
		fn, ok := env.Function(a.Op)
		if !ok {
			return 0, fmt.Errorf("mathml: unknown operator or function %q", a.Op)
		}
		if len(fn.Params) != len(a.Args) {
			return 0, fmt.Errorf("mathml: function %q wants %d args, got %d", a.Op, len(fn.Params), len(a.Args))
		}
		locals := make(map[string]float64, len(a.Args))
		for i, arg := range a.Args {
			v, err := eval(arg, env, depth+1)
			if err != nil {
				return 0, err
			}
			locals[fn.Params[i]] = v
		}
		return eval(fn.Body, overlayEnv{base: env, locals: locals}, depth+1)
	}

	args := make([]float64, len(a.Args))
	for i, arg := range a.Args {
		v, err := eval(arg, env, depth)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	return applyOp(a.Op, args)
}

func applyOp(op string, args []float64) (float64, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("mathml: %s wants %d args, got %d", op, n, len(args))
		}
		return nil
	}
	atLeast := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("mathml: %s wants at least %d args, got %d", op, n, len(args))
		}
		return nil
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case "plus":
		sum := 0.0
		for _, v := range args {
			sum += v
		}
		return sum, nil
	case "times":
		prod := 1.0
		for _, v := range args {
			prod *= v
		}
		return prod, nil
	case "minus":
		if len(args) == 1 {
			return -args[0], nil
		}
		if err := need(2); err != nil {
			return 0, err
		}
		return args[0] - args[1], nil
	case "divide":
		if err := need(2); err != nil {
			return 0, err
		}
		if args[1] == 0 {
			return 0, fmt.Errorf("mathml: division by zero")
		}
		return args[0] / args[1], nil
	case "power":
		if err := need(2); err != nil {
			return 0, err
		}
		return math.Pow(args[0], args[1]), nil
	case "root":
		if len(args) == 1 {
			return math.Sqrt(args[0]), nil
		}
		if err := need(2); err != nil {
			return 0, err
		}
		if args[0] == 0 {
			return 0, fmt.Errorf("mathml: zeroth root")
		}
		return math.Pow(args[1], 1/args[0]), nil
	case "abs":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Abs(args[0]), nil
	case "exp":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Exp(args[0]), nil
	case "ln":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Log(args[0]), nil
	case "log":
		if len(args) == 1 {
			return math.Log10(args[0]), nil
		}
		if err := need(2); err != nil {
			return 0, err
		}
		// log base args[0] of args[1]
		return math.Log(args[1]) / math.Log(args[0]), nil
	case "floor":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Floor(args[0]), nil
	case "ceiling":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Ceil(args[0]), nil
	case "factorial":
		if err := need(1); err != nil {
			return 0, err
		}
		n := args[0]
		if n < 0 || n != math.Trunc(n) || n > 170 {
			return 0, fmt.Errorf("mathml: factorial of %v", n)
		}
		r := 1.0
		for i := 2.0; i <= n; i++ {
			r *= i
		}
		return r, nil
	case "eq":
		if err := atLeast(2); err != nil {
			return 0, err
		}
		for i := 1; i < len(args); i++ {
			if args[i] != args[0] {
				return 0, nil
			}
		}
		return 1, nil
	case "neq":
		if err := need(2); err != nil {
			return 0, err
		}
		return b2f(args[0] != args[1]), nil
	case "gt":
		if err := need(2); err != nil {
			return 0, err
		}
		return b2f(args[0] > args[1]), nil
	case "lt":
		if err := need(2); err != nil {
			return 0, err
		}
		return b2f(args[0] < args[1]), nil
	case "geq":
		if err := need(2); err != nil {
			return 0, err
		}
		return b2f(args[0] >= args[1]), nil
	case "leq":
		if err := need(2); err != nil {
			return 0, err
		}
		return b2f(args[0] <= args[1]), nil
	case "and":
		for _, v := range args {
			if v == 0 {
				return 0, nil
			}
		}
		return 1, nil
	case "or":
		for _, v := range args {
			if v != 0 {
				return 1, nil
			}
		}
		return 0, nil
	case "xor":
		cnt := 0
		for _, v := range args {
			if v != 0 {
				cnt++
			}
		}
		return b2f(cnt%2 == 1), nil
	case "not":
		if err := need(1); err != nil {
			return 0, err
		}
		return b2f(args[0] == 0), nil
	case "sin":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Sin(args[0]), nil
	case "cos":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Cos(args[0]), nil
	case "tan":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Tan(args[0]), nil
	case "sec":
		if err := need(1); err != nil {
			return 0, err
		}
		return 1 / math.Cos(args[0]), nil
	case "csc":
		if err := need(1); err != nil {
			return 0, err
		}
		return 1 / math.Sin(args[0]), nil
	case "cot":
		if err := need(1); err != nil {
			return 0, err
		}
		return 1 / math.Tan(args[0]), nil
	case "arcsin":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Asin(args[0]), nil
	case "arccos":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Acos(args[0]), nil
	case "arctan":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Atan(args[0]), nil
	case "sinh":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Sinh(args[0]), nil
	case "cosh":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Cosh(args[0]), nil
	case "tanh":
		if err := need(1); err != nil {
			return 0, err
		}
		return math.Tanh(args[0]), nil
	case "min":
		if err := atLeast(1); err != nil {
			return 0, err
		}
		m := args[0]
		for _, v := range args[1:] {
			m = math.Min(m, v)
		}
		return m, nil
	case "max":
		if err := atLeast(1); err != nil {
			return 0, err
		}
		m := args[0]
		for _, v := range args[1:] {
			m = math.Max(m, v)
		}
		return m, nil
	case "gcd":
		if err := atLeast(1); err != nil {
			return 0, err
		}
		g := int64(math.Abs(args[0]))
		for _, v := range args[1:] {
			g = gcd64(g, int64(math.Abs(v)))
		}
		return float64(g), nil
	case "lcm":
		if err := atLeast(1); err != nil {
			return 0, err
		}
		l := int64(math.Abs(args[0]))
		for _, v := range args[1:] {
			b := int64(math.Abs(v))
			if g := gcd64(l, b); g != 0 {
				l = l / g * b
			} else {
				l = 0
			}
		}
		return float64(l), nil
	}
	return 0, fmt.Errorf("mathml: unimplemented operator %q", op)
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
