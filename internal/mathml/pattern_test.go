package mathml

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPatternCommutativity(t *testing.T) {
	equal := [][2]string{
		{"a+b", "b+a"},
		{"a*b*c", "c*b*a"},
		{"a*b + c*d", "d*c + b*a"},
		{"k1*A - k2*B", "A*k1 - B*k2"},
		{"(a+b)+c", "a+(b+c)"}, // associativity flattening
		{"a*(b*c)", "(a*b)*c"},
		{"min(a,b)", "min(b,a)"},
		{"x == y", "y == x"},
		{"p && q", "q && p"},
	}
	for _, pair := range equal {
		a, b := MustParseInfix(pair[0]), MustParseInfix(pair[1])
		if Pattern(a, nil) != Pattern(b, nil) {
			t.Errorf("patterns differ for %q vs %q:\n%s\n%s", pair[0], pair[1], Pattern(a, nil), Pattern(b, nil))
		}
	}
}

func TestPatternNonCommutative(t *testing.T) {
	different := [][2]string{
		{"a-b", "b-a"},
		{"a/b", "b/a"},
		{"a^b", "b^a"},
		{"a < b", "b < a"},
		{"a+b", "a*b"},
		{"a+b", "a+c"},
		{"f(a,b)", "f(b,a)"}, // user functions are not assumed commutative
	}
	for _, pair := range different {
		a, b := MustParseInfix(pair[0]), MustParseInfix(pair[1])
		if Pattern(a, nil) == Pattern(b, nil) {
			t.Errorf("patterns should differ for %q vs %q: %s", pair[0], pair[1], Pattern(a, nil))
		}
	}
}

func TestPatternWithMappings(t *testing.T) {
	// Model 1 calls the species "glucose"; model 2 calls it "G". With the
	// mapping recorded the kinetic laws must match.
	a := MustParseInfix("k*glucose")
	b := MustParseInfix("G*k")
	if PatternEqual(a, b, nil) {
		t.Fatal("should not match without mapping")
	}
	if !PatternEqual(a, b, map[string]string{"glucose": "G"}) {
		t.Fatal("should match with mapping applied")
	}
}

func TestPatternLambdaAlphaEquivalence(t *testing.T) {
	f := Lambda{Params: []string{"x"}, Body: MustParseInfix("x + k")}
	g := Lambda{Params: []string{"y"}, Body: MustParseInfix("y + k")}
	h := Lambda{Params: []string{"y"}, Body: MustParseInfix("y + j")}
	if Pattern(f, nil) != Pattern(g, nil) {
		t.Error("alpha-equivalent lambdas should share a pattern")
	}
	if Pattern(f, nil) == Pattern(h, nil) {
		t.Error("lambdas with different free vars must differ")
	}
}

func TestPatternPiecewise(t *testing.T) {
	a := MustParseInfix("x")
	pw1 := Piecewise{Pieces: []Piece{{Value: N(1), Cond: MustParseInfix("x<0")}}, Otherwise: a}
	pw2 := Piecewise{Pieces: []Piece{{Value: N(1), Cond: MustParseInfix("x<0")}}, Otherwise: a}
	pw3 := Piecewise{Pieces: []Piece{{Value: N(2), Cond: MustParseInfix("x<0")}}, Otherwise: a}
	if Pattern(pw1, nil) != Pattern(pw2, nil) {
		t.Error("identical piecewise should match")
	}
	if Pattern(pw1, nil) == Pattern(pw3, nil) {
		t.Error("different piecewise values must differ")
	}
}

// randomExpr builds a random expression over the given symbols.
func randomExpr(r *rand.Rand, syms []string, depth int) Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return Sym{Name: syms[r.Intn(len(syms))]}
		}
		return Num{Value: float64(r.Intn(10))}
	}
	ops := []string{"plus", "times", "minus", "divide", "power"}
	op := ops[r.Intn(len(ops))]
	n := 2
	if op == "plus" || op == "times" {
		n = 2 + r.Intn(2)
	}
	args := make([]Expr, n)
	for i := range args {
		args[i] = randomExpr(r, syms, depth-1)
	}
	return Apply{Op: op, Args: args}
}

// shuffleCommutative returns a copy of e with the argument order of every
// commutative application randomly permuted.
func shuffleCommutative(r *rand.Rand, e Expr) Expr {
	ap, ok := e.(Apply)
	if !ok {
		return e
	}
	args := make([]Expr, len(ap.Args))
	for i, a := range ap.Args {
		args[i] = shuffleCommutative(r, a)
	}
	if IsCommutative(ap.Op) {
		r.Shuffle(len(args), func(i, j int) { args[i], args[j] = args[j], args[i] })
	}
	return Apply{Op: ap.Op, Args: args}
}

func TestQuickPatternInvariantUnderShuffle(t *testing.T) {
	syms := []string{"a", "b", "c", "k1", "k2"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, syms, 4)
		shuffled := shuffleCommutative(r, e)
		return Pattern(e, nil) == Pattern(shuffled, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPatternDistinguishesValues(t *testing.T) {
	// Two random expressions with equal patterns must evaluate equally on a
	// shared environment (soundness of pattern matching). We test the
	// contrapositive-friendly direction: equal pattern → equal value.
	syms := []string{"a", "b", "c"}
	vals := map[string]float64{"a": 1.7, "b": 2.3, "c": 0.9}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e1 := randomExpr(r, syms, 3)
		e2 := randomExpr(r, syms, 3)
		if Pattern(e1, nil) != Pattern(e2, nil) {
			return true // nothing to check
		}
		v1, err1 := Eval(e1, env(vals))
		v2, err2 := Eval(e2, env(vals))
		if err1 != nil || err2 != nil {
			return (err1 == nil) == (err2 == nil)
		}
		diff := v1 - v2
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSimplifyStablePattern(t *testing.T) {
	// Simplification must not change the evaluated value (pattern can
	// legitimately change because constants fold).
	syms := []string{"a", "b"}
	vals := map[string]float64{"a": 1.25, "b": 3.5}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, syms, 4)
		s := Simplify(e)
		v1, err1 := Eval(e, env(vals))
		v2, err2 := Eval(s, env(vals))
		if err1 != nil || err2 != nil {
			// Simplify may fold away a division by zero (0/x) but must not
			// introduce new errors when the original evaluated cleanly.
			return err1 != nil
		}
		if math.IsNaN(v1) || math.IsInf(v1, 0) {
			// The original is numerically undefined or overflowed (e.g.
			// 0/(-a)^(non-integer) gives 0/NaN). Algebraic identities like
			// 0*x → 0 may legitimately assign such expressions a defined
			// value, so these inputs prove nothing either way.
			return true
		}
		diff := v1 - v2
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*(1+maxAbs(v1, v2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func maxAbs(a, b float64) float64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

func BenchmarkPattern(b *testing.B) {
	e := MustParseInfix("k1*A*B - k2*C*D + Vmax*S/(Km + S) + min(a, b, c)*max(d, e, f)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Pattern(e, nil)
	}
}

func BenchmarkEval(b *testing.B) {
	e := MustParseInfix("k1*A*B - k2*C*D")
	vals := env(map[string]float64{"k1": 1, "A": 2, "B": 3, "k2": 4, "C": 5, "D": 6})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(e, vals); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPatternAppendMatchesPattern(t *testing.T) {
	exprs := []Expr{
		MustParseInfix("k1*A*B - k2*C"),
		MustParseInfix("piecewise(1, A > 0, 0)"),
		nil,
	}
	maps := []map[string]string{nil, {"A": "X"}}
	for _, e := range exprs {
		for _, m := range maps {
			var b strings.Builder
			b.WriteString("prefix:")
			PatternAppend(&b, e, m)
			want := "prefix:"
			if e != nil {
				want += Pattern(e, m)
			}
			if b.String() != want {
				t.Errorf("PatternAppend = %q, want %q", b.String(), want)
			}
		}
	}
}
