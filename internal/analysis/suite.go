package analysis

import "golang.org/x/tools/go/analysis"

// Suite returns the project analyzers in a fixed order — the set
// cmd/sbmlvet bundles (alongside the stock passes it adds) and the set
// the analyzer unit tests enumerate.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapOrder,
		ErrSentinel,
		CtxFirst,
		WireDTO,
		ObsHygiene,
	}
}
