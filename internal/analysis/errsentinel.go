package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ErrSentinel enforces the sentinel-error discipline PR 3's review
// instituted: exported Err* sentinels may be wrapped anywhere along the
// return path, so callers must match them with errors.Is/As — never
// with ==/!=, never by substring-searching err.Error(), and a
// fmt.Errorf that carries a sentinel across a package boundary must
// wrap it with %w or downstream errors.Is goes blind. The escape hatch
// is //sbml:sentinelcmp, for the rare site that genuinely wants
// identity (e.g. the defining package's own tests pinning an unwrapped
// return).
var ErrSentinel = &analysis.Analyzer{
	Name:     "errsentinel",
	Doc:      "require errors.Is/As for Err* sentinels and %w when Errorf carries one across packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runErrSentinel,
}

func runErrSentinel(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := newSuppressor(pass)

	insp.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkSentinelCompare(pass, sup, n)
		case *ast.CallExpr:
			checkErrorSubstring(pass, sup, n)
			checkErrorfSentinel(pass, sup, n)
		}
	})
	return nil, nil
}

// sentinelObj resolves e to an exported package-level error variable
// named Err*, or nil.
func sentinelObj(pass *analysis.Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !v.Exported() || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	// Package-level only: a sentinel lives at package scope.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Implements(v.Type(), errorInterface) && !types.Implements(types.NewPointer(v.Type()), errorInterface) {
		return nil
	}
	return v
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func checkSentinelCompare(pass *analysis.Pass, sup *suppressor, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range [2]ast.Expr{be.X, be.Y} {
		v := sentinelObj(pass, side)
		if v == nil {
			continue
		}
		// The other side must be error-typed (rules out comparing two
		// untyped things that merely share the Err prefix).
		other := be.Y
		if side == be.Y {
			other = be.X
		}
		if t := pass.TypesInfo.TypeOf(other); t == nil || !types.Implements(t, errorInterface) {
			continue
		}
		if sup.suppressed(be.Pos(), "sentinelcmp") {
			return
		}
		pass.Reportf(be.Pos(),
			"comparing to sentinel %s with %s misses wrapped errors; use errors.Is (or //sbml:sentinelcmp <why>)",
			v.Name(), be.Op)
		return
	}
}

// checkErrorSubstring flags strings.Contains/HasPrefix/HasSuffix/Index
// applied to err.Error() — error identity by message substring. The
// rule skips _test.go files: tests legitimately pin the CONTENT of an
// error message (a user-facing contract); it is production dispatch on
// message text that breaks under rewording.
func checkErrorSubstring(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr) {
	if inTestFile(pass.Fset, call.Pos()) {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); !ok || pn.Imported().Path() != "strings" {
		return
	}
	switch sel.Sel.Name {
	case "Contains", "HasPrefix", "HasSuffix", "Index":
	default:
		return
	}
	for _, arg := range call.Args {
		if !isErrorErrorCall(pass, arg) {
			continue
		}
		if sup.suppressed(call.Pos(), "sentinelcmp") {
			return
		}
		pass.Reportf(call.Pos(),
			"matching errors by strings.%s on err.Error() is brittle; use errors.Is/errors.As (or //sbml:sentinelcmp <why>)",
			sel.Sel.Name)
		return
	}
}

func isErrorErrorCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return t != nil && types.Implements(t, errorInterface)
}

// checkErrorfSentinel flags fmt.Errorf calls that format a sentinel from
// another package with a verb other than %w: the resulting error no
// longer answers errors.Is(err, pkg.ErrX) on the far side of the API.
func checkErrorfSentinel(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); !ok || pn.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		v := sentinelObj(pass, arg)
		if v == nil || v.Pkg() == pass.Pkg {
			continue // same-package wrapping may legitimately flatten
		}
		if i < len(verbs) && verbs[i] == 'w' {
			continue
		}
		if sup.suppressed(call.Pos(), "sentinelcmp") {
			return
		}
		pass.Reportf(call.Pos(),
			"fmt.Errorf carries sentinel %s.%s across a package boundary without %%w; errors.Is cannot match it (or //sbml:sentinelcmp <why>)",
			v.Pkg().Name(), v.Name())
		return
	}
}

// formatVerbs extracts the verb letter consumed by each successive
// argument of a Printf-style format. Width/precision stars and argument
// indexes are rare in this codebase and not modeled; a format using them
// simply yields a conservative (possibly short) verb list.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision.
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}
