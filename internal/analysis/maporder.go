package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapOrder flags `for range` loops over maps whose bodies append to a
// slice declared outside the loop — the construct behind every
// nondeterministic-ranking bug this repo has shipped: Go randomizes map
// iteration order, so output built that way differs run to run and
// breaks the byte-identical pins (Figure 9 validity, cluster/replica
// equivalence). A loop is compliant when the enclosing function sorts
// after the loop (the collect-keys-then-sort idiom), or when it carries
// a justified //sbml:unordered directive (e.g. the slice is an
// order-free set handed to a sorter elsewhere).
var MapOrder = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flag map iteration feeding an outer slice without a subsequent sort (determinism invariant)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := newSuppressor(pass)

	// Walk function bodies so each range statement knows its enclosing
	// function (the scope the sort-after check runs over).
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil || inTestFile(pass.Fset, body.Pos()) {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			checkMapRange(pass, sup, body, rs)
			return true
		})
	})
	return nil, nil
}

func checkMapRange(pass *analysis.Pass, sup *suppressor, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	target := appendTargetOutside(pass, rs)
	if target == "" {
		return
	}
	if sortsAfter(pass, fnBody, rs) {
		return
	}
	if sup.suppressed(rs.Pos(), "unordered") {
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration appends to %s in nondeterministic order; sort the result after the loop or mark it //sbml:unordered <why>",
		target)
}

// appendTargetOutside returns the name of a slice declared outside rs
// that rs's body appends to, or "" when the loop builds no such output.
func appendTargetOutside(pass *analysis.Pass, rs *ast.RangeStmt) string {
	var target string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if target != "" {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			if name, outside := declaredOutside(pass, as.Lhs[i], rs); outside {
				target = name
			}
		}
		return true
	})
	return target
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredOutside resolves an assignment target to its root variable and
// reports whether that variable was declared outside the range statement.
func declaredOutside(pass *analysis.Pass, lhs ast.Expr, rs *ast.RangeStmt) (string, bool) {
	root := lhs
	for {
		switch e := root.(type) {
		case *ast.SelectorExpr:
			root = e.X
			continue
		case *ast.IndexExpr:
			root = e.X
			continue
		case *ast.ParenExpr:
			root = e.X
			continue
		case *ast.StarExpr:
			root = e.X
			continue
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(e)
			if obj == nil {
				return "", false
			}
			if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
				return "", false
			}
			return types.ExprString(lhs), true
		default:
			return "", false
		}
	}
}

// sortsAfter reports whether any statement of fnBody positioned after the
// range loop calls into sort or a slices.Sort* helper — the
// collect-then-sort idiom that restores a deterministic order.
func sortsAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if isSortCall(pass, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}
