// Fixture for the ctxfirst analyzer; the directory basename "core" puts
// this package in scope, as internal/core is in the real tree.
package core

import "context"

// workContext is a context-aware callee for the swallowed-cancellation
// cases below.
func workContext(ctx context.Context, n int) int { return n }

// Bad: ctx exists but hides behind another parameter.
func Misplaced(name string, ctx context.Context) error { // want "takes context.Context at position 1; ctx is always the first parameter"
	_ = workContext(ctx, 1)
	return nil
}

// Good: ctx first.
func Placed(ctx context.Context, name string) error {
	_ = workContext(ctx, 1)
	return nil
}

// ProcessContext is the cancellable variant of Process.
func ProcessContext(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items {
		total += workContext(ctx, it)
	}
	return total
}

// Good: the legacy entry point delegates to its Context variant.
func Process(items []int) int {
	return ProcessContext(context.Background(), items)
}

// RebuildContext exists, so Rebuild must delegate to it.
func RebuildContext(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items {
		total += workContext(ctx, it)
	}
	return total
}

// Bad: a parallel implementation instead of delegation; the two bodies
// will drift.
func Rebuild(items []int) int { // want "Rebuild has a RebuildContext variant but does not delegate to it"
	total := 0
	for _, it := range items {
		total += it * 2
	}
	return total
}

// Bad: loops over a context-aware callee with no way to cancel it.
func Fold(items []int) int { // want "exported Fold loops over context-aware calls but takes no context.Context"
	total := 0
	for _, it := range items {
		total += workContext(context.Background(), it)
	}
	return total
}

// Good: justified opt-out for a frozen reference implementation.
//
//sbml:noctx frozen bitwise reference; equivalence pins depend on this exact body
func FoldReference(items []int) int {
	total := 0
	for _, it := range items {
		total += workContext(context.Background(), it)
	}
	return total
}

// Good: a pure compute loop (no context-aware callees) needs no ctx.
func Checksum(items []int) int {
	total := 0
	for _, it := range items {
		total = total*31 + it
	}
	return total
}

// Good: unexported functions are the package's own business.
func fold(items []int) int {
	total := 0
	for _, it := range items {
		total += workContext(context.Background(), it)
	}
	return total
}

// Methods are covered too.
type Engine struct{}

// RunContext is Run's cancellable variant.
func (e *Engine) RunContext(ctx context.Context, items []int) int {
	return ProcessContext(ctx, items)
}

// Good: method delegation.
func (e *Engine) Run(items []int) int {
	return e.RunContext(context.Background(), items)
}
