// Fixture for the wiredto analyzer; directory basename "api" puts this
// package in scope, as internal/api is in the real tree.
package api

// Good: fully tagged, optional response fields carry omitempty.
type SearchResponse struct {
	Query string   `json:"query"`
	Hits  []string `json:"hits,omitempty"`
	Took  float64  `json:"took_seconds"`
}

// Bad: an exported field with no json tag serializes under its Go name.
type MatchRequest struct {
	Model string `json:"model"`
	Limit int    // want `exported field MatchRequest\.Limit has no json tag`
}

// Bad: two fields cannot share a wire name.
type DiffReport struct {
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"added,omitempty"` // want `field DiffReport\.Removed reuses json tag "added" already held by Added`
}

// Bad: a zero-valued bool silently vanishes from SOME responses unless
// omitempty makes the omission uniform.
type CheckResponse struct {
	Partial bool `json:"partial"` // want `optional response field CheckResponse\.Partial lacks omitempty`
	Score   int  `json:"score"`
}

// Good: a response field that must always appear says so.
type VerifyResponse struct {
	//sbml:alwayspresent false is the verdict, not absence; clients key on the field existing
	Satisfied bool     `json:"satisfied"`
	Notes     []string `json:"notes,omitempty"`
}

// Good: unexported fields and explicit json:"-" opt-outs are fine.
type TraceResponse struct {
	Steps  []string `json:"steps,omitempty"`
	Hidden string   `json:"-"`
	cache  map[string]int
}

// Good: a struct near the wire that never crosses it opts out wholesale.
//
//sbml:notwire in-memory index bookkeeping; never marshaled
type IndexStateResponse struct {
	Generation int
	Dirty      bool
}

// Good: a plain struct with no json tags and no DTO suffix is not a
// wire type at all.
type cursor struct {
	Offset int
	Limit  int
}
