// Fixture for the obshygiene analyzer: metric name/type conventions and
// request-derived label values.
package obshyg

import (
	"http"

	"obs"
)

var buckets = []float64{0.001, 0.01, 0.1, 1}

func Register(r *obs.Registry) {
	// Good: counters end _total, durations are histograms with a unit.
	r.Counter("sbml_requests_total", "requests served")
	r.Histogram("sbml_stage_seconds", "per-stage latency", buckets)
	r.Gauge("sbml_inflight", "in-flight requests")
	r.GaugeFunc("sbml_wal_age_seconds", "age of newest WAL record", func() float64 { return 0 })

	// Bad: a _total series rendering TYPE gauge breaks rate().
	r.Gauge("sbml_errors_total", "errors") // want `metric "sbml_errors_total" ends _total but registers as Gauge`

	// Bad: a duration series registered as a counter.
	r.Counter("sbml_compose_seconds", "compose latency") // want `metric "sbml_compose_seconds" ends _seconds but registers as Counter`

	// Bad: an age is a point-in-time value, not a distribution.
	r.Histogram("sbml_snapshot_age_seconds", "snapshot age", buckets) // want `metric "sbml_snapshot_age_seconds" is a point-in-time age/timestamp and must register as Gauge/GaugeFunc`

	// Bad: a counter without the _total suffix.
	r.CounterFunc("sbml_restarts", "restarts", func() float64 { return 0 }) // want `counter "sbml_restarts" must end in _total`

	// Bad: a histogram with no unit in its name.
	r.Histogram("sbml_payload", "payload size", buckets) // want `histogram "sbml_payload" carries no unit suffix`

	// Good: a justified naming exception.
	//sbml:metricname mirrors the upstream exporter's series name verbatim
	r.Gauge("process_start_time_total", "quirky upstream name")
}

// Bad: a label value reached through the request is unbounded.
func Observe(r *obs.Registry, req *http.Request) {
	c := r.Counter("sbml_hits_total", "hits", obs.L("path", req.URL.Path)) // want `label value derives from request input \(req\); unbounded label cardinality`
	c.Inc()

	// Good: a constant label value is bounded by construction.
	c2 := r.Counter("sbml_probes_total", "probes", obs.L("kind", "liveness"))
	c2.Inc()

	// Good: a justified bounded-by-construction request-derived value.
	//sbml:boundedlabel method is canonicalized to the fixed HTTP verb set upstream
	c3 := r.Counter("sbml_methods_total", "methods", obs.L("method", req.Method))
	c3.Inc()
}
