// Fixture for the maporder analyzer: map iteration feeding output.
package maporder

import (
	"fmt"
	"sort"
)

// Bad: appends map keys to an outer slice and returns it unsorted.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration appends to out in nondeterministic order"
		out = append(out, k)
	}
	return out
}

// Bad: the append target is a field of an outer struct.
type collector struct{ rows []string }

func (c *collector) Collect(m map[string]int) {
	for k, v := range m { // want `map iteration appends to c\.rows in nondeterministic order`
		c.rows = append(c.rows, fmt.Sprintf("%s=%d", k, v))
	}
}

// Good: the collect-then-sort idiom restores a deterministic order.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Good: a justified directive accepts the nondeterminism explicitly.
func UnorderedKeys(m map[string]int) []string {
	var out []string
	//sbml:unordered callers treat this as a set; ordering is rebuilt downstream
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Bad: a bare directive suppresses nothing and is itself reported.
func BareDirective(m map[string]int) []string {
	var out []string
	/* want "directive needs a justification" */ //sbml:unordered
	for k := range m {                           // want "map iteration appends to out in nondeterministic order"
		out = append(out, k)
	}
	return out
}

// Good: the slice lives inside the loop; no outer order leaks.
func PerKey(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// Good: iteration aggregates order-independently (no slice output).
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
