// Fixture mirroring internal/corpus's real sharded-iteration patterns:
// every map walk that builds output is followed by a sort, exactly as
// Corpus.IDs and DumpConsistent do. The maporder and ctxfirst analyzers
// must stay silent over this package (its path basename "corpus" also
// puts it in ctxfirst's scope on purpose).
package corpus

import "sort"

type entry struct{ id string }

type shard struct {
	entries map[string]*entry
}

type Corpus struct {
	shards []*shard
}

// IDs mirrors corpus.Corpus.IDs: collect across per-shard maps, sort
// once at the end.
func (c *Corpus) IDs() []string {
	var ids []string
	for _, sh := range c.shards {
		for id := range sh.entries {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Len mirrors corpus.Corpus.Len: a pure counting loop needs no context
// and no ordering.
func (c *Corpus) Len() int {
	n := 0
	for _, sh := range c.shards {
		n += len(sh.entries)
	}
	return n
}

// Blob mirrors the DumpConsistent shape: map-ordered collection into a
// struct slice, sorted by id before use.
type Blob struct{ ID string }

func (c *Corpus) Dump() []Blob {
	var blobs []Blob
	for _, sh := range c.shards {
		for id := range sh.entries {
			blobs = append(blobs, Blob{ID: id})
		}
	}
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].ID < blobs[j].ID })
	return blobs
}
