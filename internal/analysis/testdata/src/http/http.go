// Package http is a stub standing in for net/http in the obshygiene
// fixture: the analyzer matches Request structurally by (package name,
// type name), so a local stub exercises the same code path without
// loading the real net/http.
package http

import "net/url"

type Request struct {
	Method string
	URL    *url.URL
	Host   string
}

func (r *Request) UserAgent() string { return "stub" }
