// Package sentinels is a stub dependency for the errsentinel fixture:
// an exported sentinel defined in ANOTHER package, so wrapping it with
// a non-%w verb severs errors.Is across the boundary.
package sentinels

import "errors"

var ErrRemote = errors.New("remote failure")
