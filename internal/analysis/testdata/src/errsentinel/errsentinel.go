// Fixture for the errsentinel analyzer: sentinel comparison, message
// substring matching, and cross-package wrapping.
package errsentinel

import (
	"errors"
	"fmt"
	"strings"

	"sentinels"
)

var ErrLocal = errors.New("local failure")

// errInternal is unexported: not a sentinel the rule guards.
var errInternal = errors.New("internal")

// Bad: identity comparison misses wrapped sentinels.
func Eq(err error) bool {
	return err == ErrLocal // want `comparing to sentinel ErrLocal with == misses wrapped errors`
}

// Bad: same for != and for a sentinel from another package.
func Neq(err error) bool {
	return err != sentinels.ErrRemote // want `comparing to sentinel ErrRemote with != misses wrapped errors`
}

// Good: errors.Is follows wrap chains.
func Is(err error) bool {
	return errors.Is(err, ErrLocal)
}

// Good: nil checks are not sentinel comparisons.
func IsNil(err error) bool {
	return err == nil
}

// Good: unexported error values may be compared (wrapping is the
// defining package's own business).
func EqInternal(err error) bool {
	return err == errInternal
}

// Good: a justified suppression, for identity semantics on purpose.
func EqExact(err error) bool {
	//sbml:sentinelcmp this API documents returning the unwrapped sentinel itself
	return err == ErrLocal
}

// Bad: dispatching on message text breaks under rewording.
func MatchMessage(err error) bool {
	return strings.Contains(err.Error(), "corrupt") // want `matching errors by strings\.Contains on err\.Error\(\) is brittle`
}

// Bad: prefix matching is the same disease.
func MatchPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "store:") // want `matching errors by strings\.HasPrefix on err\.Error\(\) is brittle`
}

// Good: substring search over a non-error string is fine.
func MatchString(s string) bool {
	return strings.Contains(s, "corrupt")
}

// Bad: %v flattens the remote sentinel; errors.Is goes blind downstream.
func WrapFlat() error {
	return fmt.Errorf("loading: %v", sentinels.ErrRemote) // want `fmt\.Errorf carries sentinel sentinels\.ErrRemote across a package boundary without %w`
}

// Good: %w preserves the chain.
func Wrap() error {
	return fmt.Errorf("loading: %w", sentinels.ErrRemote)
}

// Good: a same-package sentinel may be flattened deliberately (the
// defining package owns its wrapping policy).
func WrapLocalFlat() error {
	return fmt.Errorf("loading: %v", ErrLocal)
}

// Good: earlier non-sentinel verbs do not confuse the verb/arg pairing.
func WrapMixed(path string) error {
	return fmt.Errorf("loading %q after %d tries: %w", path, 3, sentinels.ErrRemote)
}
