// Package obs is a stub mirroring internal/obs's registration surface,
// so the obshygiene fixture typechecks without importing the real tree.
package obs

type Label struct {
	Key   string
	Value string
}

func L(key, value string) Label { return Label{Key: key, Value: value} }

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return &Counter{} }

func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {}

func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge { return &Gauge{} }

func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {}

func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return &Histogram{}
}
