package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// wireDTOPackages is where the wire-DTO invariant applies: the shared
// /v1 wire types (internal/api) and the server/gateway DTOs that must
// stay byte-identical across single-node and scatter-gather answers.
var wireDTOPackages = map[string]bool{"api": true, "serve": true, "cluster": true}

// WireDTO enforces the /v1 wire-shape rules the cluster equivalence
// pins depend on: every exported field of a wire struct carries an
// explicit json tag (Go's default FieldName casing is an accident
// waiting for a rename), no two fields of a struct share a tag name,
// and fields of omittable kinds (bool/slice/map/pointer) in Response
// DTOs carry omitempty — a zero-valued "partial":false serialized into
// only SOME answers is exactly the PR 9 byte-identity bug. A response
// field that must always appear says so: //sbml:alwayspresent <why>.
// A struct that merely lives near the wire but never crosses it opts
// out with //sbml:notwire <why>.
var WireDTO = &analysis.Analyzer{
	Name:     "wiredto",
	Doc:      "require explicit unique json tags (and omitempty on optional response fields) on wire DTOs",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWireDTO,
}

func runWireDTO(pass *analysis.Pass) (interface{}, error) {
	if !wireDTOPackages[packageBase(pass.Pkg.Path())] {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := newSuppressor(pass)

	insp.Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		ts := n.(*ast.TypeSpec)
		st, ok := ts.Type.(*ast.StructType)
		if !ok || inTestFile(pass.Fset, ts.Pos()) {
			return
		}
		if !isWireStruct(ts, st) {
			return
		}
		if sup.suppressed(ts.Pos(), "notwire") {
			return
		}
		checkWireStruct(pass, sup, ts, st)
	})
	return nil, nil
}

// isWireStruct: a struct is a wire DTO when any field carries a json
// tag, or its name marks it as a request/response/report shape.
func isWireStruct(ts *ast.TypeSpec, st *ast.StructType) bool {
	name := ts.Name.Name
	for _, suffix := range []string{"Request", "Response", "Report"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	for _, f := range st.Fields.List {
		if _, ok := jsonTagName(f); ok {
			return true
		}
	}
	return false
}

// jsonTagName extracts the json tag's name part; ok is false when the
// field has no json tag at all.
func jsonTagName(f *ast.Field) (name string, ok bool) {
	if f.Tag == nil {
		return "", false
	}
	raw := strings.Trim(f.Tag.Value, "`")
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return "", false
	}
	if i := strings.IndexByte(tag, ','); i >= 0 {
		return tag[:i], true
	}
	return tag, true
}

func jsonTagHasOption(f *ast.Field, opt string) bool {
	raw := strings.Trim(f.Tag.Value, "`")
	tag, _ := reflect.StructTag(raw).Lookup("json")
	parts := strings.Split(tag, ",")
	for _, p := range parts[1:] {
		if p == opt {
			return true
		}
	}
	return false
}

func checkWireStruct(pass *analysis.Pass, sup *suppressor, ts *ast.TypeSpec, st *ast.StructType) {
	isResponse := strings.HasSuffix(ts.Name.Name, "Response")
	seen := make(map[string]*ast.Field)
	for _, f := range st.Fields.List {
		exported := false
		for _, n := range f.Names {
			if n.IsExported() {
				exported = true
			}
		}
		if len(f.Names) == 0 {
			// Embedded field: its promoted fields are checked where the
			// embedded type is declared.
			continue
		}
		tag, hasTag := jsonTagName(f)
		if !exported {
			continue
		}
		if !hasTag {
			if !sup.suppressed(f.Pos(), "notwire") {
				pass.Reportf(f.Pos(),
					"exported field %s.%s has no json tag; wire DTOs name every field explicitly (or //sbml:notwire <why>)",
					ts.Name.Name, f.Names[0].Name)
			}
			continue
		}
		if tag == "-" {
			continue
		}
		if prev, dup := seen[tag]; dup {
			pass.Reportf(f.Pos(),
				"field %s.%s reuses json tag %q already held by %s; two fields cannot share a wire name",
				ts.Name.Name, f.Names[0].Name, tag, prev.Names[0].Name)
		} else {
			seen[tag] = f
		}
		if isResponse && omittableKind(pass.TypesInfo.TypeOf(f.Type)) && !jsonTagHasOption(f, "omitempty") {
			if !sup.suppressed(f.Pos(), "alwayspresent") {
				pass.Reportf(f.Pos(),
					"optional response field %s.%s lacks omitempty; its zero value breaks byte-identical responses (add omitempty or //sbml:alwayspresent <why>)",
					ts.Name.Name, f.Names[0].Name)
			}
		}
	}
}

// omittableKind reports whether a field's type is one whose zero value
// reads as "absent" on the wire: bool, slice, map, pointer.
func omittableKind(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.Bool
	}
	return false
}
