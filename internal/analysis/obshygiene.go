package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ObsHygiene enforces the internal/obs metric conventions that PR 8's
// review kept re-teaching: a *_total series must register as
// Counter/CounterFunc (a gauge rendering TYPE gauge under a _total name
// breaks promtool and rate()), a *_seconds series is a latency
// Histogram (except *_age_seconds / *_timestamp_seconds point-in-time
// gauges, per Prometheus convention), counters end in _total, and
// histograms carry a unit suffix. Separately, a label value built from
// request input (anything reached through *http.Request) is an
// unbounded-cardinality series bomb and must be mapped through a
// bounded set first — //sbml:boundedlabel <why> marks a value that is
// provably bounded. Naming exceptions use //sbml:metricname <why>.
var ObsHygiene = &analysis.Analyzer{
	Name:     "obshygiene",
	Doc:      "enforce metric name/type conventions and bounded label values for internal/obs registrations",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runObsHygiene,
}

func runObsHygiene(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := newSuppressor(pass)

	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		checkMetricRegistration(pass, sup, call)
		checkLabelValue(pass, sup, call)
	})
	return nil, nil
}

func checkMetricRegistration(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr) {
	// Tests register deliberately tiny fixture names ("x"); the naming
	// conventions guard what production exposes to a scraper.
	if inTestFile(pass.Fset, call.Pos()) {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	method := sel.Sel.Name
	switch method {
	case "Counter", "CounterFunc", "Gauge", "GaugeFunc", "Histogram":
	default:
		return
	}
	if !isObsRegistry(pass.TypesInfo.TypeOf(sel.X)) || len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	name := constant.StringVal(tv.Value)
	report := func(format string, args ...interface{}) {
		if !sup.suppressed(call.Pos(), "metricname") {
			pass.Reportf(call.Args[0].Pos(), format, args...)
		}
	}
	isCounter := method == "Counter" || method == "CounterFunc"
	isGauge := method == "Gauge" || method == "GaugeFunc"
	switch {
	case strings.HasSuffix(name, "_total") && !isCounter:
		report("metric %q ends _total but registers as %s; _total series are counters (Counter/CounterFunc)", name, method)
	case strings.HasSuffix(name, "_age_seconds") || strings.HasSuffix(name, "_timestamp_seconds"):
		if !isGauge {
			report("metric %q is a point-in-time age/timestamp and must register as Gauge/GaugeFunc, not %s", name, method)
		}
	case strings.HasSuffix(name, "_seconds") && method != "Histogram":
		report("metric %q ends _seconds but registers as %s; duration series are histograms (ages use _age_seconds gauges)", name, method)
	case isCounter && !strings.HasSuffix(name, "_total"):
		report("counter %q must end in _total (promtool/rate() convention)", name)
	case method == "Histogram" && !hasUnitSuffix(name):
		report("histogram %q carries no unit suffix; end it in _seconds, _bytes, or _records", name)
	}
}

func hasUnitSuffix(name string) bool {
	for _, s := range []string{"_seconds", "_bytes", "_records"} {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

func isObsRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// checkLabelValue flags obs.L(key, value) / obs.Label{...} constructions
// whose value derives from an *http.Request.
func checkLabelValue(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr) {
	var valueExpr ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name != "L" || len(call.Args) != 2 {
			return
		}
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
			return
		}
		valueExpr = call.Args[1]
	default:
		return
	}
	if id := requestDerived(pass, valueExpr); id != "" {
		if !sup.suppressed(call.Pos(), "boundedlabel") {
			pass.Reportf(valueExpr.Pos(),
				"label value derives from request input (%s); unbounded label cardinality — map it through a bounded set (or //sbml:boundedlabel <why>)", id)
		}
	}
}

// requestDerived returns the name of an identifier inside e whose type
// is (a pointer to) net/http's Request, or "".
func requestDerived(pass *analysis.Pass, e ast.Expr) string {
	name := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(id)
		if t == nil {
			return true
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Name() == "http" {
				name = id.Name
			}
		}
		return name == ""
	})
	return name
}
