package analysis_test

import (
	"testing"

	sbml "sbmlcompose/internal/analysis"
	"sbmlcompose/internal/analysis/analysistesting"
)

func TestMapOrder(t *testing.T) {
	analysistesting.Run(t, "testdata", sbml.MapOrder, "maporder")
}

// The corpus fixture mirrors internal/corpus's real collect-then-sort
// sharded iteration; maporder must stay silent over it.
func TestMapOrderNoFalsePositives(t *testing.T) {
	analysistesting.Run(t, "testdata", sbml.MapOrder, "corpus")
}
