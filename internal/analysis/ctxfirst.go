package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ctxPackages is the set of package basenames the context-plumbing
// invariant applies to: the long-running core of the system, where PR 5
// threaded cancellation end-to-end. Fixture packages use the same bare
// names, so the rule is testable outside the real tree.
var ctxPackages = map[string]bool{
	"core": true, "sim": true, "mc2": true,
	"corpus": true, "store": true, "cluster": true,
}

// CtxFirst enforces the PR 5 context conventions in the core packages:
// a context.Context parameter is always first; and when an exported
// FooContext variant exists, the legacy Foo must delegate to it (two
// parallel implementations WILL drift — the composer-poisoning rules
// live in exactly one body). Exported functions that loop over real
// work without taking a context and without a Context variant are
// flagged too: they are uncancellable by construction. Escape hatch:
// //sbml:noctx with a justification.
var CtxFirst = &analysis.Analyzer{
	Name:     "ctxfirst",
	Doc:      "require context.Context first and base-delegates-to-Context-variant in core packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxFirst,
}

func runCtxFirst(pass *analysis.Pass) (interface{}, error) {
	if !ctxPackages[packageBase(pass.Pkg.Path())] {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := newSuppressor(pass)

	// Index every declared function by (receiver type, name) so the
	// delegation rule can find Context-suffixed siblings.
	decls := make(map[[2]string]*ast.FuncDecl)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		decls[[2]string{receiverTypeName(fd), fd.Name.Name}] = fd
	})

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		ctxIdx := contextParamIndex(pass, fd.Type)
		if ctxIdx > 0 {
			if !sup.suppressed(fd.Pos(), "noctx") {
				pass.Reportf(fd.Type.Params.List[0].Pos(),
					"%s takes context.Context at position %d; ctx is always the first parameter", fd.Name.Name, ctxIdx)
			}
			return
		}
		if ctxIdx == 0 || !fd.Name.IsExported() {
			return
		}
		// Exported, context-free. If a Context variant exists, the body
		// must delegate to it rather than duplicate the work.
		recv := receiverTypeName(fd)
		if variant, ok := decls[[2]string{recv, fd.Name.Name + "Context"}]; ok {
			if fd.Body != nil && !callsFunc(pass, fd.Body, variant.Name) {
				if !sup.suppressed(fd.Pos(), "noctx") {
					pass.Reportf(fd.Pos(),
						"%s has a %sContext variant but does not delegate to it; the two bodies will drift (or //sbml:noctx <why>)",
						fd.Name.Name, fd.Name.Name)
				}
			}
			return
		}
		// No variant at all: flag only when the body loops over
		// context-aware work — a callee that itself takes a
		// context.Context (fed context.Background/TODO since this
		// function has none). That is swallowed cancellation: the work
		// under the loop could be cancelled, but no caller can reach it.
		// Pure compute loops (encoders, hash rings, accessors) stay
		// exempt; they cost microseconds and a ctx would be noise.
		if fd.Body != nil && hasCtxSwallowingLoop(pass, fd.Body) {
			if !sup.suppressed(fd.Pos(), "noctx") {
				pass.Reportf(fd.Pos(),
					"exported %s loops over context-aware calls but takes no context.Context and has no %sContext variant; cancellation is swallowed (or //sbml:noctx <why>)",
					fd.Name.Name, fd.Name.Name)
			}
		}
	})
	return nil, nil
}

// contextParamIndex returns the index of the context.Context parameter,
// or -1 when the function takes none.
func contextParamIndex(pass *analysis.Pass, ft *ast.FuncType) int {
	if ft.Params == nil {
		return -1
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return idx
		}
		idx += n
	}
	return -1
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Name() == "context"
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr: // generic receiver
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// callsFunc reports whether body references target (the delegation
// check: any mention of the Context variant's identifier counts).
func callsFunc(pass *analysis.Pass, body *ast.BlockStmt, target *ast.Ident) bool {
	want := pass.TypesInfo.ObjectOf(target)
	if want == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasCtxSwallowingLoop reports whether body contains a for/range
// statement whose own body calls a context-aware callee: one whose
// signature takes a context.Context. A context-free exported function
// looping over such calls buries cancellable work behind an
// uncancellable API.
func hasCtxSwallowingLoop(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		var loopBody *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBody = n.Body
		case *ast.RangeStmt:
			loopBody = n.Body
		default:
			return true
		}
		ast.Inspect(loopBody, func(m ast.Node) bool {
			if found {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); ok && signatureTakesContext(sig) {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

func signatureTakesContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}
