package analysis_test

import (
	"testing"

	sbml "sbmlcompose/internal/analysis"
	"sbmlcompose/internal/analysis/analysistesting"
)

func TestCtxFirst(t *testing.T) {
	analysistesting.Run(t, "testdata", sbml.CtxFirst, "core")
}

// The corpus fixture's basename places it in ctxfirst scope; its pure
// compute loops must not demand a context.
func TestCtxFirstNoFalsePositives(t *testing.T) {
	analysistesting.Run(t, "testdata", sbml.CtxFirst, "corpus")
}
