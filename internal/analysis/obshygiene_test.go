package analysis_test

import (
	"testing"

	sbml "sbmlcompose/internal/analysis"
	"sbmlcompose/internal/analysis/analysistesting"
)

func TestObsHygiene(t *testing.T) {
	analysistesting.Run(t, "testdata", sbml.ObsHygiene, "obshyg")
}
