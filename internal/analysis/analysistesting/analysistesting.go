// Package analysistesting is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture
// package from a testdata/src tree, type-checks it (standard-library
// imports resolve from GOROOT source; sibling fixture directories
// resolve as local stub packages), runs one analyzer over it, and
// diffs the reported diagnostics against the fixture's // want
// comments.
//
// analysistest itself depends on go/packages, which needs a module
// proxy or GOPATH the hermetic build environment does not have; this
// harness keeps the same contract — an expectation comment
//
//	// want "regexp" `another regexp`
//
// on a line means every listed pattern must match a diagnostic
// reported on that line, and any diagnostic on a line without a
// matching want fails the test.
package analysistesting

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// loader resolves imports: fixture sibling directories under srcRoot
// first, the standard library (from GOROOT source) second.
type loader struct {
	fset    *token.FileSet
	srcRoot string
	pkgs    map[string]*types.Package
	std     types.Importer
	loading map[string]bool
}

func newLoader(fset *token.FileSet, srcRoot string) *loader {
	return &loader{
		fset:    fset,
		srcRoot: srcRoot,
		pkgs:    make(map[string]*types.Package),
		std:     importer.ForCompiler(fset, "source", nil),
		loading: make(map[string]bool),
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		if l.loading[path] {
			return nil, fmt.Errorf("import cycle through fixture %q", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		pkg, _, _, err := l.load(path)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the fixture package at srcRoot/path.
func (l *loader) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("fixture %s holds no .go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	return pkg, files, info, nil
}

// Run applies a to the fixture package testdata/src/<pkgPath> and
// compares diagnostics with the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	l := newLoader(fset, filepath.Join(testdata, "src"))
	pkg, files, info, err := l.load(pkgPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, req := range a.Requires {
		if req != inspect.Analyzer {
			t.Fatalf("analyzer %s requires %s; this harness only provides inspect", a.Name, req.Name)
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf: map[*analysis.Analyzer]interface{}{
			inspect.Analyzer: inspector.New(files),
		},
		Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	checkWants(t, fset, files, diags)
}

// lineKey identifies one fixture source line.
type lineKey struct {
	file string
	line int
}

type want struct {
	re  *regexp.Regexp
	raw string
	met bool
}

// wantRx matches the expectation comment syntax: the word want followed
// by one or more Go string literals (interpreted or raw).
var wantRx = regexp.MustCompile("want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

var strRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for _, lit := range strRx.FindAllString(m[1], -1) {
					pattern := strings.Trim(lit, "`")
					if lit[0] == '"' {
						var err error
						pattern, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants[key] = append(wants[key], &want{re: re, raw: pattern})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.met && w.re.MatchString(d.Message) {
				w.met, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.met {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, w.raw)
			}
		}
	}
}
