package analysis_test

import (
	"testing"

	sbml "sbmlcompose/internal/analysis"
	"sbmlcompose/internal/analysis/analysistesting"
)

func TestErrSentinel(t *testing.T) {
	analysistesting.Run(t, "testdata", sbml.ErrSentinel, "errsentinel")
}
