// Package analysis holds the sbmlvet analyzer suite: go/analysis
// analyzers encoding this repository's hard-won invariants — map-order
// determinism (maporder), sentinel-error discipline (errsentinel),
// context plumbing (ctxfirst), wire-DTO hygiene (wiredto), and metric
// naming/typing conventions (obshygiene). cmd/sbmlvet bundles them into
// a go vet -vettool binary that CI runs over every package.
//
// A rule that needs an escape hatch honors an //sbml:<rule> suppression
// directive placed on the flagged line or the line directly above it.
// A directive only suppresses when it carries a justification — a bare
// directive is itself a diagnostic, so every intentional violation in
// the tree documents why it is intentional:
//
//	//sbml:unordered hits land in a dedup set; the caller re-sorts
package analysis

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// directivePrefix introduces a suppression comment: //sbml:<rule> <why>.
const directivePrefix = "//sbml:"

// directive is one parsed //sbml: comment.
type directive struct {
	rule      string // e.g. "unordered"
	justified bool   // carries a non-empty justification after the rule
	pos       token.Pos
}

// fileDirectives collects every //sbml: directive in a file, keyed by
// the line the comment sits on.
func fileDirectives(fset *token.FileSet, f *ast.File) map[int]directive {
	var out map[int]directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := c.Text[len(directivePrefix):]
			rule := rest
			why := ""
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				rule, why = rest[:i], strings.TrimSpace(rest[i:])
			}
			if out == nil {
				out = make(map[int]directive)
			}
			out[fset.Position(c.Pos()).Line] = directive{
				rule:      rule,
				justified: why != "",
				pos:       c.Pos(),
			}
		}
	}
	return out
}

// suppressor indexes a pass's //sbml: directives and answers whether a
// position is covered by a given rule's directive. It also reports
// bare (justification-free) directives for the rules it was asked
// about, exactly once each.
type suppressor struct {
	pass     *analysis.Pass
	byFile   map[*token.File]map[int]directive
	reported map[token.Pos]bool
}

func newSuppressor(pass *analysis.Pass) *suppressor {
	s := &suppressor{
		pass:     pass,
		byFile:   make(map[*token.File]map[int]directive),
		reported: make(map[token.Pos]bool),
	}
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf != nil {
			s.byFile[tf] = fileDirectives(pass.Fset, f)
		}
	}
	return s
}

// suppressed reports whether a justified //sbml:<rule> directive sits on
// pos's line or the line directly above it. An unjustified directive for
// the rule does not suppress and is reported as its own diagnostic.
func (s *suppressor) suppressed(pos token.Pos, rule string) bool {
	tf := s.pass.Fset.File(pos)
	if tf == nil {
		return false
	}
	dirs := s.byFile[tf]
	if dirs == nil {
		return false
	}
	line := s.pass.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		d, ok := dirs[l]
		if !ok || d.rule != rule {
			continue
		}
		if !d.justified {
			if !s.reported[d.pos] {
				s.reported[d.pos] = true
				s.pass.Reportf(d.pos, "//sbml:%s directive needs a justification (//sbml:%s <why>)", rule, rule)
			}
			continue
		}
		return true
	}
	return false
}

// inTestFile reports whether pos lies in a _test.go file.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	tf := fset.File(pos)
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}

// packageBase returns the last element of the package path — the unit
// analyzers scope themselves by (testdata fixture packages carry bare
// one-element paths, the real tree sbmlcompose/internal/<base>).
func packageBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
