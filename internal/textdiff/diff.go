// Package textdiff implements the textual-composition substrate the paper
// positions its work against (§2): line-based diff using Myers' O(ND)
// algorithm, patch application (diff+patch = automated textual composition),
// three-way merge in the style of sdiff/merge, and Smith–Waterman local
// alignment, which the paper cites from computational biology and
// plagiarism detection. The evaluation (§4.1.1) uses these tools for the
// textual comparison of merged versus expected SBML documents.
package textdiff

import (
	"fmt"
	"strings"
)

// OpKind is the type of a diff edit.
type OpKind int

const (
	// Equal lines occur in both sequences.
	Equal OpKind = iota
	// Delete lines occur only in the first sequence.
	Delete
	// Insert lines occur only in the second sequence.
	Insert
)

// String returns the unified-diff prefix for the op.
func (k OpKind) String() string {
	switch k {
	case Delete:
		return "-"
	case Insert:
		return "+"
	default:
		return " "
	}
}

// Op is one run of consecutive lines sharing an edit kind.
type Op struct {
	Kind  OpKind
	Lines []string
}

// Diff computes a minimal line-based edit script from a to b using Myers'
// greedy O(ND) algorithm (the algorithm behind diff, cited by the paper as
// [19]).
func Diff(a, b []string) []Op {
	// Trim common prefix/suffix first: cheap and keeps the D-path search
	// small for the mostly-equal inputs composition produces.
	prefix := 0
	for prefix < len(a) && prefix < len(b) && a[prefix] == b[prefix] {
		prefix++
	}
	suffix := 0
	for suffix < len(a)-prefix && suffix < len(b)-prefix &&
		a[len(a)-1-suffix] == b[len(b)-1-suffix] {
		suffix++
	}
	middleA := a[prefix : len(a)-suffix]
	middleB := b[prefix : len(b)-suffix]

	var ops []Op
	if prefix > 0 {
		ops = append(ops, Op{Kind: Equal, Lines: append([]string(nil), a[:prefix]...)})
	}
	ops = append(ops, myers(middleA, middleB)...)
	if suffix > 0 {
		ops = append(ops, Op{Kind: Equal, Lines: append([]string(nil), a[len(a)-suffix:]...)})
	}
	return coalesce(ops)
}

// myers runs the O(ND) edit-path search and backtracks an edit script.
func myers(a, b []string) []Op {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return nil
	}
	if n == 0 {
		return []Op{{Kind: Insert, Lines: append([]string(nil), b...)}}
	}
	if m == 0 {
		return []Op{{Kind: Delete, Lines: append([]string(nil), a...)}}
	}
	max := n + m
	// v[k+max] = furthest x on diagonal k. trace saves v per step for
	// backtracking.
	v := make([]int, 2*max+1)
	var trace [][]int
	var dFound = -1
outer:
	for d := 0; d <= max; d++ {
		snapshot := make([]int, len(v))
		copy(snapshot, v)
		trace = append(trace, snapshot)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[k-1+max] < v[k+1+max]) {
				x = v[k+1+max] // down: insert
			} else {
				x = v[k-1+max] + 1 // right: delete
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[k+max] = x
			if x >= n && y >= m {
				dFound = d
				break outer
			}
		}
	}
	// Backtrack from (n, m).
	type step struct {
		kind OpKind
		line string
	}
	var rev []step
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vPrev := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vPrev[k-1+max] < vPrev[k+1+max]) {
			prevK = k + 1 // came from an insert
		} else {
			prevK = k - 1 // came from a delete
		}
		prevX := vPrev[prevK+max]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			rev = append(rev, step{Equal, a[x]})
		}
		if prevK == k+1 {
			y--
			rev = append(rev, step{Insert, b[y]})
		} else {
			x--
			rev = append(rev, step{Delete, a[x]})
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		rev = append(rev, step{Equal, a[x]})
	}
	for x > 0 {
		x--
		rev = append(rev, step{Delete, a[x]})
	}
	for y > 0 {
		y--
		rev = append(rev, step{Insert, b[y]})
	}
	var ops []Op
	for i := len(rev) - 1; i >= 0; i-- {
		s := rev[i]
		if len(ops) > 0 && ops[len(ops)-1].Kind == s.kind {
			ops[len(ops)-1].Lines = append(ops[len(ops)-1].Lines, s.line)
			continue
		}
		ops = append(ops, Op{Kind: s.kind, Lines: []string{s.line}})
	}
	return ops
}

func coalesce(ops []Op) []Op {
	var out []Op
	for _, op := range ops {
		if len(op.Lines) == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Kind == op.Kind {
			out[len(out)-1].Lines = append(out[len(out)-1].Lines, op.Lines...)
			continue
		}
		out = append(out, op)
	}
	return out
}

// EditDistance returns the number of inserted plus deleted lines in the
// minimal script.
func EditDistance(a, b []string) int {
	d := 0
	for _, op := range Diff(a, b) {
		if op.Kind != Equal {
			d += len(op.Lines)
		}
	}
	return d
}

// LCSLength returns the length of the longest common subsequence of a and
// b, derived from the minimal edit script.
func LCSLength(a, b []string) int {
	n := 0
	for _, op := range Diff(a, b) {
		if op.Kind == Equal {
			n += len(op.Lines)
		}
	}
	return n
}

// Patch applies the edit script (produced by Diff(a, b)) to a, returning b.
// This is the diff/patch composition pipeline the paper describes: "patch
// assigns the first file to be the composed file and makes the changes
// within it to make it match the other file".
func Patch(a []string, ops []Op) ([]string, error) {
	var out []string
	i := 0
	for _, op := range ops {
		switch op.Kind {
		case Equal:
			for _, line := range op.Lines {
				if i >= len(a) || a[i] != line {
					return nil, fmt.Errorf("textdiff: patch context mismatch at line %d", i+1)
				}
				out = append(out, line)
				i++
			}
		case Delete:
			for _, line := range op.Lines {
				if i >= len(a) || a[i] != line {
					return nil, fmt.Errorf("textdiff: patch delete mismatch at line %d", i+1)
				}
				i++
			}
		case Insert:
			out = append(out, op.Lines...)
		}
	}
	if i != len(a) {
		return nil, fmt.Errorf("textdiff: patch consumed %d of %d lines", i, len(a))
	}
	return out, nil
}

// Format renders the script as unified-diff-style text (without hunk
// headers).
func Format(ops []Op) string {
	var b strings.Builder
	for _, op := range ops {
		for _, line := range op.Lines {
			b.WriteString(op.Kind.String())
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// SplitLines breaks text into lines without trailing newlines; the inverse
// of strings.Join(lines, "\n"). An empty string yields no lines.
func SplitLines(text string) []string {
	if text == "" {
		return nil
	}
	lines := strings.Split(text, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}
