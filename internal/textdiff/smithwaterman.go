package textdiff

// Smith–Waterman local alignment over rune sequences, cited by the paper
// (§2, [21], [13]) as the online LCS alternative used in computational
// biology and plagiarism detection. The composer itself does not need local
// alignment, but the evaluation tooling uses it to locate the best-matching
// region between two SBML fragments when a whole-document diff is too
// coarse.

// Alignment is the result of a local alignment: the best-scoring pair of
// substrings and their positions.
type Alignment struct {
	Score    int
	AStart   int // rune offset in a
	AEnd     int // exclusive
	BStart   int // rune offset in b
	BEnd     int // exclusive
	AAligned string
	BAligned string
}

// Scores parameterizes Smith–Waterman. Match must be positive and the
// penalties negative for the algorithm to behave sensibly.
type Scores struct {
	Match    int
	Mismatch int
	Gap      int
}

// DefaultScores are the classic +2/−1/−1 settings.
var DefaultScores = Scores{Match: 2, Mismatch: -1, Gap: -1}

// SmithWaterman computes the best local alignment between a and b.
func SmithWaterman(a, b string, s Scores) Alignment {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	if n == 0 || m == 0 {
		return Alignment{}
	}
	// h[i][j] = best score of an alignment ending at a[i-1], b[j-1].
	h := make([][]int, n+1)
	for i := range h {
		h[i] = make([]int, m+1)
	}
	best, bi, bj := 0, 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			sub := s.Mismatch
			if ra[i-1] == rb[j-1] {
				sub = s.Match
			}
			v := h[i-1][j-1] + sub
			if d := h[i-1][j] + s.Gap; d > v {
				v = d
			}
			if d := h[i][j-1] + s.Gap; d > v {
				v = d
			}
			if v < 0 {
				v = 0
			}
			h[i][j] = v
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	if best == 0 {
		return Alignment{}
	}
	// Traceback.
	var alignedA, alignedB []rune
	i, j := bi, bj
	for i > 0 && j > 0 && h[i][j] > 0 {
		sub := s.Mismatch
		if ra[i-1] == rb[j-1] {
			sub = s.Match
		}
		switch {
		case h[i][j] == h[i-1][j-1]+sub:
			alignedA = append(alignedA, ra[i-1])
			alignedB = append(alignedB, rb[j-1])
			i--
			j--
		case h[i][j] == h[i-1][j]+s.Gap:
			alignedA = append(alignedA, ra[i-1])
			alignedB = append(alignedB, '-')
			i--
		default:
			alignedA = append(alignedA, '-')
			alignedB = append(alignedB, rb[j-1])
			j--
		}
	}
	reverse(alignedA)
	reverse(alignedB)
	return Alignment{
		Score:    best,
		AStart:   i,
		AEnd:     bi,
		BStart:   j,
		BEnd:     bj,
		AAligned: string(alignedA),
		BAligned: string(alignedB),
	}
}

func reverse(r []rune) {
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
}
