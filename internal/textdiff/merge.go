package textdiff

import (
	"fmt"
	"strings"
)

// Conflict marks a three-way merge region where both sides changed the same
// base lines differently.
type Conflict struct {
	BaseStart int // line offset in the base where the conflict begins
	Ours      []string
	Theirs    []string
}

// MergeResult is the outcome of Merge3.
type MergeResult struct {
	Lines     []string
	Conflicts []Conflict
}

// HasConflicts reports whether any region needed manual resolution.
func (m MergeResult) HasConflicts() bool { return len(m.Conflicts) > 0 }

// Merge3 merges two descendants of a common base, the automated counterpart
// of interactive sdiff (§2). Non-overlapping changes combine; overlapping
// incompatible changes are reported as conflicts with "ours" (a) chosen in
// the merged text, mirroring the composer's first-component-wins policy.
func Merge3(base, a, b []string) MergeResult {
	chunksA := anchorChunks(base, a)
	chunksB := anchorChunks(base, b)
	var out MergeResult
	i := 0 // position in base
	for i <= len(base) {
		ca, okA := chunksA[i]
		cb, okB := chunksB[i]
		switch {
		case okA && okB:
			if sameChunk(ca, cb) {
				out.Lines = append(out.Lines, ca.replacement...)
			} else if len(ca.replacement) == 0 && ca.baseLen == 0 {
				// A made no change here, take B's.
				out.Lines = append(out.Lines, cb.replacement...)
			} else if len(cb.replacement) == 0 && cb.baseLen == 0 {
				out.Lines = append(out.Lines, ca.replacement...)
			} else {
				out.Conflicts = append(out.Conflicts, Conflict{BaseStart: i, Ours: ca.replacement, Theirs: cb.replacement})
				out.Lines = append(out.Lines, ca.replacement...) // ours wins
			}
			skip := max(ca.baseLen, cb.baseLen)
			if skip == 0 {
				if i < len(base) {
					out.Lines = append(out.Lines, base[i])
				}
				i++
			} else {
				i += skip
			}
		case okA:
			out.Lines = append(out.Lines, ca.replacement...)
			if ca.baseLen == 0 {
				if i < len(base) {
					out.Lines = append(out.Lines, base[i])
				}
				i++
			} else {
				i += ca.baseLen
			}
		case okB:
			out.Lines = append(out.Lines, cb.replacement...)
			if cb.baseLen == 0 {
				if i < len(base) {
					out.Lines = append(out.Lines, base[i])
				}
				i++
			} else {
				i += cb.baseLen
			}
		default:
			if i < len(base) {
				out.Lines = append(out.Lines, base[i])
			}
			i++
		}
	}
	return out
}

type chunk struct {
	baseLen     int // lines of base consumed
	replacement []string
}

func sameChunk(a, b chunk) bool {
	if a.baseLen != b.baseLen || len(a.replacement) != len(b.replacement) {
		return false
	}
	for i := range a.replacement {
		if a.replacement[i] != b.replacement[i] {
			return false
		}
	}
	return true
}

// anchorChunks converts an edit script from base to derived into a map from
// base offset to the replacement chunk starting there.
func anchorChunks(base, derived []string) map[int]chunk {
	chunks := make(map[int]chunk)
	pos := 0
	ops := Diff(base, derived)
	for idx := 0; idx < len(ops); idx++ {
		op := ops[idx]
		switch op.Kind {
		case Equal:
			pos += len(op.Lines)
		case Delete:
			c := chunk{baseLen: len(op.Lines)}
			// A delete followed by an insert is a replacement.
			if idx+1 < len(ops) && ops[idx+1].Kind == Insert {
				c.replacement = ops[idx+1].Lines
				idx++
			}
			chunks[pos] = c
			pos += c.baseLen
		case Insert:
			chunks[pos] = chunk{baseLen: 0, replacement: op.Lines}
		}
	}
	return chunks
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatConflicts renders conflicts with merge-marker syntax for logs.
func FormatConflicts(conflicts []Conflict) string {
	var b strings.Builder
	for _, c := range conflicts {
		fmt.Fprintf(&b, "<<<<<<< ours (base line %d)\n", c.BaseStart+1)
		for _, l := range c.Ours {
			b.WriteString(l)
			b.WriteString("\n")
		}
		b.WriteString("=======\n")
		for _, l := range c.Theirs {
			b.WriteString(l)
			b.WriteString("\n")
		}
		b.WriteString(">>>>>>> theirs\n")
	}
	return b.String()
}
