package textdiff

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func lines(s string) []string { return SplitLines(s) }

func TestDiffIdentical(t *testing.T) {
	a := lines("a\nb\nc\n")
	ops := Diff(a, a)
	if len(ops) != 1 || ops[0].Kind != Equal || len(ops[0].Lines) != 3 {
		t.Errorf("Diff(x,x) = %v", ops)
	}
	if EditDistance(a, a) != 0 {
		t.Error("edit distance to self not 0")
	}
}

func TestDiffDisjoint(t *testing.T) {
	a := lines("a\nb\n")
	b := lines("x\ny\nz\n")
	if d := EditDistance(a, b); d != 5 {
		t.Errorf("disjoint distance = %d, want 5", d)
	}
	if l := LCSLength(a, b); l != 0 {
		t.Errorf("disjoint LCS = %d, want 0", l)
	}
}

func TestDiffKnownScript(t *testing.T) {
	a := lines("keep\nold1\nkeep2\nold2\n")
	b := lines("keep\nnew1\nkeep2\n")
	ops := Diff(a, b)
	got := Format(ops)
	// The exact script may vary in ordering of -/+ but must contain these
	// markers and apply cleanly.
	for _, needle := range []string{"-old1", "+new1", "-old2", " keep\n", " keep2"} {
		if !strings.Contains(got, needle) {
			t.Errorf("script missing %q:\n%s", needle, got)
		}
	}
	patched, err := Patch(a, ops)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(patched, "\n") != strings.Join(b, "\n") {
		t.Errorf("patch result = %v, want %v", patched, b)
	}
}

func TestDiffEmptySides(t *testing.T) {
	b := lines("x\ny\n")
	ops := Diff(nil, b)
	if len(ops) != 1 || ops[0].Kind != Insert {
		t.Errorf("insert-only diff = %v", ops)
	}
	ops = Diff(b, nil)
	if len(ops) != 1 || ops[0].Kind != Delete {
		t.Errorf("delete-only diff = %v", ops)
	}
	if got := Diff(nil, nil); got != nil {
		t.Errorf("empty diff = %v", got)
	}
}

func TestPatchErrors(t *testing.T) {
	a := lines("a\nb\n")
	b := lines("a\nc\n")
	ops := Diff(a, b)
	// Applying to the wrong base must fail, not corrupt.
	if _, err := Patch(lines("x\ny\n"), ops); err == nil {
		t.Error("patch against wrong base should fail")
	}
	if _, err := Patch(lines("a\nb\nextra\n"), ops); err == nil {
		t.Error("patch with leftover lines should fail")
	}
}

func TestSplitLines(t *testing.T) {
	if got := SplitLines(""); got != nil {
		t.Errorf("SplitLines(empty) = %v", got)
	}
	if got := SplitLines("a\nb"); len(got) != 2 {
		t.Errorf("no trailing newline: %v", got)
	}
	if got := SplitLines("a\nb\n"); len(got) != 2 {
		t.Errorf("trailing newline: %v", got)
	}
}

func randomLines(r *rand.Rand, n int) []string {
	words := []string{"alpha", "beta", "gamma", "delta", "eps"}
	out := make([]string, n)
	for i := range out {
		out[i] = words[r.Intn(len(words))]
	}
	return out
}

func mutate(r *rand.Rand, a []string) []string {
	out := append([]string(nil), a...)
	for k := 0; k < 1+r.Intn(4); k++ {
		if len(out) == 0 {
			out = append(out, "new")
			continue
		}
		i := r.Intn(len(out))
		switch r.Intn(3) {
		case 0:
			out = append(out[:i], out[i+1:]...)
		case 1:
			out[i] = "mut" + out[i]
		default:
			out = append(out[:i], append([]string{"ins"}, out[i:]...)...)
		}
	}
	return out
}

func TestQuickDiffPatchRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomLines(r, r.Intn(30))
		b := mutate(r, a)
		patched, err := Patch(a, Diff(a, b))
		if err != nil {
			return false
		}
		return strings.Join(patched, "\x00") == strings.Join(b, "\x00")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomLines(r, r.Intn(15))
		b := randomLines(r, r.Intn(15))
		c := randomLines(r, r.Intn(15))
		dab := EditDistance(a, b)
		dba := EditDistance(b, a)
		if dab != dba {
			return false // symmetry
		}
		if EditDistance(a, a) != 0 {
			return false // identity
		}
		// Triangle inequality.
		return EditDistance(a, c) <= dab+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickLCSBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomLines(r, r.Intn(20))
		b := randomLines(r, r.Intn(20))
		l := LCSLength(a, b)
		if l < 0 || l > len(a) || l > len(b) {
			return false
		}
		// |a| + |b| = 2*LCS + editDistance for a minimal script.
		return len(a)+len(b) == 2*l+EditDistance(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMerge3NonOverlapping(t *testing.T) {
	base := lines("1\n2\n3\n4\n5\n")
	a := lines("1-changed\n2\n3\n4\n5\n") // change at top
	b := lines("1\n2\n3\n4\n5-changed\n") // change at bottom
	res := Merge3(base, a, b)
	if res.HasConflicts() {
		t.Fatalf("unexpected conflicts: %v", res.Conflicts)
	}
	want := "1-changed\n2\n3\n4\n5-changed"
	if strings.Join(res.Lines, "\n") != want {
		t.Errorf("merge = %q, want %q", strings.Join(res.Lines, "\n"), want)
	}
}

func TestMerge3BothInsertDifferentPlaces(t *testing.T) {
	base := lines("a\nb\nc\n")
	a := lines("a\nx\nb\nc\n")
	b := lines("a\nb\nc\ny\n")
	res := Merge3(base, a, b)
	if res.HasConflicts() {
		t.Fatalf("conflicts: %v", res.Conflicts)
	}
	want := "a\nx\nb\nc\ny"
	if strings.Join(res.Lines, "\n") != want {
		t.Errorf("merge = %q, want %q", strings.Join(res.Lines, "\n"), want)
	}
}

func TestMerge3IdenticalChanges(t *testing.T) {
	base := lines("a\nb\nc\n")
	both := lines("a\nB!\nc\n")
	res := Merge3(base, both, both)
	if res.HasConflicts() {
		t.Fatalf("identical changes conflicted: %v", res.Conflicts)
	}
	if strings.Join(res.Lines, "\n") != "a\nB!\nc" {
		t.Errorf("merge = %v", res.Lines)
	}
}

func TestMerge3Conflict(t *testing.T) {
	base := lines("a\nb\nc\n")
	oursV := lines("a\nOURS\nc\n")
	theirsV := lines("a\nTHEIRS\nc\n")
	res := Merge3(base, oursV, theirsV)
	if !res.HasConflicts() {
		t.Fatal("expected a conflict")
	}
	// First-component-wins: merged text carries ours.
	if strings.Join(res.Lines, "\n") != "a\nOURS\nc" {
		t.Errorf("merge = %v", res.Lines)
	}
	marks := FormatConflicts(res.Conflicts)
	if !strings.Contains(marks, "OURS") || !strings.Contains(marks, "THEIRS") {
		t.Errorf("conflict markers = %q", marks)
	}
}

func TestMerge3OneSideUnchanged(t *testing.T) {
	base := lines("a\nb\nc\n")
	changed := lines("a\nB2\nc\nd\n")
	res := Merge3(base, base, changed)
	if res.HasConflicts() {
		t.Fatalf("conflicts: %v", res.Conflicts)
	}
	if strings.Join(res.Lines, "\n") != "a\nB2\nc\nd" {
		t.Errorf("merge = %v", res.Lines)
	}
	// Symmetric case.
	res = Merge3(base, changed, base)
	if strings.Join(res.Lines, "\n") != "a\nB2\nc\nd" {
		t.Errorf("merge (flipped) = %v", res.Lines)
	}
}

func TestSmithWatermanExactSubstring(t *testing.T) {
	al := SmithWaterman("xxkineticLawyy", "aakineticLawbb", DefaultScores)
	if al.AAligned != "kineticLaw" || al.BAligned != "kineticLaw" {
		t.Errorf("aligned = %q / %q", al.AAligned, al.BAligned)
	}
	if al.AStart != 2 || al.BStart != 2 {
		t.Errorf("starts = %d %d", al.AStart, al.BStart)
	}
	if al.Score != 2*len("kineticLaw") {
		t.Errorf("score = %d", al.Score)
	}
}

func TestSmithWatermanWithGap(t *testing.T) {
	al := SmithWaterman("ACACACTA", "AGCACACA", DefaultScores)
	if al.Score <= 0 {
		t.Fatal("no alignment found")
	}
	if len(al.AAligned) != len(al.BAligned) {
		t.Errorf("aligned lengths differ: %q %q", al.AAligned, al.BAligned)
	}
}

func TestSmithWatermanNoMatch(t *testing.T) {
	al := SmithWaterman("aaaa", "bbbb", DefaultScores)
	if al.Score != 0 {
		t.Errorf("score = %d, want 0", al.Score)
	}
	al = SmithWaterman("", "abc", DefaultScores)
	if al.Score != 0 {
		t.Errorf("empty input score = %d", al.Score)
	}
}

func BenchmarkDiffSimilarDocuments(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	base := randomLines(r, 400)
	modified := mutate(r, base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Diff(base, modified)
	}
}
