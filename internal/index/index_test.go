package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var allKinds = []Kind{Hash, Linear, Sorted, SuffixTree}

func TestBasicOperationsAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			idx := New(kind)
			if idx.Name() != kind.String() {
				t.Errorf("Name = %q, want %q", idx.Name(), kind)
			}
			if _, ok := idx.Lookup("missing"); ok {
				t.Error("empty index found a key")
			}
			idx.Insert("a", 1)
			idx.Insert("b", 2)
			idx.Insert("ab", 3)
			for key, want := range map[string]int{"a": 1, "b": 2, "ab": 3} {
				v, ok := idx.Lookup(key)
				if !ok || v.(int) != want {
					t.Errorf("Lookup(%q) = %v %v, want %d", key, v, ok, want)
				}
			}
			if idx.Len() != 3 {
				t.Errorf("Len = %d, want 3", idx.Len())
			}
			// Overwrite.
			idx.Insert("a", 10)
			if v, _ := idx.Lookup("a"); v.(int) != 10 {
				t.Errorf("overwrite failed: %v", v)
			}
			if idx.Len() != 3 {
				t.Errorf("Len after overwrite = %d, want 3", idx.Len())
			}
			// Prefix is not a match.
			if _, ok := idx.Lookup("aa"); ok {
				t.Error("prefix matched")
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if Hash.String() != "hash" || Linear.String() != "linear" ||
		Sorted.String() != "sorted" || SuffixTree.String() != "suffixtree" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind name")
	}
	if New(Kind(99)).Name() != "hash" {
		t.Error("unknown kind should default to hash")
	}
}

func TestSubstringCapability(t *testing.T) {
	idx := New(SuffixTree)
	sub, ok := idx.(Substring)
	if !ok {
		t.Fatal("suffix tree index should support substring lookup")
	}
	idx.Insert("glucose", "g")
	idx.Insert("glucose_6_phosphate", "g6p")
	idx.Insert("pyruvate", "pyr")
	got := sub.LookupSubstring("glucose")
	if len(got) != 2 {
		t.Errorf("LookupSubstring(glucose) = %v", got)
	}
	if got := sub.LookupSubstring("vate"); len(got) != 1 || got[0] != "pyr" {
		t.Errorf("LookupSubstring(vate) = %v", got)
	}
	for _, kind := range []Kind{Hash, Linear, Sorted} {
		if _, ok := New(kind).(Substring); ok {
			t.Errorf("%s should not claim substring capability", kind)
		}
	}
}

func TestSuffixIndexReservedRuneOverflow(t *testing.T) {
	idx := New(SuffixTree)
	weird := "key" + string(rune(0xE500))
	idx.Insert(weird, 42)
	if v, ok := idx.Lookup(weird); !ok || v.(int) != 42 {
		t.Errorf("overflow lookup = %v %v", v, ok)
	}
	idx.Insert(weird, 43)
	if v, _ := idx.Lookup(weird); v.(int) != 43 {
		t.Error("overflow overwrite failed")
	}
	if idx.Len() != 1 {
		t.Errorf("Len = %d, want 1", idx.Len())
	}
}

func TestQuickAllKindsAgreeWithMap(t *testing.T) {
	const letters = "abcde"
	randKey := func(r *rand.Rand) string {
		n := 1 + r.Intn(6)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(letters[r.Intn(len(letters))])
		}
		return b.String()
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ref := make(map[string]int)
		indexes := make([]Index, len(allKinds))
		for i, k := range allKinds {
			indexes[i] = New(k)
		}
		for op := 0; op < 60; op++ {
			key := randKey(r)
			if r.Intn(3) < 2 {
				val := r.Intn(1000)
				ref[key] = val
				for _, idx := range indexes {
					idx.Insert(key, val)
				}
			} else {
				want, wantOK := ref[key]
				for _, idx := range indexes {
					got, ok := idx.Lookup(key)
					if ok != wantOK {
						t.Logf("%s: Lookup(%q) ok=%v want %v", idx.Name(), key, ok, wantOK)
						return false
					}
					if ok && got.(int) != want {
						t.Logf("%s: Lookup(%q) = %v want %v", idx.Name(), key, got, want)
						return false
					}
				}
			}
		}
		for _, idx := range indexes {
			if idx.Len() != len(ref) {
				t.Logf("%s: Len = %d want %d", idx.Name(), idx.Len(), len(ref))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIndexInsertLookup(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	var keys []string
	for i := 0; i < 300; i++ {
		keys = append(keys, fmt.Sprintf("component_%c%c_%d", 'a'+r.Intn(26), 'a'+r.Intn(26), i))
	}
	for _, kind := range allKinds {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx := New(kind)
				for j, k := range keys {
					idx.Insert(k, j)
				}
				for _, k := range keys {
					if _, ok := idx.Lookup(k); !ok {
						b.Fatal("lost key")
					}
				}
			}
		})
	}
}

func TestNewWithCapacityAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			for _, n := range []int{-1, 0, 5, 100} {
				idx := NewWithCapacity(kind, n)
				if idx.Len() != 0 {
					t.Fatalf("cap %d: new index not empty", n)
				}
				idx.Insert("a", 1)
				idx.Insert("b", 2)
				idx.Insert("a", 3) // replace
				if idx.Len() != 2 {
					t.Fatalf("cap %d: Len = %d, want 2", n, idx.Len())
				}
				if v, ok := idx.Lookup("a"); !ok || v.(int) != 3 {
					t.Fatalf("cap %d: Lookup(a) = %v %v", n, v, ok)
				}
			}
		})
	}
}
