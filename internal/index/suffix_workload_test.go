package index_test

// Coverage for the suffix-tree index under the corpus inverted-index
// workload: a model repository interleaves inserts (models being added)
// with exact and substring lookups (queries being served), reuses keys
// across models (duplicate-key replacement), and routinely probes patterns
// that match nothing or everything. These tests pin that regime, which the
// original composer-driven tests (bulk insert, then look up) never hit.

import (
	"fmt"
	"testing"

	"sbmlcompose/internal/core"
	"sbmlcompose/internal/index"
	"sbmlcompose/internal/synonym"

	"sbmlcompose/internal/biomodels"
)

// corpusKeys derives real repository match keys (species ids, math
// patterns, unit vectors) so the workload exercises the key shapes the
// corpus actually posts, not synthetic strings.
func corpusKeys(t *testing.T, n int) [][]string {
	t.Helper()
	opts := core.Options{Synonyms: synonym.Builtin()}
	all := make([][]string, n)
	for i := range all {
		m := biomodels.Generate(biomodels.Config{
			ID: fmt.Sprintf("sw%02d", i), Nodes: 6 + i%5, Edges: 8 + i%7,
			Seed: int64(7100 + 31*i), VocabularySize: 80, Decorate: true,
		})
		keys, err := core.MatchKeysFor(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			all[i] = append(all[i], k.Key)
		}
	}
	return all
}

func TestSuffixIndexInterleavedInsertLookup(t *testing.T) {
	models := corpusKeys(t, 8)
	idx := index.New(index.SuffixTree)
	shadow := make(map[string]any) // reference semantics: last insert wins

	for mi, keys := range models {
		for ki, k := range keys {
			val := fmt.Sprintf("m%d/k%d", mi, ki)
			idx.Insert(k, val)
			shadow[k] = val

			// Interleave: after every few inserts, verify a sample of
			// everything inserted so far plus a guaranteed miss.
			if ki%5 == 0 {
				for probe, want := range shadow {
					got, ok := idx.Lookup(probe)
					if !ok || got != want {
						t.Fatalf("after insert %d/%d: Lookup(%q) = %v,%v want %v", mi, ki, probe, got, ok, want)
					}
					break // one sample per round keeps the test linear
				}
				if _, ok := idx.Lookup("absent|" + val); ok {
					t.Fatalf("Lookup hit a never-inserted key")
				}
			}
		}
	}
	if idx.Len() != len(shadow) {
		t.Fatalf("Len = %d, want %d distinct keys", idx.Len(), len(shadow))
	}
	// Full verification after the interleaved phase.
	for probe, want := range shadow {
		if got, ok := idx.Lookup(probe); !ok || got != want {
			t.Fatalf("final Lookup(%q) = %v,%v want %v", probe, got, ok, want)
		}
	}
}

func TestSuffixIndexDuplicateKeysReplace(t *testing.T) {
	models := corpusKeys(t, 4)
	idx := index.New(index.SuffixTree)
	// Insert every model's keys under value "old", then re-insert under
	// "new" — the repository case of re-adding a revised model under the
	// same keys. Replacement must hold for tree-resident and overflow keys
	// alike, and Len must not double-count.
	distinct := make(map[string]bool)
	for _, keys := range models {
		for _, k := range keys {
			idx.Insert(k, "old")
			distinct[k] = true
		}
	}
	before := idx.Len()
	if before != len(distinct) {
		t.Fatalf("Len = %d, want %d", before, len(distinct))
	}
	for _, keys := range models {
		for _, k := range keys {
			idx.Insert(k, "new")
		}
	}
	if idx.Len() != before {
		t.Fatalf("duplicate inserts changed Len: %d → %d", before, idx.Len())
	}
	for k := range distinct {
		if got, _ := idx.Lookup(k); got != "new" {
			t.Fatalf("Lookup(%q) = %v after replacement, want \"new\"", k, got)
		}
	}
}

func TestSuffixIndexSubstringUnderWorkload(t *testing.T) {
	models := corpusKeys(t, 6)
	idx := index.New(index.SuffixTree)
	sub, ok := idx.(index.Substring)
	if !ok {
		t.Fatal("suffix index does not expose substring lookup")
	}
	inserted := make(map[string]string)
	for mi, keys := range models {
		for _, k := range keys {
			idx.Insert(k, fmt.Sprintf("m%d", mi))
			inserted[k] = fmt.Sprintf("m%d", mi)
		}
		// Substring probes interleaved with inserts: species keys all
		// carry the "s|" prefix, so the pattern must reach every species
		// key inserted so far — the inverted-index "all keys of one
		// family" sweep.
		wantSpecies := 0
		for k := range inserted {
			if len(k) > 2 && k[:2] == "s|" {
				wantSpecies++
			}
		}
		got := sub.LookupSubstring("s|")
		if len(got) != wantSpecies {
			t.Fatalf("after model %d: LookupSubstring(\"s|\") = %d values, want %d", mi, len(got), wantSpecies)
		}
	}
	// A pattern spanning a key boundary must not match (keys are separate
	// strings, not one concatenated text).
	if got := sub.LookupSubstring("\x00never\x00"); len(got) != 0 {
		t.Fatalf("boundary-spanning pattern matched %d values", len(got))
	}
	// Miss pattern.
	if got := sub.LookupSubstring("zz|no-such-family"); len(got) != 0 {
		t.Fatalf("absent pattern matched %d values", len(got))
	}
}

func TestSuffixIndexEmptyPatternEdgeCases(t *testing.T) {
	idx := index.New(index.SuffixTree)
	sub := idx.(index.Substring)

	// Empty pattern on an empty index: nothing to match.
	if got := sub.LookupSubstring(""); len(got) != 0 {
		t.Fatalf("empty pattern on empty index returned %d values", len(got))
	}
	// Empty key round-trips like any other key.
	idx.Insert("", "empty")
	if got, ok := idx.Lookup(""); !ok || got != "empty" {
		t.Fatalf("Lookup(\"\") = %v,%v", got, ok)
	}
	idx.Insert("s|id:x@cell", "x")
	// Every key contains the empty string, so the empty pattern sweeps the
	// whole index.
	if got := sub.LookupSubstring(""); len(got) != 2 {
		t.Fatalf("empty pattern returned %d values, want 2", len(got))
	}
	// Replacement on the empty key.
	idx.Insert("", "empty2")
	if got, _ := idx.Lookup(""); got != "empty2" {
		t.Fatalf("empty-key replacement: got %v", got)
	}
	if idx.Len() != 2 {
		t.Fatalf("Len = %d, want 2", idx.Len())
	}
}

// TestSuffixIndexReservedRuneOverflow pins the overflow path: keys the
// tree rejects (private-use runes) must still insert, replace and look up
// through the fallback map without disturbing tree-resident keys.
func TestSuffixIndexReservedRuneOverflow(t *testing.T) {
	idx := index.New(index.SuffixTree)
	weird := "s|id:odd@cell" // private-use rune is reserved by the tree
	idx.Insert(weird, 1)
	idx.Insert("s|id:normal@cell", 2)
	idx.Insert(weird, 3) // replace through the overflow path
	if got, ok := idx.Lookup(weird); !ok || got != 3 {
		t.Fatalf("overflow Lookup = %v,%v want 3", got, ok)
	}
	if got, ok := idx.Lookup("s|id:normal@cell"); !ok || got != 2 {
		t.Fatalf("tree Lookup = %v,%v want 2", got, ok)
	}
	if idx.Len() != 2 {
		t.Fatalf("Len = %d, want 2", idx.Len())
	}
}
