// Package index provides the pluggable component indexes used by the
// composer's Figure 5 lookup step ("Look for SBML component S2 in index of
// first model"). The paper's implementation uses a hash map and flags the
// choice of index structure as an open research question (§3, future work
// §5 items 3 and 7); this package supplies four interchangeable structures —
// hash map, linear scan, sorted array and suffix tree — so the benchmark
// harness can ablate the choice.
package index

import (
	"sort"

	"sbmlcompose/internal/suffixtree"
)

// Index maps string keys (component ids, names, canonical forms or math
// patterns) to arbitrary component values. Duplicate keys overwrite.
type Index interface {
	// Insert stores value under key, replacing any previous value.
	Insert(key string, value any)
	// Lookup returns the value stored under key.
	Lookup(key string) (any, bool)
	// Len returns the number of distinct keys.
	Len() int
	// Name identifies the structure in benchmark output.
	Name() string
}

// Kind selects an index implementation.
type Kind int

const (
	// Hash is the paper's choice: a hash map.
	Hash Kind = iota
	// Linear scans an unsorted slice; the no-index baseline.
	Linear
	// Sorted keeps a sorted slice and binary-searches it.
	Sorted
	// SuffixTree indexes keys in a generalized suffix tree (future work
	// item 7) and additionally supports substring queries.
	SuffixTree
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Hash:
		return "hash"
	case Linear:
		return "linear"
	case Sorted:
		return "sorted"
	case SuffixTree:
		return "suffixtree"
	default:
		return "unknown"
	}
}

// New returns an empty index of the given kind.
func New(kind Kind) Index {
	return NewWithCapacity(kind, 0)
}

// NewWithCapacity returns an empty index of the given kind preallocated for
// about n keys. The compiled-model layer sizes each per-component-type
// index from the model's component counts so bulk compilation avoids
// rehash/regrow churn; n is a hint, not a limit.
func NewWithCapacity(kind Kind, n int) Index {
	if n < 0 {
		n = 0
	}
	switch kind {
	case Linear:
		return &linearIndex{items: make([]kv, 0, n)}
	case Sorted:
		return &sortedIndex{items: make([]kv, 0, n)}
	case SuffixTree:
		return newSuffixIndex()
	default:
		return hashIndex{m: make(map[string]any, n)}
	}
}

// --- hash ---

type hashIndex struct {
	m map[string]any
}

func (h hashIndex) Insert(key string, value any) { h.m[key] = value }
func (h hashIndex) Lookup(key string) (any, bool) {
	v, ok := h.m[key]
	return v, ok
}
func (h hashIndex) Len() int     { return len(h.m) }
func (h hashIndex) Name() string { return "hash" }

// --- linear ---

type kv struct {
	key   string
	value any
}

type linearIndex struct {
	items []kv
}

func (l *linearIndex) Insert(key string, value any) {
	for i := range l.items {
		if l.items[i].key == key {
			l.items[i].value = value
			return
		}
	}
	l.items = append(l.items, kv{key, value})
}

func (l *linearIndex) Lookup(key string) (any, bool) {
	for i := range l.items {
		if l.items[i].key == key {
			return l.items[i].value, true
		}
	}
	return nil, false
}

func (l *linearIndex) Len() int     { return len(l.items) }
func (l *linearIndex) Name() string { return "linear" }

// --- sorted ---

type sortedIndex struct {
	items []kv // sorted by key
}

func (s *sortedIndex) search(key string) int {
	return sort.Search(len(s.items), func(i int) bool { return s.items[i].key >= key })
}

func (s *sortedIndex) Insert(key string, value any) {
	i := s.search(key)
	if i < len(s.items) && s.items[i].key == key {
		s.items[i].value = value
		return
	}
	s.items = append(s.items, kv{})
	copy(s.items[i+1:], s.items[i:])
	s.items[i] = kv{key, value}
}

func (s *sortedIndex) Lookup(key string) (any, bool) {
	i := s.search(key)
	if i < len(s.items) && s.items[i].key == key {
		return s.items[i].value, true
	}
	return nil, false
}

func (s *sortedIndex) Len() int     { return len(s.items) }
func (s *sortedIndex) Name() string { return "sorted" }

// --- suffix tree ---

// suffixIndex stores values in insertion order and resolves exact-match
// lookups through the generalized suffix tree. Keys containing reserved
// runes fall back to a small overflow map so Insert never fails.
type suffixIndex struct {
	tree     *suffixtree.Tree
	values   []any
	keys     []string
	overflow map[string]any
}

func newSuffixIndex() *suffixIndex {
	return &suffixIndex{tree: suffixtree.New(), overflow: make(map[string]any)}
}

func (s *suffixIndex) Insert(key string, value any) {
	// Replace semantics: if the key exists, update in place.
	if ids := s.tree.ExactMatches(key); len(ids) > 0 {
		s.values[ids[len(ids)-1]] = value
		return
	}
	if _, dup := s.overflow[key]; dup {
		s.overflow[key] = value
		return
	}
	id, err := s.tree.Add(key)
	if err != nil {
		s.overflow[key] = value
		return
	}
	if id != len(s.values) {
		// Defensive: ids are sequential by construction.
		panic("index: suffix tree id out of sync")
	}
	s.values = append(s.values, value)
	s.keys = append(s.keys, key)
}

func (s *suffixIndex) Lookup(key string) (any, bool) {
	if v, ok := s.overflow[key]; ok {
		return v, true
	}
	ids := s.tree.ExactMatches(key)
	if len(ids) == 0 {
		return nil, false
	}
	return s.values[ids[len(ids)-1]], true
}

// LookupSubstring returns the values of every key containing pattern; this
// capability is what distinguishes the suffix tree from the other indexes.
func (s *suffixIndex) LookupSubstring(pattern string) []any {
	ids := s.tree.FindAll(pattern)
	out := make([]any, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.values[id])
	}
	return out
}

func (s *suffixIndex) Len() int     { return len(s.values) + len(s.overflow) }
func (s *suffixIndex) Name() string { return "suffixtree" }

// Substring is the optional interface exposing substring search; only the
// suffix-tree index implements it.
type Substring interface {
	LookupSubstring(pattern string) []any
}
