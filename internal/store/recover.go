package store

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sbmlcompose/internal/core"
	"sbmlcompose/internal/sbml"
)

// This file implements the recovery parse path and its parallelism.
// Recovery has two kinds of work: decoding (snapshot entries, WAL
// frames), which is cheap and stays sequential, and the parse path —
// XML parse plus core.Compile — which dominates restart time whenever
// an entry arrives without trustworthy precompiled keys (every WAL
// record, every legacy or damaged snapshot entry, any fingerprint
// mismatch). The parse path is embarrassingly parallel: each model
// compiles independently, and only the sequential apply step afterwards
// needs the results in order. parseAll fans the compiles out across
// GOMAXPROCS workers and returns results positionally, so Open applies
// them in exactly the order a sequential recovery would have.

// parseJob is one model needing the parse path: canonical bytes plus
// the id the containing record claims, cross-checked after the parse.
type parseJob struct {
	id   string
	sbml []byte
}

// parseResult is the outcome of one parse-path compile, at the same
// index as its job.
type parseResult struct {
	cm  *core.CompiledModel
	err error
}

// parseOne runs the full parse path for one job.
func parseOne(j parseJob, match core.Options) parseResult {
	doc, err := sbml.ParseString(string(j.sbml))
	if err != nil {
		// ParseString guarantees doc.Model on success, so this covers
		// model-less documents too.
		return parseResult{err: fmt.Errorf("parse stored model: %w", err)}
	}
	if doc.Model.ID != j.id {
		return parseResult{err: fmt.Errorf("stored bytes carry id %q, record says %q", doc.Model.ID, j.id)}
	}
	cm, err := core.Compile(doc.Model, match)
	if err != nil {
		return parseResult{err: err}
	}
	return parseResult{cm: cm}
}

// parseAll compiles every job across a worker pool and returns results
// at matching indexes. Errors are per-job, never short-circuiting: the
// caller applies results in record order, so the error it surfaces is
// the one a sequential recovery would have hit first.
func parseAll(jobs []parseJob, match core.Options) []parseResult {
	results := make([]parseResult, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			results[i] = parseOne(j, match)
		}
		return results
	}
	// Work-stealing by atomic counter: model sizes vary, so static
	// striping would leave workers idle behind one heavy stripe.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = parseOne(jobs[i], match)
			}
		}()
	}
	wg.Wait()
	return results
}
