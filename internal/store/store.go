// Package store makes the corpus durable: an append-only write-ahead log
// plus periodic snapshots, with Open replaying snapshot-then-tail to
// reconstruct a corpus.Corpus whose contents, match-key indexes and
// search rankings are identical to a never-restarted corpus.
//
// # On-disk layout
//
// A store directory holds one snapshot and one or more WAL segments:
//
//	corpus.snap            snapshot (optional until first compaction)
//	wal-<gen 16-hex>.log   WAL segments, generation order = lexical order
//
// # WAL format (version sbwal-v1)
//
// Each segment begins with the 8-byte magic "sbwal-v1", followed by
// length+CRC-framed records:
//
//	uint32 LE  payload length
//	uint32 LE  CRC-32 (IEEE) of the payload
//	payload    bytes
//
// A record payload is:
//
//	byte     op               1 = AddModel, 2 = RemoveModel
//	uvarint  seq              monotonically increasing across segments
//	uvarint  len(id) + id     the model id
//	uvarint  len(sbml) + sbml (AddModel only) canonical SBML bytes,
//	                          exactly as the corpus stores the model
//
// The sequence number orders records globally and links the WAL to
// snapshots: a snapshot records the highest seq whose effect it includes,
// and replay skips records at or below it, which is what makes
// compaction crash-safe at every intermediate step (a crash between
// snapshot rename and segment deletion merely replays records that the
// seq check then skips).
//
// # Recovery
//
// Open loads the snapshot (a corrupt snapshot is a hard error — see
// ErrCorruptSnapshot — because ignoring it would silently lose the
// corpus), then replays WAL records in order. Replay stops at the first
// bad frame of a segment — short frame header, implausible length, CRC
// mismatch, undecodable payload — and drops everything from it to the
// segment's end: a torn or corrupt tail holds only unacknowledged
// writes, and is never mis-applied (pinned byte-by-byte by the
// crash-recovery property test). The tail segment is physically
// truncated back to its last intact record so later appends continue a
// well-formed log.
//
// Snapshots are written in a binary format (sbsnap-2, codec.go) that
// carries each model's precompiled match keys next to its canonical
// bytes, so snapshot entries normally install without touching the XML
// pipeline at all. The keys are trusted only when their CRC holds and
// the snapshot's match-options fingerprint equals the opening corpus's;
// otherwise — and for every WAL record, which carries bytes only — the
// model takes the parse path, fanned out across GOMAXPROCS workers
// (recover.go) and applied in record order. Either way the recovered
// corpus is search-identical to a never-restarted one.
//
// # Durability policy
//
// FsyncAlways syncs the WAL after every append — an acknowledged
// mutation survives power loss, at a per-write latency cost.
// FsyncGroup gives the same guarantee at a fraction of the cost under
// concurrency: appends are written immediately but acknowledged by a
// group-commit loop that batches all appends landing while one fsync is
// in flight into the next (group.go). FsyncInterval syncs on a timer,
// bounding loss to the interval; FsyncNever leaves flushing to the OS.
// Snapshots are always written cold-path durable (temp file + fsync +
// rename + directory sync) regardless of policy.
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sbmlcompose/internal/corpus"
)

// FsyncPolicy selects when WAL appends are synced to stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every append: no acknowledged write is ever
	// lost. The default.
	FsyncAlways FsyncPolicy = "always"
	// FsyncGroup is FsyncAlways's guarantee with batched syncs: an append
	// is not acknowledged until an fsync covering it completes, but one
	// fsync acknowledges every append that landed while the previous one
	// was in flight, so concurrent writers share the sync cost instead of
	// paying it each. Latency per append stays around one fsync; aggregate
	// throughput scales with the writer count.
	FsyncGroup FsyncPolicy = "group"
	// FsyncInterval syncs on a timer (Options.FsyncEvery): loss after a
	// crash is bounded by the interval.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves flushing to the operating system. Replication
	// caveat: with no sync point to gate on, the feed ships records the
	// moment they are written, so a primary crash can lose records a
	// follower already holds durably — the follower is then no prefix of
	// the restarted primary and can never reconcile. Primaries that feed
	// followers should run FsyncAlways, FsyncGroup or FsyncInterval (all
	// of which ship only durable records).
	FsyncNever FsyncPolicy = "never"
)

// Options configures Open.
type Options struct {
	// Corpus configures the recovered corpus (shards, workers, match
	// options, query cache).
	Corpus corpus.Options
	// Fsync is the WAL durability policy; empty means FsyncAlways.
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period; 0 defaults to 200ms.
	FsyncEvery time.Duration
	// GroupMaxBytes caps how many written-but-unsynced bytes a FsyncGroup
	// batch accumulates before the loop stops waiting for more company and
	// syncs; 0 defaults to 1 MiB. Only consulted when GroupMaxDelay > 0
	// (with no delay, every batch commits as soon as the previous fsync
	// returns).
	GroupMaxBytes int64
	// GroupMaxDelay, when positive, makes the FsyncGroup loop linger that
	// long after the first append of a batch (or until GroupMaxBytes
	// accumulate) to gather a larger batch, trading append latency for
	// fewer syncs. 0 — the default — batches naturally: whatever lands
	// during one fsync forms the next batch.
	GroupMaxDelay time.Duration
	// RecoveryParseOnly makes Open ignore the snapshot's precompiled match
	// keys and push every model through the parse path, as if the snapshot
	// carried canonical bytes only. Benchmarks use it to isolate the binary
	// format's advantage; operators can use it to force re-derivation.
	RecoveryParseOnly bool
	// CompactBytes triggers an automatic snapshot (and WAL truncation)
	// once the live segment's record bytes exceed it. 0 defaults to 8 MiB;
	// negative disables auto-compaction.
	CompactBytes int64
	// NoSnapshotOnClose skips the final snapshot Close normally takes
	// (used by crash harnesses and recovery benchmarks that need the raw
	// WAL to survive).
	NoSnapshotOnClose bool
	// Metrics, when non-nil, receives durability instrumentation
	// (metrics.go); nil costs nothing.
	Metrics *Metrics
}

func (o Options) withDefaults() (Options, error) {
	switch o.Fsync {
	case "":
		o.Fsync = FsyncAlways
	case FsyncAlways, FsyncGroup, FsyncInterval, FsyncNever:
	default:
		return o, fmt.Errorf("store: unknown fsync policy %q (want always, group, interval or never)", o.Fsync)
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 200 * time.Millisecond
	}
	if o.GroupMaxBytes <= 0 {
		o.GroupMaxBytes = 1 << 20
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 8 << 20
	}
	return o, nil
}

// RecoveryStats describes what Open found and replayed; the server logs
// it at startup and serves it on /healthz.
type RecoveryStats struct {
	// SnapshotModels counts models restored from the snapshot; SnapshotSeq
	// is the WAL sequence number the snapshot covered. Of those models,
	// SnapshotPrecompiled installed straight from persisted match keys and
	// SnapshotParsed took the parse path (legacy format, damaged keys
	// section, fingerprint mismatch, or Options.RecoveryParseOnly).
	SnapshotModels      int    `json:"snapshot_models"`
	SnapshotSeq         uint64 `json:"snapshot_seq"`
	SnapshotPrecompiled int    `json:"snapshot_precompiled"`
	SnapshotParsed      int    `json:"snapshot_parsed"`
	// WALSegments and WALRecords count the segments read and the intact
	// records in them; WALSkipped of those were already covered by the
	// snapshot, WALAdds/WALRemoves were applied.
	WALSegments int `json:"wal_segments"`
	WALRecords  int `json:"wal_records"`
	WALSkipped  int `json:"wal_skipped"`
	WALAdds     int `json:"wal_adds"`
	WALRemoves  int `json:"wal_removes"`
	// TornTail reports that a torn or corrupt tail was found and dropped;
	// DroppedBytes is its size.
	TornTail     bool  `json:"torn_tail"`
	DroppedBytes int64 `json:"dropped_bytes"`
}

// Status is a point-in-time view of the store for health reporting.
type Status struct {
	Dir       string        `json:"dir"`
	Fsync     FsyncPolicy   `json:"fsync"`
	Recovery  RecoveryStats `json:"recovery"`
	LastSeq   uint64        `json:"last_seq"`
	TailBytes int64         `json:"wal_tail_bytes"`
	// Snapshots counts snapshots taken since Open (manual, automatic and
	// on close); CompactError is the most recent background-compaction
	// failure, empty when healthy.
	Snapshots    int64  `json:"snapshots"`
	CompactError string `json:"compact_error,omitempty"`
}

// Store couples a recovered corpus to its WAL and snapshot files. It is
// the corpus's Persister: every Add/Remove is logged (and, under
// FsyncAlways, synced) before the in-memory mutation becomes visible.
// All methods are safe for concurrent use.
type Store struct {
	dir   string
	opts  Options
	c     *corpus.Corpus
	stats RecoveryStats
	// fingerprint identifies the match options the corpus's keys are
	// derived under; snapshots record it so a later Open knows whether the
	// persisted keys are trustworthy.
	fingerprint uint64

	// mu guards the WAL writer, sequence counter and tail size. Lock
	// order is shard lock → mu (persist calls arrive holding a shard
	// lock; DumpConsistent's callback takes mu while holding every shard
	// lock), so mu must never be held while acquiring a shard lock.
	mu        sync.Mutex
	wal       *walWriter
	gen       uint64
	seq       uint64
	tailBytes int64
	closing   bool // Close has begun: no new Close work, appends still drain
	closed    bool // WAL closed: appends fail

	// Replication-feed state (tail.go), guarded by mu. ackedSeq is the
	// highest sequence number whose append has been acknowledged to its
	// caller — the replication feed never ships a record beyond it,
	// because an unacknowledged record (a group-commit batch awaiting its
	// fsync) can still be rolled back. compactedSeq is the highest
	// sequence number that compaction may have removed from the WAL
	// (the snapshot's LastSeq at the most recent compaction, or at Open);
	// a tail read starting below it gets ErrCompacted — deterministically,
	// whether or not the bytes happen to survive on disk — and must
	// bootstrap from a snapshot instead. tailWake is closed and replaced
	// whenever ackedSeq or compactedSeq advances, waking blocked readers.
	ackedSeq     uint64
	compactedSeq uint64
	tailWake     chan struct{}
	// tailCur caches where the last tail scan stopped, so a follower
	// walking the feed forward seeks straight to its next frame instead
	// of re-reading the whole WAL per chunk (tail.go).
	tailCur tailCursor

	// identMu guards the replication identity (cluster ID + promotion
	// epoch, identity.go), persisted in replication.json.
	identMu sync.Mutex
	ident   replIdentity

	// readOnly gates the corpus-facing persist path while a follower
	// replica owns this store: local mutations would interleave
	// locally-assigned sequence numbers with the primary's and diverge
	// the replica forever, so PersistAdd/PersistRemove fail with
	// ErrReadOnly until promotion lifts the gate. The replication apply
	// path (AppendBatch) is exempt — it is the one legitimate writer.
	readOnly atomic.Bool

	// Group-commit state (FsyncGroup only; see group.go). groupMu
	// serializes group commits against segment rotation — lock order is
	// groupMu → mu, and whoever holds groupMu owns the invariant that
	// every pending waiter's record sits in the current s.wal.
	// groupWaiters (guarded by mu) are appends written but awaiting the
	// fsync that acknowledges them; groupBytes counts their frame bytes;
	// groupCh kicks the loop.
	groupMu      sync.Mutex
	groupCh      chan struct{}
	groupWaiters []groupWaiter
	groupBytes   int64

	// snapMu serializes snapshots (manual, auto-compaction, close).
	snapMu     sync.Mutex
	snapshots  atomic.Int64
	compactErr atomic.Value // string
	compactCh  chan struct{}
	done       chan struct{}
	wg         sync.WaitGroup
	// closeResult gates concurrent Close calls: the first closer does the
	// work and publishes its error; later callers block until the channel
	// closes, so a nil return from any Close means the store is closed.
	closeResult chan struct{}
	closeErr    error
	// closeCtx is cancelled when Close begins, so an in-flight background
	// compaction unwinds between units of work instead of delaying
	// shutdown by a full snapshot write.
	closeCtx    context.Context
	closeCancel context.CancelFunc
}

// Open recovers (or creates) a store in dir and returns it with its
// corpus reconstructed from snapshot plus WAL tail. The returned store is
// already attached to the corpus as its persister, so every subsequent
// corpus mutation is durable under the configured fsync policy.
func Open(dir string, opts Options) (*Store, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Store{
		dir:         dir,
		opts:        opts,
		compactCh:   make(chan struct{}, 1),
		done:        make(chan struct{}),
		closeResult: make(chan struct{}),
	}
	s.closeCtx, s.closeCancel = context.WithCancel(context.Background())

	if s.ident, err = loadReplIdentity(dir); err != nil {
		return nil, err
	}
	sf, haveSnap, err := loadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	s.fingerprint = opts.Corpus.Match.MatchKeyFingerprint()
	c := corpus.New(opts.Corpus)
	if haveSnap {
		// Entries whose persisted keys survived their CRC — and were
		// derived under these exact match options — install directly; the
		// rest take the parse path, fanned out across workers (recover.go).
		trustKeys := !opts.RecoveryParseOnly && sf.fingerprint == s.fingerprint
		var snapJobs []parseJob
		for _, e := range sf.entries {
			if !(trustKeys && e.keysOK) {
				snapJobs = append(snapJobs, parseJob{id: e.id, sbml: e.sbml})
			}
		}
		parsed := parseAll(snapJobs, opts.Corpus.Match)
		ji := 0
		for _, e := range sf.entries {
			p := corpus.PrecompiledModel{ID: e.id, SBML: e.sbml, Keys: e.keys}
			if trustKeys && e.keysOK {
				s.stats.SnapshotPrecompiled++
			} else {
				r := parsed[ji]
				ji++
				if r.err != nil {
					return nil, fmt.Errorf("store: snapshot model %q: %w", e.id, r.err)
				}
				p.Keys = r.cm.MatchKeys()
				p.Compiled = r.cm
				s.stats.SnapshotParsed++
			}
			if err := c.AddPrecompiled(p); err != nil {
				return nil, fmt.Errorf("store: snapshot model %q: %w", e.id, err)
			}
		}
		s.stats.SnapshotModels = len(sf.entries)
		s.stats.SnapshotSeq = sf.lastSeq
		s.seq = sf.lastSeq
	}

	segs, err := segmentPaths(dir)
	if err != nil {
		return nil, err
	}
	s.stats.WALSegments = len(segs)
	// Decode every segment sequentially (framing is cheap and ordered),
	// collecting the records to apply; the expensive parse path for their
	// adds is then fanned out before the ordered apply below.
	type walApply struct {
		rec  walRecord
		path string
	}
	var pending []walApply
	for i, path := range segs {
		rep, err := readSegment(path)
		if err != nil {
			return nil, err
		}
		if rep.droppedBytes > 0 {
			s.stats.TornTail = true
			s.stats.DroppedBytes += rep.droppedBytes
			if i != len(segs)-1 {
				// A torn tail is only self-repairing at the end of the
				// log. Mid-sequence (possible after a failed compaction
				// left multiple segments and the OS then lost a tail under
				// fsync=never/interval), replaying the later segments
				// would apply records across a gap in history — refuse
				// loudly instead of guessing.
				return nil, fmt.Errorf("store: %s has a torn or corrupt tail but later segments exist; refusing to replay past the gap (restore the segment or delete the newer ones)", path)
			}
		}
		for _, rec := range rep.records {
			s.stats.WALRecords++
			if rec.seq > s.seq {
				s.seq = rec.seq
			}
			if rec.seq <= sf.lastSeq {
				s.stats.WALSkipped++
				continue
			}
			pending = append(pending, walApply{rec: rec, path: path})
		}
		if i == len(segs)-1 {
			// Tail segment: repair a torn tail and reopen for appending.
			if rep.goodOff < int64(len(walMagic)) {
				// Crash during segment creation: recreate it whole.
				if err := os.Remove(path); err != nil {
					return nil, fmt.Errorf("store: recreate %s: %w", path, err)
				}
				s.wal, err = createSegment(path, opts.Fsync == FsyncAlways)
			} else {
				if rep.droppedBytes > 0 {
					if err := os.Truncate(path, rep.goodOff); err != nil {
						return nil, fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
					}
				}
				s.wal, err = openSegmentForAppend(path, rep.goodOff, opts.Fsync == FsyncAlways)
			}
			if err != nil {
				return nil, err
			}
			s.tailBytes = s.wal.off - int64(len(walMagic))
			if s.gen, err = segmentGen(path); err != nil {
				return nil, err
			}
		}
	}
	if len(segs) == 0 {
		s.gen = 1
		s.wal, err = createSegment(segmentName(dir, s.gen), opts.Fsync == FsyncAlways)
		if err != nil {
			return nil, err
		}
		syncDir(dir)
	}
	s.wal.metrics = opts.Metrics

	// Apply the WAL tail in record order. The adds' parse work runs in
	// parallel first; the apply itself stays sequential because removes
	// interleave with adds and duplicate detection is order-dependent.
	var walJobs []parseJob
	for _, pa := range pending {
		if pa.rec.op == opAdd {
			walJobs = append(walJobs, parseJob{id: pa.rec.id, sbml: pa.rec.sbml})
		}
	}
	parsed := parseAll(walJobs, opts.Corpus.Match)
	ji := 0
	for _, pa := range pending {
		switch pa.rec.op {
		case opAdd:
			r := parsed[ji]
			ji++
			if r.err != nil {
				return nil, fmt.Errorf("store: replay %s seq %d: %w", pa.path, pa.rec.seq, r.err)
			}
			if err := c.AddPrecompiled(corpus.PrecompiledModel{
				ID:       pa.rec.id,
				SBML:     pa.rec.sbml,
				Keys:     r.cm.MatchKeys(),
				Compiled: r.cm,
			}); err != nil {
				return nil, fmt.Errorf("store: replay %s seq %d: %w", pa.path, pa.rec.seq, err)
			}
			s.stats.WALAdds++
		case opRemove:
			ok, err := c.Remove(pa.rec.id)
			if err != nil {
				return nil, fmt.Errorf("store: replay %s seq %d: %w", pa.path, pa.rec.seq, err)
			}
			if !ok {
				return nil, fmt.Errorf("store: replay %s seq %d: remove of absent model %q", pa.path, pa.rec.seq, pa.rec.id)
			}
			s.stats.WALRemoves++
		}
	}

	s.c = c
	c.SetPersister(s)

	// Everything recovery applied is by definition acknowledged, and
	// records at or below the snapshot's seq may no longer exist in the
	// WAL — a replication read must not start below that point.
	s.ackedSeq = s.seq
	s.compactedSeq = sf.lastSeq
	s.tailWake = make(chan struct{})

	s.wg.Add(1)
	go s.compactLoop()
	if opts.Fsync == FsyncInterval {
		s.wg.Add(1)
		go s.fsyncLoop()
	}
	if opts.Fsync == FsyncGroup {
		s.groupCh = make(chan struct{}, 1)
		s.wg.Add(1)
		go s.groupLoop()
	}
	return s, nil
}

// Corpus returns the recovered corpus. Mutations made through it are
// persisted by this store.
func (s *Store) Corpus() *corpus.Corpus { return s.c }

// Stats returns what recovery found at Open.
func (s *Store) Stats() RecoveryStats { return s.stats }

// Status returns the store's current health view.
func (s *Store) Status() Status {
	s.mu.Lock()
	seq, tail := s.seq, s.tailBytes
	s.mu.Unlock()
	st := Status{
		Dir:       s.dir,
		Fsync:     s.opts.Fsync,
		Recovery:  s.stats,
		LastSeq:   seq,
		TailBytes: tail,
		Snapshots: s.snapshots.Load(),
	}
	if msg, ok := s.compactErr.Load().(string); ok {
		st.CompactError = msg
	}
	return st
}

// persistErr tags a durable-store failure so callers can map it apart
// from model errors (the corpus sentinel makes errors.Is work through
// the corpus's own wrapping).
func persistErr(op string, err error) error {
	return fmt.Errorf("store: %s: %w: %w", op, err, corpus.ErrPersist)
}

// ErrReadOnly marks mutations rejected because the store is a follower
// replica: every local write must come from the primary's log (via the
// replication apply path), or the replica diverges. Promotion lifts it.
var ErrReadOnly = errors.New("store is a read-only replica")

// PersistAdd implements corpus.Persister: it logs an AddModel record
// (synced under FsyncAlways) before the corpus applies the mutation.
// Called under the mutated shard's write lock.
func (s *Store) PersistAdd(id string, sbmlBytes []byte) error {
	if s.readOnly.Load() {
		return persistErr("wal append add", ErrReadOnly)
	}
	return s.appendRecord(walRecord{op: opAdd, id: id, sbml: sbmlBytes}, "wal append add")
}

// PersistRemove implements corpus.Persister for removals.
func (s *Store) PersistRemove(id string) error {
	if s.readOnly.Load() {
		return persistErr("wal append remove", ErrReadOnly)
	}
	return s.appendRecord(walRecord{op: opRemove, id: id}, "wal append remove")
}

func (s *Store) appendRecord(rec walRecord, op string) error {
	if m := s.opts.Metrics; m != nil {
		t0 := time.Now()
		defer func() { m.AppendSeconds.Observe(time.Since(t0).Seconds()) }()
	}
	group := s.opts.Fsync == FsyncGroup
	s.mu.Lock()
	if s.closed || (group && s.closing) {
		// Group appends must also stop at closing, not just closed: the
		// group loop takes its final drain when Close signals done, and a
		// waiter enqueued after that drain would block forever. closing is
		// set under mu before done is closed, so this check and the drain
		// cannot miss the same waiter.
		s.mu.Unlock()
		return persistErr(op, fmt.Errorf("store is closed"))
	}
	s.seq++
	rec.seq = s.seq
	payload := encodeRecord(rec)
	if err := s.wal.append(payload); err != nil {
		s.mu.Unlock()
		return persistErr(op, err)
	}
	s.tailBytes += int64(walFrameLen + len(payload))
	if s.opts.CompactBytes > 0 && s.tailBytes >= s.opts.CompactBytes {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
	if !group {
		// Under FsyncAlways the append's sync already ran, so the
		// replication feed may ship it. Under FsyncInterval the record is
		// not durable until the next timer sync — the fsync loop advances
		// the watermark then, so a primary crash can never lose a record a
		// follower durably holds. FsyncNever has no sync point to gate on
		// and ships immediately (see the policy's replication caveat).
		if s.opts.Fsync != FsyncInterval {
			s.advanceAckedLocked(rec.seq)
		}
		s.mu.Unlock()
		return nil
	}
	// Group commit: the record is written but not yet durable. Enqueue in
	// the same critical section as the write — that is what lets both the
	// group loop and segment rotation pair every waiter with the writer
	// holding its bytes — then block until an fsync covers it (or fails;
	// then the record has been rolled back and the mutation must abort).
	done := make(chan error, 1)
	s.groupWaiters = append(s.groupWaiters, groupWaiter{ch: done, seq: rec.seq, records: 1})
	s.groupBytes += int64(walFrameLen + len(payload))
	s.mu.Unlock()
	select {
	case s.groupCh <- struct{}{}:
	default: // loop already kicked; it drains all waiters regardless
	}
	if err := <-done; err != nil {
		return persistErr(op, err)
	}
	return nil
}

// advanceAckedLocked raises the acknowledged-sequence watermark and wakes
// blocked tail readers. Caller holds mu.
func (s *Store) advanceAckedLocked(seq uint64) {
	if seq <= s.ackedSeq {
		return
	}
	s.ackedSeq = seq
	close(s.tailWake)
	s.tailWake = make(chan struct{})
}

// BatchRecord is one mutation of an AppendBatch call.
type BatchRecord struct {
	// Remove selects a RemoveModel record; otherwise the record is an
	// AddModel carrying SBML.
	Remove bool
	// Seq, when non-zero, is the externally assigned sequence number —
	// the replication apply path preserves the primary's numbering so a
	// follower's durable seq is directly comparable to the primary's.
	// Seqs must be strictly increasing across the batch and greater than
	// every seq already in this store. Zero assigns the next local seq.
	Seq  uint64
	ID   string
	SBML []byte
}

// AppendBatch logs a chunk of records with a single write and at most a
// single fsync covering the whole chunk — the follower apply path's
// amortization (a received replication batch of N records costs one sync,
// not N) and the answer to group commit capping batches at the
// blocked-writer count. Under FsyncGroup the batch enqueues one waiter,
// so it joins whatever batch the group loop forms. All records land or
// none do: a failed write or sync rolls the entire chunk back.
func (s *Store) AppendBatch(recs []BatchRecord) error {
	if len(recs) == 0 {
		return nil
	}
	if m := s.opts.Metrics; m != nil {
		t0 := time.Now()
		defer func() { m.AppendSeconds.Observe(time.Since(t0).Seconds()) }()
	}
	group := s.opts.Fsync == FsyncGroup
	s.mu.Lock()
	if s.closed || (group && s.closing) {
		s.mu.Unlock()
		return persistErr("wal append batch", fmt.Errorf("store is closed"))
	}
	seq0 := s.seq
	var frames []byte
	for _, br := range recs {
		rec := walRecord{op: opAdd, id: br.ID, sbml: br.SBML}
		if br.Remove {
			rec = walRecord{op: opRemove, id: br.ID}
		}
		if br.Seq == 0 {
			s.seq++
			rec.seq = s.seq
		} else {
			if br.Seq <= s.seq {
				err := fmt.Errorf("batch seq %d not beyond store seq %d", br.Seq, s.seq)
				s.seq = seq0
				s.mu.Unlock()
				return persistErr("wal append batch", err)
			}
			s.seq = br.Seq
			rec.seq = br.Seq
		}
		frames = append(frames, frameRecord(encodeRecord(rec))...)
	}
	if err := s.wal.appendFrames(frames); err != nil {
		// The writer rolled the whole chunk back (or wedged); the seqs it
		// would have consumed are surrendered too so a retry reuses them.
		s.seq = seq0
		s.mu.Unlock()
		return persistErr("wal append batch", err)
	}
	last := s.seq
	s.tailBytes += int64(len(frames))
	if s.opts.CompactBytes > 0 && s.tailBytes >= s.opts.CompactBytes {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
	if !group {
		// Same watermark gating as appendRecord: FsyncInterval records
		// become shippable at the next timer sync, not on return.
		if s.opts.Fsync != FsyncInterval {
			s.advanceAckedLocked(last)
		}
		s.mu.Unlock()
		return nil
	}
	done := make(chan error, 1)
	s.groupWaiters = append(s.groupWaiters, groupWaiter{ch: done, seq: last, records: len(recs)})
	s.groupBytes += int64(len(frames))
	s.mu.Unlock()
	select {
	case s.groupCh <- struct{}{}:
	default:
	}
	if err := <-done; err != nil {
		return persistErr("wal append batch", err)
	}
	return nil
}

// LastSeq returns the highest sequence number assigned so far.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Snapshot writes a snapshot of the current corpus and truncates the WAL
// to records newer than it: the compaction step. Safe to call at any
// time; concurrent mutations keep flowing into a freshly rotated segment
// while the snapshot file is written, and every intermediate crash state
// recovers (the snapshot's LastSeq makes already-covered tail records
// no-ops at replay).
func (s *Store) Snapshot() error {
	return s.SnapshotContext(context.Background())
}

// SnapshotContext is Snapshot honoring cancellation: ctx is checked before
// the segment rotation, between per-model serializations of the consistent
// dump, and before the snapshot file write. A cancelled snapshot returns
// ctx's error and writes no snapshot file; if the rotation already
// happened, the rotated-out segment simply remains until the next
// successful compaction covers it — every intermediate state recovers, as
// with a crash. The durable contents are never affected by cancellation.
func (s *Store) SnapshotContext(ctx context.Context) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	snapStart := time.Now()

	// Rotate: new appends go to a fresh segment so the snapshot write
	// happens without holding any corpus or WAL lock. Under FsyncGroup the
	// whole rotation runs inside groupMu: the group loop is locked out, and
	// any waiters captured in the same critical section as the swap are
	// exactly the appends whose bytes sit in the outgoing writer — they are
	// resolved against it (resolveGroup) before anything else happens, so
	// no waiter is ever left pending on a rotated-out segment.
	group := s.opts.Fsync == FsyncGroup
	if group {
		s.groupMu.Lock()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if group {
			s.groupMu.Unlock()
		}
		return fmt.Errorf("store: snapshot: store is closed")
	}
	newGen := s.gen + 1
	w, err := createSegment(segmentName(s.dir, newGen), s.opts.Fsync == FsyncAlways)
	if err != nil {
		s.mu.Unlock()
		if group {
			s.groupMu.Unlock()
		}
		return fmt.Errorf("store: snapshot rotate: %w", err)
	}
	w.metrics = s.opts.Metrics
	old := s.wal
	s.wal = w
	s.gen = newGen
	s.tailBytes = 0
	var waiters []groupWaiter
	if group {
		waiters = s.groupWaiters
		s.groupWaiters = nil
		s.groupBytes = 0
	}
	s.mu.Unlock()
	if group {
		s.resolveGroup(old, waiters)
		s.groupMu.Unlock()
	}
	syncDir(s.dir)
	// Close (and flush) the rotated-out segment. Its records are about to
	// be covered by the snapshot; until the snapshot rename lands, the
	// segment file itself stays on disk, so nothing is lost either way.
	_ = old.close()

	// Collect a consistent view: every shard read-locked before the first
	// model is serialized, LastSeq captured under the same locks.
	var lastSeq uint64
	blobs, err := s.c.DumpConsistentContext(ctx, func() {
		s.mu.Lock()
		lastSeq = s.seq
		s.mu.Unlock()
	})
	if err != nil {
		// Cancelled mid-dump: the rotated segments stay on disk and keep
		// replaying at recovery, exactly as before this call.
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := writeSnapshot(s.dir, lastSeq, s.fingerprint, blobs); err != nil {
		// The old segments remain; recovery still replays them.
		return fmt.Errorf("store: write snapshot: %w", err)
	}

	// The snapshot covers every record in segments older than the live
	// one (they were rotated out before LastSeq was captured); delete
	// them. A crash before this point replays them into no-ops.
	segs, err := segmentPaths(s.dir)
	if err != nil {
		return err
	}
	for _, path := range segs {
		gen, err := segmentGen(path)
		if err != nil {
			return err
		}
		if gen < newGen {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("store: drop compacted segment %s: %w", path, err)
			}
		}
	}
	syncDir(s.dir)
	// Records at or below lastSeq may now be gone from the WAL (those in
	// the deleted segments are; some in the live segment may survive, but
	// the replication feed must not depend on which). Raise the floor so
	// a tail read below it deterministically gets ErrCompacted and
	// bootstraps from the snapshot instead of guessing.
	s.mu.Lock()
	// The snapshot itself is cold-path durable, so every record it covers
	// is now crash-safe regardless of fsync policy — acknowledge them to
	// the feed (this is how FsyncInterval records covered by a compaction
	// ship without waiting for the next timer sync, and it keeps the
	// acked watermark at or above the compaction floor).
	s.advanceAckedLocked(lastSeq)
	if lastSeq > s.compactedSeq {
		s.compactedSeq = lastSeq
		close(s.tailWake)
		s.tailWake = make(chan struct{})
	}
	s.mu.Unlock()
	s.snapshots.Add(1)
	if m := s.opts.Metrics; m != nil {
		m.SnapshotSeconds.Observe(time.Since(snapStart).Seconds())
	}
	return nil
}

// compactLoop runs automatic compaction when the append path signals
// that the tail grew past Options.CompactBytes. Compactions run under
// closeCtx so a shutdown cancels an in-flight one between units of work
// (Close then takes its own final snapshot); that cancellation is an
// expected shutdown path, not a compaction failure, so it never lands in
// CompactError.
func (s *Store) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			if err := s.SnapshotContext(s.closeCtx); err != nil {
				if !errors.Is(err, context.Canceled) {
					s.compactErr.Store(err.Error())
				}
			} else {
				s.compactErr.Store("")
			}
		}
	}
}

// fsyncLoop syncs the WAL on a timer under FsyncInterval.
func (s *Store) fsyncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				// Appends hold mu, so every record with seq <= s.seq was
				// fully written before this sync began; a successful sync
				// makes them durable and therefore shippable. (Records in
				// segments rotated out since the last tick were already
				// synced by the rotation's close.)
				if err := s.wal.fsync(); err == nil {
					s.advanceAckedLocked(s.seq)
				}
			}
			s.mu.Unlock()
		}
	}
}

// Close stops background work, takes a final snapshot (unless
// NoSnapshotOnClose — the graceful-shutdown snapshot makes the next Open
// a pure snapshot load), and closes the WAL. The corpus stays readable
// but further mutations fail with a persist error.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		// Another goroutine is (or was) closing: wait for it to finish so
		// a nil return always means the final snapshot was attempted and
		// the WAL is closed — callers may delete or re-open the directory
		// the moment Close returns.
		<-s.closeResult
		return s.closeErr
	}
	s.closing = true
	s.mu.Unlock()

	s.closeCancel()
	close(s.done)
	s.wg.Wait()

	var snapErr error
	if !s.opts.NoSnapshotOnClose {
		snapErr = s.Snapshot()
	}

	s.mu.Lock()
	s.closed = true
	w := s.wal
	// Wake blocked tail readers (long-polling followers) so they observe
	// closed immediately instead of sleeping out their wait timer and
	// stalling server shutdown past the drain window.
	close(s.tailWake)
	s.tailWake = make(chan struct{})
	s.mu.Unlock()
	closeErr := w.close()
	if snapErr != nil {
		s.closeErr = snapErr
	} else {
		s.closeErr = closeErr
	}
	close(s.closeResult)
	return s.closeErr
}
