package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/corpus"
	"sbmlcompose/internal/sbml"
)

// This file is the crash-recovery property harness of the issue: build a
// randomized add/remove workload through a real store, then simulate a
// crash at EVERY byte offset inside the final WAL record (and flip bytes
// for the CRC path) and assert the recovered corpus equals the corpus of
// the prefix workload — ids, full Search rankings with exact scores, and
// never anything mis-applied.

// crashModel is deliberately minimal — each byte of its serialized form
// becomes one truncation point, i.e. one full recovery, in the sweep.
func crashModel(i int) *sbml.Model {
	return biomodels.Generate(biomodels.Config{
		ID:             fmt.Sprintf("c%02d", i),
		Nodes:          3,
		Edges:          4,
		Seed:           int64(300 + 7*i),
		VocabularySize: 20,
		Decorate:       true,
	})
}

// crashWorkload is one recorded mutation.
type crashWorkload struct {
	remove bool
	m      *sbml.Model // add payload
	id     string      // remove target
}

// buildCrashDir runs the workload through a store (fsync off — the files
// are read back immediately) and returns the WAL bytes plus the byte
// offset where each record's frame starts, aligned with the workload
// slice (offsets[i] is where workload i's record begins).
func buildCrashDir(t *testing.T, workload []crashWorkload) (walBytes []byte, offsets []int64) {
	t.Helper()
	dir := t.TempDir()
	opts := testOptions()
	opts.Fsync = FsyncNever
	opts.NoSnapshotOnClose = true
	opts.CompactBytes = -1 // the harness needs every record to stay in the tail
	s := mustOpen(t, dir, opts)
	segPath := segmentName(dir, 1)
	for _, step := range workload {
		fi, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, fi.Size())
		if step.remove {
			mustRemove(t, s.Corpus(), step.id)
		} else {
			mustAdd(t, s.Corpus(), step.m)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	return walBytes, offsets
}

// prefixCorpus replays workload[:n] into a plain in-memory corpus.
func prefixCorpus(t *testing.T, workload []crashWorkload, n int) *corpus.Corpus {
	t.Helper()
	c := corpus.New(testOptions().Corpus)
	for _, step := range workload[:n] {
		if step.remove {
			mustRemove(t, c, step.id)
		} else {
			mustAdd(t, c, step.m)
		}
	}
	return c
}

// openTruncated writes the given WAL bytes into a fresh directory and
// opens a store on it, returning the recovered store.
func openTruncated(t *testing.T, walBytes []byte) *Store {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(segmentName(dir, 1), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Fsync = FsyncNever
	opts.NoSnapshotOnClose = true
	return mustOpen(t, dir, opts)
}

// expectedState is a corpus's precomputed observable state: sorted ids
// and the full Search ranking (exact scores, evidence, order) for the
// probe query. Precomputing it once per prefix keeps the per-truncation
// cost to one recovery plus one search.
type expectedState struct {
	ids  []string
	hits []corpus.Hit
}

func stateOf(t *testing.T, c *corpus.Corpus, query *sbml.Model) expectedState {
	t.Helper()
	hits, err := c.Search(query, corpus.SearchOptions{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	return expectedState{ids: c.IDs(), hits: hits}
}

// assertRecoveredEqualsPrefix checks ids and full Search rankings against
// the prefix corpus's precomputed state.
func assertRecoveredEqualsPrefix(t *testing.T, s *Store, want expectedState, query *sbml.Model, ctx string) {
	t.Helper()
	if g := s.Corpus().IDs(); !reflect.DeepEqual(g, want.ids) {
		t.Fatalf("%s: recovered IDs %v, want %v", ctx, g, want.ids)
	}
	gh, err := s.Corpus().Search(query, corpus.SearchOptions{TopK: -1})
	if err != nil {
		t.Fatalf("%s: recovered Search: %v", ctx, err)
	}
	if !reflect.DeepEqual(gh, want.hits) {
		t.Fatalf("%s: Search diverges:\n got %+v\nwant %+v", ctx, gh, want.hits)
	}
}

// makeWorkload builds a seeded random interleaving of adds and removes
// (removes always target a currently-present model), ending with the
// given final operation kind.
func makeWorkload(t *testing.T, seed int64, steps int, endWithRemove bool) []crashWorkload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var w []crashWorkload
	var present []string
	next := 0
	add := func() {
		// Tiny models keep the final-record byte sweep tractable: every
		// truncation offset costs one full recovery.
		m := crashModel(next)
		next++
		w = append(w, crashWorkload{m: m})
		present = append(present, m.ID)
	}
	remove := func() {
		i := rng.Intn(len(present))
		w = append(w, crashWorkload{remove: true, id: present[i]})
		present = append(present[:i], present[i+1:]...)
	}
	for len(w) < steps-1 {
		if len(present) > 1 && rng.Float64() < 0.3 {
			remove()
		} else {
			add()
		}
	}
	if endWithRemove {
		remove()
	} else {
		add()
	}
	return w
}

// runCrashSweep truncates the WAL at every byte offset within the final
// record and asserts prefix equality after every recovery; it then flips
// every byte of the final record's frame one at a time (CRC path) and
// asserts the record is dropped, never mis-applied.
func runCrashSweep(t *testing.T, workload []crashWorkload) {
	walBytes, offsets := buildCrashDir(t, workload)
	last := len(workload) - 1
	start, end := offsets[last], int64(len(walBytes))
	if end <= start {
		t.Fatalf("final record is empty: offsets %v, wal %d bytes", offsets, end)
	}
	query := crashModel(0) // probe query; it need not itself be stored
	prefix := stateOf(t, prefixCorpus(t, workload, last), query)
	full := stateOf(t, prefixCorpus(t, workload, len(workload)), query)

	// Sanity: the untouched WAL recovers the full workload.
	s := openTruncated(t, walBytes)
	assertRecoveredEqualsPrefix(t, s, full, query, "untruncated")
	if st := s.Stats(); st.TornTail {
		t.Fatalf("clean WAL reported torn tail: %+v", st)
	}
	s.Close()

	// Torn-tail sweep: every truncation point inside the final record
	// (sampled under -short; CI runs the full sweep).
	stride := int64(1)
	if testing.Short() {
		stride = 17
	}
	for cut := start; cut < end; cut += stride {
		s := openTruncated(t, walBytes[:cut])
		st := s.Stats()
		if cut == start {
			// Truncation exactly at the frame boundary is a clean log of
			// the prefix, not a torn tail.
			if st.TornTail || st.DroppedBytes != 0 {
				t.Fatalf("cut@%d: boundary truncation reported torn tail: %+v", cut, st)
			}
		} else if !st.TornTail || st.DroppedBytes != cut-start {
			t.Fatalf("cut@%d: stats %+v, want torn tail with %d dropped bytes", cut, st, cut-start)
		}
		if st.WALRecords != last {
			t.Fatalf("cut@%d: replayed %d records, want %d", cut, st.WALRecords, last)
		}
		assertRecoveredEqualsPrefix(t, s, prefix, query, "cut@"+itoa(cut))
		// The recovered store's WAL was repaired: appending must work and
		// the result must recover again (the log stayed well-formed).
		// Sampled — it compiles a fresh model per check.
		if (cut-start)%16 == 0 {
			extra := crashModel(97)
			mustAdd(t, s.Corpus(), extra)
			if ok, err := s.Corpus().Remove(extra.ID); err != nil || !ok {
				t.Fatalf("cut@%d: append after repair: ok=%v err=%v", cut, ok, err)
			}
		}
		s.Close()
	}

	// Corruption sweep (the CRC path): flip single bytes of the final
	// record — all eight frame-header bytes (length and CRC fields),
	// plus the payload sampled densely and its first and last byte. The
	// record must be dropped — recovery equals the prefix — never
	// mis-applied, whether the flip breaks the length bound or the
	// checksum.
	flips := []int64{end - 1}
	for pos := start; pos < start+walFrameLen && pos < end; pos++ {
		flips = append(flips, pos)
	}
	for pos := start + walFrameLen; pos < end-1; pos += 23 {
		flips = append(flips, pos)
	}
	for _, pos := range flips {
		mut := append([]byte(nil), walBytes...)
		mut[pos] ^= 0x5A
		s := openTruncated(t, mut)
		st := s.Stats()
		if !st.TornTail {
			t.Fatalf("flip@%d: corruption not detected: %+v", pos, st)
		}
		assertRecoveredEqualsPrefix(t, s, prefix, query, "flip@"+itoa(pos))
		s.Close()
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func TestCrashRecoveryFinalAddRecord(t *testing.T) {
	// Ends with an add: the final record carries a full SBML blob, so the
	// sweep covers truncation inside frame header, ids and model bytes.
	runCrashSweep(t, makeWorkload(t, 1, 8, false))
}

func TestCrashRecoveryFinalRemoveRecord(t *testing.T) {
	// Ends with a remove: a short record whose loss must resurrect the
	// removed model exactly as the prefix corpus has it.
	runCrashSweep(t, makeWorkload(t, 2, 9, true))
}

// TestFsyncFailureRollsBackRecord injects an fsync error into the
// FsyncAlways append path: the add must fail, and — because the rollback
// truncation is itself synced — the record must be durably gone, so a
// crash-and-reopen recovers exactly the prefix and never resurrects a
// write its caller was told failed.
func TestFsyncFailureRollsBackRecord(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions() // FsyncAlways default
	opts.NoSnapshotOnClose = true
	s := mustOpen(t, dir, opts)
	mustAdd(t, s.Corpus(), crashModel(0))

	injected := fmt.Errorf("injected append fsync failure")
	s.mu.Lock()
	calls := 0
	s.wal.syncHook = func(f *os.File) error {
		calls++
		if calls == 1 {
			return injected // the append's own sync; the rollback sync succeeds
		}
		return f.Sync()
	}
	s.mu.Unlock()

	if _, err := s.Corpus().Add(crashModel(1)); err == nil {
		t.Fatal("add under failing fsync succeeded")
	}
	if calls < 2 {
		t.Fatalf("rollback did not sync its truncation (%d sync calls)", calls)
	}
	if got := s.Corpus().Len(); got != 1 {
		t.Fatalf("corpus len after failed add = %d, want 1", got)
	}
	// The writer repaired itself: later appends work and recovery sees
	// the prefix plus the later add, never the failed record.
	mustAdd(t, s.Corpus(), crashModel(2))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, opts)
	want := []string{crashModel(0).ID, crashModel(2).ID}
	if got := s2.Corpus().IDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered ids %v, want %v", got, want)
	}
	if st := s2.Stats(); st.TornTail {
		t.Fatalf("rolled-back log reported torn tail: %+v", st)
	}
	s2.Close()
}

// TestFsyncFailureWithFailedRollbackWedges fails both the append fsync
// and the rollback's confirming sync: the writer must wedge, and every
// later append must fail fast — acknowledging records behind an
// unconfirmed tail would lose them all at the next torn-tail repair.
func TestFsyncFailureWithFailedRollbackWedges(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	mustAdd(t, s.Corpus(), crashModel(0))
	injected := fmt.Errorf("injected persistent sync failure")
	s.mu.Lock()
	s.wal.syncHook = func(*os.File) error { return injected }
	s.mu.Unlock()

	if _, err := s.Corpus().Add(crashModel(1)); err == nil {
		t.Fatal("add under failing fsync succeeded")
	}
	_, err := s.Corpus().Add(crashModel(2))
	if err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("add after failed rollback: err = %v, want wedged fast-fail", err)
	}
	if got := s.Corpus().Len(); got != 1 {
		t.Fatalf("corpus len after wedge = %d, want 1", got)
	}
	s.mu.Lock()
	s.wal.syncHook = nil
	s.mu.Unlock()
}

func TestCrashRecoveryTornSnapshotTempIgnored(t *testing.T) {
	// A crash during snapshot write leaves a corpus.snap.tmp* file; Open
	// must ignore it and recover from the WAL (plus any previous
	// snapshot), and the next snapshot must still succeed.
	dir := t.TempDir()
	opts := testOptions()
	opts.Fsync = FsyncNever
	opts.NoSnapshotOnClose = true
	s := mustOpen(t, dir, opts)
	var adds []*sbml.Model
	for i := 0; i < 5; i++ {
		m := testModel(i)
		adds = append(adds, m)
		mustAdd(t, s.Corpus(), m)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName+".tmp123"), []byte("partial snapshot garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, opts)
	if got := s2.Corpus().Len(); got != 5 {
		t.Fatalf("recovered %d models, want 5", got)
	}
	if err := s2.Snapshot(); err != nil {
		t.Fatalf("snapshot after torn temp file: %v", err)
	}
	s2.Close()
}
