package store

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Replication identity: a cluster ID plus a promotion epoch, persisted
// next to the WAL. Sequence numbers alone cannot tell two histories
// apart — a follower pointed at an unrelated primary whose seqs happen
// to overlap would silently merge foreign records into its log, and a
// follower that survived a failover could be re-attached to the stale
// pre-failover primary and apply records the promoted line has already
// diverged from. The identity closes both holes:
//
//   - ClusterID names the replicated history. The first primary mints
//     it (lazily, when it first serves the feed); every follower adopts
//     it on first contact and thereafter refuses a primary carrying a
//     different one (ErrClusterMismatch). Promotion keeps the ID, so
//     re-pointing followers at a promoted sibling still matches.
//   - Epoch counts promotions within the cluster. Each Promote bumps
//     it durably; followers track the highest epoch they have seen and
//     refuse a primary announcing an older one (ErrStaleEpoch) — the
//     signature of the dead primary coming back from before the
//     failover.
//
// Both checks run against the feed's response headers before any frame
// or snapshot image is applied, so a mismatched primary can never
// contribute a single record.

// replIdentityFile is the identity's file name inside the store dir.
const replIdentityFile = "replication.json"

// ErrClusterMismatch reports a replication peer from a different
// cluster: its history is unrelated and must not be merged.
var ErrClusterMismatch = errors.New("replication cluster mismatch")

// ErrStaleEpoch reports a primary announcing an older promotion epoch
// than this store has already observed — a pre-failover primary that
// came back. Its unreplicated tail diverges from the promoted line.
var ErrStaleEpoch = errors.New("replication primary epoch is stale")

// replIdentity is the persisted identity record.
type replIdentity struct {
	ClusterID string `json:"cluster_id"`
	Epoch     uint64 `json:"epoch"`
}

// loadReplIdentity reads the identity file at Open. A missing file is a
// store that never replicated (zero identity); a corrupt one is a hard
// error, like a corrupt snapshot — guessing would defeat the check.
func loadReplIdentity(dir string) (replIdentity, error) {
	var ident replIdentity
	data, err := os.ReadFile(filepath.Join(dir, replIdentityFile))
	if errors.Is(err, fs.ErrNotExist) {
		return ident, nil
	}
	if err != nil {
		return ident, fmt.Errorf("store: read %s: %w", replIdentityFile, err)
	}
	if err := json.Unmarshal(data, &ident); err != nil {
		return ident, fmt.Errorf("store: corrupt %s: %w", replIdentityFile, err)
	}
	if ident.ClusterID == "" || ident.Epoch == 0 {
		return ident, fmt.Errorf("store: corrupt %s: missing cluster id or epoch", replIdentityFile)
	}
	return ident, nil
}

// persistIdentityLocked writes the identity durably (temp + rename +
// dir sync, like every other store metadata write). Caller holds identMu.
func (s *Store) persistIdentityLocked() error {
	data, err := json.Marshal(s.ident)
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, replIdentityFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err == nil {
		err = f.Sync()
		f.Close()
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(s.dir)
	return nil
}

// ensureIdentity returns the store's identity, minting one (epoch 1) on
// first use — the primary side's lazy initialization, called when the
// feed is first served.
func (s *Store) ensureIdentity() (replIdentity, error) {
	s.identMu.Lock()
	defer s.identMu.Unlock()
	if s.ident.ClusterID != "" {
		return s.ident, nil
	}
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return replIdentity{}, fmt.Errorf("store: mint cluster id: %w", err)
	}
	s.ident = replIdentity{ClusterID: hex.EncodeToString(b[:]), Epoch: 1}
	if err := s.persistIdentityLocked(); err != nil {
		s.ident = replIdentity{}
		return replIdentity{}, fmt.Errorf("store: persist cluster id: %w", err)
	}
	return s.ident, nil
}

// adoptIdentity is the follower side: verify a primary's announced
// identity against the local one before applying anything from it. A
// store with no identity adopts the primary's (first contact); a known
// cluster must match exactly; an epoch ahead of ours is adopted (we
// learned of a promotion), an epoch behind ours is refused.
func (s *Store) adoptIdentity(clusterID string, epoch uint64) error {
	if clusterID == "" || epoch == 0 {
		return fmt.Errorf("store: primary announced no replication identity (cluster %q epoch %d)", clusterID, epoch)
	}
	s.identMu.Lock()
	defer s.identMu.Unlock()
	switch {
	case s.ident.ClusterID == "":
		s.ident = replIdentity{ClusterID: clusterID, Epoch: epoch}
		if err := s.persistIdentityLocked(); err != nil {
			s.ident = replIdentity{}
			return fmt.Errorf("store: persist adopted identity: %w", err)
		}
	case s.ident.ClusterID != clusterID:
		return fmt.Errorf("%w: primary is cluster %s, this store follows cluster %s",
			ErrClusterMismatch, clusterID, s.ident.ClusterID)
	case epoch < s.ident.Epoch:
		return fmt.Errorf("%w: primary announces epoch %d, this store has observed epoch %d",
			ErrStaleEpoch, epoch, s.ident.Epoch)
	case epoch > s.ident.Epoch:
		s.ident.Epoch = epoch
		if err := s.persistIdentityLocked(); err != nil {
			s.ident.Epoch = epoch // keep the higher epoch in memory regardless
			return fmt.Errorf("store: persist epoch %d: %w", epoch, err)
		}
	}
	return nil
}

// bumpEpoch durably increments the promotion epoch — called by Promote,
// so the promoted line outranks the dead primary's. A store that never
// contacted a primary mints a fresh identity first.
func (s *Store) bumpEpoch() (replIdentity, error) {
	s.identMu.Lock()
	defer s.identMu.Unlock()
	if s.ident.ClusterID == "" {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			return replIdentity{}, fmt.Errorf("store: mint cluster id: %w", err)
		}
		s.ident = replIdentity{ClusterID: hex.EncodeToString(b[:]), Epoch: 0}
	}
	s.ident.Epoch++
	if err := s.persistIdentityLocked(); err != nil {
		return s.ident, fmt.Errorf("store: persist promotion epoch %d: %w", s.ident.Epoch, err)
	}
	return s.ident, nil
}

// ReplicationIdentity returns the store's cluster ID and promotion
// epoch; both are zero until the store first serves or follows a feed.
func (s *Store) ReplicationIdentity() (clusterID string, epoch uint64) {
	s.identMu.Lock()
	defer s.identMu.Unlock()
	return s.ident.ClusterID, s.ident.Epoch
}
