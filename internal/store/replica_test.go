package store

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/corpus"
	"sbmlcompose/internal/sbml"
)

// Fault-injection sweep for the follower: cut the stream at every frame
// boundary (and inside frames), flip bytes, crash the follower
// mid-apply, kill the primary and promote — after every fault the
// follower must converge to a state byte-identical to the primary's
// acknowledged log, and a corrupt record must never be applied.

// newReplicationPrimary opens a primary store and serves its replication
// endpoints over httptest, so followers exercise the real HTTP protocol.
func newReplicationPrimary(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	s := mustOpen(t, t.TempDir(), testOptions())
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replicate", s.ServeReplicate)
	mux.HandleFunc("GET /v1/replicate/snapshot", s.ServeReplicateSnapshot)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// fastReplicaOptions keeps test turnaround tight: short polls, short
// backoff.
func fastReplicaOptions(primaryURL string) ReplicaOptions {
	return ReplicaOptions{
		PrimaryURL: primaryURL,
		PollWait:   200 * time.Millisecond,
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
	}
}

// harnessReplica wires a Replica around a store without starting the
// network loop, so tests can drive applyFrames deterministically.
func harnessReplica(t *testing.T, s *Store) *Replica {
	t.Helper()
	opts, err := ReplicaOptions{PrimaryURL: "http://unused.invalid"}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return &Replica{s: s, opts: opts, st: ReplicaStatus{Role: "follower"}}
}

// frameBoundaries returns every frame boundary offset in a feed buffer,
// including 0 and len(frames).
func frameBoundaries(t *testing.T, frames []byte) []int64 {
	t.Helper()
	bounds := []int64{0}
	off := int64(0)
	for off < int64(len(frames)) {
		_, end, ok := nextFrame(frames, off)
		if !ok {
			t.Fatalf("feed buffer torn at %d", off)
		}
		bounds = append(bounds, end)
		off = end
	}
	return bounds
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// replicationWorkload populates a store with adds and a remove and
// returns probe models for ranking comparisons.
func replicationWorkload(t *testing.T, s *Store, n int) []*sbml.Model {
	t.Helper()
	var probes []*sbml.Model
	for i := 0; i < n; i++ {
		m := testModel(i)
		mustAdd(t, s.Corpus(), m)
		if i < 2 {
			probes = append(probes, m)
		}
	}
	mustRemove(t, s.Corpus(), testModel(n/2).ID)
	return probes
}

// TestReplicaApplyCutAtEveryFrameBoundary: for every prefix of the feed
// — cut exactly on a boundary and cut mid-frame — the follower applies
// precisely the intact records, reports the damage for torn cuts, and
// converges once handed the rest of the stream from its durable seq.
func TestReplicaApplyCutAtEveryFrameBoundary(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), testOptions())
	defer primary.Close()
	probes := replicationWorkload(t, primary, 5)
	tb, err := primary.ReadTail(context.Background(), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := tb.Frames
	bounds := frameBoundaries(t, frames)

	for k := 0; k < len(bounds); k++ {
		cuts := []int64{bounds[k]} // clean cut exactly on the boundary
		if k+1 < len(bounds) {
			cuts = append(cuts, bounds[k]+3) // torn cut inside frame k
		}
		for _, cut := range cuts {
			name := fmt.Sprintf("boundary%d_cut%d", k, cut)
			t.Run(name, func(t *testing.T) {
				follower := mustOpen(t, t.TempDir(), testOptions())
				defer follower.Close()
				r := harnessReplica(t, follower)

				err := r.applyFrames(frames[:cut], 0)
				torn := cut != bounds[k]
				if torn && err == nil {
					t.Fatal("mid-frame cut reported no damage")
				}
				if !torn && err != nil {
					t.Fatalf("clean boundary cut errored: %v", err)
				}
				// Exactly the k intact records are durable — never a torn one.
				if got := follower.LastSeq(); got != uint64(k) {
					t.Fatalf("after cut at %d: durable seq %d, want %d", cut, got, k)
				}
				// Re-request from the durable seq, as the pull loop does.
				if err := r.applyFrames(frames[bounds[k]:], follower.LastSeq()); err != nil {
					t.Fatalf("resume from seq %d: %v", k, err)
				}
				assertCorporaEquivalent(t, follower.Corpus(), primary.Corpus(), probes)
			})
		}
	}
}

// TestReplicaApplyRejectsBitFlips flips a byte inside every frame of the
// feed: the follower must refuse the damaged frame and everything after
// it, keep the verified prefix, and converge after a clean re-request.
// A corrupt record is never applied.
func TestReplicaApplyRejectsBitFlips(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), testOptions())
	defer primary.Close()
	probes := replicationWorkload(t, primary, 5)
	tb, err := primary.ReadTail(context.Background(), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := tb.Frames
	bounds := frameBoundaries(t, frames)

	for k := 0; k+1 < len(bounds); k++ {
		k := k
		t.Run(fmt.Sprintf("flipInFrame%d", k), func(t *testing.T) {
			follower := mustOpen(t, t.TempDir(), testOptions())
			defer follower.Close()
			r := harnessReplica(t, follower)

			corrupted := append([]byte(nil), frames...)
			mid := bounds[k] + (bounds[k+1]-bounds[k])/2
			corrupted[mid] ^= 0x20

			if err := r.applyFrames(corrupted, 0); err == nil {
				t.Fatalf("bit flip in frame %d went unnoticed", k)
			}
			// Only the frames before the flipped one were applied.
			if got := follower.LastSeq(); got != uint64(k) {
				t.Fatalf("after flip in frame %d: durable seq %d, want %d", k, got, k)
			}
			// The follower's ids are exactly the primary's first k ops' ids —
			// the corrupted record (and nothing after it) ever landed.
			wantIDs := replayIDs(t, frames[:bounds[k]])
			gotIDs := follower.Corpus().IDs()
			sort.Strings(wantIDs)
			sort.Strings(gotIDs)
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("follower holds %d ids after flip, want %d", len(gotIDs), len(wantIDs))
			}
			for i := range gotIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("follower id %q, want %q", gotIDs[i], wantIDs[i])
				}
			}
			// The clean re-request converges.
			if err := r.applyFrames(frames[bounds[k]:], follower.LastSeq()); err != nil {
				t.Fatalf("clean resume: %v", err)
			}
			assertCorporaEquivalent(t, follower.Corpus(), primary.Corpus(), probes)
		})
	}
}

// replayIDs computes the id set a clean prefix of the feed produces.
func replayIDs(t *testing.T, frames []byte) []string {
	t.Helper()
	present := map[string]bool{}
	off := int64(0)
	for off < int64(len(frames)) {
		payload, end, ok := nextFrame(frames, off)
		if !ok {
			t.Fatalf("clean prefix torn at %d", off)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if rec.op == opAdd {
			present[rec.id] = true
		} else {
			delete(present, rec.id)
		}
		off = end
	}
	ids := make([]string, 0, len(present))
	for id := range present {
		ids = append(ids, id)
	}
	return ids
}

// TestReplicaEndToEndConvergesAndFollowsLive runs the real pull loop
// against the real HTTP feed: bootstrap catch-up, then live tailing of
// writes that happen while the follower is connected.
func TestReplicaEndToEndConvergesAndFollowsLive(t *testing.T) {
	primary, ts := newReplicationPrimary(t)
	probes := replicationWorkload(t, primary, 6)

	follower := mustOpen(t, t.TempDir(), testOptions())
	defer follower.Close()
	rep, err := StartReplica(follower, fastReplicaOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	waitFor(t, 30*time.Second, "bootstrap catch-up", func() bool {
		return follower.LastSeq() == primary.LastSeq()
	})
	assertCorporaEquivalent(t, follower.Corpus(), primary.Corpus(), probes)

	// Live tailing: new writes stream to the connected follower.
	for i := 20; i < 24; i++ {
		mustAdd(t, primary.Corpus(), testModel(i))
	}
	mustRemove(t, primary.Corpus(), testModel(21).ID)
	waitFor(t, 30*time.Second, "live tail catch-up", func() bool {
		return follower.LastSeq() == primary.LastSeq()
	})
	assertCorporaEquivalent(t, follower.Corpus(), primary.Corpus(), probes)

	st := rep.Status()
	if st.Role != "follower" || !st.Connected {
		t.Fatalf("status = %+v, want connected follower", st)
	}
	if st.LagRecords != 0 {
		t.Fatalf("caught-up follower reports lag %d", st.LagRecords)
	}
}

// TestReplicaCrashMidApplyResumesFromDurableSeq: a follower that crashes
// mid-apply — its WAL ends in a torn batch tail — reopens, drops the
// torn tail, and resumes replication from its durable seq.
func TestReplicaCrashMidApplyResumesFromDurableSeq(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), testOptions())
	defer primary.Close()
	probes := replicationWorkload(t, primary, 5)
	tb, err := primary.ReadTail(context.Background(), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bounds := frameBoundaries(t, tb.Frames)
	k := 3 // records applied before the crash

	fdir := t.TempDir()
	fopts := testOptions()
	fopts.NoSnapshotOnClose = true // crash: no graceful shutdown snapshot
	follower := mustOpen(t, fdir, fopts)
	r := harnessReplica(t, follower)
	if err := r.applyFrames(tb.Frames[:bounds[k]], 0); err != nil {
		t.Fatal(err)
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash mid-batch: the next chunk's bytes were partially
	// written to the follower's own WAL when power failed.
	segs, err := filepath.Glob(filepath.Join(fdir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no follower segments: %v", err)
	}
	sort.Strings(segs)
	torn := tb.Frames[bounds[k] : bounds[k]+(bounds[k+1]-bounds[k])/2]
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen: recovery drops the torn tail; the durable seq is still k.
	reopened := mustOpen(t, fdir, fopts)
	defer reopened.Close()
	if got := reopened.LastSeq(); got != uint64(k) {
		t.Fatalf("reopened follower durable seq %d, want %d", got, k)
	}
	// The pull loop re-reads the durable seq each attempt, so resuming is
	// just another apply from LastSeq.
	r2 := harnessReplica(t, reopened)
	if err := r2.applyFrames(tb.Frames[bounds[k]:], reopened.LastSeq()); err != nil {
		t.Fatal(err)
	}
	assertCorporaEquivalent(t, reopened.Corpus(), primary.Corpus(), probes)
}

// TestReplicaCompactedHorizonResyncsFromSnapshot: a follower that starts
// below the primary's compaction horizon is answered 410, bootstraps
// from the snapshot image, then tails the remaining records.
func TestReplicaCompactedHorizonResyncsFromSnapshot(t *testing.T) {
	primary, ts := newReplicationPrimary(t)
	probes := replicationWorkload(t, primary, 6)
	if err := primary.Snapshot(); err != nil { // raises the horizon past seq 0
		t.Fatal(err)
	}
	mustAdd(t, primary.Corpus(), testModel(30))
	mustAdd(t, primary.Corpus(), testModel(31))

	follower := mustOpen(t, t.TempDir(), testOptions())
	defer follower.Close()
	rep, err := StartReplica(follower, fastReplicaOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	waitFor(t, 30*time.Second, "snapshot resync + tail", func() bool {
		return follower.LastSeq() == primary.LastSeq()
	})
	assertCorporaEquivalent(t, follower.Corpus(), primary.Corpus(), probes)
	if st := rep.Status(); st.SnapshotResyncs == 0 {
		t.Fatalf("status = %+v, want at least one snapshot resync", st)
	}
}

// TestReplicaPrimaryKillPromote: kill the primary's endpoint, verify the
// follower keeps serving reads (read-only, with status degraded), then
// promote it and verify it serves the primary's last acknowledged state
// byte-identically — and accepts writes again.
func TestReplicaPrimaryKillPromote(t *testing.T) {
	primary, ts := newReplicationPrimary(t)
	probes := replicationWorkload(t, primary, 6)

	follower := mustOpen(t, t.TempDir(), testOptions())
	defer follower.Close()
	rep, err := StartReplica(follower, fastReplicaOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	waitFor(t, 30*time.Second, "catch-up before kill", func() bool {
		return follower.LastSeq() == primary.LastSeq()
	})

	ts.Close() // the primary is gone

	// Degraded but serving: reads answer, mutations are refused, status
	// reports the disconnect.
	if res, err := follower.Corpus().Search(probes[0], corpus.SearchOptions{TopK: -1}); err != nil || len(res) == 0 {
		t.Fatalf("disconnected follower stopped serving reads: %d hits, err %v", len(res), err)
	}
	if _, err := follower.Corpus().Add(testModel(40)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower add: err = %v, want ErrReadOnly", err)
	}
	waitFor(t, 30*time.Second, "disconnect noticed", func() bool {
		st := rep.Status()
		return !st.Connected && st.LastError != ""
	})

	// Promote: the follower becomes a primary serving exactly the old
	// primary's last acknowledged state.
	rep.Promote()
	if st := rep.Status(); st.Role != "primary" {
		t.Fatalf("promoted role = %q", st.Role)
	}
	assertCorporaEquivalent(t, follower.Corpus(), primary.Corpus(), probes)
	// Writes flow again, numbered after the last applied record.
	seqBefore := follower.LastSeq()
	mustAdd(t, follower.Corpus(), testModel(41))
	if follower.LastSeq() <= seqBefore {
		t.Fatal("promoted follower's writes did not advance the log")
	}
}

// TestReplicaOversizedFrameReplicates: a single WAL frame far larger
// than the follower's MaxBatchBytes — larger, in particular, than the
// 2*MaxBatchBytes+64KiB cap an earlier revision read the body through —
// must still replicate. A cap below the largest shippable frame
// silently truncated the body, the apply saw a torn frame, and the loop
// re-requested the same seq forever: replication permanently wedged on
// one oversized model.
func TestReplicaOversizedFrameReplicates(t *testing.T) {
	primary, ts := newReplicationPrimary(t)
	big := biomodels.Generate(biomodels.Config{
		ID: "mbig", Nodes: 200, Edges: 300, Seed: 99, VocabularySize: 400, Decorate: true,
	})
	mustAdd(t, primary.Corpus(), big)
	small := testModel(1)
	mustAdd(t, primary.Corpus(), small)

	const maxBatch = 4096
	// Pin the test's premise: the big model's frame alone exceeds the old
	// revision's truncation point, so this convergence genuinely exercises
	// the protocol-maximum read cap.
	tb, err := primary.ReadTail(context.Background(), 0, maxBatch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oldCap := int64(maxBatch)*2 + (64 << 10); int64(len(tb.Frames)) <= oldCap {
		t.Fatalf("big frame is %d bytes, need > %d for this test to bite", len(tb.Frames), oldCap)
	}

	follower := mustOpen(t, t.TempDir(), testOptions())
	defer follower.Close()
	opts := fastReplicaOptions(ts.URL)
	opts.MaxBatchBytes = maxBatch
	rep, err := StartReplica(follower, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	waitFor(t, 30*time.Second, "oversized-frame catch-up", func() bool {
		return follower.LastSeq() == primary.LastSeq()
	})
	assertCorporaEquivalent(t, follower.Corpus(), primary.Corpus(), []*sbml.Model{big, small})
}

// TestReplicaRefusesForeignCluster: a follower re-pointed at an
// unrelated primary whose sequence numbers overlap must not apply a
// single record — overlapping seqs from a different history would merge
// silently otherwise.
func TestReplicaRefusesForeignCluster(t *testing.T) {
	primaryA, tsA := newReplicationPrimary(t)
	probes := replicationWorkload(t, primaryA, 4)

	follower := mustOpen(t, t.TempDir(), testOptions())
	defer follower.Close()
	rep, err := StartReplica(follower, fastReplicaOptions(tsA.URL))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "catch-up from cluster A", func() bool {
		return follower.LastSeq() == primaryA.LastSeq()
	})
	rep.Stop()

	// An unrelated primary, with more records so its feed would ship
	// frames whose seqs continue right where the follower stopped.
	primaryB, tsB := newReplicationPrimary(t)
	for i := 0; i < 10; i++ {
		mustAdd(t, primaryB.Corpus(), testModel(50+i))
	}

	seqBefore := follower.LastSeq()
	rep2, err := StartReplica(follower, fastReplicaOptions(tsB.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Stop()
	waitFor(t, 30*time.Second, "cluster mismatch surfaced", func() bool {
		return strings.Contains(rep2.Status().LastError, "cluster mismatch")
	})
	if got := follower.LastSeq(); got != seqBefore {
		t.Fatalf("foreign primary advanced the follower from seq %d to %d", seqBefore, got)
	}
	assertCorporaEquivalent(t, follower.Corpus(), primaryA.Corpus(), probes)
}

// TestReplicaRefusesStaleEpochPrimary: after a failover, a follower of
// the promoted line must refuse the dead pre-failover primary should it
// come back — same cluster, older epoch, diverged history.
func TestReplicaRefusesStaleEpochPrimary(t *testing.T) {
	primaryA, tsA := newReplicationPrimary(t)
	replicationWorkload(t, primaryA, 4)

	// F follows A, adopting A's identity at epoch 1, then is promoted —
	// which durably bumps the cluster to epoch 2.
	f := mustOpen(t, t.TempDir(), testOptions())
	defer f.Close()
	repF, err := StartReplica(f, fastReplicaOptions(tsA.URL))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "F catches up", func() bool {
		return f.LastSeq() == primaryA.LastSeq()
	})
	if err := repF.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	clusterA, _ := primaryA.ReplicationIdentity()
	if id, epoch := f.ReplicationIdentity(); id != clusterA || epoch != 2 {
		t.Fatalf("promoted identity %q/%d, want %q/2", id, epoch, clusterA)
	}

	// G follows promoted F, learning epoch 2.
	muxF := http.NewServeMux()
	muxF.HandleFunc("GET /v1/replicate", f.ServeReplicate)
	muxF.HandleFunc("GET /v1/replicate/snapshot", f.ServeReplicateSnapshot)
	tsF := httptest.NewServer(muxF)
	defer tsF.Close()
	g := mustOpen(t, t.TempDir(), testOptions())
	defer g.Close()
	repG, err := StartReplica(g, fastReplicaOptions(tsF.URL))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "G catches up from F", func() bool {
		return g.LastSeq() == f.LastSeq()
	})
	repG.Stop()
	if _, epoch := g.ReplicationIdentity(); epoch != 2 {
		t.Fatalf("G observed epoch %d, want 2", epoch)
	}

	// The dead primary A comes back (still epoch 1) with fresh writes; G
	// pointed at it must refuse every frame.
	mustAdd(t, primaryA.Corpus(), testModel(70))
	seqBefore := g.LastSeq()
	repG2, err := StartReplica(g, fastReplicaOptions(tsA.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer repG2.Stop()
	waitFor(t, 30*time.Second, "stale epoch surfaced", func() bool {
		return strings.Contains(repG2.Status().LastError, "epoch")
	})
	if got := g.LastSeq(); got != seqBefore {
		t.Fatalf("stale primary advanced G from seq %d to %d", seqBefore, got)
	}
}

// TestReplicaBackoffAndReconnectCount: a primary that fails its first
// few feed requests forces the backoff path; once it recovers, the
// follower reconnects, counts the transition, and converges.
func TestReplicaBackoffAndReconnectCount(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), testOptions())
	defer primary.Close()
	probes := replicationWorkload(t, primary, 4)

	var failures int
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replicate", func(w http.ResponseWriter, r *http.Request) {
		if failures < 3 {
			failures++
			http.Error(w, "transient outage", http.StatusServiceUnavailable)
			return
		}
		primary.ServeReplicate(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	follower := mustOpen(t, t.TempDir(), testOptions())
	defer follower.Close()
	rep, err := StartReplica(follower, fastReplicaOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	waitFor(t, 30*time.Second, "convergence after outage", func() bool {
		return follower.LastSeq() == primary.LastSeq()
	})
	assertCorporaEquivalent(t, follower.Corpus(), primary.Corpus(), probes)
	st := rep.Status()
	if st.Reconnects == 0 {
		t.Fatalf("status = %+v, want a counted reconnect", st)
	}
	if failures < 3 {
		t.Fatalf("outage handler only saw %d requests", failures)
	}
}
