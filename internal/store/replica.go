package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sbmlcompose/internal/corpus"
)

// This file implements the follower side of replication: a Replica owns
// a read-only Store and keeps it converged with a primary by pulling the
// WAL feed (tail.go), verifying every frame with the WAL's own CRC and
// decode checks, and applying verified chunks through the same ordered
// parse+compile pool recovery uses. Applied records keep the primary's
// sequence numbers and land in the follower's own WAL through one
// AppendBatch per chunk (one fsync per received batch), so the
// follower's durable log is at all times a prefix of the primary's
// acknowledged log — which is exactly what makes promotion safe and a
// crashed follower's restart resume from its own durable seq.
//
// Failure handling is the design center:
//
//   - A connection cut mid-stream leaves a verified prefix, which is
//     applied; the next request resumes from the new durable seq.
//   - A corrupt frame (bit flip anywhere en route) fails its CRC or
//     decode; the prefix before it is applied, the rest of the chunk is
//     discarded, and the follower reconnects and re-requests. A corrupt
//     record is never applied.
//   - A primary that compacted past the follower's position answers 410
//     "compacted"; the follower fetches a full snapshot image and
//     resynchronizes through ApplySnapshotImage.
//   - An unreachable primary costs capped exponential backoff with
//     jitter; the follower keeps serving reads the whole time, with its
//     lag observable through Status.

// ReplicaOptions configures StartReplica.
type ReplicaOptions struct {
	// PrimaryURL is the primary server's base URL (e.g.
	// "http://10.0.0.1:8080"); the replica appends /v1/replicate paths.
	PrimaryURL string
	// Client is the HTTP client used for feed requests; nil means a
	// default client (no global timeout — long-polls need to linger;
	// every request still carries a per-attempt deadline).
	Client *http.Client
	// MaxBatchBytes caps one fetched chunk; 0 defaults to 1 MiB.
	MaxBatchBytes int
	// PollWait is the long-poll wait requested at the tip; 0 defaults to
	// 10s.
	PollWait time.Duration
	// MinBackoff and MaxBackoff bound the capped exponential backoff
	// (with jitter) between failed attempts; they default to 100ms and 5s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Metrics, when non-nil, receives replication instrumentation
	// (metrics.go); nil costs nothing.
	Metrics *ReplicaMetrics
}

func (o ReplicaOptions) withDefaults() (ReplicaOptions, error) {
	if o.PrimaryURL == "" {
		return o, fmt.Errorf("store: replica requires a primary URL")
	}
	o.PrimaryURL = strings.TrimRight(o.PrimaryURL, "/")
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 1 << 20
	}
	if o.PollWait <= 0 {
		o.PollWait = 10 * time.Second
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = o.MinBackoff
	}
	return o, nil
}

// ReplicaStatus is a point-in-time view of a replica for health
// reporting.
type ReplicaStatus struct {
	// Role is "follower" until Promote, then "primary".
	Role string `json:"role"`
	// PrimaryURL is the primary this replica follows (or followed).
	PrimaryURL string `json:"primary_url"`
	// LastAppliedSeq is the highest primary sequence number durably
	// applied locally; PrimaryAckedSeq is the primary's acknowledged
	// watermark as of the last successful contact, and LagRecords their
	// difference — the staleness bound for reads served right now.
	LastAppliedSeq  uint64 `json:"last_applied_seq"`
	PrimaryAckedSeq uint64 `json:"primary_acked_seq"`
	LagRecords      uint64 `json:"replication_lag_records"`
	// LagBytes is the primary's estimate (shipped with each feed
	// response) of acknowledged WAL bytes not yet delivered to this
	// follower — an upper bound: it can include a not-yet-acknowledged
	// group-commit tail, and like PrimaryAckedSeq it is last-contact
	// data, frozen while the primary is unreachable. 0 when caught up.
	LagBytes uint64 `json:"replication_lag_bytes"`
	// SecondsSinceLastApply is the age of the last applied record batch
	// (or of replica start, before any apply); SecondsSinceLastContact
	// the age of the last successful primary contact. Unlike the lag
	// fields these keep growing while the primary is unreachable, which
	// makes them the staleness signal to alert on — read together with
	// LagRecords, since an idle-but-connected feed also ages the apply
	// clock.
	SecondsSinceLastApply   float64 `json:"seconds_since_last_apply"`
	SecondsSinceLastContact float64 `json:"seconds_since_last_contact"`
	// Connected reports that the most recent feed request succeeded;
	// Reconnects counts how many times contact was re-established after
	// at least one failure.
	Connected  bool   `json:"connected"`
	Reconnects uint64 `json:"reconnects"`
	// LastError is the most recent fetch or apply failure (empty when
	// healthy); LastContact is when the primary last answered.
	LastError   string    `json:"last_error,omitempty"`
	LastContact time.Time `json:"last_contact,omitempty"`
	// SnapshotResyncs counts bootstraps through a full snapshot image
	// (the compacted-horizon path).
	SnapshotResyncs uint64 `json:"snapshot_resyncs,omitempty"`
	// ClusterID and Epoch are the replication identity adopted from the
	// primary (identity.go): the cluster whose history this store holds
	// and the highest promotion epoch it has observed. Empty/zero until
	// first contact.
	ClusterID string `json:"cluster_id,omitempty"`
	Epoch     uint64 `json:"epoch,omitempty"`
}

// Replica keeps a read-only Store converged with a primary's WAL feed.
// Create one with StartReplica; Stop halts replication (the store stays
// read-only), Promote halts it and lifts the read-only gate.
type Replica struct {
	s      *Store
	opts   ReplicaOptions
	cancel context.CancelFunc
	done   chan struct{}

	mu          sync.Mutex
	st          ReplicaStatus
	failedSince bool // a failure happened since the last success
	stopped     bool
	// lastApply is when the last chunk (or snapshot image) landed;
	// initialized to the start time so the staleness clock ticks from
	// the replica's birth even before first contact.
	lastApply time.Time
}

// errFeedCompacted is the fetch loop's internal signal that the primary
// answered 410: resync from a snapshot image.
var errFeedCompacted = errors.New("feed compacted")

// StartReplica puts s into read-only follower mode and starts pulling
// primary's replication feed. s must not have local writers: every
// mutation through its corpus now fails with ErrReadOnly until Promote.
// The returned Replica's Status feeds /healthz; Stop or Promote must be
// called before closing the store.
func StartReplica(s *Store, opts ReplicaOptions) (*Replica, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s.readOnly.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{
		s:      s,
		opts:   opts,
		cancel: cancel,
		done:   make(chan struct{}),
		st: ReplicaStatus{
			Role:            "follower",
			PrimaryURL:      opts.PrimaryURL,
			LastAppliedSeq:  s.LastSeq(),
			PrimaryAckedSeq: s.LastSeq(),
		},
		lastApply: time.Now(),
	}
	go r.run(ctx)
	return r, nil
}

// Status returns the replica's current health view.
func (r *Replica) Status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.st
	st.LastAppliedSeq = r.s.LastSeq()
	st.ClusterID, st.Epoch = r.s.ReplicationIdentity()
	if st.PrimaryAckedSeq > st.LastAppliedSeq {
		st.LagRecords = st.PrimaryAckedSeq - st.LastAppliedSeq
	} else {
		st.LagRecords = 0
		st.LagBytes = 0
	}
	st.SecondsSinceLastApply = time.Since(r.lastApply).Seconds()
	contact := r.lastApply
	if !r.st.LastContact.IsZero() {
		contact = r.st.LastContact
	}
	st.SecondsSinceLastContact = time.Since(contact).Seconds()
	return st
}

// Stop halts replication and waits for the puller to exit. The store
// remains read-only: a stopped follower serves stale reads but accepts
// no writes. Safe to call more than once.
func (r *Replica) Stop() {
	r.mu.Lock()
	already := r.stopped
	r.stopped = true
	r.mu.Unlock()
	r.cancel()
	<-r.done
	if already {
		return
	}
}

// Promote stops replication and lifts the read-only gate: the store
// becomes a primary, accepting local mutations numbered after the last
// applied record. Because the follower's log is a prefix of the old
// primary's acknowledged log, a promoted follower serves exactly the
// primary's last acknowledged state.
//
// Promotion durably increments the cluster's epoch, so followers that
// re-attach here outrank — and will refuse — the dead primary should it
// come back with its unreplicated tail. Promotion itself always
// succeeds; a non-nil error reports that the epoch bump could not be
// persisted (the stale-primary guard is weakened until the disk heals).
func (r *Replica) Promote() error {
	r.Stop()
	_, err := r.s.bumpEpoch()
	r.s.readOnly.Store(false)
	r.mu.Lock()
	r.st.Role = "primary"
	r.st.Connected = false
	r.mu.Unlock()
	return err
}

// run is the pull loop: fetch, verify, apply, repeat; back off on any
// failure, resync from a snapshot when the primary's horizon passed us.
func (r *Replica) run(ctx context.Context) {
	defer close(r.done)
	backoff := r.opts.MinBackoff
	for ctx.Err() == nil {
		err := r.pullOnce(ctx)
		if err == nil {
			backoff = r.opts.MinBackoff
			continue
		}
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, errFeedCompacted) {
			if rerr := r.resync(ctx); rerr == nil {
				backoff = r.opts.MinBackoff
				continue
			} else if ctx.Err() == nil {
				r.noteFailure(rerr)
			}
		} else {
			r.noteFailure(err)
		}
		// Capped exponential backoff with jitter: sleep a uniformly random
		// duration in [backoff/2, backoff), so a fleet of followers that
		// lost the same primary does not reconnect in lockstep.
		d := backoff/2 + rand.N(backoff/2+1)
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
		if backoff *= 2; backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
	}
}

// noteFailure records a failed attempt in the status.
func (r *Replica) noteFailure(err error) {
	r.mu.Lock()
	r.st.Connected = false
	r.st.LastError = err.Error()
	r.failedSince = true
	r.mu.Unlock()
}

// noteSuccess records a successful contact: the primary's acknowledged
// watermark and its estimate of the bytes still owed to this follower.
func (r *Replica) noteSuccess(acked, lagBytes uint64) {
	r.mu.Lock()
	r.st.Connected = true
	r.st.LastError = ""
	r.st.LastContact = time.Now()
	if acked > r.st.PrimaryAckedSeq {
		r.st.PrimaryAckedSeq = acked
	}
	r.st.LagBytes = lagBytes
	if r.failedSince {
		r.failedSince = false
		r.st.Reconnects++
		if m := r.opts.Metrics; m != nil {
			m.Reconnects.Inc()
		}
	}
	r.mu.Unlock()
}

// pullOnce performs one feed request from the store's durable position
// and applies what it can. The durable seq is re-read every attempt —
// never cached across failures — so a crash-recovered or partially
// applied store always resumes from truth.
func (r *Replica) pullOnce(ctx context.Context) error {
	from := r.s.LastSeq()
	fetchStart := time.Now()
	waitMS := int(r.opts.PollWait / time.Millisecond)
	url := fmt.Sprintf("%s/v1/replicate?from=%d&max_bytes=%d&wait_ms=%d",
		r.opts.PrimaryURL, from, r.opts.MaxBatchBytes, waitMS)
	// The attempt deadline covers the long-poll plus margin, so a dead
	// TCP connection cannot wedge the loop past one cycle.
	rctx, rcancel := context.WithTimeout(ctx, r.opts.PollWait+15*time.Second)
	defer rcancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return fmt.Errorf("replicate fetch: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return errFeedCompacted
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("replicate fetch: primary answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	// Verify the primary's identity before applying a single frame: an
	// unrelated cluster or a stale pre-failover epoch must not contribute
	// records, however plausible its sequence numbers look.
	if err := r.verifyIdentity(resp.Header); err != nil {
		return err
	}
	acked, _ := strconv.ParseUint(resp.Header.Get(hdrReplicationAcked), 10, 64)
	lagBytes, _ := strconv.ParseUint(resp.Header.Get(hdrReplicationLagBytes), 10, 64)
	// Size the read cap to the protocol's true maximum — one chunk is at
	// most max_bytes of frames plus a single frame, and a frame payload is
	// bounded by walMaxRecord — never to a guess. A cap below the largest
	// shippable frame would truncate an oversized model's body silently
	// (ReadAll through a LimitReader returns nil error at the limit), and
	// the apply would see a torn frame, ship nothing, and re-request the
	// same seq forever: replication permanently wedged on one record.
	limit := int64(r.opts.MaxBatchBytes) + walMaxRecord + walFrameLen
	frames, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		// A cut mid-body still delivered a (possibly empty) prefix; verify
		// and apply what survived before reporting the cut. (The feed's
		// explicit Content-Length makes the cut visible here as
		// io.ErrUnexpectedEOF rather than a silently short body.)
		if aerr := r.applyFrames(frames, from); aerr != nil {
			return fmt.Errorf("replicate fetch: %v (and apply of prefix: %w)", err, aerr)
		}
		return fmt.Errorf("replicate fetch: read body: %w", err)
	}
	if int64(len(frames)) > limit {
		// No well-behaved primary can exceed the protocol maximum; apply
		// nothing and say so rather than silently retrying a truncation.
		return fmt.Errorf("replicate fetch: body exceeds the %d-byte protocol maximum; refusing truncated chunk", limit)
	}
	if m := r.opts.Metrics; m != nil && len(frames) > 0 {
		m.FetchSeconds.Observe(time.Since(fetchStart).Seconds())
	}
	r.noteSuccess(acked, lagBytes)
	return r.applyFrames(frames, from)
}

// verifyIdentity checks a feed response's cluster ID and promotion
// epoch against the store's persisted identity (adopting them on first
// contact) before anything from the response is applied. A primary from
// a different cluster, or one announcing an epoch older than this store
// has already observed (the dead pre-failover primary coming back),
// is refused — its history has diverged from ours even where the
// sequence numbers overlap.
func (r *Replica) verifyIdentity(h http.Header) error {
	clusterID := h.Get(hdrReplicationCluster)
	epoch, _ := strconv.ParseUint(h.Get(hdrReplicationEpoch), 10, 64)
	if err := r.s.adoptIdentity(clusterID, epoch); err != nil {
		return fmt.Errorf("replicate fetch: %w", err)
	}
	return nil
}

// applyFrames verifies a received chunk frame by frame (CRC + decode,
// recovery's exact checks) and applies the verified prefix as one batch.
// Trailing damage — a torn frame from a cut, a CRC mismatch from a
// flipped bit — discards everything from the first bad frame and returns
// an error; the loop then re-requests from the new durable seq. Nothing
// at or past a bad frame is ever applied.
func (r *Replica) applyFrames(frames []byte, from uint64) error {
	var recs []walRecord
	off := int64(0)
	size := int64(len(frames))
	verifyStart := time.Now()
	var damaged error
	for off < size {
		payload, end, ok := nextFrame(frames, off)
		if !ok {
			damaged = fmt.Errorf("apply: torn or corrupt frame at offset %d of %d", off, size)
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			damaged = fmt.Errorf("apply: undecodable record at offset %d: %w", off, err)
			break
		}
		prev := from
		if n := len(recs); n > 0 {
			prev = recs[n-1].seq
		}
		if rec.seq <= prev {
			// A primary never ships non-monotone seqs; treat it like
			// corruption and refuse everything from here on.
			damaged = fmt.Errorf("apply: sequence regressed %d -> %d at offset %d", prev, rec.seq, off)
			break
		}
		recs = append(recs, rec)
		off = end
	}
	if m := r.opts.Metrics; m != nil && size > 0 {
		m.VerifySeconds.Observe(time.Since(verifyStart).Seconds())
	}
	if err := r.applyRecords(recs); err != nil {
		return err
	}
	return damaged
}

// applyRecords parses the adds across the recovery worker pool and
// applies the whole chunk through corpus.ApplyBatch: validation and the
// WAL append (one fsync) happen under every shard's write lock, then the
// mutations become visible in order.
func (r *Replica) applyRecords(recs []walRecord) error {
	if len(recs) == 0 {
		return nil
	}
	applyStart := time.Now()
	var jobs []parseJob
	for _, rec := range recs {
		if rec.op == opAdd {
			jobs = append(jobs, parseJob{id: rec.id, sbml: rec.sbml})
		}
	}
	parsed := parseAll(jobs, r.s.opts.Corpus.Match)
	ops := make([]corpus.BatchOp, 0, len(recs))
	ji := 0
	for _, rec := range recs {
		switch rec.op {
		case opAdd:
			p := parsed[ji]
			ji++
			if p.err != nil {
				return fmt.Errorf("apply seq %d: %w", rec.seq, p.err)
			}
			ops = append(ops, corpus.BatchOp{
				Seq:      rec.seq,
				ID:       rec.id,
				SBML:     rec.sbml,
				Keys:     p.cm.MatchKeys(),
				Compiled: p.cm,
			})
		case opRemove:
			ops = append(ops, corpus.BatchOp{Remove: true, Seq: rec.seq, ID: rec.id})
		default:
			return fmt.Errorf("apply seq %d: unknown op %d", rec.seq, rec.op)
		}
	}
	if err := r.s.c.ApplyBatch(ops); err != nil {
		return err
	}
	if m := r.opts.Metrics; m != nil {
		m.ApplySeconds.Observe(time.Since(applyStart).Seconds())
	}
	r.mu.Lock()
	r.st.LastAppliedSeq = recs[len(recs)-1].seq
	r.lastApply = time.Now()
	r.mu.Unlock()
	return nil
}

// resync bootstraps from a full snapshot image — the compacted-horizon
// path. On success the local store's durable and in-memory state equal
// the primary's snapshotted state and the next pull resumes from its seq.
func (r *Replica) resync(ctx context.Context) error {
	rctx, rcancel := context.WithTimeout(ctx, 2*time.Minute)
	defer rcancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, r.opts.PrimaryURL+"/v1/replicate/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return fmt.Errorf("snapshot resync: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("snapshot resync: primary answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := r.verifyIdentity(resp.Header); err != nil {
		return err
	}
	image, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("snapshot resync: read image: %w", err)
	}
	// ApplySnapshotImage re-validates everything (magic, CRCs, seq
	// advance); a truncated or corrupted image is rejected whole and the
	// local state is untouched.
	if err := r.s.ApplySnapshotImage(image); err != nil {
		return err
	}
	seq, _ := strconv.ParseUint(resp.Header.Get(hdrReplicationSnapSeq), 10, 64)
	r.noteSuccess(seq, 0)
	if m := r.opts.Metrics; m != nil {
		m.SnapshotResyncs.Inc()
	}
	r.mu.Lock()
	r.st.SnapshotResyncs++
	r.st.LastAppliedSeq = r.s.LastSeq()
	r.lastApply = time.Now()
	r.mu.Unlock()
	return nil
}
