package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"sbmlcompose/internal/corpus"
)

// This file implements the snapshot file store. Snapshots are written in
// the binary sbsnap-2 format (codec.go): every model's canonical bytes
// plus its precompiled match keys, the derived state that lets recovery
// skip XML parsing entirely. Files are written atomically (temp file +
// fsync + rename, like benchfig's JSON writer) so a crash mid-write
// leaves the previous snapshot intact. Legacy sbsnap-1 files (a gob
// manifest of canonical bytes only) still load — their entries simply
// take the parse path.
//
// Unlike a torn WAL tail — which only ever holds unacknowledged writes
// and is safely dropped — a corrupt snapshot would silently lose the
// whole corpus if ignored, so loadSnapshot reports corruption of the
// canonical data as a hard error (ErrCorruptSnapshot) and Open refuses
// to start. Damage confined to the derived keys merely downgrades
// recovery to the parse path (codec.go documents the split).

const (
	snapMagicV1   = "sbsnap-1"
	snapVersionV1 = 1
	// snapName is the single live snapshot file; writes replace it
	// atomically.
	snapName = "corpus.snap"
)

// ErrCorruptSnapshot marks an unreadable snapshot file. Recovery will not
// guess around it: the operator must restore or delete the snapshot.
var ErrCorruptSnapshot = errors.New("corrupt snapshot")

// snapManifest is the legacy v1 gob payload, kept for reading snapshots
// written before the binary format.
type snapManifest struct {
	Version int
	// LastSeq is the highest WAL sequence number whose effect the
	// snapshot includes; replay skips records at or below it.
	LastSeq uint64
	Models  []corpus.ModelBlob
}

// writeSnapshot writes an sbsnap-2 snapshot to dir/corpus.snap via a
// synced temp file and rename. fingerprint records the match options the
// blobs' keys were derived under, so a later Open with different options
// knows to re-derive.
func writeSnapshot(dir string, lastSeq, fingerprint uint64, blobs []corpus.ModelBlob) error {
	return writeSnapshotImage(dir, encodeSnapshotV2(lastSeq, fingerprint, blobs))
}

// writeSnapshotImage atomically installs an already encoded snapshot file
// image as dir/corpus.snap — the shared tail of writeSnapshot and the
// replication bootstrap path, which receives the primary's image verbatim.
func writeSnapshotImage(dir string, image []byte) error {
	f, err := os.CreateTemp(dir, snapName+".tmp*")
	if err != nil {
		return err
	}
	tmpPath := f.Name()
	defer os.Remove(tmpPath) // no-op after the rename
	if _, err := f.Write(image); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, snapName)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// loadSnapshot reads dir/corpus.snap in whichever format the magic
// declares. A missing file is a fresh store (ok=false, no error); an
// unknown magic or damaged canonical data wraps ErrCorruptSnapshot.
func loadSnapshot(dir string) (snapFile, bool, error) {
	var sf snapFile
	data, err := os.ReadFile(filepath.Join(dir, snapName))
	if errors.Is(err, fs.ErrNotExist) {
		return sf, false, nil
	}
	if err != nil {
		return sf, false, err
	}
	if len(data) < len(snapMagicV2) {
		return sf, false, corruptf("bad header")
	}
	switch string(data[:len(snapMagicV2)]) {
	case snapMagicV2:
		sf, err = decodeSnapshotV2(data)
	case snapMagicV1:
		sf, err = decodeSnapshotV1(data)
	default:
		return sf, false, corruptf("unknown magic %q", data[:len(snapMagicV2)])
	}
	if err != nil {
		return sf, false, err
	}
	return sf, true, nil
}

// decodeSnapshotV1 parses the legacy gob format. Every entry lands on the
// parse path (keysOK false): v1 carried no derived state, and its gob
// framing has no per-entry integrity to vouch for any.
func decodeSnapshotV1(data []byte) (snapFile, error) {
	var sf snapFile
	if len(data) < len(snapMagicV1)+8 {
		return sf, corruptf("bad header")
	}
	length := binary.LittleEndian.Uint32(data[len(snapMagicV1):])
	sum := binary.LittleEndian.Uint32(data[len(snapMagicV1)+4:])
	payload := data[len(snapMagicV1)+8:]
	if uint32(len(payload)) != length {
		return sf, fmt.Errorf("store: %s: payload is %d bytes, header says %d: %w",
			snapName, len(payload), length, ErrCorruptSnapshot)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return sf, corruptf("CRC mismatch")
	}
	var man snapManifest
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&man); err != nil {
		return sf, corruptf("decode: %v", err)
	}
	if man.Version != snapVersionV1 {
		return sf, corruptf("unsupported snapshot version %d", man.Version)
	}
	sf.lastSeq = man.LastSeq
	sf.entries = make([]snapEntry, 0, len(man.Models))
	for _, blob := range man.Models {
		sf.entries = append(sf.entries, snapEntry{id: blob.ID, sbml: blob.SBML})
	}
	return sf, nil
}
