package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"sbmlcompose/internal/corpus"
)

// This file implements the snapshot store: a gob-encoded manifest of every
// model's canonical bytes plus the WAL sequence number the snapshot
// covers, written atomically (temp file + rename, like benchfig's JSON
// writer) so a crash mid-write leaves the previous snapshot intact.
//
// Unlike a torn WAL tail — which only ever holds unacknowledged writes
// and is safely dropped — a corrupt snapshot would silently lose the
// whole corpus if ignored, so loadSnapshot reports corruption as a hard
// error (ErrCorruptSnapshot) and Open refuses to start.

const (
	snapMagic   = "sbsnap-1"
	snapVersion = 1
	// snapName is the single live snapshot file; writes replace it
	// atomically.
	snapName = "corpus.snap"
)

// ErrCorruptSnapshot marks an unreadable snapshot file. Recovery will not
// guess around it: the operator must restore or delete the snapshot.
var ErrCorruptSnapshot = errors.New("corrupt snapshot")

// snapManifest is the gob payload.
type snapManifest struct {
	Version int
	// LastSeq is the highest WAL sequence number whose effect the
	// snapshot includes; replay skips records at or below it.
	LastSeq uint64
	Models  []corpus.ModelBlob
}

// writeSnapshot writes the manifest to dir/corpus.snap via a synced temp
// file and rename.
func writeSnapshot(dir string, man snapManifest) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(man); err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	f, err := os.CreateTemp(dir, snapName+".tmp*")
	if err != nil {
		return err
	}
	tmpPath := f.Name()
	defer os.Remove(tmpPath) // no-op after the rename
	header := make([]byte, len(snapMagic)+8)
	copy(header, snapMagic)
	binary.LittleEndian.PutUint32(header[len(snapMagic):], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(header[len(snapMagic)+4:], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := f.Write(header); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, snapName)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// loadSnapshot reads dir/corpus.snap. A missing file is a fresh store
// (ok=false, no error); anything unreadable wraps ErrCorruptSnapshot.
func loadSnapshot(dir string) (snapManifest, bool, error) {
	var man snapManifest
	data, err := os.ReadFile(filepath.Join(dir, snapName))
	if errors.Is(err, fs.ErrNotExist) {
		return man, false, nil
	}
	if err != nil {
		return man, false, err
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != snapMagic {
		return man, false, fmt.Errorf("store: %s: bad header: %w", snapName, ErrCorruptSnapshot)
	}
	length := binary.LittleEndian.Uint32(data[len(snapMagic):])
	sum := binary.LittleEndian.Uint32(data[len(snapMagic)+4:])
	payload := data[len(snapMagic)+8:]
	if uint32(len(payload)) != length {
		return man, false, fmt.Errorf("store: %s: payload is %d bytes, header says %d: %w",
			snapName, len(payload), length, ErrCorruptSnapshot)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return man, false, fmt.Errorf("store: %s: CRC mismatch: %w", snapName, ErrCorruptSnapshot)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&man); err != nil {
		return man, false, fmt.Errorf("store: %s: decode: %v: %w", snapName, err, ErrCorruptSnapshot)
	}
	if man.Version != snapVersion {
		return man, false, fmt.Errorf("store: %s: unsupported snapshot version %d: %w",
			snapName, man.Version, ErrCorruptSnapshot)
	}
	return man, true, nil
}
