package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file implements the write-ahead-log layer: record framing,
// encoding, the append path (with its failed-write repair), and the
// replay reader with torn-tail detection. The on-disk format is
// documented in the package comment (store.go); everything here must keep
// that comment true.

const (
	walMagic    = "sbwal-v1" // 8-byte segment header
	walFrameLen = 8          // uint32 length + uint32 CRC32
	// walMaxRecord bounds a decoded length prefix. A frame claiming more
	// is treated as a torn/corrupt tail, not an allocation request — a
	// flipped bit in the length field must not ask for gigabytes.
	walMaxRecord = 1 << 30

	opAdd    = 1
	opRemove = 2
)

var walCRC = crc32.IEEETable

// walRecord is one decoded WAL record.
type walRecord struct {
	op  byte
	seq uint64
	id  string
	// sbml holds the canonical model bytes for opAdd records.
	sbml []byte
}

// encodeRecord renders the record payload: op byte, then uvarint seq,
// uvarint-length-prefixed id, and for adds a uvarint-length-prefixed
// canonical SBML blob.
func encodeRecord(rec walRecord) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64*3+len(rec.id)+len(rec.sbml))
	buf = append(buf, rec.op)
	buf = binary.AppendUvarint(buf, rec.seq)
	buf = binary.AppendUvarint(buf, uint64(len(rec.id)))
	buf = append(buf, rec.id...)
	if rec.op == opAdd {
		buf = binary.AppendUvarint(buf, uint64(len(rec.sbml)))
		buf = append(buf, rec.sbml...)
	}
	return buf
}

// decodeRecord parses a payload that already passed its CRC check. An
// error here still only drops the tail (the payload was intact on disk
// but unintelligible, so nothing after it can be trusted either).
func decodeRecord(payload []byte) (walRecord, error) {
	var rec walRecord
	if len(payload) == 0 {
		return rec, fmt.Errorf("empty payload")
	}
	rec.op = payload[0]
	rest := payload[1:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return rec, fmt.Errorf("bad seq varint")
	}
	rec.seq = seq
	rest = rest[n:]
	idLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest[n:])) < idLen {
		return rec, fmt.Errorf("bad id length")
	}
	rest = rest[n:]
	rec.id = string(rest[:idLen])
	rest = rest[idLen:]
	switch rec.op {
	case opAdd:
		blobLen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest[n:])) != blobLen {
			return rec, fmt.Errorf("bad sbml length")
		}
		rec.sbml = append([]byte(nil), rest[n:]...)
	case opRemove:
		if len(rest) != 0 {
			return rec, fmt.Errorf("trailing bytes in remove record")
		}
	default:
		return rec, fmt.Errorf("unknown op %d", rec.op)
	}
	return rec, nil
}

// frameRecord renders one framed record: length + CRC header, then the
// payload. This exact byte layout is also the replication wire format —
// the primary ships WAL frames verbatim and the follower re-verifies the
// CRC before applying, so corruption anywhere between the primary's disk
// and the follower's decoder is caught by the same check recovery uses.
func frameRecord(payload []byte) []byte {
	frame := make([]byte, walFrameLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, walCRC))
	copy(frame[walFrameLen:], payload)
	return frame
}

// nextFrame scans one frame at data[off:]. ok is false at the first torn
// or corrupt frame — short header, implausible length, CRC mismatch —
// after which nothing at or beyond off can be trusted. end is the offset
// just past the frame.
func nextFrame(data []byte, off int64) (payload []byte, end int64, ok bool) {
	size := int64(len(data))
	if size-off < walFrameLen {
		return nil, off, false
	}
	length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if length > walMaxRecord || off+walFrameLen+length > size {
		return nil, off, false
	}
	payload = data[off+walFrameLen : off+walFrameLen+length]
	if crc32.Checksum(payload, walCRC) != sum {
		return nil, off, false
	}
	return payload, off + walFrameLen + length, true
}

// walWriter appends framed records to one segment file.
type walWriter struct {
	f    *os.File
	path string
	off  int64 // current append offset (file size)
	sync bool  // fsync after every append (FsyncAlways)
	// syncedOff is the highest offset known durable, maintained by the
	// group-commit path as its rollback target; per-append and interval
	// syncing never consult it.
	syncedOff int64
	wedged    error // sticky failure after an unrepairable partial append
	// syncHook, when non-nil, replaces f.Sync so tests can inject sync
	// failures (the crash harness's failed-fsync coverage); a closure that
	// counts its calls can fail the append sync but let the rollback sync
	// through, or fail both.
	syncHook func(*os.File) error
	// metrics, when non-nil, times every physical sync (Options.Metrics,
	// installed by the store after segment creation).
	metrics *Metrics
}

// doSync flushes the file, through the test hook when one is set.
func (w *walWriter) doSync() error {
	if w.metrics != nil {
		t0 := time.Now()
		defer func() { w.metrics.FsyncSeconds.Observe(time.Since(t0).Seconds()) }()
	}
	if w.syncHook != nil {
		return w.syncHook(w.f)
	}
	return w.f.Sync()
}

// createSegment creates a fresh segment with its header written (and
// optionally synced).
func createSegment(path string, syncEvery bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return nil, err
	}
	if syncEvery {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &walWriter{f: f, path: path, off: int64(len(walMagic)), syncedOff: int64(len(walMagic)), sync: syncEvery}, nil
}

// openSegmentForAppend opens an existing segment, already verified and
// tail-repaired by the replay pass, positioned at size for appending.
func openSegmentForAppend(path string, size int64, syncEvery bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, path: path, off: size, syncedOff: size, sync: syncEvery}, nil
}

// append frames and writes one record. On a short or failed write it
// truncates the file back to the pre-append offset so the segment stays
// well-formed; if even that fails the writer wedges — every later append
// fails fast rather than writing acked records after an unreadable gap
// (replay drops everything from the first bad frame, so records behind a
// gap would be silently lost).
func (w *walWriter) append(payload []byte) error {
	return w.appendFrames(frameRecord(payload))
}

// appendFrames writes one or more pre-framed records as a single write,
// followed by at most one fsync (under FsyncAlways) regardless of how
// many records the buffer holds — the batch-append path's whole point.
// Failure semantics match append: a failed write or sync rolls the whole
// buffer back (all its records are unacknowledged), and an unrepairable
// rollback wedges the writer.
func (w *walWriter) appendFrames(frames []byte) error {
	if w.wedged != nil {
		return fmt.Errorf("wal wedged by earlier failure: %w", w.wedged)
	}
	if _, err := w.f.Write(frames); err != nil {
		w.rollback("append", err)
		return err
	}
	w.off += int64(len(frames))
	if w.sync {
		if err := w.doSync(); err != nil {
			// The bytes are written but not durable, and the caller will
			// abort the mutation — the records must not survive in the log
			// (a later crash would replay writes the client was told
			// failed), so roll them back like a failed write.
			w.off -= int64(len(frames))
			w.rollback("fsync", err)
			return err
		}
	}
	return nil
}

// rollback truncates the segment back to w.off after a failed append or
// sync; if the file cannot be restored the writer wedges.
func (w *walWriter) rollback(op string, cause error) {
	if terr := w.f.Truncate(w.off); terr != nil {
		w.wedged = fmt.Errorf("%s failed (%v) and truncate failed (%v)", op, cause, terr)
		return
	}
	if _, serr := w.f.Seek(w.off, io.SeekStart); serr != nil {
		w.wedged = fmt.Errorf("%s failed (%v) and re-seek failed (%v)", op, cause, serr)
		return
	}
	// The truncate must itself be synced: the failed append's bytes may
	// already sit in the OS cache (or on disk — a failed fsync reports an
	// unknown durable state), and a crash before the truncate reaches the
	// device would resurrect a record whose caller was told it failed. If
	// the device will not confirm the rollback, the writer wedges — no
	// later append may be acknowledged on top of an unconfirmed tail.
	if serr := w.doSync(); serr != nil {
		w.wedged = fmt.Errorf("%s failed (%v) and rollback sync failed (%v)", op, cause, serr)
	}
}

// rollbackTo is the group-commit rollback: a failed batch fsync discards
// every record past the last durable offset (all of them unacknowledged —
// their waiters get the error) and re-syncs the truncation, restoring the
// writer to its pre-batch state. The caller serializes against appends.
func (w *walWriter) rollbackTo(off int64, op string, cause error) {
	w.off = off
	w.rollback(op, cause)
}

func (w *walWriter) fsync() error {
	if w.wedged != nil {
		return fmt.Errorf("wal wedged by earlier failure: %w", w.wedged)
	}
	return w.doSync()
}

func (w *walWriter) close() error {
	if err := w.doSync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// segmentReplay is the outcome of reading one segment.
type segmentReplay struct {
	records []walRecord
	// goodOff is the offset just past the last intact record; droppedBytes
	// counts what a torn or corrupt tail cost.
	goodOff      int64
	droppedBytes int64
	size         int64
}

// readSegment replays one segment file. A segment shorter than its header
// is treated as a crash during creation: zero records, goodOff at the end
// of whatever header prefix exists (the caller recreates it). A wrong
// magic is a hard error — the file is not a WAL, and guessing would
// mis-apply garbage. After the header, records are read until the first
// bad frame (short frame header, implausible length, CRC mismatch, or an
// undecodable payload); everything from that frame on is reported as
// dropped, never applied.
func readSegment(path string) (segmentReplay, error) {
	var rep segmentReplay
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	rep.size = int64(len(data))
	if len(data) < len(walMagic) {
		rep.droppedBytes = int64(len(data))
		return rep, nil
	}
	if string(data[:len(walMagic)]) != walMagic {
		return rep, fmt.Errorf("store: %s: bad WAL magic %q", filepath.Base(path), data[:len(walMagic)])
	}
	off := int64(len(walMagic))
	rep.goodOff = off
	for off < rep.size {
		payload, end, ok := nextFrame(data, off)
		if !ok {
			break // torn frame header, torn/corrupt length, corrupt payload
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break // intact bytes, unintelligible record
		}
		rep.records = append(rep.records, rec)
		off = end
		rep.goodOff = off
	}
	rep.droppedBytes = rep.size - rep.goodOff
	return rep, nil
}

// segmentPaths lists the directory's WAL segments in generation order
// (the zero-padded hex generation in the name makes lexical order
// generation order).
func segmentPaths(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// segmentName renders the segment filename for a generation.
func segmentName(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", gen))
}

// segmentGen parses the generation back out of a segment path.
func segmentGen(path string) (uint64, error) {
	base := filepath.Base(path)
	var gen uint64
	if _, err := fmt.Sscanf(base, "wal-%016x.log", &gen); err != nil {
		return 0, fmt.Errorf("store: unparseable segment name %q: %v", base, err)
	}
	return gen, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
