package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"strconv"
	"time"

	"sbmlcompose/internal/corpus"
)

// This file implements the primary side of log-shipping replication: a
// tailing reader over the WAL (a cursor by sequence number that survives
// segment rotation and compaction) and the HTTP feed a follower pulls
// from. The wire format is the WAL's own frame format, shipped verbatim —
// length + CRC + payload, exactly as on disk — so the follower re-runs
// the same CRC and decode checks recovery uses, and corruption anywhere
// along the path (disk, network, proxy) is caught before anything is
// applied.
//
// Two watermarks, both guarded by s.mu, make the feed safe and
// deterministic:
//
//   - ackedSeq: the highest sequence number acknowledged to its writer.
//     The feed never ships beyond it. A record written but not yet
//     fsynced (a group-commit batch in flight) can still be rolled back,
//     and a record that the primary rolled back but a follower applied
//     would fork history.
//   - compactedSeq: the highest sequence number compaction may have
//     removed from the segment files. A tail read starting below it gets
//     ErrCompacted — deterministically, whether or not the requested
//     bytes happen to survive in the live segment — and the follower
//     bootstraps from a snapshot image instead. Making the boundary a
//     watermark rather than "whatever is still on disk" is what pins the
//     snapshot-or-resume decision under concurrent compaction.

// ErrCompacted reports that a tail read asked for records at or below
// the compaction horizon: the WAL no longer (reliably) holds them, and
// the reader must bootstrap from a snapshot image instead.
var ErrCompacted = errors.New("requested records compacted away")

// TailBatch is one chunk of the replication feed: verbatim WAL frames
// for every record with FirstSeq <= seq <= LastSeq (gaps from failed
// appends excepted), plus the acknowledged watermark at read time. A
// zero-record batch (Frames empty) is a long-poll timeout at the tip.
type TailBatch struct {
	Frames   []byte
	Records  int
	FirstSeq uint64
	LastSeq  uint64
	AckedSeq uint64
	// LagBytes estimates the WAL bytes still owed past this batch — what
	// remains when the scan stops at maxBytes. It is an upper bound: the
	// remainder is sized from the segment files, which can include a
	// written-but-unacknowledged group-commit tail. 0 when the batch
	// reached the acknowledged tip.
	LagBytes int64
}

// ReadTail returns acknowledged WAL records with seq in (from, ackedSeq],
// up to roughly maxBytes of frames (at least one record is always
// returned when any is available; maxBytes <= 0 means 1 MiB). At the tip
// it blocks until a new record is acknowledged, ctx is done, or wait
// elapses (wait <= 0 polls without blocking); a timeout returns an empty
// batch and a nil error. from below the compaction horizon returns
// ErrCompacted.
func (s *Store) ReadTail(ctx context.Context, from uint64, maxBytes int, wait time.Duration) (TailBatch, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	var timeout <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		timeout = t.C
	}
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return TailBatch{}, fmt.Errorf("store: read tail: store is closed")
		}
		acked, compacted, wake := s.ackedSeq, s.compactedSeq, s.tailWake
		s.mu.Unlock()
		if from < compacted {
			return TailBatch{AckedSeq: acked}, ErrCompacted
		}
		if acked > from {
			tb, err := s.collectTail(from, acked, maxBytes)
			if err != nil {
				return tb, err
			}
			if tb.Records > 0 {
				tb.AckedSeq = acked
				return tb, nil
			}
			// Nothing collected although acked says records exist past
			// from: a compaction deleted segments between our watermark
			// snapshot and the scan. Fall through to wait for the wake its
			// compactedSeq bump sends, then re-decide (almost always
			// ErrCompacted on the next pass).
		}
		if wait <= 0 {
			return TailBatch{AckedSeq: acked}, nil
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return TailBatch{AckedSeq: acked}, ctx.Err()
		case <-timeout:
			return TailBatch{AckedSeq: acked}, nil
		}
	}
}

// tailCursor remembers where a tail scan stopped: the byte offset just
// past the last frame consumed for a reader whose next request will say
// from=seq. Positions are reader-independent — they describe immutable
// acked bytes of an append-only segment, so any reader presenting the
// same from may resume there. The cursor never points past an
// unacknowledged frame (the scan stops before them), which is what makes
// it safe against the append path's failed-write rollback truncation.
type tailCursor struct {
	ok  bool
	seq uint64 // the from a resumed read must present
	gen uint64 // segment generation the offset lives in
	off int64  // offset just past the last consumed frame
}

// collectTail scans the segment files in generation order and gathers
// frames for records with seq in (from, acked], verbatim. Sequence
// numbers are monotone across generations, so the scan stops at the
// first record past acked (an unacknowledged group-commit tail that must
// not ship). A segment vanishing mid-scan (compaction won the race) is
// skipped — the caller re-checks the compaction watermark. A torn or
// corrupt frame ends the segment, exactly as in recovery: everything
// before it is intact and usable.
//
// A follower walking the feed forward presents from = the previous
// batch's LastSeq, which matches the cached tailCursor: the scan then
// seeks straight to the next unshipped frame instead of re-reading and
// re-decoding the entire WAL per chunk (catch-up over a large log would
// otherwise cost O(WAL bytes) per chunk — quadratic in total). A cursor
// miss (different reader position, rotation, deleted segment) falls back
// to the full scan, which is always correct.
func (s *Store) collectTail(from, acked uint64, maxBytes int) (TailBatch, error) {
	var tb TailBatch
	s.mu.Lock()
	cur := s.tailCur
	s.mu.Unlock()
	hit := cur.ok && cur.seq == from
	pos := tailCursor{}
	save := func() {
		if !pos.ok {
			return
		}
		s.mu.Lock()
		s.tailCur = pos
		s.mu.Unlock()
	}
	segs, err := segmentPaths(s.dir)
	if err != nil {
		return tb, err
	}
	for si, path := range segs {
		gen, err := segmentGen(path)
		if err != nil {
			return tb, err
		}
		if hit && gen < cur.gen {
			continue // fully consumed by the position the cursor resumes at
		}
		data, err := os.ReadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return tb, fmt.Errorf("store: read tail: %w", err)
		}
		if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
			continue // segment mid-creation; it has no records yet
		}
		off := int64(len(walMagic))
		if hit && gen == cur.gen && cur.off >= off && cur.off <= int64(len(data)) {
			off = cur.off // seek straight past the already-consumed prefix
		}
		for {
			payload, end, ok := nextFrame(data, off)
			if !ok {
				break
			}
			rec, err := decodeRecord(payload)
			if err != nil {
				break
			}
			if rec.seq > acked {
				save()
				return tb, nil
			}
			if rec.seq > from {
				if tb.Records > 0 && len(tb.Frames)+int(end-off) > maxBytes {
					// Batch full with acked records still unread: size the
					// remainder (rest of this segment plus every later one)
					// so the follower can report lag in bytes. The tail of
					// the live segment may hold unacknowledged records too,
					// which makes this an upper bound.
					tb.LagBytes = int64(len(data)) - off
					for _, later := range segs[si+1:] {
						if fi, serr := os.Stat(later); serr == nil {
							if sz := fi.Size() - int64(len(walMagic)); sz > 0 {
								tb.LagBytes += sz
							}
						}
					}
					save()
					return tb, nil
				}
				tb.Frames = append(tb.Frames, data[off:end]...)
				if tb.Records == 0 {
					tb.FirstSeq = rec.seq
				}
				tb.LastSeq = rec.seq
				tb.Records++
			}
			off = end
			// Frames at or below from count as consumed too: the boundary
			// after them is exactly where a re-request with the same from
			// should resume.
			pos = tailCursor{ok: true, seq: from, gen: gen, off: off}
			if tb.Records > 0 {
				pos.seq = tb.LastSeq
			}
		}
	}
	save()
	return tb, nil
}

// PersistBatch implements corpus.BatchPersister: one WAL write and at
// most one fsync for the whole chunk (AppendBatch). It is the follower
// apply path's persist hook — and deliberately not gated by the
// read-only flag, because records arriving through it carry the
// primary's sequence numbers rather than minting local ones.
func (s *Store) PersistBatch(ops []corpus.BatchOp) error {
	recs := make([]BatchRecord, len(ops))
	for i, op := range ops {
		recs[i] = BatchRecord{Remove: op.Remove, Seq: op.Seq, ID: op.ID, SBML: op.SBML}
	}
	if err := s.AppendBatch(recs); err != nil {
		return fmt.Errorf("%w: %w", err, corpus.ErrPersist)
	}
	return nil
}

// SnapshotImage encodes the current corpus as a snapshot file image
// (sbsnap-2, verbatim what corpus.snap would hold) plus the sequence
// number it covers — the bootstrap payload for a follower that fell
// behind the compaction horizon. The dump runs under every shard's read
// lock with the sequence captured inside the same critical section, so
// the image is exactly as consistent as an on-disk snapshot.
func (s *Store) SnapshotImage(ctx context.Context) ([]byte, uint64, error) {
	var lastSeq uint64
	var closed bool
	blobs, err := s.c.DumpConsistentContext(ctx, func() {
		s.mu.Lock()
		lastSeq = s.seq
		closed = s.closed
		s.mu.Unlock()
	})
	if err == nil && closed {
		err = fmt.Errorf("store: snapshot image: store is closed")
	}
	if err != nil {
		return nil, 0, err
	}
	return encodeSnapshotV2(lastSeq, s.fingerprint, blobs), lastSeq, nil
}

// ApplySnapshotImage replaces this store's entire durable and in-memory
// state with a primary's snapshot image — the follower's resync path when
// the feed answers ErrCompacted. The image must be a well-formed sbsnap-2
// file covering a sequence number beyond this store's (replication never
// moves backwards). On return the store's corpus, snapshot file, WAL and
// sequence state all agree with the image; old segments are gone and the
// next tail request resumes from the image's seq.
func (s *Store) ApplySnapshotImage(image []byte) error {
	if len(image) < len(snapMagicV2) || string(image[:len(snapMagicV2)]) != snapMagicV2 {
		return fmt.Errorf("store: apply snapshot image: not an %s image", snapMagicV2)
	}
	sf, err := decodeSnapshotV2(image)
	if err != nil {
		return fmt.Errorf("store: apply snapshot image: %w", err)
	}
	// Prepare the in-memory entries before touching any state: entries
	// whose persisted keys are trustworthy under our match options install
	// directly, the rest take the parse path — recovery's exact rule.
	trustKeys := !s.opts.RecoveryParseOnly && sf.fingerprint == s.fingerprint
	var jobs []parseJob
	for _, e := range sf.entries {
		if !(trustKeys && e.keysOK) {
			jobs = append(jobs, parseJob{id: e.id, sbml: e.sbml})
		}
	}
	parsed := parseAll(jobs, s.opts.Corpus.Match)
	models := make([]corpus.PrecompiledModel, 0, len(sf.entries))
	ji := 0
	for _, e := range sf.entries {
		p := corpus.PrecompiledModel{ID: e.id, SBML: e.sbml, Keys: e.keys}
		if !(trustKeys && e.keysOK) {
			r := parsed[ji]
			ji++
			if r.err != nil {
				return fmt.Errorf("store: apply snapshot image: model %q: %w", e.id, r.err)
			}
			p.Keys = r.cm.MatchKeys()
			p.Compiled = r.cm
		}
		models = append(models, p)
	}

	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	// Rotate to a fresh segment, exactly like compaction: appends (there
	// should be none on a follower, but the invariants don't depend on
	// that) move to the new writer, pending group waiters resolve against
	// the old one.
	group := s.opts.Fsync == FsyncGroup
	if group {
		s.groupMu.Lock()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if group {
			s.groupMu.Unlock()
		}
		return fmt.Errorf("store: apply snapshot image: store is closed")
	}
	if sf.lastSeq <= s.seq {
		cur := s.seq
		s.mu.Unlock()
		if group {
			s.groupMu.Unlock()
		}
		return fmt.Errorf("store: apply snapshot image: image seq %d not beyond local seq %d", sf.lastSeq, cur)
	}
	newGen := s.gen + 1
	w, err := createSegment(segmentName(s.dir, newGen), s.opts.Fsync == FsyncAlways)
	if err != nil {
		s.mu.Unlock()
		if group {
			s.groupMu.Unlock()
		}
		return fmt.Errorf("store: apply snapshot image: rotate: %w", err)
	}
	w.metrics = s.opts.Metrics
	old := s.wal
	s.wal = w
	s.gen = newGen
	s.tailBytes = 0
	var waiters []groupWaiter
	if group {
		waiters = s.groupWaiters
		s.groupWaiters = nil
		s.groupBytes = 0
	}
	s.mu.Unlock()
	if group {
		s.resolveGroup(old, waiters)
		s.groupMu.Unlock()
	}
	syncDir(s.dir)
	_ = old.close()

	// Install the image on disk first: after the rename, a crash at any
	// later point recovers to exactly the primary's snapshotted state
	// (surviving older segments hold records at or below the local seq,
	// which the image's higher seq makes no-ops at replay).
	if err := writeSnapshotImage(s.dir, image); err != nil {
		return fmt.Errorf("store: apply snapshot image: %w", err)
	}
	segs, err := segmentPaths(s.dir)
	if err != nil {
		return err
	}
	for _, path := range segs {
		gen, err := segmentGen(path)
		if err != nil {
			return err
		}
		if gen < newGen {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("store: apply snapshot image: drop segment %s: %w", path, err)
			}
		}
	}
	syncDir(s.dir)

	// Swap memory and sequence state together: the seq bump runs inside
	// ReplaceAll's all-shards critical section, so no reader can observe
	// the new contents with the old watermarks or vice versa.
	err = s.c.ReplaceAll(models, func() {
		s.mu.Lock()
		s.seq = sf.lastSeq
		s.ackedSeq = sf.lastSeq
		s.compactedSeq = sf.lastSeq
		s.tailCur = tailCursor{} // every cached position predates the wipe
		close(s.tailWake)
		s.tailWake = make(chan struct{})
		s.mu.Unlock()
	})
	if err != nil {
		return fmt.Errorf("store: apply snapshot image: %w", err)
	}
	s.snapshots.Add(1)
	return nil
}

// Replication feed HTTP surface. The handlers live on Store (rather than
// in the server binary) so the fault-injection tests can drive a real
// primary with httptest and the server merely mounts them.

// replicateError is the feed's JSON error body, shape-compatible with
// the server's error envelope.
type replicateError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeReplicateError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(replicateError{Error: msg, Code: code})
}

// Feed header and query-parameter names, shared by primary and follower.
const (
	hdrReplicationAcked    = "X-Replication-Acked-Seq"
	hdrReplicationLagBytes = "X-Replication-Lag-Bytes"
	hdrReplicationFirst    = "X-Replication-First-Seq"
	hdrReplicationLast     = "X-Replication-Last-Seq"
	hdrReplicationSnapSeq  = "X-Replication-Snapshot-Seq"
	// Identity headers (identity.go): the follower verifies both before
	// applying a single frame or image from a response.
	hdrReplicationCluster = "X-Replication-Cluster-Id"
	hdrReplicationEpoch   = "X-Replication-Epoch"
)

// ServeReplicate is the GET /v1/replicate handler: ?from=<seq> (last
// sequence the follower holds), optional ?max_bytes= and ?wait_ms=
// (long-poll at the tip, default 10s, capped at 60s). The 200 body is
// raw WAL frames; X-Replication-Acked-Seq carries the primary's
// acknowledged watermark (an empty body with that header is a long-poll
// timeout). A from below the compaction horizon answers 410 Gone with
// code "compacted": fetch /v1/replicate/snapshot instead.
func (s *Store) ServeReplicate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var from uint64
	if v := q.Get("from"); v != "" {
		var err error
		if from, err = strconv.ParseUint(v, 10, 64); err != nil {
			writeReplicateError(w, http.StatusBadRequest, "bad_request", "from must be an unsigned integer")
			return
		}
	}
	maxBytes := 1 << 20
	if v := q.Get("max_bytes"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeReplicateError(w, http.StatusBadRequest, "bad_request", "max_bytes must be a positive integer")
			return
		}
		if n > 8<<20 {
			n = 8 << 20
		}
		maxBytes = n
	}
	wait := 10 * time.Second
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			writeReplicateError(w, http.StatusBadRequest, "bad_request", "wait_ms must be a non-negative integer")
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > time.Minute {
			wait = time.Minute
		}
	}
	ident, err := s.ensureIdentity()
	if err != nil {
		writeReplicateError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set(hdrReplicationCluster, ident.ClusterID)
	w.Header().Set(hdrReplicationEpoch, strconv.FormatUint(ident.Epoch, 10))
	tb, err := s.ReadTail(r.Context(), from, maxBytes, wait)
	switch {
	case errors.Is(err, ErrCompacted):
		writeReplicateError(w, http.StatusGone, "compacted",
			fmt.Sprintf("records after seq %d are compacted; bootstrap from /v1/replicate/snapshot", from))
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return // client went away; nothing to say
	case err != nil:
		writeReplicateError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(hdrReplicationAcked, strconv.FormatUint(tb.AckedSeq, 10))
	w.Header().Set(hdrReplicationLagBytes, strconv.FormatInt(tb.LagBytes, 10))
	if tb.Records > 0 {
		w.Header().Set(hdrReplicationFirst, strconv.FormatUint(tb.FirstSeq, 10))
		w.Header().Set(hdrReplicationLast, strconv.FormatUint(tb.LastSeq, 10))
	}
	// An explicit Content-Length makes a cut transfer unambiguous on the
	// follower: its ReadAll reports io.ErrUnexpectedEOF instead of
	// returning a silently truncated body.
	w.Header().Set("Content-Length", strconv.Itoa(len(tb.Frames)))
	_, _ = w.Write(tb.Frames)
}

// ServeReplicateSnapshot is the GET /v1/replicate/snapshot handler: the
// body is a complete sbsnap-2 snapshot image of the current corpus and
// X-Replication-Snapshot-Seq the sequence number it covers.
func (s *Store) ServeReplicateSnapshot(w http.ResponseWriter, r *http.Request) {
	ident, err := s.ensureIdentity()
	if err != nil {
		writeReplicateError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	image, seq, err := s.SnapshotImage(r.Context())
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return
		}
		writeReplicateError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set(hdrReplicationCluster, ident.ClusterID)
	w.Header().Set(hdrReplicationEpoch, strconv.FormatUint(ident.Epoch, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(hdrReplicationSnapSeq, strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(image)))
	_, _ = w.Write(image)
}
