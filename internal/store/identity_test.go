package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Tests for the replication identity (cluster ID + promotion epoch):
// minting, adoption, refusal of foreign clusters and stale epochs, and
// durability across reopen.

func TestIdentityMintedLazilyAndDurable(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	if id, epoch := s.ReplicationIdentity(); id != "" || epoch != 0 {
		t.Fatalf("fresh store has identity %q/%d, want none until first feed use", id, epoch)
	}
	ident, err := s.ensureIdentity()
	if err != nil {
		t.Fatalf("ensureIdentity: %v", err)
	}
	if ident.ClusterID == "" || ident.Epoch != 1 {
		t.Fatalf("minted identity %+v, want non-empty cluster at epoch 1", ident)
	}
	again, err := s.ensureIdentity()
	if err != nil || again != ident {
		t.Fatalf("second ensureIdentity = %+v (err %v), want the same %+v", again, err, ident)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := mustOpen(t, dir, testOptions())
	defer reopened.Close()
	if id, epoch := reopened.ReplicationIdentity(); id != ident.ClusterID || epoch != ident.Epoch {
		t.Fatalf("reopened identity %q/%d, want %q/%d", id, epoch, ident.ClusterID, ident.Epoch)
	}
}

func TestIdentityAdoptionAndRefusal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	defer s.Close()

	// A primary announcing no identity is refused outright.
	if err := s.adoptIdentity("", 0); err == nil {
		t.Fatal("adopted an empty identity")
	}
	// First contact adopts.
	if err := s.adoptIdentity("cluster-a", 3); err != nil {
		t.Fatalf("first adopt: %v", err)
	}
	if id, epoch := s.ReplicationIdentity(); id != "cluster-a" || epoch != 3 {
		t.Fatalf("adopted %q/%d, want cluster-a/3", id, epoch)
	}
	// A different cluster is refused, whatever its epoch.
	if err := s.adoptIdentity("cluster-b", 9); !errors.Is(err, ErrClusterMismatch) {
		t.Fatalf("foreign cluster: err = %v, want ErrClusterMismatch", err)
	}
	// An older epoch from the right cluster is the dead pre-failover
	// primary: refused.
	if err := s.adoptIdentity("cluster-a", 2); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale epoch: err = %v, want ErrStaleEpoch", err)
	}
	// A newer epoch (we learned of a promotion) is adopted and persisted.
	if err := s.adoptIdentity("cluster-a", 5); err != nil {
		t.Fatalf("newer epoch: %v", err)
	}
	if _, epoch := s.ReplicationIdentity(); epoch != 5 {
		t.Fatalf("epoch %d after adoption, want 5", epoch)
	}
}

func TestIdentityCorruptFileIsHardError(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	if _, err := s.ensureIdentity(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, replIdentityFile), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); err == nil {
		t.Fatal("Open accepted a corrupt replication identity file")
	}
}
