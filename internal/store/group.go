package store

import "time"

// This file implements the FsyncGroup commit loop. Under FsyncAlways
// every append pays a full fsync; under group commit an append writes
// its record, enqueues a waiter, and blocks while the loop syncs — one
// fsync acknowledges every append that landed since the previous one,
// so N concurrent writers share one sync instead of queueing N. The
// durability guarantee is unchanged: no append is acknowledged before
// an fsync covering its bytes returns.
//
// Correctness hinges on one invariant: every pending waiter's record
// sits in the writer that will be fsynced for it. Appends enqueue their
// waiter in the same s.mu critical section that wrote the record, and
// the two operations that pair waiters with a writer — groupCommit here
// and segment rotation in SnapshotContext — both run under s.groupMu
// and capture the waiter list in the same s.mu critical section in
// which they read (or swap) s.wal. Lock order is groupMu → mu; neither
// is ever held while taking a corpus shard lock, so a waiter blocking
// with its shard lock held cannot deadlock the loop.
//
// A failed batch fsync discards the writer's entire unsynced tail
// (rollbackTo truncates back to the last offset a successful sync
// covered) and fails every pending waiter, including appends that
// landed during the failed sync: their records die in the same
// truncation, and their mutations abort, so the log stays a prefix of
// memory. If even the rollback cannot be confirmed the writer wedges,
// exactly like the per-append path.

// groupWaiter is one append (or batch) blocked on the fsync that will
// acknowledge it: the channel its caller waits on and the highest
// sequence number its records carry, so a successful commit can advance
// the acknowledged watermark the replication feed ships up to.
type groupWaiter struct {
	ch  chan error
	seq uint64
	// records counts the WAL records this waiter's append wrote (1 for a
	// single append, len(recs) for a batch) — the unit the group-commit
	// batch-size histogram sums over.
	records int
}

// groupLoop waits for the kick that follows each group append, gathers
// a batch (see gatherBatch), and commits it. On shutdown it takes a
// final drain: Close sets closing under s.mu before closing done, and
// group appends fail fast once closing is set, so the drain cannot race
// with a late enqueue.
func (s *Store) groupLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			s.groupCommit()
			return
		case <-s.groupCh:
			if d := s.opts.GroupMaxDelay; d > 0 {
				s.gatherBatch(d)
			}
			s.groupCommit()
		}
	}
}

// gatherBatch lingers after a batch's first append so more appends can
// join, until d elapses or GroupMaxBytes accumulate. With GroupMaxDelay
// left at 0 this never runs: batches form naturally from whatever lands
// while the previous fsync is in flight, which keeps per-append latency
// at roughly one device sync.
func (s *Store) gatherBatch(d time.Duration) {
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		full := s.groupBytes >= s.opts.GroupMaxBytes
		s.mu.Unlock()
		if full {
			return
		}
		select {
		case <-deadline.C:
			return
		case <-s.done:
			return
		case <-s.groupCh:
			// Another append joined; recheck the byte cap. A kick lost to
			// the channel's capacity merely means waiting out the delay.
		}
	}
}

// groupCommit resolves every waiter currently pending against the live
// writer.
func (s *Store) groupCommit() {
	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	s.mu.Lock()
	waiters := s.groupWaiters
	s.groupWaiters = nil
	s.groupBytes = 0
	w := s.wal
	s.mu.Unlock()
	s.resolveGroup(w, waiters)
}

// resolveGroup fsyncs w and acknowledges waiters, whose records the
// caller guarantees are in w. Callers hold groupMu, which is what pins
// w against rotation for the duration. The fsync runs outside s.mu so
// new appends keep landing behind the batch — they form the next one.
func (s *Store) resolveGroup(w *walWriter, waiters []groupWaiter) {
	if len(waiters) == 0 {
		return
	}
	s.mu.Lock()
	end := w.off
	s.mu.Unlock()
	err := w.fsync()
	if err == nil {
		// Everything up to the captured end is durable (later concurrent
		// appends may be too, but their own batch will confirm that).
		if end > w.syncedOff {
			w.syncedOff = end
		}
		// Every captured waiter's records are covered by this sync, so
		// the replication feed may now ship up to the batch's highest seq.
		s.mu.Lock()
		for _, gw := range waiters {
			s.advanceAckedLocked(gw.seq)
		}
		s.mu.Unlock()
		if m := s.opts.Metrics; m != nil {
			var n int
			for _, gw := range waiters {
				n += gw.records
			}
			m.GroupBatchRecords.Observe(float64(n))
		}
		for _, gw := range waiters {
			gw.ch <- nil
		}
		return
	}
	// Failed sync: discard the whole unsynced tail and fail the batch.
	s.mu.Lock()
	late := waiters[len(waiters):]
	if s.wal == w {
		// Appends that landed during the failed fsync sit in the same
		// tail being discarded; they fail with the batch. (When called
		// from rotation, s.wal has already moved on and any new waiters
		// belong to the new writer — leave them alone.)
		late = s.groupWaiters
		s.groupWaiters = nil
		s.groupBytes = 0
		s.tailBytes -= w.off - w.syncedOff
	}
	w.rollbackTo(w.syncedOff, "group fsync", err)
	s.mu.Unlock()
	for _, gw := range waiters {
		gw.ch <- err
	}
	for _, gw := range late {
		gw.ch <- err
	}
}
