package store

import "sbmlcompose/internal/obs"

// Metrics collects the store's durability instrumentation. Every field is
// optional: a nil histogram silently drops observations (obs types are
// nil-safe), and a nil *Metrics skips even the clock reads, so an
// unconfigured store pays nothing. The server wires these from its
// registry; library users normally leave Options.Metrics nil.
type Metrics struct {
	// AppendSeconds observes the full latency of each append call
	// (PersistAdd/PersistRemove/AppendBatch), including any group-commit
	// wait — what a writer actually experiences.
	AppendSeconds *obs.Histogram
	// FsyncSeconds observes each physical WAL fsync, whichever path
	// triggered it (per-append, group commit, interval timer, rotation).
	FsyncSeconds *obs.Histogram
	// GroupBatchRecords observes how many records each successful group
	// commit acknowledged — the batching the fsync amortizes over.
	GroupBatchRecords *obs.Histogram
	// SnapshotSeconds observes the duration of each successful snapshot
	// (manual, automatic compaction, and on close).
	SnapshotSeconds *obs.Histogram
}

// ReplicaMetrics collects the follower-side replication instrumentation;
// same nil semantics as Metrics.
type ReplicaMetrics struct {
	// FetchSeconds observes each successful feed fetch (request issued to
	// body fully read), excluding long-poll timeouts that shipped nothing.
	FetchSeconds *obs.Histogram
	// VerifySeconds observes the frame verification (CRC + decode) of
	// each non-empty received chunk.
	VerifySeconds *obs.Histogram
	// ApplySeconds observes the parse+apply of each non-empty verified
	// chunk (worker-pool parse, WAL batch append, corpus install).
	ApplySeconds *obs.Histogram
	// Reconnects counts contact re-established after at least one
	// failure; SnapshotResyncs counts bootstraps through a full snapshot
	// image.
	Reconnects      *obs.Counter
	SnapshotResyncs *obs.Counter
}
