package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"sbmlcompose/internal/corpus"
	"sbmlcompose/internal/sbml"
)

// Tests for the FsyncGroup commit path: batched acknowledgement must
// keep FsyncAlways's guarantee (an acked write survives, a failed write
// vanishes) under concurrency, rotation and shutdown.

func groupOptions() Options {
	opts := testOptions()
	opts.Fsync = FsyncGroup
	return opts
}

// TestGroupCommitConcurrentWriters hammers the group path from many
// goroutines and verifies every acknowledged add survives a reopen.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	opts := groupOptions()
	opts.NoSnapshotOnClose = true // reopen must replay the group-committed WAL
	s := mustOpen(t, dir, opts)
	const writers, perWriter = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.Corpus().Add(testModel(w*perWriter + i)); err != nil {
					errs <- fmt.Errorf("writer %d add %d: %w", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, opts)
	if got := s2.Corpus().Len(); got != writers*perWriter {
		t.Fatalf("recovered %d models, want %d", got, writers*perWriter)
	}
	var adds []*sbml.Model
	for i := 0; i < writers*perWriter; i++ {
		adds = append(adds, testModel(i))
	}
	assertCorporaEquivalent(t, s2.Corpus(), buildReference(t, opts.Corpus, adds, nil),
		[]*sbml.Model{testModel(3)})
	s2.Close()
}

// TestGroupCommitFsyncFailure injects a batch-fsync failure: the add
// must fail, the corpus must not contain the model, and — the deferred
// durability property — the record must be gone from the log, so a
// crash-and-reopen cannot resurrect a write its caller saw fail.
func TestGroupCommitFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	opts := groupOptions()
	opts.NoSnapshotOnClose = true
	s := mustOpen(t, dir, opts)
	mustAdd(t, s.Corpus(), testModel(0))

	boom := errors.New("injected group fsync failure")
	s.mu.Lock()
	calls := 0
	s.wal.syncHook = func(f *os.File) error {
		calls++
		if calls == 1 {
			return boom // the batch fsync; the rollback sync goes through
		}
		return f.Sync()
	}
	s.mu.Unlock()

	if _, err := s.Corpus().Add(testModel(1)); !errors.Is(err, corpus.ErrPersist) {
		t.Fatalf("add under failing fsync: err = %v, want ErrPersist", err)
	}
	if got := s.Corpus().Len(); got != 1 {
		t.Fatalf("corpus len after failed group commit = %d, want 1", got)
	}
	// The writer rolled back and stays usable: the next add goes through
	// and both survive recovery; the failed record must not reappear.
	mustAdd(t, s.Corpus(), testModel(2))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, opts)
	ids := s2.Corpus().IDs()
	want := []string{testModel(0).ID, testModel(2).ID}
	if len(ids) != 2 || ids[0] != want[0] || ids[1] != want[1] {
		t.Fatalf("recovered ids %v, want %v", ids, want)
	}
	s2.Close()
}

// TestGroupCommitFsyncAndRollbackFailure fails both the batch fsync and
// the rollback's confirming sync: the writer must wedge and every later
// append must fail fast rather than acknowledge records behind an
// unconfirmed tail.
func TestGroupCommitFsyncAndRollbackFailure(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, groupOptions())
	boom := errors.New("injected persistent sync failure")
	s.mu.Lock()
	s.wal.syncHook = func(*os.File) error { return boom }
	s.mu.Unlock()

	if _, err := s.Corpus().Add(testModel(0)); !errors.Is(err, corpus.ErrPersist) {
		t.Fatalf("add under failing fsync: err = %v, want ErrPersist", err)
	}
	if _, err := s.Corpus().Add(testModel(1)); !errors.Is(err, corpus.ErrPersist) {
		t.Fatalf("add after wedge: err = %v, want ErrPersist", err)
	}
	s.mu.Lock()
	wedged := s.wal.wedged
	s.wal.syncHook = nil // let Close's flush proceed against the real file
	s.mu.Unlock()
	if wedged == nil {
		t.Fatal("writer not wedged after rollback sync failure")
	}
}

// TestGroupCommitAcrossRotation runs concurrent group-mode adds while
// snapshots rotate the segment under them; every acknowledged add must
// survive, whichever side of a rotation its record landed on.
func TestGroupCommitAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	opts := groupOptions()
	s := mustOpen(t, dir, opts)
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := s.Snapshot(); err != nil {
				errs <- fmt.Errorf("snapshot %d: %w", i, err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				if _, err := s.Corpus().Add(testModel(w*(n/4) + i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, opts)
	if got := s2.Corpus().Len(); got != n {
		t.Fatalf("recovered %d models, want %d", got, n)
	}
	s2.Close()
}

// TestGroupCommitCloseRace races Close against group-mode writers: each
// add either succeeds (and must be recovered) or fails with a persist
// error; nothing may hang on a waiter the final drain missed.
func TestGroupCommitCloseRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		opts := groupOptions()
		opts.NoSnapshotOnClose = true
		s := mustOpen(t, dir, opts)
		var wg sync.WaitGroup
		acked := make([]bool, 8)
		for w := range acked {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, err := s.Corpus().Add(testModel(w))
				if err == nil {
					acked[w] = true
				} else if !errors.Is(err, corpus.ErrPersist) {
					t.Errorf("round %d writer %d: unexpected error %v", round, w, err)
				}
			}(w)
		}
		time.Sleep(time.Duration(round) * 200 * time.Microsecond)
		if err := s.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		wg.Wait()
		s2 := mustOpen(t, dir, opts)
		for w, ok := range acked {
			if !ok {
				continue
			}
			if _, found := s2.Corpus().Get(testModel(w).ID); !found {
				t.Fatalf("round %d: acknowledged add %d lost after Close", round, w)
			}
		}
		s2.Close()
	}
}

// TestGroupCommitDelayBatches exercises the GroupMaxDelay/GroupMaxBytes
// knobs: with a generous delay and a tiny byte cap, a single append must
// still commit promptly once its bytes exceed the cap.
func TestGroupCommitDelayBatches(t *testing.T) {
	dir := t.TempDir()
	opts := groupOptions()
	opts.GroupMaxDelay = 30 * time.Second // would time out the test if waited
	opts.GroupMaxBytes = 1                // any append overflows the cap at once
	s := mustOpen(t, dir, opts)
	done := make(chan error, 1)
	go func() {
		_, err := s.Corpus().Add(testModel(0))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("append under byte-cap overflow did not commit")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendBatchSingleSync pins the replication apply path's fsync
// economics: one AppendBatch of N records — the follower persisting a
// whole received chunk — must reach stable storage with exactly one
// sync, even under FsyncAlways, and every record must survive a crash
// reopen.
func TestAppendBatchSingleSync(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Fsync = FsyncAlways
	opts.NoSnapshotOnClose = true // reopen must replay the batched WAL
	s := mustOpen(t, dir, opts)

	const n = 10
	var syncs int
	s.mu.Lock()
	s.wal.syncHook = func(f *os.File) error {
		syncs++
		return f.Sync()
	}
	s.mu.Unlock()

	var recs []BatchRecord
	for i := 0; i < n; i++ {
		m := testModel(i)
		recs = append(recs, BatchRecord{
			Seq:  uint64(i + 1),
			ID:   m.ID,
			SBML: []byte(sbml.WrapModel(m).String()),
		})
	}
	if err := s.AppendBatch(recs); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if syncs != 1 {
		t.Fatalf("AppendBatch of %d records issued %d syncs, want exactly 1", n, syncs)
	}
	if s.LastSeq() != n {
		t.Fatalf("LastSeq = %d after batch, want %d", s.LastSeq(), n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, opts)
	defer s2.Close()
	if got := s2.Corpus().Len(); got != n {
		t.Fatalf("recovered %d models from batched WAL, want %d", got, n)
	}
	if s2.LastSeq() != n {
		t.Fatalf("recovered LastSeq = %d, want %d", s2.LastSeq(), n)
	}
}

// TestAppendBatchGroupPolicySingleSync repeats the pin under FsyncGroup:
// the whole batch rides one group commit, not one per record.
func TestAppendBatchGroupPolicySingleSync(t *testing.T) {
	s := mustOpen(t, t.TempDir(), groupOptions())
	defer s.Close()
	var syncs int
	s.mu.Lock()
	s.wal.syncHook = func(f *os.File) error {
		syncs++
		return f.Sync()
	}
	s.mu.Unlock()

	var recs []BatchRecord
	for i := 0; i < 6; i++ {
		m := testModel(i)
		recs = append(recs, BatchRecord{
			Seq:  uint64(i + 1),
			ID:   m.ID,
			SBML: []byte(sbml.WrapModel(m).String()),
		})
	}
	if err := s.AppendBatch(recs); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if syncs != 1 {
		t.Fatalf("group-policy AppendBatch issued %d syncs, want 1", syncs)
	}
}

// TestAppendBatchRejectsBadSeqs: explicit seqs must move strictly
// forward; a regressing batch is refused whole and the log is unchanged.
func TestAppendBatchRejectsBadSeqs(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	mustAdd(t, s.Corpus(), testModel(0))
	before := s.LastSeq()

	m := testModel(1)
	bad := []BatchRecord{{Seq: before, ID: m.ID, SBML: []byte(sbml.WrapModel(m).String())}}
	if err := s.AppendBatch(bad); err == nil {
		t.Fatal("AppendBatch accepted a non-advancing seq")
	}
	if s.LastSeq() != before {
		t.Fatalf("failed batch moved LastSeq from %d to %d", before, s.LastSeq())
	}
	if err := s.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}
