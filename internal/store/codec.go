package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"sbmlcompose/internal/core"
	"sbmlcompose/internal/corpus"
)

// This file implements the versioned binary snapshot codec (format
// sbsnap-2). Where the v1 format stored only each model's canonical SBML
// bytes — forcing recovery to re-parse and re-derive match keys, the
// dominant restart cost — v2 persists the derived state alongside them,
// so Open installs precompiled entries and skips the XML pipeline
// entirely.
//
// # Layout
//
//	"sbsnap-2"              8-byte magic (format version)
//	uint64 LE  lastSeq      highest WAL seq the snapshot covers
//	uint64 LE  fingerprint  core.Options.MatchKeyFingerprint of the match
//	                        options the keys were derived under
//	uint32 LE  count        entry count
//	uint32 LE  headerCRC    CRC-32 (IEEE) of the 20 header bytes above
//	count entries:
//	  uint32 LE entryLen    bytes in this entry after this field
//	  uint32 LE coreLen     bytes in the core section
//	  uint32 LE coreCRC     CRC-32 of the core section
//	  core section:         uvarint len(id) + id,
//	                        uvarint len(sbml) + canonical SBML bytes
//	  uint32 LE keysLen     bytes in the keys section
//	  uint32 LE keysCRC     CRC-32 of the keys section
//	  keys section:         core.EncodeMatchKeys blob
//
// # Corruption semantics
//
// The two per-entry sections fail differently, by design. The core
// section holds the canonical bytes — the source of truth; losing it
// loses the model, so a core CRC mismatch (or any framing damage that
// makes the core unreachable) is a hard ErrCorruptSnapshot, like v1. The
// keys section holds only derived state that can always be rebuilt from
// the core bytes, so a keys CRC mismatch, an undecodable keys blob, or a
// whole-file fingerprint mismatch degrades that entry (or file) to the
// parse path: slower, never wrong. An unknown magic is a hard error; the
// v1 magic routes to the legacy gob loader, whose entries all take the
// parse path.

const snapMagicV2 = "sbsnap-2"

// snapHeaderLen is the fixed header after the magic: lastSeq (8) +
// fingerprint (8) + count (4) + headerCRC (4).
const snapHeaderLen = 24

// snapEntry is one decoded snapshot entry. keysOK reports that the keys
// section survived intact and was derived under the opening corpus's
// match options; without it the entry must be re-parsed and re-derived.
type snapEntry struct {
	id     string
	sbml   []byte
	keys   []core.ComponentKey
	keysOK bool
}

// snapFile is a decoded snapshot, version-independent: the v2 decoder
// fills keys where trustworthy, the v1 loader leaves every entry on the
// parse path.
type snapFile struct {
	lastSeq     uint64
	fingerprint uint64
	entries     []snapEntry
}

// encodeSnapshotV2 renders the full snapshot file image (magic included).
func encodeSnapshotV2(lastSeq, fingerprint uint64, blobs []corpus.ModelBlob) []byte {
	size := len(snapMagicV2) + snapHeaderLen
	for _, b := range blobs {
		size += 24 + 2*binary.MaxVarintLen64 + len(b.ID) + len(b.SBML) + 8*len(b.Keys)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapMagicV2...)
	buf = binary.LittleEndian.AppendUint64(buf, lastSeq)
	buf = binary.LittleEndian.AppendUint64(buf, fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blobs)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[len(snapMagicV2):]))
	for _, b := range blobs {
		cs := make([]byte, 0, 2*binary.MaxVarintLen64+len(b.ID)+len(b.SBML))
		cs = binary.AppendUvarint(cs, uint64(len(b.ID)))
		cs = append(cs, b.ID...)
		cs = binary.AppendUvarint(cs, uint64(len(b.SBML)))
		cs = append(cs, b.SBML...)
		keys := core.EncodeMatchKeys(b.Keys)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(16+len(cs)+len(keys)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cs)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(cs))
		buf = append(buf, cs...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(keys))
		buf = append(buf, keys...)
	}
	return buf
}

// corruptf wraps a format violation in ErrCorruptSnapshot.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("store: %s: %s: %w", snapName, fmt.Sprintf(format, args...), ErrCorruptSnapshot)
}

// decodeSnapshotV2 parses a full file image whose magic already matched
// snapMagicV2. Damage to canonical data is a hard error; damage confined
// to a keys section only clears that entry's keysOK.
func decodeSnapshotV2(data []byte) (snapFile, error) {
	var sf snapFile
	rest := data[len(snapMagicV2):]
	if len(rest) < snapHeaderLen {
		return sf, corruptf("truncated header")
	}
	header := rest[:snapHeaderLen-4]
	if crc32.ChecksumIEEE(header) != binary.LittleEndian.Uint32(rest[snapHeaderLen-4:snapHeaderLen]) {
		return sf, corruptf("header CRC mismatch")
	}
	sf.lastSeq = binary.LittleEndian.Uint64(header[0:8])
	sf.fingerprint = binary.LittleEndian.Uint64(header[8:16])
	count := binary.LittleEndian.Uint32(header[16:20])
	rest = rest[snapHeaderLen:]
	if uint64(count) > uint64(len(rest)) {
		// Entries occupy many bytes each; a count beyond the remaining
		// byte count is corruption, not an allocation request.
		return sf, corruptf("entry count %d exceeds file size", count)
	}
	sf.entries = make([]snapEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return sf, corruptf("entry %d: truncated frame", i)
		}
		entryLen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(entryLen) > uint64(len(rest)) || entryLen < 16 {
			return sf, corruptf("entry %d: implausible length %d", i, entryLen)
		}
		eb := rest[:entryLen]
		rest = rest[entryLen:]

		coreLen := binary.LittleEndian.Uint32(eb[0:4])
		coreCRC := binary.LittleEndian.Uint32(eb[4:8])
		if uint64(coreLen) > uint64(len(eb))-16 {
			return sf, corruptf("entry %d: core section overruns entry", i)
		}
		coreBytes := eb[8 : 8+coreLen]
		if crc32.ChecksumIEEE(coreBytes) != coreCRC {
			return sf, corruptf("entry %d: core CRC mismatch", i)
		}
		e, err := decodeSnapCore(coreBytes)
		if err != nil {
			return sf, corruptf("entry %d: %v", i, err)
		}

		// Keys section: any inconsistency here downgrades the entry to
		// the parse path instead of failing the load — the canonical
		// bytes above are intact and re-derivation is always correct.
		keysFrame := eb[8+coreLen:]
		if len(keysFrame) >= 8 {
			keysLen := binary.LittleEndian.Uint32(keysFrame[0:4])
			keysCRC := binary.LittleEndian.Uint32(keysFrame[4:8])
			keysBytes := keysFrame[8:]
			if uint64(keysLen) == uint64(len(keysBytes)) && crc32.ChecksumIEEE(keysBytes) == keysCRC {
				if keys, err := core.DecodeMatchKeys(keysBytes); err == nil {
					e.keys, e.keysOK = keys, true
				}
			}
		}
		sf.entries = append(sf.entries, e)
	}
	if len(rest) != 0 {
		return sf, corruptf("%d trailing bytes after last entry", len(rest))
	}
	return sf, nil
}

// decodeSnapCore parses an entry's core section (id + canonical bytes).
func decodeSnapCore(b []byte) (snapEntry, error) {
	var e snapEntry
	idLen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b[n:])) < idLen {
		return e, fmt.Errorf("bad id length")
	}
	b = b[n:]
	e.id = string(b[:idLen])
	b = b[idLen:]
	blobLen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b[n:])) != blobLen {
		return e, fmt.Errorf("bad sbml length")
	}
	e.sbml = append([]byte(nil), b[n:]...)
	if e.id == "" || len(e.sbml) == 0 {
		return e, fmt.Errorf("empty id or model bytes")
	}
	return e, nil
}
