package store

import (
	"os"
	"strings"
	"testing"
	"time"
)

// These tests pin the failure branches that the happy-path and crash
// suites cannot reach: malformed record payloads, wedged writers, and
// snapshot/compaction failures after the directory disappears.

func TestDecodeRecordRejectsMalformedPayloads(t *testing.T) {
	valid := encodeRecord(walRecord{op: opAdd, seq: 7, id: "m1", sbml: []byte("<sbml/>")})
	cases := map[string][]byte{
		"empty":                 {},
		"unknown op":            {99, 1, 1, 'x'},
		"truncated seq":         {opAdd, 0x80}, // continuation bit with no next byte
		"id length overruns":    {opAdd, 1, 200},
		"sbml length mismatch":  valid[:len(valid)-2],
		"trailing bytes remove": append(encodeRecord(walRecord{op: opRemove, seq: 1, id: "m"}), 0xAA),
		"sbml varint truncated": {opAdd, 1, 1, 'x', 0x80},
	}
	for name, payload := range cases {
		if _, err := decodeRecord(payload); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	if rec, err := decodeRecord(valid); err != nil || rec.id != "m1" || rec.seq != 7 {
		t.Fatalf("valid payload rejected: %+v, %v", rec, err)
	}
}

func TestWriterWedgesAfterUnrepairableFailure(t *testing.T) {
	dir := t.TempDir()
	w, err := createSegment(segmentName(dir, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(encodeRecord(walRecord{op: opRemove, seq: 1, id: "a"})); err != nil {
		t.Fatal(err)
	}
	// Closing the fd under the writer makes the next write fail AND the
	// repair truncate fail — the wedge case.
	w.f.Close()
	if err := w.append(encodeRecord(walRecord{op: opRemove, seq: 2, id: "b"})); err == nil {
		t.Fatal("append on closed fd succeeded")
	}
	if w.wedged == nil {
		t.Fatal("writer did not wedge")
	}
	if err := w.append(encodeRecord(walRecord{op: opRemove, seq: 3, id: "c"})); err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("wedged writer accepted an append: %v", err)
	}
}

func TestCreateAndOpenSegmentFailures(t *testing.T) {
	dir := t.TempDir()
	path := segmentName(dir, 1)
	if err := os.WriteFile(path, []byte("occupied"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := createSegment(path, false); err == nil {
		t.Fatal("createSegment over an existing file succeeded")
	}
	if _, err := openSegmentForAppend(segmentName(dir, 2), 8, false); err == nil {
		t.Fatal("openSegmentForAppend on a missing file succeeded")
	}
}

func TestSegmentGenRejectsUnparseableNames(t *testing.T) {
	if _, err := segmentGen("/x/wal-nothex.log"); err == nil {
		t.Fatal("unparseable segment name accepted")
	}
	if gen, err := segmentGen(segmentName("/x", 0xAB)); err != nil || gen != 0xAB {
		t.Fatalf("round-trip gen = %d, %v", gen, err)
	}
}

// TestOpenRejectsUnparseableSegmentName covers the Open branch where a
// file matches the wal-*.log glob but carries a non-hex generation.
func TestOpenRejectsUnparseableSegmentName(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/wal-nothexnothexnot.log", []byte(walMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); err == nil || !strings.Contains(err.Error(), "unparseable") {
		t.Fatalf("Open with unparseable segment name: %v", err)
	}
}

// TestReplayRejectsUnparseableStoredModel covers applyAdd's failure
// branches: CRC-valid add records whose blob does not parse, parses to
// no model, or carries a different model id.
func TestReplayRejectsUnparseableStoredModel(t *testing.T) {
	writeWAL := func(t *testing.T, rec walRecord) string {
		dir := t.TempDir()
		w, err := createSegment(segmentName(dir, 1), false)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.append(encodeRecord(rec)); err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	cases := []struct {
		name   string
		rec    walRecord
		detail string
	}{
		{"garbage blob", walRecord{op: opAdd, seq: 1, id: "m", sbml: []byte("<not-xml")}, "parse stored model"},
		{"no model", walRecord{op: opAdd, seq: 1, id: "m", sbml: []byte(`<sbml level="2" version="4"></sbml>`)}, "no <model>"},
		{"id mismatch", walRecord{op: opAdd, seq: 1, id: "other", sbml: []byte(`<sbml level="2" version="4"><model id="m"/></sbml>`)}, "record says"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeWAL(t, tc.rec)
			if _, err := Open(dir, testOptions()); err == nil || !strings.Contains(err.Error(), tc.detail) {
				t.Fatalf("Open: %v, want detail %q", err, tc.detail)
			}
		})
	}
}

func TestSnapshotFailsWhenDirVanishes(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Fsync = FsyncNever
	s := mustOpen(t, dir, opts)
	mustAdd(t, s.Corpus(), testModel(0))
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot succeeded without a directory")
	}
	// Appends keep working on the open fd; only snapshotting is broken.
	mustAdd(t, s.Corpus(), testModel(1))
	// Close reports the final-snapshot failure rather than hiding it.
	if err := s.Close(); err == nil {
		t.Fatal("Close hid the snapshot failure")
	}
}

func TestAutoCompactionFailureIsReported(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Fsync = FsyncNever
	opts.CompactBytes = 1 // every append triggers compaction
	opts.NoSnapshotOnClose = true
	s := mustOpen(t, dir, opts)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, s.Corpus(), testModel(0))
	deadline := time.Now().Add(5 * time.Second)
	for s.Status().CompactError == "" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if msg := s.Status().CompactError; !strings.Contains(msg, "snapshot") {
		t.Fatalf("compaction failure not surfaced: %q", msg)
	}
	s.Close()
}

// TestTornTailInNonFinalSegmentRefusesToOpen pins that a gap in the
// middle of the segment sequence — a torn tail in a segment that has
// newer segments after it — fails Open loudly instead of replaying
// records across the gap.
func TestTornTailInNonFinalSegmentRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	w1, err := createSegment(segmentName(dir, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	rec := encodeRecord(walRecord{op: opRemove, seq: 1, id: "a"})
	if err := w1.append(rec); err != nil {
		t.Fatal(err)
	}
	if err := w1.close(); err != nil {
		t.Fatal(err)
	}
	// Tear the first segment's tail, then add a clean newer segment.
	fi, err := os.Stat(segmentName(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segmentName(dir, 1), fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	w2, err := createSegment(segmentName(dir, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); err == nil || !strings.Contains(err.Error(), "refusing to replay past the gap") {
		t.Fatalf("Open with mid-sequence torn tail: %v", err)
	}
}

// TestWriteSnapshotDirectFailure covers writeSnapshot's temp-file branch
// without going through rotation.
func TestWriteSnapshotDirectFailure(t *testing.T) {
	if err := writeSnapshot("/nonexistent-store-dir", 0, 0, nil); err == nil {
		t.Fatal("writeSnapshot without a directory succeeded")
	}
}
