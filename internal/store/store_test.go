package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/core"
	"sbmlcompose/internal/corpus"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
)

// testModel generates one small decorated model; the shared vocabulary
// gives queries realistic cross-model overlap.
func testModel(i int) *sbml.Model {
	return biomodels.Generate(biomodels.Config{
		ID:             fmt.Sprintf("m%03d", i),
		Nodes:          6 + i%5,
		Edges:          8 + i%7,
		Seed:           int64(7000 + 13*i),
		VocabularySize: 60,
		Decorate:       true,
	})
}

func testOptions() Options {
	return Options{
		Corpus: corpus.Options{Shards: 3, Workers: 2, Match: core.Options{Synonyms: synonym.Builtin()}},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustAdd(t *testing.T, c *corpus.Corpus, m *sbml.Model) {
	t.Helper()
	if _, err := c.Add(m); err != nil {
		t.Fatalf("Add(%s): %v", m.ID, err)
	}
}

func mustRemove(t *testing.T, c *corpus.Corpus, id string) {
	t.Helper()
	if ok, err := c.Remove(id); err != nil || !ok {
		t.Fatalf("Remove(%s): ok=%v err=%v", id, ok, err)
	}
}

// assertCorporaEquivalent pins the kill-and-reopen acceptance criterion:
// ids, Search rankings with exact scores and evidence, and ComposeWith
// output must be byte-identical between the recovered corpus and the
// never-restarted reference.
func assertCorporaEquivalent(t *testing.T, got, want *corpus.Corpus, queries []*sbml.Model) {
	t.Helper()
	if g, w := got.IDs(), want.IDs(); !reflect.DeepEqual(g, w) {
		t.Fatalf("IDs diverge:\n got %v\nwant %v", g, w)
	}
	for _, q := range queries {
		gh, err := got.Search(q, corpus.SearchOptions{TopK: -1})
		if err != nil {
			t.Fatalf("recovered Search(%s): %v", q.ID, err)
		}
		wh, err := want.Search(q, corpus.SearchOptions{TopK: -1})
		if err != nil {
			t.Fatalf("reference Search(%s): %v", q.ID, err)
		}
		if !reflect.DeepEqual(gh, wh) {
			t.Fatalf("Search(%s) diverges:\n got %+v\nwant %+v", q.ID, gh, wh)
		}
		for _, id := range want.IDs() {
			gr, gerr := got.ComposeWith(id, q)
			wr, werr := want.ComposeWith(id, q)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("ComposeWith(%s, %s) error mismatch: %v vs %v", id, q.ID, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			gx := sbml.WrapModel(gr.Model).String()
			wx := sbml.WrapModel(wr.Model).String()
			if gx != wx {
				t.Fatalf("ComposeWith(%s, %s) output diverges", id, q.ID)
			}
		}
	}
}

// buildReference replays the same workload into a plain in-memory corpus.
func buildReference(t *testing.T, opts corpus.Options, adds []*sbml.Model, removes []string) *corpus.Corpus {
	t.Helper()
	c := corpus.New(opts)
	for _, m := range adds {
		mustAdd(t, c, m)
	}
	for _, id := range removes {
		mustRemove(t, c, id)
	}
	return c
}

func TestReopenFromWALTail(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.NoSnapshotOnClose = true // leave the raw WAL: recovery is pure replay
	opts.Fsync = FsyncNever

	var adds []*sbml.Model
	s := mustOpen(t, dir, opts)
	for i := 0; i < 10; i++ {
		m := testModel(i)
		adds = append(adds, m)
		mustAdd(t, s.Corpus(), m)
	}
	removes := []string{adds[3].ID, adds[7].ID}
	for _, id := range removes {
		mustRemove(t, s.Corpus(), id)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("NoSnapshotOnClose still wrote a snapshot: %v", err)
	}

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	st := s2.Stats()
	if st.WALRecords != 12 || st.WALAdds != 10 || st.WALRemoves != 2 || st.SnapshotModels != 0 {
		t.Fatalf("recovery stats = %+v, want 12 records / 10 adds / 2 removes, no snapshot", st)
	}
	if st.TornTail || st.DroppedBytes != 0 {
		t.Fatalf("clean WAL reported torn tail: %+v", st)
	}
	ref := buildReference(t, testOptions().Corpus, adds, removes)
	assertCorporaEquivalent(t, s2.Corpus(), ref, []*sbml.Model{adds[0], adds[5], testModel(40)})
}

func TestReopenFromSnapshotThenTail(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.NoSnapshotOnClose = true
	opts.Fsync = FsyncNever

	var adds []*sbml.Model
	s := mustOpen(t, dir, opts)
	for i := 0; i < 6; i++ {
		m := testModel(i)
		adds = append(adds, m)
		mustAdd(t, s.Corpus(), m)
	}
	// Manual compaction: snapshot covers the first six adds...
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// ...then a tail accumulates on top of it.
	for i := 6; i < 10; i++ {
		m := testModel(i)
		adds = append(adds, m)
		mustAdd(t, s.Corpus(), m)
	}
	removes := []string{adds[1].ID, adds[8].ID}
	for _, id := range removes {
		mustRemove(t, s.Corpus(), id)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	st := s2.Stats()
	if st.SnapshotModels != 6 {
		t.Fatalf("snapshot models = %d, want 6 (stats %+v)", st.SnapshotModels, st)
	}
	if st.WALAdds != 4 || st.WALRemoves != 2 {
		t.Fatalf("tail replay = %+v, want 4 adds / 2 removes", st)
	}
	ref := buildReference(t, testOptions().Corpus, adds, removes)
	assertCorporaEquivalent(t, s2.Corpus(), ref, []*sbml.Model{adds[2], adds[9], testModel(41)})
}

func TestCloseSnapshotMakesReopenSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	var adds []*sbml.Model
	s := mustOpen(t, dir, testOptions())
	for i := 0; i < 8; i++ {
		m := testModel(i)
		adds = append(adds, m)
		mustAdd(t, s.Corpus(), m)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	st := s2.Stats()
	if st.SnapshotModels != 8 || st.WALAdds != 0 || st.WALRemoves != 0 || st.WALSkipped != 0 {
		t.Fatalf("after graceful close, recovery should be snapshot-only: %+v", st)
	}
	ref := buildReference(t, testOptions().Corpus, adds, nil)
	assertCorporaEquivalent(t, s2.Corpus(), ref, []*sbml.Model{adds[4], testModel(42)})
}

func TestAutoCompactionTriggersAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Fsync = FsyncNever
	opts.CompactBytes = 2 << 10 // a couple of model blobs
	opts.NoSnapshotOnClose = true

	var adds []*sbml.Model
	s := mustOpen(t, dir, opts)
	for i := 0; i < 12; i++ {
		m := testModel(i)
		adds = append(adds, m)
		mustAdd(t, s.Corpus(), m)
	}
	// The background compactor runs asynchronously; wait for at least one
	// snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Status().Snapshots == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Status().Snapshots == 0 {
		t.Fatal("auto-compaction never fired")
	}
	if msg := s.Status().CompactError; msg != "" {
		t.Fatalf("compaction error: %s", msg)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	st := s2.Stats()
	if st.SnapshotModels == 0 {
		t.Fatalf("compaction left no snapshot: %+v", st)
	}
	ref := buildReference(t, testOptions().Corpus, adds, nil)
	assertCorporaEquivalent(t, s2.Corpus(), ref, []*sbml.Model{adds[0], adds[11]})
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(string(policy), func(t *testing.T) {
			dir := t.TempDir()
			opts := testOptions()
			opts.Fsync = policy
			opts.FsyncEvery = 5 * time.Millisecond
			s := mustOpen(t, dir, opts)
			mustAdd(t, s.Corpus(), testModel(0))
			if policy == FsyncInterval {
				time.Sleep(25 * time.Millisecond) // let the ticker fire at least once
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := mustOpen(t, dir, opts)
			defer s2.Close()
			if got := s2.Corpus().Len(); got != 1 {
				t.Fatalf("recovered %d models, want 1", got)
			}
		})
	}
	if _, err := Open(t.TempDir(), Options{Fsync: "sometimes"}); err == nil {
		t.Fatal("unknown fsync policy accepted")
	}
}

func TestMutationsFailAfterClose(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	mustAdd(t, s.Corpus(), testModel(0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	c := s.Corpus()
	if _, err := c.Add(testModel(1)); !errors.Is(err, corpus.ErrPersist) {
		t.Fatalf("Add after Close: err = %v, want ErrPersist", err)
	}
	if _, err := c.Remove(testModel(0).ID); !errors.Is(err, corpus.ErrPersist) {
		t.Fatalf("Remove after Close: err = %v, want ErrPersist", err)
	}
	// The failed mutations left the in-memory state untouched.
	if got := c.Len(); got != 1 {
		t.Fatalf("corpus len after failed mutations = %d, want 1", got)
	}
	if err := s.Snapshot(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Snapshot after Close: %v", err)
	}
}

func TestCorruptSnapshotRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	mustAdd(t, s.Corpus(), testModel(0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName)
	for name, corrupt := range map[string]func([]byte) []byte{
		"bad-magic": func(b []byte) []byte { b[0] ^= 0xFF; return b },
		// Offset 44 is inside the first entry's core section (canonical
		// bytes): magic 8 + header 24 + entryLen 4 + coreLen 4 + coreCRC 4.
		// Damage there is unrecoverable — unlike the keys section, whose
		// corruption only downgrades the entry to the parse path (pinned in
		// codec_test.go).
		"core-flip":  func(b []byte) []byte { b[44] ^= 0x01; return b },
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"header-own": func(b []byte) []byte { return b[:4] },
	} {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			dir2 := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir2, snapName), corrupt(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = Open(dir2, testOptions())
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("Open with %s snapshot: err = %v, want ErrCorruptSnapshot", name, err)
			}
		})
	}
}

func TestBadWALMagicRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segmentName(dir, 1), []byte("notawal!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("Open with bad WAL magic: %v", err)
	}
}

func TestUnwritableDirRefusesToOpen(t *testing.T) {
	// A path whose parent is a regular file is unwritable for any uid
	// (root included), unlike permission bits.
	f := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(f, "data"), testOptions()); err == nil {
		t.Fatal("Open under a regular file succeeded")
	}
}

func TestStatusReportsProgress(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Fsync = FsyncNever
	s := mustOpen(t, dir, opts)
	defer s.Close()
	if st := s.Status(); st.TailBytes != 0 || st.LastSeq != 0 || st.Dir != dir {
		t.Fatalf("fresh status = %+v", st)
	}
	mustAdd(t, s.Corpus(), testModel(0))
	st := s.Status()
	if st.TailBytes == 0 || st.LastSeq != 1 {
		t.Fatalf("status after one add = %+v", st)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st = s.Status()
	if st.TailBytes != 0 || st.Snapshots != 1 {
		t.Fatalf("status after snapshot = %+v", st)
	}
}

// TestCanonicalBytesStableAcrossGenerations pins the serialization
// fixed-point the whole design rests on: the snapshot a recovered store
// writes must be byte-identical to the snapshot the original store
// writes, or recovered corpora would drift generation over generation.
func TestCanonicalBytesStableAcrossGenerations(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Fsync = FsyncNever
	s := mustOpen(t, dir, opts)
	for i := 0; i < 6; i++ {
		mustAdd(t, s.Corpus(), testModel(i))
	}
	if err := s.Close(); err != nil { // writes snapshot gen 1
		t.Fatal(err)
	}
	gen1, err := os.ReadFile(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, opts)
	if err := s2.Close(); err != nil { // re-serializes every recovered model
		t.Fatal(err)
	}
	gen2, err := os.ReadFile(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gen1, gen2) {
		t.Fatal("snapshot bytes drift across a recover/re-snapshot generation")
	}
}

// TestReplayRejectsInconsistentLog pins that CRC-valid but semantically
// impossible logs (remove of a model that was never added) fail Open
// loudly instead of guessing.
func TestReplayRejectsInconsistentLog(t *testing.T) {
	dir := t.TempDir()
	w, err := createSegment(segmentName(dir, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(encodeRecord(walRecord{op: opRemove, seq: 1, id: "ghost"})); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); err == nil || !strings.Contains(err.Error(), "absent model") {
		t.Fatalf("Open with remove-of-absent: %v", err)
	}
}
