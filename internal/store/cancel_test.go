package store

// Cancellation tests for SnapshotContext: an aborted snapshot must leave
// the store fully functional (appends, later snapshots, recovery) and
// must never replace the snapshot file with a partial one.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"sbmlcompose/internal/sbml"
)

func TestSnapshotContextCancelled(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	for i := 0; i < 6; i++ {
		mustAdd(t, s.Corpus(), testModel(i))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.SnapshotContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled SnapshotContext = %v, want context.Canceled", err)
	}

	// The store keeps working: appends land, a real snapshot succeeds,
	// and a reopen sees every model (the cancelled snapshot left the WAL
	// segments in place, so recovery replays them).
	mustAdd(t, s.Corpus(), testModel(6))
	if err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot after cancelled snapshot: %v", err)
	}
	mustAdd(t, s.Corpus(), testModel(7))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if got := s2.Corpus().Len(); got != 8 {
		t.Fatalf("recovered %d models, want 8", got)
	}
	adds := make([]*sbml.Model, 8)
	for i := range adds {
		adds[i] = testModel(i)
	}
	ref := buildReference(t, testOptions().Corpus, adds, nil)
	assertCorporaEquivalent(t, s2.Corpus(), ref, adds[:3])
}

// TestConcurrentClose pins that every concurrent Close call blocks until
// the store is actually closed: a nil return from any of them means the
// final snapshot was attempted and the WAL is closed, so a caller may
// immediately re-open the directory.
func TestConcurrentClose(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	for i := 0; i < 4; i++ {
		mustAdd(t, s.Corpus(), testModel(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
			// The store must really be closed by the time Close returns.
			if err := s.Snapshot(); err == nil {
				t.Error("Snapshot succeeded after Close returned")
			}
		}()
	}
	wg.Wait()

	s2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if got := s2.Corpus().Len(); got != 4 {
		t.Fatalf("recovered %d models after concurrent close, want 4", got)
	}
	if s2.Stats().WALRecords != 0 {
		t.Fatalf("close snapshot missing: %d WAL records replayed", s2.Stats().WALRecords)
	}
}
