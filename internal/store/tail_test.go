package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sbmlcompose/internal/corpus"
	"sbmlcompose/internal/sbml"
)

// Tests for the replication tail reader: what ships, what blocks, and —
// the pinned satellite — that a compaction racing the cursor always
// yields a deterministic snapshot-or-resume decision.

// decodeFrames decodes a TailBatch's frame buffer back into records,
// failing the test on any framing or decode error (the feed must only
// ever ship intact frames).
func decodeFrames(t *testing.T, frames []byte) []walRecord {
	t.Helper()
	var recs []walRecord
	off := int64(0)
	for off < int64(len(frames)) {
		payload, end, ok := nextFrame(frames, off)
		if !ok {
			t.Fatalf("torn frame at offset %d of %d-byte feed buffer", off, len(frames))
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("undecodable record at offset %d: %v", off, err)
		}
		recs = append(recs, rec)
		off = end
	}
	return recs
}

func TestReadTailShipsAckedRecords(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	for i := 0; i < 5; i++ {
		mustAdd(t, s.Corpus(), testModel(i))
	}
	mustRemove(t, s.Corpus(), testModel(2).ID)

	tb, err := s.ReadTail(context.Background(), 0, 0, 0)
	if err != nil {
		t.Fatalf("ReadTail: %v", err)
	}
	recs := decodeFrames(t, tb.Frames)
	if len(recs) != 6 || tb.Records != 6 {
		t.Fatalf("got %d records (batch says %d), want 6", len(recs), tb.Records)
	}
	if tb.FirstSeq != 1 || tb.LastSeq != 6 || tb.AckedSeq != 6 {
		t.Fatalf("batch seqs first=%d last=%d acked=%d, want 1/6/6", tb.FirstSeq, tb.LastSeq, tb.AckedSeq)
	}
	if recs[5].op != opRemove || recs[5].id != testModel(2).ID {
		t.Fatalf("last record = op %d id %q, want the remove of %q", recs[5].op, recs[5].id, testModel(2).ID)
	}
	for i, rec := range recs {
		if rec.seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.seq, i+1)
		}
	}

	// A mid-log cursor gets exactly the records past it.
	tb, err = s.ReadTail(context.Background(), 4, 0, 0)
	if err != nil {
		t.Fatalf("ReadTail(from=4): %v", err)
	}
	recs = decodeFrames(t, tb.Frames)
	if len(recs) != 2 || recs[0].seq != 5 || recs[1].seq != 6 {
		t.Fatalf("from=4 shipped %d records, want seqs [5 6]", len(recs))
	}

	// At the tip, a non-blocking poll returns an empty batch.
	tb, err = s.ReadTail(context.Background(), 6, 0, 0)
	if err != nil || tb.Records != 0 || tb.AckedSeq != 6 {
		t.Fatalf("tip poll: records=%d acked=%d err=%v, want empty batch acked 6", tb.Records, tb.AckedSeq, err)
	}
}

func TestReadTailMaxBytesPaginates(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	const n = 8
	for i := 0; i < n; i++ {
		mustAdd(t, s.Corpus(), testModel(i))
	}
	// Tiny maxBytes: every batch still carries at least one record, and
	// walking the cursor forward drains the log in order.
	var seqs []uint64
	from := uint64(0)
	for {
		tb, err := s.ReadTail(context.Background(), from, 1, 0)
		if err != nil {
			t.Fatalf("ReadTail(from=%d): %v", from, err)
		}
		if tb.Records == 0 {
			break
		}
		if tb.Records != 1 {
			t.Fatalf("maxBytes=1 shipped %d records in one batch, want 1", tb.Records)
		}
		for _, rec := range decodeFrames(t, tb.Frames) {
			seqs = append(seqs, rec.seq)
		}
		from = tb.LastSeq
	}
	if len(seqs) != n {
		t.Fatalf("paginated walk got %d records, want %d", len(seqs), n)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("walk out of order at %d: seq %d", i, seq)
		}
	}
}

func TestReadTailLongPollWakesOnAppend(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	mustAdd(t, s.Corpus(), testModel(0))

	got := make(chan TailBatch, 1)
	errc := make(chan error, 1)
	go func() {
		tb, err := s.ReadTail(context.Background(), 1, 0, 30*time.Second)
		if err != nil {
			errc <- err
			return
		}
		got <- tb
	}()
	time.Sleep(50 * time.Millisecond) // let the reader reach the tip wait
	mustAdd(t, s.Corpus(), testModel(1))
	select {
	case tb := <-got:
		recs := decodeFrames(t, tb.Frames)
		if len(recs) != 1 || recs[0].id != testModel(1).ID {
			t.Fatalf("woken batch = %d records, want the new add", len(recs))
		}
	case err := <-errc:
		t.Fatalf("ReadTail: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll reader never woke on append")
	}
}

func TestReadTailLongPollTimesOutEmpty(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	mustAdd(t, s.Corpus(), testModel(0))
	t0 := time.Now()
	tb, err := s.ReadTail(context.Background(), 1, 0, 80*time.Millisecond)
	if err != nil || tb.Records != 0 {
		t.Fatalf("timeout poll: records=%d err=%v, want empty nil", tb.Records, err)
	}
	if time.Since(t0) < 60*time.Millisecond {
		t.Fatal("long poll returned before its wait elapsed")
	}
}

func TestReadTailHonorsContext(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := s.ReadTail(ctx, 0, 0, 30*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ReadTail: err = %v, want context.Canceled", err)
	}
}

// TestReadTailCompactionDecisionDeterministic is the pinned satellite:
// for every interleaving of compaction point and cursor position, the
// feed's answer is determined by the watermarks alone — ErrCompacted
// exactly when the cursor is below the compaction's captured seq, the
// precise surviving record range otherwise — never by which bytes happen
// to remain on disk.
func TestReadTailCompactionDecisionDeterministic(t *testing.T) {
	const n = 4
	for k := 0; k <= n; k++ {
		k := k
		t.Run(fmt.Sprintf("compactAfter%d", k), func(t *testing.T) {
			s := mustOpen(t, t.TempDir(), testOptions())
			defer s.Close()
			for i := 0; i < k; i++ {
				mustAdd(t, s.Corpus(), testModel(i))
			}
			if err := s.Snapshot(); err != nil {
				t.Fatalf("compact after %d: %v", k, err)
			}
			for i := k; i < n; i++ {
				mustAdd(t, s.Corpus(), testModel(i))
			}
			compacted := uint64(k) // the snapshot covered seqs 1..k
			last := uint64(n)
			for from := uint64(0); from <= last; from++ {
				tb, err := s.ReadTail(context.Background(), from, 0, 0)
				if from < compacted {
					if !errors.Is(err, ErrCompacted) {
						t.Fatalf("from=%d below horizon %d: err = %v, want ErrCompacted", from, compacted, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("from=%d at/above horizon %d: %v", from, compacted, err)
				}
				recs := decodeFrames(t, tb.Frames)
				if want := int(last - from); len(recs) != want {
					t.Fatalf("from=%d shipped %d records, want %d", from, len(recs), want)
				}
				for i, rec := range recs {
					if rec.seq != from+uint64(i)+1 {
						t.Fatalf("from=%d record %d has seq %d", from, i, rec.seq)
					}
				}
			}
		})
	}
}

// TestReadTailConcurrentCompaction races a tailing cursor against
// writers and compactions (run under -race in CI): the cursor applies
// records to a shadow set, falls back to the snapshot image whenever the
// horizon passes it, and must end holding exactly the corpus's ids.
func TestReadTailConcurrentCompaction(t *testing.T) {
	opts := testOptions()
	opts.CompactBytes = -1 // only explicit snapshots rotate
	s := mustOpen(t, t.TempDir(), opts)
	defer s.Close()

	const n = 30
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer
		defer wg.Done()
		for i := 0; i < n; i++ {
			mustAdd(t, s.Corpus(), testModel(i))
			if i%7 == 3 {
				mustRemove(t, s.Corpus(), testModel(i).ID)
			}
		}
	}()
	go func() { // compactor
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := s.Snapshot(); err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	shadow := make(map[string]bool)
	var cursor uint64
	deadline := time.After(60 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("cursor never converged")
		default:
		}
		tb, err := s.ReadTail(context.Background(), cursor, 0, 50*time.Millisecond)
		if errors.Is(err, ErrCompacted) {
			image, seq, ierr := s.SnapshotImage(context.Background())
			if ierr != nil {
				t.Fatalf("snapshot image: %v", ierr)
			}
			sf, derr := decodeSnapshotV2(image)
			if derr != nil {
				t.Fatalf("decode own image: %v", derr)
			}
			shadow = make(map[string]bool)
			for _, e := range sf.entries {
				shadow[e.id] = true
			}
			cursor = seq
			continue
		}
		if err != nil {
			t.Fatalf("ReadTail(from=%d): %v", cursor, err)
		}
		for _, rec := range decodeFrames(t, tb.Frames) {
			if rec.op == opAdd {
				shadow[rec.id] = true
			} else {
				delete(shadow, rec.id)
			}
		}
		if tb.Records > 0 {
			cursor = tb.LastSeq
		}
		// Converged when the writer is done and the cursor caught up.
		if cursor == s.LastSeq() && s.Corpus().Len() > 0 && cursorCaughtUp(s, cursor, n) {
			break
		}
	}
	wg.Wait()
	// One final drain after both goroutines stopped, then compare.
	for {
		tb, err := s.ReadTail(context.Background(), cursor, 0, 0)
		if errors.Is(err, ErrCompacted) {
			image, seq, ierr := s.SnapshotImage(context.Background())
			if ierr != nil {
				t.Fatalf("snapshot image: %v", ierr)
			}
			sf, derr := decodeSnapshotV2(image)
			if derr != nil {
				t.Fatalf("decode own image: %v", derr)
			}
			shadow = make(map[string]bool)
			for _, e := range sf.entries {
				shadow[e.id] = true
			}
			cursor = seq
			continue
		}
		if err != nil {
			t.Fatalf("final drain: %v", err)
		}
		if tb.Records == 0 {
			break
		}
		for _, rec := range decodeFrames(t, tb.Frames) {
			if rec.op == opAdd {
				shadow[rec.id] = true
			} else {
				delete(shadow, rec.id)
			}
		}
		cursor = tb.LastSeq
	}
	want := s.Corpus().IDs()
	if len(shadow) != len(want) {
		t.Fatalf("cursor shadow has %d ids, corpus has %d", len(shadow), len(want))
	}
	for _, id := range want {
		if !shadow[id] {
			t.Fatalf("cursor shadow missing %q", id)
		}
	}
}

// cursorCaughtUp reports that the writer finished its workload (LastSeq
// stable at the full count) — a cheap convergence check for the race
// test's main loop.
func cursorCaughtUp(s *Store, cursor uint64, n int) bool {
	return cursor >= uint64(n)
}

func TestSnapshotImageBootstrapsFreshStore(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), testOptions())
	defer primary.Close()
	var adds []*sbml.Model
	for i := 0; i < 6; i++ {
		m := testModel(i)
		adds = append(adds, m)
		mustAdd(t, primary.Corpus(), m)
	}
	mustRemove(t, primary.Corpus(), testModel(4).ID)

	image, seq, err := primary.SnapshotImage(context.Background())
	if err != nil {
		t.Fatalf("SnapshotImage: %v", err)
	}
	if seq != primary.LastSeq() {
		t.Fatalf("image seq %d, want %d", seq, primary.LastSeq())
	}

	fdir := t.TempDir()
	follower := mustOpen(t, fdir, testOptions())
	if err := follower.ApplySnapshotImage(image); err != nil {
		t.Fatalf("ApplySnapshotImage: %v", err)
	}
	if follower.LastSeq() != seq {
		t.Fatalf("follower seq %d after bootstrap, want %d", follower.LastSeq(), seq)
	}
	assertCorporaEquivalent(t, follower.Corpus(), primary.Corpus(), []*sbml.Model{adds[1], adds[3]})

	// Bootstrapped state is durable: a reopen recovers it bit-for-bit.
	if err := follower.Close(); err != nil {
		t.Fatalf("close follower: %v", err)
	}
	reopened := mustOpen(t, fdir, testOptions())
	defer reopened.Close()
	if reopened.LastSeq() != seq {
		t.Fatalf("reopened follower seq %d, want %d", reopened.LastSeq(), seq)
	}
	assertCorporaEquivalent(t, reopened.Corpus(), primary.Corpus(), []*sbml.Model{adds[1], adds[3]})
}

func TestApplySnapshotImageRefusesRegressAndGarbage(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), testOptions())
	defer primary.Close()
	mustAdd(t, primary.Corpus(), testModel(0))
	image, _, err := primary.SnapshotImage(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	follower := mustOpen(t, t.TempDir(), testOptions())
	defer follower.Close()
	for i := 0; i < 3; i++ {
		mustAdd(t, follower.Corpus(), testModel(10+i))
	}
	// The follower is already past the image's seq: applying it would
	// move history backwards.
	if err := follower.ApplySnapshotImage(image); err == nil {
		t.Fatal("ApplySnapshotImage accepted a seq regress")
	}
	if follower.Corpus().Len() != 3 {
		t.Fatalf("refused image still mutated the corpus: %d models", follower.Corpus().Len())
	}
	// Garbage and truncation are rejected whole.
	if err := follower.ApplySnapshotImage([]byte("not a snapshot")); err == nil {
		t.Fatal("ApplySnapshotImage accepted garbage")
	}
	corrupt := append([]byte(nil), image...)
	corrupt[len(corrupt)/2] ^= 0x40
	if err := follower.ApplySnapshotImage(corrupt); err == nil {
		t.Fatal("ApplySnapshotImage accepted a bit-flipped image")
	}
}

func TestReadOnlyGateRejectsLocalMutations(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	mustAdd(t, s.Corpus(), testModel(0))

	s.readOnly.Store(true)
	if _, err := s.Corpus().Add(testModel(1)); !errors.Is(err, ErrReadOnly) || !errors.Is(err, corpus.ErrPersist) {
		t.Fatalf("add on read-only store: err = %v, want ErrReadOnly wrapped in ErrPersist", err)
	}
	if _, err := s.Corpus().Remove(testModel(0).ID); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("remove on read-only store: err = %v, want ErrReadOnly", err)
	}
	// The replication apply path stays open: AppendBatch is the replica's
	// own writer and must not be gated.
	blob := []byte(sbml.WrapModel(testModel(1)).String())
	if err := s.AppendBatch([]BatchRecord{{Seq: s.LastSeq() + 1, ID: testModel(1).ID, SBML: blob}}); err != nil {
		t.Fatalf("AppendBatch on read-only store: %v", err)
	}
	// Promotion lifts the gate.
	s.readOnly.Store(false)
	mustAdd(t, s.Corpus(), testModel(2))
}

// TestServeReplicateProtocol drives the HTTP handlers directly: bad
// parameters answer machine-readable 400s, a compacted cursor answers
// 410 with the "compacted" code, and a good request carries the
// watermark headers plus decodable frames.
func TestServeReplicateProtocol(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	for i := 0; i < 3; i++ {
		mustAdd(t, s.Corpus(), testModel(i))
	}

	get := func(query string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		s.ServeReplicate(w, httptest.NewRequest("GET", "/v1/replicate?"+query, nil))
		return w
	}
	for _, bad := range []string{"from=abc", "from=-1", "max_bytes=0", "max_bytes=x", "wait_ms=-5", "wait_ms=x"} {
		if w := get(bad); w.Code != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", bad, w.Code)
		}
	}

	w := get("from=0&wait_ms=0&max_bytes=99999999") // oversize cap is silent
	if w.Code != http.StatusOK {
		t.Fatalf("good request: %d (%s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Replication-Acked-Seq"); got != "3" {
		t.Fatalf("acked header %q, want 3", got)
	}
	if f, l := w.Header().Get("X-Replication-First-Seq"), w.Header().Get("X-Replication-Last-Seq"); f != "1" || l != "3" {
		t.Fatalf("first/last headers %q/%q, want 1/3", f, l)
	}
	if recs := decodeFrames(t, w.Body.Bytes()); len(recs) != 3 {
		t.Fatalf("body decoded to %d records, want 3", len(recs))
	}

	// An at-tip non-blocking poll: 200, empty body, acked header present.
	if w = get("from=3&wait_ms=0"); w.Code != http.StatusOK || w.Body.Len() != 0 {
		t.Fatalf("tip poll: %d with %d body bytes", w.Code, w.Body.Len())
	}

	// Compact, then ask below the horizon.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	w = get("from=1&wait_ms=0")
	if w.Code != http.StatusGone {
		t.Fatalf("below-horizon request: %d, want 410", w.Code)
	}
	var e struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Code != "compacted" {
		t.Fatalf("410 body %q (err %v), want code \"compacted\"", w.Body.String(), err)
	}

	// The snapshot endpoint answers an installable image.
	sw := httptest.NewRecorder()
	s.ServeReplicateSnapshot(sw, httptest.NewRequest("GET", "/v1/replicate/snapshot", nil))
	if sw.Code != http.StatusOK {
		t.Fatalf("snapshot endpoint: %d", sw.Code)
	}
	if got := sw.Header().Get("X-Replication-Snapshot-Seq"); got != "3" {
		t.Fatalf("snapshot seq header %q, want 3", got)
	}
	follower := mustOpen(t, t.TempDir(), testOptions())
	defer follower.Close()
	if err := follower.ApplySnapshotImage(sw.Body.Bytes()); err != nil {
		t.Fatalf("image from endpoint: %v", err)
	}
	if follower.LastSeq() != 3 {
		t.Fatalf("bootstrapped seq %d, want 3", follower.LastSeq())
	}

	// A closed store fails both endpoints loudly rather than hanging.
	closed := mustOpen(t, t.TempDir(), testOptions())
	if err := closed.Close(); err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	closed.ServeReplicate(w, httptest.NewRequest("GET", "/v1/replicate?wait_ms=0", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("replicate on closed store: %d, want 500", w.Code)
	}
	w = httptest.NewRecorder()
	closed.ServeReplicateSnapshot(w, httptest.NewRequest("GET", "/v1/replicate/snapshot", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("snapshot on closed store: %d, want 500", w.Code)
	}
}

// TestReadTailIntervalPolicyShipsOnlyDurableRecords: under
// FsyncInterval the feed's watermark must trail the sync, not the
// write — otherwise a primary crash can lose records a follower already
// holds durably, and the follower is no longer a prefix of the restarted
// primary. Written-but-unsynced records stay unshippable until a timer
// sync (or a snapshot, which is durable by construction) covers them.
func TestReadTailIntervalPolicyShipsOnlyDurableRecords(t *testing.T) {
	opts := testOptions()
	opts.Fsync = FsyncInterval
	opts.FsyncEvery = time.Hour // no timer sync during the test
	s := mustOpen(t, t.TempDir(), opts)
	defer s.Close()
	for i := 0; i < 3; i++ {
		mustAdd(t, s.Corpus(), testModel(i))
	}
	// Written, acknowledged to the writer, but not yet durable: the feed
	// must not ship them.
	tb, err := s.ReadTail(context.Background(), 0, 0, 0)
	if err != nil || tb.Records != 0 || tb.AckedSeq != 0 {
		t.Fatalf("unsynced records shipped: records=%d acked=%d err=%v, want none", tb.Records, tb.AckedSeq, err)
	}
	// A snapshot is cold-path durable regardless of policy: the covered
	// records become shippable (and, having been compacted, a reader
	// below the horizon is deterministically sent to the snapshot).
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadTail(context.Background(), 0, 0, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("below-horizon read after durable snapshot: err = %v, want ErrCompacted", err)
	}
	tb, err = s.ReadTail(context.Background(), 3, 0, 0)
	if err != nil || tb.AckedSeq != 3 {
		t.Fatalf("post-snapshot watermark: acked=%d err=%v, want 3", tb.AckedSeq, err)
	}
	// New writes are again gated until the next sync point.
	mustAdd(t, s.Corpus(), testModel(10))
	tb, err = s.ReadTail(context.Background(), 3, 0, 0)
	if err != nil || tb.Records != 0 || tb.AckedSeq != 3 {
		t.Fatalf("unsynced post-snapshot record shipped: records=%d acked=%d err=%v", tb.Records, tb.AckedSeq, err)
	}

	// With a short interval, the fsync loop advances the watermark on its
	// own and the records ship.
	opts.FsyncEvery = 20 * time.Millisecond
	s2 := mustOpen(t, t.TempDir(), opts)
	defer s2.Close()
	for i := 0; i < 3; i++ {
		mustAdd(t, s2.Corpus(), testModel(i))
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		tb, err := s2.ReadTail(context.Background(), 0, 0, 0)
		if err != nil {
			t.Fatalf("ReadTail: %v", err)
		}
		if tb.Records == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fsync loop never made %d records shippable (got %d)", 3, tb.Records)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCloseWakesBlockedTailReaders: a long-polling follower blocked at
// the tip must observe Close immediately — not after its wait timer —
// or server shutdown stalls past the drain window.
func TestCloseWakesBlockedTailReaders(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	mustAdd(t, s.Corpus(), testModel(0))
	errc := make(chan error, 1)
	go func() {
		_, err := s.ReadTail(context.Background(), 1, 0, 5*time.Minute)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the reader reach the tip wait
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("woken reader returned %v, want a store-closed error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked tail reader slept through Close")
	}
}

// TestReadTailCursorResumesAcrossRotationAndInterleaving: the cached
// tail cursor is a pure optimization — walks that hit it, miss it
// (interleaved readers at different positions), or land in a compacted
// segment must all ship exactly the right records.
func TestReadTailCursorResumesAcrossRotationAndInterleaving(t *testing.T) {
	opts := testOptions()
	opts.CompactBytes = -1
	s := mustOpen(t, t.TempDir(), opts)
	defer s.Close()
	for i := 0; i < 5; i++ {
		mustAdd(t, s.Corpus(), testModel(i))
	}
	// Sequential walk primes the cursor at the tip.
	tb, err := s.ReadTail(context.Background(), 0, 0, 0)
	if err != nil || tb.LastSeq != 5 {
		t.Fatalf("prime walk: last=%d err=%v", tb.LastSeq, err)
	}
	// Rotation deletes the segment the cursor points into; the next read
	// must fall back cleanly and ship the post-rotation records.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		mustAdd(t, s.Corpus(), testModel(i))
	}
	tb, err = s.ReadTail(context.Background(), 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := decodeFrames(t, tb.Frames)
	if len(recs) != 3 || recs[0].seq != 6 || recs[2].seq != 8 {
		t.Fatalf("post-rotation read shipped %d records (first %d), want seqs [6 7 8]", len(recs), recs[0].seq)
	}
	// Interleaved readers at different positions: each gets exactly its
	// range, cursor hits or not.
	for _, from := range []uint64{6, 5, 7, 5, 8, 6} {
		tb, err := s.ReadTail(context.Background(), from, 0, 0)
		if err != nil {
			t.Fatalf("from=%d: %v", from, err)
		}
		recs := decodeFrames(t, tb.Frames)
		if want := int(8 - from); len(recs) != want {
			t.Fatalf("from=%d shipped %d records, want %d", from, len(recs), want)
		}
		for i, rec := range recs {
			if rec.seq != from+uint64(i)+1 {
				t.Fatalf("from=%d record %d has seq %d", from, i, rec.seq)
			}
		}
	}
}

// TestReplicaResyncFailureSurfacesInStatus: a primary whose feed says
// "compacted" but whose snapshot endpoint is broken leaves the follower
// retrying with the failure visible in Status.
func TestReplicaResyncFailureSurfacesInStatus(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replicate", func(w http.ResponseWriter, r *http.Request) {
		writeReplicateError(w, http.StatusGone, "compacted", "bootstrap from snapshot")
	})
	mux.HandleFunc("GET /v1/replicate/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeReplicateError(w, http.StatusInternalServerError, "internal", "disk on fire")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	follower := mustOpen(t, t.TempDir(), testOptions())
	defer follower.Close()
	rep, err := StartReplica(follower, ReplicaOptions{
		PrimaryURL: ts.URL,
		PollWait:   50 * time.Millisecond,
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := rep.Status()
		if !st.Connected && strings.Contains(st.LastError, "snapshot resync") {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("resync failure never surfaced: %+v", rep.Status())
}

// TestReplicaStopIdempotentAndStartValidation: Stop twice is safe, and
// StartReplica refuses a missing primary URL without gating the store.
func TestReplicaStopIdempotentAndStartValidation(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOptions())
	defer s.Close()
	if _, err := StartReplica(s, ReplicaOptions{}); err == nil {
		t.Fatal("StartReplica accepted an empty primary URL")
	}
	if s.readOnly.Load() {
		t.Fatal("failed StartReplica left the store read-only")
	}
	rep, err := StartReplica(s, fastReplicaOptions("http://127.0.0.1:9"))
	if err != nil {
		t.Fatal(err)
	}
	rep.Stop()
	rep.Stop() // must not panic or hang
	if !s.readOnly.Load() {
		t.Fatal("Stop lifted the read-only gate; only Promote may")
	}
	rep.Promote()
	if s.readOnly.Load() {
		t.Fatal("Promote left the gate down")
	}
}
