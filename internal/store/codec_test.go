package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"sbmlcompose/internal/core"
	"sbmlcompose/internal/sbml"
)

// Tests for the binary snapshot codec at the store level: the
// precompiled fast path must recover rankings byte-identical to the
// parse path, damage to derived state must degrade (never corrupt), and
// damage to canonical data must refuse to open. codec.go documents the
// split; this file pins it.

// buildSnapshotDir runs n models through a store and closes it, leaving
// a v2 snapshot (and an empty live segment) in dir.
func buildSnapshotDir(t *testing.T, dir string, n int) []*sbml.Model {
	t.Helper()
	s := mustOpen(t, dir, testOptions())
	var adds []*sbml.Model
	for i := 0; i < n; i++ {
		m := testModel(i)
		adds = append(adds, m)
		mustAdd(t, s.Corpus(), m)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return adds
}

func snapPath(dir string) string { return filepath.Join(dir, snapName) }

func mutateSnapshot(t *testing.T, dir string, mutate func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(snapPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath(dir), mutate(append([]byte(nil), data...)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBinarySnapshotRoundTrip pins the tentpole property: recovery from
// persisted keys (no XML parse at all) yields a corpus whose rankings
// and compositions are identical to the parse path's — checked against
// both a never-restarted reference and a RecoveryParseOnly reopen.
func TestBinarySnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	adds := buildSnapshotDir(t, dir, 12)
	ref := buildReference(t, testOptions().Corpus, adds, nil)
	queries := []*sbml.Model{testModel(2), testModel(40)}

	fast := mustOpen(t, dir, testOptions())
	if st := fast.Stats(); st.SnapshotPrecompiled != 12 || st.SnapshotParsed != 0 {
		t.Fatalf("fast path stats: %+v, want 12 precompiled / 0 parsed", st)
	}
	assertCorporaEquivalent(t, fast.Corpus(), ref, queries)
	if err := fast.Close(); err != nil {
		t.Fatal(err)
	}

	slowOpts := testOptions()
	slowOpts.RecoveryParseOnly = true
	slow := mustOpen(t, dir, slowOpts)
	if st := slow.Stats(); st.SnapshotParsed != 12 || st.SnapshotPrecompiled != 0 {
		t.Fatalf("RecoveryParseOnly stats: %+v, want 12 parsed / 0 precompiled", st)
	}
	assertCorporaEquivalent(t, slow.Corpus(), ref, queries)
	slow.Close()
}

// TestBinarySnapshotKeysDamageFallsBack flips the snapshot's final byte
// — inside the last entry's keys blob — and expects a clean open with
// exactly one entry downgraded to the parse path, results unchanged.
func TestBinarySnapshotKeysDamageFallsBack(t *testing.T) {
	dir := t.TempDir()
	adds := buildSnapshotDir(t, dir, 5)
	mutateSnapshot(t, dir, func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b })
	s := mustOpen(t, dir, testOptions())
	if st := s.Stats(); st.SnapshotParsed != 1 || st.SnapshotPrecompiled != 4 {
		t.Fatalf("stats after keys flip: %+v, want 1 parsed / 4 precompiled", st)
	}
	assertCorporaEquivalent(t, s.Corpus(), buildReference(t, testOptions().Corpus, adds, nil),
		[]*sbml.Model{testModel(1)})
	s.Close()
}

// TestBinarySnapshotTruncationRefusesToOpen sweeps every truncation
// length: a snapshot cut anywhere must fail with ErrCorruptSnapshot —
// the header's entry count and the per-entry framing leave no prefix
// that silently decodes as a smaller corpus.
func TestBinarySnapshotTruncationRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	buildSnapshotDir(t, dir, 3)
	data, err := os.ReadFile(snapPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 13
	}
	for cut := 0; cut < len(data); cut += stride {
		dir2 := t.TempDir()
		if err := os.WriteFile(snapPath(dir2), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir2, testOptions()); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("cut@%d: err = %v, want ErrCorruptSnapshot", cut, err)
		}
	}
}

// TestBinarySnapshotBitFlipSweep flips single bytes across the file.
// Every flip must either refuse to open (canonical data or framing
// damaged — the CRCs catch it) or open with results identical to the
// reference (the flip hit derived state and the entry fell back to the
// parse path). Nothing in between: a flip may cost speed, never truth.
func TestBinarySnapshotBitFlipSweep(t *testing.T) {
	dir := t.TempDir()
	adds := buildSnapshotDir(t, dir, 3)
	ref := buildReference(t, testOptions().Corpus, adds, nil)
	query := testModel(1)
	want := stateOf(t, ref, query)
	data, err := os.ReadFile(snapPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	stride := 7
	if testing.Short() {
		stride = 41
	}
	fellBack := 0
	for pos := 0; pos < len(data); pos += stride {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x5A
		dir2 := t.TempDir()
		if err := os.WriteFile(snapPath(dir2), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir2, testOptions())
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("flip@%d: err = %v, want ErrCorruptSnapshot", pos, err)
			}
			continue
		}
		if st := s.Stats(); st.SnapshotParsed > 0 {
			fellBack++
		}
		assertRecoveredEqualsPrefix(t, s, want, query, "flip@"+itoa(int64(pos)))
		s.Close()
	}
	if fellBack == 0 {
		t.Fatal("no flip exercised the keys-damage fallback path")
	}
}

// TestLegacyV1SnapshotStillOpens hand-writes an old-format (sbsnap-1
// gob) snapshot and expects recovery through the parse path, with the
// next snapshot upgrading the directory to the binary format.
func TestLegacyV1SnapshotStillOpens(t *testing.T) {
	adds := []*sbml.Model{testModel(0), testModel(1), testModel(2), testModel(3)}
	ref := buildReference(t, testOptions().Corpus, adds, nil)
	blobs := ref.DumpConsistent(nil)
	for i := range blobs {
		blobs[i].Keys = nil // old files carried canonical bytes only
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snapManifest{Version: snapVersionV1, LastSeq: 4, Models: blobs}); err != nil {
		t.Fatal(err)
	}
	file := []byte(snapMagicV1)
	file = binary.LittleEndian.AppendUint32(file, uint32(payload.Len()))
	file = binary.LittleEndian.AppendUint32(file, crc32.ChecksumIEEE(payload.Bytes()))
	file = append(file, payload.Bytes()...)
	dir := t.TempDir()
	if err := os.WriteFile(snapPath(dir), file, 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir, testOptions())
	st := s.Stats()
	if st.SnapshotModels != 4 || st.SnapshotParsed != 4 || st.SnapshotPrecompiled != 0 || st.SnapshotSeq != 4 {
		t.Fatalf("legacy recovery stats: %+v", st)
	}
	queries := []*sbml.Model{testModel(0), testModel(33)}
	assertCorporaEquivalent(t, s.Corpus(), ref, queries)
	if err := s.Close(); err != nil { // close-snapshot rewrites in v2
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOptions())
	if st := s2.Stats(); st.SnapshotPrecompiled != 4 || st.SnapshotParsed != 0 {
		t.Fatalf("post-upgrade stats: %+v, want all precompiled", st)
	}
	assertCorporaEquivalent(t, s2.Corpus(), ref, queries)
	s2.Close()
}

// TestFingerprintMismatchReparses reopens a snapshot under different
// match options: the persisted keys (derived under the old options) must
// be ignored wholesale and the corpus must rank exactly as one built
// from scratch under the new options.
func TestFingerprintMismatchReparses(t *testing.T) {
	dir := t.TempDir()
	adds := buildSnapshotDir(t, dir, 6)
	newOpts := testOptions()
	newOpts.Corpus.Match = core.Options{Semantics: core.NoSemantics}
	s := mustOpen(t, dir, newOpts)
	if st := s.Stats(); st.SnapshotParsed != 6 || st.SnapshotPrecompiled != 0 {
		t.Fatalf("stats under changed match options: %+v, want all parsed", st)
	}
	assertCorporaEquivalent(t, s.Corpus(), buildReference(t, newOpts.Corpus, adds, nil),
		[]*sbml.Model{testModel(3), testModel(50)})
	s.Close()
}

// TestSnapshotCoversWALInterleaving pins recovery when a binary snapshot
// and a WAL tail coexist: snapshot entries install precompiled, tail
// records (adds and removes past the snapshot's seq) replay through the
// parallel parse path, in order.
func TestSnapshotCoversWALInterleaving(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.NoSnapshotOnClose = true
	s := mustOpen(t, dir, opts)
	var adds []*sbml.Model
	for i := 0; i < 4; i++ {
		m := testModel(i)
		adds = append(adds, m)
		mustAdd(t, s.Corpus(), m)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Tail work past the snapshot: two more adds, one remove of a
	// snapshotted model, one remove of a tail model.
	for i := 4; i < 6; i++ {
		m := testModel(i)
		adds = append(adds, m)
		mustAdd(t, s.Corpus(), m)
	}
	mustRemove(t, s.Corpus(), adds[1].ID)
	mustRemove(t, s.Corpus(), adds[4].ID)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, opts)
	st := s2.Stats()
	if st.SnapshotPrecompiled != 4 || st.SnapshotParsed != 0 {
		t.Fatalf("snapshot stats: %+v, want 4 precompiled", st)
	}
	if st.WALAdds != 2 || st.WALRemoves != 2 {
		t.Fatalf("tail stats: %+v, want 2 adds / 2 removes", st)
	}
	ref := buildReference(t, opts.Corpus, adds, []string{adds[1].ID, adds[4].ID})
	assertCorporaEquivalent(t, s2.Corpus(), ref, []*sbml.Model{testModel(0), testModel(21)})
	s2.Close()
}

// corpusOptionsSanity guards the test setup itself: the fingerprint must
// actually differ between the two option sets the mismatch test uses.
func TestFingerprintTestOptionsDiffer(t *testing.T) {
	a := testOptions().Corpus.Match.MatchKeyFingerprint()
	b := core.Options{Semantics: core.NoSemantics}.MatchKeyFingerprint()
	if a == b {
		t.Fatal("test option sets share a fingerprint; mismatch test is vacuous")
	}
}
