package sim

// Benchmark hooks for cmd/benchfig: closures that execute exactly one inner
// -loop operation — an ODE derivative evaluation or an SSA propensity
// sweep — under the compiled engine and under the tree-walking reference,
// so BENCH_sim.json can record the speedup at the granularity the tentpole
// targets. Not part of the stable simulation API.

import (
	"math"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
)

// NewDerivBench returns closures that evaluate the full derivative vector
// once at a fixed state, for the compiled engine and the reference
// evaluator respectively.
func NewDerivBench(m *sbml.Model) (compiled, tree func() error, err error) {
	e, err := Compile(m)
	if err != nil {
		return nil, nil, err
	}
	rs := e.newRunState()
	rs.ensureODEBuffers()
	if err := rs.initODEState(); err != nil {
		return nil, nil, err
	}
	compiled = func() error { return rs.derivAt(0.5, rs.state, rs.dydt) }

	tm, err := compileTree(m)
	if err != nil {
		return nil, nil, err
	}
	state, err := tm.initialState()
	if err != nil {
		return nil, nil, err
	}
	tree = func() error {
		_, err := tm.derivatives(0.5, state)
		return err
	}
	return compiled, tree, nil
}

// NewPropensityBench returns closures that rebuild the evaluation
// environment and evaluate every reaction's propensity once, for both
// evaluators — one Gillespie step's worth of expression work.
func NewPropensityBench(m *sbml.Model) (compiled, tree func() error, err error) {
	e, err := Compile(m)
	if err != nil {
		return nil, nil, err
	}
	rs := e.newRunState()
	for i, s := range e.species {
		switch {
		case s.HasInitialAmount:
			rs.state[i] = math.Round(s.InitialAmount)
		case s.HasInitialConcentration:
			rs.state[i] = math.Round(s.InitialConcentration * 1000)
		}
	}
	compiled = func() error {
		_, err := rs.propensities(0.5)
		return err
	}

	tm, err := compileTree(m)
	if err != nil {
		return nil, nil, err
	}
	counts := make([]float64, len(tm.species))
	for i, s := range tm.species {
		switch {
		case s.HasInitialAmount:
			counts[i] = math.Round(s.InitialAmount)
		case s.HasInitialConcentration:
			counts[i] = math.Round(s.InitialConcentration * 1000)
		}
	}
	type lawCase struct {
		law    mathml.Expr
		locals map[string]float64
	}
	var laws []lawCase
	for _, r := range tm.model.Reactions {
		if r.KineticLaw == nil || r.KineticLaw.Math == nil {
			continue
		}
		lp := make(map[string]float64)
		for _, p := range r.KineticLaw.Parameters {
			if p.HasValue {
				lp[p.ID] = p.Value
			}
		}
		laws = append(laws, lawCase{law: r.KineticLaw.Math, locals: lp})
	}
	tree = func() error {
		env, err := tm.env(0.5, counts)
		if err != nil {
			return err
		}
		for _, lc := range laws {
			local := env
			if len(lc.locals) > 0 {
				vals := make(map[string]float64, len(env.Values)+len(lc.locals))
				for k, v := range env.Values {
					vals[k] = v
				}
				for k, v := range lc.locals {
					vals[k] = v
				}
				local = &mathml.MapEnv{Values: vals, Functions: tm.funcs}
			}
			if _, err := mathml.Eval(lc.law, local); err != nil {
				return err
			}
		}
		return nil
	}
	return compiled, tree, nil
}
