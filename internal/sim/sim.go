// Package sim simulates SBML models. The paper's evaluation relies on
// simulation twice: §4.1.2 compares plots of the composed and expected
// models, and §4.1.3 feeds time-series concentrations into a residual
// sum-of-squares comparison. The Monte Carlo model checker (§4.1.4) draws
// stochastic trajectories from the same models.
//
// Two simulators are provided over one compiled representation:
//
//   - ODE integration of the reaction-rate equations with a fixed-step
//     fourth-order Runge–Kutta method or an adaptive Runge–Kutta–Fehlberg
//     4(5) method, and
//   - Gillespie's direct-method stochastic simulation over molecule counts.
//
// Assignment rules are re-applied at every evaluation point, rate rules add
// derivative terms, and events fire on upward trigger crossings — with
// their assignments deferred when the event declares a delay. The SSA path
// ignores events (stochastic event semantics are out of the paper's scope).
//
// # Execution model
//
// SimulateODE and SimulateSSA run on a compiled engine (machine.go): the
// model's symbols are resolved once into a dense slot-indexed state vector,
// every kinetic law, rule, initial assignment and event expression is
// compiled to a mathml.Program, and stoichiometry is a precomputed sparse
// matrix — so the integrator and propensity inner loops are allocation-free
// and touch no maps. Compile once via Compile and reuse the Engine to
// amortize compilation across many runs (the model checker does exactly
// that). The historical tree-walking evaluator is retained as ReferenceODE
// and ReferenceSSA; the engine's trajectories are pinned bitwise to it by
// the randomized equivalence tests, and benchfig measures both so the
// speedup stays visible in BENCH_sim.json.
//
// Unlike the original evaluator, failures to evaluate an initial assignment
// or assignment rule are simulation errors rather than silently skipped
// updates (initial-assignment chains still get a best-effort first pass).
package sim

import (
	"fmt"

	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	// T0 and T1 bound the simulated interval; T1 must exceed T0.
	T0, T1 float64
	// Step is the output sampling interval (and the RK4 integration step);
	// zero defaults to (T1-T0)/100.
	Step float64
	// Adaptive selects the RKF45 adaptive integrator for ODE runs.
	Adaptive bool
	// Tolerance is the RKF45 local error tolerance; zero defaults to 1e-6.
	Tolerance float64
	// Seed seeds the stochastic simulator; runs with equal seeds are
	// identical.
	Seed int64
	// ScaleFactor converts concentrations to molecule counts for SSA when
	// species use initialConcentration (count = conc × scale). Zero
	// defaults to 1000.
	ScaleFactor float64
	// Workers caps the worker pool of multi-run drivers (EnsembleSSA,
	// mc2.Probability); 0 or less means GOMAXPROCS. Single-trajectory
	// simulation ignores it. Results are identical for every worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Step == 0 {
		o.Step = (o.T1 - o.T0) / 100
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	if o.ScaleFactor == 0 {
		o.ScaleFactor = 1000
	}
	return o
}

// SimulateODE integrates the model deterministically and returns the
// sampled concentrations of every species.
func SimulateODE(m *sbml.Model, opts Options) (*trace.Trace, error) {
	e, err := Compile(m)
	if err != nil {
		return nil, err
	}
	return e.ODE(opts)
}

// SimulateSSA runs Gillespie's direct method over molecule counts and
// returns counts sampled on the Options.Step grid. Species that specify an
// initialAmount start at that count; species with an initialConcentration
// start at round(concentration × ScaleFactor). The run is deterministic for
// a given Options.Seed.
func SimulateSSA(m *sbml.Model, opts Options) (*trace.Trace, error) {
	e, err := Compile(m)
	if err != nil {
		return nil, err
	}
	return e.SSA(opts)
}

// dynamic reports whether the species participates in the ODE state.
func dynamic(s *sbml.Species) bool { return !s.Constant && !s.BoundaryCondition }

func clampNonNegative(state []float64) {
	for i, v := range state {
		if v < 0 && v > -1e-9 {
			state[i] = 0
		}
	}
}

func checkInterval(opts Options) error {
	if opts.T1 <= opts.T0 {
		return fmt.Errorf("sim: T1 (%g) must exceed T0 (%g)", opts.T1, opts.T0)
	}
	return nil
}
