package sim

import (
	"fmt"
	"math"
	"math/rand"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/trace"
)

// SimulateSSA runs Gillespie's direct method over molecule counts and
// returns counts sampled on the Options.Step grid. Species that specify an
// initialAmount start at that count; species with an initialConcentration
// start at round(concentration × ScaleFactor). The run is deterministic for
// a given Options.Seed.
func SimulateSSA(m *sbml.Model, opts Options) (*trace.Trace, error) {
	opts = opts.withDefaults()
	if opts.T1 <= opts.T0 {
		return nil, fmt.Errorf("sim: T1 (%g) must exceed T0 (%g)", opts.T1, opts.T0)
	}
	c, err := compile(m)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	counts := make([]float64, len(c.species))
	for i, s := range c.species {
		switch {
		case s.HasInitialAmount:
			counts[i] = math.Round(s.InitialAmount)
		case s.HasInitialConcentration:
			counts[i] = math.Round(s.InitialConcentration * opts.ScaleFactor)
		}
	}

	names := make([]string, len(c.species))
	for i, s := range c.species {
		names[i] = s.ID
	}
	tr := trace.New(names)

	type change struct {
		idx   int
		delta float64
	}
	reactions := make([][]change, 0, len(c.model.Reactions))
	laws := make([]mathml.Expr, 0, len(c.model.Reactions))
	locals := make([]map[string]float64, 0, len(c.model.Reactions))
	for _, r := range c.model.Reactions {
		if r.KineticLaw == nil || r.KineticLaw.Math == nil {
			continue
		}
		var ch []change
		for _, sr := range r.Reactants {
			if idx, ok := c.index[sr.Species]; ok && dynamic(c.species[idx]) {
				st := sr.Stoichiometry
				if st == 0 {
					st = 1
				}
				ch = append(ch, change{idx, -st})
			}
		}
		for _, sr := range r.Products {
			if idx, ok := c.index[sr.Species]; ok && dynamic(c.species[idx]) {
				st := sr.Stoichiometry
				if st == 0 {
					st = 1
				}
				ch = append(ch, change{idx, st})
			}
		}
		reactions = append(reactions, ch)
		laws = append(laws, r.KineticLaw.Math)
		lp := make(map[string]float64)
		for _, p := range r.KineticLaw.Parameters {
			if p.HasValue {
				lp[p.ID] = p.Value
			}
		}
		locals = append(locals, lp)
	}

	propensity := func(i int, env *mathml.MapEnv) (float64, error) {
		if len(locals[i]) > 0 {
			vals := make(map[string]float64, len(env.Values)+len(locals[i]))
			for k, v := range env.Values {
				vals[k] = v
			}
			for k, v := range locals[i] {
				vals[k] = v
			}
			env = &mathml.MapEnv{Values: vals, Functions: c.funcs}
		}
		a, err := mathml.Eval(laws[i], env)
		if err != nil {
			return 0, err
		}
		if a < 0 || math.IsNaN(a) {
			a = 0
		}
		return a, nil
	}

	t := opts.T0
	nextSample := opts.T0
	appendSample := func() error {
		if err := tr.Append(nextSample, counts); err != nil {
			return err
		}
		nextSample += opts.Step
		return nil
	}
	if err := appendSample(); err != nil {
		return nil, err
	}

	props := make([]float64, len(laws))
	for t < opts.T1 {
		env := c.env(t, counts)
		var total float64
		for i := range laws {
			a, err := propensity(i, env)
			if err != nil {
				return nil, fmt.Errorf("sim: propensity: %w", err)
			}
			props[i] = a
			total += a
		}
		if total <= 0 {
			// System exhausted: flat-line remaining samples.
			for nextSample <= opts.T1+1e-12 {
				if err := appendSample(); err != nil {
					return nil, err
				}
			}
			break
		}
		// Time to next event ~ Exp(total).
		t += rng.ExpFloat64() / total
		for nextSample <= t && nextSample <= opts.T1+1e-12 {
			if err := appendSample(); err != nil {
				return nil, err
			}
		}
		if t >= opts.T1 {
			break
		}
		// Pick the reaction proportionally to its propensity.
		u := rng.Float64() * total
		chosen := 0
		for i, a := range props {
			if u < a {
				chosen = i
				break
			}
			u -= a
		}
		for _, ch := range reactions[chosen] {
			counts[ch.idx] += ch.delta
			if counts[ch.idx] < 0 {
				counts[ch.idx] = 0
			}
		}
	}
	// Fill any remaining samples (e.g. the final grid point).
	for nextSample <= opts.T1+1e-12 {
		if err := appendSample(); err != nil {
			return nil, err
		}
	}
	return tr, nil
}
