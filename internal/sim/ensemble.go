package sim

// Parallel multi-run driver. The engine compiles a model once; an ensemble
// then fans independent SSA trajectories out across a worker pool, each
// with its own runState and a consecutively-seeded RNG, so the result is
// identical for every worker count — the same scheme mc2.Probability uses.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/trace"
)

// workerCount resolves Options.Workers against runs.
func workerCount(workers, runs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunParallel executes fn(run) for run ∈ [0, runs) on a worker pool of the
// given size (≤0 means GOMAXPROCS) and returns the lowest-run-index error,
// so failures are as deterministic as the results themselves. It is the
// fan-out primitive shared by EnsembleSSA and mc2.Probability; fn must be
// safe for concurrent invocation across distinct run indexes.
func RunParallel(runs, workers int, fn func(run int) error) error {
	return RunParallelCtx(context.Background(), runs, workers, fn)
}

// RunParallelCtx is RunParallel honoring cancellation: workers check ctx
// before claiming each run and stop claiming once it is done, the pool
// always drains (no goroutine outlives the call), and a cancelled call
// returns ctx's error. Cancellation takes precedence over per-run errors —
// with runs above the first failure skipped, the serial-order error may
// not have been computed when the context fired. fn should itself pass ctx
// into long single runs (e.g. Engine.SSACtx) so cancellation lands inside
// a run, not just between runs. An uncancelled context behaves exactly
// like RunParallel.
func RunParallelCtx(ctx context.Context, runs, workers int, fn func(run int) error) error {
	errs := make([]error, runs)
	if workers = workerCount(workers, runs); workers == 1 {
		for i := 0; i < runs; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	// firstErr tracks the lowest run index that has failed so far. Runs
	// beyond it are skipped — once a failure is final, their results can't
	// matter — but runs below it still execute, so the error returned is
	// the serial order's regardless of scheduling.
	var firstErr atomic.Int64
	firstErr.Store(int64(runs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := next.Add(1) - 1
				if i >= int64(runs) {
					return
				}
				if i > firstErr.Load() {
					continue
				}
				if err := fn(int(i)); err != nil {
					errs[i] = err
					for {
						cur := firstErr.Load()
						if i >= cur || firstErr.CompareAndSwap(cur, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// EnsembleSSA runs `runs` stochastic simulations with consecutive seeds
// starting at opts.Seed — in parallel across opts.Workers workers — and
// returns the mean trajectory. The mean is accumulated in run order, so the
// result is bit-identical for every worker count.
func EnsembleSSA(m *sbml.Model, runs int, opts Options) (*trace.Trace, error) {
	return EnsembleSSACtx(context.Background(), m, runs, opts)
}

// EnsembleSSACtx is EnsembleSSA honoring cancellation; see
// Engine.EnsembleSSACtx.
func EnsembleSSACtx(ctx context.Context, m *sbml.Model, runs int, opts Options) (*trace.Trace, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("sim: ensemble runs must be positive")
	}
	e, err := Compile(m)
	if err != nil {
		return nil, err
	}
	return e.EnsembleSSACtx(ctx, runs, opts)
}

// EnsembleSSA is the engine form of the package-level EnsembleSSA.
func (e *Engine) EnsembleSSA(runs int, opts Options) (*trace.Trace, error) {
	return e.EnsembleSSACtx(context.Background(), runs, opts)
}

// EnsembleSSACtx is EnsembleSSA honoring cancellation: ctx is checked
// between runs by the worker pool and inside each run's event loop, the
// pool drains before the call returns, and a cancelled ensemble returns
// ctx's error with no partial mean. An uncancelled context produces a mean
// bit-identical to EnsembleSSA at every worker count.
func (e *Engine) EnsembleSSACtx(ctx context.Context, runs int, opts Options) (*trace.Trace, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("sim: ensemble runs must be positive")
	}
	traces := make([]*trace.Trace, runs)
	err := RunParallelCtx(ctx, runs, opts.Workers, func(i int) error {
		runOpts := opts
		runOpts.Seed = opts.Seed + int64(i)
		tr, err := e.SSACtx(ctx, runOpts)
		if err != nil {
			return err
		}
		traces[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Sequential reduction in run order keeps the mean deterministic.
	mean := trace.New(e.names)
	first := traces[0]
	row := make([]float64, len(e.names))
	for s := 0; s < first.Len(); s++ {
		for j := range row {
			row[j] = 0
		}
		for _, tr := range traces {
			if tr.Len() != first.Len() {
				return nil, fmt.Errorf("sim: ensemble runs sampled %d and %d points", first.Len(), tr.Len())
			}
			for j, v := range tr.Values[s] {
				row[j] += v
			}
		}
		for j := range row {
			row[j] /= float64(runs)
		}
		if err := mean.Append(first.Times[s], row); err != nil {
			return nil, err
		}
	}
	return mean, nil
}
