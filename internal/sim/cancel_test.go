package sim

// Cancellation tests for the engine's context-aware run paths: the ODE
// step loop, the SSA event loop (checked every ssaCtxCheckEvery events),
// and the multi-run worker pool, including goroutine-leak checks.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// countingCtx reports Canceled from the (n+1)-th Err() call on.
type countingCtx struct {
	mu        sync.Mutex
	remaining int
	done      chan struct{}
}

func newCountingCtx(n int) *countingCtx {
	return &countingCtx{remaining: n, done: make(chan struct{})}
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}       { return c.done }
func (c *countingCtx) Value(any) any               { return nil }

func (c *countingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func TestODECtxCancelsMidIntegration(t *testing.T) {
	e, err := Compile(decayModel(0.5, 100))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{T1: 10, Step: 0.01}
	// Budget 5: the run survives five step-boundary checks, then stops.
	if _, err := e.ODECtx(newCountingCtx(5), opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run ODECtx = %v, want context.Canceled", err)
	}
	// Pre-cancelled context: no work at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ODECtx(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ODECtx = %v, want context.Canceled", err)
	}
	// The engine is unaffected: a live run still matches an independent
	// engine bitwise.
	tr, err := e.ODECtx(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := Compile(decayModel(0.5, 100))
	want, err := e2.ODE(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Times) != len(want.Times) || tr.Values[len(tr.Values)-1][0] != want.Values[len(want.Values)-1][0] {
		t.Fatal("post-cancellation run diverged from fresh engine")
	}
}

// TestODECtxCancelsInsideSubstepStorm pins cancellation from inside the
// RKF45 sub-step loop. A very stiff decay under a tight tolerance drives
// the step controller to its floor (h·1e-6), where one output step costs
// on the order of a million sub-steps; ODECtx's between-steps check never
// runs during that storm, so the loop must check on its own.
func TestODECtxCancelsInsideSubstepStorm(t *testing.T) {
	e, err := Compile(decayModel(1e8, 1))
	if err != nil {
		t.Fatal(err)
	}
	storm := Options{T1: 1, Step: 1, Adaptive: true, Tolerance: 1e-14}
	// Sanity that the configuration actually storms: even a budget of a
	// thousand checks (~32k sub-steps) is exhausted inside the single
	// output step. Without this the assertions below would pass vacuously
	// on a non-stiff setup.
	if _, err := e.ODECtx(newCountingCtx(1000), storm); !errors.Is(err, context.Canceled) {
		t.Fatalf("storm with 1000-check budget: err = %v, want context.Canceled", err)
	}
	// A small budget cancels promptly mid-storm.
	if _, err := e.ODECtx(newCountingCtx(3), storm); !errors.Is(err, context.Canceled) {
		t.Fatalf("storm with 3-check budget: err = %v, want context.Canceled", err)
	}
	// Already-cancelled context: the adaptive path returns before any
	// integration work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ODECtx(ctx, storm); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled adaptive ODECtx = %v, want context.Canceled", err)
	}
	// The in-loop check must not perturb the arithmetic: an uncancelled
	// adaptive run is bitwise identical to a fresh engine's ODE.
	mild := Options{T1: 1, Step: 0.1, Adaptive: true, Tolerance: 1e-8}
	e2, err := Compile(decayModel(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.ODECtx(context.Background(), mild)
	if err != nil {
		t.Fatal(err)
	}
	e3, _ := Compile(decayModel(100, 1))
	want, err := e3.ODE(mild)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Times) != len(want.Times) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(got.Times), len(want.Times))
	}
	for i := range got.Values {
		for j := range got.Values[i] {
			if got.Values[i][j] != want.Values[i][j] {
				t.Fatalf("value [%d][%d] diverges: %v vs %v", i, j, got.Values[i][j], want.Values[i][j])
			}
		}
	}
}

func TestSSACtxCancelsInsideEventLoop(t *testing.T) {
	// A large initial population sustains ~1e4 Gillespie events, so the
	// every-1024-events check fires several times inside one run.
	e, err := Compile(decayModel(1.0, 1e4))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{T1: 50, Step: 25, Seed: 7}
	if _, err := e.SSACtx(newCountingCtx(3), opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run SSACtx = %v, want context.Canceled", err)
	}
	// Uncancelled runs are bitwise reproducible afterwards.
	a, err := e.SSACtx(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.SSA(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		for j := range a.Values[i] {
			if a.Values[i][j] != b.Values[i][j] {
				t.Fatalf("sample %d col %d: %v != %v after cancelled run", i, j, a.Values[i][j], b.Values[i][j])
			}
		}
	}
}

// TestRunParallelCtxCancelDrainsPool cancels a parallel fan-out mid-way
// and requires the pool to drain with no leaked goroutines and the
// context's error reported.
func TestRunParallelCtxCancelDrainsPool(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	err := func() error {
		return RunParallelCtx(ctx, 10000, 4, func(run int) error {
			select {
			case started <- struct{}{}:
				cancel() // fire cancellation from inside the first run
			default:
			}
			time.Sleep(50 * time.Microsecond)
			return nil
		})
	}()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunParallelCtx = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestEnsembleSSACtxCancelled(t *testing.T) {
	e, err := Compile(decayModel(1.0, 1e3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EnsembleSSACtx(ctx, 50, Options{T1: 20, Step: 10, Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled EnsembleSSACtx = %v, want context.Canceled", err)
	}
	// The engine still produces the deterministic mean afterwards.
	m1, err := e.EnsembleSSA(8, Options{T1: 5, Step: 1, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e.EnsembleSSA(8, Options{T1: 5, Step: 1, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Values {
		if m1.Values[i][0] != m2.Values[i][0] {
			t.Fatalf("ensemble mean differs across worker counts at sample %d", i)
		}
	}
}
