package sim

import (
	"math"
	"testing"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/trace"
)

// decayModel is A →(k) B with mass-action kinetics; A(t) = A0·e^(−kt).
func decayModel(k, a0 float64) *sbml.Model {
	m := sbml.NewModel("decay")
	m.Compartments = append(m.Compartments, &sbml.Compartment{ID: "cell", SpatialDimensions: 3, Size: 1, HasSize: true, Constant: true})
	m.Species = append(m.Species,
		&sbml.Species{ID: "A", Compartment: "cell", InitialConcentration: a0, HasInitialConcentration: true},
		&sbml.Species{ID: "B", Compartment: "cell", InitialConcentration: 0, HasInitialConcentration: true},
	)
	m.Parameters = append(m.Parameters, &sbml.Parameter{ID: "k", Value: k, HasValue: true, Constant: true})
	m.Reactions = append(m.Reactions, &sbml.Reaction{
		ID:         "r",
		Reactants:  []*sbml.SpeciesReference{{Species: "A", Stoichiometry: 1}},
		Products:   []*sbml.SpeciesReference{{Species: "B", Stoichiometry: 1}},
		KineticLaw: &sbml.KineticLaw{Math: mathml.MustParseInfix("k*A")},
	})
	return m
}

func TestODEFirstOrderDecayMatchesAnalytic(t *testing.T) {
	const k, a0 = 0.7, 2.0
	tr, err := SimulateODE(decayModel(k, a0), Options{T0: 0, T1: 5, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range tr.Times {
		want := a0 * math.Exp(-k*tm)
		got := tr.Values[i][tr.Column("A")]
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("A(%g) = %g, want %g", tm, got, want)
		}
	}
	// Mass conservation: A+B = A0 throughout.
	for i := range tr.Times {
		total := tr.Values[i][0] + tr.Values[i][1]
		if math.Abs(total-a0) > 1e-6 {
			t.Fatalf("mass not conserved at %g: %g", tr.Times[i], total)
		}
	}
}

func TestODEAdaptiveMatchesFixed(t *testing.T) {
	m := decayModel(1.2, 1)
	fixed, err := SimulateODE(m, Options{T0: 0, T1: 3, Step: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := SimulateODE(m, Options{T0: 0, T1: 3, Step: 0.05, Adaptive: true, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	rss, err := trace.TotalRSS(fixed, adaptive, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rss > 1e-8 {
		t.Errorf("fixed vs adaptive RSS = %g", rss)
	}
}

func TestODEReversibleEquilibrium(t *testing.T) {
	// A ⇌ B with k1 forward, k2 back: A_eq = k2/(k1+k2) × total.
	m := decayModel(0, 1)
	m.Parameters = []*sbml.Parameter{
		{ID: "k1", Value: 2, HasValue: true, Constant: true},
		{ID: "k2", Value: 1, HasValue: true, Constant: true},
	}
	m.Reactions = []*sbml.Reaction{{
		ID:         "rev",
		Reversible: true,
		Reactants:  []*sbml.SpeciesReference{{Species: "A", Stoichiometry: 1}},
		Products:   []*sbml.SpeciesReference{{Species: "B", Stoichiometry: 1}},
		KineticLaw: &sbml.KineticLaw{Math: mathml.MustParseInfix("k1*A - k2*B")},
	}}
	tr, err := SimulateODE(m, Options{T0: 0, T1: 20, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	last := tr.Values[tr.Len()-1]
	wantA := 1.0 / 3
	if math.Abs(last[tr.Column("A")]-wantA) > 1e-4 {
		t.Errorf("A_eq = %g, want %g", last[tr.Column("A")], wantA)
	}
}

func TestODEMichaelisMenten(t *testing.T) {
	m := decayModel(0, 10)
	m.Parameters = []*sbml.Parameter{
		{ID: "Vmax", Value: 1, HasValue: true, Constant: true},
		{ID: "Km", Value: 5, HasValue: true, Constant: true},
	}
	m.Reactions = []*sbml.Reaction{{
		ID:         "mm",
		Reactants:  []*sbml.SpeciesReference{{Species: "A", Stoichiometry: 1}},
		Products:   []*sbml.SpeciesReference{{Species: "B", Stoichiometry: 1}},
		KineticLaw: &sbml.KineticLaw{Math: mathml.MustParseInfix("Vmax*A/(Km+A)")},
	}}
	tr, err := SimulateODE(m, Options{T0: 0, T1: 1, Step: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	// At t=0+, d[A]/dt = −Vmax·10/15 = −2/3. Check the first step slope.
	slope := (tr.Values[1][0] - tr.Values[0][0]) / (tr.Times[1] - tr.Times[0])
	if math.Abs(slope+2.0/3) > 1e-3 {
		t.Errorf("initial MM slope = %g, want −0.667", slope)
	}
}

func TestODERateAndAssignmentRules(t *testing.T) {
	m := sbml.NewModel("rules")
	m.Compartments = append(m.Compartments, &sbml.Compartment{ID: "c", SpatialDimensions: 3, Size: 1, HasSize: true, Constant: true})
	m.Species = append(m.Species,
		&sbml.Species{ID: "X", Compartment: "c", InitialConcentration: 0, HasInitialConcentration: true},
		&sbml.Species{ID: "Y", Compartment: "c", InitialConcentration: 0, HasInitialConcentration: true},
	)
	m.Rules = append(m.Rules,
		&sbml.Rule{Kind: sbml.RateRule, Variable: "X", Math: mathml.N(2)},                        // dX/dt = 2
		&sbml.Rule{Kind: sbml.AssignmentRule, Variable: "Y", Math: mathml.MustParseInfix("X*3")}, // Y = 3X
	)
	tr, err := SimulateODE(m, Options{T0: 0, T1: 1, Step: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	last := tr.Values[tr.Len()-1]
	if math.Abs(last[tr.Column("X")]-2) > 1e-9 {
		t.Errorf("X(1) = %g, want 2", last[tr.Column("X")])
	}
	if math.Abs(last[tr.Column("Y")]-6) > 1e-9 {
		t.Errorf("Y(1) = %g, want 6", last[tr.Column("Y")])
	}
}

func TestODEEventFires(t *testing.T) {
	m := decayModel(1, 1)
	m.Species[1].Constant = false
	m.Events = append(m.Events, &sbml.Event{
		ID:      "reset",
		Trigger: mathml.MustParseInfix("A < 0.5"),
		Assignments: []*sbml.EventAssignment{
			{Variable: "B", Math: mathml.N(42)},
		},
	})
	tr, err := SimulateODE(m, Options{T0: 0, T1: 2, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// A crosses 0.5 at t = ln 2 ≈ 0.693; B jumps to 42 there and keeps
	// growing afterwards because the decay reaction still produces it.
	v, _ := tr.At("B", 1.0)
	if v < 42 || v > 43 {
		t.Errorf("B(1.0) = %g, want slightly above 42 after the event", v)
	}
	early, _ := tr.At("B", 0.4)
	if early >= 1 {
		t.Errorf("B(0.4) = %g; event fired too early", early)
	}
}

func TestODEFunctionDefinitionCall(t *testing.T) {
	m := decayModel(0, 10)
	m.FunctionDefinitions = append(m.FunctionDefinitions, &sbml.FunctionDefinition{
		ID:   "mm",
		Math: mathml.Lambda{Params: []string{"s", "v", "km"}, Body: mathml.MustParseInfix("v*s/(km+s)")},
	})
	m.Parameters = []*sbml.Parameter{
		{ID: "Vmax", Value: 1, HasValue: true, Constant: true},
		{ID: "Km", Value: 5, HasValue: true, Constant: true},
	}
	m.Reactions[0].KineticLaw = &sbml.KineticLaw{Math: mathml.MustParseInfix("mm(A, Vmax, Km)")}
	tr, err := SimulateODE(m, Options{T0: 0, T1: 0.5, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
}

func TestODELocalParametersShadowGlobals(t *testing.T) {
	m := decayModel(99, 1) // global k = 99
	m.Reactions[0].KineticLaw.Parameters = []*sbml.Parameter{
		{ID: "k", Value: 0.5, HasValue: true, Constant: true}, // local wins
	}
	tr, err := SimulateODE(m, Options{T0: 0, T1: 1, Step: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tr.At("A", 1)
	want := math.Exp(-0.5)
	if math.Abs(got-want) > 1e-4 {
		t.Errorf("A(1) = %g, want %g (local k)", got, want)
	}
}

func TestODEErrors(t *testing.T) {
	m := decayModel(1, 1)
	if _, err := SimulateODE(m, Options{T0: 1, T1: 1}); err == nil {
		t.Error("empty interval should fail")
	}
	bad := decayModel(1, 1)
	bad.Reactions[0].KineticLaw.Math = mathml.MustParseInfix("undefined_param*A")
	if _, err := SimulateODE(bad, Options{T0: 0, T1: 1}); err == nil {
		t.Error("unbound identifier should fail (validation or eval)")
	}
	invalid := decayModel(1, 1)
	invalid.Species[0].Compartment = "nowhere"
	if _, err := SimulateODE(invalid, Options{T0: 0, T1: 1}); err == nil {
		t.Error("invalid model should fail compile validation")
	}
}

func TestSSADeterministicPerSeed(t *testing.T) {
	m := decayModel(0.1, 0)
	m.Species[0].HasInitialConcentration = false
	m.Species[0].HasInitialAmount = true
	m.Species[0].InitialAmount = 500
	a, err := SimulateSSA(m, Options{T0: 0, T1: 10, Step: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSSA(m, Options{T0: 0, T1: 10, Step: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rss, err := trace.TotalRSS(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rss != 0 {
		t.Errorf("same seed should reproduce exactly, RSS = %g", rss)
	}
	c, err := SimulateSSA(m, Options{T0: 0, T1: 10, Step: 0.5, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	rss, _ = trace.TotalRSS(a, c, nil)
	if rss == 0 {
		t.Error("different seeds should differ")
	}
}

func TestSSAConservesTotalCount(t *testing.T) {
	m := decayModel(0.5, 0)
	m.Species[0].HasInitialConcentration = false
	m.Species[0].HasInitialAmount = true
	m.Species[0].InitialAmount = 300
	m.Species[1].HasInitialConcentration = false
	m.Species[1].HasInitialAmount = true
	m.Species[1].InitialAmount = 0
	tr, err := SimulateSSA(m, Options{T0: 0, T1: 20, Step: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Times {
		if total := tr.Values[i][0] + tr.Values[i][1]; total != 300 {
			t.Fatalf("count not conserved at %g: %g", tr.Times[i], total)
		}
	}
	// Everything eventually decays.
	last := tr.Values[tr.Len()-1]
	if last[tr.Column("A")] > 30 {
		t.Errorf("A(20) = %g, expected near-complete decay", last[tr.Column("A")])
	}
}

func TestSSAMeanApproximatesODE(t *testing.T) {
	// Law of large numbers: averaged SSA ≈ ODE for first-order decay.
	const n0 = 1000.0
	m := decayModel(0.3, 0)
	m.Species[0].HasInitialConcentration = false
	m.Species[0].HasInitialAmount = true
	m.Species[0].InitialAmount = n0
	const runs = 30
	sum := 0.0
	for seed := int64(0); seed < runs; seed++ {
		tr, err := SimulateSSA(m, Options{T0: 0, T1: 2, Step: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := tr.At("A", 2)
		sum += v
	}
	mean := sum / runs
	want := n0 * math.Exp(-0.3*2)
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("SSA mean A(2) = %g, ODE predicts %g", mean, want)
	}
}

func TestSSAScaleFactorForConcentrations(t *testing.T) {
	m := decayModel(0.1, 2.5) // concentration 2.5 → 2500 molecules at scale 1000
	tr, err := SimulateSSA(m, Options{T0: 0, T1: 0.001, Step: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Values[0][tr.Column("A")]; got != 2500 {
		t.Errorf("initial count = %g, want 2500", got)
	}
}
