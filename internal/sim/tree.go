package sim

// This file is the tree-walking reference evaluator: the original
// implementation that re-evaluates MathML ASTs through mathml.Eval against
// a map-backed environment rebuilt at every evaluation point. It is kept —
// verbatim in its arithmetic — for two jobs: the randomized equivalence
// harness pins the compiled engine's trajectories bitwise against it, and
// cmd/benchfig measures both so BENCH_sim.json records the speedup. The one
// deliberate behavioural change, mirrored in the engine: evaluation errors
// in initial assignments and assignment rules propagate as simulation
// errors instead of being silently discarded (initial assignments still get
// a best-effort first pass so chains can resolve).

import (
	"fmt"
	"math"
	"math/rand"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/trace"
)

// treeModel is the reference evaluator's flattened form of a model.
type treeModel struct {
	model   *sbml.Model
	species []*sbml.Species
	index   map[string]int // species id → state index
	consts  map[string]float64
	funcs   map[string]mathml.Lambda
	rate    []*sbml.Rule // rate rules, applied as extra derivatives
	assign  []*sbml.Rule // assignment rules, applied before evaluation
	events  []*sbml.Event
}

// compileTree validates and flattens the model for the reference path.
func compileTree(m *sbml.Model) (*treeModel, error) {
	if err := sbml.Check(m); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	c := &treeModel{
		model:  m,
		index:  make(map[string]int),
		consts: make(map[string]float64),
		funcs:  make(map[string]mathml.Lambda),
	}
	for _, f := range m.FunctionDefinitions {
		c.funcs[f.ID] = f.Math
	}
	for _, comp := range m.Compartments {
		size := 1.0
		if comp.HasSize {
			size = comp.Size
		}
		c.consts[comp.ID] = size
	}
	for _, p := range m.Parameters {
		if p.HasValue {
			c.consts[p.ID] = p.Value
		}
	}
	for _, s := range m.Species {
		c.index[s.ID] = len(c.species)
		c.species = append(c.species, s)
	}
	for _, r := range m.Rules {
		switch r.Kind {
		case sbml.RateRule:
			c.rate = append(c.rate, r)
		case sbml.AssignmentRule:
			c.assign = append(c.assign, r)
		}
	}
	c.events = m.Events
	return c, nil
}

// initialState returns the initial concentration vector (per species).
// Initial assignments run in two passes so simple chains resolve; errors
// remaining on the second pass abort the simulation.
func (c *treeModel) initialState() ([]float64, error) {
	state := make([]float64, len(c.species))
	vals := make(map[string]float64, len(c.consts))
	for k, v := range c.consts {
		vals[k] = v
	}
	for i, s := range c.species {
		switch {
		case s.HasInitialConcentration:
			state[i] = s.InitialConcentration
		case s.HasInitialAmount:
			vol := 1.0
			if comp := c.model.CompartmentByID(s.Compartment); comp != nil && comp.HasSize && comp.Size > 0 {
				vol = comp.Size
			}
			state[i] = s.InitialAmount / vol
		}
		vals[s.ID] = state[i]
	}
	// Initial assignments override attribute values.
	env := &mathml.MapEnv{Values: vals, Functions: c.funcs}
	for pass := 0; pass < 2; pass++ {
		for _, ia := range c.model.InitialAssignments {
			v, err := mathml.Eval(ia.Math, env)
			if err != nil {
				if pass > 0 {
					return nil, fmt.Errorf("sim: initial assignment for %q: %w", ia.Symbol, err)
				}
				continue
			}
			vals[ia.Symbol] = v
			if idx, ok := c.index[ia.Symbol]; ok {
				state[idx] = v
			}
		}
	}
	return state, nil
}

// env builds the evaluation environment for a state at time t, applying
// assignment rules. Rule evaluation errors are simulation errors.
func (c *treeModel) env(t float64, state []float64) (*mathml.MapEnv, error) {
	vals := make(map[string]float64, len(c.consts)+len(state)+1)
	for k, v := range c.consts {
		vals[k] = v
	}
	for i, s := range c.species {
		vals[s.ID] = state[i]
	}
	vals["time"] = t
	env := &mathml.MapEnv{Values: vals, Functions: c.funcs}
	for _, r := range c.assign {
		v, err := mathml.Eval(r.Math, env)
		if err != nil {
			return nil, fmt.Errorf("sim: assignment rule for %q: %w", r.Variable, err)
		}
		vals[r.Variable] = v
		if idx, ok := c.index[r.Variable]; ok {
			state[idx] = v
		}
	}
	return env, nil
}

// derivatives computes dstate/dt at (t, state).
func (c *treeModel) derivatives(t float64, state []float64) ([]float64, error) {
	env, err := c.env(t, state)
	if err != nil {
		return nil, err
	}
	d := make([]float64, len(state))
	for _, r := range c.model.Reactions {
		if r.KineticLaw == nil || r.KineticLaw.Math == nil {
			continue
		}
		// Law-local parameters shadow globals.
		local := env
		if len(r.KineticLaw.Parameters) > 0 {
			vals := make(map[string]float64, len(env.Values)+len(r.KineticLaw.Parameters))
			for k, v := range env.Values {
				vals[k] = v
			}
			for _, p := range r.KineticLaw.Parameters {
				if p.HasValue {
					vals[p.ID] = p.Value
				}
			}
			local = &mathml.MapEnv{Values: vals, Functions: c.funcs}
		}
		rate, err := mathml.Eval(r.KineticLaw.Math, local)
		if err != nil {
			return nil, fmt.Errorf("sim: reaction %q: %w", r.ID, err)
		}
		for _, sr := range r.Reactants {
			if idx, ok := c.index[sr.Species]; ok && dynamic(c.species[idx]) {
				st := sr.Stoichiometry
				if st == 0 {
					st = 1
				}
				d[idx] -= st * rate
			}
		}
		for _, sr := range r.Products {
			if idx, ok := c.index[sr.Species]; ok && dynamic(c.species[idx]) {
				st := sr.Stoichiometry
				if st == 0 {
					st = 1
				}
				d[idx] += st * rate
			}
		}
	}
	for _, r := range c.rate {
		v, err := mathml.Eval(r.Math, env)
		if err != nil {
			return nil, fmt.Errorf("sim: rate rule for %q: %w", r.Variable, err)
		}
		if idx, ok := c.index[r.Variable]; ok {
			d[idx] = v
		}
	}
	return d, nil
}

// pendingEvent is an event whose trigger has fired but whose assignments
// wait for its delay to elapse.
type pendingEvent struct {
	fireAt float64
	event  *sbml.Event
}

// fireEvents applies any event whose trigger switched from false to true.
// Events with a delay are queued on pending and executed once the clock
// passes trigger time + delay (assignment maths evaluated at execution
// time). prevTrig carries the previous trigger values; both it and pending
// are updated in place.
func (c *treeModel) fireEvents(t float64, state []float64, prevTrig []bool, pending *[]pendingEvent) error {
	if len(c.events) == 0 && len(*pending) == 0 {
		return nil
	}
	env, err := c.env(t, state)
	if err != nil {
		return err
	}
	// Execute due delayed events first.
	remaining := (*pending)[:0]
	for _, pe := range *pending {
		if pe.fireAt > t {
			remaining = append(remaining, pe)
			continue
		}
		if err := c.applyAssignments(pe.event, env, state); err != nil {
			return err
		}
		if env, err = c.env(t, state); err != nil { // assignments may feed later triggers
			return err
		}
	}
	*pending = remaining
	for i, e := range c.events {
		v, err := mathml.Eval(e.Trigger, env)
		if err != nil {
			return fmt.Errorf("sim: event trigger: %w", err)
		}
		now := v != 0
		if now && !prevTrig[i] {
			if e.Delay != nil {
				d, err := mathml.Eval(e.Delay, env)
				if err != nil {
					return fmt.Errorf("sim: event delay: %w", err)
				}
				if d > 0 {
					*pending = append(*pending, pendingEvent{fireAt: t + d, event: e})
					prevTrig[i] = now
					continue
				}
			}
			if err := c.applyAssignments(e, env, state); err != nil {
				return err
			}
			if env, err = c.env(t, state); err != nil {
				return err
			}
		}
		prevTrig[i] = now
	}
	return nil
}

func (c *treeModel) applyAssignments(e *sbml.Event, env *mathml.MapEnv, state []float64) error {
	for _, a := range e.Assignments {
		av, err := mathml.Eval(a.Math, env)
		if err != nil {
			return fmt.Errorf("sim: event assignment %q: %w", a.Variable, err)
		}
		if idx, ok := c.index[a.Variable]; ok {
			state[idx] = av
		} else {
			c.consts[a.Variable] = av
		}
	}
	return nil
}

// ReferenceODE integrates the model with the tree-walking evaluator. It is
// the semantic reference for Engine.ODE: same trajectories, bit for bit,
// only slower. New code should call SimulateODE.
func ReferenceODE(m *sbml.Model, opts Options) (*trace.Trace, error) {
	opts = opts.withDefaults()
	if err := checkInterval(opts); err != nil {
		return nil, err
	}
	c, err := compileTree(m)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(c.species))
	for i, s := range c.species {
		names[i] = s.ID
	}
	tr := trace.New(names)
	state, err := c.initialState()
	if err != nil {
		return nil, err
	}
	prevTrig := make([]bool, len(c.events))
	var pending []pendingEvent
	// Evaluate triggers once at T0 so events true from the start do not
	// fire spuriously.
	if err := c.fireEvents(opts.T0, state, prevTrig, &pending); err != nil {
		return nil, err
	}
	if _, err := c.env(opts.T0, state); err != nil { // refresh assignment-rule variables for output
		return nil, err
	}
	if err := tr.Append(opts.T0, state); err != nil {
		return nil, err
	}
	t := opts.T0
	for t < opts.T1-1e-12 {
		step := opts.Step
		if t+step > opts.T1 {
			step = opts.T1 - t
		}
		var err error
		if opts.Adaptive {
			state, err = c.rkf45Step(t, state, step, opts.Tolerance)
		} else {
			state, err = c.rk4Step(t, state, step)
		}
		if err != nil {
			return nil, err
		}
		t += step
		clampNonNegative(state)
		if err := c.fireEvents(t, state, prevTrig, &pending); err != nil {
			return nil, err
		}
		// Assignment-rule variables were last written at an intermediate
		// Runge–Kutta stage; recompute them at the accepted state before
		// sampling.
		if _, err := c.env(t, state); err != nil {
			return nil, err
		}
		if err := tr.Append(t, state); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// rk4Step advances one classic Runge–Kutta step.
func (c *treeModel) rk4Step(t float64, y []float64, h float64) ([]float64, error) {
	k1, err := c.derivatives(t, y)
	if err != nil {
		return nil, err
	}
	k2, err := c.derivatives(t+h/2, axpy(y, k1, h/2))
	if err != nil {
		return nil, err
	}
	k3, err := c.derivatives(t+h/2, axpy(y, k2, h/2))
	if err != nil {
		return nil, err
	}
	k4, err := c.derivatives(t+h, axpy(y, k3, h))
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(y))
	for i := range y {
		out[i] = y[i] + h/6*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
	}
	return out, nil
}

// rkf45Step advances from t to t+h using embedded RKF45 sub-steps with
// local error control.
func (c *treeModel) rkf45Step(t float64, y []float64, h, tol float64) ([]float64, error) {
	target := t + h
	sub := h
	cur := append([]float64(nil), y...)
	for t < target-1e-12 {
		if t+sub > target {
			sub = target - t
		}
		next, errEst, err := c.rkf45Once(t, cur, sub)
		if err != nil {
			return nil, err
		}
		if errEst <= tol || sub <= h*1e-6 {
			cur = next
			t += sub
			if errEst > 0 {
				sub = math.Min(h, 0.9*sub*math.Pow(tol/errEst, 0.2))
			}
			continue
		}
		sub = math.Max(h*1e-6, 0.9*sub*math.Pow(tol/errEst, 0.25))
	}
	return cur, nil
}

// rkf45Once takes one Fehlberg 4(5) step and returns the 5th-order solution
// plus an error estimate.
func (c *treeModel) rkf45Once(t float64, y []float64, h float64) ([]float64, float64, error) {
	k := make([][]float64, 6)
	var err error
	eval := func(dt float64, coeffs ...float64) ([]float64, error) {
		yy := append([]float64(nil), y...)
		for j, cf := range coeffs {
			if cf == 0 {
				continue
			}
			for i := range yy {
				yy[i] += h * cf * k[j][i]
			}
		}
		return c.derivatives(t+dt*h, yy)
	}
	if k[0], err = c.derivatives(t, y); err != nil {
		return nil, 0, err
	}
	if k[1], err = eval(1.0/4, 1.0/4); err != nil {
		return nil, 0, err
	}
	if k[2], err = eval(3.0/8, 3.0/32, 9.0/32); err != nil {
		return nil, 0, err
	}
	if k[3], err = eval(12.0/13, 1932.0/2197, -7200.0/2197, 7296.0/2197); err != nil {
		return nil, 0, err
	}
	if k[4], err = eval(1, 439.0/216, -8, 3680.0/513, -845.0/4104); err != nil {
		return nil, 0, err
	}
	if k[5], err = eval(1.0/2, -8.0/27, 2, -3544.0/2565, 1859.0/4104, -11.0/40); err != nil {
		return nil, 0, err
	}
	y5 := make([]float64, len(y))
	var errEst float64
	for i := range y {
		v5 := y[i] + h*(16.0/135*k[0][i]+6656.0/12825*k[2][i]+28561.0/56430*k[3][i]-9.0/50*k[4][i]+2.0/55*k[5][i])
		v4 := y[i] + h*(25.0/216*k[0][i]+1408.0/2565*k[2][i]+2197.0/4104*k[3][i]-1.0/5*k[4][i])
		y5[i] = v5
		if d := math.Abs(v5 - v4); d > errEst {
			errEst = d
		}
	}
	return y5, errEst, nil
}

func axpy(y, k []float64, h float64) []float64 {
	out := make([]float64, len(y))
	for i := range y {
		out[i] = y[i] + h*k[i]
	}
	return out
}

// ReferenceSSA runs Gillespie's direct method with the tree-walking
// evaluator: the semantic reference for Engine.SSA, reproducing identical
// trajectories for identical seeds. New code should call SimulateSSA.
func ReferenceSSA(m *sbml.Model, opts Options) (*trace.Trace, error) {
	opts = opts.withDefaults()
	if err := checkInterval(opts); err != nil {
		return nil, err
	}
	c, err := compileTree(m)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	counts := make([]float64, len(c.species))
	for i, s := range c.species {
		switch {
		case s.HasInitialAmount:
			counts[i] = math.Round(s.InitialAmount)
		case s.HasInitialConcentration:
			counts[i] = math.Round(s.InitialConcentration * opts.ScaleFactor)
		}
	}

	names := make([]string, len(c.species))
	for i, s := range c.species {
		names[i] = s.ID
	}
	tr := trace.New(names)

	type change struct {
		idx   int
		delta float64
	}
	reactions := make([][]change, 0, len(c.model.Reactions))
	laws := make([]mathml.Expr, 0, len(c.model.Reactions))
	locals := make([]map[string]float64, 0, len(c.model.Reactions))
	for _, r := range c.model.Reactions {
		if r.KineticLaw == nil || r.KineticLaw.Math == nil {
			continue
		}
		var ch []change
		for _, sr := range r.Reactants {
			if idx, ok := c.index[sr.Species]; ok && dynamic(c.species[idx]) {
				st := sr.Stoichiometry
				if st == 0 {
					st = 1
				}
				ch = append(ch, change{idx, -st})
			}
		}
		for _, sr := range r.Products {
			if idx, ok := c.index[sr.Species]; ok && dynamic(c.species[idx]) {
				st := sr.Stoichiometry
				if st == 0 {
					st = 1
				}
				ch = append(ch, change{idx, st})
			}
		}
		reactions = append(reactions, ch)
		laws = append(laws, r.KineticLaw.Math)
		lp := make(map[string]float64)
		for _, p := range r.KineticLaw.Parameters {
			if p.HasValue {
				lp[p.ID] = p.Value
			}
		}
		locals = append(locals, lp)
	}

	propensity := func(i int, env *mathml.MapEnv) (float64, error) {
		if len(locals[i]) > 0 {
			vals := make(map[string]float64, len(env.Values)+len(locals[i]))
			for k, v := range env.Values {
				vals[k] = v
			}
			for k, v := range locals[i] {
				vals[k] = v
			}
			env = &mathml.MapEnv{Values: vals, Functions: c.funcs}
		}
		a, err := mathml.Eval(laws[i], env)
		if err != nil {
			return 0, err
		}
		if a < 0 || math.IsNaN(a) {
			a = 0
		}
		return a, nil
	}

	t := opts.T0
	nextSample := opts.T0
	appendSample := func() error {
		if err := tr.Append(nextSample, counts); err != nil {
			return err
		}
		nextSample += opts.Step
		return nil
	}
	if err := appendSample(); err != nil {
		return nil, err
	}

	props := make([]float64, len(laws))
	for t < opts.T1 {
		env, err := c.env(t, counts)
		if err != nil {
			return nil, err
		}
		var total float64
		for i := range laws {
			a, err := propensity(i, env)
			if err != nil {
				return nil, fmt.Errorf("sim: propensity: %w", err)
			}
			props[i] = a
			total += a
		}
		if total <= 0 {
			// System exhausted: flat-line remaining samples.
			for nextSample <= opts.T1+1e-12 {
				if err := appendSample(); err != nil {
					return nil, err
				}
			}
			break
		}
		// Time to next event ~ Exp(total).
		t += rng.ExpFloat64() / total
		for nextSample <= t && nextSample <= opts.T1+1e-12 {
			if err := appendSample(); err != nil {
				return nil, err
			}
		}
		if t >= opts.T1 {
			break
		}
		// Pick the reaction proportionally to its propensity.
		u := rng.Float64() * total
		chosen := 0
		for i, a := range props {
			if u < a {
				chosen = i
				break
			}
			u -= a
		}
		for _, ch := range reactions[chosen] {
			counts[ch.idx] += ch.delta
			if counts[ch.idx] < 0 {
				counts[ch.idx] = 0
			}
		}
	}
	// Fill any remaining samples (e.g. the final grid point).
	for nextSample <= opts.T1+1e-12 {
		if err := appendSample(); err != nil {
			return nil, err
		}
	}
	return tr, nil
}
