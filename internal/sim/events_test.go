package sim

import (
	"testing"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
)

func TestODEDelayedEvent(t *testing.T) {
	// A decays from 1 with k=1; trigger A < 0.5 fires at t = ln2 ≈ 0.693,
	// but the assignment B := 42 is delayed by 1 time unit, so it must not
	// apply before t ≈ 1.693.
	m := decayModel(1, 1)
	m.Species[1].Constant = false
	m.Events = append(m.Events, &sbml.Event{
		ID:      "delayed_reset",
		Trigger: mathml.MustParseInfix("A < 0.5"),
		Delay:   mathml.N(1),
		Assignments: []*sbml.EventAssignment{
			{Variable: "B", Math: mathml.N(42)},
		},
	})
	tr, err := SimulateODE(m, Options{T0: 0, T1: 3, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := tr.At("B", 1.5) // after trigger, before delay elapses
	if before >= 42 {
		t.Errorf("B(1.5) = %g; delayed assignment applied too early", before)
	}
	after, _ := tr.At("B", 2.0)
	if after < 42 {
		t.Errorf("B(2.0) = %g; delayed assignment never applied", after)
	}
}

func TestODEZeroDelayBehavesImmediate(t *testing.T) {
	m := decayModel(1, 1)
	m.Species[1].Constant = false
	m.Events = append(m.Events, &sbml.Event{
		ID:      "zero_delay",
		Trigger: mathml.MustParseInfix("A < 0.5"),
		Delay:   mathml.N(0),
		Assignments: []*sbml.EventAssignment{
			{Variable: "B", Math: mathml.N(7)},
		},
	})
	tr, err := SimulateODE(m, Options{T0: 0, T1: 2, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tr.At("B", 0.8)
	if v < 7 {
		t.Errorf("B(0.8) = %g; zero-delay event should fire immediately", v)
	}
}

func TestODEDelayedEventAssignmentUsesFireTimeValues(t *testing.T) {
	// The assignment B := A is evaluated when the delay elapses, so it
	// captures A at fire time (≈ e^-2 at t=2), not at trigger time.
	m := decayModel(1, 1)
	m.Species[1].Constant = false
	m.Events = append(m.Events, &sbml.Event{
		ID:      "capture",
		Trigger: mathml.MustParseInfix("A < 0.5"), // t ≈ 0.693
		Delay:   mathml.MustParseInfix("1.3"),     // fires ≈ 1.993
		Assignments: []*sbml.EventAssignment{
			{Variable: "B", Math: mathml.S("A")},
		},
	})
	tr, err := SimulateODE(m, Options{T0: 0, T1: 3, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tr.At("B", 2.5)
	// At fire time A ≈ e^-2 ≈ 0.135 (well below the 0.5 trigger value).
	if v > 0.2 || v < 0.1 {
		t.Errorf("B after capture = %g, want ≈0.135 (fire-time A)", v)
	}
}
