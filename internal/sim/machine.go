package sim

// This file implements the compiled slot-based simulation engine. The
// tree-walking reference path (tree.go) rebuilds a map[string]float64
// environment and re-walks every MathML AST at every evaluation point; the
// Engine does that work once at compile time. Every symbol the model can
// ever bind — species, compartments, parameters, "time", kinetic-law-local
// parameters, rule and event targets — is assigned a dense slot in one
// []float64 state vector, every kinetic law, rule, initial assignment and
// event expression is compiled to a mathml.Program over those slots, and
// reaction stoichiometry is precomputed as sparse (slot, coefficient)
// lists. The RK4/RKF45 derivative loop and the Gillespie propensity loop
// then run with no map operations, no interface dispatch and no per-step
// allocation, while producing bitwise-identical trajectories to the
// reference evaluator (pinned by the randomized equivalence tests).
//
// An Engine is immutable after Compile and safe for concurrent use: all
// mutable run state (the slot vector, scratch stacks, integrator buffers,
// the event queue) lives in a per-run runState, which is what lets
// mc2.Probability fan one compiled model out across a worker pool.

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/trace"
)

// slotProg pairs a compiled expression with the slot its result lands in.
type slotProg struct {
	slot  int
	prog  *mathml.Program
	label string // target symbol, for error messages
}

// iaProg is an initial assignment. Compilation errors are deferred, not
// eager: the reference evaluator only surfaces them when the assignment is
// actually evaluated (the SSA path never evaluates initial assignments at
// all), and the engine must fail in exactly the same situations.
type iaProg struct {
	slot  int
	prog  *mathml.Program
	err   error
	label string
}

// stoich is one sparse stoichiometry entry: dstate[slot] += coeff × rate.
type stoich struct {
	slot  int
	coeff float64
}

// reactionProg is a compiled kinetic law plus its stoichiometry. changes
// preserves the reference order (reactants before products) so derivative
// accumulation is bitwise identical.
type reactionProg struct {
	id      string
	prog    *mathml.Program
	changes []stoich
}

// eventProg is a compiled event.
type eventProg struct {
	trigger *mathml.Program
	delay   *mathml.Program // nil when the event has none
	assigns []slotProg
}

// Engine is the compiled form of a model, shared by the ODE and SSA
// simulators and the Monte Carlo model checker.
type Engine struct {
	model   *sbml.Model
	species []*sbml.Species
	names   []string // species ids, in state order (trace columns)

	nSpecies int
	nSlots   int
	timeSlot int

	// base holds the attribute-derived value of every non-species slot
	// (compartment sizes, parameter values, law-local parameters); the
	// species region is unused. baseBound marks which slots hold a value at
	// all — a parameter without a value is a bound-checked slot whose reads
	// fail until a rule or event assigns it, exactly like the reference
	// evaluator's missing map entry. Both are copied per run because event
	// assignments may rewrite them.
	base      []float64
	baseBound []bool
	checked   bool

	ias       []iaProg
	assigns   []slotProg
	rates     []slotProg // rate rules in document order; slot -1 for non-species targets (evaluated, result dropped, as in the reference)
	reactions []reactionProg
	events    []eventProg
	// odeErr holds a deferred compile error from ODE-only machinery (rate
	// rules, events): the SSA path ignores those components, so a model
	// whose only defect lives there must still simulate stochastically.
	odeErr error

	maxStack int
}

// engineResolver implements mathml.Resolver with SBML's layered
// resolution: law-local parameters shadow everything, then "time", species,
// global parameters, compartments — the same precedence the reference
// environment realizes through map-overwrite order.
type engineResolver struct {
	binds       map[string]int
	locals      map[string]int
	funcs       map[string]mathml.Lambda
	staticBound []bool
}

func (r *engineResolver) Resolve(name string) (int, bool) {
	if r.locals != nil {
		if s, ok := r.locals[name]; ok {
			return s, true
		}
	}
	s, ok := r.binds[name]
	return s, ok
}

func (r *engineResolver) Function(name string) (mathml.Lambda, bool) {
	f, ok := r.funcs[name]
	return f, ok
}

func (r *engineResolver) NeedsBoundCheck(slot int) bool { return !r.staticBound[slot] }

// Compile validates and compiles the model. The model is not copied; the
// caller must not mutate it while the engine is in use.
func Compile(m *sbml.Model) (*Engine, error) {
	if err := sbml.Check(m); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	e := &Engine{model: m, nSpecies: len(m.Species)}

	// --- slot allocation ---
	nextSlot := 0
	alloc := func() int { n := nextSlot; nextSlot++; return n }

	e.species = make([]*sbml.Species, 0, len(m.Species))
	e.names = make([]string, 0, len(m.Species))
	speciesSlot := make(map[string]int, len(m.Species))
	for _, s := range m.Species {
		speciesSlot[s.ID] = alloc()
		e.species = append(e.species, s)
		e.names = append(e.names, s.ID)
	}
	compSlot := make(map[string]int, len(m.Compartments))
	for _, c := range m.Compartments {
		compSlot[c.ID] = alloc()
	}
	paramSlot := make(map[string]int, len(m.Parameters))
	for _, p := range m.Parameters {
		paramSlot[p.ID] = alloc()
	}
	e.timeSlot = alloc()

	type localKey struct{ reaction, param string }
	localSlot := make(map[localKey]int)
	for _, r := range m.Reactions {
		if r.KineticLaw == nil {
			continue
		}
		for _, p := range r.KineticLaw.Parameters {
			if p.HasValue {
				localSlot[localKey{r.ID, p.ID}] = alloc()
			}
		}
	}

	// Visible bindings in reference precedence: compartments, overridden by
	// parameters, overridden by species. The runtime view additionally
	// binds "time"; the initial-assignment view does not (the reference's
	// initial environment has no time either).
	iaBinds := make(map[string]int, nextSlot)
	for id, s := range compSlot {
		iaBinds[id] = s
	}
	for id, s := range paramSlot {
		iaBinds[id] = s
	}
	for id, s := range speciesSlot {
		iaBinds[id] = s
	}
	runBinds := make(map[string]int, len(iaBinds)+1)
	for id, s := range iaBinds {
		runBinds[id] = s
	}
	runBinds["time"] = e.timeSlot

	// Targets of rules, initial assignments and event assignments that name
	// no declared component get fresh slots: the reference creates their
	// map entries on first write, and reads before that write fail.
	ensure := func(name string) {
		if _, ok := runBinds[name]; ok {
			return
		}
		s := alloc()
		runBinds[name] = s
		if _, ok := iaBinds[name]; !ok {
			iaBinds[name] = s
		}
	}
	for _, ia := range m.InitialAssignments {
		ensure(ia.Symbol)
	}
	for _, r := range m.Rules {
		if r.Kind != sbml.AlgebraicRule {
			ensure(r.Variable)
		}
	}
	for _, ev := range m.Events {
		for _, a := range ev.Assignments {
			ensure(a.Variable)
		}
	}
	e.nSlots = nextSlot

	// --- base values and static boundness ---
	e.base = make([]float64, e.nSlots)
	e.baseBound = make([]bool, e.nSlots)
	for i := 0; i < e.nSpecies; i++ {
		e.baseBound[i] = true // species are always present in the environment
	}
	e.baseBound[e.timeSlot] = true
	for _, c := range m.Compartments {
		size := 1.0
		if c.HasSize {
			size = c.Size
		}
		e.base[compSlot[c.ID]] = size
		e.baseBound[compSlot[c.ID]] = true
	}
	for _, p := range m.Parameters {
		if p.HasValue {
			e.base[paramSlot[p.ID]] = p.Value
			e.baseBound[paramSlot[p.ID]] = true
		}
	}
	for _, r := range m.Reactions {
		if r.KineticLaw == nil {
			continue
		}
		for _, p := range r.KineticLaw.Parameters {
			if p.HasValue {
				s := localSlot[localKey{r.ID, p.ID}]
				e.base[s] = p.Value
				e.baseBound[s] = true
			}
		}
	}

	funcs := make(map[string]mathml.Lambda, len(m.FunctionDefinitions))
	for _, f := range m.FunctionDefinitions {
		funcs[f.ID] = f.Math
	}
	runRes := &engineResolver{binds: runBinds, funcs: funcs, staticBound: e.baseBound}
	iaRes := &engineResolver{binds: iaBinds, funcs: funcs, staticBound: e.baseBound}

	track := func(p *mathml.Program) *mathml.Program {
		if p.MaxStack() > e.maxStack {
			e.maxStack = p.MaxStack()
		}
		if p.Checked() {
			e.checked = true
		}
		return p
	}

	// --- programs ---
	for _, r := range m.Reactions {
		if r.KineticLaw == nil || r.KineticLaw.Math == nil {
			continue
		}
		res := runRes
		if len(r.KineticLaw.Parameters) > 0 {
			locals := make(map[string]int)
			for _, p := range r.KineticLaw.Parameters {
				if p.HasValue {
					locals[p.ID] = localSlot[localKey{r.ID, p.ID}]
				}
			}
			if len(locals) > 0 {
				res = &engineResolver{binds: runBinds, locals: locals, funcs: funcs, staticBound: e.baseBound}
			}
		}
		prog, err := mathml.Compile(r.KineticLaw.Math, res)
		if err != nil {
			return nil, fmt.Errorf("sim: reaction %q: %w", r.ID, err)
		}
		rp := reactionProg{id: r.ID, prog: track(prog)}
		addChange := func(sr *sbml.SpeciesReference, sign float64) {
			idx, ok := speciesSlot[sr.Species]
			if !ok || !dynamic(e.species[idx]) {
				return
			}
			st := sr.Stoichiometry
			if st == 0 {
				st = 1
			}
			rp.changes = append(rp.changes, stoich{slot: idx, coeff: sign * st})
		}
		for _, sr := range r.Reactants {
			addChange(sr, -1)
		}
		for _, sr := range r.Products {
			addChange(sr, 1)
		}
		e.reactions = append(e.reactions, rp)
	}

	for _, ia := range m.InitialAssignments {
		p := iaProg{slot: iaBinds[ia.Symbol], label: ia.Symbol}
		prog, err := mathml.Compile(ia.Math, iaRes)
		if err != nil {
			// Deferred: the reference only fails when it evaluates.
			p.err = fmt.Errorf("sim: initial assignment for %q: %w", ia.Symbol, err)
		} else {
			p.prog = track(prog)
		}
		e.ias = append(e.ias, p)
	}

	for _, r := range m.Rules {
		switch r.Kind {
		case sbml.AssignmentRule:
			prog, err := mathml.Compile(r.Math, runRes)
			if err != nil {
				return nil, fmt.Errorf("sim: assignment rule for %q: %w", r.Variable, err)
			}
			e.assigns = append(e.assigns, slotProg{slot: runBinds[r.Variable], prog: track(prog), label: r.Variable})
		case sbml.RateRule:
			// A non-species target contributes no derivative, but the
			// reference still evaluates its maths every step (and fails on
			// its errors), so it compiles to a slot of -1: evaluated,
			// result dropped.
			idx, ok := speciesSlot[r.Variable]
			if !ok {
				idx = -1
			}
			prog, err := mathml.Compile(r.Math, runRes)
			if err != nil {
				if e.odeErr == nil {
					e.odeErr = fmt.Errorf("sim: rate rule for %q: %w", r.Variable, err)
				}
				continue
			}
			e.rates = append(e.rates, slotProg{slot: idx, prog: track(prog), label: r.Variable})
		}
	}

	for _, ev := range m.Events {
		ep := eventProg{}
		ok := true
		deferErr := func(what string, err error) {
			if e.odeErr == nil {
				e.odeErr = fmt.Errorf("sim: event %s: %w", what, err)
			}
			ok = false
		}
		if prog, err := mathml.Compile(ev.Trigger, runRes); err != nil {
			deferErr("trigger", err)
		} else {
			ep.trigger = track(prog)
		}
		if ev.Delay != nil {
			if prog, err := mathml.Compile(ev.Delay, runRes); err != nil {
				deferErr("delay", err)
			} else {
				ep.delay = track(prog)
			}
		}
		for _, a := range ev.Assignments {
			if prog, err := mathml.Compile(a.Math, runRes); err != nil {
				deferErr(fmt.Sprintf("assignment %q", a.Variable), err)
			} else {
				ep.assigns = append(ep.assigns, slotProg{slot: runBinds[a.Variable], prog: track(prog), label: a.Variable})
			}
		}
		if ok {
			e.events = append(e.events, ep)
		}
	}
	return e, nil
}

// Model returns the compiled model.
func (e *Engine) Model() *sbml.Model { return e.model }

// SpeciesIDs returns the species ids in state (trace column) order. The
// slice is live; callers must not mutate it.
func (e *Engine) SpeciesIDs() []string { return e.names }

// pendingFire is a triggered event waiting out its delay.
type pendingFire struct {
	fireAt float64
	event  int
}

// runState is the mutable state of one simulation run. Engines are shared;
// runStates never are.
type runState struct {
	e     *Engine
	state []float64 // species vector: concentrations (ODE) or counts (SSA)
	vec   []float64 // full slot vector rebuilt at every evaluation point
	base  []float64 // run-local base (event assignments rewrite it)
	stack []float64

	bound, pbound []bool // nil unless the engine has checked loads

	dydt     []float64
	k        [6][]float64
	yy       []float64
	cur      []float64
	out      []float64
	props    []float64
	prevTrig []bool
	pending  []pendingFire
}

func (e *Engine) newRunState() *runState {
	rs := &runState{
		e:     e,
		state: make([]float64, e.nSpecies),
		vec:   make([]float64, e.nSlots),
		base:  append([]float64(nil), e.base...),
		stack: make([]float64, e.maxStack),
		props: make([]float64, len(e.reactions)),
	}
	if e.checked {
		rs.bound = make([]bool, e.nSlots)
		rs.pbound = append([]bool(nil), e.baseBound...)
	}
	return rs
}

// ensureODEBuffers allocates the integrator work arrays.
func (rs *runState) ensureODEBuffers() {
	n := rs.e.nSpecies
	for i := range rs.k {
		rs.k[i] = make([]float64, n)
	}
	rs.dydt = make([]float64, n)
	rs.yy = make([]float64, n)
	rs.cur = make([]float64, n)
	rs.out = make([]float64, n)
	rs.prevTrig = make([]bool, len(rs.e.events))
}

// refresh rebuilds the slot vector for (t, y) and applies assignment rules,
// mirroring the reference environment build: species from y, everything
// else from the (run-local) base, time, then rules in document order —
// whose results are written back into y when they target species, exactly
// as the reference writes through to its state slice.
func (rs *runState) refresh(t float64, y []float64) error {
	e := rs.e
	n := e.nSpecies
	copy(rs.vec[:n], y)
	copy(rs.vec[n:], rs.base[n:])
	rs.vec[e.timeSlot] = t
	if rs.bound != nil {
		copy(rs.bound, rs.pbound)
	}
	for i := range e.assigns {
		ar := &e.assigns[i]
		v, err := ar.prog.Eval(rs.vec, rs.stack, rs.bound)
		if err != nil {
			return fmt.Errorf("sim: assignment rule for %q: %w", ar.label, err)
		}
		rs.vec[ar.slot] = v
		if ar.slot < n {
			y[ar.slot] = v
		}
		if rs.bound != nil {
			rs.bound[ar.slot] = true
		}
	}
	return nil
}

// derivAt computes dy/dt at (t, y) into dydt. y may be an integrator
// work array; like the reference, assignment rules write through to it.
func (rs *runState) derivAt(t float64, y, dydt []float64) error {
	if err := rs.refresh(t, y); err != nil {
		return err
	}
	e := rs.e
	for i := range dydt {
		dydt[i] = 0
	}
	for i := range e.reactions {
		rx := &e.reactions[i]
		rate, err := rx.prog.Eval(rs.vec, rs.stack, rs.bound)
		if err != nil {
			return fmt.Errorf("sim: reaction %q: %w", rx.id, err)
		}
		for _, ch := range rx.changes {
			dydt[ch.slot] += ch.coeff * rate
		}
	}
	for i := range e.rates {
		rr := &e.rates[i]
		v, err := rr.prog.Eval(rs.vec, rs.stack, rs.bound)
		if err != nil {
			return fmt.Errorf("sim: rate rule for %q: %w", rr.label, err)
		}
		if rr.slot >= 0 {
			dydt[rr.slot] = v
		}
	}
	return nil
}

// applyEventAssignments executes one event's assignments against the
// current slot vector. Species targets write the species state; anything
// else rewrites the run-local base, which is what makes the assignment
// stick across later environment rebuilds (the reference writes its consts
// map). The slot vector itself is left stale — callers refresh afterwards,
// matching the reference's env rebuild.
func (rs *runState) applyEventAssignments(ep *eventProg) error {
	n := rs.e.nSpecies
	for i := range ep.assigns {
		a := &ep.assigns[i]
		v, err := a.prog.Eval(rs.vec, rs.stack, rs.bound)
		if err != nil {
			return fmt.Errorf("sim: event assignment %q: %w", a.label, err)
		}
		if a.slot < n {
			rs.state[a.slot] = v
		} else {
			rs.base[a.slot] = v
			if rs.pbound != nil {
				rs.pbound[a.slot] = true
			}
		}
	}
	return nil
}

// fireEvents applies due delayed events and any event whose trigger
// crossed false→true, replicating the reference scheduling precisely.
func (rs *runState) fireEvents(t float64) error {
	e := rs.e
	if len(e.events) == 0 && len(rs.pending) == 0 {
		return nil
	}
	if err := rs.refresh(t, rs.state); err != nil {
		return err
	}
	remaining := rs.pending[:0]
	for _, pe := range rs.pending {
		if pe.fireAt > t {
			remaining = append(remaining, pe)
			continue
		}
		if err := rs.applyEventAssignments(&e.events[pe.event]); err != nil {
			return err
		}
		if err := rs.refresh(t, rs.state); err != nil { // assignments may feed later triggers
			return err
		}
	}
	rs.pending = remaining
	for i := range e.events {
		ep := &e.events[i]
		v, err := ep.trigger.Eval(rs.vec, rs.stack, rs.bound)
		if err != nil {
			return fmt.Errorf("sim: event trigger: %w", err)
		}
		now := v != 0
		if now && !rs.prevTrig[i] {
			if ep.delay != nil {
				d, err := ep.delay.Eval(rs.vec, rs.stack, rs.bound)
				if err != nil {
					return fmt.Errorf("sim: event delay: %w", err)
				}
				if d > 0 {
					rs.pending = append(rs.pending, pendingFire{fireAt: t + d, event: i})
					rs.prevTrig[i] = now
					continue
				}
			}
			if err := rs.applyEventAssignments(ep); err != nil {
				return err
			}
			if err := rs.refresh(t, rs.state); err != nil {
				return err
			}
		}
		rs.prevTrig[i] = now
	}
	return nil
}

// initODEState computes the initial concentration vector: attribute values
// first, then initial assignments in two passes (the second pass resolves
// simple chains; its errors — including deferred compile errors — are the
// run's errors, where the first pass stays best-effort like the
// reference's historical behaviour on not-yet-resolvable chains).
func (rs *runState) initODEState() error {
	e := rs.e
	for i, s := range e.species {
		switch {
		case s.HasInitialConcentration:
			rs.state[i] = s.InitialConcentration
		case s.HasInitialAmount:
			vol := 1.0
			if comp := e.model.CompartmentByID(s.Compartment); comp != nil && comp.HasSize && comp.Size > 0 {
				vol = comp.Size
			}
			rs.state[i] = s.InitialAmount / vol
		}
	}
	if len(e.ias) == 0 {
		return nil
	}
	// Initial-assignment environment: species + base, no time binding.
	n := e.nSpecies
	copy(rs.vec[:n], rs.state)
	copy(rs.vec[n:], rs.base[n:])
	if rs.bound != nil {
		copy(rs.bound, rs.pbound)
	}
	for pass := 0; pass < 2; pass++ {
		for i := range e.ias {
			ia := &e.ias[i]
			if ia.prog == nil {
				if pass > 0 {
					return ia.err
				}
				continue
			}
			v, err := ia.prog.Eval(rs.vec, rs.stack, rs.bound)
			if err != nil {
				if pass > 0 {
					return fmt.Errorf("sim: initial assignment for %q: %w", ia.label, err)
				}
				continue
			}
			rs.vec[ia.slot] = v
			if rs.bound != nil {
				rs.bound[ia.slot] = true
			}
			if ia.slot < n {
				rs.state[ia.slot] = v
			}
		}
	}
	return nil
}

// sampleCapacity sizes the output trace from the sampling grid so the
// simulation loops append without per-sample allocation (the SSA boundary
// fill may run one or two past it; the trace grows amortized then). The
// hint is clamped: a pathological span/step ratio must not pre-allocate
// unbounded memory or overflow the int conversion.
func sampleCapacity(opts Options) int {
	if opts.Step <= 0 {
		return 0
	}
	const maxHint = 1 << 20
	samples := (opts.T1 - opts.T0) / opts.Step
	if !(samples >= 0) || samples > maxHint {
		return maxHint
	}
	return int(samples) + 2
}

// ODE integrates the model deterministically; see SimulateODE.
func (e *Engine) ODE(opts Options) (*trace.Trace, error) {
	return e.ODECtx(context.Background(), opts)
}

// ODECtx is ODE honoring cancellation: the integrator checks ctx between
// output steps, and the adaptive path additionally checks it inside the
// RKF45 sub-step loop (every rkf45CtxCheckEvery sub-steps), so even a
// sub-step storm — a stiff system driving the controller to its minimum
// step size for up to ~1e6 sub-steps per output step — returns ctx's
// error promptly. The run state is private to the call, so a cancelled
// run leaves nothing behind; an uncancelled context produces a trace
// bitwise identical to ODE's.
func (e *Engine) ODECtx(ctx context.Context, opts Options) (*trace.Trace, error) {
	opts = opts.withDefaults()
	if opts.T1 <= opts.T0 {
		return nil, fmt.Errorf("sim: T1 (%g) must exceed T0 (%g)", opts.T1, opts.T0)
	}
	if e.odeErr != nil {
		return nil, e.odeErr
	}
	rs := e.newRunState()
	rs.ensureODEBuffers()
	if err := rs.initODEState(); err != nil {
		return nil, err
	}
	tr := trace.NewWithCapacity(e.names, sampleCapacity(opts))
	// Evaluate triggers once at T0 so events true from the start do not
	// fire spuriously.
	if err := rs.fireEvents(opts.T0); err != nil {
		return nil, err
	}
	if err := rs.refresh(opts.T0, rs.state); err != nil { // assignment-rule variables for output
		return nil, err
	}
	if err := tr.Append(opts.T0, rs.state); err != nil {
		return nil, err
	}
	t := opts.T0
	for t < opts.T1-1e-12 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		step := opts.Step
		if t+step > opts.T1 {
			step = opts.T1 - t
		}
		var err error
		if opts.Adaptive {
			err = rs.rkf45StepCtx(ctx, t, step, opts.Tolerance)
		} else {
			err = rs.rk4Step(t, step)
		}
		if err != nil {
			return nil, err
		}
		t += step
		clampNonNegative(rs.state)
		if err := rs.fireEvents(t); err != nil {
			return nil, err
		}
		if err := rs.refresh(t, rs.state); err != nil {
			return nil, err
		}
		if err := tr.Append(t, rs.state); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// rk4Step advances rs.state by one classic Runge–Kutta step.
func (rs *runState) rk4Step(t, h float64) error {
	y := rs.state
	if err := rs.derivAt(t, y, rs.k[0]); err != nil {
		return err
	}
	for i := range y {
		rs.yy[i] = y[i] + h/2*rs.k[0][i]
	}
	if err := rs.derivAt(t+h/2, rs.yy, rs.k[1]); err != nil {
		return err
	}
	for i := range y {
		rs.yy[i] = y[i] + h/2*rs.k[1][i]
	}
	if err := rs.derivAt(t+h/2, rs.yy, rs.k[2]); err != nil {
		return err
	}
	for i := range y {
		rs.yy[i] = y[i] + h*rs.k[2][i]
	}
	if err := rs.derivAt(t+h, rs.yy, rs.k[3]); err != nil {
		return err
	}
	for i := range y {
		rs.out[i] = y[i] + h/6*(rs.k[0][i]+2*rs.k[1][i]+2*rs.k[2][i]+rs.k[3][i])
	}
	copy(rs.state, rs.out)
	return nil
}

// rkf45CtxCheckEvery is how many RKF45 sub-steps run between context
// checks. Rejections shrink the sub-step down to a floor of h*1e-6, and
// floor-size accepts advance t by only ~1e-6·h each, so one output step
// can cost on the order of a million sub-steps on a stiff system with a
// tight tolerance — far too long to wait for the between-steps check in
// ODECtx. The counter counts every loop iteration (rejections and
// floor accepts alike — both are storm modes); at 6 derivative
// evaluations per sub-step, a check every 32 is noise.
const rkf45CtxCheckEvery = 32

// rkf45Step advances rs.state from t to t+h with embedded RKF45 sub-steps.
// The arithmetic replicates the reference step-size controller exactly.
func (rs *runState) rkf45Step(t, h, tol float64) error {
	return rs.rkf45StepCtx(context.Background(), t, h, tol)
}

// rkf45StepCtx is rkf45Step honoring cancellation from inside the
// sub-step loop; see rkf45CtxCheckEvery. The step-size arithmetic is
// untouched, so an uncancelled context integrates bitwise identically.
func (rs *runState) rkf45StepCtx(ctx context.Context, t, h, tol float64) error {
	target := t + h
	sub := h
	copy(rs.cur, rs.state)
	for substeps := 0; t < target-1e-12; substeps++ {
		if substeps%rkf45CtxCheckEvery == rkf45CtxCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if t+sub > target {
			sub = target - t
		}
		errEst, err := rs.rkf45Once(t, rs.cur, sub)
		if err != nil {
			return err
		}
		if errEst <= tol || sub <= h*1e-6 {
			copy(rs.cur, rs.out)
			t += sub
			if errEst > 0 {
				sub = math.Min(h, 0.9*sub*math.Pow(tol/errEst, 0.2))
			}
			continue
		}
		sub = math.Max(h*1e-6, 0.9*sub*math.Pow(tol/errEst, 0.25))
	}
	copy(rs.state, rs.cur)
	return nil
}

// rkf45Once takes one Fehlberg 4(5) step from y, leaving the 5th-order
// solution in rs.out and returning the error estimate.
func (rs *runState) rkf45Once(t float64, y []float64, h float64) (float64, error) {
	k := &rs.k
	// stage assembles y + h·Σ cf·k[j] into rs.yy, in the reference's
	// coefficient order so the floating-point result is identical.
	stage := func(coeffs ...float64) {
		copy(rs.yy, y)
		for j, cf := range coeffs {
			if cf == 0 {
				continue
			}
			for i := range rs.yy {
				rs.yy[i] += h * cf * k[j][i]
			}
		}
	}
	if err := rs.derivAt(t, y, k[0]); err != nil {
		return 0, err
	}
	stage(1.0 / 4)
	if err := rs.derivAt(t+1.0/4*h, rs.yy, k[1]); err != nil {
		return 0, err
	}
	stage(3.0/32, 9.0/32)
	if err := rs.derivAt(t+3.0/8*h, rs.yy, k[2]); err != nil {
		return 0, err
	}
	stage(1932.0/2197, -7200.0/2197, 7296.0/2197)
	if err := rs.derivAt(t+12.0/13*h, rs.yy, k[3]); err != nil {
		return 0, err
	}
	stage(439.0/216, -8, 3680.0/513, -845.0/4104)
	if err := rs.derivAt(t+1*h, rs.yy, k[4]); err != nil {
		return 0, err
	}
	stage(-8.0/27, 2, -3544.0/2565, 1859.0/4104, -11.0/40)
	if err := rs.derivAt(t+1.0/2*h, rs.yy, k[5]); err != nil {
		return 0, err
	}
	var errEst float64
	for i := range y {
		v5 := y[i] + h*(16.0/135*k[0][i]+6656.0/12825*k[2][i]+28561.0/56430*k[3][i]-9.0/50*k[4][i]+2.0/55*k[5][i])
		v4 := y[i] + h*(25.0/216*k[0][i]+1408.0/2565*k[2][i]+2197.0/4104*k[3][i]-1.0/5*k[4][i])
		rs.out[i] = v5
		if d := math.Abs(v5 - v4); d > errEst {
			errEst = d
		}
	}
	return errEst, nil
}

// propensities evaluates every reaction's propensity at (t, counts) into
// rs.props, returning the total. Negative and NaN propensities clamp to
// zero like the reference.
func (rs *runState) propensities(t float64) (float64, error) {
	if err := rs.refresh(t, rs.state); err != nil {
		return 0, err
	}
	e := rs.e
	var total float64
	for i := range e.reactions {
		a, err := e.reactions[i].prog.Eval(rs.vec, rs.stack, rs.bound)
		if err != nil {
			return 0, fmt.Errorf("sim: propensity: %w", err)
		}
		if a < 0 || math.IsNaN(a) {
			a = 0
		}
		rs.props[i] = a
		total += a
	}
	return total, nil
}

// ssaCtxCheckEvery is how many Gillespie events an SSA run executes
// between context checks: frequent enough that cancellation lands within
// microseconds even on stiff models, rare enough that the counter is
// invisible next to the per-event propensity evaluation.
const ssaCtxCheckEvery = 1024

// SSA runs Gillespie's direct method; see SimulateSSA.
func (e *Engine) SSA(opts Options) (*trace.Trace, error) {
	return e.SSACtx(context.Background(), opts)
}

// SSACtx is SSA honoring cancellation: the event loop checks ctx every
// ssaCtxCheckEvery reaction events and returns ctx's error mid-run. An
// uncancelled context produces a trace bitwise identical to SSA's (the RNG
// consumption sequence is untouched).
func (e *Engine) SSACtx(ctx context.Context, opts Options) (*trace.Trace, error) {
	opts = opts.withDefaults()
	if opts.T1 <= opts.T0 {
		return nil, fmt.Errorf("sim: T1 (%g) must exceed T0 (%g)", opts.T1, opts.T0)
	}
	rs := e.newRunState()
	rng := rand.New(rand.NewSource(opts.Seed))
	for i, s := range e.species {
		switch {
		case s.HasInitialAmount:
			rs.state[i] = math.Round(s.InitialAmount)
		case s.HasInitialConcentration:
			rs.state[i] = math.Round(s.InitialConcentration * opts.ScaleFactor)
		}
	}
	tr := trace.NewWithCapacity(e.names, sampleCapacity(opts))
	t := opts.T0
	nextSample := opts.T0
	appendSample := func() error {
		if err := tr.Append(nextSample, rs.state); err != nil {
			return err
		}
		nextSample += opts.Step
		return nil
	}
	if err := appendSample(); err != nil {
		return nil, err
	}
	events := 0
	for t < opts.T1 {
		if events++; events >= ssaCtxCheckEvery {
			events = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		total, err := rs.propensities(t)
		if err != nil {
			return nil, err
		}
		if total <= 0 {
			// System exhausted: flat-line remaining samples.
			for nextSample <= opts.T1+1e-12 {
				if err := appendSample(); err != nil {
					return nil, err
				}
			}
			break
		}
		// Time to next event ~ Exp(total).
		t += rng.ExpFloat64() / total
		for nextSample <= t && nextSample <= opts.T1+1e-12 {
			if err := appendSample(); err != nil {
				return nil, err
			}
		}
		if t >= opts.T1 {
			break
		}
		// Pick the reaction proportionally to its propensity.
		u := rng.Float64() * total
		chosen := 0
		for i, a := range rs.props {
			if u < a {
				chosen = i
				break
			}
			u -= a
		}
		for _, ch := range e.reactions[chosen].changes {
			rs.state[ch.slot] += ch.coeff
			if rs.state[ch.slot] < 0 {
				rs.state[ch.slot] = 0
			}
		}
	}
	// Fill any remaining samples (e.g. the final grid point).
	for nextSample <= opts.T1+1e-12 {
		if err := appendSample(); err != nil {
			return nil, err
		}
	}
	return tr, nil
}
