package sim

import (
	"fmt"
	"math"
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/trace"
)

// tracesIdentical compares two traces bit for bit.
func tracesIdentical(t *testing.T, label string, a, b *trace.Trace) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: lengths differ: %d vs %d", label, a.Len(), b.Len())
	}
	for i := range a.Times {
		if math.Float64bits(a.Times[i]) != math.Float64bits(b.Times[i]) {
			t.Fatalf("%s: sample %d time %v vs %v", label, i, a.Times[i], b.Times[i])
		}
		for j := range a.Values[i] {
			if math.Float64bits(a.Values[i][j]) != math.Float64bits(b.Values[i][j]) {
				t.Fatalf("%s: sample %d, species %s: %v vs %v",
					label, i, a.Names[j], a.Values[i][j], b.Values[i][j])
			}
		}
	}
}

// TestEngineMatchesReferenceOnGeneratedModels is the randomized equivalence
// harness: sbmlgen-style generated models (kinetic-law variety, function
// definitions, rules, events, initial assignments) must produce bitwise
// identical ODE and SSA trajectories under the compiled engine and the
// tree-walking reference evaluator.
func TestEngineMatchesReferenceOnGeneratedModels(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		cfg := biomodels.Config{
			ID:             fmt.Sprintf("gen%d", seed),
			Nodes:          6 + int(seed)*3,
			Edges:          8 + int(seed)*4,
			Seed:           9000 + seed,
			VocabularySize: 120,
			Decorate:       true,
		}
		m := biomodels.Generate(cfg)
		opts := Options{T0: 0, T1: 2, Step: 0.05, Seed: 77 + seed}

		refODE, err1 := ReferenceODE(m, opts)
		engODE, err2 := SimulateODE(m, opts)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("model %s: ODE error mismatch: ref=%v engine=%v", cfg.ID, err1, err2)
		}
		if err1 == nil {
			tracesIdentical(t, cfg.ID+"/ode", refODE, engODE)
		}

		aopts := opts
		aopts.Adaptive = true
		refA, err1 := ReferenceODE(m, aopts)
		engA, err2 := SimulateODE(m, aopts)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("model %s: adaptive error mismatch: ref=%v engine=%v", cfg.ID, err1, err2)
		}
		if err1 == nil {
			tracesIdentical(t, cfg.ID+"/rkf45", refA, engA)
		}

		refSSA, err1 := ReferenceSSA(m, opts)
		engSSA, err2 := SimulateSSA(m, opts)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("model %s: SSA error mismatch: ref=%v engine=%v", cfg.ID, err1, err2)
		}
		if err1 == nil {
			tracesIdentical(t, cfg.ID+"/ssa", refSSA, engSSA)
		}
	}
}

// eventfulModel exercises delayed events, zero delays, assignment and rate
// rules, local parameters and a function definition all at once.
func eventfulModel() *sbml.Model {
	m := decayModel(1, 1)
	m.Species[1].Constant = false
	m.FunctionDefinitions = append(m.FunctionDefinitions, &sbml.FunctionDefinition{
		ID:   "scaled",
		Math: mathml.Lambda{Params: []string{"x", "f"}, Body: mathml.MustParseInfix("x*f")},
	})
	m.Parameters = append(m.Parameters,
		&sbml.Parameter{ID: "obs", Constant: false},
		&sbml.Parameter{ID: "drive", Value: 0.4, HasValue: true, Constant: true},
	)
	m.Species = append(m.Species,
		&sbml.Species{ID: "C", Compartment: "cell", InitialConcentration: 0.2, HasInitialConcentration: true},
		&sbml.Species{ID: "D", Compartment: "cell", InitialConcentration: 0, HasInitialConcentration: true},
	)
	m.Rules = append(m.Rules,
		&sbml.Rule{Kind: sbml.AssignmentRule, Variable: "obs", Math: mathml.MustParseInfix("scaled(A, 2) + B")},
		&sbml.Rule{Kind: sbml.RateRule, Variable: "C", Math: mathml.MustParseInfix("drive - C")},
		// A species-targeted assignment rule: its value writes through to
		// the state vector at every evaluation point in both evaluators.
		&sbml.Rule{Kind: sbml.AssignmentRule, Variable: "D", Math: mathml.MustParseInfix("A*0.5 + C")},
	)
	m.InitialAssignments = append(m.InitialAssignments, &sbml.InitialAssignment{
		Symbol: "A", Math: mathml.MustParseInfix("2*drive"),
	})
	m.Reactions[0].KineticLaw.Parameters = []*sbml.Parameter{
		{ID: "k", Value: 0.9, HasValue: true, Constant: true}, // shadows global k
	}
	m.Events = append(m.Events,
		&sbml.Event{
			ID:      "delayed",
			Trigger: mathml.MustParseInfix("A < 0.5"),
			Delay:   mathml.N(0.3),
			Assignments: []*sbml.EventAssignment{
				{Variable: "B", Math: mathml.MustParseInfix("A + 10")},
			},
		},
		&sbml.Event{
			ID:      "immediate",
			Trigger: mathml.MustParseInfix("C > 0.3"),
			Assignments: []*sbml.EventAssignment{
				{Variable: "drive", Math: mathml.N(0.1)},
			},
		},
	)
	return m
}

func TestEngineMatchesReferenceOnEventfulModel(t *testing.T) {
	m := eventfulModel()
	for _, adaptive := range []bool{false, true} {
		opts := Options{T0: 0, T1: 3, Step: 0.02, Adaptive: adaptive}
		ref, err := ReferenceODE(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := SimulateODE(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		tracesIdentical(t, fmt.Sprintf("eventful/adaptive=%v", adaptive), ref, eng)
	}
}

// TestEngineAssignmentRuleErrorPropagates pins the PR's deliberate change:
// evaluation failures in assignment rules and initial assignments are
// simulation errors in both evaluators, not silent skips.
func TestEngineAssignmentRuleErrorPropagates(t *testing.T) {
	m := decayModel(1, 1)
	// obs has no value and its rule divides by a parameter that is zero.
	m.Parameters = append(m.Parameters,
		&sbml.Parameter{ID: "obs", Constant: false},
		&sbml.Parameter{ID: "zero", Value: 0, HasValue: true, Constant: true},
	)
	m.Rules = append(m.Rules, &sbml.Rule{
		Kind: sbml.AssignmentRule, Variable: "obs", Math: mathml.MustParseInfix("A/zero"),
	})
	if _, err := ReferenceODE(m, Options{T0: 0, T1: 1, Step: 0.1}); err == nil {
		t.Error("reference: assignment-rule division by zero should abort the run")
	}
	if _, err := SimulateODE(m, Options{T0: 0, T1: 1, Step: 0.1}); err == nil {
		t.Error("engine: assignment-rule division by zero should abort the run")
	}

	ia := decayModel(1, 1)
	ia.Parameters = append(ia.Parameters, &sbml.Parameter{ID: "zero", Value: 0, HasValue: true, Constant: true})
	ia.InitialAssignments = append(ia.InitialAssignments, &sbml.InitialAssignment{
		Symbol: "A", Math: mathml.MustParseInfix("1/zero"),
	})
	if _, err := ReferenceODE(ia, Options{T0: 0, T1: 1, Step: 0.1}); err == nil {
		t.Error("reference: initial-assignment division by zero should abort the run")
	}
	if _, err := SimulateODE(ia, Options{T0: 0, T1: 1, Step: 0.1}); err == nil {
		t.Error("engine: initial-assignment division by zero should abort the run")
	}
}

// TestEngineNonSpeciesRateRuleParity pins that rate rules targeting
// non-species are still evaluated (the reference computes their maths every
// derivative step and fails on their errors) even though they contribute no
// derivative.
func TestEngineNonSpeciesRateRuleParity(t *testing.T) {
	m := decayModel(1, 1)
	m.Parameters = append(m.Parameters, &sbml.Parameter{ID: "p", Value: 1, HasValue: true, Constant: false})
	m.Rules = append(m.Rules, &sbml.Rule{
		Kind: sbml.RateRule, Variable: "p", Math: mathml.MustParseInfix("A*2"),
	})
	opts := Options{T0: 0, T1: 1, Step: 0.1}
	ref, err := ReferenceODE(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := SimulateODE(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	tracesIdentical(t, "non-species rate rule", ref, eng)

	bad := decayModel(1, 1)
	bad.Parameters = append(bad.Parameters,
		&sbml.Parameter{ID: "p", Value: 1, HasValue: true, Constant: false},
		&sbml.Parameter{ID: "zero", Value: 0, HasValue: true, Constant: true},
	)
	bad.Rules = append(bad.Rules, &sbml.Rule{
		Kind: sbml.RateRule, Variable: "p", Math: mathml.MustParseInfix("1/zero"),
	})
	if _, err := ReferenceODE(bad, opts); err == nil {
		t.Error("reference: failing non-species rate rule should abort")
	}
	if _, err := SimulateODE(bad, opts); err == nil {
		t.Error("engine: failing non-species rate rule should abort")
	}
}

// TestEngineInitialAssignmentChainsResolve keeps the two-pass grace period:
// an assignment referencing a later assignment's symbol must still resolve.
func TestEngineInitialAssignmentChainsResolve(t *testing.T) {
	m := decayModel(1, 1)
	m.Parameters = append(m.Parameters,
		&sbml.Parameter{ID: "p1", Constant: true},
		&sbml.Parameter{ID: "p2", Constant: true},
	)
	m.InitialAssignments = append(m.InitialAssignments,
		&sbml.InitialAssignment{Symbol: "A", Math: mathml.MustParseInfix("p1 + 1")}, // needs p1, set below
		&sbml.InitialAssignment{Symbol: "p1", Math: mathml.MustParseInfix("3")},
	)
	ref, err := ReferenceODE(m, Options{T0: 0, T1: 1, Step: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := SimulateODE(m, Options{T0: 0, T1: 1, Step: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Values[0][eng.Column("A")]; got != 4 {
		t.Errorf("A(0) = %g, want 4 (chained initial assignment)", got)
	}
	tracesIdentical(t, "ia-chain", ref, eng)
	_ = m
	_ = ref
}

// TestEngineInnerLoopsAllocationFree verifies the tentpole's core claim
// with testing.AllocsPerRun: one ODE derivative evaluation, one full RK4
// step, and one SSA propensity refresh perform zero allocations.
func TestEngineInnerLoopsAllocationFree(t *testing.T) {
	m := biomodels.Generate(biomodels.Config{
		ID: "alloc", Nodes: 25, Edges: 40, Seed: 4242, VocabularySize: 100, Decorate: true,
	})
	e, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}

	rs := e.newRunState()
	rs.ensureODEBuffers()
	if err := rs.initODEState(); err != nil {
		t.Fatal(err)
	}
	if err := rs.derivAt(0, rs.state, rs.dydt); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(200, func() {
		if err := rs.derivAt(0.5, rs.state, rs.dydt); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("derivative evaluation allocates %v per call, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		if err := rs.rk4Step(0.5, 0.01); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("RK4 step allocates %v per call, want 0", a)
	}

	ssa := e.newRunState()
	for i, s := range e.species {
		if s.HasInitialConcentration {
			ssa.state[i] = math.Round(s.InitialConcentration * 1000)
		}
	}
	if a := testing.AllocsPerRun(200, func() {
		if _, err := ssa.propensities(0.5); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("SSA propensity step allocates %v per call, want 0", a)
	}
}

// TestEnsembleSSADeterministicAcrossWorkers pins worker-count invariance of
// the parallel multi-run driver.
func TestEnsembleSSADeterministicAcrossWorkers(t *testing.T) {
	m := decayModel(0.4, 0)
	m.Species[0].HasInitialConcentration = false
	m.Species[0].HasInitialAmount = true
	m.Species[0].InitialAmount = 200
	var base *trace.Trace
	for _, workers := range []int{1, 2, 3, 8} {
		opts := Options{T0: 0, T1: 5, Step: 0.5, Seed: 11, Workers: workers}
		mean, err := EnsembleSSA(m, 12, opts)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = mean
			continue
		}
		tracesIdentical(t, fmt.Sprintf("ensemble workers=%d", workers), base, mean)
	}
}

// TestEngineReuseAcrossRuns checks that one compiled engine supports many
// runs without cross-run contamination (event assignments rewrite run-local
// state only).
func TestEngineReuseAcrossRuns(t *testing.T) {
	m := eventfulModel()
	e, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{T0: 0, T1: 3, Step: 0.02}
	first, err := e.ODE(opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.ODE(opts)
	if err != nil {
		t.Fatal(err)
	}
	tracesIdentical(t, "engine reuse", first, second)
}

func BenchmarkODECompiled(b *testing.B) {
	m := biomodels.Generate(biomodels.Config{ID: "bench", Nodes: 40, Edges: 70, Seed: 5, VocabularySize: 100, Decorate: true})
	e, err := Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{T0: 0, T1: 1, Step: 0.01}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.ODE(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkODEReference(b *testing.B) {
	m := biomodels.Generate(biomodels.Config{ID: "bench", Nodes: 40, Edges: 70, Seed: 5, VocabularySize: 100, Decorate: true})
	opts := Options{T0: 0, T1: 1, Step: 0.01}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReferenceODE(m, opts); err != nil {
			b.Fatal(err)
		}
	}
}
