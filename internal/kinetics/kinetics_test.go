package kinetics

import (
	"math"
	"testing"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
)

func speciesSet(ids ...string) func(string) bool {
	set := make(map[string]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(id string) bool { return set[id] }
}

func rxn(reversible bool, reactants, products []*sbml.SpeciesReference) *sbml.Reaction {
	return &sbml.Reaction{ID: "r", Reversible: reversible, Reactants: reactants, Products: products}
}

func ref(id string, st float64) *sbml.SpeciesReference {
	return &sbml.SpeciesReference{Species: id, Stoichiometry: st}
}

func TestMassActionFigure10(t *testing.T) {
	// Figure 10: A →(k1) B has mass action kinetics k1[A].
	r := rxn(false, []*sbml.SpeciesReference{ref("A", 1)}, []*sbml.SpeciesReference{ref("B", 1)})
	law := MassActionLaw(r, "k1", "")
	want := mathml.MustParseInfix("k1*A")
	if !mathml.PatternEqual(law, want, nil) {
		t.Errorf("law = %s, want k1*A", mathml.FormatInfix(law))
	}
}

func TestMassActionFigure11Bimolecular(t *testing.T) {
	// Figure 11: A + B →(k1) C has kinetics k1[A][B].
	r := rxn(false, []*sbml.SpeciesReference{ref("A", 1), ref("B", 1)}, []*sbml.SpeciesReference{ref("C", 1)})
	law := MassActionLaw(r, "k1", "")
	if !mathml.PatternEqual(law, mathml.MustParseInfix("k1*A*B"), nil) {
		t.Errorf("law = %s, want k1*A*B", mathml.FormatInfix(law))
	}
}

func TestMassActionFigure11Reversible(t *testing.T) {
	// Figure 11: A ⇌ B with k1 forward, k2 reverse: k1[A] − k2[B].
	r := rxn(true, []*sbml.SpeciesReference{ref("A", 1)}, []*sbml.SpeciesReference{ref("B", 1)})
	law := MassActionLaw(r, "k1", "k2")
	if !mathml.PatternEqual(law, mathml.MustParseInfix("k1*A - k2*B"), nil) {
		t.Errorf("law = %s, want k1*A - k2*B", mathml.FormatInfix(law))
	}
}

func TestMassActionStoichiometry(t *testing.T) {
	// 2A → B unrolls to k·A·A.
	r := rxn(false, []*sbml.SpeciesReference{ref("A", 2)}, []*sbml.SpeciesReference{ref("B", 1)})
	law := MassActionLaw(r, "k", "")
	if !mathml.PatternEqual(law, mathml.MustParseInfix("k*A*A"), nil) {
		t.Errorf("law = %s, want k*A*A", mathml.FormatInfix(law))
	}
	// Large stoichiometry uses power form.
	r = rxn(false, []*sbml.SpeciesReference{ref("A", 6)}, nil)
	law = MassActionLaw(r, "k", "")
	if !mathml.PatternEqual(law, mathml.MustParseInfix("k*A^6"), nil) {
		t.Errorf("law = %s, want k*A^6", mathml.FormatInfix(law))
	}
}

func TestZerothOrderLaw(t *testing.T) {
	// 0 → X: rate is the bare constant.
	r := rxn(false, nil, []*sbml.SpeciesReference{ref("X", 1)})
	law := MassActionLaw(r, "k0", "")
	if !mathml.PatternEqual(law, mathml.S("k0"), nil) {
		t.Errorf("law = %s, want k0", mathml.FormatInfix(law))
	}
	if Order(r) != 0 {
		t.Errorf("Order = %d, want 0", Order(r))
	}
}

func TestOrder(t *testing.T) {
	cases := []struct {
		reactants []*sbml.SpeciesReference
		want      int
	}{
		{nil, 0},
		{[]*sbml.SpeciesReference{ref("A", 1)}, 1},
		{[]*sbml.SpeciesReference{ref("A", 1), ref("B", 1)}, 2},
		{[]*sbml.SpeciesReference{ref("A", 2)}, 2},
		{[]*sbml.SpeciesReference{{Species: "A"}}, 1}, // default stoichiometry
	}
	for _, tc := range cases {
		r := rxn(false, tc.reactants, nil)
		if got := Order(r); got != tc.want {
			t.Errorf("Order(%v) = %d, want %d", tc.reactants, got, tc.want)
		}
	}
}

func TestMichaelisMentenConstruction(t *testing.T) {
	law := MichaelisMentenLaw("S", "", "Vmax", "Km")
	want := mathml.MustParseInfix("Vmax*S/(Km+S)")
	if !mathml.PatternEqual(law, want, nil) {
		t.Errorf("law = %s", mathml.FormatInfix(law))
	}
	lawE := MichaelisMentenLaw("S", "E", "kcat", "Km")
	wantE := mathml.MustParseInfix("kcat*E*S/(Km+S)")
	if !mathml.PatternEqual(lawE, wantE, nil) {
		t.Errorf("law = %s", mathml.FormatInfix(lawE))
	}
}

func TestMichaelisMentenValue(t *testing.T) {
	// Figure 12: V = Vmax[A]/(KM+[A]); at [A]=KM the velocity is Vmax/2.
	law := MichaelisMentenLaw("A", "", "Vmax", "KM")
	env := &mathml.MapEnv{Values: map[string]float64{"A": 2, "KM": 2, "Vmax": 10}}
	v, err := mathml.Eval(law, env)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-5) > 1e-12 {
		t.Errorf("velocity at [A]=KM is %g, want Vmax/2 = 5", v)
	}
}

func makeReactionWithLaw(law mathml.Expr, reversible bool) *sbml.Reaction {
	r := rxn(reversible, []*sbml.SpeciesReference{ref("A", 1)}, []*sbml.SpeciesReference{ref("B", 1)})
	r.KineticLaw = &sbml.KineticLaw{Math: law}
	return r
}

func TestRecognizeMassAction(t *testing.T) {
	isSp := speciesSet("A", "B", "C")
	cases := []struct {
		src     string
		k, kRev string
		order   int
	}{
		{"k1*A", "k1", "", 1},
		{"A*k1", "k1", "", 1}, // commutative order
		{"k1*A*B", "k1", "", 2},
		{"k1*A*A", "k1", "", 2},
		{"k1*A^2", "k1", "", 2},
		{"k1*A - k2*B", "k1", "k2", 1},
		{"k0", "k0", "", 0},
	}
	for _, tc := range cases {
		r := makeReactionWithLaw(mathml.MustParseInfix(tc.src), tc.kRev != "")
		rec, err := Recognize(r, isSp)
		if err != nil {
			t.Fatalf("Recognize(%q): %v", tc.src, err)
		}
		if rec.Kind != MassAction {
			t.Errorf("Recognize(%q).Kind = %s, want mass-action", tc.src, rec.Kind)
			continue
		}
		if rec.RateConstant != tc.k || rec.ReverseConstant != tc.kRev || rec.Order != tc.order {
			t.Errorf("Recognize(%q) = %+v, want k=%s kRev=%s order=%d", tc.src, rec, tc.k, tc.kRev, tc.order)
		}
	}
}

func TestRecognizeMichaelisMenten(t *testing.T) {
	isSp := speciesSet("S", "E")
	cases := []struct {
		src   string
		k, km string
	}{
		{"Vmax*S/(Km+S)", "Vmax", "Km"},
		{"S*Vmax/(S+Km)", "Vmax", "Km"}, // commuted
		{"kcat*E*S/(Km+S)", "kcat", "Km"},
	}
	for _, tc := range cases {
		r := makeReactionWithLaw(mathml.MustParseInfix(tc.src), false)
		rec, err := Recognize(r, isSp)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Kind != MichaelisMenten {
			t.Errorf("Recognize(%q).Kind = %s, want michaelis-menten", tc.src, rec.Kind)
			continue
		}
		if rec.RateConstant != tc.k || rec.Km != tc.km {
			t.Errorf("Recognize(%q) = %+v", tc.src, rec)
		}
	}
}

func TestRecognizeUnknown(t *testing.T) {
	isSp := speciesSet("A", "B")
	for _, src := range []string{
		"k1*A + k2*B", // sum, not mass action difference
		"k1*k2*A",     // two parameters
		"sin(A)",      // arbitrary math
		"A/(Km+B)",    // denominator species mismatch
	} {
		r := makeReactionWithLaw(mathml.MustParseInfix(src), false)
		rec, err := Recognize(r, isSp)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Kind != Unknown {
			t.Errorf("Recognize(%q).Kind = %s, want unknown", src, rec.Kind)
		}
	}
}

func TestRecognizeNoLaw(t *testing.T) {
	r := rxn(false, nil, nil)
	if _, err := Recognize(r, speciesSet()); err == nil {
		t.Error("missing kinetic law should error")
	}
}

func TestLawKindString(t *testing.T) {
	if MassAction.String() != "mass-action" || MichaelisMenten.String() != "michaelis-menten" || Unknown.String() != "unknown" {
		t.Error("LawKind strings wrong")
	}
}
