// Package kinetics constructs and recognizes the two rate-law families the
// paper's composer must reconcile (§3, Figures 10–12): mass-action kinetics
// (rate = k·∏[reactant]^stoichiometry) and Michaelis–Menten kinetics
// (rate = kcat·[E]·[S]/(KM+[S]), or Vmax·[S]/(KM+[S]) with Vmax = kcat·[ET]).
//
// Construction is used by the synthetic corpus generator and the examples;
// recognition is used by the composer to decide whether two syntactically
// different kinetic laws describe the same chemistry and to find the
// reaction order for Figure 6 rate-constant unit conversion.
package kinetics

import (
	"fmt"
	"math"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
)

// LawKind classifies a recognized kinetic law.
type LawKind int

const (
	// Unknown means the law matched no known family.
	Unknown LawKind = iota
	// MassAction is k·∏[reactant]^stoich (Figures 10 and 11, irreversible)
	// or kf·∏[reactants] − kr·∏[products] (Figure 11, reversible).
	MassAction
	// MichaelisMenten is Vmax·[S]/(KM+[S]) or kcat·[E]·[S]/(KM+[S])
	// (Figure 12).
	MichaelisMenten
)

// String names the law kind.
func (k LawKind) String() string {
	switch k {
	case MassAction:
		return "mass-action"
	case MichaelisMenten:
		return "michaelis-menten"
	default:
		return "unknown"
	}
}

// MassActionLaw builds the mass-action rate expression for r using the
// given forward (and, when r.Reversible, reverse) rate-constant parameter
// ids. Stoichiometries > 1 become integer powers: A+A→B gives k·A².
func MassActionLaw(r *sbml.Reaction, kForward, kReverse string) mathml.Expr {
	fwd := concentrationProduct(mathml.S(kForward), r.Reactants)
	if !r.Reversible || kReverse == "" {
		return fwd
	}
	rev := concentrationProduct(mathml.S(kReverse), r.Products)
	return mathml.Sub(fwd, rev)
}

func concentrationProduct(rate mathml.Expr, refs []*sbml.SpeciesReference) mathml.Expr {
	args := []mathml.Expr{rate}
	for _, sr := range refs {
		st := sr.Stoichiometry
		if st == 0 {
			st = 1
		}
		if st == 1 {
			args = append(args, mathml.S(sr.Species))
			continue
		}
		if st == math.Trunc(st) && st > 1 && st <= 4 {
			// Small integer stoichiometries unroll to repeated factors,
			// matching how modelers usually write mass action by hand.
			for i := 0; i < int(st); i++ {
				args = append(args, mathml.S(sr.Species))
			}
			continue
		}
		args = append(args, mathml.Pow(mathml.S(sr.Species), mathml.N(st)))
	}
	if len(args) == 1 {
		return args[0] // zeroth order: rate constant alone
	}
	return mathml.Mul(args...)
}

// MichaelisMentenLaw builds Vmax·[S]/(KM+[S]) when enzyme is empty, or
// kcat·[E]·[S]/(KM+[S]) when an enzyme species id is supplied (Figure 12).
func MichaelisMentenLaw(substrate, enzyme, vmaxOrKcat, km string) mathml.Expr {
	s := mathml.S(substrate)
	denom := mathml.Add(mathml.S(km), s)
	var numer mathml.Expr
	if enzyme == "" {
		numer = mathml.Mul(mathml.S(vmaxOrKcat), s)
	} else {
		numer = mathml.Mul(mathml.S(vmaxOrKcat), mathml.S(enzyme), s)
	}
	return mathml.Div(numer, denom)
}

// Order returns the reaction order implied by r's reactant stoichiometries
// (0, 1, 2, …). This is what Figure 6's rate-constant conversion needs.
func Order(r *sbml.Reaction) int {
	total := 0.0
	for _, sr := range r.Reactants {
		st := sr.Stoichiometry
		if st == 0 {
			st = 1
		}
		total += st
	}
	return int(math.Round(total))
}

// Recognition holds the result of classifying a kinetic law.
type Recognition struct {
	Kind LawKind
	// RateConstant is the forward rate-constant id for mass action, or the
	// Vmax/kcat id for Michaelis–Menten.
	RateConstant string
	// ReverseConstant is the reverse rate-constant id for reversible
	// mass action; empty otherwise.
	ReverseConstant string
	// Km is the Michaelis-constant id for Michaelis–Menten laws.
	Km string
	// Order is the forward reaction order for mass-action laws.
	Order int
}

// Recognize classifies the kinetic law of r. The species set tells the
// classifier which identifiers are concentrations as opposed to parameters.
func Recognize(r *sbml.Reaction, isSpecies func(id string) bool) (Recognition, error) {
	if r.KineticLaw == nil || r.KineticLaw.Math == nil {
		return Recognition{}, fmt.Errorf("kinetics: reaction %q has no kinetic law", r.ID)
	}
	e := mathml.Simplify(r.KineticLaw.Math)

	if rec, ok := recognizeMichaelisMenten(e, isSpecies); ok {
		return rec, nil
	}
	if rec, ok := recognizeMassAction(e, isSpecies); ok {
		return rec, nil
	}
	return Recognition{Kind: Unknown}, nil
}

// recognizeMassAction matches k·s1·s2·… and kf·∏ − kr·∏ shapes.
func recognizeMassAction(e mathml.Expr, isSpecies func(string) bool) (Recognition, bool) {
	if ap, ok := e.(mathml.Apply); ok && ap.Op == "minus" && len(ap.Args) == 2 {
		fwd, okF := splitRateTerm(ap.Args[0], isSpecies)
		rev, okR := splitRateTerm(ap.Args[1], isSpecies)
		if okF && okR {
			return Recognition{
				Kind:            MassAction,
				RateConstant:    fwd.k,
				ReverseConstant: rev.k,
				Order:           fwd.order,
			}, true
		}
		return Recognition{}, false
	}
	term, ok := splitRateTerm(e, isSpecies)
	if !ok {
		return Recognition{}, false
	}
	return Recognition{Kind: MassAction, RateConstant: term.k, Order: term.order}, true
}

type rateTerm struct {
	k     string
	order int
}

// splitRateTerm decomposes k·s1·s2·… (or a bare k, or a bare species) into
// one parameter factor and counted species factors.
func splitRateTerm(e mathml.Expr, isSpecies func(string) bool) (rateTerm, bool) {
	var factors []mathml.Expr
	switch x := e.(type) {
	case mathml.Apply:
		if x.Op != "times" {
			if x.Op == "power" {
				factors = []mathml.Expr{x}
			} else {
				return rateTerm{}, false
			}
		} else {
			factors = x.Args
		}
	case mathml.Sym:
		factors = []mathml.Expr{x}
	default:
		return rateTerm{}, false
	}
	var term rateTerm
	seenK := false
	for _, f := range flattenTimes(factors) {
		switch v := f.(type) {
		case mathml.Sym:
			if isSpecies(v.Name) {
				term.order++
				continue
			}
			if seenK {
				return rateTerm{}, false // two parameters: not simple mass action
			}
			term.k = v.Name
			seenK = true
		case mathml.Apply:
			if v.Op == "power" && len(v.Args) == 2 {
				base, okB := v.Args[0].(mathml.Sym)
				exp, okE := v.Args[1].(mathml.Num)
				if okB && okE && isSpecies(base.Name) && exp.Value == math.Trunc(exp.Value) && exp.Value > 0 {
					term.order += int(exp.Value)
					continue
				}
			}
			return rateTerm{}, false
		case mathml.Num:
			// Numeric prefactors (e.g. compartment volume folded in) are
			// tolerated but anonymous.
			continue
		default:
			return rateTerm{}, false
		}
	}
	if !seenK && term.order == 0 {
		return rateTerm{}, false
	}
	return term, true
}

func flattenTimes(args []mathml.Expr) []mathml.Expr {
	var out []mathml.Expr
	for _, a := range args {
		if ap, ok := a.(mathml.Apply); ok && ap.Op == "times" {
			out = append(out, flattenTimes(ap.Args)...)
			continue
		}
		out = append(out, a)
	}
	return out
}

// recognizeMichaelisMenten matches numer/(Km+S) with numer = Vmax·S or
// kcat·E·S.
func recognizeMichaelisMenten(e mathml.Expr, isSpecies func(string) bool) (Recognition, bool) {
	div, ok := e.(mathml.Apply)
	if !ok || div.Op != "divide" || len(div.Args) != 2 {
		return Recognition{}, false
	}
	denom, ok := div.Args[1].(mathml.Apply)
	if !ok || denom.Op != "plus" || len(denom.Args) != 2 {
		return Recognition{}, false
	}
	// Identify Km (parameter) and S (species) in the denominator,
	// accepting either order.
	var km, substrate string
	for _, arg := range denom.Args {
		sym, ok := arg.(mathml.Sym)
		if !ok {
			return Recognition{}, false
		}
		if isSpecies(sym.Name) {
			substrate = sym.Name
		} else {
			km = sym.Name
		}
	}
	if km == "" || substrate == "" {
		return Recognition{}, false
	}
	// Numerator: Vmax·S or kcat·E·S, in any order.
	numer, ok := splitRateTerm(div.Args[0], isSpecies)
	if !ok || numer.k == "" {
		return Recognition{}, false
	}
	if !numeratorMentions(div.Args[0], substrate) {
		return Recognition{}, false
	}
	if numer.order != 1 && numer.order != 2 { // S alone, or E and S
		return Recognition{}, false
	}
	return Recognition{Kind: MichaelisMenten, RateConstant: numer.k, Km: km}, true
}

func numeratorMentions(e mathml.Expr, species string) bool {
	return mathml.Vars(e)[species]
}
