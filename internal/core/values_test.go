package core

import (
	"math"
	"testing"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
)

// assertValuesMatchScan pins the incremental contract: at every step
// boundary the accumulator's values map equals the from-scratch
// collectInitialValues scan of the live model.
func assertValuesMatchScan(t *testing.T, label string, cm *CompiledModel) {
	t.Helper()
	scan := collectInitialValues(cm.model)
	if len(scan) != len(cm.values) {
		t.Fatalf("%s: incremental values has %d entries, scan has %d", label, len(cm.values), len(scan))
	}
	for k, want := range scan {
		got, ok := cm.values[k]
		if !ok {
			t.Fatalf("%s: incremental values missing %q (scan: %g)", label, k, want)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: values[%q] = %g, scan says %g", label, k, got, want)
		}
	}
}

// TestComposerValuesMatchScanOnRenameHeavyBatch folds a batch whose models
// fight over ids (renames, conflicts, adoptions all fire) and checks the
// incrementally-maintained values map against the scan after every Add.
func TestComposerValuesMatchScanOnRenameHeavyBatch(t *testing.T) {
	for _, opts := range []Options{
		{Synonyms: synonym.Builtin()},
		{Semantics: LightSemantics},
	} {
		c := NewComposer(opts)
		for i, m := range renameHeavyBatch(t, 8) {
			if err := c.Add(m); err != nil {
				t.Fatal(err)
			}
			assertValuesMatchScan(t, m.ID, c.acc)
			_ = i
		}
	}
}

// TestComposerValuesAdoptionAndAssignments targets the paths a generated
// batch may not hit deterministically: a compartment size adoption, a
// species quantity adoption, and an initial assignment whose input value
// arrives in a later step.
func TestComposerValuesAdoptionAndAssignments(t *testing.T) {
	m1 := sbml.NewModel("first")
	m1.Compartments = append(m1.Compartments, &sbml.Compartment{ID: "cell", SpatialDimensions: 3, Constant: true}) // no size yet
	m1.Species = append(m1.Species,
		&sbml.Species{ID: "A", Compartment: "cell"}, // no quantity yet
		&sbml.Species{ID: "B", Compartment: "cell", InitialConcentration: 2, HasInitialConcentration: true},
	)
	m1.Parameters = append(m1.Parameters, &sbml.Parameter{ID: "scale", Constant: true}) // value set by IA below
	m1.InitialAssignments = append(m1.InitialAssignments, &sbml.InitialAssignment{
		Symbol: "scale",
		Math:   mathml.Mul(mathml.N(3), mathml.S("gain")), // gain arrives with m2
	})

	m2 := sbml.NewModel("second")
	m2.Compartments = append(m2.Compartments, &sbml.Compartment{ID: "cell", SpatialDimensions: 3, Size: 2.5, HasSize: true, Constant: true})
	m2.Species = append(m2.Species,
		&sbml.Species{ID: "A", Compartment: "cell", InitialAmount: 5, HasInitialAmount: true},
	)
	m2.Parameters = append(m2.Parameters, &sbml.Parameter{ID: "gain", Value: 4, HasValue: true, Constant: true})

	c := NewComposer(Options{})
	for _, m := range []*sbml.Model{m1, m2} {
		if err := c.Add(m); err != nil {
			t.Fatal(err)
		}
		assertValuesMatchScan(t, m.ID, c.acc)
	}
	// The adopted quantities and the late-resolving assignment must all be
	// visible without any rescan.
	if v := c.acc.values["cell"]; v != 2.5 {
		t.Errorf("adopted compartment size = %g, want 2.5", v)
	}
	if v := c.acc.values["A"]; v != 5 {
		t.Errorf("adopted species amount = %g, want 5", v)
	}
	if v := c.acc.values["scale"]; v != 12 {
		t.Errorf("initial assignment scale = %g, want 12 (3×gain)", v)
	}
}

// TestComposerValuesAssignmentOnlyStep pins the regression where a step
// whose only contribution is an initial assignment (every attribute-valued
// component merges) still refreshes the overlay: without the assignment
// insert hook buffering a flush, the accumulator would keep the stale
// attribute value.
func TestComposerValuesAssignmentOnlyStep(t *testing.T) {
	base := sbml.NewModel("base")
	base.Compartments = append(base.Compartments, &sbml.Compartment{ID: "cell", SpatialDimensions: 3, Size: 1, HasSize: true, Constant: true})
	base.Parameters = append(base.Parameters, &sbml.Parameter{ID: "k", Value: 2, HasValue: true, Constant: true})

	// Same components plus an assignment overriding k's value.
	overlay := sbml.NewModel("overlay")
	overlay.Compartments = append(overlay.Compartments, &sbml.Compartment{ID: "cell", SpatialDimensions: 3, Size: 1, HasSize: true, Constant: true})
	overlay.Parameters = append(overlay.Parameters, &sbml.Parameter{ID: "k", Value: 2, HasValue: true, Constant: true})
	overlay.InitialAssignments = append(overlay.InitialAssignments, &sbml.InitialAssignment{
		Symbol: "k", Math: mathml.N(5),
	})

	c := NewComposer(Options{})
	// An intermediate no-new-values step drains any seed buffering, so the
	// assignment step below must trigger its own flush.
	for _, m := range []*sbml.Model{base, base.Clone(), overlay} {
		if err := c.Add(m); err != nil {
			t.Fatal(err)
		}
		assertValuesMatchScan(t, m.ID, c.acc)
	}
	if v := c.acc.values["k"]; v != 5 {
		t.Errorf("values[k] = %g, want 5 (assignment-only step must refresh the overlay)", v)
	}
}

// TestParallelFoldValuesMatchScan checks the balanced-reduction path keeps
// every surviving accumulator's values settled too.
func TestParallelFoldValuesMatchScan(t *testing.T) {
	models := cleanBatch(t, 7)
	res, err := ComposeAll(models, Options{Parallel: true, Workers: 3, Synonyms: synonym.Builtin()})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ComposeAll(models, Options{Synonyms: synonym.Builtin()})
	if err != nil {
		t.Fatal(err)
	}
	if modelBytes(res.Model) != modelBytes(seq.Model) {
		t.Fatal("clean batch should compose identically in both modes")
	}
}
