package core

import "sbmlcompose/internal/sbml"

// This file exports the compiled-model match keys to repository-scale
// consumers. The pairwise composer derives a key per component (canonical
// synonym ids, Figure 7 MathML patterns, reduced unit vectors) and looks it
// up in the other model's indexes; a model repository inverts that
// relationship, posting every model's keys into corpus-wide indexes so a
// query retrieves candidates by key instead of scanning all models
// pairwise. MatchKeys re-derives keys with the very functions the composer
// uses (speciesKeysFor, mathKeyFor, unitKey, reactionStructureKey), so
// corpus retrieval and pairwise composition provably agree on what matches.

// KeyTier ranks how much semantic weight a shared match key carries, the
// score-matrix tiers of repository matching: an exact id is the strongest
// evidence two components denote the same entity, a synonym-canonical name
// slightly weaker, a shared math pattern weaker still, and dimensional
// (unit-vector) compatibility the weakest.
type KeyTier int

const (
	// TierExactID: identical component id (or, for reactions, identical
	// reactant/product/modifier structure).
	TierExactID KeyTier = iota
	// TierSynonym: names or ids that canonicalize to the same synonym-table
	// class (or normalize equal under light semantics).
	TierSynonym
	// TierMath: identical commutativity-canonical MathML pattern.
	TierMath
	// TierUnit: identical reduced unit vector.
	TierUnit
)

// String names the tier for reports and serving payloads.
func (t KeyTier) String() string {
	switch t {
	case TierExactID:
		return "exact-id"
	case TierSynonym:
		return "synonym"
	case TierMath:
		return "math-pattern"
	case TierUnit:
		return "unit-compatible"
	default:
		return "unknown"
	}
}

// Weight is the tier's score-matrix contribution. Tiers are strictly
// ordered so a single exact-id correspondence outranks any lower-tier one,
// mirroring the exact > synonym > math > unit cascade the composer's
// type-specific equality implements.
func (t KeyTier) Weight() float64 {
	switch t {
	case TierExactID:
		return 4
	case TierSynonym:
		return 3
	case TierMath:
		return 2
	case TierUnit:
		return 1
	default:
		return 0
	}
}

// ComponentKey is one match key of one model component, namespaced by
// component kind so a species name never collides with a math pattern in a
// shared inverted index.
type ComponentKey struct {
	// Component is the component's id in its model (constraints, which have
	// no id, are keyed by a positional label).
	Component string
	// Kind is the component family: "species", "reaction", "compartment",
	// "function" or "unitdef".
	Kind string
	// Key is the kind-prefixed match key.
	Key string
	// Tier ranks the key's evidence strength.
	Tier KeyTier
}

// MatchKeys returns every match key of every matchable component, in
// deterministic model order. Key derivation is shared with the composer's
// index maintenance, so two models share a key here exactly when the
// pairwise composer would identify the corresponding components through an
// index hit of that tier.
func (cm *CompiledModel) MatchKeys() []ComponentKey {
	m := cm.model
	opts := cm.opts
	keys := make([]ComponentKey, 0, 3*len(m.Species)+2*len(m.Reactions)+len(m.FunctionDefinitions)+len(m.UnitDefinitions)+2*len(m.Compartments))
	for _, comp := range m.Compartments {
		keys = append(keys, ComponentKey{comp.ID, "compartment", "c|id:" + comp.ID, TierExactID})
		if comp.Name != "" && opts.Semantics != NoSemantics {
			keys = append(keys, ComponentKey{comp.ID, "compartment", "c|n:" + canonicalNameFor(opts, comp.Name), TierSynonym})
		}
	}
	for _, s := range m.Species {
		// speciesKeysFor returns the exact id key first, then the
		// synonym-canonical name and id-as-name keys.
		for i, k := range speciesKeysFor(opts, s) {
			tier := TierSynonym
			if i == 0 {
				tier = TierExactID
			}
			keys = append(keys, ComponentKey{s.ID, "species", "s|" + k, tier})
		}
	}
	for _, f := range m.FunctionDefinitions {
		keys = append(keys, ComponentKey{f.ID, "function", "f|" + mathKeyFor(opts, f.Math), TierMath})
	}
	for _, u := range m.UnitDefinitions {
		keys = append(keys, ComponentKey{u.ID, "unitdef", "u|" + unitKey(u), TierUnit})
	}
	for _, r := range m.Reactions {
		keys = append(keys, ComponentKey{r.ID, "reaction", "r|st:" + reactionStructureKey(r), TierExactID})
		if r.KineticLaw != nil && r.KineticLaw.Math != nil {
			keys = append(keys, ComponentKey{r.ID, "reaction", "r|kl:" + mathKeyFor(opts, r.KineticLaw.Math), TierMath})
		}
	}
	return keys
}

// MatchableComponents counts the components MatchKeys emits keys for — the
// denominator of a repository hit's coverage ratio.
func (cm *CompiledModel) MatchableComponents() int {
	m := cm.model
	return len(m.Compartments) + len(m.Species) + len(m.FunctionDefinitions) + len(m.UnitDefinitions) + len(m.Reactions)
}

// MatchKeysFor compiles m under opts and returns its match keys; the
// one-shot form of CompiledModel.MatchKeys for callers that do not keep the
// compiled model.
func MatchKeysFor(m *sbml.Model, opts Options) ([]ComponentKey, error) {
	cm, err := Compile(m, opts)
	if err != nil {
		return nil, err
	}
	return cm.MatchKeys(), nil
}
