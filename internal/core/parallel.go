package core

import (
	"context"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sbmlcompose/internal/sbml"
)

// Parallel batch composition: a balanced binary reduction over the input
// models, executed level by level with a bounded worker pool. Treating a
// batch of biochemical networks as independently mergeable subnetworks is
// standard (Holme et al., "Subnetwork hierarchies of biochemical
// pathways"); here it buys multi-core scaling for order-insensitive
// assembly. The merge tree is a pure function of the input order — pair
// (0,1), (2,3), …, odd leftover carried to the next level — so the result
// is reproducible for any worker count: scheduling decides only when each
// node runs, never which nodes exist or how their outputs combine.
//
// Every tree node owns its submodel (leaves compile a private clone), so a
// merge folds the right child's model straight into the left child's
// compiled accumulator — no re-cloning, no index rebuild — and the right
// accumulator is discarded.

// reduceNode is one element of the reduction: a compiled accumulator for
// the subtree's merged model plus the subtree's combined report.
type reduceNode struct {
	acc *CompiledModel
	res *Result
}

// composeAllParallel reduces the models pairwise until one result remains.
// Callers guarantee len(models) >= 2 and no nil entries. Cancellation is
// checked by every worker between tree nodes (and between component
// families inside a node): a cancelled call drains its pool, discards all
// partial accumulators — none of which are reachable by the caller — and
// returns ctx's error.
func composeAllParallel(ctx context.Context, models []*sbml.Model, opts Options) (*Result, error) {
	start := time.Now()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Log != nil {
		// Merge nodes run concurrently; serialize their warning lines.
		opts.Log = &syncWriter{w: opts.Log}
	}

	// Leaf compilation is itself the per-model key precomputation
	// (synonym expansion, math patterns, unit vectors), so spread it over
	// the pool too.
	level := make([]*reduceNode, len(models))
	err := runLimited(ctx, workers, len(models), func(i int) error {
		start := time.Now()
		acc := compile(models[i].Clone(), opts)
		res := &Result{Model: acc.model, Mappings: map[string]string{}, Renames: map[string]string{}}
		res.Stats.Duration = time.Since(start)
		level[i] = &reduceNode{acc: acc, res: res}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for len(level) > 1 {
		pairs := len(level) / 2
		next := make([]*reduceNode, pairs, pairs+1)
		err := runLimited(ctx, workers, pairs, func(i int) error {
			node, err := mergeReduceNodes(ctx, level[2*i], level[2*i+1])
			if err != nil {
				return err
			}
			next[i] = node
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	res := level[0].res
	// Node durations overlap when they run concurrently, so the summed
	// per-node times are CPU time, not elapsed time; report the documented
	// wall clock instead.
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// runLimited executes fn(0..n-1) across at most `workers` goroutines.
// Which worker runs which index is scheduling-dependent, but fn(i) writes
// only slot i, so results don't depend on the assignment. Workers check
// ctx before claiming each unit and stop claiming once it is done or any
// fn fails; every started fn runs to completion (or its own internal ctx
// check), the pool always drains, and the first error observed in claim
// order is returned. Errors arise only from cancellation here, so which
// unit reports it doesn't affect determinism of successful runs.
func runLimited(ctx context.Context, workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					failed.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// mergeReduceNodes folds the right subtree's model into the left subtree's
// compiled accumulator and combines the reports. Both children are owned by
// the reduction, so nothing is cloned; the right accumulator dies here. A
// mid-merge cancellation abandons the (now inconsistent) left accumulator,
// which is safe because the whole reduction is discarded with it.
func mergeReduceNodes(ctx context.Context, left, right *reduceNode) (*reduceNode, error) {
	start := time.Now()
	// Figure 5 lines 1-2: composing with an empty model returns the other —
	// like pairwise Compose, an empty left side adopts the right even when
	// both are empty (the right's id and name win).
	if left.acc.model.ComponentCount() == 0 {
		node := &Result{Model: right.acc.model, Mappings: map[string]string{}, Renames: map[string]string{}}
		node.Stats.Added = right.acc.model.ComponentCount()
		node.Stats.Duration = time.Since(start)
		return &reduceNode{acc: right.acc, res: combineNode(left.res, right.res, node)}, nil
	}
	if right.acc.model.ComponentCount() == 0 {
		node := &Result{Model: left.acc.model, Mappings: map[string]string{}, Renames: map[string]string{}}
		node.Stats.Duration = time.Since(start)
		return &reduceNode{acc: left.acc, res: combineNode(left.res, right.res, node)}, nil
	}

	step := &Result{Mappings: map[string]string{}, Renames: map[string]string{}}
	cs := newStepComposer(left.acc, right.acc.model, step)
	// The right accumulator's values map is flushed (leaf compiles and
	// child folds both settle it), so it already equals the scan.
	cs.secondValues = right.acc.values
	if err := cs.runPipelineCtx(ctx); err != nil {
		return nil, err
	}
	// The accumulator survives into the parent merge; repair any math keys
	// this step's renames rewrote and settle its initial-value map.
	cs.repairMathKeys()
	left.acc.flushValues()
	step.Model = left.acc.model
	step.Stats.Duration = time.Since(start)
	return &reduceNode{acc: left.acc, res: combineNode(left.res, right.res, step)}, nil
}

// combineNode merges two child results with the result of composing their
// models. Reporting is deterministic: warnings and matches concatenate
// left, right, node; on a key collision across the three map sources the
// same precedence applies. Ids translated inside the right subtree chain
// through the node's own translation, so every reported mapping or rename
// ends at an id that exists in the combined model.
func combineNode(left, right, node *Result) *Result {
	trans := func(id string) string {
		if to, ok := node.Mappings[id]; ok {
			return to
		}
		if to, ok := node.Renames[id]; ok {
			return to
		}
		return id
	}
	out := &Result{
		Model:    node.Model,
		Warnings: make([]Warning, 0, len(left.Warnings)+len(right.Warnings)+len(node.Warnings)),
		Matches:  make([]Match, 0, len(left.Matches)+len(right.Matches)+len(node.Matches)),
		Mappings: make(map[string]string, len(left.Mappings)+len(right.Mappings)+len(node.Mappings)),
		Renames:  make(map[string]string, len(left.Renames)+len(right.Renames)+len(node.Renames)),
	}
	out.Warnings = append(out.Warnings, left.Warnings...)
	out.Warnings = append(out.Warnings, right.Warnings...)
	out.Warnings = append(out.Warnings, node.Warnings...)

	out.Matches = append(out.Matches, left.Matches...)
	for _, m := range right.Matches {
		// A right-subtree match's First id lives in the node's second
		// model; the node merge may have remapped it.
		out.Matches = append(out.Matches, Match{First: trans(m.First), Second: m.Second})
	}
	out.Matches = append(out.Matches, node.Matches...)

	addAbsent := func(dst map[string]string, k, v string) {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
	for k, v := range left.Mappings {
		addAbsent(out.Mappings, k, v)
	}
	for k, v := range right.Mappings {
		addAbsent(out.Mappings, k, trans(v))
	}
	for k, v := range node.Mappings {
		addAbsent(out.Mappings, k, v)
	}
	for k, v := range left.Renames {
		addAbsent(out.Renames, k, v)
	}
	for k, v := range right.Renames {
		addAbsent(out.Renames, k, trans(v))
	}
	for k, v := range node.Renames {
		addAbsent(out.Renames, k, v)
	}

	out.Stats.Merged = left.Stats.Merged + right.Stats.Merged + node.Stats.Merged
	// Added is a state delta, not an event count: every component the right
	// subtree added is re-presented to the node merge and counted there, so
	// only the left spine's additions accumulate — keeping the fold
	// invariant final count = first model's count + Added.
	out.Stats.Added = left.Stats.Added + node.Stats.Added
	out.Stats.Renamed = left.Stats.Renamed + right.Stats.Renamed + node.Stats.Renamed
	out.Stats.Conflicts = left.Stats.Conflicts + right.Stats.Conflicts + node.Stats.Conflicts
	out.Stats.Duration = left.Stats.Duration + right.Stats.Duration + node.Stats.Duration
	return out
}

// syncWriter serializes concurrent writes to the user's log writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
