package core

import (
	"fmt"
	"reflect"
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/synonym"
)

// TestMatchKeyCodecRoundTrip is the codec property test over randomized
// models: decode(encode(keys)) must reproduce the derived keys exactly,
// under every semantics level, so a recovered corpus posts the same
// inverted-index entries as a freshly compiled one.
func TestMatchKeyCodecRoundTrip(t *testing.T) {
	for _, sem := range []SemanticsLevel{HeavySemantics, LightSemantics, NoSemantics} {
		opts := Options{Semantics: sem}
		if sem == HeavySemantics {
			opts.Synonyms = synonym.Builtin()
		}
		for i := 0; i < 25; i++ {
			m := biomodels.Generate(biomodels.Config{
				ID:             fmt.Sprintf("rt%02d", i),
				Nodes:          2 + i%9,
				Edges:          1 + (i*3)%11,
				Seed:           int64(9000 + 31*i),
				VocabularySize: 15 + i,
				Decorate:       i%2 == 0,
			})
			keys, err := MatchKeysFor(m, opts)
			if err != nil {
				t.Fatalf("sem=%v model %d: %v", sem, i, err)
			}
			got, err := DecodeMatchKeys(EncodeMatchKeys(keys))
			if err != nil {
				t.Fatalf("sem=%v model %d: decode: %v", sem, i, err)
			}
			if len(keys) == 0 {
				if len(got) != 0 {
					t.Fatalf("sem=%v model %d: decoded %d keys from empty set", sem, i, len(got))
				}
				continue
			}
			if !reflect.DeepEqual(got, keys) {
				t.Fatalf("sem=%v model %d: keys diverge after round trip:\n got %+v\nwant %+v", sem, i, got, keys)
			}
		}
	}
}

func TestMatchKeyCodecRejectsCorruption(t *testing.T) {
	keys, err := MatchKeysFor(biomodels.Generate(biomodels.Config{
		ID: "corrupt", Nodes: 5, Edges: 6, Seed: 77, VocabularySize: 20, Decorate: true,
	}), Options{Synonyms: synonym.Builtin()})
	if err != nil {
		t.Fatal(err)
	}
	blob := EncodeMatchKeys(keys)
	// Every truncation point must error, never decode a short key set
	// silently (the count prefix pins the expected cardinality).
	for cut := 0; cut < len(blob); cut++ {
		if got, err := DecodeMatchKeys(blob[:cut]); err == nil && len(got) == len(keys) {
			t.Fatalf("truncation at %d decoded a full key set", cut)
		}
	}
	if _, err := DecodeMatchKeys(append(append([]byte(nil), blob...), 0x01)); err == nil {
		t.Fatal("trailing byte not rejected")
	}
	// An out-of-range tier must error rather than post a garbage weight.
	bad := EncodeMatchKeys([]ComponentKey{{Component: "x", Kind: "species", Key: "s|id:x@c", Tier: KeyTier(9)}})
	if _, err := DecodeMatchKeys(bad); err == nil {
		t.Fatal("out-of-range tier not rejected")
	}
}

// TestMatchKeyFingerprint pins the fingerprint's sensitivity: equal
// options agree regardless of synonym insertion order; changing the
// semantics level or the table's classes changes the hash.
func TestMatchKeyFingerprint(t *testing.T) {
	a, b := synonym.NewTable(), synonym.NewTable()
	a.Add("ATP", "adenosine triphosphate")
	a.Add("glc", "glucose")
	b.Add("glc", "glucose")
	b.Add("adenosine triphosphate", "ATP")
	fa := Options{Synonyms: a}.MatchKeyFingerprint()
	if fb := (Options{Synonyms: b}).MatchKeyFingerprint(); fa != fb {
		t.Fatalf("insertion order changed fingerprint: %x vs %x", fa, fb)
	}
	if f := (Options{Semantics: LightSemantics, Synonyms: a}).MatchKeyFingerprint(); f == fa {
		t.Fatal("semantics level not reflected in fingerprint")
	}
	a.Add("H2O", "water")
	if f := (Options{Synonyms: a}).MatchKeyFingerprint(); f == fa {
		t.Fatal("added synonym class not reflected in fingerprint")
	}
	if f, g := (Options{}).MatchKeyFingerprint(), (Options{Synonyms: synonym.NewTable()}).MatchKeyFingerprint(); f != g {
		t.Fatalf("nil table and empty table disagree: %x vs %x", f, g)
	}
}
