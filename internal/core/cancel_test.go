package core

// Cancellation tests for the context plumbing: the step pipeline's
// family-boundary checks, Composer poisoning semantics, and the parallel
// reduction's worker drain. A countingCtx cancels after an exact number of
// Err() observations, which makes "cancelled between family 3 and 4 of
// step 5" reproducible instead of a wall-clock race.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/sbml"
)

// countingCtx reports Canceled from the (n+1)-th Err() call on. The
// composition code only polls Err(), so Done returning a never-closed
// channel is fine; the mutex makes it safe for the parallel reduction's
// workers.
type countingCtx struct {
	mu        sync.Mutex
	remaining int
	done      chan struct{}
}

func newCountingCtx(n int) *countingCtx {
	return &countingCtx{remaining: n, done: make(chan struct{})}
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}       { return c.done }
func (c *countingCtx) Value(any) any               { return nil }

func (c *countingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// cancelBatch is a shared rename-heavy workload: overlapping namespaces
// force real merge work in every family.
func cancelBatch(t *testing.T, n int) []*sbml.Model {
	t.Helper()
	return biomodels.NamespacedBatch(n, 30, 45, 977)
}

func foldClean(t *testing.T, models []*sbml.Model) string {
	t.Helper()
	c := NewComposer(Options{})
	for _, m := range models {
		if err := c.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return sbml.WrapModel(c.Result().Model).String()
}

// TestAddContextPoisonSweep drives AddContext with cancellation landing
// at every possible Err() observation point of a three-model fold and
// checks the all-or-poisoned contract at each: either the cancellation
// was caught before any mutation — the same composer can simply retry and
// must end byte-identical to an uncancelled twin — or the composer is
// poisoned: further Adds fail with ErrComposerPoisoned and
// Result/Model/Snapshot return nil. There is no third state in which a
// half-merged accumulator stays observable.
func TestAddContextPoisonSweep(t *testing.T) {
	models := cancelBatch(t, 3)
	want := foldClean(t, models)

	sawPoison, sawClean := false, false
	for budget := 0; ; budget++ {
		c := NewComposer(Options{})
		ctx := newCountingCtx(budget)
		cancelled := false
		for i := 0; i < len(models); {
			err := c.AddContext(ctx, models[i])
			if err == nil {
				i++
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("budget %d: unexpected error %v", budget, err)
			}
			cancelled = true
			if c.Err() != nil {
				sawPoison = true
				// Poisoned: the interrupted accumulator must be
				// unreachable and the composer must refuse further use.
				if c.Result() != nil || c.Model() != nil || c.Snapshot() != nil {
					t.Fatalf("budget %d: poisoned composer still exposes state", budget)
				}
				if err := c.Add(models[0]); !errors.Is(err, ErrComposerPoisoned) {
					t.Fatalf("budget %d: Add after poison = %v, want ErrComposerPoisoned", budget, err)
				}
				if !errors.Is(c.Err(), ErrComposerPoisoned) || !errors.Is(c.Err(), context.Canceled) {
					t.Fatalf("budget %d: Err() = %v, want wrap of both sentinels", budget, c.Err())
				}
				break
			}
			// Caught at entry, nothing mutated: the composer must be
			// fully usable — finish the fold with a live context and
			// match the twin.
			sawClean = true
			for ; i < len(models); i++ {
				if err := c.Add(models[i]); err != nil {
					t.Fatalf("budget %d: resumed Add failed: %v", budget, err)
				}
			}
			if got := sbml.WrapModel(c.Result().Model).String(); got != want {
				t.Fatalf("budget %d: resumed fold diverged from twin", budget)
			}
			break
		}
		if !cancelled {
			// The whole fold ran inside the budget: it must match the
			// uncancelled twin exactly, proving the checks themselves
			// don't perturb composition.
			if got := sbml.WrapModel(c.Result().Model).String(); got != want {
				t.Fatalf("budget %d: uncancelled fold diverged", budget)
			}
			break // larger budgets only get more permissive
		}
	}
	if !sawPoison || !sawClean {
		t.Fatalf("sweep did not exercise both outcomes (poison=%v clean=%v)", sawPoison, sawClean)
	}
}

// TestComposeAllContextParallelCancelSweep lands cancellation at every
// Err() observation point of a parallel reduction: every outcome must be
// either context.Canceled with no result, or a result byte-identical to
// the uncancelled run — scheduling may vary, results may not.
func TestComposeAllContextParallelCancelSweep(t *testing.T) {
	models := cancelBatch(t, 8)
	opts := Options{Parallel: true, Workers: 4}
	ref, err := ComposeAll(models, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := sbml.WrapModel(ref.Model).String()

	sawCancel := false
	for budget := 0; ; budget++ {
		res, err := ComposeAllContext(newCountingCtx(budget), models, opts)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("budget %d: unexpected error %v", budget, err)
			}
			if res != nil {
				t.Fatalf("budget %d: cancelled ComposeAll returned a result", budget)
			}
			sawCancel = true
			continue
		}
		if got := sbml.WrapModel(res.Model).String(); got != want {
			t.Fatalf("budget %d: result diverged from uncancelled run", budget)
		}
		break // a budget that survived the full reduction; done
	}
	if !sawCancel {
		t.Fatal("sweep never observed a cancellation")
	}
}

// TestComposeContextPreCancelled pins the cheap path: an already-cancelled
// context fails before any work, and the same call with a live context is
// unaffected.
func TestComposeContextPreCancelled(t *testing.T) {
	models := cancelBatch(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComposeContext(ctx, models[0], models[1], Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Compose = %v, want context.Canceled", err)
	}
	if _, err := MatchModelsContext(ctx, models[0], models[1], Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled MatchModels = %v, want context.Canceled", err)
	}
	if _, err := ComposeAllContext(ctx, models, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ComposeAll = %v, want context.Canceled", err)
	}
	ref, err := ComposeContext(context.Background(), models[0], models[1], Options{})
	if err != nil || ref.Model == nil {
		t.Fatalf("live-context Compose failed: %v", err)
	}
}
