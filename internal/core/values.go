package core

import (
	"math"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/units"
)

// collectInitialValues gathers the initial value of every symbol in the
// model: compartment sizes, species amounts/concentrations, parameter
// values, and the evaluated results of initial assignments (which override
// attribute values, as in SBML semantics). The paper collects these before
// composition begins so conflict checks can compare concrete numbers even
// when the values are set in different places in each model (§3, last
// paragraph).
func collectInitialValues(m *sbml.Model) map[string]float64 {
	vals := make(map[string]float64)
	for _, comp := range m.Compartments {
		if comp.HasSize {
			vals[comp.ID] = comp.Size
		}
	}
	for _, s := range m.Species {
		if v, ok := speciesAttributeValue(s); ok {
			vals[s.ID] = v
		}
	}
	for _, p := range m.Parameters {
		if p.HasValue {
			vals[p.ID] = p.Value
		}
	}
	applyInitialAssignmentOverlay(m, vals)
	return vals
}

// speciesAttributeValue returns a species' attribute-declared initial value
// under the collection's precedence (concentration over amount).
func speciesAttributeValue(s *sbml.Species) (float64, bool) {
	switch {
	case s.HasInitialConcentration:
		return s.InitialConcentration, true
	case s.HasInitialAmount:
		return s.InitialAmount, true
	}
	return 0, false
}

// applyInitialAssignmentOverlay evaluates the model's initial assignments
// over vals, overriding attribute values. Assignments may reference each
// other; a couple of passes resolve simple chains without building a
// dependency graph. Shared by the from-scratch scan and the compiled
// accumulator's incremental maintenance so both provably agree.
func applyInitialAssignmentOverlay(m *sbml.Model, vals map[string]float64) {
	if len(m.InitialAssignments) == 0 {
		return
	}
	funcs := make(map[string]mathml.Lambda, len(m.FunctionDefinitions))
	for _, f := range m.FunctionDefinitions {
		funcs[f.ID] = f.Math
	}
	env := &mathml.MapEnv{Values: vals, Functions: funcs}
	for pass := 0; pass < 3; pass++ {
		progressed := false
		for _, ia := range m.InitialAssignments {
			v, err := mathml.Eval(ia.Math, env)
			if err != nil {
				continue
			}
			if old, ok := vals[ia.Symbol]; !ok || old != v {
				vals[ia.Symbol] = v
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
}

const valueTolerance = 1e-9

// valuesEqual compares two initial values with a relative tolerance.
func valuesEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= valueTolerance*math.Max(scale, 1)
}

// speciesBasis reports how a species quantifies its amount: Molecules when
// its substance units reduce to items, Moles otherwise.
func speciesBasis(m *sbml.Model, s *sbml.Species) units.SubstanceBasis {
	if s.SubstanceUnits == "" {
		return units.Moles // SBML default substance is mole
	}
	def := units.Definition{ID: s.SubstanceUnits, Units: []units.Unit{units.NewUnit(s.SubstanceUnits)}}
	if ud := m.UnitDefinitionByID(s.SubstanceUnits); ud != nil {
		def = ud.Definition()
	}
	f, err := units.ConversionFactor(def, units.ItemCount)
	if err != nil {
		return units.Moles
	}
	// item→item is 1; mole→item is Avogadro.
	if math.Abs(f-1) < 1e-6 {
		return units.Molecules
	}
	return units.Moles
}

// compartmentVolume returns the volume (litres) of the species' compartment,
// defaulting to 1 when unset so conversions remain defined.
func compartmentVolume(m *sbml.Model, compartmentID string) float64 {
	if comp := m.CompartmentByID(compartmentID); comp != nil && comp.HasSize && comp.Size > 0 {
		return comp.Size
	}
	return 1
}

// initialSpeciesValue normalizes a species' initial quantity to a
// concentration in the model's own terms: concentrations pass through;
// amounts divide by compartment volume; molecule counts additionally divide
// by Avogadro (heavy semantics only — the caller gates this).
func initialSpeciesValue(m *sbml.Model, s *sbml.Species, convertBasis bool) (float64, bool) {
	var v float64
	switch {
	case s.HasInitialConcentration:
		return s.InitialConcentration, true
	case s.HasInitialAmount:
		v = s.InitialAmount
	default:
		return 0, false
	}
	vol := compartmentVolume(m, s.Compartment)
	v /= vol
	if convertBasis && speciesBasis(m, s) == units.Molecules {
		v /= units.Avogadro
	}
	return v, true
}
