package core

import (
	"testing"

	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
)

func TestMatchModelsIdentical(t *testing.T) {
	a := figure1Model("m1")
	b := figure1Model("m2")
	matches, err := MatchModels(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Everything with an id matches: compartment, 3 species, 3 parameters,
	// 3 reactions = 10.
	if len(matches) != 10 {
		t.Fatalf("matches = %d, want 10: %v", len(matches), matches)
	}
	for _, m := range matches {
		if m.First != m.Second {
			t.Errorf("identical models should match by same id: %v", m)
		}
	}
}

func TestMatchModelsDisjoint(t *testing.T) {
	a := mkModel("m1", []string{"A"}, nil)
	b := mkModel("m2", []string{"X"}, nil)
	matches, err := MatchModels(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Only the shared compartment matches.
	if len(matches) != 1 || matches[0].First != "cell" {
		t.Errorf("matches = %v, want only the compartment", matches)
	}
}

func TestMatchModelsSynonyms(t *testing.T) {
	tab := synonym.NewTable()
	tab.Add("glucose", "dextrose")
	a := mkModel("m1", nil, nil)
	a.Species = append(a.Species, &sbml.Species{ID: "glc", Name: "glucose", Compartment: "cell"})
	b := mkModel("m2", nil, nil)
	b.Species = append(b.Species, &sbml.Species{ID: "dex", Name: "dextrose", Compartment: "cell"})
	matches, err := MatchModels(a, b, Options{Synonyms: tab})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.First == "glc" && m.Second == "dex" {
			found = true
		}
	}
	if !found {
		t.Errorf("synonym match glc←dex missing: %v", matches)
	}
	// Matching is read-only: inputs untouched.
	if len(a.Species) != 1 || len(b.Species) != 1 {
		t.Error("MatchModels mutated its inputs")
	}
}

func TestMatchesOnComposeResult(t *testing.T) {
	a := mkModel("m1", []string{"A", "B"}, []string{"A>B:k1"})
	b := mkModel("m2", []string{"B", "C"}, []string{"B>C:k2"})
	res, err := Compose(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Shared: compartment "cell" and species "B".
	wantFirst := map[string]bool{"cell": true, "B": true}
	for _, m := range res.Matches {
		if !wantFirst[m.First] {
			t.Errorf("unexpected match %v", m)
		}
		delete(wantFirst, m.First)
	}
	if len(wantFirst) != 0 {
		t.Errorf("missing matches for %v", wantFirst)
	}
}
