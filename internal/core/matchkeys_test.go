package core

import (
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/synonym"
)

// TestMatchKeysAgreeWithComposer pins the contract repository retrieval
// rests on: two models share a match key exactly when the pairwise
// composer identifies the corresponding components. Every composer match
// between two generated models must be witnessed by a shared key over the
// same component pair.
func TestMatchKeysAgreeWithComposer(t *testing.T) {
	opts := Options{Synonyms: synonym.Builtin()}
	a := biomodels.Generate(biomodels.Config{ID: "mk_a", Nodes: 14, Edges: 18, Seed: 71, VocabularySize: 60, Decorate: true})
	b := biomodels.Generate(biomodels.Config{ID: "mk_b", Nodes: 14, Edges: 18, Seed: 72, VocabularySize: 60, Decorate: true})

	ka, err := MatchKeysFor(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := MatchKeysFor(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Shared keys → set of (aComp, bComp) pairs they support.
	byKey := make(map[string][]ComponentKey)
	for _, k := range ka {
		byKey[k.Key] = append(byKey[k.Key], k)
	}
	witnessed := make(map[[2]string]bool)
	for _, k := range kb {
		for _, ak := range byKey[k.Key] {
			witnessed[[2]string{ak.Component, k.Component}] = true
		}
	}

	matches, err := MatchModels(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	checked := 0
	for _, m := range matches {
		// The composer also matches parameters, rules and initial
		// assignments, which MatchKeys deliberately skips (ids like "k1"
		// carry no cross-model meaning); restrict the oracle to the keyed
		// families.
		if !keyedComponent(ka, m.First) {
			continue
		}
		checked++
		if !witnessed[[2]string{m.First, m.Second}] {
			t.Errorf("composer matched %q=%q but no shared match key witnesses it", m.First, m.Second)
		}
	}
	if checked == 0 {
		t.Fatal("no keyed-family matches to check; test is vacuous")
	}
}

func keyedComponent(keys []ComponentKey, id string) bool {
	for _, k := range keys {
		if k.Component == id {
			return true
		}
	}
	return false
}

// TestKeyTierOrdering pins the tier cascade the score matrix depends on.
func TestKeyTierOrdering(t *testing.T) {
	tiers := []KeyTier{TierExactID, TierSynonym, TierMath, TierUnit}
	for i := 1; i < len(tiers); i++ {
		if tiers[i-1].Weight() <= tiers[i].Weight() {
			t.Fatalf("tier %s (%g) not heavier than %s (%g)",
				tiers[i-1], tiers[i-1].Weight(), tiers[i], tiers[i].Weight())
		}
	}
	for _, tier := range tiers {
		if tier.String() == "unknown" {
			t.Fatalf("tier %d has no name", tier)
		}
	}
}

// TestMatchableComponentsCountsKeyedFamilies ties the coverage denominator
// to the keyed component families.
func TestMatchableComponentsCountsKeyedFamilies(t *testing.T) {
	m := biomodels.Generate(biomodels.Config{ID: "mk_c", Nodes: 9, Edges: 12, Seed: 9, Decorate: true})
	cm, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := len(m.Compartments) + len(m.Species) + len(m.FunctionDefinitions) + len(m.UnitDefinitions) + len(m.Reactions)
	if got := cm.MatchableComponents(); got != want {
		t.Fatalf("MatchableComponents = %d, want %d", got, want)
	}
	seen := make(map[string]bool)
	for _, k := range cm.MatchKeys() {
		seen[k.Component] = true
	}
	if len(seen) != want {
		t.Fatalf("MatchKeys cover %d components, want %d", len(seen), want)
	}
}
