package core

import (
	"strings"
	"testing"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/units"
)

func TestReactionAdoptsKineticLawFromSecond(t *testing.T) {
	a := mkModel("m1", []string{"A", "B"}, nil)
	a.Reactions = append(a.Reactions, &sbml.Reaction{
		ID:        "r1",
		Reactants: []*sbml.SpeciesReference{{Species: "A", Stoichiometry: 1}},
		Products:  []*sbml.SpeciesReference{{Species: "B", Stoichiometry: 1}},
		// No kinetic law: the first model left it unspecified.
	})
	b := mkModel("m2", []string{"A", "B"}, []string{"A>B:k1"})
	var log strings.Builder
	res := compose(t, a, b, Options{Log: &log})
	r := res.Model.Reactions[0]
	if r.KineticLaw == nil || r.KineticLaw.Math == nil {
		t.Fatal("law not adopted from second model")
	}
	if !strings.Contains(log.String(), "adopted kinetic law") {
		t.Errorf("log = %q", log.String())
	}
}

func TestCompartmentAdoptsSizeFromSecond(t *testing.T) {
	a := mkModel("m1", []string{"A"}, nil)
	a.Compartments[0].HasSize = false
	a.Compartments[0].Size = 0
	b := mkModel("m2", []string{"A"}, nil)
	b.Compartments[0].Size = 2.5
	res := compose(t, a, b, Options{})
	comp := res.Model.CompartmentByID("cell")
	if !comp.HasSize || comp.Size != 2.5 {
		t.Errorf("size not adopted: %+v", comp)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("adoption should not warn: %v", res.Warnings)
	}
}

func TestSpeciesAdoptsInitialValueFromSecond(t *testing.T) {
	a := mkModel("m1", nil, nil)
	a.Species = append(a.Species, &sbml.Species{ID: "S", Compartment: "cell"}) // no value
	b := mkModel("m2", nil, nil)
	b.Species = append(b.Species, &sbml.Species{
		ID: "S", Compartment: "cell", InitialConcentration: 4, HasInitialConcentration: true,
	})
	res := compose(t, a, b, Options{})
	s := res.Model.SpeciesByID("S")
	if !s.HasInitialConcentration || s.InitialConcentration != 4 {
		t.Errorf("value not adopted: %+v", s)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("adoption should not warn: %v", res.Warnings)
	}
}

func TestUnitDefinitionUnknownKindStructuralKey(t *testing.T) {
	// Unknown base kinds can't canonicalize; the structural fallback key
	// still dedupes identical definitions and separates different ones.
	mk := func(id string, kind string) *sbml.Model {
		m := sbml.NewModel(id)
		m.UnitDefinitions = append(m.UnitDefinitions, &sbml.UnitDefinition{
			ID: "u", Units: []units.Unit{{Kind: kind, Exponent: 1, Multiplier: 1}},
		})
		return m
	}
	// Note: these models are structurally fine but semantically invalid
	// (unknown unit kind); composition still behaves deterministically.
	a, b := mk("a", "zorkmids"), mk("b", "zorkmids")
	res, err := Compose(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Model.UnitDefinitions) != 1 {
		t.Errorf("identical unknown units should merge: %d", len(res.Model.UnitDefinitions))
	}
	c := mk("c", "flurbs")
	res, err = Compose(a, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Model.UnitDefinitions) != 2 {
		t.Errorf("different unknown units should both survive: %d", len(res.Model.UnitDefinitions))
	}
	if res.Renames["u"] == "" {
		t.Errorf("id clash should rename: %v", res.Renames)
	}
}

func TestEventRenameOnIDCollision(t *testing.T) {
	mkEv := func(id string, threshold float64) *sbml.Event {
		return &sbml.Event{
			ID:      id,
			Trigger: mathml.Call("gt", mathml.S("A"), mathml.N(threshold)),
			Assignments: []*sbml.EventAssignment{
				{Variable: "A", Math: mathml.N(0)},
			},
		}
	}
	a := mkModel("m1", []string{"A"}, nil)
	a.Species[0].Constant = false
	a.Events = append(a.Events, mkEv("alarm", 10))
	b := mkModel("m2", []string{"A"}, nil)
	b.Species[0].Constant = false
	b.Events = append(b.Events, mkEv("alarm", 20)) // same id, different trigger
	res := compose(t, a, b, Options{})
	if len(res.Model.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(res.Model.Events))
	}
	if res.Renames["alarm"] == "" {
		t.Errorf("expected event rename: %v", res.Renames)
	}
}

func TestMichaelisMentenLawsMergeByPattern(t *testing.T) {
	mk := func(id string, commuted bool) *sbml.Model {
		m := mkModel(id, []string{"S", "P"}, nil)
		m.Parameters = append(m.Parameters,
			&sbml.Parameter{ID: "Vmax", Value: 1, HasValue: true, Constant: true},
			&sbml.Parameter{ID: "Km", Value: 0.5, HasValue: true, Constant: true},
		)
		law := "Vmax*S/(Km+S)"
		if commuted {
			law = "S*Vmax/(S+Km)"
		}
		m.Reactions = append(m.Reactions, &sbml.Reaction{
			ID:         "mm",
			Reactants:  []*sbml.SpeciesReference{{Species: "S", Stoichiometry: 1}},
			Products:   []*sbml.SpeciesReference{{Species: "P", Stoichiometry: 1}},
			KineticLaw: &sbml.KineticLaw{Math: mathml.MustParseInfix(law)},
		})
		return m
	}
	res := compose(t, mk("a", false), mk("b", true), Options{})
	if len(res.Model.Reactions) != 1 {
		t.Errorf("reactions = %d, want 1", len(res.Model.Reactions))
	}
	if len(res.Warnings) != 0 {
		t.Errorf("commuted MM laws should merge silently: %v", res.Warnings)
	}
}

func TestStoichiometryDifferenceSeparatesReactions(t *testing.T) {
	mk := func(id string, stoich float64) *sbml.Model {
		m := mkModel(id, []string{"A", "B"}, nil)
		m.Parameters = append(m.Parameters, &sbml.Parameter{ID: "k", Value: 1, HasValue: true, Constant: true})
		m.Reactions = append(m.Reactions, &sbml.Reaction{
			ID:         "r",
			Reactants:  []*sbml.SpeciesReference{{Species: "A", Stoichiometry: stoich}},
			Products:   []*sbml.SpeciesReference{{Species: "B", Stoichiometry: 1}},
			KineticLaw: &sbml.KineticLaw{Math: mathml.MustParseInfix("k*A")},
		})
		return m
	}
	// A→B and 2A→B are chemically different reactions: both survive.
	res := compose(t, mk("a", 1), mk("b", 2), Options{})
	if len(res.Model.Reactions) != 2 {
		t.Errorf("reactions = %d, want 2", len(res.Model.Reactions))
	}
}

func TestComposeLogIsOptional(t *testing.T) {
	a := mkModel("m1", []string{"A"}, nil)
	b := mkModel("m2", []string{"A"}, nil)
	b.Species[0].InitialConcentration = 9 // conflict with nil log
	res, err := Compose(a, b, Options{Log: nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 {
		t.Errorf("warnings should be collected even without a log: %v", res.Warnings)
	}
}

func TestRenameAvoidsSecondModelIDs(t *testing.T) {
	// The fresh name chosen for a clash must not collide with ids still to
	// come from the second model.
	a := mkModel("m1", []string{"X"}, nil)
	a.Parameters = append(a.Parameters, &sbml.Parameter{ID: "k", Value: 1, HasValue: true, Constant: true})
	b := mkModel("m2", []string{"Y"}, nil)
	b.Parameters = append(b.Parameters,
		&sbml.Parameter{ID: "k", Value: 2, HasValue: true, Constant: true},    // clash → rename
		&sbml.Parameter{ID: "k_m2", Value: 3, HasValue: true, Constant: true}, // occupies the obvious fresh name
	)
	res := compose(t, a, b, Options{})
	if err := sbml.Check(res.Model); err != nil {
		t.Fatalf("rename collided: %v", err)
	}
	if len(res.Model.Parameters) != 3 {
		t.Errorf("parameters = %d, want 3", len(res.Model.Parameters))
	}
}

func TestSemanticsLevelString(t *testing.T) {
	if HeavySemantics.String() != "heavy" || LightSemantics.String() != "light" || NoSemantics.String() != "none" {
		t.Error("semantics level names wrong")
	}
}
