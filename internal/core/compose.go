// Package core implements SBMLCompose, the paper's primary contribution:
// unsupervised composition of SBML biochemical network models.
//
// The composition follows the paper's two algorithms exactly in structure:
//
//   - Figure 4 fixes the order in which component types are composed
//     (function definitions → unit definitions → compartment types → species
//     types → compartments → species → parameters → rules → constraints →
//     reactions → events), so every reference a later component makes is
//     already resolved when it is processed;
//
//   - Figure 5 is the generic per-component merge: look the second model's
//     component up in an index over the first model's components; on a hit,
//     record the duplicate, check for conflicts and record an id mapping; on
//     a miss, check for id collisions (renaming the newcomer when its id is
//     taken by a different component) and add the component to the first
//     model.
//
// Equality is type-specific (§3): species match by identical or synonymous
// names, unit definitions by reduction against the list of known units,
// parameters only when value and units agree ("all parameters have to be
// included … if two parameters have the same name, then one is renamed"),
// and everything carrying maths — function definitions, rules, constraints,
// kinetic laws, initial assignments, event triggers — by the
// commutativity-aware MathML patterns of Figure 7. Conflicts resolve
// first-component-wins with a warning written to the composition log, and
// rate-constant conflicts are reconciled by the mole↔molecule conversions of
// Figure 6 before being declared conflicts.
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"sbmlcompose/internal/index"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
)

// SemanticsLevel selects how much meaning the matcher uses, implementing the
// heavy/light/none comparison proposed in the paper's future work (§5).
type SemanticsLevel int

const (
	// HeavySemantics is the paper's full treatment: synonym tables, math
	// patterns and unit conversion.
	HeavySemantics SemanticsLevel = iota
	// LightSemantics matches on exact ids/names and math patterns but uses
	// no synonym table and performs no unit conversion.
	LightSemantics
	// NoSemantics is a purely structural merge: components are equal only
	// when their ids and their maths are exactly equal.
	NoSemantics
)

// String names the level.
func (s SemanticsLevel) String() string {
	switch s {
	case LightSemantics:
		return "light"
	case NoSemantics:
		return "none"
	default:
		return "heavy"
	}
}

// Options configures a composition.
type Options struct {
	// Semantics selects the matching depth; the default is HeavySemantics.
	Semantics SemanticsLevel
	// Synonyms supplies the synonym table for heavy semantics. Nil falls
	// back to exact name matching.
	Synonyms *synonym.Table
	// Index selects the component index structure (the paper uses a hash
	// map; others exist for the index ablation).
	Index index.Kind
	// Log receives warning lines as they are produced; nil discards them.
	// Warnings are also collected on the Result. In parallel mode writes
	// are serialized but their interleaving across merge nodes is
	// unspecified; the Result's Warnings stay deterministic.
	Log io.Writer
	// Parallel switches ComposeAll from the sequential incremental fold to
	// a balanced-binary-reduction merge executed by a worker pool. The
	// merge tree depends only on the input order, so results are
	// reproducible regardless of scheduling. Because components meet in a
	// different order than under the left fold, results can differ from
	// the sequential mode's on conflicting inputs: fresh-name choices,
	// conflict resolutions, and even which duplicates merge (e.g. two
	// equal-valued parameters that each conflict with an earlier model's
	// may merge with each other in the tree but be renamed apart by the
	// fold). On batches whose models don't fight over ids the two modes
	// agree byte for byte.
	Parallel bool
	// Workers caps the parallel worker pool; 0 or less means GOMAXPROCS.
	Workers int
}

// Warning records a decision the composer took on the user's behalf, such as
// resolving a conflict by keeping the first model's value.
type Warning struct {
	// Component identifies the SBML component, e.g. `species "A"`.
	Component string
	// Message explains the decision.
	Message string
}

func (w Warning) String() string { return w.Component + ": " + w.Message }

// Stats summarizes a composition.
type Stats struct {
	// Merged counts second-model components recognized as duplicates.
	Merged int
	// Added counts second-model components appended to the result.
	Added int
	// Renamed counts second-model components renamed to avoid collisions.
	Renamed int
	// Conflicts counts conflicting duplicates resolved first-wins.
	Conflicts int
	// Duration is the wall-clock composition time.
	Duration time.Duration
}

// Match records that a second-model component was identified with a
// first-model component — the "matching" half of the paper's title. First
// and Second are the component ids in their respective models (equal when
// the models already agreed on the id).
type Match struct {
	First  string
	Second string
}

// Result is the outcome of a composition.
type Result struct {
	// Model is the composed model; inputs are never mutated.
	Model *sbml.Model
	// Warnings lists every conflict decision, in order.
	Warnings []Warning
	// Matches lists every identified component correspondence, in
	// composition order.
	Matches []Match
	// Mappings maps second-model ids to the first-model ids they merged
	// with ("add mapping" in Figure 5).
	Mappings map[string]string
	// Renames maps second-model ids to the fresh ids they received.
	Renames map[string]string
	// Stats summarizes the merge.
	Stats Stats
}

// composer carries the mutable state of one pairwise composition step. It
// merges the second model into the compiled accumulator, keeping the
// accumulator's indexes consistent as components land.
type composer struct {
	opts   Options
	acc    *CompiledModel // compiled accumulator; owns out and its indexes
	out    *sbml.Model    // the grown first model (acc's model)
	second *sbml.Model    // private clone of the second model, renamed in place
	res    *Result
	outIDs map[string]bool // all ids in out (acc's live id set), for fresh-name generation
	// initialValues holds the pre-collected initial value of every symbol
	// in each input model (§3: "the initial values of all component
	// attributes are collected before composition begins").
	firstValues  map[string]float64
	secondValues map[string]float64
	// secondIDs caches the second model's id set for fresh-name generation,
	// built on the first rename and maintained through later renames and
	// mappings so renameID stays O(1) instead of re-walking the model.
	secondIDs map[string]bool
	// mathWatch records each math-keyed component added this step with its
	// at-insert key, so repairMathKeys can detect keys a later rename
	// rewrote and rebuild only the affected families.
	mathWatch []watchedKey
}

// watchedKey is one math-keyed component inserted during the current step.
type watchedKey struct {
	key  string
	comp any // *FunctionDefinition, algebraic *Rule, *Constraint or *Event
}

// watchMath records a freshly indexed math-keyed component.
func (c *composer) watchMath(key string, comp any) {
	c.mathWatch = append(c.mathWatch, watchedKey{key: key, comp: comp})
}

// repairMathKeys re-derives the key of every math-keyed component the step
// inserted and rebuilds the families where a key drifted — the only way an
// accumulator index can go stale, since RenameSymbols touches only the
// second model, whose appended components alias the accumulator's. Callers
// that keep the accumulator past this step must invoke it after
// runPipeline; the scan is O(step additions) and skipped entirely when the
// step recorded no renames or mappings (keys cannot drift without a
// RenameSymbols call).
func (c *composer) repairMathKeys() {
	if len(c.res.Mappings) == 0 && len(c.res.Renames) == 0 {
		return
	}
	var funcs, algs, cons, events bool
	for _, w := range c.mathWatch {
		switch x := w.comp.(type) {
		case *sbml.FunctionDefinition:
			funcs = funcs || mathKeyFor(c.opts, x.Math) != w.key
		case *sbml.Rule:
			algs = algs || mathKeyFor(c.opts, x.Math) != w.key
		case *sbml.Constraint:
			cons = cons || mathKeyFor(c.opts, x.Math) != w.key
		case *sbml.Event:
			events = events || eventKeyFor(c.opts, x) != w.key
		}
	}
	if funcs || algs || cons || events {
		c.acc.rekeyMathIndexes(funcs, algs, cons, events)
	}
}

// newStepComposer wires a pairwise step against a compiled accumulator. The
// caller supplies secondValues (collected from the uncloned input, which is
// equivalent and avoids touching the clone twice). The first model's values
// come from the accumulator's incrementally-maintained map — frozen for the
// duration of the step, exactly like the scan the seed performed here —
// and callers that keep the accumulator flush the step's value changes
// afterwards (flushValues).
func newStepComposer(acc *CompiledModel, second *sbml.Model, res *Result) *composer {
	return &composer{
		opts:        acc.opts,
		acc:         acc,
		out:         acc.model,
		second:      second,
		res:         res,
		outIDs:      acc.ids,
		firstValues: acc.values,
	}
}

// runPipeline executes Figure 4's fixed composition order. Callers that
// keep the accumulator beyond this step must repair math-derived index
// keys afterwards (rekeyMathIndexes) if the step mapped or renamed ids; a
// one-shot Compose skips that, its indexes die with the call.
func (c *composer) runPipeline() {
	_ = c.runPipelineCtx(context.Background())
}

// runPipelineCtx is runPipeline with cancellation checked between component
// families (Figure 4's stages are the step's natural units of work). On
// cancellation it stops before the next family and returns the context's
// error; families already composed have mutated the accumulator, so callers
// that keep the accumulator must treat a non-nil return as poisoning it.
// The check sequence never alters the composition itself: an uncancelled
// context yields byte-identical results to runPipeline.
func (c *composer) runPipelineCtx(ctx context.Context) error {
	stages := []func(){
		c.composeFunctionDefinitions,
		c.composeUnitDefinitions,
		c.composeCompartmentTypes,
		c.composeSpeciesTypes,
		c.composeCompartments,
		c.composeSpecies,
		c.composeParameters,
		c.composeInitialAssignments,
		c.composeRules,
		c.composeConstraints,
		c.composeReactions,
		c.composeEvents,
	}
	for _, stage := range stages {
		if err := ctx.Err(); err != nil {
			return err
		}
		stage()
	}
	return nil
}

// Compose merges model b into a copy of model a following Figures 4 and 5.
// Neither input is modified. The error is non-nil only for nil inputs;
// model-level conflicts are resolved first-wins and reported as warnings.
func Compose(a, b *sbml.Model, opts Options) (*Result, error) {
	return ComposeContext(context.Background(), a, b, opts)
}

// ComposeContext is Compose honoring cancellation: the pairwise step checks
// ctx between component families and returns ctx's error without producing
// a model when the context is done. All compiled state is private to the
// call, so a cancelled ComposeContext leaves nothing half-mutated. An
// uncancelled context yields results byte-identical to Compose.
func ComposeContext(ctx context.Context, a, b *sbml.Model, opts Options) (*Result, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("core: Compose requires two non-nil models (got %v, %v)", a != nil, b != nil)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	// Figure 5 lines 1-2: if one model is empty, return the other.
	if a.ComponentCount() == 0 {
		res := &Result{Model: b.Clone(), Mappings: map[string]string{}, Renames: map[string]string{}}
		res.Stats.Added = b.ComponentCount()
		res.Stats.Duration = time.Since(start)
		return res, nil
	}
	if b.ComponentCount() == 0 {
		res := &Result{Model: a.Clone(), Mappings: map[string]string{}, Renames: map[string]string{}}
		res.Stats.Duration = time.Since(start)
		return res, nil
	}

	res := &Result{Mappings: map[string]string{}, Renames: map[string]string{}}
	c := newStepComposer(compile(a.Clone(), opts), b.Clone(), res)
	c.secondValues = collectInitialValues(b)
	if err := c.runPipelineCtx(ctx); err != nil {
		return nil, err
	}
	res.Model = c.out
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// MatchModels computes the component correspondence between two models
// without producing a merged model: the matching problem of the paper's
// title, answered with the same machinery composition uses. The returned
// matches pair first-model ids with the second-model ids identified with
// them.
func MatchModels(a, b *sbml.Model, opts Options) ([]Match, error) {
	return MatchModelsContext(context.Background(), a, b, opts)
}

// MatchModelsContext is MatchModels honoring cancellation; see
// ComposeContext.
func MatchModelsContext(ctx context.Context, a, b *sbml.Model, opts Options) ([]Match, error) {
	res, err := ComposeContext(ctx, a, b, opts)
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// ComposeAll batch-composes the models, supporting the incremental model
// assembly workflow the paper says semanticSBML cannot offer ("should a
// group of modelers be creating a large new model … it is not possible for
// the model to be built incrementally").
//
// By default it folds left-to-right through one persistent compiled
// accumulator, so each input model is matched against indexes that are
// updated in place rather than rebuilt every step. With opts.Parallel it
// switches to a deterministic balanced-binary-reduction merge across a
// worker pool (see Options.Parallel).
func ComposeAll(models []*sbml.Model, opts Options) (*Result, error) {
	return ComposeAllContext(context.Background(), models, opts)
}

// ComposeAllContext is ComposeAll honoring cancellation: the sequential
// fold checks ctx between component families of every Add, and the parallel
// reduction's workers check it between tree nodes. A cancelled call returns
// ctx's error and no model; all accumulators are private to the call, so
// nothing half-mutated escapes. An uncancelled context yields results
// byte-identical to ComposeAll at every worker count.
func ComposeAllContext(ctx context.Context, models []*sbml.Model, opts Options) (*Result, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("core: ComposeAll requires at least one model")
	}
	for i, m := range models {
		if m == nil {
			return nil, fmt.Errorf("core: ComposeAll model %d is nil", i)
		}
	}
	if opts.Parallel && len(models) > 1 {
		return composeAllParallel(ctx, models, opts)
	}
	c := NewComposer(opts)
	for _, m := range models {
		if err := c.AddContext(ctx, m); err != nil {
			return nil, err
		}
	}
	return c.Result(), nil
}

// warn records a conflict decision and mirrors it to the log writer.
func (c *composer) warn(component, format string, args ...any) {
	w := Warning{Component: component, Message: fmt.Sprintf(format, args...)}
	c.res.Warnings = append(c.res.Warnings, w)
	if c.opts.Log != nil {
		fmt.Fprintf(c.opts.Log, "warning: %s\n", w)
	}
}

// note records an informational decision (e.g. a successful unit
// conversion) to the log only.
func (c *composer) note(component, format string, args ...any) {
	if c.opts.Log != nil {
		fmt.Fprintf(c.opts.Log, "info: %s: %s\n", component, fmt.Sprintf(format, args...))
	}
}

// mapID records that second-model id `from` now denotes `to` in the
// composed model, and rewrites the remaining second-model components so
// later comparisons see the mapped name (Figure 5 "add mapping" plus
// Figure 7's "after applying mappings").
func (c *composer) mapID(from, to string) {
	if from != "" && to != "" {
		c.res.Matches = append(c.res.Matches, Match{First: to, Second: from})
	}
	if from == to {
		return
	}
	c.res.Mappings[from] = to
	c.second.RenameSymbols(map[string]string{from: to})
	if c.secondIDs != nil {
		delete(c.secondIDs, from)
		c.secondIDs[to] = true
	}
}

// renameID gives a second-model component a fresh id derived from `from`
// and rewrites the second model accordingly. The fresh id must avoid both
// the composed model's ids and every id still pending in the second model:
// colliding with a pending id would make the in-place rename capture an
// unrelated component.
func (c *composer) renameID(from, component string) string {
	if c.secondIDs == nil {
		c.secondIDs = c.second.AllIDs()
	}
	fresh := from
	for i := 2; ; i++ {
		fresh = fmt.Sprintf("%s_m%d", from, i)
		if !c.outIDs[fresh] && !c.secondIDs[fresh] {
			break
		}
	}
	c.res.Renames[from] = fresh
	c.second.RenameSymbols(map[string]string{from: fresh})
	delete(c.secondIDs, from)
	c.secondIDs[fresh] = true
	c.warn(component, "id %q already used in first model; renamed to %q", from, fresh)
	c.res.Stats.Renamed++
	return fresh
}

// claimID marks an id as used in the composed model.
func (c *composer) claimID(id string) {
	if id != "" {
		c.outIDs[id] = true
	}
}

// matchNames reports whether two component names/ids denote the same entity
// under the current semantics level.
func (c *composer) matchNames(a, b string) bool {
	if a == "" || b == "" {
		return false
	}
	switch c.opts.Semantics {
	case NoSemantics:
		return a == b
	case LightSemantics:
		return a == b || synonym.Normalize(a) == synonym.Normalize(b)
	default:
		if c.opts.Synonyms != nil {
			return c.opts.Synonyms.Match(a, b)
		}
		return a == b || synonym.Normalize(a) == synonym.Normalize(b)
	}
}

// canonicalName returns the index key for an entity name under the current
// semantics level.
func (c *composer) canonicalName(name string) string {
	return canonicalNameFor(c.opts, name)
}
