package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
)

func TestDecomposeTwoChains(t *testing.T) {
	// A→B and X→Y are independent subnetworks plus one isolated species.
	m := mkModel("m", []string{"A", "B", "X", "Y", "lone"},
		[]string{"A>B:k1", "X>Y:k2"})
	parts, err := Decompose(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3 (two chains + isolated)", len(parts))
	}
	for _, p := range parts {
		if err := sbml.Check(p); err != nil {
			t.Errorf("part %s invalid: %v", p.ID, err)
		}
	}
	if len(parts[0].Species) != 2 || len(parts[0].Reactions) != 1 {
		t.Errorf("part 1 = %d species %d reactions", len(parts[0].Species), len(parts[0].Reactions))
	}
	// Isolated species land in the last part with no reactions.
	last := parts[len(parts)-1]
	if len(last.Species) != 1 || last.Species[0].ID != "lone" || len(last.Reactions) != 0 {
		t.Errorf("isolated part wrong: %+v", last.Species)
	}
}

func TestDecomposeCarriesReferencedGlobals(t *testing.T) {
	m := mkModel("m", []string{"A", "B", "X", "Y"}, []string{"A>B:k1", "X>Y:k2"})
	parts, err := Decompose(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	// Each part carries exactly its own rate constant.
	if parts[0].ParameterByID("k1") == nil || parts[0].ParameterByID("k2") != nil {
		t.Errorf("part 1 parameters wrong: %+v", parts[0].Parameters)
	}
	if parts[1].ParameterByID("k2") == nil || parts[1].ParameterByID("k1") != nil {
		t.Errorf("part 2 parameters wrong: %+v", parts[1].Parameters)
	}
	// Both carry the shared compartment.
	for _, p := range parts {
		if p.CompartmentByID("cell") == nil {
			t.Errorf("part %s lost its compartment", p.ID)
		}
	}
}

func TestDecomposeComposeRoundTrip(t *testing.T) {
	m := mkModel("m", []string{"A", "B", "C", "X", "Y"},
		[]string{"A>B:k1", "B>C:k2", "X>Y:k3"})
	parts, err := Decompose(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ComposeAll(parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sbml.Check(res.Model); err != nil {
		t.Fatal(err)
	}
	if len(res.Model.Species) != len(m.Species) {
		t.Errorf("species = %d, want %d", len(res.Model.Species), len(m.Species))
	}
	if len(res.Model.Reactions) != len(m.Reactions) {
		t.Errorf("reactions = %d, want %d", len(res.Model.Reactions), len(m.Reactions))
	}
	if len(res.Model.Parameters) != len(m.Parameters) {
		t.Errorf("parameters = %d, want %d", len(res.Model.Parameters), len(m.Parameters))
	}
}

func TestDecomposeSingleComponent(t *testing.T) {
	m := figure1Model("m")
	parts, err := Decompose(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Fatalf("fully connected model should stay whole, got %d parts", len(parts))
	}
	if len(parts[0].Species) != 3 || len(parts[0].Reactions) != 3 {
		t.Errorf("part = %d/%d", len(parts[0].Species), len(parts[0].Reactions))
	}
}

func TestDecomposeEmptyAndNil(t *testing.T) {
	parts, err := Decompose(sbml.NewModel("empty"))
	if err != nil || len(parts) != 1 {
		t.Errorf("empty model: %v, %d parts", err, len(parts))
	}
	if _, err := Decompose(nil); err == nil {
		t.Error("nil model should error")
	}
}

func TestDecomposePartsAreIndependentCopies(t *testing.T) {
	m := mkModel("m", []string{"A", "B"}, []string{"A>B:k1"})
	parts, err := Decompose(m)
	if err != nil {
		t.Fatal(err)
	}
	parts[0].Species[0].InitialConcentration = 999
	if m.Species[0].InitialConcentration == 999 {
		t.Error("part shares storage with the original model")
	}
}

func TestDecomposeKeepsParameterRules(t *testing.T) {
	m := mkModel("m", []string{"A", "B"}, []string{"A>B:k1"})
	// A rule over parameters only must survive in the first part.
	m.Parameters = append(m.Parameters, &sbml.Parameter{ID: "obs", Constant: false})
	m.Rules = append(m.Rules, &sbml.Rule{
		Kind: sbml.AssignmentRule, Variable: "obs",
		Math: mathml.MustParseInfix("k1 * 2"),
	})
	parts, err := Decompose(m)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += len(p.Rules)
	}
	if total != 1 {
		t.Errorf("rules across parts = %d, want 1", total)
	}
	for _, p := range parts {
		if err := sbml.Check(p); err != nil {
			t.Errorf("part %s invalid: %v", p.ID, err)
		}
	}
}

func TestQuickDecomposePreservesCounts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(r, "m")
		parts, err := Decompose(m)
		if err != nil {
			return false
		}
		species, reactions := 0, 0
		for _, p := range parts {
			species += len(p.Species)
			reactions += len(p.Reactions)
			if sbml.Check(p) != nil {
				return false
			}
		}
		return species == len(m.Species) && reactions == len(m.Reactions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecomposeComposeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(r, "m")
		if len(m.Species) == 0 {
			return true
		}
		parts, err := Decompose(m)
		if err != nil {
			return false
		}
		res, err := ComposeAll(parts, Options{})
		if err != nil {
			return false
		}
		return len(res.Model.Species) == len(m.Species) &&
			len(res.Model.Reactions) == len(m.Reactions) &&
			sbml.Check(res.Model) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
