package core

import (
	"testing"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
	"sbmlcompose/internal/units"
)

func TestCompartmentAndSpeciesTypesMerge(t *testing.T) {
	mk := func(id, ctID, ctName, stID string) *sbml.Model {
		m := mkModel(id, nil, nil)
		m.CompartmentTypes = append(m.CompartmentTypes, &sbml.CompartmentType{ID: ctID, Name: ctName})
		m.SpeciesTypes = append(m.SpeciesTypes, &sbml.SpeciesType{ID: stID})
		return m
	}
	// Same ids merge.
	res := compose(t, mk("a", "membrane", "", "protein"), mk("b", "membrane", "", "protein"), Options{})
	if len(res.Model.CompartmentTypes) != 1 || len(res.Model.SpeciesTypes) != 1 {
		t.Errorf("same-id types did not merge: %d/%d",
			len(res.Model.CompartmentTypes), len(res.Model.SpeciesTypes))
	}
	// Different id but same name merges via the name key.
	res = compose(t, mk("a", "ct1", "membrane bound", "protein"),
		mk("b", "ct2", "membrane-bound", "protein"), Options{})
	if len(res.Model.CompartmentTypes) != 1 {
		t.Errorf("name-matched compartment types did not merge: %d", len(res.Model.CompartmentTypes))
	}
	if res.Mappings["ct2"] != "ct1" {
		t.Errorf("mappings = %v", res.Mappings)
	}
	// Different id and name: both kept.
	res = compose(t, mk("a", "ct1", "membrane", "st1"), mk("b", "ct2", "vesicle", "st2"), Options{})
	if len(res.Model.CompartmentTypes) != 2 || len(res.Model.SpeciesTypes) != 2 {
		t.Errorf("distinct types merged wrongly: %d/%d",
			len(res.Model.CompartmentTypes), len(res.Model.SpeciesTypes))
	}
	// Same id but... id always wins; rename path: id clash where name differs
	// is impossible for types (id match implies merge), so no rename here.
}

func TestFunctionDefinitionIDClashDifferentBody(t *testing.T) {
	mk := func(id, body string) *sbml.Model {
		m := sbml.NewModel(id)
		m.FunctionDefinitions = append(m.FunctionDefinitions, &sbml.FunctionDefinition{
			ID: "f", Math: mathml.Lambda{Params: []string{"x"}, Body: mathml.MustParseInfix(body)},
		})
		return m
	}
	res := compose(t, mk("a", "x*2"), mk("b", "x*3"), Options{})
	if len(res.Model.FunctionDefinitions) != 2 {
		t.Fatalf("different-bodied functions must both survive: %d", len(res.Model.FunctionDefinitions))
	}
	if res.Renames["f"] == "" {
		t.Errorf("expected rename: %v", res.Renames)
	}
}

func TestAlgebraicRulesMergeByPattern(t *testing.T) {
	mk := func(id, expr string) *sbml.Model {
		m := mkModel(id, []string{"A", "B"}, nil)
		m.Rules = append(m.Rules, &sbml.Rule{Kind: sbml.AlgebraicRule, Math: mathml.MustParseInfix(expr)})
		return m
	}
	// Commuted algebraic rules merge.
	res := compose(t, mk("a", "A + B - 1"), mk("b", "B + A - 1"), Options{})
	if len(res.Model.Rules) != 1 {
		t.Errorf("rules = %d, want 1", len(res.Model.Rules))
	}
	// Different algebraic rules both survive.
	res = compose(t, mk("a", "A + B - 1"), mk("b", "A - B"), Options{})
	if len(res.Model.Rules) != 2 {
		t.Errorf("rules = %d, want 2", len(res.Model.Rules))
	}
}

func TestRateRuleVsAssignmentRuleDistinct(t *testing.T) {
	a := mkModel("a", []string{"A"}, nil)
	a.Species[0].Constant = false
	a.Rules = append(a.Rules, &sbml.Rule{Kind: sbml.RateRule, Variable: "A", Math: mathml.N(1)})
	b := mkModel("b", []string{"A"}, nil)
	b.Species[0].Constant = false
	b.Rules = append(b.Rules, &sbml.Rule{Kind: sbml.AssignmentRule, Variable: "A", Math: mathml.N(1)})
	res, err := Compose(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Different kinds for the same variable are distinct components; both
	// survive (the result is semantically invalid SBML, which Validate
	// reports — but the composer's job is to preserve, not to drop).
	if len(res.Model.Rules) != 2 {
		t.Errorf("rules = %d, want 2", len(res.Model.Rules))
	}
}

func TestParameterUnitsDisagreementRenames(t *testing.T) {
	mk := func(id, unitsRef string) *sbml.Model {
		m := mkModel(id, nil, nil)
		m.UnitDefinitions = append(m.UnitDefinitions,
			&sbml.UnitDefinition{ID: "per_second", Units: []units.Unit{{Kind: "second", Exponent: -1, Multiplier: 1}}},
			&sbml.UnitDefinition{ID: "per_minute", Units: []units.Unit{{Kind: "second", Exponent: -1, Multiplier: 60}}},
		)
		m.Parameters = append(m.Parameters, &sbml.Parameter{ID: "k", Value: 1, HasValue: true, Units: unitsRef, Constant: true})
		return m
	}
	// Same value, same units → merge.
	res := compose(t, mk("a", "per_second"), mk("b", "per_second"), Options{})
	if len(res.Model.Parameters) != 1 {
		t.Errorf("same-unit params = %d, want 1", len(res.Model.Parameters))
	}
	// Same value, different units → rename (they are different quantities).
	res = compose(t, mk("a", "per_second"), mk("b", "per_minute"), Options{})
	if len(res.Model.Parameters) != 2 {
		t.Errorf("different-unit params = %d, want 2", len(res.Model.Parameters))
	}
	// Unit reference to a base kind resolves too.
	res = compose(t, mk("a", "second"), mk("b", "second"), Options{})
	if len(res.Model.Parameters) != 1 {
		t.Errorf("base-kind params = %d, want 1", len(res.Model.Parameters))
	}
}

func TestMatchNamesSemanticsLevels(t *testing.T) {
	tab := synonym.NewTable()
	tab.Add("glucose", "dextrose")
	c := &composer{opts: Options{Semantics: HeavySemantics, Synonyms: tab}}
	if !c.matchNames("glucose", "dextrose") {
		t.Error("heavy+table should match synonyms")
	}
	if !c.matchNames("Glucose", "glucose") {
		t.Error("case-insensitive match failed")
	}
	if c.matchNames("", "x") || c.matchNames("x", "") {
		t.Error("empty names must not match")
	}
	c.opts = Options{Semantics: HeavySemantics} // heavy without table
	if !c.matchNames("D-Glucose", "d glucose") {
		t.Error("heavy without table should normalize")
	}
	c.opts = Options{Semantics: LightSemantics, Synonyms: tab}
	if c.matchNames("glucose", "dextrose") {
		t.Error("light must ignore the synonym table")
	}
	if !c.matchNames("A B", "a-b") {
		t.Error("light should still normalize")
	}
	c.opts = Options{Semantics: NoSemantics}
	if c.matchNames("Glucose", "glucose") {
		t.Error("none must be exact")
	}
	if !c.matchNames("x", "x") {
		t.Error("none should match identical")
	}
}

func TestReactionBasisProductsOnly(t *testing.T) {
	// Zeroth-order reaction: basis comes from the product species.
	m := mkModel("m", nil, nil)
	m.Species = append(m.Species, &sbml.Species{
		ID: "X", Compartment: "cell", InitialAmount: 10, HasInitialAmount: true,
		SubstanceUnits: "item",
	})
	r := &sbml.Reaction{
		ID:       "synth",
		Products: []*sbml.SpeciesReference{{Species: "X", Stoichiometry: 1}},
	}
	if got := reactionBasis(m, r); got != units.Molecules {
		t.Errorf("basis = %v, want molecules", got)
	}
	// No species resolvable → default moles.
	empty := &sbml.Reaction{ID: "none"}
	if got := reactionBasis(m, empty); got != units.Moles {
		t.Errorf("empty reaction basis = %v, want moles", got)
	}
}

func TestCompartmentVolumeDefaults(t *testing.T) {
	m := mkModel("m", nil, nil)
	if v := compartmentVolume(m, "cell"); v != 1 {
		t.Errorf("volume = %g", v)
	}
	if v := compartmentVolume(m, "missing"); v != 1 {
		t.Errorf("missing compartment volume = %g, want default 1", v)
	}
	m.Compartments[0].Size = 0.25
	if v := compartmentVolume(m, "cell"); v != 0.25 {
		t.Errorf("volume = %g, want 0.25", v)
	}
}

func TestRateConstantValueLookupOrder(t *testing.T) {
	m := mkModel("m", []string{"A", "B"}, []string{"A>B:k1"})
	r := m.Reactions[0]
	c := &composer{out: m, firstValues: collectInitialValues(m)}
	// Global parameter resolves.
	if v, ok := c.rateConstantValue(m, r, "k1", c.firstValues); !ok || v != 0.1 {
		t.Errorf("global lookup = %v %v", v, ok)
	}
	// Local parameter shadows.
	r.KineticLaw.Parameters = append(r.KineticLaw.Parameters,
		&sbml.Parameter{ID: "k1", Value: 9, HasValue: true, Constant: true})
	if v, ok := c.rateConstantValue(m, r, "k1", c.firstValues); !ok || v != 9 {
		t.Errorf("local lookup = %v %v", v, ok)
	}
	// Unknown id fails.
	if _, ok := c.rateConstantValue(m, r, "nope", c.firstValues); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestDecomposeCarriesFunctionsAndEvents(t *testing.T) {
	m := mkModel("m", []string{"A", "B", "X", "Y"}, []string{"A>B:k1", "X>Y:k2"})
	m.FunctionDefinitions = append(m.FunctionDefinitions, &sbml.FunctionDefinition{
		ID: "dbl", Math: mathml.Lambda{Params: []string{"v"}, Body: mathml.MustParseInfix("v*2")},
	})
	// Make the first chain's law call the function.
	m.Reactions[0].KineticLaw.Math = mathml.MustParseInfix("dbl(k1)*A")
	m.Species[1].Constant = false // B
	m.Events = append(m.Events, &sbml.Event{
		ID:      "ev",
		Trigger: mathml.MustParseInfix("A > 5"),
		Assignments: []*sbml.EventAssignment{
			{Variable: "B", Math: mathml.N(0)},
		},
	})
	parts, err := Decompose(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	// Part 1 (A,B) needs dbl and the event; part 2 (X,Y) needs neither.
	if parts[0].FunctionByID("dbl") == nil {
		t.Error("part 1 lost its function definition")
	}
	if len(parts[0].Events) != 1 {
		t.Errorf("part 1 events = %d", len(parts[0].Events))
	}
	if parts[1].FunctionByID("dbl") != nil {
		t.Error("part 2 should not carry the unused function")
	}
	if len(parts[1].Events) != 0 {
		t.Errorf("part 2 events = %d", len(parts[1].Events))
	}
	for _, p := range parts {
		if err := sbml.Check(p); err != nil {
			t.Errorf("part %s invalid: %v", p.ID, err)
		}
	}
}
