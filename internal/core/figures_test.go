package core

import (
	"testing"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
)

// mkModel builds a one-compartment model with the given species ids and
// mass-action reactions described as "A>B:k1" (k value 0.1 each, parameter
// added globally).
func mkModel(id string, species []string, reactions []string) *sbml.Model {
	m := sbml.NewModel(id)
	m.Compartments = append(m.Compartments, &sbml.Compartment{
		ID: "cell", SpatialDimensions: 3, Size: 1, HasSize: true, Constant: true,
	})
	for _, s := range species {
		m.Species = append(m.Species, &sbml.Species{
			ID: s, Compartment: "cell", InitialConcentration: 1, HasInitialConcentration: true,
		})
	}
	for _, spec := range reactions {
		var from, to, k string
		for i := 0; i < len(spec); i++ {
			if spec[i] == '>' {
				from = spec[:i]
				rest := spec[i+1:]
				for j := 0; j < len(rest); j++ {
					if rest[j] == ':' {
						to = rest[:j]
						k = rest[j+1:]
					}
				}
			}
		}
		if m.ParameterByID(k) == nil {
			m.Parameters = append(m.Parameters, &sbml.Parameter{ID: k, Value: 0.1, HasValue: true, Constant: true})
		}
		m.Reactions = append(m.Reactions, &sbml.Reaction{
			ID:        "r_" + from + "_" + to,
			Reactants: []*sbml.SpeciesReference{{Species: from, Stoichiometry: 1}},
			Products:  []*sbml.SpeciesReference{{Species: to, Stoichiometry: 1}},
			KineticLaw: &sbml.KineticLaw{
				Math: mathml.Mul(mathml.S(k), mathml.S(from)),
			},
		})
	}
	return m
}

// figure1Model is the paper's running example: A → B ⇌ C with constants
// k1, k2, k3.
func figure1Model(id string) *sbml.Model {
	return mkModel(id, []string{"A", "B", "C"},
		[]string{"A>B:k1", "B>C:k2", "C>B:k3"})
}

func compose(t *testing.T, a, b *sbml.Model, opts Options) *Result {
	t.Helper()
	res, err := Compose(a, b, opts)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	if err := sbml.Check(res.Model); err != nil {
		t.Fatalf("composed model invalid: %v", err)
	}
	return res
}

func TestFigure1IdenticalModels(t *testing.T) {
	// Figure 1: a + a = a. Merging two identical models yields the same
	// model.
	a := figure1Model("m1")
	b := figure1Model("m2")
	res := compose(t, a, b, Options{})
	m := res.Model
	if len(m.Species) != 3 {
		t.Errorf("species = %d, want 3", len(m.Species))
	}
	if len(m.Reactions) != 3 {
		t.Errorf("reactions = %d, want 3", len(m.Reactions))
	}
	if len(m.Parameters) != 3 {
		t.Errorf("parameters = %d, want 3", len(m.Parameters))
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings on identical merge: %v", res.Warnings)
	}
	if res.Stats.Added != 0 {
		t.Errorf("Added = %d, want 0", res.Stats.Added)
	}
}

func TestFigure2DisjointModels(t *testing.T) {
	// Figure 2: (A→B→C) + (D→E) keeps both chains side by side.
	a := mkModel("m1", []string{"A", "B", "C"}, []string{"A>B:k1", "B>C:k2"})
	b := mkModel("m2", []string{"D", "E"}, []string{"D>E:k3"})
	res := compose(t, a, b, Options{})
	m := res.Model
	if len(m.Species) != 5 {
		t.Errorf("species = %d, want 5", len(m.Species))
	}
	if len(m.Reactions) != 3 {
		t.Errorf("reactions = %d, want 3", len(m.Reactions))
	}
	// The shared compartment "cell" merges; D and E live in it.
	if len(m.Compartments) != 1 {
		t.Errorf("compartments = %d, want 1", len(m.Compartments))
	}
}

func TestFigure3SharedSubnetwork(t *testing.T) {
	// Figure 3: (A→B⇌C→D) + (A→B→C) = A→B⇌C→D. The overlap merges, the
	// extension survives.
	a := mkModel("m1", []string{"A", "B", "C", "D"},
		[]string{"A>B:k1", "B>C:k2", "C>B:k3", "C>D:k4"})
	b := mkModel("m2", []string{"A", "B", "C"}, []string{"A>B:k1", "B>C:k2"})
	res := compose(t, a, b, Options{})
	m := res.Model
	if len(m.Species) != 4 {
		t.Errorf("species = %d, want 4", len(m.Species))
	}
	if len(m.Reactions) != 4 {
		t.Errorf("reactions = %d, want 4", len(m.Reactions))
	}
	if len(res.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", res.Warnings)
	}
	// Symmetric composition has the same size.
	res2 := compose(t, b, a, Options{})
	if len(res2.Model.Species) != 4 || len(res2.Model.Reactions) != 4 {
		t.Errorf("b+a = %d species %d reactions", len(res2.Model.Species), len(res2.Model.Reactions))
	}
}

func TestEmptyModelCases(t *testing.T) {
	// Figure 5 lines 1-2: composing with an empty model returns the other.
	a := figure1Model("m1")
	empty := sbml.NewModel("empty")
	res := compose(t, a, empty, Options{})
	if len(res.Model.Species) != 3 {
		t.Errorf("a+empty lost species")
	}
	res = compose(t, empty, a, Options{})
	if len(res.Model.Species) != 3 {
		t.Errorf("empty+a lost species")
	}
	if _, err := Compose(nil, a, Options{}); err == nil {
		t.Error("nil model should error")
	}
}

func TestInputsNotMutated(t *testing.T) {
	a := figure1Model("m1")
	b := mkModel("m2", []string{"A", "X"}, []string{"A>X:k9"})
	aBefore := sbml.WrapModel(a).ToXML().Canonical()
	bBefore := sbml.WrapModel(b).ToXML().Canonical()
	compose(t, a, b, Options{})
	if sbml.WrapModel(a).ToXML().Canonical() != aBefore {
		t.Error("first input mutated")
	}
	if sbml.WrapModel(b).ToXML().Canonical() != bBefore {
		t.Error("second input mutated")
	}
}
