package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"sbmlcompose/internal/index"
	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
)

// This file implements the compiled-model layer. The paper's Figure 5 merge
// is "look the component up in an index of the first model"; the seed built
// that index from scratch for every component type on every pairwise
// Compose, which made an n-model ComposeAll re-derive every synonym
// canonicalization, Figure 7 math pattern and reduced unit vector of the
// accumulator O(n) times. A CompiledModel computes the keys once and then
// keeps each per-component-type index consistent in place as composition
// appends (or renames) components, so an incremental fold touches each
// accumulator component once.

// --- options-derived key functions ---
//
// These are free functions parameterized by Options so the composer and the
// compiled indexes provably derive identical keys.

// mathKeyFor returns the index key for an expression: the Figure 7 pattern
// under light/heavy semantics, the exact structural rendering under none.
func mathKeyFor(opts Options, e mathml.Expr) string {
	if e == nil {
		return ""
	}
	if opts.Semantics == NoSemantics {
		return mathml.FormatInfix(e)
	}
	return mathml.Pattern(e, nil)
}

// canonicalNameFor returns the index key for an entity name under the given
// semantics level.
func canonicalNameFor(opts Options, name string) string {
	switch opts.Semantics {
	case NoSemantics:
		return name
	case LightSemantics:
		return synonym.Normalize(name)
	default:
		if opts.Synonyms != nil {
			return opts.Synonyms.Canonical(name)
		}
		return synonym.Normalize(name)
	}
}

// speciesKeysFor matches the paper's rule: species are identical when their
// names or identifiers are identical or synonymous. Species in different
// compartments are different entities, so the (mapped) compartment is part
// of the key.
func speciesKeysFor(opts Options, s *sbml.Species) []string {
	keys := []string{"id:" + s.ID + "@" + s.Compartment}
	if s.Name != "" && opts.Semantics != NoSemantics {
		keys = append(keys, "n:"+canonicalNameFor(opts, s.Name)+"@"+s.Compartment)
	}
	if opts.Semantics != NoSemantics {
		// An id in one model can match a name in the other.
		keys = append(keys, "n:"+canonicalNameFor(opts, s.ID)+"@"+s.Compartment)
	}
	return keys
}

// eventKeyFor canonicalizes an event by its trigger, delay and assignment
// patterns.
func eventKeyFor(opts Options, e *sbml.Event) string {
	var b strings.Builder
	b.WriteString("t:")
	writeMathKey(&b, opts, e.Trigger)
	b.WriteString("|d:")
	writeMathKey(&b, opts, e.Delay)
	assigns := make([]string, len(e.Assignments))
	for i, a := range e.Assignments {
		assigns[i] = a.Variable + "=" + mathKeyFor(opts, a.Math)
	}
	sort.Strings(assigns)
	for _, a := range assigns {
		b.WriteString("|")
		b.WriteString(a)
	}
	return b.String()
}

// writeMathKey appends an expression's key to b without an intermediate
// string allocation.
func writeMathKey(b *strings.Builder, opts Options, e mathml.Expr) {
	if e == nil {
		return
	}
	if opts.Semantics == NoSemantics {
		b.WriteString(mathml.FormatInfix(e))
		return
	}
	mathml.PatternAppend(b, e, nil)
}

// ruleKeyFor identifies an assignment or rate rule by its kind and target.
func ruleKeyFor(r *sbml.Rule) string {
	return r.Kind.String() + ":" + r.Variable
}

// CompiledModel wraps an sbml.Model with its precomputed match keys —
// normalized and synonym-expanded names, commutativity-canonical MathML
// patterns, reduced unit vectors — and prebuilt per-component-type indexes,
// all bound to the Options the model was compiled under. The composer
// updates the indexes in place as it appends components, so a compiled
// accumulator stays consistent across an arbitrarily long incremental fold
// without ever being recompiled.
//
// Index consistency relies on the SBML requirement that ids are unique
// within a model; the composer's rename step preserves it.
type CompiledModel struct {
	opts  Options
	model *sbml.Model

	// ids holds every id defined in the model (components, the model id,
	// kinetic-law-local parameters); the composer consults and extends it
	// when generating fresh names.
	ids map[string]bool

	// values holds the initial value of every symbol (attribute values
	// overridden by initial-assignment results), kept equal at step
	// boundaries to what collectInitialValues would scan from the live
	// model. During a step the map is frozen — the step composer reads it
	// as the first model's pre-collected values, per §3 — and insertions
	// and adoptions buffer onto pendingVals; flushValues applies the
	// buffer once the step's renames have settled. That turns the former
	// per-step O(accumulator) scan into O(step additions + initial
	// assignments).
	values      map[string]float64
	pendingVals []any // *Compartment | *Species | *Parameter | *InitialAssignment touched this step

	funcIdx     index.Index                        // math pattern → *FunctionDefinition
	unitIdx     index.Index                        // reduced unit vector → *UnitDefinition
	compTypeIdx index.Index                        // id and canonical name → *CompartmentType
	specTypeIdx index.Index                        // id and canonical name → *SpeciesType
	compIdx     index.Index                        // id and canonical name → *Compartment
	speciesIdx  index.Index                        // id/name @ compartment → *Species
	params      map[string]*sbml.Parameter         // id → parameter
	assigns     map[string]*sbml.InitialAssignment // symbol → assignment
	rules       map[string]*sbml.Rule              // kind:variable → rule
	algIdx      index.Index                        // math pattern → algebraic *Rule
	consIdx     index.Index                        // math pattern → *Constraint
	reactIdx    index.Index                        // structure key → *Reaction
	eventIdx    index.Index                        // event key → *Event
}

// Compile precomputes a model's match keys and component indexes under the
// given options. The input is cloned, never mutated; the returned
// CompiledModel owns the clone.
func Compile(m *sbml.Model, opts Options) (*CompiledModel, error) {
	if m == nil {
		return nil, fmt.Errorf("core: Compile requires a non-nil model")
	}
	return compile(m.Clone(), opts), nil
}

// compile builds the index layer over a model the caller hands over; the
// CompiledModel takes ownership of m.
func compile(m *sbml.Model, opts Options) *CompiledModel {
	newIdx := func(n int) index.Index { return index.NewWithCapacity(opts.Index, n) }
	cm := &CompiledModel{
		opts:        opts,
		model:       m,
		ids:         m.AllIDs(),
		values:      collectInitialValues(m),
		funcIdx:     newIdx(len(m.FunctionDefinitions)),
		unitIdx:     newIdx(len(m.UnitDefinitions)),
		compTypeIdx: newIdx(2 * len(m.CompartmentTypes)),
		specTypeIdx: newIdx(2 * len(m.SpeciesTypes)),
		compIdx:     newIdx(2 * len(m.Compartments)),
		speciesIdx:  newIdx(3 * len(m.Species)),
		params:      make(map[string]*sbml.Parameter, len(m.Parameters)),
		assigns:     make(map[string]*sbml.InitialAssignment, len(m.InitialAssignments)),
		rules:       make(map[string]*sbml.Rule, len(m.Rules)),
		algIdx:      newIdx(0),
		consIdx:     newIdx(len(m.Constraints)),
		reactIdx:    newIdx(len(m.Reactions)),
		eventIdx:    newIdx(len(m.Events)),
	}
	for _, f := range m.FunctionDefinitions {
		cm.insertFunction(f)
	}
	for _, u := range m.UnitDefinitions {
		cm.insertUnitDef(u)
	}
	for _, ct := range m.CompartmentTypes {
		cm.insertCompartmentType(ct)
	}
	for _, st := range m.SpeciesTypes {
		cm.insertSpeciesType(st)
	}
	for _, comp := range m.Compartments {
		cm.insertCompartment(comp)
	}
	for _, s := range m.Species {
		cm.insertSpecies(s)
	}
	for _, p := range m.Parameters {
		cm.insertParameter(p)
	}
	for _, ia := range m.InitialAssignments {
		cm.insertInitialAssignment(ia)
	}
	for _, r := range m.Rules {
		cm.insertRule(r)
	}
	for _, con := range m.Constraints {
		cm.insertConstraint(con)
	}
	for _, r := range m.Reactions {
		cm.insertReaction(r)
	}
	for _, e := range m.Events {
		cm.insertEvent(e)
	}
	// The insert hooks above buffered every component onto pendingVals, but
	// values was just scanned from this very model; drop the buffer so the
	// first step doesn't replay the whole seed.
	cm.pendingVals = nil
	return cm
}

// Model returns the compiled model's live underlying model. Mutating it
// would desynchronize the indexes; use Snapshot for a safe copy.
func (cm *CompiledModel) Model() *sbml.Model { return cm.model }

// Snapshot returns a deep copy of the underlying model, safe for the caller
// to mutate or serialize while composition continues.
func (cm *CompiledModel) Snapshot() *sbml.Model { return cm.model.Clone() }

// Options returns the options the model was compiled under.
func (cm *CompiledModel) Options() Options { return cm.opts }

// --- per-family insert maintenance ---
//
// Each insert derives the component's keys with the same functions the
// composer's lookups use; keeping them adjacent here is what makes the
// in-place update provably equivalent to a from-scratch rebuild.

func (cm *CompiledModel) insertFunction(f *sbml.FunctionDefinition) {
	cm.funcIdx.Insert(mathKeyFor(cm.opts, f.Math), f)
}

func (cm *CompiledModel) insertUnitDef(u *sbml.UnitDefinition) {
	cm.unitIdx.Insert(unitKey(u), u)
}

func (cm *CompiledModel) insertCompartmentType(ct *sbml.CompartmentType) {
	cm.compTypeIdx.Insert(ct.ID, ct)
	if ct.Name != "" {
		cm.compTypeIdx.Insert("n:"+canonicalNameFor(cm.opts, ct.Name), ct)
	}
}

func (cm *CompiledModel) insertSpeciesType(st *sbml.SpeciesType) {
	cm.specTypeIdx.Insert(st.ID, st)
	if st.Name != "" {
		cm.specTypeIdx.Insert("n:"+canonicalNameFor(cm.opts, st.Name), st)
	}
}

func (cm *CompiledModel) insertCompartment(comp *sbml.Compartment) {
	cm.compIdx.Insert("id:"+comp.ID, comp)
	if comp.Name != "" && cm.opts.Semantics != NoSemantics {
		cm.compIdx.Insert("n:"+canonicalNameFor(cm.opts, comp.Name), comp)
	}
	cm.noteValue(comp)
}

func (cm *CompiledModel) insertSpecies(s *sbml.Species) {
	for _, k := range speciesKeysFor(cm.opts, s) {
		cm.speciesIdx.Insert(k, s)
	}
	cm.noteValue(s)
}

func (cm *CompiledModel) insertParameter(p *sbml.Parameter) {
	cm.params[p.ID] = p
	cm.noteValue(p)
}

func (cm *CompiledModel) insertInitialAssignment(ia *sbml.InitialAssignment) {
	cm.assigns[ia.Symbol] = ia
	// An appended assignment changes the initial-value overlay even when
	// the step adds no attribute values, so it must trigger a flush too.
	cm.noteValue(ia)
}

func (cm *CompiledModel) insertRule(r *sbml.Rule) {
	if r.Kind == sbml.AlgebraicRule {
		cm.algIdx.Insert(mathKeyFor(cm.opts, r.Math), r)
		return
	}
	cm.rules[ruleKeyFor(r)] = r
}

func (cm *CompiledModel) insertConstraint(con *sbml.Constraint) {
	cm.consIdx.Insert(mathKeyFor(cm.opts, con.Math), con)
}

func (cm *CompiledModel) insertReaction(r *sbml.Reaction) {
	cm.reactIdx.Insert(reactionStructureKey(r), r)
	if r.KineticLaw != nil {
		// Law-local parameter ids live in the model's id namespace (AllIDs
		// collects them), so claim them as soon as the reaction lands.
		for _, p := range r.KineticLaw.Parameters {
			if p.ID != "" {
				cm.ids[p.ID] = true
			}
		}
	}
}

func (cm *CompiledModel) insertEvent(e *sbml.Event) {
	cm.eventIdx.Insert(eventKeyFor(cm.opts, e), e)
}

// noteValue buffers a value-carrying component — freshly inserted, or an
// existing one whose quantity a merge adopted — for flushValues. Its value
// is derived at flush time from the live struct, so a rename later in the
// same step (appended components alias the step's second model) cannot
// leave a stale id keyed in the values map.
func (cm *CompiledModel) noteValue(comp any) {
	cm.pendingVals = append(cm.pendingVals, comp)
}

// flushValues folds the step's buffered value changes into the values map
// and re-derives the initial-assignment overlay. Called at step end, after
// renames have settled. Attribute entries are O(step additions); the
// overlay is O(initial assignments) — an appended assignment's maths may
// have been renamed after insertion, and any new attribute value can change
// what an existing assignment evaluates to, so the overlay symbols are
// reset to their attribute bases and recomputed with the same pass loop the
// from-scratch scan uses. A step that added or adopted nothing pays
// nothing.
func (cm *CompiledModel) flushValues() {
	if len(cm.pendingVals) == 0 {
		return
	}
	for _, comp := range cm.pendingVals {
		switch x := comp.(type) {
		case *sbml.Compartment:
			if x.HasSize {
				cm.values[x.ID] = x.Size
			}
		case *sbml.Species:
			if v, ok := speciesAttributeValue(x); ok {
				cm.values[x.ID] = v
			}
		case *sbml.Parameter:
			if x.HasValue {
				cm.values[x.ID] = x.Value
			}
		case *sbml.InitialAssignment:
			// No attribute layer of its own; its effect is the overlay
			// replay below.
		}
	}
	cm.pendingVals = cm.pendingVals[:0]
	m := cm.model
	if len(m.InitialAssignments) == 0 {
		return
	}
	// Reset every overlay symbol to its attribute base, then replay the
	// overlay exactly as collectInitialValues would.
	for _, ia := range m.InitialAssignments {
		if v, ok := cm.attributeValue(ia.Symbol); ok {
			cm.values[ia.Symbol] = v
		} else {
			delete(cm.values, ia.Symbol)
		}
	}
	applyInitialAssignmentOverlay(m, cm.values)
}

// attributeValue looks up a symbol's attribute-declared value in the live
// model. The lookup order is the reverse of collectInitialValues' write
// order (parameters over species over compartments), so even a
// pathologically duplicated id resolves to the same value the scan ends
// with.
func (cm *CompiledModel) attributeValue(id string) (float64, bool) {
	if p, ok := cm.params[id]; ok && p.HasValue {
		return p.Value, true
	}
	if s := cm.model.SpeciesByID(id); s != nil {
		if v, ok := speciesAttributeValue(s); ok {
			return v, true
		}
	}
	if comp := cm.model.CompartmentByID(id); comp != nil && comp.HasSize {
		return comp.Size, true
	}
	return 0, false
}

// rekeyMathIndexes rebuilds the index families whose keys derive from
// component maths, selected by flag. A component added mid-step shares its
// structs with the step's second model, so a rename or mapping later in
// the same step can rewrite its math after it was indexed, leaving the
// index holding the pre-rewrite key. The seed recomputed every key at the
// next pairwise step; the compiled accumulator rebuilds only the families
// where the step composer actually observed a key drift (repairMathKeys),
// so the common step costs nothing here.
func (cm *CompiledModel) rekeyMathIndexes(funcs, algs, cons, events bool) {
	m := cm.model
	newIdx := func(n int) index.Index { return index.NewWithCapacity(cm.opts.Index, n) }
	if funcs {
		cm.funcIdx = newIdx(len(m.FunctionDefinitions))
		for _, f := range m.FunctionDefinitions {
			cm.insertFunction(f)
		}
	}
	if algs {
		cm.algIdx = newIdx(0)
		for _, r := range m.Rules {
			if r.Kind == sbml.AlgebraicRule {
				cm.insertRule(r)
			}
		}
	}
	if cons {
		cm.consIdx = newIdx(len(m.Constraints))
		for _, con := range m.Constraints {
			cm.insertConstraint(con)
		}
	}
	if events {
		cm.eventIdx = newIdx(len(m.Events))
		for _, e := range m.Events {
			cm.insertEvent(e)
		}
	}
}

// --- streaming incremental composer ---

// ErrComposerPoisoned marks a Composer whose accumulator was abandoned
// mid-mutation by a cancelled AddContext. Every later Add/AddContext fails
// with an error wrapping it, and Result/Model/Snapshot return nil: the
// accumulator holds an arbitrary prefix of the cancelled step and must not
// be observed. Err exposes the original cancellation cause.
var ErrComposerPoisoned = errors.New("composer poisoned by cancelled Add")

// Composer assembles a composed model incrementally: each Add folds one
// more model into a persistent compiled accumulator, updating the
// accumulator's indexes in place instead of recompiling them — the
// incremental model-assembly workflow the paper notes semanticSBML cannot
// offer ("it is not possible for the model to be built incrementally").
type Composer struct {
	opts Options
	acc  *CompiledModel
	res  *Result
	// err, once set, poisons the composer: a cancelled AddContext
	// interrupted the step pipeline mid-mutation, so the accumulator is an
	// arbitrary prefix of that step and no longer safe to extend or read.
	err error
}

// NewComposer returns an empty streaming composer. The first Add seeds the
// accumulator; every later Add merges into it under Figures 4 and 5.
func NewComposer(opts Options) *Composer {
	return &Composer{
		opts: opts,
		res:  &Result{Mappings: map[string]string{}, Renames: map[string]string{}},
	}
}

// NewComposerFrom returns a streaming composer seeded with an
// already-compiled accumulator. The composer takes ownership of cm: the
// caller must not compose through cm afterwards.
func NewComposerFrom(cm *CompiledModel) *Composer {
	c := NewComposer(cm.opts)
	c.acc = cm
	c.res.Model = cm.model
	return c
}

// Add folds one more model into the accumulator. The input is cloned, never
// mutated. Warnings, matches, mappings, renames and statistics accumulate
// onto the composer's Result exactly as the sequential left fold reports
// them: earlier steps win when two steps map or rename the same id.
func (c *Composer) Add(m *sbml.Model) error {
	return c.AddContext(context.Background(), m)
}

// AddContext is Add honoring cancellation: the step pipeline checks ctx
// between component families. Cancellation observed before the first
// family leaves the accumulator untouched and the composer usable — the
// same Add can simply be retried. Cancellation observed mid-pipeline has
// already mutated the accumulator, so the composer poisons itself: the
// interrupted state is never exposed (Result/Model/Snapshot return nil)
// and every later Add fails with an error wrapping ErrComposerPoisoned.
// An uncancelled context folds byte-identically to Add.
func (c *Composer) AddContext(ctx context.Context, m *sbml.Model) error {
	if c.err != nil {
		return c.err
	}
	if m == nil {
		return fmt.Errorf("core: Composer.Add requires a non-nil model")
	}
	if err := ctx.Err(); err != nil {
		// Nothing has been touched yet: fail cleanly without poisoning.
		return err
	}
	start := time.Now()
	defer func() { c.res.Stats.Duration += time.Since(start) }()

	if c.acc == nil {
		// First model: the fold's seed, contributing no merge statistics.
		c.acc = compile(m.Clone(), c.opts)
		c.res.Model = c.acc.model
		return nil
	}
	// Figure 5 lines 1-2: composing with an empty model returns the other —
	// like the pairwise Compose, an empty accumulator adopts the incoming
	// model even when that model is empty too (its id and name win).
	if c.acc.model.ComponentCount() == 0 {
		c.acc = compile(m.Clone(), c.opts)
		c.res.Model = c.acc.model
		c.res.Stats.Added += m.ComponentCount()
		return nil
	}
	if m.ComponentCount() == 0 {
		return nil
	}

	step := &Result{Mappings: map[string]string{}, Renames: map[string]string{}}
	cs := newStepComposer(c.acc, m.Clone(), step)
	cs.secondValues = collectInitialValues(m)
	if err := cs.runPipelineCtx(ctx); err != nil {
		// The pipeline stopped between families: earlier families already
		// landed in the accumulator, so it no longer equals any fold
		// prefix. Refuse all further use rather than expose it.
		c.err = fmt.Errorf("core: %w: %w", ErrComposerPoisoned, err)
		c.acc = nil
		c.res = &Result{Mappings: map[string]string{}, Renames: map[string]string{}}
		return err
	}
	// The accumulator outlives this step; repair any math keys the step's
	// renames rewrote and fold the step's value changes into the values
	// map. A one-shot Compose skips both, its compiled state dies with the
	// call.
	cs.repairMathKeys()
	c.acc.flushValues()
	c.mergeStep(step)
	return nil
}

// Err returns the poison error set by a cancelled AddContext, or nil while
// the composer is healthy.
func (c *Composer) Err() error { return c.err }

// mergeStep folds one pairwise step's result into the cumulative result,
// replicating the left fold's aggregation: warnings and matches append in
// step order, and on an id collision across steps the earlier mapping or
// rename wins.
func (c *Composer) mergeStep(step *Result) {
	c.res.Warnings = append(c.res.Warnings, step.Warnings...)
	c.res.Matches = append(c.res.Matches, step.Matches...)
	for k, v := range step.Mappings {
		if _, ok := c.res.Mappings[k]; !ok {
			c.res.Mappings[k] = v
		}
	}
	for k, v := range step.Renames {
		if _, ok := c.res.Renames[k]; !ok {
			c.res.Renames[k] = v
		}
	}
	c.res.Stats.Merged += step.Stats.Merged
	c.res.Stats.Added += step.Stats.Added
	c.res.Stats.Renamed += step.Stats.Renamed
	c.res.Stats.Conflicts += step.Stats.Conflicts
}

// Result returns the cumulative composition result, or nil when the
// composer was poisoned by a cancelled AddContext. The result (and its
// Model) is live: subsequent Adds keep extending it.
func (c *Composer) Result() *Result {
	if c.err != nil {
		return nil
	}
	return c.res
}

// Model returns the live accumulator model, or nil before the first Add or
// after poisoning. Mutating it would desynchronize the compiled indexes;
// use Snapshot for a safe copy.
func (c *Composer) Model() *sbml.Model {
	if c.acc == nil {
		return nil
	}
	return c.acc.model
}

// Snapshot returns a deep copy of the accumulator, or nil before the first
// Add or after poisoning.
func (c *Composer) Snapshot() *sbml.Model {
	if c.acc == nil {
		return nil
	}
	return c.acc.model.Clone()
}
