package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sbmlcompose/internal/index"
	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
)

// This file implements the compiled-model layer. The paper's Figure 5 merge
// is "look the component up in an index of the first model"; the seed built
// that index from scratch for every component type on every pairwise
// Compose, which made an n-model ComposeAll re-derive every synonym
// canonicalization, Figure 7 math pattern and reduced unit vector of the
// accumulator O(n) times. A CompiledModel computes the keys once and then
// keeps each per-component-type index consistent in place as composition
// appends (or renames) components, so an incremental fold touches each
// accumulator component once.

// --- options-derived key functions ---
//
// These are free functions parameterized by Options so the composer and the
// compiled indexes provably derive identical keys.

// mathKeyFor returns the index key for an expression: the Figure 7 pattern
// under light/heavy semantics, the exact structural rendering under none.
func mathKeyFor(opts Options, e mathml.Expr) string {
	if e == nil {
		return ""
	}
	if opts.Semantics == NoSemantics {
		return mathml.FormatInfix(e)
	}
	return mathml.Pattern(e, nil)
}

// canonicalNameFor returns the index key for an entity name under the given
// semantics level.
func canonicalNameFor(opts Options, name string) string {
	switch opts.Semantics {
	case NoSemantics:
		return name
	case LightSemantics:
		return synonym.Normalize(name)
	default:
		if opts.Synonyms != nil {
			return opts.Synonyms.Canonical(name)
		}
		return synonym.Normalize(name)
	}
}

// speciesKeysFor matches the paper's rule: species are identical when their
// names or identifiers are identical or synonymous. Species in different
// compartments are different entities, so the (mapped) compartment is part
// of the key.
func speciesKeysFor(opts Options, s *sbml.Species) []string {
	keys := []string{"id:" + s.ID + "@" + s.Compartment}
	if s.Name != "" && opts.Semantics != NoSemantics {
		keys = append(keys, "n:"+canonicalNameFor(opts, s.Name)+"@"+s.Compartment)
	}
	if opts.Semantics != NoSemantics {
		// An id in one model can match a name in the other.
		keys = append(keys, "n:"+canonicalNameFor(opts, s.ID)+"@"+s.Compartment)
	}
	return keys
}

// eventKeyFor canonicalizes an event by its trigger, delay and assignment
// patterns.
func eventKeyFor(opts Options, e *sbml.Event) string {
	var b strings.Builder
	b.WriteString("t:")
	writeMathKey(&b, opts, e.Trigger)
	b.WriteString("|d:")
	writeMathKey(&b, opts, e.Delay)
	assigns := make([]string, len(e.Assignments))
	for i, a := range e.Assignments {
		assigns[i] = a.Variable + "=" + mathKeyFor(opts, a.Math)
	}
	sort.Strings(assigns)
	for _, a := range assigns {
		b.WriteString("|")
		b.WriteString(a)
	}
	return b.String()
}

// writeMathKey appends an expression's key to b without an intermediate
// string allocation.
func writeMathKey(b *strings.Builder, opts Options, e mathml.Expr) {
	if e == nil {
		return
	}
	if opts.Semantics == NoSemantics {
		b.WriteString(mathml.FormatInfix(e))
		return
	}
	mathml.PatternAppend(b, e, nil)
}

// ruleKeyFor identifies an assignment or rate rule by its kind and target.
func ruleKeyFor(r *sbml.Rule) string {
	return r.Kind.String() + ":" + r.Variable
}

// CompiledModel wraps an sbml.Model with its precomputed match keys —
// normalized and synonym-expanded names, commutativity-canonical MathML
// patterns, reduced unit vectors — and prebuilt per-component-type indexes,
// all bound to the Options the model was compiled under. The composer
// updates the indexes in place as it appends components, so a compiled
// accumulator stays consistent across an arbitrarily long incremental fold
// without ever being recompiled.
//
// Index consistency relies on the SBML requirement that ids are unique
// within a model; the composer's rename step preserves it.
type CompiledModel struct {
	opts  Options
	model *sbml.Model

	// ids holds every id defined in the model (components, the model id,
	// kinetic-law-local parameters); the composer consults and extends it
	// when generating fresh names.
	ids map[string]bool

	funcIdx     index.Index                        // math pattern → *FunctionDefinition
	unitIdx     index.Index                        // reduced unit vector → *UnitDefinition
	compTypeIdx index.Index                        // id and canonical name → *CompartmentType
	specTypeIdx index.Index                        // id and canonical name → *SpeciesType
	compIdx     index.Index                        // id and canonical name → *Compartment
	speciesIdx  index.Index                        // id/name @ compartment → *Species
	params      map[string]*sbml.Parameter         // id → parameter
	assigns     map[string]*sbml.InitialAssignment // symbol → assignment
	rules       map[string]*sbml.Rule              // kind:variable → rule
	algIdx      index.Index                        // math pattern → algebraic *Rule
	consIdx     index.Index                        // math pattern → *Constraint
	reactIdx    index.Index                        // structure key → *Reaction
	eventIdx    index.Index                        // event key → *Event
}

// Compile precomputes a model's match keys and component indexes under the
// given options. The input is cloned, never mutated; the returned
// CompiledModel owns the clone.
func Compile(m *sbml.Model, opts Options) (*CompiledModel, error) {
	if m == nil {
		return nil, fmt.Errorf("core: Compile requires a non-nil model")
	}
	return compile(m.Clone(), opts), nil
}

// compile builds the index layer over a model the caller hands over; the
// CompiledModel takes ownership of m.
func compile(m *sbml.Model, opts Options) *CompiledModel {
	newIdx := func(n int) index.Index { return index.NewWithCapacity(opts.Index, n) }
	cm := &CompiledModel{
		opts:        opts,
		model:       m,
		ids:         m.AllIDs(),
		funcIdx:     newIdx(len(m.FunctionDefinitions)),
		unitIdx:     newIdx(len(m.UnitDefinitions)),
		compTypeIdx: newIdx(2 * len(m.CompartmentTypes)),
		specTypeIdx: newIdx(2 * len(m.SpeciesTypes)),
		compIdx:     newIdx(2 * len(m.Compartments)),
		speciesIdx:  newIdx(3 * len(m.Species)),
		params:      make(map[string]*sbml.Parameter, len(m.Parameters)),
		assigns:     make(map[string]*sbml.InitialAssignment, len(m.InitialAssignments)),
		rules:       make(map[string]*sbml.Rule, len(m.Rules)),
		algIdx:      newIdx(0),
		consIdx:     newIdx(len(m.Constraints)),
		reactIdx:    newIdx(len(m.Reactions)),
		eventIdx:    newIdx(len(m.Events)),
	}
	for _, f := range m.FunctionDefinitions {
		cm.insertFunction(f)
	}
	for _, u := range m.UnitDefinitions {
		cm.insertUnitDef(u)
	}
	for _, ct := range m.CompartmentTypes {
		cm.insertCompartmentType(ct)
	}
	for _, st := range m.SpeciesTypes {
		cm.insertSpeciesType(st)
	}
	for _, comp := range m.Compartments {
		cm.insertCompartment(comp)
	}
	for _, s := range m.Species {
		cm.insertSpecies(s)
	}
	for _, p := range m.Parameters {
		cm.insertParameter(p)
	}
	for _, ia := range m.InitialAssignments {
		cm.insertInitialAssignment(ia)
	}
	for _, r := range m.Rules {
		cm.insertRule(r)
	}
	for _, con := range m.Constraints {
		cm.insertConstraint(con)
	}
	for _, r := range m.Reactions {
		cm.insertReaction(r)
	}
	for _, e := range m.Events {
		cm.insertEvent(e)
	}
	return cm
}

// Model returns the compiled model's live underlying model. Mutating it
// would desynchronize the indexes; use Snapshot for a safe copy.
func (cm *CompiledModel) Model() *sbml.Model { return cm.model }

// Snapshot returns a deep copy of the underlying model, safe for the caller
// to mutate or serialize while composition continues.
func (cm *CompiledModel) Snapshot() *sbml.Model { return cm.model.Clone() }

// Options returns the options the model was compiled under.
func (cm *CompiledModel) Options() Options { return cm.opts }

// --- per-family insert maintenance ---
//
// Each insert derives the component's keys with the same functions the
// composer's lookups use; keeping them adjacent here is what makes the
// in-place update provably equivalent to a from-scratch rebuild.

func (cm *CompiledModel) insertFunction(f *sbml.FunctionDefinition) {
	cm.funcIdx.Insert(mathKeyFor(cm.opts, f.Math), f)
}

func (cm *CompiledModel) insertUnitDef(u *sbml.UnitDefinition) {
	cm.unitIdx.Insert(unitKey(u), u)
}

func (cm *CompiledModel) insertCompartmentType(ct *sbml.CompartmentType) {
	cm.compTypeIdx.Insert(ct.ID, ct)
	if ct.Name != "" {
		cm.compTypeIdx.Insert("n:"+canonicalNameFor(cm.opts, ct.Name), ct)
	}
}

func (cm *CompiledModel) insertSpeciesType(st *sbml.SpeciesType) {
	cm.specTypeIdx.Insert(st.ID, st)
	if st.Name != "" {
		cm.specTypeIdx.Insert("n:"+canonicalNameFor(cm.opts, st.Name), st)
	}
}

func (cm *CompiledModel) insertCompartment(comp *sbml.Compartment) {
	cm.compIdx.Insert("id:"+comp.ID, comp)
	if comp.Name != "" && cm.opts.Semantics != NoSemantics {
		cm.compIdx.Insert("n:"+canonicalNameFor(cm.opts, comp.Name), comp)
	}
}

func (cm *CompiledModel) insertSpecies(s *sbml.Species) {
	for _, k := range speciesKeysFor(cm.opts, s) {
		cm.speciesIdx.Insert(k, s)
	}
}

func (cm *CompiledModel) insertParameter(p *sbml.Parameter) {
	cm.params[p.ID] = p
}

func (cm *CompiledModel) insertInitialAssignment(ia *sbml.InitialAssignment) {
	cm.assigns[ia.Symbol] = ia
}

func (cm *CompiledModel) insertRule(r *sbml.Rule) {
	if r.Kind == sbml.AlgebraicRule {
		cm.algIdx.Insert(mathKeyFor(cm.opts, r.Math), r)
		return
	}
	cm.rules[ruleKeyFor(r)] = r
}

func (cm *CompiledModel) insertConstraint(con *sbml.Constraint) {
	cm.consIdx.Insert(mathKeyFor(cm.opts, con.Math), con)
}

func (cm *CompiledModel) insertReaction(r *sbml.Reaction) {
	cm.reactIdx.Insert(reactionStructureKey(r), r)
	if r.KineticLaw != nil {
		// Law-local parameter ids live in the model's id namespace (AllIDs
		// collects them), so claim them as soon as the reaction lands.
		for _, p := range r.KineticLaw.Parameters {
			if p.ID != "" {
				cm.ids[p.ID] = true
			}
		}
	}
}

func (cm *CompiledModel) insertEvent(e *sbml.Event) {
	cm.eventIdx.Insert(eventKeyFor(cm.opts, e), e)
}

// rekeyMathIndexes rebuilds the index families whose keys derive from
// component maths, selected by flag. A component added mid-step shares its
// structs with the step's second model, so a rename or mapping later in
// the same step can rewrite its math after it was indexed, leaving the
// index holding the pre-rewrite key. The seed recomputed every key at the
// next pairwise step; the compiled accumulator rebuilds only the families
// where the step composer actually observed a key drift (repairMathKeys),
// so the common step costs nothing here.
func (cm *CompiledModel) rekeyMathIndexes(funcs, algs, cons, events bool) {
	m := cm.model
	newIdx := func(n int) index.Index { return index.NewWithCapacity(cm.opts.Index, n) }
	if funcs {
		cm.funcIdx = newIdx(len(m.FunctionDefinitions))
		for _, f := range m.FunctionDefinitions {
			cm.insertFunction(f)
		}
	}
	if algs {
		cm.algIdx = newIdx(0)
		for _, r := range m.Rules {
			if r.Kind == sbml.AlgebraicRule {
				cm.insertRule(r)
			}
		}
	}
	if cons {
		cm.consIdx = newIdx(len(m.Constraints))
		for _, con := range m.Constraints {
			cm.insertConstraint(con)
		}
	}
	if events {
		cm.eventIdx = newIdx(len(m.Events))
		for _, e := range m.Events {
			cm.insertEvent(e)
		}
	}
}

// --- streaming incremental composer ---

// Composer assembles a composed model incrementally: each Add folds one
// more model into a persistent compiled accumulator, updating the
// accumulator's indexes in place instead of recompiling them — the
// incremental model-assembly workflow the paper notes semanticSBML cannot
// offer ("it is not possible for the model to be built incrementally").
type Composer struct {
	opts Options
	acc  *CompiledModel
	res  *Result
}

// NewComposer returns an empty streaming composer. The first Add seeds the
// accumulator; every later Add merges into it under Figures 4 and 5.
func NewComposer(opts Options) *Composer {
	return &Composer{
		opts: opts,
		res:  &Result{Mappings: map[string]string{}, Renames: map[string]string{}},
	}
}

// NewComposerFrom returns a streaming composer seeded with an
// already-compiled accumulator. The composer takes ownership of cm: the
// caller must not compose through cm afterwards.
func NewComposerFrom(cm *CompiledModel) *Composer {
	c := NewComposer(cm.opts)
	c.acc = cm
	c.res.Model = cm.model
	return c
}

// Add folds one more model into the accumulator. The input is cloned, never
// mutated. Warnings, matches, mappings, renames and statistics accumulate
// onto the composer's Result exactly as the sequential left fold reports
// them: earlier steps win when two steps map or rename the same id.
func (c *Composer) Add(m *sbml.Model) error {
	if m == nil {
		return fmt.Errorf("core: Composer.Add requires a non-nil model")
	}
	start := time.Now()
	defer func() { c.res.Stats.Duration += time.Since(start) }()

	if c.acc == nil {
		// First model: the fold's seed, contributing no merge statistics.
		c.acc = compile(m.Clone(), c.opts)
		c.res.Model = c.acc.model
		return nil
	}
	// Figure 5 lines 1-2: composing with an empty model returns the other —
	// like the pairwise Compose, an empty accumulator adopts the incoming
	// model even when that model is empty too (its id and name win).
	if c.acc.model.ComponentCount() == 0 {
		c.acc = compile(m.Clone(), c.opts)
		c.res.Model = c.acc.model
		c.res.Stats.Added += m.ComponentCount()
		return nil
	}
	if m.ComponentCount() == 0 {
		return nil
	}

	step := &Result{Mappings: map[string]string{}, Renames: map[string]string{}}
	cs := newStepComposer(c.acc, m.Clone(), step)
	cs.secondValues = collectInitialValues(m)
	cs.runPipeline()
	// The accumulator outlives this step; repair any math keys the step's
	// renames rewrote. A one-shot Compose skips this, its indexes die with
	// the call.
	cs.repairMathKeys()
	c.mergeStep(step)
	return nil
}

// mergeStep folds one pairwise step's result into the cumulative result,
// replicating the left fold's aggregation: warnings and matches append in
// step order, and on an id collision across steps the earlier mapping or
// rename wins.
func (c *Composer) mergeStep(step *Result) {
	c.res.Warnings = append(c.res.Warnings, step.Warnings...)
	c.res.Matches = append(c.res.Matches, step.Matches...)
	for k, v := range step.Mappings {
		if _, ok := c.res.Mappings[k]; !ok {
			c.res.Mappings[k] = v
		}
	}
	for k, v := range step.Renames {
		if _, ok := c.res.Renames[k]; !ok {
			c.res.Renames[k] = v
		}
	}
	c.res.Stats.Merged += step.Stats.Merged
	c.res.Stats.Added += step.Stats.Added
	c.res.Stats.Renamed += step.Stats.Renamed
	c.res.Stats.Conflicts += step.Stats.Conflicts
}

// Result returns the cumulative composition result. The result (and its
// Model) is live: subsequent Adds keep extending it.
func (c *Composer) Result() *Result { return c.res }

// Model returns the live accumulator model, or nil before the first Add.
// Mutating it would desynchronize the compiled indexes; use Snapshot for a
// safe copy.
func (c *Composer) Model() *sbml.Model {
	if c.acc == nil {
		return nil
	}
	return c.acc.model
}

// Snapshot returns a deep copy of the accumulator, or nil before the first
// Add.
func (c *Composer) Snapshot() *sbml.Model {
	if c.acc == nil {
		return nil
	}
	return c.acc.model.Clone()
}
