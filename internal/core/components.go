package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sbmlcompose/internal/kinetics"
	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/units"
)

// mathKey returns the index key for an expression: the Figure 7 pattern
// under light/heavy semantics, the exact structural rendering under none.
// Second-model expressions have already had all accepted mappings applied
// in place, so no mapping argument is needed here.
func (c *composer) mathKey(e mathml.Expr) string {
	return mathKeyFor(c.opts, e)
}

// --- function definitions ---

func (c *composer) composeFunctionDefinitions() {
	if len(c.second.FunctionDefinitions) == 0 {
		return
	}
	for _, f := range c.second.FunctionDefinitions {
		if hit, ok := c.acc.funcIdx.Lookup(c.mathKey(f.Math)); ok {
			existing := hit.(*sbml.FunctionDefinition)
			c.res.Stats.Merged++
			c.mapID(f.ID, existing.ID)
			continue
		}
		if c.outIDs[f.ID] {
			c.renameID(f.ID, fmt.Sprintf("functionDefinition %q", f.ID))
		}
		c.out.FunctionDefinitions = append(c.out.FunctionDefinitions, f)
		// Key computed after the rename, which may have rewritten the body.
		key := c.mathKey(f.Math)
		c.acc.funcIdx.Insert(key, f)
		c.watchMath(key, f)
		c.claimID(f.ID)
		c.res.Stats.Added++
	}
}

// --- unit definitions ---

// unitKey reduces a definition against the list of known units (§3: "unit
// definitions are compared by checking the list of known units"); unknown
// kinds fall back to a structural key.
func unitKey(u *sbml.UnitDefinition) string {
	return units.Key(u.Definition())
}

func (c *composer) composeUnitDefinitions() {
	if len(c.second.UnitDefinitions) == 0 {
		return
	}
	for _, u := range c.second.UnitDefinitions {
		if hit, ok := c.acc.unitIdx.Lookup(unitKey(u)); ok {
			existing := hit.(*sbml.UnitDefinition)
			c.res.Stats.Merged++
			c.mapID(u.ID, existing.ID)
			continue
		}
		if c.outIDs[u.ID] {
			c.renameID(u.ID, fmt.Sprintf("unitDefinition %q", u.ID))
		}
		c.out.UnitDefinitions = append(c.out.UnitDefinitions, u)
		c.acc.insertUnitDef(u)
		c.claimID(u.ID)
		c.res.Stats.Added++
	}
}

// --- compartment and species types ---

func (c *composer) composeCompartmentTypes() {
	if len(c.second.CompartmentTypes) == 0 {
		return
	}
	for _, ct := range c.second.CompartmentTypes {
		hit, ok := c.acc.compTypeIdx.Lookup(ct.ID)
		if !ok && ct.Name != "" {
			hit, ok = c.acc.compTypeIdx.Lookup("n:" + c.canonicalName(ct.Name))
		}
		if ok {
			existing := hit.(*sbml.CompartmentType)
			c.res.Stats.Merged++
			c.mapID(ct.ID, existing.ID)
			continue
		}
		if c.outIDs[ct.ID] {
			c.renameID(ct.ID, fmt.Sprintf("compartmentType %q", ct.ID))
		}
		c.out.CompartmentTypes = append(c.out.CompartmentTypes, ct)
		c.acc.insertCompartmentType(ct)
		c.claimID(ct.ID)
		c.res.Stats.Added++
	}
}

func (c *composer) composeSpeciesTypes() {
	if len(c.second.SpeciesTypes) == 0 {
		return
	}
	for _, st := range c.second.SpeciesTypes {
		hit, ok := c.acc.specTypeIdx.Lookup(st.ID)
		if !ok && st.Name != "" {
			hit, ok = c.acc.specTypeIdx.Lookup("n:" + c.canonicalName(st.Name))
		}
		if ok {
			existing := hit.(*sbml.SpeciesType)
			c.res.Stats.Merged++
			c.mapID(st.ID, existing.ID)
			continue
		}
		if c.outIDs[st.ID] {
			c.renameID(st.ID, fmt.Sprintf("speciesType %q", st.ID))
		}
		c.out.SpeciesTypes = append(c.out.SpeciesTypes, st)
		c.acc.insertSpeciesType(st)
		c.claimID(st.ID)
		c.res.Stats.Added++
	}
}

// --- compartments ---

func (c *composer) composeCompartments() {
	if len(c.second.Compartments) == 0 {
		return
	}
	for _, comp := range c.second.Compartments {
		hit, ok := c.acc.compIdx.Lookup("id:" + comp.ID)
		if !ok && comp.Name != "" && c.opts.Semantics != NoSemantics {
			hit, ok = c.acc.compIdx.Lookup("n:" + c.canonicalName(comp.Name))
		}
		if ok {
			existing := hit.(*sbml.Compartment)
			c.res.Stats.Merged++
			label := fmt.Sprintf("compartment %q", existing.ID)
			if existing.HasSize && comp.HasSize && !valuesEqual(existing.Size, comp.Size) {
				c.res.Stats.Conflicts++
				c.warn(label, "size conflict: first model %g, second model %g; keeping %g",
					existing.Size, comp.Size, existing.Size)
			}
			if existing.SpatialDimensions != comp.SpatialDimensions {
				c.res.Stats.Conflicts++
				c.warn(label, "spatialDimensions conflict: %d vs %d; keeping %d",
					existing.SpatialDimensions, comp.SpatialDimensions, existing.SpatialDimensions)
			}
			if !existing.HasSize && comp.HasSize {
				existing.Size, existing.HasSize = comp.Size, true
				c.acc.noteValue(existing)
				c.note(label, "adopted size %g from second model", comp.Size)
			}
			c.mapID(comp.ID, existing.ID)
			continue
		}
		if c.outIDs[comp.ID] {
			c.renameID(comp.ID, fmt.Sprintf("compartment %q", comp.ID))
		}
		c.out.Compartments = append(c.out.Compartments, comp)
		c.acc.insertCompartment(comp)
		c.claimID(comp.ID)
		c.res.Stats.Added++
	}
}

// --- species ---

// speciesLookupKeys matches the paper's rule: species are identical when
// their names or identifiers are identical or synonymous; the (mapped)
// compartment is part of the key. See speciesKeysFor.
func (c *composer) speciesLookupKeys(s *sbml.Species) []string {
	return speciesKeysFor(c.opts, s)
}

func (c *composer) composeSpecies() {
	if len(c.second.Species) == 0 {
		return
	}
	for _, s := range c.second.Species {
		var existing *sbml.Species
		for _, k := range c.speciesLookupKeys(s) {
			if hit, ok := c.acc.speciesIdx.Lookup(k); ok {
				existing = hit.(*sbml.Species)
				break
			}
		}
		if existing != nil {
			c.res.Stats.Merged++
			c.checkSpeciesConflicts(existing, s)
			c.mapID(s.ID, existing.ID)
			continue
		}
		if c.outIDs[s.ID] {
			c.renameID(s.ID, fmt.Sprintf("species %q", s.ID))
		}
		c.out.Species = append(c.out.Species, s)
		c.acc.insertSpecies(s)
		c.claimID(s.ID)
		c.res.Stats.Added++
	}
}

// checkSpeciesConflicts compares the initial quantities and flags of two
// matched species, converting between amount/concentration and
// mole/molecule bases before declaring a conflict (Figure 6).
func (c *composer) checkSpeciesConflicts(first, second *sbml.Species) {
	label := fmt.Sprintf("species %q", first.ID)
	convert := c.opts.Semantics == HeavySemantics
	v1, ok1 := initialSpeciesValue(c.out, first, convert)
	v2, ok2 := initialSpeciesValue(c.second, second, convert)
	if ok1 && ok2 && !valuesEqual(v1, v2) {
		c.res.Stats.Conflicts++
		c.warn(label, "initial value conflict: first model %g, second model %g (normalized); keeping first", v1, v2)
	}
	if ok1 && ok2 && valuesEqual(v1, v2) &&
		(first.HasInitialAmount != second.HasInitialAmount || speciesBasis(c.out, first) != speciesBasis(c.second, second)) {
		c.note(label, "initial quantities agree after unit conversion (%g)", v1)
	}
	if !ok1 && ok2 {
		// First model left the value unset; adopt the second's.
		first.HasInitialAmount = second.HasInitialAmount
		first.InitialAmount = second.InitialAmount
		first.HasInitialConcentration = second.HasInitialConcentration
		first.InitialConcentration = second.InitialConcentration
		c.acc.noteValue(first)
		c.note(label, "adopted initial quantity from second model")
	}
	if first.BoundaryCondition != second.BoundaryCondition {
		c.res.Stats.Conflicts++
		c.warn(label, "boundaryCondition conflict (%v vs %v); keeping %v",
			first.BoundaryCondition, second.BoundaryCondition, first.BoundaryCondition)
	}
	if first.Constant != second.Constant {
		c.res.Stats.Conflicts++
		c.warn(label, "constant flag conflict (%v vs %v); keeping %v",
			first.Constant, second.Constant, first.Constant)
	}
	if first.Charge != second.Charge && second.Charge != 0 && first.Charge != 0 {
		c.res.Stats.Conflicts++
		c.warn(label, "charge conflict (%d vs %d); keeping %d", first.Charge, second.Charge, first.Charge)
	}
}

// --- parameters ---

func (c *composer) composeParameters() {
	if len(c.second.Parameters) == 0 {
		return
	}
	for _, p := range c.second.Parameters {
		if existing, ok := c.acc.params[p.ID]; ok {
			// The paper: parameters merge only when nothing distinguishes
			// them; a same-named parameter with a different value is
			// renamed so both survive.
			sameValue := existing.HasValue == p.HasValue && (!p.HasValue || valuesEqual(existing.Value, p.Value))
			sameUnits := parameterUnitsEquivalent(c.out, existing, c.second, p)
			if sameValue && sameUnits {
				c.res.Stats.Merged++
				c.mapID(p.ID, existing.ID)
				continue
			}
			c.res.Stats.Conflicts++
			c.renameID(p.ID, fmt.Sprintf("parameter %q", p.ID))
		} else if c.outIDs[p.ID] {
			c.renameID(p.ID, fmt.Sprintf("parameter %q", p.ID))
		}
		c.out.Parameters = append(c.out.Parameters, p)
		c.acc.insertParameter(p)
		c.claimID(p.ID)
		c.res.Stats.Added++
	}
}

func parameterUnitsEquivalent(m1 *sbml.Model, p1 *sbml.Parameter, m2 *sbml.Model, p2 *sbml.Parameter) bool {
	if p1.Units == p2.Units {
		return true
	}
	d1, ok1 := resolveUnits(m1, p1.Units)
	d2, ok2 := resolveUnits(m2, p2.Units)
	if !ok1 || !ok2 {
		return false
	}
	eq, err := units.Equivalent(d1, d2)
	return err == nil && eq
}

func resolveUnits(m *sbml.Model, ref string) (units.Definition, bool) {
	if ref == "" {
		return units.Definition{ID: "dimensionless", Units: []units.Unit{units.NewUnit("dimensionless")}}, true
	}
	if ud := m.UnitDefinitionByID(ref); ud != nil {
		return ud.Definition(), true
	}
	if units.IsKnownKind(ref) {
		return units.Definition{ID: ref, Units: []units.Unit{units.NewUnit(ref)}}, true
	}
	return units.Definition{}, false
}

// --- initial assignments ---

func (c *composer) composeInitialAssignments() {
	if len(c.second.InitialAssignments) == 0 {
		return
	}
	for _, ia := range c.second.InitialAssignments {
		existing, ok := c.acc.assigns[ia.Symbol]
		if !ok {
			c.out.InitialAssignments = append(c.out.InitialAssignments, ia)
			c.acc.insertInitialAssignment(ia)
			c.res.Stats.Added++
			continue
		}
		label := fmt.Sprintf("initialAssignment %q", ia.Symbol)
		// Pattern equality first; the evaluated values break ties (the
		// capability semanticSBML lacks: deciding whether "the maths of
		// initial assignments are equal").
		if c.mathKey(existing.Math) == c.mathKey(ia.Math) {
			c.res.Stats.Merged++
			continue
		}
		v1, err1 := mathml.Eval(existing.Math, envFor(c.out, c.firstValues))
		v2, err2 := mathml.Eval(ia.Math, envFor(c.second, c.secondValues))
		if err1 == nil && err2 == nil && valuesEqual(v1, v2) {
			c.res.Stats.Merged++
			c.note(label, "maths differ syntactically but evaluate equally (%g)", v1)
			continue
		}
		c.res.Stats.Conflicts++
		c.warn(label, "conflicting initial assignments; keeping first model's (%s over %s)",
			mathml.FormatInfix(existing.Math), mathml.FormatInfix(ia.Math))
	}
}

func envFor(m *sbml.Model, vals map[string]float64) mathml.Env {
	funcs := make(map[string]mathml.Lambda, len(m.FunctionDefinitions))
	for _, f := range m.FunctionDefinitions {
		funcs[f.ID] = f.Math
	}
	return &mathml.MapEnv{Values: vals, Functions: funcs}
}

// --- rules ---

func (c *composer) composeRules() {
	if len(c.second.Rules) == 0 {
		return
	}
	for _, r := range c.second.Rules {
		if r.Kind == sbml.AlgebraicRule {
			key := c.mathKey(r.Math)
			if _, ok := c.acc.algIdx.Lookup(key); ok {
				c.res.Stats.Merged++
				continue
			}
			c.out.Rules = append(c.out.Rules, r)
			c.acc.algIdx.Insert(key, r)
			c.watchMath(key, r)
			c.res.Stats.Added++
			continue
		}
		existing, ok := c.acc.rules[ruleKeyFor(r)]
		if !ok {
			c.out.Rules = append(c.out.Rules, r)
			c.acc.insertRule(r)
			c.res.Stats.Added++
			continue
		}
		if c.mathKey(existing.Math) == c.mathKey(r.Math) {
			c.res.Stats.Merged++
			continue
		}
		c.res.Stats.Conflicts++
		c.warn(fmt.Sprintf("%s for %q", r.Kind, r.Variable),
			"conflicting rules; keeping first model's (%s over %s)",
			mathml.FormatInfix(existing.Math), mathml.FormatInfix(r.Math))
	}
}

// --- constraints ---

func (c *composer) composeConstraints() {
	if len(c.second.Constraints) == 0 {
		return
	}
	for _, con := range c.second.Constraints {
		key := c.mathKey(con.Math)
		if _, ok := c.acc.consIdx.Lookup(key); ok {
			c.res.Stats.Merged++
			continue
		}
		c.out.Constraints = append(c.out.Constraints, con)
		c.acc.consIdx.Insert(key, con)
		c.watchMath(key, con)
		c.res.Stats.Added++
	}
}

// --- reactions ---

// reactionStructureKey canonicalizes a reaction's connectivity: sorted
// reactant, product and modifier references with stoichiometries, plus
// reversibility. Species ids in the second model have already been mapped
// onto first-model ids, so shared species produce identical keys.
func reactionStructureKey(r *sbml.Reaction) string {
	refs := func(list []*sbml.SpeciesReference) string {
		parts := make([]string, len(list))
		for i, sr := range list {
			st := sr.Stoichiometry
			if st == 0 {
				st = 1
			}
			parts[i] = sr.Species + "*" + strconv.FormatFloat(st, 'g', -1, 64)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	mods := make([]string, len(r.Modifiers))
	for i, mr := range r.Modifiers {
		mods[i] = mr.Species
	}
	sort.Strings(mods)
	return fmt.Sprintf("R[%s]P[%s]M[%s]rev=%v",
		refs(r.Reactants), refs(r.Products), strings.Join(mods, ","), r.Reversible)
}

func (c *composer) composeReactions() {
	if len(c.second.Reactions) == 0 {
		return
	}
	for _, r := range c.second.Reactions {
		hit, ok := c.acc.reactIdx.Lookup(reactionStructureKey(r))
		if !ok {
			if c.outIDs[r.ID] {
				c.renameID(r.ID, fmt.Sprintf("reaction %q", r.ID))
			}
			c.out.Reactions = append(c.out.Reactions, r)
			c.acc.insertReaction(r)
			c.claimID(r.ID)
			c.res.Stats.Added++
			continue
		}
		existing := hit.(*sbml.Reaction)
		label := fmt.Sprintf("reaction %q", existing.ID)
		c.res.Stats.Merged++
		switch {
		case existing.KineticLaw == nil && r.KineticLaw != nil:
			existing.KineticLaw = r.KineticLaw
			// The adopted law's local parameter ids join the accumulator's
			// id namespace (AllIDs collects them), so claim them for
			// fresh-name generation in later steps.
			for _, p := range r.KineticLaw.Parameters {
				c.claimID(p.ID)
			}
			c.note(label, "adopted kinetic law from second model")
		case existing.KineticLaw != nil && r.KineticLaw != nil:
			if !c.kineticLawsEqual(existing, r) {
				c.res.Stats.Conflicts++
				c.warn(label, "kinetic law conflict; keeping first model's (%s over %s)",
					mathml.FormatInfix(existing.KineticLaw.Math), mathml.FormatInfix(r.KineticLaw.Math))
			}
		}
		c.mapID(r.ID, existing.ID)
	}
}

// kineticLawsEqual decides whether two kinetic laws of structurally
// identical reactions agree. Pattern equality wins immediately; otherwise,
// under heavy semantics, recognized mass-action laws are compared through
// the Figure 6 mole↔molecule rate-constant conversion before a conflict is
// declared.
func (c *composer) kineticLawsEqual(first, second *sbml.Reaction) bool {
	m1, m2 := first.KineticLaw.Math, second.KineticLaw.Math
	if m1 == nil || m2 == nil {
		return m1 == nil && m2 == nil
	}
	if c.mathKey(m1) == c.mathKey(m2) {
		// Same formula — but law-local parameters carry values the pattern
		// cannot see ("conflicts in rate constants … within reactions are
		// resolved", §3). Identical ids with different values are still a
		// rate-constant conflict unless Figure 6 reconciles them.
		if c.localParamsAgree(first, second) {
			return true
		}
		return c.ratesReconcileByConversion(first, second)
	}
	if c.opts.Semantics != HeavySemantics {
		return false
	}
	isSp1 := func(id string) bool { return c.out.SpeciesByID(id) != nil }
	isSp2 := func(id string) bool { return c.second.SpeciesByID(id) != nil || c.out.SpeciesByID(id) != nil }
	rec1, err1 := kinetics.Recognize(first, isSp1)
	rec2, err2 := kinetics.Recognize(second, isSp2)
	if err1 != nil || err2 != nil || rec1.Kind != kinetics.MassAction || rec2.Kind != kinetics.MassAction {
		return false
	}
	if rec1.Order != rec2.Order {
		return false
	}
	k1, ok1 := c.rateConstantValue(c.out, first, rec1.RateConstant, c.firstValues)
	k2, ok2 := c.rateConstantValue(c.second, second, rec2.RateConstant, c.secondValues)
	if !ok1 || !ok2 {
		return false
	}
	if valuesEqual(k1, k2) {
		c.note(fmt.Sprintf("reaction %q", first.ID),
			"kinetic laws match up to rate-constant naming (%s=%s=%g)", rec1.RateConstant, rec2.RateConstant, k1)
		return true
	}
	return c.convertAndCompare(first, rec2.Order, k1, k2, second)
}

// localParamsAgree compares the values of same-id law-local parameters.
func (c *composer) localParamsAgree(first, second *sbml.Reaction) bool {
	for _, p2 := range second.KineticLaw.Parameters {
		for _, p1 := range first.KineticLaw.Parameters {
			if p1.ID != p2.ID {
				continue
			}
			if p1.HasValue && p2.HasValue && !valuesEqual(p1.Value, p2.Value) {
				return false
			}
		}
	}
	return true
}

// ratesReconcileByConversion handles the same-formula, different-constant
// case: recognize the law, pull both constants, and test whether the
// Figure 6 basis conversion equates them.
func (c *composer) ratesReconcileByConversion(first, second *sbml.Reaction) bool {
	if c.opts.Semantics != HeavySemantics {
		return false
	}
	isSp1 := func(id string) bool { return c.out.SpeciesByID(id) != nil }
	rec1, err1 := kinetics.Recognize(first, isSp1)
	if err1 != nil || rec1.Kind != kinetics.MassAction {
		return false
	}
	k1, ok1 := c.rateConstantValue(c.out, first, rec1.RateConstant, c.firstValues)
	k2, ok2 := c.rateConstantValue(c.second, second, rec1.RateConstant, c.secondValues)
	if !ok1 || !ok2 {
		return false
	}
	return c.convertAndCompare(first, rec1.Order, k1, k2, second)
}

// convertAndCompare applies the Figure 6 mole↔molecule conversion to the
// second model's constant and reports whether it matches the first's.
func (c *composer) convertAndCompare(first *sbml.Reaction, order int, k1, k2 float64, second *sbml.Reaction) bool {
	vol := compartmentVolume(c.out, reactionCompartment(c.out, first))
	basis1 := reactionBasis(c.out, first)
	basis2 := reactionBasis(c.second, second)
	if basis1 == basis2 {
		return false
	}
	converted, err := units.ConvertRateConstant(order, k2, basis2, basis1, vol)
	if err != nil {
		return false
	}
	if valuesEqual(k1, converted) {
		c.note(fmt.Sprintf("reaction %q", first.ID),
			"rate constants agree after %s→%s conversion (order %d, V=%g L): %g ≡ %g",
			basis2, basis1, order, vol, k2, k1)
		return true
	}
	return false
}

// rateConstantValue resolves a rate-constant id to its numeric value,
// checking kinetic-law-local parameters first, then the model's globals.
func (c *composer) rateConstantValue(m *sbml.Model, r *sbml.Reaction, id string, vals map[string]float64) (float64, bool) {
	if r.KineticLaw != nil {
		for _, p := range r.KineticLaw.Parameters {
			if p.ID == id && p.HasValue {
				return p.Value, true
			}
		}
	}
	if v, ok := vals[id]; ok {
		return v, true
	}
	if p := m.ParameterByID(id); p != nil && p.HasValue {
		return p.Value, true
	}
	return 0, false
}

// reactionCompartment picks the compartment the reaction happens in: the
// first reactant's, else the first product's.
func reactionCompartment(m *sbml.Model, r *sbml.Reaction) string {
	pick := func(refs []*sbml.SpeciesReference) string {
		for _, sr := range refs {
			if s := m.SpeciesByID(sr.Species); s != nil {
				return s.Compartment
			}
		}
		return ""
	}
	if comp := pick(r.Reactants); comp != "" {
		return comp
	}
	return pick(r.Products)
}

// reactionBasis reports the substance basis of the reaction's species.
func reactionBasis(m *sbml.Model, r *sbml.Reaction) units.SubstanceBasis {
	for _, sr := range r.Reactants {
		if s := m.SpeciesByID(sr.Species); s != nil {
			return speciesBasis(m, s)
		}
	}
	for _, sr := range r.Products {
		if s := m.SpeciesByID(sr.Species); s != nil {
			return speciesBasis(m, s)
		}
	}
	return units.Moles
}

// --- events ---

// eventKey canonicalizes an event by its trigger, delay and assignment
// patterns. See eventKeyFor.
func (c *composer) eventKey(e *sbml.Event) string {
	return eventKeyFor(c.opts, e)
}

func (c *composer) composeEvents() {
	if len(c.second.Events) == 0 {
		return
	}
	for _, e := range c.second.Events {
		if hit, ok := c.acc.eventIdx.Lookup(c.eventKey(e)); ok {
			existing := hit.(*sbml.Event)
			c.res.Stats.Merged++
			if e.ID != "" && existing.ID != "" {
				c.mapID(e.ID, existing.ID)
			}
			continue
		}
		if e.ID != "" && c.outIDs[e.ID] {
			c.renameID(e.ID, fmt.Sprintf("event %q", e.ID))
		}
		c.out.Events = append(c.out.Events, e)
		// Key computed after the rename, which may have rewritten the
		// trigger, delay or assignments.
		key := c.eventKey(e)
		c.acc.eventIdx.Insert(key, e)
		c.watchMath(key, e)
		c.claimID(e.ID)
		c.res.Stats.Added++
	}
}
