package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sbmlcompose/internal/index"
	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
	"sbmlcompose/internal/units"
)

func TestSynonymousSpeciesMerge(t *testing.T) {
	a := mkModel("m1", nil, nil)
	a.Species = append(a.Species, &sbml.Species{
		ID: "glucose", Name: "glucose", Compartment: "cell",
		InitialConcentration: 2, HasInitialConcentration: true,
	})
	b := mkModel("m2", nil, nil)
	b.Species = append(b.Species, &sbml.Species{
		ID: "dex", Name: "dextrose", Compartment: "cell",
		InitialConcentration: 2, HasInitialConcentration: true,
	})
	tab := synonym.NewTable()
	tab.Add("glucose", "dextrose")
	res := compose(t, a, b, Options{Synonyms: tab})
	if len(res.Model.Species) != 1 {
		t.Fatalf("synonymous species should merge, got %d", len(res.Model.Species))
	}
	if res.Mappings["dex"] != "glucose" {
		t.Errorf("mapping = %v", res.Mappings)
	}
	// Without the table they stay distinct.
	res = compose(t, a, b, Options{})
	if len(res.Model.Species) != 2 {
		t.Errorf("without synonyms: %d species", len(res.Model.Species))
	}
}

func TestSpeciesMappingRewritesReactions(t *testing.T) {
	// Model 2 calls the species "G"; after matching via name, its reaction
	// must reference model 1's id.
	a := mkModel("m1", nil, nil)
	a.Species = append(a.Species, &sbml.Species{
		ID: "glc", Name: "glucose", Compartment: "cell",
		InitialConcentration: 1, HasInitialConcentration: true,
	})
	b := mkModel("m2", []string{"P"}, nil)
	b.Species = append(b.Species, &sbml.Species{
		ID: "G", Name: "glucose", Compartment: "cell",
		InitialConcentration: 1, HasInitialConcentration: true,
	})
	b.Parameters = append(b.Parameters, &sbml.Parameter{ID: "k", Value: 0.3, HasValue: true, Constant: true})
	b.Reactions = append(b.Reactions, &sbml.Reaction{
		ID:         "conv",
		Reactants:  []*sbml.SpeciesReference{{Species: "G", Stoichiometry: 1}},
		Products:   []*sbml.SpeciesReference{{Species: "P", Stoichiometry: 1}},
		KineticLaw: &sbml.KineticLaw{Math: mathml.MustParseInfix("k*G")},
	})
	res := compose(t, a, b, Options{})
	m := res.Model
	if len(m.Species) != 2 { // glucose merged + P added
		t.Fatalf("species = %d, want 2", len(m.Species))
	}
	r := m.ReactionByID("conv")
	if r == nil {
		t.Fatal("reaction lost")
	}
	if r.Reactants[0].Species != "glc" {
		t.Errorf("reactant = %q, want glc", r.Reactants[0].Species)
	}
	if got := mathml.FormatInfix(r.KineticLaw.Math); !strings.Contains(got, "glc") {
		t.Errorf("kinetic law not remapped: %s", got)
	}
}

func TestSpeciesDifferentCompartmentsStayDistinct(t *testing.T) {
	a := mkModel("m1", nil, nil)
	a.Species = append(a.Species, &sbml.Species{ID: "Ca", Name: "calcium", Compartment: "cell"})
	b := sbml.NewModel("m2")
	b.Compartments = append(b.Compartments, &sbml.Compartment{ID: "er", SpatialDimensions: 3, Size: 0.1, HasSize: true, Constant: true})
	b.Species = append(b.Species, &sbml.Species{ID: "Ca", Name: "calcium", Compartment: "er"})
	res := compose(t, a, b, Options{})
	if len(res.Model.Species) != 2 {
		t.Fatalf("species in different compartments must not merge: %d", len(res.Model.Species))
	}
	// The colliding id must have been renamed.
	if res.Renames["Ca"] == "" {
		t.Errorf("expected rename, got %v", res.Renames)
	}
}

func TestInitialValueConflictWarns(t *testing.T) {
	a := mkModel("m1", []string{"A"}, nil)
	b := mkModel("m2", []string{"A"}, nil)
	b.Species[0].InitialConcentration = 5
	var log strings.Builder
	res := compose(t, a, b, Options{Log: &log})
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0].Message, "initial value conflict") {
		t.Fatalf("warnings = %v", res.Warnings)
	}
	// First model wins.
	if res.Model.Species[0].InitialConcentration != 1 {
		t.Errorf("value = %g, want first model's 1", res.Model.Species[0].InitialConcentration)
	}
	if !strings.Contains(log.String(), "warning:") {
		t.Errorf("log = %q", log.String())
	}
	if res.Stats.Conflicts != 1 {
		t.Errorf("conflicts = %d", res.Stats.Conflicts)
	}
}

func TestAmountVsConcentrationConversion(t *testing.T) {
	// First model: concentration 2 mol/L in a 0.5 L compartment. Second:
	// amount 1 mol in the same compartment. 1/0.5 = 2 → no conflict.
	a := mkModel("m1", nil, nil)
	a.Compartments[0].Size = 0.5
	a.Species = append(a.Species, &sbml.Species{
		ID: "S", Compartment: "cell", InitialConcentration: 2, HasInitialConcentration: true,
	})
	b := mkModel("m2", nil, nil)
	b.Compartments[0].Size = 0.5
	b.Species = append(b.Species, &sbml.Species{
		ID: "S", Compartment: "cell", InitialAmount: 1, HasInitialAmount: true,
	})
	res := compose(t, a, b, Options{})
	if len(res.Warnings) != 0 {
		t.Errorf("amount/concentration agreement should not warn: %v", res.Warnings)
	}
	// A genuinely different amount must warn.
	b.Species[0].InitialAmount = 3
	res = compose(t, a, b, Options{})
	if len(res.Warnings) != 1 {
		t.Errorf("expected conflict warning, got %v", res.Warnings)
	}
}

func TestMoleculeCountConversion(t *testing.T) {
	// Second model counts molecules (substanceUnits=item): N = nA·c·V.
	const conc, vol = 1e-6, 1e-15
	count := units.Avogadro * conc * vol
	a := mkModel("m1", nil, nil)
	a.Compartments[0].Size = vol
	a.Species = append(a.Species, &sbml.Species{
		ID: "S", Compartment: "cell", InitialConcentration: conc, HasInitialConcentration: true,
	})
	b := mkModel("m2", nil, nil)
	b.Compartments[0].Size = vol
	b.Species = append(b.Species, &sbml.Species{
		ID: "S", Compartment: "cell", InitialAmount: count, HasInitialAmount: true,
		SubstanceUnits: "item",
	})
	res := compose(t, a, b, Options{})
	if len(res.Warnings) != 0 {
		t.Errorf("mole/molecule agreement should not warn: %v", res.Warnings)
	}
	// Light semantics performs no basis conversion → conflict.
	res = compose(t, a, b, Options{Semantics: LightSemantics})
	if len(res.Warnings) == 0 {
		t.Error("light semantics should flag the raw mismatch")
	}
}

func TestRateConstantFigure6Conversion(t *testing.T) {
	// Two second-order models: one in concentration units, one in
	// molecules. k_molecules = k_moles/(nA·V) must be recognized as the
	// same constant.
	const kMoles, vol = 1e6, 1e-15
	kMolecules := kMoles / (units.Avogadro * vol)

	build := func(id string, k float64, inItems bool) *sbml.Model {
		m := sbml.NewModel(id)
		m.Compartments = append(m.Compartments, &sbml.Compartment{ID: "cell", SpatialDimensions: 3, Size: vol, HasSize: true, Constant: true})
		su := ""
		if inItems {
			su = "item"
		}
		for _, sid := range []string{"X", "Y", "Z"} {
			m.Species = append(m.Species, &sbml.Species{
				ID: sid, Compartment: "cell", InitialConcentration: 1, HasInitialConcentration: true,
				SubstanceUnits: su,
			})
		}
		m.Reactions = append(m.Reactions, &sbml.Reaction{
			ID:        "bind",
			Reactants: []*sbml.SpeciesReference{{Species: "X", Stoichiometry: 1}, {Species: "Y", Stoichiometry: 1}},
			Products:  []*sbml.SpeciesReference{{Species: "Z", Stoichiometry: 1}},
			KineticLaw: &sbml.KineticLaw{
				Math:       mathml.MustParseInfix("k2*X*Y"),
				Parameters: []*sbml.Parameter{{ID: "k2", Value: k, HasValue: true, Constant: true}},
			},
		})
		return m
	}
	a := build("m1", kMoles, false)
	b := build("m2", kMolecules, true)
	var log strings.Builder
	res := compose(t, a, b, Options{Log: &log})
	if len(res.Warnings) != 0 {
		t.Errorf("Figure 6 conversion should reconcile the constants: %v", res.Warnings)
	}
	if !strings.Contains(log.String(), "conversion") {
		t.Errorf("expected a conversion note in the log: %q", log.String())
	}
	// A genuinely different constant must still conflict.
	b2 := build("m3", kMolecules*7, true)
	res = compose(t, a, b2, Options{})
	if len(res.Warnings) == 0 {
		t.Error("wrong constant should conflict")
	}
}

func TestParameterRules(t *testing.T) {
	a := mkModel("m1", nil, nil)
	a.Parameters = append(a.Parameters, &sbml.Parameter{ID: "k", Value: 1, HasValue: true, Constant: true})
	// Same id, same value → merge.
	b := mkModel("m2", nil, nil)
	b.Parameters = append(b.Parameters, &sbml.Parameter{ID: "k", Value: 1, HasValue: true, Constant: true})
	res := compose(t, a, b, Options{})
	if len(res.Model.Parameters) != 1 {
		t.Errorf("identical parameters should merge: %d", len(res.Model.Parameters))
	}
	// Same id, different value → both kept, second renamed ("if two
	// parameters have the same name, then one is renamed").
	b.Parameters[0].Value = 2
	res = compose(t, a, b, Options{})
	if len(res.Model.Parameters) != 2 {
		t.Fatalf("conflicting parameters should both survive: %d", len(res.Model.Parameters))
	}
	renamed := res.Renames["k"]
	if renamed == "" || res.Model.ParameterByID(renamed) == nil {
		t.Errorf("rename = %v", res.Renames)
	}
	if res.Model.ParameterByID(renamed).Value != 2 {
		t.Error("renamed parameter lost its value")
	}
}

func TestParameterRenameRewritesKineticLaw(t *testing.T) {
	a := mkModel("m1", []string{"A", "B"}, []string{"A>B:k1"})
	b := mkModel("m2", []string{"P", "Q"}, []string{"P>Q:k1"})
	// Same parameter id k1 but different value in model 2.
	b.ParameterByID("k1").Value = 99
	res := compose(t, a, b, Options{})
	fresh := res.Renames["k1"]
	if fresh == "" {
		t.Fatalf("expected k1 rename, got %v", res.Renames)
	}
	r := res.Model.ReactionByID("r_P_Q")
	if r == nil {
		t.Fatal("model-2 reaction lost")
	}
	if got := mathml.FormatInfix(r.KineticLaw.Math); !strings.Contains(got, fresh) {
		t.Errorf("kinetic law should use renamed parameter: %s", got)
	}
}

func TestFunctionDefinitionsMergeByPattern(t *testing.T) {
	a := sbml.NewModel("m1")
	a.FunctionDefinitions = append(a.FunctionDefinitions, &sbml.FunctionDefinition{
		ID: "mm", Math: mathml.Lambda{Params: []string{"s", "v", "km"}, Body: mathml.MustParseInfix("v*s/(km+s)")},
	})
	b := sbml.NewModel("m2")
	b.FunctionDefinitions = append(b.FunctionDefinitions, &sbml.FunctionDefinition{
		// Alpha-equivalent with commuted operands and a different id.
		ID: "menten", Math: mathml.Lambda{Params: []string{"x", "vm", "k"}, Body: mathml.MustParseInfix("x*vm/(x+k)")},
	})
	res := compose(t, a, b, Options{})
	if len(res.Model.FunctionDefinitions) != 1 {
		t.Fatalf("equivalent lambdas should merge: %d", len(res.Model.FunctionDefinitions))
	}
	if res.Mappings["menten"] != "mm" {
		t.Errorf("mapping = %v", res.Mappings)
	}
}

func TestUnitDefinitionsMergeByCanonicalForm(t *testing.T) {
	a := sbml.NewModel("m1")
	a.UnitDefinitions = append(a.UnitDefinitions, &sbml.UnitDefinition{
		ID: "molar", Units: []units.Unit{
			{Kind: "mole", Exponent: 1, Multiplier: 1},
			{Kind: "litre", Exponent: -1, Multiplier: 1},
		},
	})
	b := sbml.NewModel("m2")
	b.UnitDefinitions = append(b.UnitDefinitions, &sbml.UnitDefinition{
		ID: "conc_unit", Units: []units.Unit{
			{Kind: "litre", Exponent: -1, Multiplier: 1},
			{Kind: "mole", Exponent: 1, Multiplier: 1},
		},
	})
	res := compose(t, a, b, Options{})
	if len(res.Model.UnitDefinitions) != 1 {
		t.Fatalf("equivalent units should merge: %d", len(res.Model.UnitDefinitions))
	}
	if res.Mappings["conc_unit"] != "molar" {
		t.Errorf("mapping = %v", res.Mappings)
	}
}

func TestRulesAndConstraints(t *testing.T) {
	a := mkModel("m1", []string{"A"}, nil)
	a.Parameters = append(a.Parameters, &sbml.Parameter{ID: "p", Constant: false})
	a.Rules = append(a.Rules, &sbml.Rule{Kind: sbml.AssignmentRule, Variable: "p", Math: mathml.MustParseInfix("A*2")})
	a.Constraints = append(a.Constraints, &sbml.Constraint{Math: mathml.MustParseInfix("A >= 0")})

	// Identical (commuted) rule and constraint merge silently.
	b := mkModel("m2", []string{"A"}, nil)
	b.Parameters = append(b.Parameters, &sbml.Parameter{ID: "p", Constant: false})
	b.Rules = append(b.Rules, &sbml.Rule{Kind: sbml.AssignmentRule, Variable: "p", Math: mathml.MustParseInfix("2*A")})
	b.Constraints = append(b.Constraints, &sbml.Constraint{Math: mathml.MustParseInfix("A >= 0")})
	res := compose(t, a, b, Options{})
	if len(res.Model.Rules) != 1 || len(res.Model.Constraints) != 1 {
		t.Fatalf("rules=%d constraints=%d, want 1/1", len(res.Model.Rules), len(res.Model.Constraints))
	}
	if len(res.Warnings) != 0 {
		t.Errorf("warnings = %v", res.Warnings)
	}

	// Conflicting rule for the same variable warns, first wins.
	b.Rules[0].Math = mathml.MustParseInfix("A*3")
	res = compose(t, a, b, Options{})
	if len(res.Model.Rules) != 1 {
		t.Fatalf("conflicting rules must not duplicate: %d", len(res.Model.Rules))
	}
	if len(res.Warnings) == 0 || !strings.Contains(res.Warnings[0].Message, "conflicting rules") {
		t.Errorf("warnings = %v", res.Warnings)
	}
	if got := mathml.FormatInfix(res.Model.Rules[0].Math); got != "A * 2" {
		t.Errorf("first rule should win, got %s", got)
	}

	// A different constraint is added.
	b.Constraints[0].Math = mathml.MustParseInfix("A <= 100")
	res = compose(t, a, b, Options{})
	if len(res.Model.Constraints) != 2 {
		t.Errorf("constraints = %d, want 2", len(res.Model.Constraints))
	}
}

func TestInitialAssignments(t *testing.T) {
	a := mkModel("m1", nil, nil)
	a.Parameters = append(a.Parameters, &sbml.Parameter{ID: "x", Constant: true})
	a.InitialAssignments = append(a.InitialAssignments, &sbml.InitialAssignment{
		Symbol: "x", Math: mathml.MustParseInfix("2 + 3"),
	})
	// Syntactically different but equal value → merge with note, no warning.
	b := mkModel("m2", nil, nil)
	b.Parameters = append(b.Parameters, &sbml.Parameter{ID: "x", Constant: true})
	b.InitialAssignments = append(b.InitialAssignments, &sbml.InitialAssignment{
		Symbol: "x", Math: mathml.MustParseInfix("5"),
	})
	res := compose(t, a, b, Options{})
	if len(res.Model.InitialAssignments) != 1 {
		t.Fatalf("assignments = %d", len(res.Model.InitialAssignments))
	}
	if len(res.Warnings) != 0 {
		t.Errorf("equal-valued assignments should not warn: %v", res.Warnings)
	}
	// Different value → conflict, first wins.
	b.InitialAssignments[0].Math = mathml.MustParseInfix("7")
	res = compose(t, a, b, Options{})
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0].Message, "conflicting initial assignments") {
		t.Errorf("warnings = %v", res.Warnings)
	}
}

func TestEventsMergeAndAdd(t *testing.T) {
	mkEvent := func(id, trigger string) *sbml.Event {
		return &sbml.Event{
			ID:      id,
			Trigger: mathml.MustParseInfix(trigger),
			Assignments: []*sbml.EventAssignment{
				{Variable: "A", Math: mathml.N(0)},
			},
		}
	}
	a := mkModel("m1", []string{"A"}, nil)
	a.Species[0].Constant = false
	a.Events = append(a.Events, mkEvent("e1", "A > 10"))
	b := mkModel("m2", []string{"A"}, nil)
	b.Species[0].Constant = false
	b.Events = append(b.Events, mkEvent("shutdown", "A > 10")) // same semantics
	res := compose(t, a, b, Options{})
	if len(res.Model.Events) != 1 {
		t.Errorf("identical events should merge: %d", len(res.Model.Events))
	}
	b.Events[0].Trigger = mathml.MustParseInfix("A > 20")
	res = compose(t, a, b, Options{})
	if len(res.Model.Events) != 2 {
		t.Errorf("different events should both survive: %d", len(res.Model.Events))
	}
}

func TestReactionIDCollisionDifferentStructure(t *testing.T) {
	a := mkModel("m1", []string{"A", "B"}, []string{"A>B:k1"})
	b := mkModel("m2", []string{"X", "Y"}, nil)
	b.Parameters = append(b.Parameters, &sbml.Parameter{ID: "kx", Value: 1, HasValue: true, Constant: true})
	b.Reactions = append(b.Reactions, &sbml.Reaction{
		ID:         "r_A_B", // clashes with a's reaction id but different chemistry
		Reactants:  []*sbml.SpeciesReference{{Species: "X", Stoichiometry: 1}},
		Products:   []*sbml.SpeciesReference{{Species: "Y", Stoichiometry: 1}},
		KineticLaw: &sbml.KineticLaw{Math: mathml.MustParseInfix("kx*X")},
	})
	res := compose(t, a, b, Options{})
	if len(res.Model.Reactions) != 2 {
		t.Fatalf("reactions = %d", len(res.Model.Reactions))
	}
	if res.Renames["r_A_B"] == "" {
		t.Errorf("expected reaction rename, got %v", res.Renames)
	}
}

func TestSemanticsLevels(t *testing.T) {
	tab := synonym.NewTable()
	tab.Add("glucose", "dextrose")
	mk := func(id, spName string) *sbml.Model {
		m := mkModel(id, nil, nil)
		m.Species = append(m.Species, &sbml.Species{
			ID: spName, Name: spName, Compartment: "cell",
			InitialConcentration: 1, HasInitialConcentration: true,
		})
		return m
	}
	a, b := mk("m1", "glucose"), mk("m2", "dextrose")
	// Heavy merges via synonym table.
	res := compose(t, a, b, Options{Semantics: HeavySemantics, Synonyms: tab})
	if len(res.Model.Species) != 1 {
		t.Errorf("heavy: %d species", len(res.Model.Species))
	}
	// Light does not.
	res = compose(t, a, b, Options{Semantics: LightSemantics, Synonyms: tab})
	if len(res.Model.Species) != 2 {
		t.Errorf("light: %d species", len(res.Model.Species))
	}
	// None requires exact math too: commuted kinetic laws stop merging.
	a2 := mkModel("m1", []string{"A", "B"}, nil)
	a2.Parameters = append(a2.Parameters, &sbml.Parameter{ID: "k", Value: 1, HasValue: true, Constant: true})
	a2.Reactions = append(a2.Reactions, &sbml.Reaction{
		ID:         "r1",
		Reactants:  []*sbml.SpeciesReference{{Species: "A", Stoichiometry: 1}},
		Products:   []*sbml.SpeciesReference{{Species: "B", Stoichiometry: 1}},
		KineticLaw: &sbml.KineticLaw{Math: mathml.MustParseInfix("k*A")},
	})
	b2 := a2.Clone()
	b2.ID = "m2"
	b2.Reactions[0].KineticLaw.Math = mathml.MustParseInfix("A*k")
	resNone := compose(t, a2, b2, Options{Semantics: NoSemantics})
	if len(resNone.Warnings) == 0 {
		t.Error("none-semantics should flag commuted laws as conflicting")
	}
	resLight := compose(t, a2, b2, Options{Semantics: LightSemantics})
	if len(resLight.Warnings) != 0 {
		t.Errorf("light semantics should accept commuted laws: %v", resLight.Warnings)
	}
}

func TestComposeAllIncremental(t *testing.T) {
	parts := []*sbml.Model{
		mkModel("p1", []string{"A", "B"}, []string{"A>B:k1"}),
		mkModel("p2", []string{"B", "C"}, []string{"B>C:k2"}),
		mkModel("p3", []string{"C", "D"}, []string{"C>D:k3"}),
	}
	res, err := ComposeAll(parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sbml.Check(res.Model); err != nil {
		t.Fatal(err)
	}
	if len(res.Model.Species) != 4 || len(res.Model.Reactions) != 3 {
		t.Errorf("pipeline = %d species %d reactions", len(res.Model.Species), len(res.Model.Reactions))
	}
	if _, err := ComposeAll(nil, Options{}); err == nil {
		t.Error("empty ComposeAll should error")
	}
	single, err := ComposeAll(parts[:1], Options{})
	if err != nil || len(single.Model.Species) != 2 {
		t.Errorf("single-model fold: %v", err)
	}
}

func TestAllIndexKindsGiveSameResult(t *testing.T) {
	a := mkModel("m1", []string{"A", "B", "C"}, []string{"A>B:k1", "B>C:k2"})
	b := mkModel("m2", []string{"B", "C", "D"}, []string{"B>C:k2", "C>D:k3"})
	var canonical string
	for _, kind := range []index.Kind{index.Hash, index.Linear, index.Sorted, index.SuffixTree} {
		res := compose(t, a, b, Options{Index: kind})
		got := sbml.WrapModel(res.Model).ToXML().Canonical()
		if canonical == "" {
			canonical = got
			continue
		}
		if got != canonical {
			t.Errorf("index kind %s produced a different model", kind)
		}
	}
}

// randomModel builds a small random but valid model for property tests.
func randomModel(r *rand.Rand, id string) *sbml.Model {
	species := []string{"A", "B", "C", "D", "E", "F"}
	n := 2 + r.Intn(4)
	m := mkModel(id, species[:n], nil)
	for i := 0; i < r.Intn(5); i++ {
		from := species[r.Intn(n)]
		to := species[r.Intn(n)]
		if from == to {
			continue
		}
		k := "k" + string(rune('1'+r.Intn(3)))
		if m.ParameterByID(k) == nil {
			m.Parameters = append(m.Parameters, &sbml.Parameter{ID: k, Value: 0.1, HasValue: true, Constant: true})
		}
		rid := "r_" + from + "_" + to
		if m.ReactionByID(rid) != nil {
			continue
		}
		m.Reactions = append(m.Reactions, &sbml.Reaction{
			ID:         rid,
			Reactants:  []*sbml.SpeciesReference{{Species: from, Stoichiometry: 1}},
			Products:   []*sbml.SpeciesReference{{Species: to, Stoichiometry: 1}},
			KineticLaw: &sbml.KineticLaw{Math: mathml.Mul(mathml.S(k), mathml.S(from))},
		})
	}
	return m
}

func TestQuickComposeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(r, "m")
		res, err := Compose(m, m, Options{})
		if err != nil {
			return false
		}
		return len(res.Model.Species) == len(m.Species) &&
			len(res.Model.Reactions) == len(m.Reactions) &&
			len(res.Model.Parameters) == len(m.Parameters) &&
			len(res.Warnings) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickComposePreservesValidity(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomModel(rand.New(rand.NewSource(s1)), "a")
		b := randomModel(rand.New(rand.NewSource(s2)), "b")
		res, err := Compose(a, b, Options{})
		if err != nil {
			return false
		}
		return sbml.Check(res.Model) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickComposeSizeBounds(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomModel(rand.New(rand.NewSource(s1)), "a")
		b := randomModel(rand.New(rand.NewSource(s2)), "b")
		res, err := Compose(a, b, Options{})
		if err != nil {
			return false
		}
		n := len(res.Model.Species)
		// Union bounds: max(|a|,|b|) ≤ |a∪b| ≤ |a|+|b|.
		lo, hi := len(a.Species), len(a.Species)+len(b.Species)
		if len(b.Species) > lo {
			lo = len(b.Species)
		}
		return n >= lo && n <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickComposeCommutativeSizes(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomModel(rand.New(rand.NewSource(s1)), "a")
		b := randomModel(rand.New(rand.NewSource(s2)), "b")
		ab, err1 := Compose(a, b, Options{})
		ba, err2 := Compose(b, a, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return len(ab.Model.Species) == len(ba.Model.Species) &&
			len(ab.Model.Reactions) == len(ba.Model.Reactions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
