package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
)

// This file serializes match keys for the durable store's binary snapshot
// format: a recovered corpus entry can reinstall its inverted-index
// postings from decoded keys without re-parsing the model or re-deriving
// the keys (the expensive part of recovery). The encoding is deliberately
// dumb — uvarint-framed strings, no compression — because decode speed is
// the whole point; integrity is the snapshot codec's job (it CRCs the
// encoded blob).
//
// Decoded keys are only valid under the match options they were derived
// with: a different semantics level or synonym table canonicalizes names
// differently and would post stale keys. MatchKeyFingerprint condenses
// the key-relevant options into a comparable hash so the store can detect
// the mismatch and fall back to re-derivation.

// EncodeMatchKeys renders keys in a stable binary form: uvarint count,
// then per key the uvarint-length-prefixed component, kind and key
// strings followed by a uvarint tier.
func EncodeMatchKeys(keys []ComponentKey) []byte {
	n := binary.MaxVarintLen64
	for _, k := range keys {
		n += len(k.Component) + len(k.Kind) + len(k.Key) + 4*binary.MaxVarintLen64
	}
	buf := make([]byte, 0, n)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	appendStr := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	for _, k := range keys {
		appendStr(k.Component)
		appendStr(k.Kind)
		appendStr(k.Key)
		buf = binary.AppendUvarint(buf, uint64(k.Tier))
	}
	return buf
}

// DecodeMatchKeys parses an EncodeMatchKeys blob. Any structural problem
// — truncation, over-long lengths, an out-of-range tier, trailing bytes —
// is an error; callers treat a failed decode as "no precompiled keys" and
// re-derive from the model.
func DecodeMatchKeys(data []byte) ([]ComponentKey, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("core: match keys: bad count varint")
	}
	data = data[n:]
	if count > uint64(len(data)) {
		// Each key occupies at least one byte per field; a count larger
		// than the remaining bytes is a corrupt or truncated blob, not an
		// allocation request.
		return nil, fmt.Errorf("core: match keys: count %d exceeds blob size", count)
	}
	readStr := func() (string, error) {
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data[n:])) < l {
			return "", fmt.Errorf("core: match keys: truncated string")
		}
		s := string(data[n : n+int(l)])
		data = data[n+int(l):]
		return s, nil
	}
	keys := make([]ComponentKey, 0, count)
	for i := uint64(0); i < count; i++ {
		var k ComponentKey
		var err error
		if k.Component, err = readStr(); err != nil {
			return nil, err
		}
		if k.Kind, err = readStr(); err != nil {
			return nil, err
		}
		if k.Key, err = readStr(); err != nil {
			return nil, err
		}
		tier, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("core: match keys: truncated tier")
		}
		data = data[n:]
		if tier > uint64(TierUnit) {
			return nil, fmt.Errorf("core: match keys: tier %d out of range", tier)
		}
		k.Tier = KeyTier(tier)
		keys = append(keys, k)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("core: match keys: %d trailing bytes", len(data))
	}
	return keys, nil
}

// MatchKeyFingerprint hashes the parts of the options that key derivation
// depends on: the semantics level and the synonym table's equivalence
// classes (canonicalNameFor consults both; the index kind, logging and
// parallelism knobs cannot change a key). Two option sets with equal
// fingerprints derive identical keys for any model, so a snapshot's
// precompiled keys are reusable exactly when its recorded fingerprint
// matches the opening corpus's.
func (o Options) MatchKeyFingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "semantics=%s\n", o.Semantics)
	if o.Synonyms != nil {
		// Classes is the table's semantic content — the partition that
		// Canonical answers from — in a deterministic order, so two tables
		// built from the same pairs in any order fingerprint equal.
		for _, class := range o.Synonyms.Classes() {
			fmt.Fprintf(h, "class=%s\n", strings.Join(class, "\t"))
		}
	}
	return h.Sum64()
}
