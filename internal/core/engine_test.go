package core

// Tests for the compiled-model engine: the incremental fold must behave
// exactly like the seed's re-compose-from-scratch left fold, the compiled
// accumulator's in-place index updates must match a from-scratch rebuild
// after renames, and the parallel balanced-binary reduction must be
// deterministic for any worker count.

import (
	"reflect"
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/index"
	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
)

// renameHeavyBatch generates synthetic models whose global parameters all
// collide (k1, k2, … with different random values), so every fold step
// renames components — the adversarial case for in-place index updates.
func renameHeavyBatch(t testing.TB, n int) []*sbml.Model {
	t.Helper()
	models := make([]*sbml.Model, n)
	for i := range models {
		models[i] = biomodels.Generate(biomodels.Config{
			ID:             "hard" + string(rune('a'+i)),
			Nodes:          12 + i,
			Edges:          18 + i,
			Seed:           int64(7000 + 13*i),
			VocabularySize: 60,
			Decorate:       true,
		})
	}
	return models
}

// cleanBatch generates models with per-model parameter namespaces, so batch
// composition is order-insensitive: no id ever needs a rename, and the left
// fold and the balanced reduction must agree byte for byte.
func cleanBatch(t testing.TB, n int) []*sbml.Model {
	t.Helper()
	models := renameHeavyBatch(t, n)
	for i, m := range models {
		ren := make(map[string]string, len(m.Parameters))
		for _, p := range m.Parameters {
			ren[p.ID] = m.ID + "_" + p.ID
		}
		m.RenameSymbols(ren)
		models[i] = m
	}
	return models
}

// seedFold replicates the seed's ComposeAll exactly: re-Compose the
// accumulator from scratch at every step and union the reports.
func seedFold(t testing.TB, models []*sbml.Model, opts Options) *Result {
	t.Helper()
	acc := &Result{Model: models[0].Clone(), Mappings: map[string]string{}, Renames: map[string]string{}}
	for _, m := range models[1:] {
		step, err := Compose(acc.Model, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		step.Warnings = append(acc.Warnings, step.Warnings...)
		step.Matches = append(acc.Matches, step.Matches...)
		for k, v := range acc.Mappings {
			step.Mappings[k] = v
		}
		for k, v := range acc.Renames {
			step.Renames[k] = v
		}
		step.Stats.Merged += acc.Stats.Merged
		step.Stats.Added += acc.Stats.Added
		step.Stats.Renamed += acc.Stats.Renamed
		step.Stats.Conflicts += acc.Stats.Conflicts
		acc = step
	}
	return acc
}

func modelBytes(m *sbml.Model) string {
	return sbml.WrapModel(m).ToXML().Canonical()
}

// equalResults compares everything except wall-clock Duration.
func equalResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if got, want := modelBytes(a.Model), modelBytes(b.Model); got != want {
		t.Errorf("%s: composed models differ", label)
	}
	if !reflect.DeepEqual(a.Warnings, b.Warnings) {
		t.Errorf("%s: warnings differ:\n%v\nvs\n%v", label, a.Warnings, b.Warnings)
	}
	if !reflect.DeepEqual(a.Matches, b.Matches) {
		t.Errorf("%s: matches differ:\n%v\nvs\n%v", label, a.Matches, b.Matches)
	}
	if !reflect.DeepEqual(a.Mappings, b.Mappings) {
		t.Errorf("%s: mappings differ:\n%v\nvs\n%v", label, a.Mappings, b.Mappings)
	}
	if !reflect.DeepEqual(a.Renames, b.Renames) {
		t.Errorf("%s: renames differ:\n%v\nvs\n%v", label, a.Renames, b.Renames)
	}
	sa, sb := a.Stats, b.Stats
	sa.Duration, sb.Duration = 0, 0
	if sa != sb {
		t.Errorf("%s: stats differ: %+v vs %+v", label, sa, sb)
	}
}

// TestComposeAllMatchesSeedFold pins the incremental compiled-accumulator
// fold to the seed's recompose-every-step behavior, across semantics levels
// and index kinds, on rename-heavy input.
func TestComposeAllMatchesSeedFold(t *testing.T) {
	models := renameHeavyBatch(t, 6)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"heavy-hash", Options{}},
		{"light-hash", Options{Semantics: LightSemantics}},
		{"none-hash", Options{Semantics: NoSemantics}},
		{"heavy-sorted", Options{Index: index.Sorted}},
		{"heavy-suffixtree", Options{Index: index.SuffixTree}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := seedFold(t, models, tc.opts)
			got, err := ComposeAll(models, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, tc.name, got, want)
			if err := sbml.Check(got.Model); err != nil {
				t.Errorf("composed model invalid: %v", err)
			}
		})
	}
}

// TestComposerStreamingIncremental drives the exported streaming API and
// checks that composing through a persistent accumulator step by step gives
// the same model as pairwise Compose against a snapshot at every step —
// i.e. the in-place index updates never go stale between steps.
func TestComposerStreamingIncremental(t *testing.T) {
	models := renameHeavyBatch(t, 5)
	comp := NewComposer(Options{})
	if comp.Model() != nil || comp.Snapshot() != nil {
		t.Fatal("empty composer should have no model")
	}
	if err := comp.Add(nil); err == nil {
		t.Fatal("Add(nil) should error")
	}
	for i, m := range models {
		if i > 0 {
			// What a from-scratch compose of the current accumulator
			// snapshot would produce for this step.
			want, err := Compose(comp.Snapshot(), m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := comp.Add(m); err != nil {
				t.Fatal(err)
			}
			if got := modelBytes(comp.Model()); got != modelBytes(want.Model) {
				t.Fatalf("step %d: incremental accumulator diverged from from-scratch compose", i)
			}
		} else if err := comp.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	if comp.Result().Model != comp.Model() {
		t.Error("Result().Model should be the live accumulator")
	}
}

// TestCompiledIndexesMatchRebuild composes rename-heavy models through one
// compiled accumulator, then recompiles the final model from scratch and
// checks every per-component-type index agrees: same key count, and every
// key of the rebuilt index resolves to the same component in the
// incrementally maintained one.
func TestCompiledIndexesMatchRebuild(t *testing.T) {
	models := renameHeavyBatch(t, 6)
	for _, opts := range []Options{{}, {Semantics: NoSemantics}} {
		comp := NewComposer(opts)
		for _, m := range models {
			if err := comp.Add(m); err != nil {
				t.Fatal(err)
			}
		}
		if comp.Result().Stats.Renamed == 0 {
			t.Fatal("batch should exercise renames")
		}
		inc := comp.acc
		fresh := compile(inc.model.Clone(), opts)
		compareCompiled(t, inc, fresh)

		// The live id set must match a recollection from the final model.
		if got, want := inc.ids, inc.model.AllIDs(); !reflect.DeepEqual(got, want) {
			t.Errorf("incremental id set diverged from AllIDs rebuild")
		}
	}
}

// compareCompiled asserts that the incrementally maintained compiled model
// and a from-scratch compile of the same underlying model index identically.
func compareCompiled(t *testing.T, inc, fresh *CompiledModel) {
	t.Helper()
	m := fresh.model
	type family struct {
		name       string
		inc, fresh index.Index
		keys       []string
		idOf       func(v any) string
	}
	var families []family
	add := func(name string, i, f index.Index, keys []string, idOf func(v any) string) {
		families = append(families, family{name, i, f, keys, idOf})
	}

	var funcKeys []string
	for _, fd := range m.FunctionDefinitions {
		funcKeys = append(funcKeys, mathKeyFor(fresh.opts, fd.Math))
	}
	add("functions", inc.funcIdx, fresh.funcIdx, funcKeys,
		func(v any) string { return v.(*sbml.FunctionDefinition).ID })

	var unitKeys []string
	for _, u := range m.UnitDefinitions {
		unitKeys = append(unitKeys, unitKey(u))
	}
	add("units", inc.unitIdx, fresh.unitIdx, unitKeys,
		func(v any) string { return v.(*sbml.UnitDefinition).ID })

	var compKeys []string
	for _, comp := range m.Compartments {
		compKeys = append(compKeys, "id:"+comp.ID)
	}
	add("compartments", inc.compIdx, fresh.compIdx, compKeys,
		func(v any) string { return v.(*sbml.Compartment).ID })

	var spKeys []string
	for _, s := range m.Species {
		spKeys = append(spKeys, speciesKeysFor(fresh.opts, s)...)
	}
	add("species", inc.speciesIdx, fresh.speciesIdx, spKeys,
		func(v any) string { return v.(*sbml.Species).ID })

	var rxKeys []string
	for _, r := range m.Reactions {
		rxKeys = append(rxKeys, reactionStructureKey(r))
	}
	add("reactions", inc.reactIdx, fresh.reactIdx, rxKeys,
		func(v any) string { return v.(*sbml.Reaction).ID })

	var evKeys []string
	for _, e := range m.Events {
		evKeys = append(evKeys, eventKeyFor(fresh.opts, e))
	}
	add("events", inc.eventIdx, fresh.eventIdx, evKeys,
		func(v any) string { return v.(*sbml.Event).ID })

	var conKeys []string
	for _, con := range m.Constraints {
		conKeys = append(conKeys, mathKeyFor(fresh.opts, con.Math))
	}
	add("constraints", inc.consIdx, fresh.consIdx, conKeys, nil)

	for _, f := range families {
		if f.inc.Len() != f.fresh.Len() {
			t.Errorf("%s: incremental index has %d keys, rebuild has %d", f.name, f.inc.Len(), f.fresh.Len())
		}
		for _, k := range f.keys {
			iv, iok := f.inc.Lookup(k)
			fv, fok := f.fresh.Lookup(k)
			if iok != fok {
				t.Errorf("%s: key %q present=%v in incremental, %v in rebuild", f.name, k, iok, fok)
				continue
			}
			if f.idOf != nil && iok && f.idOf(iv) != f.idOf(fv) {
				t.Errorf("%s: key %q resolves to %q incrementally but %q on rebuild",
					f.name, k, f.idOf(iv), f.idOf(fv))
			}
		}
	}
	if len(inc.params) != len(fresh.params) {
		t.Errorf("params: %d incremental vs %d rebuilt", len(inc.params), len(fresh.params))
	}
	if len(inc.rules) != len(fresh.rules) {
		t.Errorf("rules: %d incremental vs %d rebuilt", len(inc.rules), len(fresh.rules))
	}
	if len(inc.assigns) != len(fresh.assigns) {
		t.Errorf("assigns: %d incremental vs %d rebuilt", len(inc.assigns), len(fresh.assigns))
	}
}

// TestComposeAllParallelDeterministic runs the balanced reduction with
// different worker counts over rename-heavy input; scheduling must not leak
// into any part of the Result.
func TestComposeAllParallelDeterministic(t *testing.T) {
	models := renameHeavyBatch(t, 7) // odd count exercises the carry-over leaf
	var ref *Result
	for _, workers := range []int{1, 2, 3, 8} {
		res, err := ComposeAll(models, Options{Parallel: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := sbml.Check(res.Model); err != nil {
			t.Fatalf("workers=%d: invalid model: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		equalResults(t, "workers", res, ref)
	}
}

// TestComposeAllParallelMatchesSequential checks the acceptance property:
// on an order-insensitive batch (no cross-model id fights), the sequential
// incremental fold and the parallel balanced reduction produce byte-
// identical composed models and identical merge statistics.
func TestComposeAllParallelMatchesSequential(t *testing.T) {
	models := cleanBatch(t, 8)
	seq, err := ComposeAll(models, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ComposeAll(models, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Renamed != 0 || par.Stats.Renamed != 0 {
		t.Fatalf("clean batch should not rename (seq=%d par=%d)", seq.Stats.Renamed, par.Stats.Renamed)
	}
	if got, want := modelBytes(par.Model), modelBytes(seq.Model); got != want {
		t.Error("parallel reduction and sequential fold disagree on a clean batch")
	}
	ss, sp := seq.Stats, par.Stats
	ss.Duration, sp.Duration = 0, 0
	if ss != sp {
		t.Errorf("stats differ: sequential %+v vs parallel %+v", ss, sp)
	}
}

// TestComposerFigure5EmptyCases covers the streaming equivalents of Figure
// 5 lines 1-2: empty accumulators and empty inputs short-circuit.
func TestComposerFigure5EmptyCases(t *testing.T) {
	empty := sbml.NewModel("empty")
	full := mkModel("full", []string{"A", "B"}, []string{"A>B:k1"})

	comp := NewComposer(Options{})
	if err := comp.Add(empty); err != nil {
		t.Fatal(err)
	}
	if err := comp.Add(full); err != nil {
		t.Fatal(err)
	}
	res := comp.Result()
	if res.Stats.Added != full.ComponentCount() {
		t.Errorf("empty-then-full: Added = %d, want %d", res.Stats.Added, full.ComponentCount())
	}
	if len(res.Model.Species) != 2 {
		t.Errorf("species = %d, want 2", len(res.Model.Species))
	}

	comp = NewComposer(Options{})
	if err := comp.Add(full); err != nil {
		t.Fatal(err)
	}
	if err := comp.Add(empty); err != nil {
		t.Fatal(err)
	}
	if got := comp.Result(); got.Stats.Added != 0 || len(got.Model.Species) != 2 {
		t.Errorf("full-then-empty: added=%d species=%d", got.Stats.Added, len(got.Model.Species))
	}

	// Both empty: the later model's identity wins, exactly as pairwise
	// Compose(empty, empty) returns the second model's clone.
	e1, e2 := sbml.NewModel("e1"), sbml.NewModel("e2")
	res2, err := ComposeAll([]*sbml.Model{e1, e2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Model.ID != "e2" {
		t.Errorf("empty+empty fold kept %q, want e2", res2.Model.ID)
	}
	par, err := ComposeAll([]*sbml.Model{e1, e2}, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if par.Model.ID != "e2" {
		t.Errorf("empty+empty parallel kept %q, want e2", par.Model.ID)
	}
}

// TestNewComposerFrom seeds a streaming composer with a precompiled model.
func TestNewComposerFrom(t *testing.T) {
	base := mkModel("base", []string{"A", "B"}, []string{"A>B:k1"})
	cm, err := Compile(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(nil, Options{}); err == nil {
		t.Error("Compile(nil) should error")
	}
	if cm.Model() == base {
		t.Error("Compile must clone its input")
	}
	if got := cm.Options(); got != (Options{}) {
		t.Errorf("Options() = %+v", got)
	}

	comp := NewComposerFrom(cm)
	next := mkModel("next", []string{"B", "C"}, []string{"B>C:k2"})
	if err := comp.Add(next); err != nil {
		t.Fatal(err)
	}
	want, err := Compose(base, next, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if modelBytes(comp.Model()) != modelBytes(want.Model) {
		t.Error("composer seeded from Compile diverged from Compose")
	}
	// The original input stayed intact.
	if len(base.Species) != 2 {
		t.Errorf("input mutated: %d species", len(base.Species))
	}
}

// TestRekeyAfterMidStepRename pins the stale-key repair: a component added
// mid-step can have its math rewritten by a rename later in the same step
// (here a constraint referencing a reaction id that then collides and is
// renamed). The compiled accumulator must re-key it at step end, exactly as
// the seed's next-step rebuild did, so a later model carrying the
// post-rename constraint merges instead of duplicating.
func TestRekeyAfterMidStepRename(t *testing.T) {
	// m1: owns reaction id "r_A_B"; no constraint.
	m1 := mkModel("m1", []string{"A", "B"}, []string{"A>B:k1"})
	// m2: structurally different reaction under the same id → renamed to
	// r_A_B_m2 during the reaction phase, after m2's constraint
	// "r_A_B >= 0" was already added and indexed.
	m2 := mkModel("m2", []string{"C", "D"}, []string{"C>D:k2"})
	m2.Reactions[0].ID = "r_A_B"
	m2.Constraints = append(m2.Constraints, &sbml.Constraint{
		Math: mathml.Call("geq", mathml.S("r_A_B"), mathml.N(0)),
	})
	// m3: carries the constraint under the post-rename id.
	m3 := mkModel("m3", []string{"E"}, nil)
	m3.Constraints = append(m3.Constraints, &sbml.Constraint{
		Math: mathml.Call("geq", mathml.S("r_A_B_m2"), mathml.N(0)),
	})

	models := []*sbml.Model{m1, m2, m3}
	want := seedFold(t, models, Options{})
	got, err := ComposeAll(models, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Model.Constraints) != 1 {
		t.Fatalf("seed fold should merge to 1 constraint, got %d", len(want.Model.Constraints))
	}
	equalResults(t, "mid-step rename rekey", got, want)

	// Parallel reduction reuses accumulators across tree levels, so it
	// must re-key too: ((m1+m2)+m3) hits the same stale-key shape.
	par, err := ComposeAll(models, Options{Parallel: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Model.Constraints) != 1 {
		t.Errorf("parallel reduction kept %d constraints, want 1", len(par.Model.Constraints))
	}
}

// TestAdoptedLawParamsClaimed pins the id bookkeeping for kinetic-law
// adoption: when a merged reaction adopts the second model's law, the law's
// local parameter ids join the accumulator's namespace, so a later step's
// fresh-name generation must skip them — exactly what the seed's per-step
// AllIDs recollection did.
func TestAdoptedLawParamsClaimed(t *testing.T) {
	// m1: reaction without a kinetic law.
	m1 := mkModel("m1", []string{"A", "B"}, nil)
	m1.Reactions = append(m1.Reactions, &sbml.Reaction{
		ID:        "rx",
		Reactants: []*sbml.SpeciesReference{{Species: "A", Stoichiometry: 1}},
		Products:  []*sbml.SpeciesReference{{Species: "B", Stoichiometry: 1}},
	})
	// m2: structurally identical reaction whose adopted law carries a local
	// parameter occupying the first fresh-name slot for "P".
	m2 := mkModel("m2", []string{"A", "B"}, nil)
	m2.Reactions = append(m2.Reactions, &sbml.Reaction{
		ID:        "rx",
		Reactants: []*sbml.SpeciesReference{{Species: "A", Stoichiometry: 1}},
		Products:  []*sbml.SpeciesReference{{Species: "B", Stoichiometry: 1}},
		KineticLaw: &sbml.KineticLaw{
			Math:       mathml.Mul(mathml.S("P_m2"), mathml.S("A")),
			Parameters: []*sbml.Parameter{{ID: "P_m2", Value: 0.5, HasValue: true}},
		},
	})
	m2.Parameters = append(m2.Parameters, &sbml.Parameter{ID: "P", Value: 1, HasValue: true})
	// m3: conflicting "P" forces a rename, whose fresh name must not
	// collide with the adopted local "P_m2".
	m3 := mkModel("m3", []string{"C"}, nil)
	m3.Parameters = append(m3.Parameters, &sbml.Parameter{ID: "P", Value: 2, HasValue: true})

	models := []*sbml.Model{m1, m2, m3}
	want := seedFold(t, models, Options{})
	got, err := ComposeAll(models, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want.Renames["P"] != "P_m3" {
		t.Fatalf("seed fold renamed P to %q, expected P_m3 (test setup drifted)", want.Renames["P"])
	}
	equalResults(t, "adopted-law params", got, want)
}

// TestComposeAllParallelWithSynonyms shares one synonym table across the
// parallel workers — under -race this catches any unsynchronized table
// access (Canonical and Match path-compress, i.e. write, on lookup).
func TestComposeAllParallelWithSynonyms(t *testing.T) {
	models := renameHeavyBatch(t, 8)
	tab := synonym.Builtin()
	par, err := ComposeAll(models, Options{Parallel: true, Workers: 4, Synonyms: tab})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ComposeAll(models, Options{Synonyms: tab})
	if err != nil {
		t.Fatal(err)
	}
	if par.Model.ComponentCount() == 0 || seq.Model.ComponentCount() == 0 {
		t.Fatal("empty composition")
	}
	if err := sbml.Check(par.Model); err != nil {
		t.Errorf("parallel model invalid: %v", err)
	}
}
