package core

// Decomposition — the inverse of composition — is item 2 of the paper's
// future-work list ("defining a method for XML graph decomposition or
// splitting"). This file implements it for SBML models: a model is split
// into its weakly connected reaction subnetworks, each a standalone valid
// model carrying exactly the global components (parameters, units, function
// definitions, compartments, rules, events) its own species and reactions
// reference. Composing the parts back with Compose reconstructs the
// original network.

import (
	"fmt"
	"sort"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
)

// Decompose splits m into one model per weakly connected component of its
// species–reaction graph. Isolated species (touched by no reaction) are
// grouped into a single trailing part. Parts are ordered by their smallest
// species id; each part is valid whenever m is. Components that belong to
// no species (e.g. a rule over parameters only) go to the first part.
func Decompose(m *sbml.Model) ([]*sbml.Model, error) {
	if m == nil {
		return nil, fmt.Errorf("core: Decompose requires a model")
	}
	if len(m.Species) == 0 {
		return []*sbml.Model{m.Clone()}, nil
	}

	// Union-find over species ids; each reaction unions everything it
	// touches.
	parent := make(map[string]string, len(m.Species))
	for _, s := range m.Species {
		parent[s.ID] = s.ID
	}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, r := range m.Reactions {
		var first string
		touch := func(id string) {
			if _, ok := parent[id]; !ok {
				return
			}
			if first == "" {
				first = id
				return
			}
			union(first, id)
		}
		for _, sr := range r.Reactants {
			touch(sr.Species)
		}
		for _, sr := range r.Products {
			touch(sr.Species)
		}
		for _, mr := range r.Modifiers {
			touch(mr.Species)
		}
	}

	// Group species by root; isolated species share one group.
	const isolatedKey = "\x00isolated"
	groups := make(map[string][]*sbml.Species)
	connected := make(map[string]bool)
	for _, r := range m.Reactions {
		for _, sr := range r.Reactants {
			connected[sr.Species] = true
		}
		for _, sr := range r.Products {
			connected[sr.Species] = true
		}
		for _, mr := range r.Modifiers {
			connected[mr.Species] = true
		}
	}
	for _, s := range m.Species {
		key := isolatedKey
		if connected[s.ID] {
			key = find(s.ID)
		}
		groups[key] = append(groups[key], s)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i] == isolatedKey {
			return false
		}
		if keys[j] == isolatedKey {
			return true
		}
		return groups[keys[i]][0].ID < groups[keys[j]][0].ID
	})

	parts := make([]*sbml.Model, 0, len(keys))
	for i, key := range keys {
		part := buildPart(m, fmt.Sprintf("%s_part%d", m.ID, i+1), groups[key])
		parts = append(parts, part)
	}
	// Orphan components referencing no species (parameter-only rules,
	// events over parameters) attach to the first part so nothing is lost.
	attachOrphans(m, parts)
	return parts, nil
}

// buildPart assembles one component's standalone model.
func buildPart(m *sbml.Model, id string, species []*sbml.Species) *sbml.Model {
	part := sbml.NewModel(id)
	part.Name = m.Name

	inPart := make(map[string]bool, len(species))
	for _, s := range species {
		inPart[s.ID] = true
	}

	// Reactions whose every species reference lies in this part.
	var reactions []*sbml.Reaction
	for _, r := range m.Reactions {
		belongs := len(r.Reactants)+len(r.Products)+len(r.Modifiers) > 0
		for _, sr := range r.Reactants {
			belongs = belongs && inPart[sr.Species]
		}
		for _, sr := range r.Products {
			belongs = belongs && inPart[sr.Species]
		}
		for _, mr := range r.Modifiers {
			belongs = belongs && inPart[mr.Species]
		}
		if belongs {
			reactions = append(reactions, r)
		}
	}

	// Gather every identifier the part's species, reactions, rules and
	// events mention, then copy the referenced globals.
	needed := make(map[string]bool)
	for _, s := range species {
		needed[s.Compartment] = true
		needed[s.SpeciesType] = true
		needed[s.SubstanceUnits] = true
	}
	addMathRefs := func(e mathml.Expr) {
		for v := range mathml.Vars(e) {
			needed[v] = true
		}
		// Function calls are operators, not variables.
		var walk func(mathml.Expr)
		walk = func(x mathml.Expr) {
			switch a := x.(type) {
			case mathml.Apply:
				needed[a.Op] = true
				for _, arg := range a.Args {
					walk(arg)
				}
			case mathml.Lambda:
				walk(a.Body)
			case mathml.Piecewise:
				for _, p := range a.Pieces {
					walk(p.Value)
					walk(p.Cond)
				}
				if a.Otherwise != nil {
					walk(a.Otherwise)
				}
			}
		}
		walk(e)
	}
	for _, r := range reactions {
		if r.KineticLaw != nil && r.KineticLaw.Math != nil {
			addMathRefs(r.KineticLaw.Math)
		}
	}

	// Rules, initial assignments, constraints and events belong here when
	// they mention a part species.
	mentionsPart := func(e mathml.Expr, extra ...string) bool {
		for _, id := range extra {
			if inPart[id] {
				return true
			}
		}
		if e == nil {
			return false
		}
		for v := range mathml.Vars(e) {
			if inPart[v] {
				return true
			}
		}
		return false
	}
	for _, r := range m.Rules {
		if mentionsPart(r.Math, r.Variable) {
			part.Rules = append(part.Rules, r)
			addMathRefs(r.Math)
			needed[r.Variable] = true
		}
	}
	for _, ia := range m.InitialAssignments {
		if mentionsPart(ia.Math, ia.Symbol) {
			part.InitialAssignments = append(part.InitialAssignments, ia)
			addMathRefs(ia.Math)
			needed[ia.Symbol] = true
		}
	}
	for _, c := range m.Constraints {
		if mentionsPart(c.Math) {
			part.Constraints = append(part.Constraints, c)
			addMathRefs(c.Math)
		}
	}
	for _, e := range m.Events {
		belongs := mentionsPart(e.Trigger)
		for _, a := range e.Assignments {
			belongs = belongs || mentionsPart(a.Math, a.Variable)
		}
		if belongs {
			part.Events = append(part.Events, e)
			addMathRefs(e.Trigger)
			if e.Delay != nil {
				addMathRefs(e.Delay)
			}
			for _, a := range e.Assignments {
				addMathRefs(a.Math)
				needed[a.Variable] = true
			}
		}
	}

	// Copy referenced globals (and their own transitive references).
	for _, f := range m.FunctionDefinitions {
		if needed[f.ID] {
			part.FunctionDefinitions = append(part.FunctionDefinitions, f)
		}
	}
	for _, p := range m.Parameters {
		if needed[p.ID] {
			part.Parameters = append(part.Parameters, p)
			needed[p.Units] = true
		}
	}
	for _, c := range m.Compartments {
		if needed[c.ID] {
			part.Compartments = append(part.Compartments, c)
			needed[c.CompartmentType] = true
			needed[c.Units] = true
			// Nested compartments pull their ancestors in.
			for outer := c.Outside; outer != ""; {
				needed[outer] = true
				next := m.CompartmentByID(outer)
				if next == nil {
					break
				}
				outer = next.Outside
			}
		}
	}
	// Second pass for compartments that became needed transitively.
	for _, c := range m.Compartments {
		if needed[c.ID] && part.CompartmentByID(c.ID) == nil {
			part.Compartments = append(part.Compartments, c)
		}
	}
	for _, ct := range m.CompartmentTypes {
		if needed[ct.ID] {
			part.CompartmentTypes = append(part.CompartmentTypes, ct)
		}
	}
	for _, st := range m.SpeciesTypes {
		if needed[st.ID] {
			part.SpeciesTypes = append(part.SpeciesTypes, st)
		}
	}
	for _, u := range m.UnitDefinitions {
		if needed[u.ID] {
			part.UnitDefinitions = append(part.UnitDefinitions, u)
		}
	}

	part.Species = species
	part.Reactions = reactions

	// Deep-copy so parts are independent of the original.
	return part.Clone()
}

// attachOrphans adds components no part claimed to the first part.
func attachOrphans(m *sbml.Model, parts []*sbml.Model) {
	if len(parts) == 0 {
		return
	}
	first := parts[0]
	claimedReaction := make(map[string]bool)
	for _, p := range parts {
		for _, r := range p.Reactions {
			claimedReaction[r.ID] = true
		}
	}
	for _, r := range m.Reactions {
		if !claimedReaction[r.ID] {
			// Reaction touching no species at all (degenerate but legal).
			// Deep-copy via a scratch model so parts stay independent.
			scratch := sbml.Model{Reactions: []*sbml.Reaction{r}}
			first.Reactions = append(first.Reactions, scratch.Clone().Reactions[0])
		}
	}
	claimedRules := 0
	for _, p := range parts {
		claimedRules += len(p.Rules)
	}
	if claimedRules < len(m.Rules) {
		have := make(map[*sbml.Rule]bool)
		for _, p := range parts {
			for _, r := range p.Rules {
				have[r] = true
			}
		}
		// Clone-based parts lose pointer identity; compare by rendering.
		rendered := make(map[string]bool)
		for _, p := range parts {
			for _, r := range p.Rules {
				rendered[r.Kind.String()+r.Variable+mathml.FormatInfix(r.Math)] = true
			}
		}
		for _, r := range m.Rules {
			key := r.Kind.String() + r.Variable + mathml.FormatInfix(r.Math)
			if !rendered[key] {
				cp := *r
				cp.Math = mathml.Clone(r.Math)
				first.Rules = append(first.Rules, &cp)
				// Its variable may be a parameter not yet copied.
				if m.ParameterByID(r.Variable) != nil && first.ParameterByID(r.Variable) == nil {
					pc := *m.ParameterByID(r.Variable)
					first.Parameters = append(first.Parameters, &pc)
				}
			}
		}
	}
}
