package corpus

// Cancellation and pagination tests for the context-aware Search path. A
// countingCtx (cancel after exactly N Err() observations) sweeps the
// cancellation point across retrieval and the scoring pool, pinning the
// all-or-nothing contract: a cancelled Search returns context.Canceled
// and changes nothing; any Search that completes ranks identically to an
// uncancelled twin.

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// countingCtx reports Canceled from the (n+1)-th Err() call on; the
// search code only polls Err(), so a never-closed Done channel is fine.
type countingCtx struct {
	mu        sync.Mutex
	remaining int
	done      chan struct{}
}

func newCountingCtx(n int) *countingCtx {
	return &countingCtx{remaining: n, done: make(chan struct{})}
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}       { return c.done }
func (c *countingCtx) Value(any) any               { return nil }

func (c *countingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestSearchContextCancelSweep lands cancellation at every observation
// point of a multi-shard, multi-worker search. After every cancelled
// attempt the very same corpus must serve an uncancelled search with the
// reference ranking — cancellation may abandon a query, never corrupt the
// repository.
func TestSearchContextCancelSweep(t *testing.T) {
	models := testModels(30)
	c := New(testOptions(4, 4))
	fill(t, c, models)
	query := models[7].Clone()

	ref, err := c.Search(query.Clone(), SearchOptions{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}

	sawCancel := false
	for budget := 0; ; budget++ {
		hits, err := c.SearchContext(newCountingCtx(budget), query.Clone(), SearchOptions{TopK: 10})
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("budget %d: unexpected error %v", budget, err)
			}
			if hits != nil {
				t.Fatalf("budget %d: cancelled Search returned hits", budget)
			}
			sawCancel = true
			// The corpus must be unscathed: a follow-up uncancelled
			// search ranks exactly like the reference.
			again, err := c.Search(query.Clone(), SearchOptions{TopK: 10})
			if err != nil {
				t.Fatalf("budget %d: follow-up search failed: %v", budget, err)
			}
			if !reflect.DeepEqual(again, ref) {
				t.Fatalf("budget %d: ranking drifted after cancelled search", budget)
			}
			continue
		}
		if !reflect.DeepEqual(hits, ref) {
			t.Fatalf("budget %d: completed search diverged from reference", budget)
		}
		break // this budget survived the whole search; larger ones will too
	}
	if !sawCancel {
		t.Fatal("sweep never observed a cancellation")
	}

	// And the corpus still accepts mutations after all those aborts.
	extra := testModels(31)[30]
	extra.ID = "post_cancel_add"
	if _, err := c.Add(extra); err != nil {
		t.Fatalf("Add after cancelled searches: %v", err)
	}
	if !c.Has("post_cancel_add") {
		t.Fatal("model added after cancelled searches is missing")
	}
}

// TestSearchOffsetPagination pins that offset/TopK windows tile the full
// ranking exactly, at every shard and worker count: pagination is applied
// inside the ranking merge, so page boundaries cannot reorder or drop
// tied hits.
func TestSearchOffsetPagination(t *testing.T) {
	models := testModels(40)
	query := models[3].Clone()
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			c := New(testOptions(shards, workers))
			fill(t, c, models)

			full, err := c.Search(query.Clone(), SearchOptions{TopK: -1})
			if err != nil {
				t.Fatal(err)
			}
			if len(full) < 4 {
				t.Fatalf("workload too small: %d hits", len(full))
			}
			for pageSize := 1; pageSize <= 3; pageSize++ {
				var paged []Hit
				for off := 0; off < len(full); off += pageSize {
					page, err := c.Search(query.Clone(), SearchOptions{TopK: pageSize, Offset: off})
					if err != nil {
						t.Fatal(err)
					}
					if len(page) > pageSize {
						t.Fatalf("shards=%d workers=%d: page size %d at offset %d", shards, workers, len(page), off)
					}
					paged = append(paged, page...)
				}
				if !reflect.DeepEqual(paged, full) {
					t.Fatalf("shards=%d workers=%d pageSize=%d: pages don't tile the ranking", shards, workers, pageSize)
				}
			}

			// Past-the-end and negative offsets degrade gracefully.
			if page, err := c.Search(query.Clone(), SearchOptions{TopK: 3, Offset: len(full) + 1}); err != nil || len(page) != 0 {
				t.Fatalf("offset past end: %v hits, err %v", page, err)
			}
			if page, err := c.Search(query.Clone(), SearchOptions{TopK: -1, Offset: -5}); err != nil || !reflect.DeepEqual(page, full) {
				t.Fatalf("negative offset should mean 0: err %v", err)
			}
		}
	}
}

// TestComposeWithContextCancelled pins the corpus compose path: a
// pre-cancelled context aborts before touching anything and the stored
// model stays composable.
func TestComposeWithContextCancelled(t *testing.T) {
	models := testModels(2)
	c := New(testOptions(2, 2))
	fill(t, c, models)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ComposeWithContext(ctx, models[0].ID, models[1].Clone()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ComposeWith = %v, want context.Canceled", err)
	}
	res, err := c.ComposeWith(models[0].ID, models[1].Clone())
	if err != nil || res.Model == nil {
		t.Fatalf("follow-up ComposeWith failed: %v", err)
	}
}
