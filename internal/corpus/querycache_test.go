package corpus

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestQueryCacheRankingsIdentical pins the satellite requirement: Search
// through the compiled-query LRU returns rankings (ids, scores, evidence)
// identical to Search with the cache disabled, on cold and warm calls
// alike.
func TestQueryCacheRankingsIdentical(t *testing.T) {
	models := testModels(16)
	cached := New(testOptions(3, 2)) // default QueryCache kicks in
	opts := testOptions(3, 2)
	opts.QueryCache = -1
	uncached := New(opts)
	fill(t, cached, models)
	fill(t, uncached, models)
	if cached.queries == nil || uncached.queries != nil {
		t.Fatalf("cache wiring wrong: cached=%v uncached=%v", cached.queries, uncached.queries)
	}

	sopts := SearchOptions{TopK: -1}
	for _, probe := range []int{0, 5, 11} {
		query := models[probe].Clone()
		want, err := uncached.Search(query, sopts)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := cached.Search(query, sopts)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := cached.Search(query, sopts) // second call hits the LRU
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, want) {
			t.Fatalf("cold cached search diverges for %s:\n got %+v\nwant %+v", query.ID, cold, want)
		}
		if !reflect.DeepEqual(warm, want) {
			t.Fatalf("warm cached search diverges for %s:\n got %+v\nwant %+v", query.ID, warm, want)
		}
	}
	if got := cached.queries.Len(); got != 3 {
		t.Fatalf("cache holds %d queries, want 3", got)
	}

	// A mutated query must be a different cache key: rankings follow the
	// mutation instead of replaying the stale compile.
	query := models[0].Clone()
	if _, err := cached.Search(query, sopts); err != nil {
		t.Fatal(err)
	}
	query.Species = query.Species[:1]
	mutated, err := cached.Search(query, sopts)
	if err != nil {
		t.Fatal(err)
	}
	wantMutated, err := uncached.Search(query, sopts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mutated, wantMutated) {
		t.Fatalf("mutated query served stale cache entry:\n got %+v\nwant %+v", mutated, wantMutated)
	}
}

// TestQueryCacheEvictsLRU checks the bound: the cache never exceeds its
// capacity and evicts the least recently used query.
func TestQueryCacheEvictsLRU(t *testing.T) {
	qc := newQueryCache(2)
	a, b, c := &cachedQuery{denom: 1}, &cachedQuery{denom: 2}, &cachedQuery{denom: 3}
	qc.Put("a", a)
	qc.Put("b", b)
	if _, ok := qc.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	qc.Put("c", c)
	if qc.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", qc.Len())
	}
	if _, ok := qc.Get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	if got, ok := qc.Get("a"); !ok || got != a {
		t.Fatal("a evicted despite recent use")
	}
	if got, ok := qc.Get("c"); !ok || got != c {
		t.Fatal("c missing after insert")
	}
	// Duplicate put keeps one entry and the newer value.
	c2 := &cachedQuery{denom: 4}
	qc.Put("c", c2)
	if qc.Len() != 2 {
		t.Fatalf("duplicate put grew the cache: %d", qc.Len())
	}
	if got, _ := qc.Get("c"); got != c2 {
		t.Fatal("duplicate put kept the stale value")
	}
}

// TestQueryCacheConcurrentSearches hammers the cached path from many
// goroutines (race detector coverage) and checks every result matches
// the single-threaded answer.
func TestQueryCacheConcurrentSearches(t *testing.T) {
	models := testModels(12)
	c := New(testOptions(4, 2))
	fill(t, c, models)
	sopts := SearchOptions{TopK: 5}
	want := make([][]Hit, 4)
	for i := range want {
		hits, err := c.Search(models[i], sopts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = hits
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := (g + i) % 4
				hits, err := c.Search(models[q], sopts)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(hits, want[q]) {
					errs <- fmt.Errorf("goroutine %d query %d diverged", g, q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
