// Package corpus implements a concurrent, sharded in-memory model
// repository with scored top-K matching — the paper's motivating scenario
// of matching a query network against a curated model collection
// (BioModels-style) to find composition partners, industrialized for
// serving.
//
// Each added model is compiled once (core.Compile) and its match keys —
// canonical-synonym ids, Figure 7 MathML patterns, reduced unit vectors —
// are posted into per-shard inverted indexes. Retrieval for a query model
// is then a posting-list walk over the query's own keys instead of an
// O(corpus) pairwise composition scan: only models sharing at least one
// key are ever scored. Scoring builds a sparse component score matrix from
// the shared keys (exact id > synonym-canonical > math-pattern >
// unit-compatible, see core.KeyTier) and runs a greedy maximum-weight
// bipartite assignment with a cutoff, the score-matrix + cutoff workflow
// of repository-scale matchers. Results are ranked top-K Hits with
// per-component evidence.
//
// Sharding and the search worker pool are pure throughput mechanisms:
// a model's score depends only on the query and that model, and the final
// ranking sorts globally, so Search returns identical results at any shard
// or worker count (pinned by the determinism tests).
package corpus

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"sbmlcompose/internal/core"
	"sbmlcompose/internal/mc2"
	"sbmlcompose/internal/obs"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/sim"
	"sbmlcompose/internal/trace"
)

// Sentinel errors, matchable with errors.Is, so callers (the HTTP server's
// status mapping in particular) dispatch on identity rather than message
// text.
var (
	// ErrNotFound wraps every "no such model" failure.
	ErrNotFound = errors.New("model not found")
	// ErrDuplicate wraps Add failures on an id already stored.
	ErrDuplicate = errors.New("duplicate model id")
	// ErrPersist wraps every mutation failure whose cause is the durable
	// store (WAL append, snapshot write), not the model itself: the input
	// was valid but could not be made durable, a server-side condition.
	ErrPersist = errors.New("persist failed")
)

// Persister records corpus mutations durably. The corpus calls it under
// the mutated shard's write lock, after validation but before the
// in-memory mutation becomes visible, so the durable log is always a
// prefix of the in-memory state: an error aborts the mutation and the
// caller sees neither the log record nor the map change. Implementations
// must be safe for concurrent calls from different shards.
type Persister interface {
	// PersistAdd logs the addition of a model. sbmlBytes is the canonical
	// serialization of the model exactly as stored (post-clone), so
	// replaying the record reconstructs an identical corpus entry.
	PersistAdd(id string, sbmlBytes []byte) error
	// PersistRemove logs the removal of a stored model.
	PersistRemove(id string) error
}

// ModelBlob is one stored model in canonical serialized form, the unit of
// snapshot and replay.
type ModelBlob struct {
	ID   string
	SBML []byte
	// Keys holds the model's derived match keys — the expensive part of
	// Add — so a snapshot can persist them alongside the canonical bytes
	// and recovery can skip re-derivation (AddPrecompiled). The slice is
	// shared read-only with the corpus entry; callers must not mutate it.
	Keys []core.ComponentKey
}

// canonicalBytes is the serialization persisted to the WAL and snapshots.
// It must be stable under write→parse→write so a recovered corpus
// re-persists byte-identical records.
func canonicalBytes(m *sbml.Model) []byte {
	return []byte(sbml.WrapModel(m).String())
}

// Options configures a Corpus.
type Options struct {
	// Shards is the number of repository shards; 0 defaults to 4. More
	// shards reduce lock contention between concurrent Adds and Searches.
	Shards int
	// Workers caps the Search scoring pool; 0 or less means GOMAXPROCS.
	Workers int
	// QueryCache bounds the LRU of compiled query models Search keeps,
	// keyed by the query's canonical SBML bytes, so repeated identical
	// queries skip recompilation (the PR 3 hot spot). 0 defaults to 32;
	// negative disables the cache.
	QueryCache int
	// Match configures compilation and matching (semantics level, synonym
	// table, index kind) for every model in the corpus.
	Match core.Options
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueryCache == 0 {
		o.QueryCache = 32
	}
	return o
}

// SearchOptions configures one Search call.
type SearchOptions struct {
	// TopK bounds the number of returned hits; 0 defaults to 5, negative
	// means unbounded.
	TopK int
	// Offset skips that many ranked hits before TopK applies — the
	// pagination window [Offset, Offset+TopK) of the global ranking. It is
	// honored inside the ranking merge, so page N of a search equals the
	// corresponding slice of an unpaginated ranking at every shard and
	// worker count. Negative is treated as 0.
	Offset int
	// Cutoff drops component correspondences whose tier weight is below it
	// (the score-matrix cutoff): 0 keeps every tier, 2.5 keeps only exact
	// and synonym evidence, 5 disables matching entirely.
	Cutoff float64
	// MinScore drops whole hits scoring below it after assignment.
	MinScore float64
}

// Evidence is one component correspondence supporting a Hit: the query
// component was assigned to the hit model's component on the given tier.
type Evidence struct {
	// Query and Target are component ids in the query and corpus model.
	Query  string `json:"query"`
	Target string `json:"target"`
	// Kind is the component family ("species", "reaction", ...).
	Kind string `json:"kind"`
	// Tier names the strongest shared-key tier ("exact-id", "synonym",
	// "math-pattern", "unit-compatible").
	Tier string `json:"tier"`
	// Score is the tier weight this correspondence contributed.
	Score float64 `json:"score"`
}

// Hit is one ranked search result.
type Hit struct {
	// ModelID identifies the corpus model.
	ModelID string `json:"model_id"`
	// Score is the summed weight of the assigned component
	// correspondences; hits are ranked by it, descending.
	Score float64 `json:"score"`
	// Matched counts assigned query components.
	Matched int `json:"matched"`
	// Coverage is Matched over the query's matchable component count.
	Coverage float64 `json:"coverage"`
	// Evidence lists the assignment, sorted by query component id.
	Evidence []Evidence `json:"evidence"`
}

// invPosting is one inverted-index posting: a component of a corpus model
// reachable under some key.
type invPosting struct {
	comp string
	kind string
	tier core.KeyTier
}

// entry is one stored model with its posted keys, its compiled form
// (possibly lazily materialized from canonical bytes), and a lazily
// compiled simulation engine.
//
// Search needs only the keys — scoring is a pure function of the shared
// postings (score.go) — so an entry recovered from a binary snapshot can
// serve queries without ever parsing its model. The compiled model is
// materialized on first structural use (Get, ComposeWith, Simulate,
// CheckProperty, first snapshot render without stored bytes) from the
// CRC-verified canonical bytes.
type entry struct {
	id   string
	keys []core.ComponentKey
	// sbml is the canonical serialization, retained when the entry was
	// installed from persisted bytes (Add with a persister attached, or
	// AddPrecompiled at recovery). It backs both the lazy compile and
	// DumpConsistent — canonical bytes are pinned stable under
	// write→parse→write, so emitting them verbatim is byte-identical to
	// re-rendering the parsed model.
	sbml []byte
	// match holds the corpus match options the keys were derived under,
	// needed to compile lazily with identical semantics.
	match core.Options

	cmOnce sync.Once
	cm     *core.CompiledModel
	cmErr  error

	engOnce sync.Once
	eng     *sim.Engine
	engErr  error
}

// compiled returns the entry's compiled model, materializing it from the
// stored canonical bytes on first use. Eagerly added entries (Add, or
// AddPrecompiled with Compiled set) pre-fill cm and never parse here.
func (e *entry) compiled() (*core.CompiledModel, error) {
	e.cmOnce.Do(func() {
		if e.cm != nil {
			return
		}
		doc, err := sbml.ParseString(string(e.sbml))
		if err != nil {
			e.cmErr = fmt.Errorf("corpus: lazy compile %q: parse stored bytes: %w", e.id, err)
			return
		}
		e.cm, e.cmErr = core.Compile(doc.Model, e.match)
	})
	return e.cm, e.cmErr
}

// engine returns the entry's simulation engine, compiling it on first use.
// The engine is immutable and concurrency-safe, so every later simulation
// or model-checking request on this model reuses it; compilation is paid
// once per corpus entry, not once per request.
func (e *entry) engine() (*sim.Engine, error) {
	cm, err := e.compiled()
	if err != nil {
		return nil, err
	}
	e.engOnce.Do(func() { e.eng, e.engErr = sim.Compile(cm.Model()) })
	return e.eng, e.engErr
}

// shard is one lock domain of the repository: a slice of the entries plus
// the inverted index over their match keys.
type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
	// inv maps a match key to the postings of every model in this shard
	// that emits it, keyed by model id so Remove can drop a model's
	// postings without touching other models'.
	inv map[string]map[string][]invPosting
}

// Corpus is the sharded repository. All methods are safe for concurrent
// use.
type Corpus struct {
	opts    Options
	shards  []*shard
	queries *queryCache
	// persister, when non-nil, is called under the shard write lock before
	// every mutation becomes visible; see SetPersister.
	persister Persister
}

// New returns an empty corpus.
func New(opts Options) *Corpus {
	opts = opts.withDefaults()
	c := &Corpus{opts: opts, shards: make([]*shard, opts.Shards)}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries: make(map[string]*entry),
			inv:     make(map[string]map[string][]invPosting),
		}
	}
	if opts.QueryCache > 0 {
		c.queries = newQueryCache(opts.QueryCache)
	}
	return c
}

// SetPersister attaches the durable-store hook. It must be called before
// the corpus is shared between goroutines (the store attaches it at Open,
// after recovery replay and before returning the corpus); a nil persister
// keeps the corpus purely in-memory.
func (c *Corpus) SetPersister(p Persister) { c.persister = p }

// Options returns the options the corpus was built with.
func (c *Corpus) Options() Options { return c.opts }

// shardFor maps a model id to its home shard. The assignment affects only
// lock distribution, never results.
func (c *Corpus) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return c.shards[int(h.Sum32())%len(c.shards)]
}

// Add compiles the model and stores it under its model id. The input is
// cloned, never referenced. Empty and duplicate ids are errors.
func (c *Corpus) Add(m *sbml.Model) (string, error) {
	if m == nil {
		return "", fmt.Errorf("corpus: Add requires a non-nil model")
	}
	if m.ID == "" {
		return "", fmt.Errorf("corpus: model has no id")
	}
	cm, err := core.Compile(m, c.opts.Match)
	if err != nil {
		return "", err
	}
	e := &entry{id: m.ID, cm: cm, keys: cm.MatchKeys(), match: c.opts.Match}
	// Serialize outside the lock: the blob is a pure function of the
	// compiled (cloned) model, and holding the shard lock across an XML
	// render would stall that shard's readers for no consistency gain.
	// The blob is retained on the entry so snapshots emit it without
	// re-rendering.
	if c.persister != nil {
		e.sbml = canonicalBytes(cm.Model())
	}
	sh := c.shardFor(m.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.entries[m.ID]; dup {
		return "", fmt.Errorf("corpus: model %q already present: %w", m.ID, ErrDuplicate)
	}
	if c.persister != nil {
		// Log before applying: an append failure leaves both the log and
		// the in-memory state without the model. The persisted bytes are
		// the stored model's exact canonical form, so replay reconstructs
		// exactly what this corpus stores.
		if err := c.persister.PersistAdd(m.ID, e.sbml); err != nil {
			return "", fmt.Errorf("corpus: persist add %q: %w", m.ID, err)
		}
	}
	sh.install(e)
	return m.ID, nil
}

// install publishes an entry and its inverted-index postings; the caller
// holds the shard write lock.
func (sh *shard) install(e *entry) {
	sh.entries[e.id] = e
	for _, k := range e.keys {
		byModel := sh.inv[k.Key]
		if byModel == nil {
			byModel = make(map[string][]invPosting)
			sh.inv[k.Key] = byModel
		}
		byModel[e.id] = append(byModel[e.id], invPosting{comp: k.Component, kind: k.Kind, tier: k.Tier})
	}
}

// PrecompiledModel is one recovery-path entry for AddPrecompiled: the
// canonical serialized bytes plus the derived state a plain Add would have
// computed from them. SBML must be the model's canonical serialization
// (what a previous Add persisted) and Keys its match keys under the
// corpus's exact match options — the durable store guards both with CRCs
// and an options fingerprint before trusting them. Compiled, when
// non-nil, seeds the compiled model eagerly (WAL replay compiles anyway
// to derive keys); when nil the entry compiles lazily from SBML on first
// structural use, and Search works off Keys alone.
type PrecompiledModel struct {
	ID       string
	SBML     []byte
	Keys     []core.ComponentKey
	Compiled *core.CompiledModel
}

// AddPrecompiled installs a recovered model without parsing or key
// derivation — the fast restart path. The caller vouches for the
// invariants documented on PrecompiledModel; ownership of the slices
// passes to the corpus. With a persister attached the addition is logged
// first, exactly like Add.
func (c *Corpus) AddPrecompiled(p PrecompiledModel) error {
	if p.ID == "" {
		return fmt.Errorf("corpus: precompiled model has no id")
	}
	if len(p.SBML) == 0 {
		return fmt.Errorf("corpus: precompiled model %q has no canonical bytes", p.ID)
	}
	e := &entry{id: p.ID, keys: p.Keys, sbml: p.SBML, match: c.opts.Match, cm: p.Compiled}
	sh := c.shardFor(p.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.entries[p.ID]; dup {
		return fmt.Errorf("corpus: model %q already present: %w", p.ID, ErrDuplicate)
	}
	if c.persister != nil {
		if err := c.persister.PersistAdd(p.ID, p.SBML); err != nil {
			return fmt.Errorf("corpus: persist add %q: %w", p.ID, err)
		}
	}
	sh.install(e)
	return nil
}

// Remove deletes a model and all its postings; it reports whether the
// model was present. With a persister attached the removal is logged
// before it is applied, and a log failure (wrapping ErrPersist) leaves
// the model in place.
func (c *Corpus) Remove(id string) (bool, error) {
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[id]; !ok {
		return false, nil
	}
	if c.persister != nil {
		if err := c.persister.PersistRemove(id); err != nil {
			return false, fmt.Errorf("corpus: persist remove %q: %w", id, err)
		}
	}
	sh.removeLocked(id)
	return true, nil
}

// removeLocked deletes an entry and its postings; the caller holds the
// shard write lock. It reports whether the model was present.
func (sh *shard) removeLocked(id string) bool {
	e, ok := sh.entries[id]
	if !ok {
		return false
	}
	delete(sh.entries, id)
	for _, k := range e.keys {
		if byModel := sh.inv[k.Key]; byModel != nil {
			delete(byModel, id)
			if len(byModel) == 0 {
				delete(sh.inv, k.Key)
			}
		}
	}
	return true
}

// DumpConsistent returns every stored model in canonical serialized form,
// sorted by id, under a corpus-wide read lock: every shard is read-locked
// before the first entry is serialized, so no mutation can be in flight
// (mutations hold a shard write lock across both the persister call and
// the map change). before, if non-nil, runs while all locks are held —
// the store uses it to capture its WAL append position at a point that is
// provably consistent with the dumped state, which is what makes a
// snapshot's "records ≤ LastSeq are included" claim true.
func (c *Corpus) DumpConsistent(before func()) []ModelBlob {
	blobs, _ := c.DumpConsistentContext(context.Background(), before)
	return blobs
}

// DumpConsistentContext is DumpConsistent honoring cancellation: ctx is
// checked between entries while the per-model XML renders run (the dump's
// units of work), so a snapshot of a large corpus can be abandoned without
// holding every shard read lock for its full duration. A cancelled dump
// returns ctx's error and no blobs; the corpus is read-locked only, so no
// state needs undoing.
func (c *Corpus) DumpConsistentContext(ctx context.Context, before func()) ([]ModelBlob, error) {
	for _, sh := range c.shards {
		sh.mu.RLock()
	}
	defer func() {
		for _, sh := range c.shards {
			sh.mu.RUnlock()
		}
	}()
	if before != nil {
		before()
	}
	var blobs []ModelBlob
	for _, sh := range c.shards {
		for id, e := range sh.entries {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Entries that carry their canonical bytes (persisted adds,
			// recovered entries) dump them verbatim — byte-identical to a
			// re-render by the canonical-bytes stability invariant, and it
			// never forces a lazy entry to compile just to be snapshotted.
			blob := ModelBlob{ID: id, SBML: e.sbml, Keys: e.keys}
			if blob.SBML == nil {
				cm, err := e.compiled()
				if err != nil {
					return nil, err
				}
				blob.SBML = canonicalBytes(cm.Model())
			}
			blobs = append(blobs, blob)
		}
	}
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].ID < blobs[j].ID })
	return blobs, nil
}

// Len returns the number of stored models.
func (c *Corpus) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// IDs returns the stored model ids, sorted.
func (c *Corpus) IDs() []string {
	var ids []string
	for _, sh := range c.shards {
		sh.mu.RLock()
		for id := range sh.entries {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Get returns a deep copy of a stored model, safe for the caller to
// mutate.
func (c *Corpus) Get(id string) (*sbml.Model, bool) {
	e, ok := c.lookup(id)
	if !ok {
		return nil, false
	}
	cm, err := e.compiled()
	if err != nil {
		// Unreachable for entries installed through Add; a lazy entry's
		// bytes are CRC-verified canonical output of a previous Add, and
		// canonical bytes re-parse by construction.
		return nil, false
	}
	return cm.Snapshot(), true
}

// Has reports whether a model is stored under id.
func (c *Corpus) Has(id string) bool {
	_, ok := c.lookup(id)
	return ok
}

func (c *Corpus) lookup(id string) (*entry, bool) {
	sh := c.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[id]
	return e, ok
}

// ComposeWith merges the query model into a copy of the stored model under
// the corpus match options — the "find a composition partner, then
// compose" workflow. Neither the stored model nor the query is mutated.
func (c *Corpus) ComposeWith(id string, query *sbml.Model) (*core.Result, error) {
	return c.ComposeWithContext(context.Background(), id, query)
}

// ComposeWithContext is ComposeWith honoring cancellation: the pairwise
// composition checks ctx between component families. All compiled state is
// private to the call (the stored model is never mutated), so a cancelled
// compose leaves the corpus untouched.
func (c *Corpus) ComposeWithContext(ctx context.Context, id string, query *sbml.Model) (*core.Result, error) {
	e, ok := c.lookup(id)
	if !ok {
		return nil, fmt.Errorf("corpus: no model %q: %w", id, ErrNotFound)
	}
	cm, err := e.compiled()
	if err != nil {
		return nil, err
	}
	sp := obs.FromContext(ctx).Start("compose")
	res, err := core.ComposeContext(ctx, cm.Model(), query, c.opts.Match)
	sp.End()
	return res, err
}

// SimulateODE integrates a stored model on its cached engine.
func (c *Corpus) SimulateODE(id string, opts sim.Options) (*trace.Trace, error) {
	return c.SimulateODEContext(context.Background(), id, opts)
}

// SimulateODEContext is SimulateODE honoring cancellation: the integrator
// checks ctx between output steps.
func (c *Corpus) SimulateODEContext(ctx context.Context, id string, opts sim.Options) (*trace.Trace, error) {
	e, ok := c.lookup(id)
	if !ok {
		return nil, fmt.Errorf("corpus: no model %q: %w", id, ErrNotFound)
	}
	eng, err := e.engine()
	if err != nil {
		return nil, err
	}
	sp := obs.FromContext(ctx).Start("simulate")
	tr, err := eng.ODECtx(ctx, opts)
	sp.End()
	return tr, err
}

// SimulateSSA runs Gillespie's direct method on a stored model's cached
// engine.
func (c *Corpus) SimulateSSA(id string, opts sim.Options) (*trace.Trace, error) {
	return c.SimulateSSAContext(context.Background(), id, opts)
}

// SimulateSSAContext is SimulateSSA honoring cancellation: the event loop
// checks ctx periodically mid-run.
func (c *Corpus) SimulateSSAContext(ctx context.Context, id string, opts sim.Options) (*trace.Trace, error) {
	e, ok := c.lookup(id)
	if !ok {
		return nil, fmt.Errorf("corpus: no model %q: %w", id, ErrNotFound)
	}
	eng, err := e.engine()
	if err != nil {
		return nil, err
	}
	sp := obs.FromContext(ctx).Start("simulate")
	tr, err := eng.SSACtx(ctx, opts)
	sp.End()
	return tr, err
}

// CheckProperty evaluates a temporal-logic formula (mc2 syntax) over a
// deterministic simulation of a stored model, reusing the cached engine.
func (c *Corpus) CheckProperty(id string, formula string, opts sim.Options) (bool, error) {
	return c.CheckPropertyContext(context.Background(), id, formula, opts)
}

// CheckPropertyContext is CheckProperty honoring cancellation during the
// underlying ODE simulation.
func (c *Corpus) CheckPropertyContext(ctx context.Context, id string, formula string, opts sim.Options) (bool, error) {
	f, err := mc2.Parse(formula)
	if err != nil {
		return false, err
	}
	e, ok := c.lookup(id)
	if !ok {
		return false, fmt.Errorf("corpus: no model %q: %w", id, ErrNotFound)
	}
	eng, err := e.engine()
	if err != nil {
		return false, err
	}
	sp := obs.FromContext(ctx).Start("simulate")
	tr, err := eng.ODECtx(ctx, opts)
	sp.End()
	if err != nil {
		return false, err
	}
	defer obs.FromContext(ctx).Start("check").End()
	return mc2.Check(tr, f)
}

// compileQuery returns the query's match keys and matchable-component
// count, through the compiled-query LRU when one is configured: repeated
// identical queries (same canonical SBML bytes) skip recompilation. The
// cached values are read-only and shared safely across concurrent
// Searches.
func (c *Corpus) compileQuery(query *sbml.Model) ([]core.ComponentKey, int, error) {
	if c.queries == nil {
		qcm, err := core.Compile(query, c.opts.Match)
		if err != nil {
			return nil, 0, err
		}
		return qcm.MatchKeys(), qcm.MatchableComponents(), nil
	}
	key := string(canonicalBytes(query))
	if cq, ok := c.queries.Get(key); ok {
		return cq.keys, cq.denom, nil
	}
	qcm, err := core.Compile(query, c.opts.Match)
	if err != nil {
		return nil, 0, err
	}
	cq := &cachedQuery{keys: qcm.MatchKeys(), denom: qcm.MatchableComponents()}
	c.queries.Put(key, cq)
	return cq.keys, cq.denom, nil
}

// CompiledQuery is a query compiled once for repeated searches: the match
// keys and the matchable-component denominator, everything ranking
// consumes. It is immutable and safe to share across concurrent
// SearchCompiled calls, and valid only against the corpus that compiled
// it (the keys depend on its match options).
type CompiledQuery struct {
	keys  []core.ComponentKey
	denom int
}

// CompileQuery compiles a query model for SearchCompiled, through the
// compiled-query LRU when one is configured. Callers that key their own
// cache more cheaply than by canonical bytes (the HTTP server keys on raw
// request bytes) hold the result and skip both serialization and
// compilation on a hit.
func (c *Corpus) CompileQuery(query *sbml.Model) (*CompiledQuery, error) {
	if query == nil {
		return nil, fmt.Errorf("corpus: CompileQuery requires a non-nil query")
	}
	keys, denom, err := c.compileQuery(query)
	if err != nil {
		return nil, err
	}
	return &CompiledQuery{keys: keys, denom: denom}, nil
}

// SearchCompiled ranks the corpus against an already compiled query; see
// Search. Rankings are computed fresh against the live corpus on every
// call, so SearchCompiled(CompileQuery(q)) equals Search(q) exactly.
func (c *Corpus) SearchCompiled(cq *CompiledQuery, opts SearchOptions) ([]Hit, error) {
	return c.SearchCompiledContext(context.Background(), cq, opts)
}

// SearchCompiledContext is SearchCompiled honoring cancellation, with
// SearchContext's exact semantics.
func (c *Corpus) SearchCompiledContext(ctx context.Context, cq *CompiledQuery, opts SearchOptions) ([]Hit, error) {
	if cq == nil {
		return nil, fmt.Errorf("corpus: SearchCompiled requires a non-nil compiled query")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.rank(ctx, cq.keys, cq.denom, opts)
}

// Search ranks the corpus models against the query. Candidate retrieval
// walks the query's match keys through each shard's inverted index, so
// models sharing no key with the query are never touched; candidates are
// then scored concurrently (greedy maximum-weight assignment over the
// shared-key score matrix) and merged into one global ranking: score
// descending, model id ascending on ties, windowed to [Offset,
// Offset+TopK).
func (c *Corpus) Search(query *sbml.Model, opts SearchOptions) ([]Hit, error) {
	return c.SearchContext(context.Background(), query, opts)
}

// SearchContext is Search honoring cancellation: ctx is checked between
// shards during retrieval and by every scoring worker between candidates.
// A cancelled search drains its worker pool (nothing outlives the call),
// leaves the corpus untouched — Search never mutates shared state, so a
// follow-up query behaves as if the cancelled one never ran — and returns
// ctx's error. An uncancelled context ranks identically to Search at every
// shard and worker count.
func (c *Corpus) SearchContext(ctx context.Context, query *sbml.Model, opts SearchOptions) ([]Hit, error) {
	if query == nil {
		return nil, fmt.Errorf("corpus: Search requires a non-nil query")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.FromContext(ctx).Start("compile")
	qkeys, denom, err := c.compileQuery(query)
	sp.End()
	if err != nil {
		return nil, err
	}
	return c.rank(ctx, qkeys, denom, opts)
}

// rank is the shared post-compile body of SearchContext and
// SearchCompiledContext: retrieval, concurrent scoring and the
// deterministic global merge, all a pure function of the query's keys and
// denominator.
func (c *Corpus) rank(ctx context.Context, qkeys []core.ComponentKey, denom int, opts SearchOptions) ([]Hit, error) {
	if opts.TopK == 0 {
		opts.TopK = 5
	}
	if opts.Offset < 0 {
		opts.Offset = 0
	}

	// Retrieval: accumulate, per candidate model, the score-matrix cells
	// its postings share with the query. The per-model cell set is the
	// union over all shards of that model's postings, so shard layout
	// cannot influence it.
	retrieveSpan := obs.FromContext(ctx).Start("retrieve")
	cells := make(map[string]*candidate)
	for _, sh := range c.shards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sh.mu.RLock()
		for _, qk := range qkeys {
			if qk.Tier.Weight() < opts.Cutoff {
				continue
			}
			byModel, ok := sh.inv[qk.Key]
			if !ok {
				continue
			}
			for modelID, postings := range byModel {
				cand := cells[modelID]
				if cand == nil {
					cand = &candidate{modelID: modelID}
					cells[modelID] = cand
				}
				for _, p := range postings {
					cand.add(qk, p)
				}
			}
		}
		sh.mu.RUnlock()
	}
	retrieveSpan.End()
	if len(cells) == 0 {
		return nil, nil
	}

	// Scoring: fan the candidates out across the worker pool. Candidates
	// are ordered by id first so the result slice layout is deterministic;
	// each score depends only on the candidate's own cells. Workers check
	// ctx between candidates and bail early when it fires; the partial
	// hits slice is then discarded.
	scoreSpan := obs.FromContext(ctx).Start("score")
	cands := make([]*candidate, 0, len(cells))
	for _, cand := range cells {
		cands = append(cands, cand)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].modelID < cands[j].modelID })
	hits := make([]Hit, len(cands))
	workers := c.opts.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(cands); i += workers {
				if ctx.Err() != nil {
					return
				}
				hits[i] = cands[i].assign(denom, opts.Cutoff)
			}
		}(w)
	}
	wg.Wait()
	scoreSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Deterministic global merge: drop empty/sub-threshold hits, rank by
	// score then id, then cut the pagination window out of the full
	// ranking — Offset models skipped here, inside the merge, so a page is
	// exactly the corresponding slice of the unpaginated ranking.
	defer obs.FromContext(ctx).Start("merge").End()
	ranked := hits[:0]
	for _, h := range hits {
		if h.Matched == 0 || h.Score < opts.MinScore {
			continue
		}
		ranked = append(ranked, h)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		return ranked[i].ModelID < ranked[j].ModelID
	})
	if opts.Offset > 0 {
		if opts.Offset >= len(ranked) {
			return nil, nil
		}
		ranked = ranked[opts.Offset:]
	}
	if opts.TopK >= 0 && len(ranked) > opts.TopK {
		ranked = ranked[:opts.TopK]
	}
	return append([]Hit(nil), ranked...), nil
}
