package corpus

import (
	"context"
	"fmt"
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/core"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
)

// benchCorpus100 builds the same 100-model repository the benchfig
// corpus suite measures (CorpusSearch/size=100), so this benchmark's
// numbers are directly comparable with BENCH_corpus.json rows.
func benchCorpus100(b *testing.B) (*Corpus, *sbml.Model) {
	b.Helper()
	c := New(Options{Shards: 4, Workers: 4, QueryCache: -1, Match: core.Options{Synonyms: synonym.Builtin()}})
	var query *sbml.Model
	for i := 0; i < 100; i++ {
		m := biomodels.Generate(biomodels.Config{
			ID:             fmt.Sprintf("bm%04d", i),
			Nodes:          10 + i%9,
			Edges:          14 + i%11,
			Seed:           int64(40000 + 23*i),
			VocabularySize: 300,
			Decorate:       true,
		})
		if _, err := c.Add(m); err != nil {
			b.Fatal(err)
		}
		if i == 50 {
			query = m.Clone()
		}
	}
	return c, query
}

// BenchmarkSearchHotPath is the serving hot path exactly as an untraced
// caller runs it: compiled query, context carrying no obs.Trace, so
// every stage-span site in SearchCompiledContext and rank takes its
// no-op branch. Compare against CorpusSearch/size=100 in
// BENCH_corpus.json — the delta is the instrumentation overhead, bounded
// well under 2% (each no-op span costs ~4ns; see BenchmarkNoOpSpan in
// internal/obs).
func BenchmarkSearchHotPath(b *testing.B) {
	c, query := benchCorpus100(b)
	cq, err := c.CompileQuery(query)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	opts := SearchOptions{TopK: 5}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hits, err := c.SearchCompiledContext(ctx, cq, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(hits) == 0 || hits[0].ModelID != query.ID {
			b.Fatalf("search lost the planted hit: %v", hits)
		}
	}
}
