package corpus

import (
	"fmt"

	"sbmlcompose/internal/core"
)

// This file implements the corpus's bulk mutation paths, built for the
// replication follower: a received chunk of primary WAL records must be
// applied as one unit — one persister call (one fsync at the store
// level) covering every record — and a snapshot bootstrap must replace
// the whole corpus contents atomically. Both operate under every shard's
// write lock, the same discipline DumpConsistent uses on the read side,
// so "the durable log is a prefix of the in-memory state" stays true for
// batches exactly as it does for single mutations.

// BatchOp is one mutation of an ApplyBatch call: a precompiled add
// (canonical bytes plus derived keys, like PrecompiledModel) or a
// removal. Seq, when non-zero, is the externally assigned sequence
// number forwarded to the batch persister — the replication path
// preserves the primary's numbering.
type BatchOp struct {
	Remove bool
	Seq    uint64
	ID     string
	// SBML is the model's canonical serialization (adds only).
	SBML []byte
	// Keys are the match keys derived from SBML under the corpus's match
	// options; Compiled optionally seeds the compiled model eagerly.
	Keys     []core.ComponentKey
	Compiled *core.CompiledModel
}

// BatchPersister is a Persister that can log a whole batch of mutations
// with a single durability round-trip. ApplyBatch requires it when a
// persister is attached: falling back to per-op persist calls would
// silently reintroduce the per-record fsync the batch path exists to
// amortize.
type BatchPersister interface {
	Persister
	// PersistBatch logs every op, all-or-nothing, under the same
	// "before the mutation becomes visible" contract as PersistAdd.
	PersistBatch(ops []BatchOp) error
}

// lockAll write-locks every shard in index order — the same order
// DumpConsistent read-locks them — and returns the matching unlock.
func (c *Corpus) lockAll() (unlock func()) {
	for _, sh := range c.shards {
		sh.mu.Lock()
	}
	return func() {
		for _, sh := range c.shards {
			sh.mu.Unlock()
		}
	}
}

// ApplyBatch applies a chunk of mutations as one unit: every shard is
// write-locked, the whole chunk is validated against the corpus plus the
// chunk's own earlier ops (an add after an in-chunk remove of the same id
// is legal), the attached persister logs the chunk with one call, and
// only then do the mutations become visible. An error anywhere leaves
// both the log and the corpus without any of the chunk — the all-or-
// nothing contract a replication follower needs to stay a prefix of the
// primary's log.
func (c *Corpus) ApplyBatch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	for i := range ops {
		if ops[i].ID == "" {
			return fmt.Errorf("corpus: batch op %d has no id", i)
		}
		if !ops[i].Remove && len(ops[i].SBML) == 0 {
			return fmt.Errorf("corpus: batch add %q has no canonical bytes", ops[i].ID)
		}
	}
	defer c.lockAll()()
	// Validate the chunk against a presence overlay: the corpus state as
	// it will be after each earlier op in the chunk applies.
	present := make(map[string]bool)
	for _, op := range ops {
		p, known := present[op.ID]
		if !known {
			_, p = c.shardFor(op.ID).entries[op.ID]
		}
		if op.Remove {
			if !p {
				return fmt.Errorf("corpus: batch remove of absent model %q: %w", op.ID, ErrNotFound)
			}
		} else if p {
			return fmt.Errorf("corpus: batch add of model %q: %w", op.ID, ErrDuplicate)
		}
		present[op.ID] = !op.Remove
	}
	if c.persister != nil {
		bp, ok := c.persister.(BatchPersister)
		if !ok {
			return fmt.Errorf("corpus: attached persister %T cannot log batches", c.persister)
		}
		if err := bp.PersistBatch(ops); err != nil {
			return fmt.Errorf("corpus: persist batch: %w", err)
		}
	}
	for i := range ops {
		op := &ops[i]
		sh := c.shardFor(op.ID)
		if op.Remove {
			sh.removeLocked(op.ID)
			continue
		}
		sh.install(&entry{id: op.ID, keys: op.Keys, sbml: op.SBML, match: c.opts.Match, cm: op.Compiled})
	}
	return nil
}

// ReplaceAll atomically replaces the entire corpus contents with models —
// the snapshot-bootstrap path, used when a follower falls behind the
// primary's compaction horizon and resynchronizes from a snapshot image.
// The persister is deliberately bypassed: the caller already holds the
// durable image the new contents came from. before, if non-nil, runs
// while every shard write lock is held (the store uses it to reset its
// sequence state at a point provably consistent with the swap), exactly
// mirroring DumpConsistent's hook on the read side.
func (c *Corpus) ReplaceAll(models []PrecompiledModel, before func()) error {
	seen := make(map[string]bool, len(models))
	for i := range models {
		if models[i].ID == "" {
			return fmt.Errorf("corpus: replacement model %d has no id", i)
		}
		if len(models[i].SBML) == 0 {
			return fmt.Errorf("corpus: replacement model %q has no canonical bytes", models[i].ID)
		}
		if seen[models[i].ID] {
			return fmt.Errorf("corpus: replacement set repeats model %q: %w", models[i].ID, ErrDuplicate)
		}
		seen[models[i].ID] = true
	}
	defer c.lockAll()()
	if before != nil {
		before()
	}
	for _, sh := range c.shards {
		sh.entries = make(map[string]*entry)
		sh.inv = make(map[string]map[string][]invPosting)
	}
	for i := range models {
		p := &models[i]
		c.shardFor(p.ID).install(&entry{id: p.ID, keys: p.Keys, sbml: p.SBML, match: c.opts.Match, cm: p.Compiled})
	}
	return nil
}
