package corpus

import (
	"sort"

	"sbmlcompose/internal/core"
	"sbmlcompose/internal/sbml"
)

// SearchAllPairs is the naive repository search the inverted index
// replaces: compose the query pairwise against every model
// (core.MatchModels) and rank by the number of identified component
// correspondences. It exists as the benchmark baseline — O(corpus) full
// pairwise compositions per query — and as an independent oracle for the
// retrieval tests; it shares no code with Corpus.Search.
func SearchAllPairs(models []*sbml.Model, query *sbml.Model, opts core.Options, topK int) ([]Hit, error) {
	hits := make([]Hit, 0, len(models))
	for _, m := range models {
		matches, err := core.MatchModels(m, query, opts)
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			continue
		}
		hits = append(hits, Hit{ModelID: m.ID, Score: float64(len(matches)), Matched: len(matches)})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ModelID < hits[j].ModelID
	})
	if topK >= 0 && len(hits) > topK {
		hits = hits[:topK]
	}
	return hits, nil
}
