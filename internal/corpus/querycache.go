package corpus

import (
	"container/list"
	"sync"

	"sbmlcompose/internal/core"
)

// This file implements the compiled-query LRU behind Search. PR 3 noted
// that Search recompiles its query on every call even when a client
// (dashboards, pollers, the benchfig repeated-query loop) issues the same
// query over and over; compilation — synonym canonicalization, math
// patterns, unit reduction, index construction — dwarfs the retrieval
// walk for small queries. The cache is keyed by the query's canonical
// SBML bytes, so two structurally identical uploads hit the same slot and
// any mutation of the caller's model changes the key. Cached entries hold
// only what Search consumes (the match keys and the matchable-component
// denominator); both are pure functions of the query and the corpus match
// options, so a cache hit cannot change a ranking — pinned by
// TestQueryCacheRankingsIdentical.

// cachedQuery is one compiled query's Search-relevant derivative.
type cachedQuery struct {
	keys  []core.ComponentKey
	denom int
}

// queryCache is a mutex-guarded LRU: front of the list is most recent.
type queryCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	byKey map[string]*list.Element
}

// lruEntry is the list element payload.
type lruEntry struct {
	key string
	cq  *cachedQuery
}

func newQueryCache(max int) *queryCache {
	return &queryCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element, max)}
}

// get returns the cached compile for key, marking it most recently used.
func (qc *queryCache) get(key string) (*cachedQuery, bool) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	el, ok := qc.byKey[key]
	if !ok {
		return nil, false
	}
	qc.ll.MoveToFront(el)
	return el.Value.(*lruEntry).cq, true
}

// put inserts a freshly compiled query, evicting the least recently used
// entry past capacity. A concurrent duplicate insert keeps the newer
// value; both are equal by construction.
func (qc *queryCache) put(key string, cq *cachedQuery) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if el, ok := qc.byKey[key]; ok {
		qc.ll.MoveToFront(el)
		el.Value.(*lruEntry).cq = cq
		return
	}
	qc.byKey[key] = qc.ll.PushFront(&lruEntry{key: key, cq: cq})
	for qc.ll.Len() > qc.max {
		last := qc.ll.Back()
		qc.ll.Remove(last)
		delete(qc.byKey, last.Value.(*lruEntry).key)
	}
}

// len reports the number of cached queries (test hook).
func (qc *queryCache) len() int {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	return qc.ll.Len()
}
