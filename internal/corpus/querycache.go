package corpus

import (
	"sbmlcompose/internal/core"
	"sbmlcompose/internal/lru"
)

// This file implements the compiled-query LRU behind Search. PR 3 noted
// that Search recompiles its query on every call even when a client
// (dashboards, pollers, the benchfig repeated-query loop) issues the same
// query over and over; compilation — synonym canonicalization, math
// patterns, unit reduction, index construction — dwarfs the retrieval
// walk for small queries. The cache is keyed by the query's canonical
// SBML bytes, so two structurally identical uploads hit the same slot and
// any mutation of the caller's model changes the key. Cached entries hold
// only what Search consumes (the match keys and the matchable-component
// denominator); both are pure functions of the query and the corpus match
// options, so a cache hit cannot change a ranking — pinned by
// TestQueryCacheRankingsIdentical.

// cachedQuery is one compiled query's Search-relevant derivative.
type cachedQuery struct {
	keys  []core.ComponentKey
	denom int
}

// queryCache is the shared mutex-guarded LRU (internal/lru) specialized
// to compiled queries.
type queryCache = lru.Cache[*cachedQuery]

func newQueryCache(max int) *queryCache {
	return lru.New[*cachedQuery](max)
}
