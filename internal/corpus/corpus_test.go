package corpus

import (
	"errors"
	"strings"
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/core"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/sim"
	"sbmlcompose/internal/synonym"
)

func testOptions(shards, workers int) Options {
	return Options{
		Shards:  shards,
		Workers: workers,
		Match:   core.Options{Synonyms: synonym.Builtin()},
	}
}

// testModels generates a corpus whose models share a tight vocabulary so
// cross-model matches are plentiful, like curated pathway collections.
func testModels(n int) []*sbml.Model {
	models := make([]*sbml.Model, n)
	for i := range models {
		models[i] = biomodels.Generate(biomodels.Config{
			ID:             "corp" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Nodes:          8 + i%9,
			Edges:          10 + i%11,
			Seed:           int64(5000 + 13*i),
			VocabularySize: 120,
			Decorate:       true,
		})
	}
	return models
}

func fill(t *testing.T, c *Corpus, models []*sbml.Model) {
	t.Helper()
	for _, m := range models {
		if _, err := c.Add(m); err != nil {
			t.Fatalf("Add(%s): %v", m.ID, err)
		}
	}
}

func TestAddRemoveLifecycle(t *testing.T) {
	models := testModels(7)
	c := New(testOptions(3, 2))
	fill(t, c, models)
	if got := c.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
	if ids := c.IDs(); len(ids) != 7 || !sortedStrings(ids) {
		t.Fatalf("IDs not sorted or wrong length: %v", ids)
	}
	if _, err := c.Add(models[0]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Add: err = %v, want ErrDuplicate", err)
	}
	if _, err := c.Add(sbml.NewModel("")); err == nil {
		t.Fatal("empty-id Add succeeded")
	}
	if _, err := c.ComposeWith("ghost", models[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ComposeWith missing id: err = %v, want ErrNotFound", err)
	}

	m, ok := c.Get(models[2].ID)
	if !ok {
		t.Fatal("Get missed a stored model")
	}
	// Get returns a snapshot: mutating it must not corrupt the corpus.
	m.Species = nil
	m2, _ := c.Get(models[2].ID)
	if len(m2.Species) == 0 {
		t.Fatal("Get snapshot aliases corpus state")
	}

	if ok, err := c.Remove(models[4].ID); err != nil || !ok {
		t.Fatalf("Remove missed a stored model: ok=%v err=%v", ok, err)
	}
	if ok, err := c.Remove(models[4].ID); err != nil || ok {
		t.Fatalf("second Remove reported success: ok=%v err=%v", ok, err)
	}
	if got := c.Len(); got != 6 {
		t.Fatalf("Len after Remove = %d, want 6", got)
	}
	// The removed model must no longer be retrievable — by Get or Search.
	if _, ok := c.Get(models[4].ID); ok {
		t.Fatal("Get found removed model")
	}
	hits, err := c.Search(models[4], SearchOptions{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.ModelID == models[4].ID {
			t.Fatal("Search found removed model")
		}
	}
}

func sortedStrings(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] >= xs[i] {
			return false
		}
	}
	return true
}

func TestSearchSelfIsTopHit(t *testing.T) {
	models := testModels(20)
	c := New(testOptions(4, 4))
	fill(t, c, models)
	for _, probe := range []int{0, 7, 19} {
		query := models[probe].Clone()
		hits, err := c.Search(query, SearchOptions{TopK: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 || hits[0].ModelID != models[probe].ID {
			t.Fatalf("probe %d: top hit = %+v, want %s", probe, hits, models[probe].ID)
		}
		top := hits[0]
		if top.Matched == 0 || top.Score <= 0 {
			t.Fatalf("self hit carries no evidence: %+v", top)
		}
		if top.Coverage < 0.99 {
			t.Errorf("self-query coverage = %g, want ~1 (every component should self-match)", top.Coverage)
		}
		for _, ev := range top.Evidence {
			if ev.Tier == "" || ev.Kind == "" || ev.Score <= 0 {
				t.Fatalf("malformed evidence: %+v", ev)
			}
		}
		if len(hits) > 1 && hits[0].Score < hits[1].Score {
			t.Fatal("hits not ranked by descending score")
		}
	}
}

func TestSearchEmptyCorpusAndNoOverlap(t *testing.T) {
	c := New(testOptions(2, 2))
	hits, err := c.Search(testModels(1)[0], SearchOptions{})
	if err != nil || len(hits) != 0 {
		t.Fatalf("empty corpus: hits=%v err=%v", hits, err)
	}
	fill(t, c, testModels(3))
	// A model over a disjoint vocabulary shares nothing relevant.
	alien := sbml.NewModel("alien")
	alien.Compartments = append(alien.Compartments, &sbml.Compartment{ID: "vacuole", Constant: true})
	alien.Species = append(alien.Species, &sbml.Species{ID: "zz_unobtainium", Name: "unobtainium", Compartment: "vacuole"})
	hits, err = c.Search(alien, SearchOptions{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		for _, ev := range h.Evidence {
			if strings.HasPrefix(ev.Query, "zz_") {
				t.Fatalf("alien species matched: %+v", ev)
			}
		}
	}
}

func TestSearchCutoffDropsWeakTiers(t *testing.T) {
	models := testModels(12)
	c := New(testOptions(2, 2))
	fill(t, c, models)
	query := models[5].Clone()
	all, err := c.Search(query, SearchOptions{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := c.Search(query, SearchOptions{TopK: -1, Cutoff: core.TierSynonym.Weight()})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range strict {
		for _, ev := range h.Evidence {
			if ev.Score < core.TierSynonym.Weight() {
				t.Fatalf("cutoff leaked weak evidence: %+v", ev)
			}
		}
	}
	if len(strict) > len(all) {
		t.Fatal("cutoff produced more hits than no cutoff")
	}
	// MinScore keeps only strong hits.
	if len(all) > 1 {
		min := all[0].Score
		top, err := c.Search(query, SearchOptions{TopK: -1, MinScore: min})
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range top {
			if h.Score < min {
				t.Fatalf("MinScore leaked hit %+v", h)
			}
		}
	}
}

func TestSearchTopKTruncates(t *testing.T) {
	models := testModels(15)
	c := New(testOptions(4, 2))
	fill(t, c, models)
	query := models[1].Clone()
	all, err := c.Search(query, SearchOptions{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Skipf("workload produced only %d hits", len(all))
	}
	top2, err := c.Search(query, SearchOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(top2) != 2 || top2[0].ModelID != all[0].ModelID || top2[1].ModelID != all[1].ModelID {
		t.Fatalf("TopK=2 = %v, want prefix of %v", top2, all[:2])
	}
}

// TestSearchAgreesWithAllPairsOracle cross-checks retrieval against the
// naive pairwise scan: any model the composer would identify components
// with must be reachable through the inverted index, and a full-clone
// query must rank its original first under both.
func TestSearchAgreesWithAllPairsOracle(t *testing.T) {
	models := testModels(10)
	c := New(testOptions(3, 3))
	fill(t, c, models)
	query := models[6].Clone()
	inv, err := c.Search(query, SearchOptions{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SearchAllPairs(models, query, c.Options().Match, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) == 0 || len(inv) == 0 {
		t.Fatal("no hits from either engine")
	}
	if inv[0].ModelID != models[6].ID || naive[0].ModelID != models[6].ID {
		t.Fatalf("clone query: inverted top %s, naive top %s, want %s",
			inv[0].ModelID, naive[0].ModelID, models[6].ID)
	}
	invIDs := make(map[string]bool, len(inv))
	for _, h := range inv {
		invIDs[h.ModelID] = true
	}
	for _, h := range naive {
		if !invIDs[h.ModelID] {
			t.Errorf("naive scan matched %s but inverted retrieval missed it", h.ModelID)
		}
	}
}

func TestComposeWithMatchesDirectCompose(t *testing.T) {
	models := testModels(6)
	c := New(testOptions(2, 2))
	fill(t, c, models)
	query := models[3].Clone()
	got, err := c.ComposeWith(models[0].ID, query)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Compose(models[0], query, c.Options().Match)
	if err != nil {
		t.Fatal(err)
	}
	if gx, wx := sbml.WrapModel(got.Model).ToXML().Canonical(), sbml.WrapModel(want.Model).ToXML().Canonical(); gx != wx {
		t.Fatal("ComposeWith differs from direct core.Compose")
	}
	if _, err := c.ComposeWith("nope", query); err == nil {
		t.Fatal("ComposeWith on a missing id succeeded")
	}
}

func TestEngineCachedPerEntry(t *testing.T) {
	models := testModels(3)
	c := New(testOptions(2, 2))
	fill(t, c, models)
	id := models[0].ID
	e, ok := c.lookup(id)
	if !ok {
		t.Fatal("lookup missed stored model")
	}
	e1, err := e.engine()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e.engine()
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("engine recompiled on second use")
	}

	opts := sim.Options{T0: 0, T1: 1, Step: 0.05, Seed: 3}
	tr1, err := c.SimulateODE(id, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := c.SimulateODE(id, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Len() != tr2.Len() {
		t.Fatal("repeated simulations disagree")
	}
	for i := range tr1.Values {
		for j := range tr1.Values[i] {
			if tr1.Values[i][j] != tr2.Values[i][j] {
				t.Fatal("repeated simulations disagree")
			}
		}
	}
	if _, err := c.SimulateSSA(id, opts); err != nil {
		t.Fatal(err)
	}
	sp := models[0].Species[0].ID
	ok2, err := c.CheckProperty(id, "G({"+sp+" >= 0})", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Fatal("non-negativity property failed on a generated model")
	}
	if _, err := c.SimulateODE("missing", opts); err == nil {
		t.Fatal("SimulateODE on a missing id succeeded")
	}
	if _, err := c.CheckProperty(id, "G({", opts); err == nil {
		t.Fatal("malformed formula accepted")
	}
}
