package corpus

import (
	"sort"

	"sbmlcompose/internal/core"
)

// This file implements the scoring half of repository matching: the sparse
// component score matrix a candidate accumulates during retrieval, and the
// greedy maximum-weight bipartite assignment that turns the matrix into a
// ranked Hit. Greedy assignment on a tier-weighted matrix is the standard
// repository-matcher shape (score matrix + cutoff + assignment); it is
// deterministic given a total order on cells, which the weight/id sort
// below provides.

// cellKey addresses one score-matrix cell: a (query component, candidate
// component) pair.
type cellKey struct {
	q, t string
}

// cellVal is the cell's best evidence so far.
type cellVal struct {
	tier core.KeyTier
	kind string
}

// candidate is one corpus model retrieved for the query, with its sparse
// score matrix.
type candidate struct {
	modelID string
	cells   map[cellKey]cellVal
}

// add folds one shared key into the matrix, keeping the strongest tier per
// cell. The effective tier is the weaker of the query's and the posting's
// (they agree for symmetric keys; the max guards asymmetric ones).
func (c *candidate) add(qk core.ComponentKey, p invPosting) {
	tier := qk.Tier
	if p.tier > tier {
		tier = p.tier
	}
	k := cellKey{q: qk.Component, t: p.comp}
	if c.cells == nil {
		c.cells = make(map[cellKey]cellVal)
	}
	if v, ok := c.cells[k]; !ok || tier < v.tier {
		c.cells[k] = cellVal{tier: tier, kind: p.kind}
	}
}

// assign runs the greedy maximum-weight one-to-one assignment over the
// matrix and returns the candidate's Hit. Cells are visited in a total
// order — weight descending, then query id, then target id — so the
// assignment (and therefore every search ranking built on it) is a pure
// function of the matrix, independent of shard layout, worker count and
// map iteration order. Cells below cutoff are dropped, the score-matrix
// cutoff of repository matchers.
func (c *candidate) assign(queryComponents int, cutoff float64) Hit {
	type cell struct {
		key    cellKey
		val    cellVal
		weight float64
	}
	cells := make([]cell, 0, len(c.cells))
	for k, v := range c.cells {
		w := v.tier.Weight()
		if w < cutoff {
			continue
		}
		cells = append(cells, cell{key: k, val: v, weight: w})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].weight != cells[j].weight {
			return cells[i].weight > cells[j].weight
		}
		if cells[i].key.q != cells[j].key.q {
			return cells[i].key.q < cells[j].key.q
		}
		return cells[i].key.t < cells[j].key.t
	})
	usedQ := make(map[string]bool, len(cells))
	usedT := make(map[string]bool, len(cells))
	h := Hit{ModelID: c.modelID}
	for _, cl := range cells {
		if usedQ[cl.key.q] || usedT[cl.key.t] {
			continue
		}
		usedQ[cl.key.q] = true
		usedT[cl.key.t] = true
		h.Score += cl.weight
		h.Matched++
		h.Evidence = append(h.Evidence, Evidence{
			Query:  cl.key.q,
			Target: cl.key.t,
			Kind:   cl.val.kind,
			Tier:   cl.val.tier.String(),
			Score:  cl.weight,
		})
	}
	if queryComponents > 0 {
		h.Coverage = float64(h.Matched) / float64(queryComponents)
	}
	sort.Slice(h.Evidence, func(i, j int) bool {
		if h.Evidence[i].Query != h.Evidence[j].Query {
			return h.Evidence[i].Query < h.Evidence[j].Query
		}
		return h.Evidence[i].Target < h.Evidence[j].Target
	})
	return h
}
