package corpus

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestSearchDeterministicAcrossShardsAndWorkers pins the acceptance
// criterion that sharding and the scoring worker pool are pure throughput
// mechanisms: the ranked hits (ids, scores, evidence, order) are identical
// for every shard count in {1,2,4} and worker count in {1,2,4,8}. Run
// under -race in CI, this also exercises the locking of concurrent reads.
func TestSearchDeterministicAcrossShardsAndWorkers(t *testing.T) {
	models := testModels(40)
	queries := []int{0, 13, 39}

	var reference [][]Hit
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2, 4, 8} {
			c := New(testOptions(shards, workers))
			fill(t, c, models)
			var got [][]Hit
			for _, qi := range queries {
				hits, err := c.Search(models[qi].Clone(), SearchOptions{TopK: 10})
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, hits)
			}
			if reference == nil {
				reference = got
				continue
			}
			if !reflect.DeepEqual(reference, got) {
				t.Fatalf("shards=%d workers=%d: ranking differs from shards=1 workers=1:\n got %+v\nwant %+v",
					shards, workers, got, reference)
			}
		}
	}
}

// TestConcurrentAddSearchRemove hammers one corpus from many goroutines so
// the race detector can see the shard locking. Results are not asserted
// beyond basic sanity — the point is concurrent safety.
func TestConcurrentAddSearchRemove(t *testing.T) {
	models := testModels(24)
	c := New(testOptions(4, 4))
	fill(t, c, models[:8])

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				m := models[8+4*g+i%4].Clone()
				m.ID = fmt.Sprintf("%s_g%d_%d", m.ID, g, i)
				if _, err := c.Add(m); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Search(models[g], SearchOptions{TopK: 3}); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 1 {
					if _, err := c.Remove(m.ID); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() < 8 {
		t.Fatalf("corpus lost seed models: len=%d", c.Len())
	}
}
