package xmlmerge

import (
	"strings"
	"testing"

	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/core"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/synonym"
	"sbmlcompose/internal/xmltree"
)

func parse(t *testing.T, s string) *xmltree.Node {
	t.Helper()
	n, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMergeKeyedElements(t *testing.T) {
	a := parse(t, `<m><list><e id="x" v="1"/><e id="y" v="2"/></list></m>`)
	b := parse(t, `<m><list><e id="y" v="2"/><e id="z" v="3"/></list></m>`)
	res, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	es := res.Doc.FindAll("list/e")
	if len(es) != 3 {
		t.Fatalf("merged elements = %d, want 3\n%s", len(es), res.Doc)
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("conflicts = %v", res.Conflicts)
	}
}

func TestMergeConflictFirstWins(t *testing.T) {
	a := parse(t, `<m><e id="x" v="1"/></m>`)
	b := parse(t, `<m><e id="x" v="9"/></m>`)
	res, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Doc.Child("e").Attr("v"); got != "1" {
		t.Errorf("v = %q, want first document's 1", got)
	}
	if len(res.Conflicts) != 1 || !strings.Contains(res.Conflicts[0].String(), "attribute v") {
		t.Errorf("conflicts = %v", res.Conflicts)
	}
}

func TestMergeAdoptsNewAttributes(t *testing.T) {
	a := parse(t, `<m><e id="x"/></m>`)
	b := parse(t, `<m><e id="x" extra="yes"/></m>`)
	res, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Doc.Child("e").Attr("extra") != "yes" {
		t.Error("new attribute not adopted")
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("conflicts = %v", res.Conflicts)
	}
}

func TestMergeAnonymousElements(t *testing.T) {
	a := parse(t, `<m><note>keep</note></m>`)
	b := parse(t, `<m><note>keep</note><other/></m>`)
	res, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// note merges as a singleton container (its text matches); other appends.
	if len(res.Doc.ChildElements("note")) != 1 {
		t.Errorf("notes = %d\n%s", len(res.Doc.ChildElements("note")), res.Doc)
	}
	if res.Doc.Child("other") == nil {
		t.Error("new element not appended")
	}
}

func TestMergeTextConflict(t *testing.T) {
	a := parse(t, `<m><msg>hello</msg></m>`)
	b := parse(t, `<m><msg>goodbye</msg></m>`)
	res, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Doc.Child("msg").InnerText(); got != "hello" {
		t.Errorf("text = %q, want first document's", got)
	}
	if len(res.Conflicts) != 1 {
		t.Errorf("conflicts = %v", res.Conflicts)
	}
}

func TestMergeErrors(t *testing.T) {
	a := parse(t, `<m/>`)
	b := parse(t, `<other/>`)
	if _, err := Merge(a, b); err == nil {
		t.Error("root mismatch should error")
	}
	if _, err := Merge(nil, a); err == nil {
		t.Error("nil doc should error")
	}
	if _, err := Merge(xmltree.NewText("x"), a); err == nil {
		t.Error("non-element root should error")
	}
}

func TestMergeInputsNotMutated(t *testing.T) {
	a := parse(t, `<m><e id="x" v="1"/></m>`)
	b := parse(t, `<m><e id="y" v="2"/></m>`)
	before := a.Canonical()
	if _, err := Merge(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Canonical() != before {
		t.Error("first input mutated")
	}
}

// --- the future-work §5 comparison: generic vs semantic composition ---

// TestGenericMergesSBMLStructure shows the generic method handles the easy
// case: two SBML documents sharing components by identical ids.
func TestGenericMergesSBMLStructure(t *testing.T) {
	m1 := biomodels.Generate(biomodels.Config{ID: "g", Nodes: 10, Edges: 12, Seed: 4})
	m2 := biomodels.Generate(biomodels.Config{ID: "g", Nodes: 10, Edges: 12, Seed: 4})
	a := sbml.WrapModel(m1).ToXML()
	b := sbml.WrapModel(m2).ToXML()
	res, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := sbml.FromXML(res.Doc)
	if err != nil {
		t.Fatalf("generic merge of identical models broke the document: %v", err)
	}
	if len(merged.Model.Species) != len(m1.Species) {
		t.Errorf("species = %d, want %d", len(merged.Model.Species), len(m1.Species))
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("conflicts = %v", res.Conflicts)
	}
}

// TestGenericMissesSynonyms documents the generic method's limitation: it
// cannot match species whose names differ even when they denote the same
// entity, while the semantic composer can (the §5 question answered).
func TestGenericMissesSynonyms(t *testing.T) {
	mk := func(id, spID, spName string) *sbml.Model {
		m := sbml.NewModel(id)
		m.Compartments = append(m.Compartments, &sbml.Compartment{ID: "cell", SpatialDimensions: 3, Size: 1, HasSize: true, Constant: true})
		m.Species = append(m.Species, &sbml.Species{ID: spID, Name: spName, Compartment: "cell",
			InitialConcentration: 1, HasInitialConcentration: true})
		return m
	}
	a := mk("a", "glc", "glucose")
	b := mk("b", "dex", "dextrose")

	// Generic: two species survive.
	res, err := Merge(sbml.WrapModel(a).ToXML(), sbml.WrapModel(b).ToXML())
	if err != nil {
		t.Fatal(err)
	}
	generic, err := sbml.FromXML(res.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(generic.Model.Species) != 2 {
		t.Errorf("generic merge species = %d, want 2 (no synonym knowledge)", len(generic.Model.Species))
	}

	// Semantic (heavy): the synonym table merges them.
	tab := synonym.NewTable()
	tab.Add("glucose", "dextrose")
	sres, err := core.Compose(a, b, core.Options{Synonyms: tab})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Model.Species) != 1 {
		t.Errorf("semantic compose species = %d, want 1", len(sres.Model.Species))
	}
}
