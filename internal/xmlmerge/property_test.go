package xmlmerge

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sbmlcompose/internal/xmltree"
)

// randomDoc builds a small random document with keyed and anonymous
// elements. Ids are unique within the document (duplicate ids are malformed
// XML and outside the merge's contract); values still vary across seeds so
// cross-document conflicts occur.
func randomDoc(r *rand.Rand) *xmltree.Node {
	root := xmltree.NewElement("doc")
	list := root.AppendChild(xmltree.NewElement("items"))
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	n := 1 + r.Intn(6)
	for i := 0; i < n; i++ {
		e := xmltree.NewElement("item")
		e.SetAttr("id", ids[i])
		e.SetAttr("v", string(rune('0'+r.Intn(4))))
		list.AppendChild(e)
	}
	if r.Intn(2) == 0 {
		root.AppendChild(xmltree.NewElement("footer"))
	}
	return root
}

func TestQuickMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		res, err := Merge(d, d)
		if err != nil {
			return false
		}
		// d ∪ d has exactly d's elements (set semantics on keys/canon).
		return res.Doc.Count() == dedupCount(d) && len(res.Conflicts) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// dedupCount counts d's nodes after removing duplicate-key and
// duplicate-canonical children, which is what self-merge should produce.
func dedupCount(d *xmltree.Node) int {
	cp := d.Clone()
	var dedupe func(n *xmltree.Node)
	dedupe = func(n *xmltree.Node) {
		seenKey := map[string]bool{}
		seenCanon := map[string]bool{}
		var kept []*xmltree.Node
		for _, c := range n.Children {
			if c.Kind != xmltree.Element {
				kept = append(kept, c)
				continue
			}
			if k := key(c); k != "" {
				if seenKey[k] {
					continue
				}
				seenKey[k] = true
			} else {
				can := c.Canonical()
				if seenCanon[can] {
					continue
				}
				seenCanon[can] = true
			}
			dedupe(c)
			kept = append(kept, c)
		}
		n.Children = kept
	}
	dedupe(cp)
	return cp.Count()
}

func TestQuickMergeCommutativeSizes(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomDoc(rand.New(rand.NewSource(s1)))
		b := randomDoc(rand.New(rand.NewSource(s2)))
		ab, err1 := Merge(a, b)
		ba, err2 := Merge(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab.Doc.Count() == ba.Doc.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
