// Package xmlmerge implements generic, semantics-free XML document
// composition — the comparison point the paper's future work calls for
// (§5: "creating a generic method that requires no semantics and comparing
// it with both the SBML composition method for light and heavy semantics").
//
// The merge knows nothing about SBML: elements are identified purely by
// their name plus an identifying attribute (id/name/symbol-like), children
// are unioned recursively, and text is compared verbatim. That makes the
// method applicable to any annotated-graph XML encoding, exactly as §5
// envisions — and makes its failure modes measurable: it cannot match
// synonymous species, cannot see commutative maths equality, and cannot
// convert units (see the package tests and BenchmarkGenericVsSemantic).
package xmlmerge

import (
	"fmt"
	"strings"

	"sbmlcompose/internal/xmltree"
)

// identifyingAttrs are tried in order to key an element; the list is
// generic XML practice (DeltaXML-style), not an SBML schema.
var identifyingAttrs = []string{"id", "name", "symbol", "variable", "species", "key"}

// Conflict reports two keyed elements that matched but disagree in content.
type Conflict struct {
	// Path locates the parent element.
	Path string
	// Key is the matched element key.
	Key string
	// Detail describes the disagreement.
	Detail string
}

func (c Conflict) String() string {
	return fmt.Sprintf("%s: %s: %s", c.Path, c.Key, c.Detail)
}

// Result of a generic merge.
type Result struct {
	// Doc is the merged document.
	Doc *xmltree.Node
	// Conflicts lists keyed elements whose contents disagreed; the first
	// document's version is kept.
	Conflicts []Conflict
}

// key returns the match key of an element: its name plus the first
// identifying attribute present, or "" for unkeyed (anonymous) elements.
func key(n *xmltree.Node) string {
	if n.Kind != xmltree.Element {
		return ""
	}
	for _, attr := range identifyingAttrs {
		if v := n.Attr(attr); v != "" {
			return n.Name + "#" + attr + "=" + v
		}
	}
	return ""
}

// Merge composes two XML documents generically: the result starts as a deep
// copy of a, and b's elements are folded in. Keyed elements with equal keys
// merge recursively; unkeyed elements merge when canonically identical and
// are appended otherwise. The roots must share an element name.
func Merge(a, b *xmltree.Node) (*Result, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("xmlmerge: nil document")
	}
	if a.Kind != xmltree.Element || b.Kind != xmltree.Element {
		return nil, fmt.Errorf("xmlmerge: roots must be elements")
	}
	if a.Name != b.Name {
		return nil, fmt.Errorf("xmlmerge: root mismatch <%s> vs <%s>", a.Name, b.Name)
	}
	res := &Result{Doc: a.Clone()}
	mergeInto(res.Doc, b, a.Name, res, true)
	return res, nil
}

// mergeInto folds src's children into dst (same-keyed element pair).
// atRoot marks the document root: directly under it, same-name singleton
// children form the document spine and merge even when their keys differ
// (e.g. <model id="a"> with <model id="b">), with the id clash reported as
// an ordinary attribute conflict.
func mergeInto(dst, src *xmltree.Node, path string, res *Result, atRoot bool) {
	// Attributes: first document wins on clashes; new attributes adopt.
	for _, attr := range src.Attrs {
		if !dst.HasAttr(attr.Name) {
			dst.SetAttr(attr.Name, attr.Value)
			continue
		}
		if dst.Attr(attr.Name) != attr.Value {
			res.Conflicts = append(res.Conflicts, Conflict{
				Path: path,
				Key:  key(dst),
				Detail: fmt.Sprintf("attribute %s: %q vs %q (keeping first)",
					attr.Name, dst.Attr(attr.Name), attr.Value),
			})
		}
	}

	// Index dst's keyed children and canonical forms of unkeyed ones.
	keyed := make(map[string]*xmltree.Node)
	canon := make(map[string]bool)
	for _, c := range dst.Children {
		if c.Kind != xmltree.Element {
			continue
		}
		if k := key(c); k != "" {
			keyed[k] = c
			continue
		}
		canon[c.Canonical()] = true
	}
	// Text children compare as one concatenated blob.
	dstText := strings.TrimSpace(textOf(dst))
	srcText := strings.TrimSpace(textOf(src))
	if dstText != "" && srcText != "" && dstText != srcText {
		res.Conflicts = append(res.Conflicts, Conflict{
			Path: path, Key: key(dst),
			Detail: fmt.Sprintf("text %q vs %q (keeping first)", clip(dstText), clip(srcText)),
		})
	} else if dstText == "" && srcText != "" {
		dst.AppendChild(xmltree.NewText(srcText))
	}

	for _, c := range src.Children {
		if c.Kind != xmltree.Element {
			continue
		}
		k := key(c)
		if k == "" {
			// Anonymous: structural identity or append.
			if canon[c.Canonical()] {
				continue
			}
			// Same-named singleton containers merge recursively even
			// without a key; this is what lets listOf* containers combine.
			if sibling := singletonByName(dst, c.Name); sibling != nil {
				mergeInto(sibling, c, path+"/"+c.Name, res, false)
				continue
			}
			dst.AppendChild(c.Clone())
			canon[c.Canonical()] = true
			continue
		}
		if existing, ok := keyed[k]; ok {
			mergeInto(existing, c, path+"/"+c.Name, res, false)
			continue
		}
		if atRoot && singletonByName(src, c.Name) != nil {
			if sibling := singletonByName(dst, c.Name); sibling != nil {
				mergeInto(sibling, c, path+"/"+c.Name, res, false)
				continue
			}
		}
		cp := c.Clone()
		dst.AppendChild(cp)
		keyed[k] = cp
	}
}

// singletonByName returns dst's sole element child with the given name, or
// nil when absent or ambiguous.
func singletonByName(dst *xmltree.Node, name string) *xmltree.Node {
	var found *xmltree.Node
	for _, c := range dst.Children {
		if c.Kind == xmltree.Element && c.Name == name {
			if found != nil {
				return nil
			}
			found = c
		}
	}
	return found
}

func textOf(n *xmltree.Node) string {
	var b strings.Builder
	for _, c := range n.Children {
		if c.Kind == xmltree.Text {
			b.WriteString(c.Text)
		}
	}
	return b.String()
}

func clip(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
