// Package mc2 implements the paper's §4.1.4 evaluation method: checking
// temporal-logic properties of composed models with a Monte Carlo model
// checker in the style of MC2 (Donaldson & Gilbert, CMSB 2008). Properties
// are linear-time formulae over finite simulation traces; probabilities are
// estimated by the fraction of stochastic simulation runs that satisfy the
// formula.
//
// Formula syntax (atoms are infix comparisons in braces):
//
//	{A > 0.5}                   atomic predicate over species values
//	!φ   φ & ψ   φ | ψ   φ -> ψ boolean connectives
//	G(φ)  F(φ)  X(φ)            globally / finally / next
//	G[a,b](φ)  F[a,b](φ)        time-bounded variants (relative time)
//	φ U ψ                       until
//
// Example: "G({A >= 0}) & F({B > 0.9})".
//
// # Evaluation strategy
//
// Checking runs on a prepared form of the formula: every atom is compiled
// once (mathml.Compile) against the trace's column layout, and each
// temporal operator is evaluated for all sample indexes in a single
// backward dynamic-programming pass — U, G and F are O(trace) per node
// (bounded variants use monotone window endpoints over the strictly
// increasing sample times) instead of the naive recursion's O(trace²)
// suffix rescans. The recursive evaluator is retained as the semantic
// reference and pinned against the DP by tests. One visible difference:
// preparation resolves every atom eagerly, so a formula naming an unknown
// species fails even when lazy connective evaluation would have skipped it.
//
// Probability estimation compiles the model once (sim.Compile) and fans the
// stochastic runs out across a worker pool (sim.Options.Workers, default
// GOMAXPROCS) with the same consecutive per-run seeds as the serial order,
// so the estimate is bit-identical for every worker count. Its confidence
// interval is a 95% Wilson score interval, which stays honest at p̂ = 0 or 1
// where the normal approximation collapses to zero width.
package mc2

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/sim"
	"sbmlcompose/internal/trace"
)

// Formula is a parsed temporal-logic property.
type Formula interface {
	// holds reports satisfaction at sample index i of tr.
	holds(tr *trace.Trace, i int) (bool, error)
	String() string
}

type atom struct {
	expr mathml.Expr
	src  string
}

type not struct{ f Formula }
type binop struct {
	op   string // "&", "|", "->", "U"
	l, r Formula
}
type temporal struct {
	op      string // "G", "F", "X"
	bounded bool
	lo, hi  float64
	f       Formula
}

func (a atom) String() string { return "{" + a.src + "}" }
func (n not) String() string  { return "!" + n.f.String() }
func (b binop) String() string {
	return "(" + b.l.String() + " " + b.op + " " + b.r.String() + ")"
}
func (t temporal) String() string {
	if t.bounded {
		return fmt.Sprintf("%s[%g,%g](%s)", t.op, t.lo, t.hi, t.f)
	}
	return t.op + "(" + t.f.String() + ")"
}

func (a atom) holds(tr *trace.Trace, i int) (bool, error) {
	vals := make(map[string]float64, len(tr.Names)+1)
	for j, name := range tr.Names {
		vals[name] = tr.Values[i][j]
	}
	vals["time"] = tr.Times[i]
	v, err := mathml.Eval(a.expr, &mathml.MapEnv{Values: vals})
	if err != nil {
		return false, fmt.Errorf("mc2: atom %q: %w", a.src, err)
	}
	return v != 0, nil
}

func (n not) holds(tr *trace.Trace, i int) (bool, error) {
	v, err := n.f.holds(tr, i)
	return !v, err
}

func (b binop) holds(tr *trace.Trace, i int) (bool, error) {
	switch b.op {
	case "&":
		l, err := b.l.holds(tr, i)
		if err != nil || !l {
			return false, err
		}
		return b.r.holds(tr, i)
	case "|":
		l, err := b.l.holds(tr, i)
		if err != nil || l {
			return l, err
		}
		return b.r.holds(tr, i)
	case "->":
		l, err := b.l.holds(tr, i)
		if err != nil {
			return false, err
		}
		if !l {
			return true, nil
		}
		return b.r.holds(tr, i)
	case "U":
		// ∃ j ≥ i: r at j, and l at every k in [i, j).
		for j := i; j < tr.Len(); j++ {
			r, err := b.r.holds(tr, j)
			if err != nil {
				return false, err
			}
			if r {
				return true, nil
			}
			l, err := b.l.holds(tr, j)
			if err != nil {
				return false, err
			}
			if !l {
				return false, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("mc2: unknown operator %q", b.op)
}

func (t temporal) holds(tr *trace.Trace, i int) (bool, error) {
	switch t.op {
	case "X":
		if i+1 >= tr.Len() {
			return false, nil
		}
		return t.f.holds(tr, i+1)
	case "G", "F":
		lo, hi := tr.Times[i], math.Inf(1)
		if t.bounded {
			lo, hi = tr.Times[i]+t.lo, tr.Times[i]+t.hi
		}
		inWindow := false
		for j := i; j < tr.Len(); j++ {
			if tr.Times[j] < lo {
				continue
			}
			if tr.Times[j] > hi {
				break
			}
			inWindow = true
			v, err := t.f.holds(tr, j)
			if err != nil {
				return false, err
			}
			if t.op == "F" && v {
				return true, nil
			}
			if t.op == "G" && !v {
				return false, nil
			}
		}
		if t.op == "F" {
			return false, nil
		}
		// G over an empty window is vacuously true only when the window
		// lies beyond the trace; require at least one sample otherwise.
		return inWindow || !t.bounded, nil
	}
	return false, fmt.Errorf("mc2: unknown temporal operator %q", t.op)
}

// Parse compiles a formula from its textual form.
func Parse(src string) (Formula, error) {
	p := &parser{input: src}
	f, err := p.parseUntil()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("mc2: trailing input at offset %d: %q", p.pos, p.input[p.pos:])
	}
	return f, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	input string
	pos   int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) peek(s string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.input[p.pos:], s)
}

func (p *parser) eat(s string) bool {
	if p.peek(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) parseUntil() (Formula, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		// "U" must be a standalone token (not the start of an identifier).
		if p.pos < len(p.input) && p.input[p.pos] == 'U' &&
			(p.pos+1 == len(p.input) || !isWord(p.input[p.pos+1])) {
			p.pos++
			right, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			left = binop{op: "U", l: left, r: right}
			continue
		}
		return left, nil
	}
}

func isWord(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (p *parser) parseOr() (Formula, error) {
	left, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	for p.eat("|") {
		right, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		left = binop{op: "|", l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseImplies() (Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	if p.eat("->") {
		right, err := p.parseImplies() // right-associative
		if err != nil {
			return nil, err
		}
		return binop{op: "->", l: left, r: right}, nil
	}
	return left, nil
}

func (p *parser) parseAnd() (Formula, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		// Don't consume "&" then fail on "->"; "&" is single-char here.
		if p.pos < len(p.input) && p.input[p.pos] == '&' {
			p.pos++
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			left = binop{op: "&", l: left, r: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parsePrimary() (Formula, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return nil, fmt.Errorf("mc2: unexpected end of formula")
	}
	switch {
	case p.eat("!"):
		f, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return not{f: f}, nil
	case p.peek("G") || p.peek("F") || p.peek("X"):
		op := string(p.input[p.pos])
		// Temporal only if followed by '(' or '['; otherwise it's an atom
		// identifier — but identifiers only occur inside braces, so a bare
		// G/F/X here is always temporal.
		p.pos++
		t := temporal{op: op}
		if p.eat("[") {
			if op == "X" {
				return nil, fmt.Errorf("mc2: X takes no time bound")
			}
			lo, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			if !p.eat(",") {
				return nil, fmt.Errorf("mc2: expected ',' in time bound at %d", p.pos)
			}
			hi, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			if !p.eat("]") {
				return nil, fmt.Errorf("mc2: expected ']' at %d", p.pos)
			}
			if hi < lo {
				return nil, fmt.Errorf("mc2: empty time bound [%g,%g]", lo, hi)
			}
			t.bounded, t.lo, t.hi = true, lo, hi
		}
		if !p.eat("(") {
			return nil, fmt.Errorf("mc2: expected '(' after %s at %d", op, p.pos)
		}
		f, err := p.parseUntil()
		if err != nil {
			return nil, err
		}
		if !p.eat(")") {
			return nil, fmt.Errorf("mc2: expected ')' at %d", p.pos)
		}
		t.f = f
		return t, nil
	case p.eat("("):
		f, err := p.parseUntil()
		if err != nil {
			return nil, err
		}
		if !p.eat(")") {
			return nil, fmt.Errorf("mc2: expected ')' at %d", p.pos)
		}
		return f, nil
	case p.eat("{"):
		end := strings.IndexByte(p.input[p.pos:], '}')
		if end < 0 {
			return nil, fmt.Errorf("mc2: unterminated atom at %d", p.pos)
		}
		src := strings.TrimSpace(p.input[p.pos : p.pos+end])
		p.pos += end + 1
		expr, err := mathml.ParseInfix(src)
		if err != nil {
			return nil, fmt.Errorf("mc2: atom %q: %w", src, err)
		}
		return atom{expr: expr, src: src}, nil
	}
	return nil, fmt.Errorf("mc2: unexpected %q at %d", p.input[p.pos], p.pos)
}

func (p *parser) parseNumber() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, fmt.Errorf("mc2: expected number at %d", start)
	}
	v, err := strconv.ParseFloat(p.input[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("mc2: bad number %q", p.input[start:p.pos])
	}
	return v, nil
}

// Check evaluates the formula at the start of the trace.
func Check(tr *trace.Trace, f Formula) (bool, error) {
	p, err := prepare(f, tr.Names)
	if err != nil {
		return false, err
	}
	return p.check(tr)
}

// CheckString parses and evaluates a formula over the trace.
func CheckString(tr *trace.Trace, src string) (bool, error) {
	f, err := Parse(src)
	if err != nil {
		return false, err
	}
	return Check(tr, f)
}

// Estimate is a Monte Carlo probability estimate.
type Estimate struct {
	// Probability is the fraction of satisfying runs.
	Probability float64
	// Runs is the sample count.
	Runs int
	// Lo and Hi bound the 95% Wilson score confidence interval. Unlike the
	// normal approximation, the interval has positive width even when every
	// run agreed (Probability 0 or 1), where small run counts overstate
	// certainty.
	Lo, Hi float64
	// HalfWidth is half the Wilson interval's width, (Hi-Lo)/2.
	HalfWidth float64
}

// newEstimate builds the Wilson-interval estimate for `satisfied` successes
// in `runs` trials.
func newEstimate(satisfied, runs int) Estimate {
	const z = 1.96 // 97.5th normal percentile: two-sided 95%
	n := float64(runs)
	p := float64(satisfied) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	hw := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	lo, hi := center-hw, center+hw
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Estimate{
		Probability: p,
		Runs:        runs,
		Lo:          lo,
		Hi:          hi,
		HalfWidth:   (hi - lo) / 2,
	}
}

// Probability estimates P(φ) over stochastic trajectories of the model:
// `runs` SSA simulations with consecutive seeds starting at opts.Seed, each
// checked against the formula. This is the MC2 procedure used to compare
// composed and expected model behaviour. The model is compiled once and the
// runs execute on a pool of opts.Workers workers (default GOMAXPROCS); the
// per-run seeds are those of the serial order, so the estimate is identical
// for every worker count.
func Probability(m *sbml.Model, f Formula, runs int, opts sim.Options) (Estimate, error) {
	return ProbabilityContext(context.Background(), m, f, runs, opts)
}

// ProbabilityContext is Probability honoring cancellation: ctx is checked
// between runs by the worker pool and inside each SSA event loop, the pool
// drains before the call returns, and a cancelled estimate returns ctx's
// error (never a partial fraction). An uncancelled context yields an
// estimate bit-identical to Probability at every worker count.
func ProbabilityContext(ctx context.Context, m *sbml.Model, f Formula, runs int, opts sim.Options) (Estimate, error) {
	// Validate before compiling: an invalid runs count must fail with the
	// argument error (as Probability always has), not with whatever the
	// model's compilation happens to say, and must not pay a compile.
	if runs <= 0 {
		return Estimate{}, fmt.Errorf("mc2: runs must be positive")
	}
	eng, err := sim.Compile(m)
	if err != nil {
		return Estimate{}, err
	}
	return ProbabilityEngine(ctx, eng, f, runs, opts)
}

// ProbabilityEngine is ProbabilityContext over an already-compiled engine —
// the repeated-request form: callers holding a model's engine (the facade
// client's LRU, the corpus's per-entry cache) amortize compilation across
// estimates. The estimate is bit-identical to Probability's for the same
// model, seeds and runs.
func ProbabilityEngine(ctx context.Context, eng *sim.Engine, f Formula, runs int, opts sim.Options) (Estimate, error) {
	if runs <= 0 {
		return Estimate{}, fmt.Errorf("mc2: runs must be positive")
	}
	prep, err := prepare(f, eng.SpeciesIDs())
	if err != nil {
		return Estimate{}, err
	}
	sat := make([]bool, runs)
	err = sim.RunParallelCtx(ctx, runs, opts.Workers, func(i int) error {
		runOpts := opts
		runOpts.Seed = opts.Seed + int64(i)
		tr, err := eng.SSACtx(ctx, runOpts)
		if err != nil {
			return err
		}
		ok, err := prep.check(tr)
		if err != nil {
			return err
		}
		sat[i] = ok
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	satisfied := 0
	for _, ok := range sat {
		if ok {
			satisfied++
		}
	}
	return newEstimate(satisfied, runs), nil
}
