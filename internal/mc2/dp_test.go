package mc2

import (
	"math"
	"math/rand"
	"testing"

	"sbmlcompose/internal/sim"
	"sbmlcompose/internal/trace"
)

// randomTrace builds a trace with jittered (strictly increasing) sample
// times and noisy species values, so bounded-window endpoints land between
// samples.
func randomTrace(r *rand.Rand, n int) *trace.Trace {
	tr := trace.New([]string{"A", "B", "C"})
	t := 0.0
	for i := 0; i < n; i++ {
		t += 0.05 + r.Float64()*0.4
		row := []float64{r.Float64() * 2, r.NormFloat64(), float64(r.Intn(5))}
		if err := tr.Append(t, row); err != nil {
			panic(err)
		}
	}
	return tr
}

// randomFormula builds a random formula over A, B, C.
func randomFormula(r *rand.Rand, depth int) Formula {
	if depth <= 0 || r.Intn(4) == 0 {
		atoms := []string{
			"{A > 1}", "{B > 0}", "{C >= 2}", "{A + B < 1.5}", "{C == 0}",
			"{time < 3}", "{A >= 0}",
		}
		return MustParse(atoms[r.Intn(len(atoms))])
	}
	sub := func() Formula { return randomFormula(r, depth-1) }
	switch r.Intn(8) {
	case 0:
		return not{f: sub()}
	case 1:
		return binop{op: "&", l: sub(), r: sub()}
	case 2:
		return binop{op: "|", l: sub(), r: sub()}
	case 3:
		return binop{op: "->", l: sub(), r: sub()}
	case 4:
		return binop{op: "U", l: sub(), r: sub()}
	case 5:
		return temporal{op: "X", f: sub()}
	case 6:
		ops := []string{"G", "F"}
		return temporal{op: ops[r.Intn(2)], f: sub()}
	default:
		ops := []string{"G", "F"}
		lo := float64(r.Intn(4)) * 0.5
		hi := lo + float64(r.Intn(5))*0.75
		return temporal{op: ops[r.Intn(2)], bounded: true, lo: lo, hi: hi, f: sub()}
	}
}

// TestDPMatchesRecursiveHolds pins the backward-DP evaluator against the
// recursive reference at every start index, on randomized traces and
// formulae.
func TestDPMatchesRecursiveHolds(t *testing.T) {
	r := rand.New(rand.NewSource(8008))
	for trial := 0; trial < 300; trial++ {
		tr := randomTrace(r, 2+r.Intn(30))
		f := randomFormula(r, 3)
		p, err := prepare(f, tr.Names)
		if err != nil {
			t.Fatalf("trial %d: prepare(%s): %v", trial, f, err)
		}
		ev := &dpEval{tr: tr, state: make([]float64, p.nCols+1), stack: make([]float64, p.maxStack), time: p.timeSlot}
		sat, err := ev.vec(p.root)
		if err != nil {
			t.Fatalf("trial %d: dp(%s): %v", trial, f, err)
		}
		for i := 0; i < tr.Len(); i++ {
			want, err := f.holds(tr, i)
			if err != nil {
				t.Fatalf("trial %d: holds(%s, %d): %v", trial, f, i, err)
			}
			if sat[i] != want {
				t.Fatalf("trial %d: %s at index %d: dp=%v recursive=%v (times %v)",
					trial, f, i, sat[i], want, tr.Times)
			}
		}
	}
}

// TestDPNegativeLowerBound exercises windows whose lower bound precedes the
// start index; the scan never looks before its own start.
func TestDPNegativeLowerBound(t *testing.T) {
	tr := ramp(t)
	for _, src := range []string{"G[-5,2]({A >= 0.3})", "F[-5,0.5]({A > 0.55})"} {
		f := MustParse(src)
		got, err := Check(tr, f)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		want, err := f.holds(tr, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: dp=%v recursive=%v", src, got, want)
		}
	}
}

func TestWilsonIntervalBounds(t *testing.T) {
	// Degenerate p̂ = 1: the old normal approximation returned a zero-width
	// interval; Wilson must not.
	est := newEstimate(20, 20)
	if est.Probability != 1 {
		t.Fatalf("probability = %g", est.Probability)
	}
	if est.HalfWidth <= 0 {
		t.Errorf("p=1: half width = %g, want > 0", est.HalfWidth)
	}
	if est.Hi != 1 {
		t.Errorf("p=1: hi = %g, want 1", est.Hi)
	}
	if est.Lo <= 0.7 || est.Lo >= 1 {
		t.Errorf("p=1, n=20: lo = %g, want within (0.7, 1)", est.Lo)
	}
	// Degenerate p̂ = 0 mirrors it.
	est = newEstimate(0, 20)
	if est.Lo != 0 || est.Hi <= 0 || est.Hi >= 0.3 || est.HalfWidth <= 0 {
		t.Errorf("p=0, n=20: interval [%g, %g]", est.Lo, est.Hi)
	}
	// Mid-range agrees with the closed-form Wilson formula.
	est = newEstimate(30, 60)
	const z = 1.96
	n, p := 60.0, 0.5
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	hw := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	if math.Abs(est.Lo-(center-hw)) > 1e-12 || math.Abs(est.Hi-(center+hw)) > 1e-12 {
		t.Errorf("p=0.5: interval [%g, %g], want [%g, %g]", est.Lo, est.Hi, center-hw, center+hw)
	}
	// The interval always contains the point estimate.
	for _, k := range []int{0, 1, 7, 19, 20} {
		est := newEstimate(k, 20)
		if est.Probability < est.Lo-1e-12 || est.Probability > est.Hi+1e-12 {
			t.Errorf("k=%d: p̂=%g outside [%g, %g]", k, est.Probability, est.Lo, est.Hi)
		}
	}
}

// TestProbabilityDeterministicAcrossWorkers pins the tentpole requirement:
// the parallel estimator returns bit-identical estimates for any worker
// count (run under -race in CI).
func TestProbabilityDeterministicAcrossWorkers(t *testing.T) {
	m := decayModel()
	f := MustParse("F[1,1]({A < 61}) & G({A + B == 100})")
	var base Estimate
	for _, workers := range []int{1, 2, 3, 7, 16} {
		opts := sim.Options{T0: 0, T1: 1, Step: 0.25, Seed: 10, Workers: workers}
		est, err := Probability(m, f, 40, opts)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			base = est
			continue
		}
		if est != base {
			t.Errorf("workers=%d: estimate %+v differs from serial %+v", workers, est, base)
		}
	}
}

// TestProbabilityMatchesSerialReference cross-checks the parallel compiled
// pipeline against a from-scratch serial loop over the reference simulator
// and recursive checker.
func TestProbabilityMatchesSerialReference(t *testing.T) {
	m := decayModel()
	f := MustParse("F[1,1]({A < 61})")
	opts := sim.Options{T0: 0, T1: 1, Step: 0.25, Seed: 10}
	const runs = 25
	satisfied := 0
	for i := 0; i < runs; i++ {
		runOpts := opts
		runOpts.Seed = opts.Seed + int64(i)
		tr, err := sim.ReferenceSSA(m, runOpts)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := f.holds(tr, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			satisfied++
		}
	}
	opts.Workers = 4
	est, err := Probability(m, f, runs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(satisfied) / runs; est.Probability != want {
		t.Errorf("parallel compiled estimate %g, serial reference %g", est.Probability, want)
	}
}

func BenchmarkCheckDP(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	tr := randomTrace(r, 400)
	f := MustParse("G({A >= 0}) & ({B > -3} U {C >= 4}) & F[0,50]({A > 1.5})")
	p, err := prepare(f, tr.Names)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.check(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckRecursive(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	tr := randomTrace(r, 400)
	f := MustParse("G({A >= 0}) & ({B > -3} U {C >= 4}) & F[0,50]({A > 1.5})")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.holds(tr, 0); err != nil {
			b.Fatal(err)
		}
	}
}
