package mc2

// Prepared-formula evaluation: atoms compiled to slot programs over the
// trace's column layout, temporal operators computed for every sample index
// in one backward dynamic-programming pass per formula node. This replaces
// the recursive holds evaluation — O(trace²) for U/G/F because every start
// index rescanned its suffix — with O(trace) per node, and is what lets
// Probability's worker pool check thousands of trajectories cheaply. The
// recursive evaluator remains the semantic reference; the tests pin the two
// against each other on randomized traces and formulae.

import (
	"fmt"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/trace"
)

// pnode is one prepared formula node.
type pnode struct {
	kind    byte // 'a', '!', '&', '|', '>', 'U', 'G', 'F', 'X'
	src     string
	prog    *mathml.Program
	bounded bool
	lo, hi  float64
	l, r    *pnode
}

// prepared is a formula bound to a trace column layout.
type prepared struct {
	root     *pnode
	nCols    int
	timeSlot int
	maxStack int
}

// prepare compiles the formula's atoms against the given column names.
// Like the reference environment, a later column shadows an earlier one of
// the same name and "time" shadows any column so named.
func prepare(f Formula, names []string) (*prepared, error) {
	// Slot i is column i; the extra slot past the columns carries the
	// sample time. Later duplicate columns and the time binding win, as in
	// the map the recursive evaluator builds.
	st := mathml.NewSymbolTable()
	for i, n := range names {
		st.Bind(n, i)
	}
	timeSlot := len(names)
	st.Bind("time", timeSlot)
	p := &prepared{nCols: len(names), timeSlot: timeSlot}
	root, err := p.build(f, st)
	if err != nil {
		return nil, err
	}
	p.root = root
	return p, nil
}

func (p *prepared) build(f Formula, st *mathml.SymbolTable) (*pnode, error) {
	switch x := f.(type) {
	case atom:
		prog, err := mathml.Compile(x.expr, st)
		if err != nil {
			return nil, fmt.Errorf("mc2: atom %q: %w", x.src, err)
		}
		if prog.MaxStack() > p.maxStack {
			p.maxStack = prog.MaxStack()
		}
		return &pnode{kind: 'a', src: x.src, prog: prog}, nil
	case not:
		child, err := p.build(x.f, st)
		if err != nil {
			return nil, err
		}
		return &pnode{kind: '!', l: child}, nil
	case binop:
		l, err := p.build(x.l, st)
		if err != nil {
			return nil, err
		}
		r, err := p.build(x.r, st)
		if err != nil {
			return nil, err
		}
		kind := map[string]byte{"&": '&', "|": '|', "->": '>', "U": 'U'}[x.op]
		if kind == 0 {
			return nil, fmt.Errorf("mc2: unknown operator %q", x.op)
		}
		return &pnode{kind: kind, l: l, r: r}, nil
	case temporal:
		child, err := p.build(x.f, st)
		if err != nil {
			return nil, err
		}
		if x.op != "G" && x.op != "F" && x.op != "X" {
			return nil, fmt.Errorf("mc2: unknown temporal operator %q", x.op)
		}
		return &pnode{kind: x.op[0], bounded: x.bounded, lo: x.lo, hi: x.hi, l: child}, nil
	}
	return nil, fmt.Errorf("mc2: unknown formula type %T", f)
}

// check evaluates the prepared formula at the start of the trace. It
// allocates its own scratch, so one prepared formula may check many traces
// concurrently.
func (p *prepared) check(tr *trace.Trace) (bool, error) {
	if tr.Len() == 0 {
		return false, fmt.Errorf("mc2: empty trace")
	}
	if len(tr.Names) != p.nCols {
		return false, fmt.Errorf("mc2: trace has %d columns, formula prepared for %d", len(tr.Names), p.nCols)
	}
	ev := &dpEval{
		tr:    tr,
		state: make([]float64, p.nCols+1),
		stack: make([]float64, p.maxStack),
		time:  p.timeSlot,
	}
	sat, err := ev.vec(p.root)
	if err != nil {
		return false, err
	}
	return sat[0], nil
}

// dpEval carries per-check scratch.
type dpEval struct {
	tr    *trace.Trace
	state []float64
	stack []float64
	time  int
}

// vec computes the node's satisfaction vector: out[i] reports satisfaction
// at sample index i. Child slices are reused in place where possible.
func (ev *dpEval) vec(nd *pnode) ([]bool, error) {
	tr := ev.tr
	n := tr.Len()
	switch nd.kind {
	case 'a':
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			copy(ev.state, tr.Values[i])
			ev.state[ev.time] = tr.Times[i]
			v, err := nd.prog.Eval(ev.state, ev.stack, nil)
			if err != nil {
				return nil, fmt.Errorf("mc2: atom %q: %w", nd.src, err)
			}
			out[i] = v != 0
		}
		return out, nil
	case '!':
		out, err := ev.vec(nd.l)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = !out[i]
		}
		return out, nil
	case '&', '|', '>':
		l, err := ev.vec(nd.l)
		if err != nil {
			return nil, err
		}
		r, err := ev.vec(nd.r)
		if err != nil {
			return nil, err
		}
		for i := range l {
			switch nd.kind {
			case '&':
				l[i] = l[i] && r[i]
			case '|':
				l[i] = l[i] || r[i]
			default:
				l[i] = !l[i] || r[i]
			}
		}
		return l, nil
	case 'U':
		l, err := ev.vec(nd.l)
		if err != nil {
			return nil, err
		}
		r, err := ev.vec(nd.r)
		if err != nil {
			return nil, err
		}
		// φ U ψ at i ⇔ ψ at i, or φ at i and φ U ψ at i+1 — the backward
		// recurrence of the recursive scan.
		for i := n - 2; i >= 0; i-- {
			r[i] = r[i] || (l[i] && r[i+1])
		}
		return r, nil
	case 'X':
		out, err := ev.vec(nd.l)
		if err != nil {
			return nil, err
		}
		copy(out, out[1:])
		out[n-1] = false
		return out, nil
	case 'G', 'F':
		child, err := ev.vec(nd.l)
		if err != nil {
			return nil, err
		}
		if !nd.bounded {
			// Suffix conjunction / disjunction.
			for i := n - 2; i >= 0; i-- {
				if nd.kind == 'G' {
					child[i] = child[i] && child[i+1]
				} else {
					child[i] = child[i] || child[i+1]
				}
			}
			return child, nil
		}
		return ev.boundedWindow(nd, child), nil
	}
	return nil, fmt.Errorf("mc2: unknown prepared node %q", nd.kind)
}

// boundedWindow evaluates G[a,b]/F[a,b] for every start index with a
// prefix-sum count over a monotone sample window. The window of start i is
// the reference scan's: samples j ≥ i with Times[i]+lo ≤ Times[j] ≤
// Times[i]+hi; both endpoints only move forward as i grows because sample
// times are strictly increasing. F needs a true in the window; G needs no
// false and a non-empty window (an entirely out-of-trace bound fails, as in
// the reference).
func (ev *dpEval) boundedWindow(nd *pnode, child []bool) []bool {
	tr := ev.tr
	n := len(child)
	// pre[j] counts true child samples in [0, j).
	pre := make([]int, n+1)
	for i, v := range child {
		pre[i+1] = pre[i]
		if v {
			pre[i+1]++
		}
	}
	out := make([]bool, n)
	a, b := 0, 0 // first j with Times[j] ≥ lo_i; first j with Times[j] > hi_i
	for i := 0; i < n; i++ {
		lo, hi := tr.Times[i]+nd.lo, tr.Times[i]+nd.hi
		for a < n && tr.Times[a] < lo {
			a++
		}
		for b < n && tr.Times[b] <= hi {
			b++
		}
		start, end := a, b
		if start < i {
			start = i // the scan never looks before its own start index
		}
		if end < start {
			end = start
		}
		trues := pre[end] - pre[start]
		if nd.kind == 'F' {
			out[i] = trues > 0
		} else {
			size := end - start
			out[i] = size > 0 && trues == size
		}
	}
	return out
}
