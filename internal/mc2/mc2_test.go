package mc2

import (
	"strings"
	"testing"

	"sbmlcompose/internal/mathml"
	"sbmlcompose/internal/sbml"
	"sbmlcompose/internal/sim"
	"sbmlcompose/internal/trace"
)

// ramp builds a trace where A rises 0→1 and B falls 1→0 over t∈[0,10].
func ramp(t *testing.T) *trace.Trace {
	t.Helper()
	tr := trace.New([]string{"A", "B"})
	for i := 0; i <= 10; i++ {
		x := float64(i) / 10
		if err := tr.Append(float64(i), []float64{x, 1 - x}); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestAtomicPredicates(t *testing.T) {
	tr := ramp(t)
	cases := []struct {
		src  string
		want bool
	}{
		{"{A >= 0}", true},
		{"{A > 0}", false}, // at t=0, A=0
		{"{B == 1}", true},
		{"{A + B == 1}", true},
		{"{time == 0}", true},
	}
	for _, tc := range cases {
		got, err := CheckString(tr, tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestTemporalOperators(t *testing.T) {
	tr := ramp(t)
	cases := []struct {
		src  string
		want bool
	}{
		{"G({A >= 0})", true},
		{"G({A < 0.5})", false},
		{"F({A > 0.9})", true},
		{"F({A > 2})", false},
		{"X({A > 0})", true}, // at second sample A=0.1
		{"G({A + B == 1})", true},
		{"{B > 0} U {A >= 1}", true},
		{"{B > 0.5} U {A >= 1}", false}, // B drops below 0.5 before A reaches 1
		{"F[0,3]({A >= 0.3})", true},
		{"F[0,2]({A >= 0.3})", false},
		{"G[5,10]({A >= 0.5})", true},
		{"G[0,5]({A >= 0.5})", false},
		{"!G({A < 0.5})", true},
		{"{A >= 0} & {B >= 0}", true},
		{"{A > 5} | {B <= 1}", true},
		{"{A > 0.5} -> {B < 0.5}", true}, // antecedent false at t=0
		{"G({A > 0.5} -> {B < 0.5})", true},
	}
	for _, tc := range cases {
		got, err := CheckString(tr, tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"G(",
		"G({A>0}",
		"{A>0",
		"{A ?? B}",
		"X[0,1]({A>0})",
		"G[3,1]({A>0})",
		"G[1]({A>0})",
		"{A>0}) extra",
		"Y({A>0})",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestFormulaStringRoundTrip(t *testing.T) {
	srcs := []string{
		"G({A >= 0})",
		"F[0,5]({B > 1})",
		"({A > 0} U {B > 0})",
		"!{A > 0}",
		"({A > 0} & {B > 0})",
	}
	tr := ramp(t)
	for _, src := range srcs {
		f := MustParse(src)
		f2, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse of %q → %q: %v", src, f.String(), err)
		}
		v1, err1 := Check(tr, f)
		v2, err2 := Check(tr, f2)
		if err1 != nil || err2 != nil || v1 != v2 {
			t.Errorf("%q: round trip changed verdict (%v/%v)", src, v1, v2)
		}
	}
}

func TestCheckEmptyTrace(t *testing.T) {
	tr := trace.New([]string{"A"})
	if _, err := Check(tr, MustParse("G({A>0})")); err == nil {
		t.Error("empty trace should error")
	}
}

func TestAtomUnknownSpecies(t *testing.T) {
	tr := ramp(t)
	if _, err := CheckString(tr, "G({missing > 0})"); err == nil {
		t.Error("unknown species in atom should error")
	}
}

// decayModel for probability estimation: A→B, k=0.5, 100 molecules.
func decayModel() *sbml.Model {
	m := sbml.NewModel("decay")
	m.Compartments = append(m.Compartments, &sbml.Compartment{ID: "c", SpatialDimensions: 3, Size: 1, HasSize: true, Constant: true})
	m.Species = append(m.Species,
		&sbml.Species{ID: "A", Compartment: "c", InitialAmount: 100, HasInitialAmount: true},
		&sbml.Species{ID: "B", Compartment: "c", InitialAmount: 0, HasInitialAmount: true},
	)
	m.Parameters = append(m.Parameters, &sbml.Parameter{ID: "k", Value: 0.5, HasValue: true, Constant: true})
	m.Reactions = append(m.Reactions, &sbml.Reaction{
		ID:         "r",
		Reactants:  []*sbml.SpeciesReference{{Species: "A", Stoichiometry: 1}},
		Products:   []*sbml.SpeciesReference{{Species: "B", Stoichiometry: 1}},
		KineticLaw: &sbml.KineticLaw{Math: mathml.MustParseInfix("k*A")},
	})
	return m
}

func TestProbabilityCertainAndImpossible(t *testing.T) {
	m := decayModel()
	opts := sim.Options{T0: 0, T1: 20, Step: 0.5, Seed: 1}
	// Conservation holds on every trajectory.
	est, err := Probability(m, MustParse("G({A + B == 100})"), 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est.Probability != 1 {
		t.Errorf("conservation probability = %g, want 1", est.Probability)
	}
	// A can never exceed its initial count.
	est, err = Probability(m, MustParse("F({A > 100})"), 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est.Probability != 0 {
		t.Errorf("impossible event probability = %g, want 0", est.Probability)
	}
	if est.Runs != 20 {
		t.Errorf("runs = %d", est.Runs)
	}
}

func TestProbabilityIntermediate(t *testing.T) {
	// With k=0.5 over t∈[0,1], each molecule survives with p=e^-0.5≈0.61;
	// P(A(1) < 55) is a nontrivial event with probability strictly between
	// 0 and 1 over a modest horizon... use a threshold near the mean so
	// both outcomes occur across seeds.
	m := decayModel()
	opts := sim.Options{T0: 0, T1: 1, Step: 0.25, Seed: 10}
	est, err := Probability(m, MustParse("F[1,1]({A < 61})"), 60, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est.Probability <= 0 || est.Probability >= 1 {
		t.Errorf("probability = %g, expected strictly between 0 and 1", est.Probability)
	}
	if est.HalfWidth <= 0 || est.HalfWidth > 0.2 {
		t.Errorf("half width = %g", est.HalfWidth)
	}
}

func TestProbabilityErrors(t *testing.T) {
	m := decayModel()
	if _, err := Probability(m, MustParse("G({A>=0})"), 0, sim.Options{T0: 0, T1: 1}); err == nil {
		t.Error("zero runs should error")
	}
	if _, err := Probability(m, MustParse("G({ghost>=0})"), 2, sim.Options{T0: 0, T1: 1, Step: 0.5}); err == nil {
		t.Error("unknown species should error")
	}
}

func TestFormulaStringsAreReadable(t *testing.T) {
	f := MustParse("G[0,5]({A > 0} -> F({B > 1}))")
	s := f.String()
	for _, needle := range []string{"G[0,5]", "->", "F(", "{A > 0}"} {
		if !strings.Contains(s, needle) {
			t.Errorf("String() = %q missing %q", s, needle)
		}
	}
}
