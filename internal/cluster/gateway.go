package cluster

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sbmlcompose/internal/api"
	"sbmlcompose/internal/corpus"
	"sbmlcompose/internal/obs"
	"sbmlcompose/internal/sbml"
)

// maxBodyBytes caps gateway request bodies, matching the node servers.
const maxBodyBytes = 64 << 20

// Options configures a Gateway; see New.
type Options struct {
	// Nodes are the shard node base URLs (e.g. "http://10.0.0.1:8451").
	// The set — not the order — determines id ownership.
	Nodes []string
	// Registry receives the gateway's metric series; nil creates a
	// private registry (still served at /v1/metrics).
	Registry *obs.Registry
	// Client is the HTTP client for node requests; nil builds one with a
	// transport sized for fan-out (idle connections to every node).
	Client *http.Client
	// NodeTimeout caps each node request attempt; 0 defaults to 30s.
	NodeTimeout time.Duration
	// Retries bounds transport-failure attempts per node request
	// (HTTP statuses are never retried); 0 defaults to 3.
	Retries int
	// MinBackoff and MaxBackoff bound the capped exponential backoff
	// (with jitter) between transport retries; they default to 50ms and 1s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Logf, when non-nil, receives one structured line per request plus
	// degraded-mode lines. Nil keeps the gateway silent.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.NodeTimeout <= 0 {
		o.NodeTimeout = 30 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 3
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = o.MinBackoff
	}
	if o.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		o.Client = &http.Client{Transport: tr}
	}
	return o
}

// Gateway is the scatter-gather coordinator: an http.Handler serving the
// node /v1 surface over a partitioned fleet. Write routes forward to the
// owning node; /v1/search fans out and merges; /v1/healthz aggregates
// node health. It holds no model state of its own — any number of
// gateways over the same node set are interchangeable.
type Gateway struct {
	parts *PartitionMap
	nodes map[string]*nodeClient
	opts  Options
	mux   *http.ServeMux
	reg   *obs.Registry
	start time.Time
	logf  func(format string, args ...any)

	// Request-id minting, same hygiene as the node servers: crypto/rand
	// prefix, inbound ids adopted only when printable-safe.
	ridPrefix string
	ridSeq    atomic.Uint64

	inFlight atomic.Int64
	// partialServed counts searches answered with an incomplete node set
	// under allow_partial; degradedTotal counts searches refused 503
	// because a node was down.
	partialServed *obs.Counter
	degradedTotal *obs.Counter

	stats map[string]*routeStat
}

type routeStat struct {
	count *obs.Counter
	lat   *obs.Histogram
}

// New builds a Gateway over the node set.
func New(opts Options) (*Gateway, error) {
	parts, err := NewPartitionMap(opts.Nodes)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	g := &Gateway{
		parts:     parts,
		nodes:     make(map[string]*nodeClient, len(parts.nodes)),
		opts:      opts,
		mux:       http.NewServeMux(),
		reg:       reg,
		start:     time.Now(),
		logf:      opts.Logf,
		ridPrefix: newRIDPrefix(),
		stats:     map[string]*routeStat{},
	}
	for _, base := range parts.nodes {
		g.nodes[base] = &nodeClient{
			base:       base,
			hc:         opts.Client,
			timeout:    opts.NodeTimeout,
			attempts:   opts.Retries,
			minBackoff: opts.MinBackoff,
			maxBackoff: opts.MaxBackoff,
			requests: reg.Counter("sbmlgw_node_requests_total",
				"Node requests issued by the gateway, by node.", obs.L("node", base)),
			errors: reg.Counter("sbmlgw_node_errors_total",
				"Node request transport failures, by node.", obs.L("node", base)),
			lat: reg.Histogram("sbmlgw_node_request_seconds",
				"Node round-trip latency in seconds, by node.", obs.LatencyBuckets(),
				obs.L("node", base)),
		}
	}
	g.reg.GaugeFunc("sbmlgw_in_flight_requests",
		"Gateway requests currently executing.",
		func() float64 { return float64(g.inFlight.Load()) })
	g.reg.Gauge("sbmlgw_nodes",
		"Configured shard nodes.").Set(int64(len(parts.nodes)))
	g.partialServed = g.reg.Counter("sbmlgw_partial_searches_total",
		"Searches answered from an incomplete node set under allow_partial.")
	g.degradedTotal = g.reg.Counter("sbmlgw_degraded_refusals_total",
		"Searches refused 503 because a shard node was unreachable.")

	g.route("POST /v1/models", "add_model", g.handleAddModel)
	g.route("DELETE /v1/models/{id}", "remove_model", g.handleRemoveModel)
	g.route("POST /v1/search", "search", g.handleSearch)
	g.route("POST /v1/compose", "compose", g.forwardByID)
	g.route("POST /v1/simulate", "simulate", g.forwardByID)
	g.route("POST /v1/check", "check", g.forwardByID)
	g.route("GET /v1/healthz", "healthz", g.handleHealthz)
	g.route("GET /healthz", "healthz_legacy", g.handleHealthz)
	g.route("GET /v1/metrics", "metrics", g.handleMetrics)
	return g, nil
}

// Partition exposes the gateway's partition map (routing diagnostics,
// benchmarks).
func (g *Gateway) Partition() *PartitionMap { return g.parts }

// Registry returns the gateway's metric registry.
func (g *Gateway) Registry() *obs.Registry { return g.reg }

func newRIDPrefix() string {
	var b [5]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

func (g *Gateway) requestID(r *http.Request) string {
	if rid := r.Header.Get("X-Request-Id"); api.ValidRequestID(rid) {
		return rid
	}
	return g.ridPrefix + "-" + strconv.FormatUint(g.ridSeq.Add(1), 10)
}

// respWriter carries the request id for error-body echoes and captures
// the status for logging, like the node server's middleware.
type respWriter struct {
	http.ResponseWriter
	reqID  string
	status int
}

func (w *respWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (g *Gateway) route(pattern, label string, h func(http.ResponseWriter, *http.Request)) {
	st := &routeStat{
		count: g.reg.Counter("sbmlgw_http_requests_total",
			"Gateway requests served, by route.", obs.L("route", label)),
		lat: g.reg.Histogram("sbmlgw_http_request_seconds",
			"Gateway request latency in seconds, by route.", obs.LatencyBuckets(),
			obs.L("route", label)),
	}
	g.stats[pattern] = st
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rid := g.requestID(r)
		rw := &respWriter{ResponseWriter: w, reqID: rid, status: http.StatusOK}
		rw.Header().Set("X-Request-Id", rid)
		h(rw, r)
		d := time.Since(t0)
		st.count.Inc()
		st.lat.Observe(d.Seconds())
		if g.logf != nil {
			g.logf("sbmlgw: %s %s status=%d dur=%.3fms rid=%s", r.Method, r.URL.Path, rw.status, float64(d.Nanoseconds())/1e6, rid)
		}
	})
}

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.inFlight.Add(1)
	defer g.inFlight.Add(-1)
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	g.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	if er, isErr := v.(api.ErrorResponse); isErr && er.RequestID == "" {
		if rw, wrapped := w.(*respWriter); wrapped {
			er.RequestID = rw.reqID
			v = er
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeNodeError reports an owning node that stayed unreachable through
// the retry budget: 502 with the machine-readable "node_unreachable"
// code, naming the node so the operator knows which shard is down.
func (g *Gateway) writeNodeError(w http.ResponseWriter, node string, err error) {
	if g.logf != nil {
		g.logf("sbmlgw: node %s unreachable: %v", node, err)
	}
	writeJSON(w, http.StatusBadGateway, api.ErrorResponse{
		Error: fmt.Sprintf("shard node %s unreachable: %v", node, err),
		Code:  "node_unreachable",
	})
}

// relay copies a node's answer to the client verbatim: status, content
// type, body. The gateway adds nothing — a forwarded route must behave
// exactly like talking to the owning node directly.
func relay(w http.ResponseWriter, resp *nodeResponse) {
	if ct := resp.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if lag := resp.header.Get("X-Replica-Lag-Seq"); lag != "" {
		w.Header().Set("X-Replica-Lag-Seq", lag)
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

func reqID(w http.ResponseWriter) string {
	if rw, ok := w.(*respWriter); ok {
		return rw.reqID
	}
	return ""
}

// readBody drains the (size-capped) request body, reporting over-limit
// and transport failures as a 400.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read request body: %v", err)
		return nil, false
	}
	return body, true
}

// --- write routes ---

// handleAddModel routes POST /v1/models to the owning node. The id comes
// from the ?id= override when present, else from parsing the SBML body —
// the same precedence the node applies, so the gateway and the node
// always agree on which id (and therefore which owner) a body lands on.
func (g *Gateway) handleAddModel(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		doc, err := sbml.ParseString(string(body))
		if err != nil {
			writeError(w, http.StatusBadRequest, "parse: %v", err)
			return
		}
		id = doc.Model.ID
	}
	owner := g.parts.Owner(id)
	resp, err := g.nodes[owner].do(r.Context(), http.MethodPost, "/v1/models", r.URL.RawQuery, body, reqID(w))
	if err != nil {
		g.writeNodeError(w, owner, err)
		return
	}
	relay(w, resp)
}

func (g *Gateway) handleRemoveModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	owner := g.parts.Owner(id)
	resp, err := g.nodes[owner].do(r.Context(), http.MethodDelete, "/v1/models/"+url.PathEscape(id), "", nil, reqID(w))
	if err != nil {
		g.writeNodeError(w, owner, err)
		return
	}
	relay(w, resp)
}

// forwardByID routes the model-addressed JSON routes (/v1/compose,
// /v1/simulate, /v1/check) to the node owning the "id" field of the
// request body; the body is forwarded verbatim.
func (g *Gateway) forwardByID(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var probe struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if probe.ID == "" {
		// No node can own the empty id; answer the node's not-found shape
		// without a pointless round-trip.
		writeError(w, http.StatusNotFound, "corpus: no model %q", probe.ID)
		return
	}
	owner := g.parts.Owner(probe.ID)
	resp, err := g.nodes[owner].do(r.Context(), http.MethodPost, r.URL.Path, "", body, reqID(w))
	if err != nil {
		g.writeNodeError(w, owner, err)
		return
	}
	relay(w, resp)
}

// --- scatter-gather search ---

// nodeSearchResult is one node's answer to the fanned-out search.
type nodeSearchResult struct {
	node string
	resp *nodeResponse
	err  error
}

// handleSearch is the scatter-gather read path. Every node is asked for
// the ranking prefix [0, offset+limit) of its own partition — a page
// deeper in the merged ranking can draw all its hits from one node, so
// nothing less than the full prefix suffices — and the per-node rankings
// are merged with the exact comparator corpus.rank uses (score
// descending, model id ascending). Partitioning assigns each model to
// exactly one node, so the merge never deduplicates; the window is then
// cut from the merged ranking exactly as a single node cuts it from its
// own.
//
// Node failures degrade deterministically: by default the search is
// refused with 503 and the machine-readable "partial" code naming the
// unreachable nodes; a request with "allow_partial": true instead gets
// the merged ranking of the reachable nodes, marked Partial with the
// failed nodes listed. A complete answer carries neither field and is
// byte-identical to a single-node corpus response (modulo took_ms).
func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req api.SearchRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	win, err := api.NormalizeWindow(req.TopK, req.Limit, req.Offset)
	if err != nil {
		writeError(w, http.StatusBadRequest, "search: %v", err)
		return
	}

	// Every node gets the identical [0, End) request — byte-identical
	// bodies, so repeated cluster queries hit the nodes' raw-body query
	// caches exactly like repeated single-node queries.
	nodeReq, err := json.Marshal(api.SearchRequest{
		SBML: req.SBML, TopK: win.End(), Cutoff: req.Cutoff, MinScore: req.MinScore,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode node request: %v", err)
		return
	}
	results := make([]nodeSearchResult, len(g.parts.nodes))
	var wg sync.WaitGroup
	for i, node := range g.parts.nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			resp, err := g.nodes[node].do(r.Context(), http.MethodPost, "/v1/search", "", nodeReq, reqID(w))
			results[i] = nodeSearchResult{node: node, resp: resp, err: err}
		}(i, node)
	}
	wg.Wait()

	var (
		merged     []nodeSearchBody
		failed     []string
		statuses   []nodeSearchResult
		allFailed  = true
		sameStatus = -1
	)
	for _, res := range results {
		switch {
		case res.err != nil:
			failed = append(failed, res.node)
		case res.resp.status != http.StatusOK:
			statuses = append(statuses, res)
			if sameStatus == -1 {
				sameStatus = res.resp.status
			} else if sameStatus != res.resp.status {
				sameStatus = -2
			}
		default:
			allFailed = false
			var nb nodeSearchBody
			if err := json.Unmarshal(res.resp.body, &nb.resp); err != nil {
				// A node answering 200 with an undecodable body is as
				// unreachable as one not answering at all.
				failed = append(failed, res.node)
				continue
			}
			nb.node = res.node
			merged = append(merged, nb)
		}
	}

	// Non-200 node statuses: the query itself was rejected (unparseable
	// SBML → 400, uncompilable → 422, timeout → 408). Every node judges
	// the same query by the same rules, so when all answering nodes agree
	// relay the first answer verbatim; disagreement means a heterogeneous
	// fleet, reported as a gateway fault.
	if len(statuses) > 0 {
		if len(merged) == 0 && len(failed) == 0 && sameStatus > 0 {
			relay(w, statuses[0].resp)
			return
		}
		for _, res := range statuses {
			failed = append(failed, res.node)
		}
		allFailed = allFailed && len(merged) == 0
	}

	if len(failed) > 0 {
		sort.Strings(failed)
		if allFailed {
			g.degradedTotal.Inc()
			writeJSON(w, http.StatusServiceUnavailable, api.ErrorResponse{
				Error: fmt.Sprintf("no shard node reachable (%s)", strings.Join(failed, ", ")),
				Code:  "partial",
			})
			return
		}
		if !req.AllowPartial {
			g.degradedTotal.Inc()
			if g.logf != nil {
				g.logf("sbmlgw: search degraded, nodes down: %s", strings.Join(failed, ", "))
			}
			writeJSON(w, http.StatusServiceUnavailable, api.ErrorResponse{
				Error: fmt.Sprintf("shard nodes unreachable: %s; retry, or set allow_partial for an incomplete ranking", strings.Join(failed, ", ")),
				Code:  "partial",
			})
			return
		}
		g.partialServed.Inc()
	}

	hits := mergeRankings(merged, win)
	resp := api.SearchResponse{
		Hits:     hits,
		Offset:   win.Offset,
		Limit:    win.Limit,
		Returned: len(hits),
		TookMs:   float64(time.Since(t0).Nanoseconds()) / 1e6,
	}
	if len(failed) > 0 {
		resp.Partial = true
		resp.FailedNodes = failed
	}
	writeJSON(w, http.StatusOK, resp)
}

// nodeSearchBody pairs a node with its decoded search response.
type nodeSearchBody struct {
	node string
	resp api.SearchResponse
}

// mergeRankings merges per-node rankings into the global window. The
// comparator is exactly corpus.rank's: score descending, model id
// ascending — the same deterministic merge already proven identical at
// every shard and worker count inside one corpus, applied across nodes.
func mergeRankings(bodies []nodeSearchBody, win api.Window) []corpus.Hit {
	var all []corpus.Hit
	for _, b := range bodies {
		all = append(all, b.resp.Hits...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ModelID < all[j].ModelID
	})
	if win.Offset > 0 {
		if win.Offset >= len(all) {
			return []corpus.Hit{}
		}
		all = all[win.Offset:]
	}
	if win.Limit >= 0 && len(all) > win.Limit {
		all = all[:win.Limit]
	}
	if all == nil {
		all = []corpus.Hit{}
	}
	return all
}

// --- health and metrics ---

// nodeHealth is one node's row in the aggregated health report.
type nodeHealth struct {
	URL    string `json:"url"`
	Status string `json:"status"` // "ok" | "down"
	Models int    `json:"models"`
	Error  string `json:"error,omitempty"`
}

// gatewayHealth is the gateway's /v1/healthz payload: fleet status plus
// per-node rows. Status is "ok" when every node answered, "degraded"
// otherwise; the HTTP status stays 200 either way (the gateway itself is
// alive — liveness probes must not recycle a gateway because a shard is
// down), with the degradation machine-readable in the body.
type gatewayHealth struct {
	Status   string       `json:"status"`
	Role     string       `json:"role"`
	Nodes    []nodeHealth `json:"nodes"`
	// Models is the fleet total over reachable nodes — the cluster
	// corpus size when status is "ok", a lower bound when degraded.
	Models   int     `json:"models"`
	InFlight int64   `json:"in_flight"`
	UptimeS  float64 `json:"uptime_s"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rows := make([]nodeHealth, len(g.parts.nodes))
	var wg sync.WaitGroup
	for i, node := range g.parts.nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			row := nodeHealth{URL: node, Status: "down"}
			resp, err := g.nodes[node].do(r.Context(), http.MethodGet, "/v1/healthz", "", nil, reqID(w))
			switch {
			case err != nil:
				row.Error = err.Error()
			case resp.status != http.StatusOK:
				row.Error = fmt.Sprintf("healthz answered %d", resp.status)
			default:
				var nh struct {
					Models int `json:"models"`
				}
				if err := json.Unmarshal(resp.body, &nh); err != nil {
					row.Error = fmt.Sprintf("healthz undecodable: %v", err)
				} else {
					row.Status = "ok"
					row.Models = nh.Models
				}
			}
			rows[i] = row
		}(i, node)
	}
	wg.Wait()
	payload := gatewayHealth{
		Status:   "ok",
		Role:     "gateway",
		Nodes:    rows,
		InFlight: g.inFlight.Load(),
		UptimeS:  time.Since(g.start).Seconds(),
	}
	for _, row := range rows {
		if row.Status != "ok" {
			payload.Status = "degraded"
			continue
		}
		payload.Models += row.Models
	}
	writeJSON(w, http.StatusOK, payload)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.reg.WriteText(w)
}
