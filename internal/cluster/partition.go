// Package cluster implements horizontal corpus serving: a fleet of
// sbmlserved shard nodes, each holding a disjoint subset of the model
// ids, fronted by a scatter-gather Gateway that speaks the same /v1
// surface as a single node.
//
// Model ids are assigned to nodes by rendezvous (highest-random-weight)
// hashing — a deterministic pure function of (node set, model id), so
// every gateway over the same node set routes identically with no shared
// state, and adding or removing one node reassigns only the ids that
// node gains or loses (~1/n of the corpus), never reshuffling the rest.
//
// Write routes (add/remove/compose/simulate/check) forward to the one
// node that owns the model id. /v1/search fans out to every node for the
// ranking prefix [0, offset+limit) and merges with the exact comparator
// the corpus ranking uses (score descending, model id ascending), so a
// cluster ranking is byte-identical to a single-node corpus holding the
// same models — the determinism already proven at every shard and worker
// count, applied one level up. See gateway.go for the degraded-mode
// semantics when a node is down.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// PartitionMap assigns model ids to nodes by rendezvous hashing. It is
// immutable and safe for concurrent use.
type PartitionMap struct {
	nodes []string
}

// NewPartitionMap builds a partition map over the node base URLs.
// URLs are normalized (trailing slashes trimmed) and must be unique and
// non-empty; the configured order is preserved for display but does not
// influence ownership — rendezvous hashing depends only on the set.
func NewPartitionMap(nodes []string) (*PartitionMap, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: at least one node is required")
	}
	normalized := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		n = strings.TrimRight(strings.TrimSpace(n), "/")
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node URL")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node URL %q", n)
		}
		seen[n] = true
		normalized = append(normalized, n)
	}
	return &PartitionMap{nodes: normalized}, nil
}

// Nodes returns the node base URLs in configured order. The slice is a
// copy; callers may keep it.
func (p *PartitionMap) Nodes() []string {
	return append([]string(nil), p.nodes...)
}

// Owner returns the base URL of the node that owns id: the node whose
// rendezvous weight hash(node, id) is highest, ties broken by smaller
// URL so the choice is total even in the (astronomically unlikely) event
// of a 64-bit collision.
func (p *PartitionMap) Owner(id string) string {
	best := p.nodes[0]
	bestW := rendezvousWeight(best, id)
	for _, n := range p.nodes[1:] {
		w := rendezvousWeight(n, id)
		if w > bestW || (w == bestW && n < best) {
			best, bestW = n, w
		}
	}
	return best
}

// rendezvousWeight is FNV-1a over node \x00 id, pushed through a 64-bit
// finalizer. The finalizer matters: raw FNV-1a is byte-serial with weak
// avalanche, so hashes of strings sharing a long common suffix (every
// id, hashed after differing node prefixes) stay strongly correlated
// and rendezvous selection collapses onto one node. The xor-shift/
// multiply finalizer decorrelates them; the whole function is a pure
// computation, stable across processes and releases (ownership must not
// move on a gateway restart or a Go upgrade).
func rendezvousWeight(node, id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(id))
	return mix64(h.Sum64())
}

// mix64 is the Murmur3 fmix64 finalizer: full avalanche, bijective.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Spread reports how many of the given ids each node owns, keyed by node
// URL — the balance diagnostic surfaced in the gateway's health report.
func (p *PartitionMap) Spread(ids []string) map[string]int {
	out := make(map[string]int, len(p.nodes))
	for _, n := range p.nodes {
		out[n] = 0
	}
	for _, id := range ids {
		out[p.Owner(id)]++
	}
	return out
}

// sortedNodes returns the node URLs sorted ascending — the deterministic
// order used for error listings.
func (p *PartitionMap) sortedNodes() []string {
	out := p.Nodes()
	sort.Strings(out)
	return out
}
