package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"

	"sbmlcompose/internal/obs"
)

// nodeClient issues requests to one shard node with a per-request
// timeout and capped exponential backoff with jitter between transport
// failures — the same retry discipline the replication puller in
// store/replica.go uses, for the same reason: a node restart or a
// dropped connection should cost one jittered retry, not a failed user
// request, while an HTTP status from the node is its answer and is never
// retried (retrying a 409 duplicate-add would not make it less
// duplicate).
type nodeClient struct {
	base string
	hc   *http.Client
	// timeout caps each attempt; attempts bounds the transport retries.
	timeout    time.Duration
	attempts   int
	minBackoff time.Duration
	maxBackoff time.Duration
	// Per-node fan-out series: every request, every transport failure,
	// and the latency of successful round-trips.
	requests *obs.Counter
	errors   *obs.Counter
	lat      *obs.Histogram
}

// nodeResponse is one completed node round-trip.
type nodeResponse struct {
	status int
	header http.Header
	body   []byte
}

// do performs method path?rawQuery against the node, propagating the
// gateway's request id, retrying transport-level failures (connection
// refused, resets, timeouts) with jittered backoff up to the attempt
// budget. The request context bounds the whole exchange: a cancelled
// inbound request stops retrying immediately.
func (n *nodeClient) do(ctx context.Context, method, path, rawQuery string, body []byte, reqID string) (*nodeResponse, error) {
	backoff := n.minBackoff
	var lastErr error
	for attempt := 0; attempt < n.attempts; attempt++ {
		if attempt > 0 {
			// Capped exponential backoff with jitter: a uniformly random
			// wait in [backoff/2, backoff), so a fleet of gateway requests
			// hitting a briefly-down node does not retry in lockstep.
			d := backoff/2 + rand.N(backoff/2+1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(d):
			}
			if backoff *= 2; backoff > n.maxBackoff {
				backoff = n.maxBackoff
			}
		}
		resp, err := n.once(ctx, method, path, rawQuery, body, reqID)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, fmt.Errorf("cluster: node %s: %w", n.base, lastErr)
}

func (n *nodeClient) once(ctx context.Context, method, path, rawQuery string, body []byte, reqID string) (*nodeResponse, error) {
	n.requests.Inc()
	t0 := time.Now()
	rctx, cancel := context.WithTimeout(ctx, n.timeout)
	defer cancel()
	url := n.base + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, url, rd)
	if err != nil {
		n.errors.Inc()
		return nil, err
	}
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		n.errors.Inc()
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		n.errors.Inc()
		return nil, fmt.Errorf("read response: %w", err)
	}
	n.lat.Observe(time.Since(t0).Seconds())
	return &nodeResponse{status: resp.StatusCode, header: resp.Header, body: b}, nil
}
