// Tests for the scatter-gather gateway run real node servers
// (internal/serve over real corpora) behind httptest listeners and pin
// the tentpole contract: a cluster answers /v1/search byte-identically
// to a single-node corpus holding the same models — at every partition
// count, every per-node shard count, cached and uncached — and degrades
// deterministically when a node is down.
package cluster_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sbmlcompose"
	"sbmlcompose/internal/biomodels"
	"sbmlcompose/internal/cluster"
	"sbmlcompose/internal/serve"
)

func modelXML(id string, seed int64) string {
	m := biomodels.Generate(biomodels.Config{
		ID: id, Nodes: 10, Edges: 14, Seed: seed, VocabularySize: 60, Decorate: true,
	})
	return sbmlcompose.ModelToString(m)
}

// newNode starts one shard node: a real serve.Server over a corpus with
// the given shard count, behind a real TCP listener.
func newNode(t *testing.T, shards int) *httptest.Server {
	t.Helper()
	srv := serve.New(sbmlcompose.NewCorpus(&sbmlcompose.CorpusOptions{Shards: shards, Workers: 2}), serve.Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// newCluster starts `partitions` nodes (each corpus with `shards`
// shards) and a gateway over them, with test-speed retry bounds.
func newCluster(t *testing.T, partitions, shards int) (*cluster.Gateway, []*httptest.Server) {
	t.Helper()
	nodes := make([]*httptest.Server, partitions)
	urls := make([]string, partitions)
	for i := range nodes {
		nodes[i] = newNode(t, shards)
		urls[i] = nodes[i].URL
	}
	gw, err := cluster.New(cluster.Options{
		Nodes:       urls,
		NodeTimeout: 10 * time.Second,
		Retries:     2,
		MinBackoff:  time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gw, nodes
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func jsonBody(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// tookMs wipes the one legitimately nondeterministic byte range so the
// rest of the body can be compared byte-for-byte.
var tookMs = regexp.MustCompile(`"took_ms":[0-9.eE+-]+`)

func stripTook(body string) string {
	return tookMs.ReplaceAllString(body, `"took_ms":0`)
}

func seedModels(t *testing.T, h http.Handler, n int, seed0 int64) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("cl_%d", i)
		rec := do(t, h, "POST", "/v1/models", modelXML(ids[i], seed0+int64(i)))
		if rec.Code != http.StatusCreated {
			t.Fatalf("seed %s: %d %s", ids[i], rec.Code, rec.Body.String())
		}
	}
	return ids
}

// --- partition map properties ---

func TestPartitionMapProperties(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	p, err := cluster.NewPartitionMap(urls)
	if err != nil {
		t.Fatal(err)
	}

	ids := make([]string, 400)
	for i := range ids {
		ids[i] = fmt.Sprintf("model_%d", i)
	}

	// Ownership is a function of the node *set*: a map built from the
	// same URLs in reverse (and with trailing slashes) routes identically.
	rev := []string{"http://d:1/", "http://c:1", "http://b:1/", "http://a:1"}
	p2, err := cluster.NewPartitionMap(rev)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if p.Owner(id) != p2.Owner(id) {
			t.Fatalf("owner of %q depends on node order: %q vs %q", id, p.Owner(id), p2.Owner(id))
		}
	}

	// Minimal reassignment: dropping one node moves only that node's ids.
	p3, err := cluster.NewPartitionMap(urls[:3])
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if o := p.Owner(id); o != "http://d:1" && p3.Owner(id) != o {
			t.Fatalf("id %q moved from surviving node %q to %q when d left", id, o, p3.Owner(id))
		}
	}

	// Spread: no node starves and no node hoards. With 400 ids over 4
	// nodes a uniform hash keeps every node within a loose [40, 180].
	for node, n := range p.Spread(ids) {
		if n < 40 || n > 180 {
			t.Fatalf("node %s owns %d of 400 ids — partitioning badly skewed", node, n)
		}
	}

	// Constructor rejections.
	for _, bad := range [][]string{
		nil,
		{""},
		{"http://a:1", "http://a:1"},
		{"http://a:1", "http://a:1/"}, // same node modulo normalization
	} {
		if _, err := cluster.NewPartitionMap(bad); err == nil {
			t.Fatalf("NewPartitionMap(%q) accepted", bad)
		}
	}
}

// --- byte-identical scatter-gather ranking ---

// TestClusterSearchByteIdentical is the tentpole pin: for every
// partition count × per-node shard count, every query window answered by
// the gateway is byte-identical (modulo took_ms) to the same query
// against one reference node holding the whole corpus — and repeating
// the query (the nodes' cached path) changes nothing.
func TestClusterSearchByteIdentical(t *testing.T) {
	const nModels = 12
	ref := serve.New(sbmlcompose.NewCorpus(&sbmlcompose.CorpusOptions{Shards: 2, Workers: 2}), serve.Config{})
	seedModels(t, ref, nModels, 400)

	queryHit := modelXML("cl_3", 403)    // clone of a stored model
	queryMiss := modelXML("fresh", 999)  // related but unstored
	windows := []map[string]any{
		{},
		{"top_k": 3},
		{"top_k": -1},
		{"limit": 4, "offset": 0},
		{"limit": 3, "offset": 2},
		{"limit": 5, "offset": 10},
		{"limit": -1, "offset": 7},
		{"limit": 50, "offset": 0},
		{"top_k": 2, "limit": 2, "offset": 1},
		{"top_k": 4, "min_score": 0.05},
	}

	for _, partitions := range []int{1, 2, 4} {
		for _, shards := range []int{1, 2} {
			t.Run(fmt.Sprintf("partitions=%d/shards=%d", partitions, shards), func(t *testing.T) {
				gw, _ := newCluster(t, partitions, shards)
				seedModels(t, gw, nModels, 400)
				for qi, sbmlQ := range []string{queryHit, queryMiss} {
					for wi, win := range windows {
						req := map[string]any{"sbml": sbmlQ}
						for k, v := range win {
							req[k] = v
						}
						body := jsonBody(t, req)
						want := do(t, ref, "POST", "/v1/search", body)
						got := do(t, gw, "POST", "/v1/search", body)
						if want.Code != http.StatusOK || got.Code != want.Code {
							t.Fatalf("query %d window %d: ref %d, gateway %d: %s",
								qi, wi, want.Code, got.Code, got.Body.String())
						}
						if stripTook(got.Body.String()) != stripTook(want.Body.String()) {
							t.Errorf("query %d window %v: cluster ranking diverged from single node\nref: %s\ngot: %s",
								qi, win, want.Body.String(), got.Body.String())
						}
						// The cached pass (same raw node bodies → node query
						// cache hit) must answer the same bytes.
						again := do(t, gw, "POST", "/v1/search", body)
						if stripTook(again.Body.String()) != stripTook(got.Body.String()) {
							t.Errorf("query %d window %v: cached pass diverged\nfirst: %s\nagain: %s",
								qi, win, got.Body.String(), again.Body.String())
						}
					}
				}
			})
		}
	}
}

// TestClusterPaginationTiling pins that pages tile: walking the cluster
// ranking with (offset, limit) windows reassembles exactly the
// unbounded ranking, with no hit lost, duplicated, or reordered at any
// page boundary.
func TestClusterPaginationTiling(t *testing.T) {
	gw, _ := newCluster(t, 3, 2)
	seedModels(t, gw, 10, 500)
	query := modelXML("cl_2", 502)

	full := struct {
		Hits []json.RawMessage `json:"hits"`
	}{}
	rec := do(t, gw, "POST", "/v1/search", jsonBody(t, map[string]any{"sbml": query, "top_k": -1}))
	if rec.Code != http.StatusOK {
		t.Fatalf("full ranking: %d %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Hits) == 0 {
		t.Fatal("full ranking empty — tiling test needs hits")
	}

	for _, pageSize := range []int{1, 3, 4} {
		var tiled []string
		for offset := 0; ; offset += pageSize {
			rec := do(t, gw, "POST", "/v1/search", jsonBody(t, map[string]any{
				"sbml": query, "offset": offset, "limit": pageSize,
			}))
			if rec.Code != http.StatusOK {
				t.Fatalf("page offset=%d: %d %s", offset, rec.Code, rec.Body.String())
			}
			var page struct {
				Hits     []json.RawMessage `json:"hits"`
				Offset   int               `json:"offset"`
				Limit    int               `json:"limit"`
				Returned int               `json:"returned"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
				t.Fatal(err)
			}
			if page.Offset != offset || page.Limit != pageSize || page.Returned != len(page.Hits) {
				t.Fatalf("page echo wrong: offset=%d limit=%d returned=%d for requested offset=%d limit=%d hits=%d",
					page.Offset, page.Limit, page.Returned, offset, pageSize, len(page.Hits))
			}
			for _, h := range page.Hits {
				tiled = append(tiled, string(h))
			}
			if len(page.Hits) < pageSize {
				break
			}
		}
		if len(tiled) != len(full.Hits) {
			t.Fatalf("page size %d: tiled %d hits, full ranking has %d", pageSize, len(tiled), len(full.Hits))
		}
		for i := range tiled {
			if tiled[i] != string(full.Hits[i]) {
				t.Fatalf("page size %d: hit %d diverged:\ntiled: %s\nfull:  %s", pageSize, i, tiled[i], full.Hits[i])
			}
		}
	}

	// The gateway applies the same window validation as the nodes.
	rec = do(t, gw, "POST", "/v1/search", jsonBody(t, map[string]any{
		"sbml": query, "top_k": 3, "limit": 5,
	}))
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "disagree") {
		t.Fatalf("limit/top_k disagreement through gateway: %d %s", rec.Code, rec.Body.String())
	}
}

// --- write routing ---

func TestClusterWriteRoutesToOwner(t *testing.T) {
	gw, nodes := newCluster(t, 3, 2)
	ids := seedModels(t, gw, 9, 600)

	// Every model landed on exactly the node the partition map names.
	parts := gw.Partition()
	nodeModels := func(ts *httptest.Server) int {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Models int `json:"models"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Models
	}
	want := parts.Spread(ids)
	total := 0
	for _, ts := range nodes {
		n := nodeModels(ts)
		if n != want[ts.URL] {
			t.Errorf("node %s holds %d models, partition map says %d", ts.URL, n, want[ts.URL])
		}
		total += n
	}
	if total != len(ids) {
		t.Fatalf("fleet holds %d models, want %d", total, len(ids))
	}

	// Node answers relay verbatim: duplicate add is the owner's 409.
	rec := do(t, gw, "POST", "/v1/models", modelXML("cl_0", 600))
	if rec.Code != http.StatusConflict {
		t.Fatalf("duplicate add via gateway: %d %s", rec.Code, rec.Body.String())
	}
	// ?id= override routes by the override, like the node stores by it.
	rec = do(t, gw, "POST", "/v1/models?id=renamed", modelXML("cl_0", 601))
	if rec.Code != http.StatusCreated || !strings.Contains(rec.Body.String(), `"renamed"`) {
		t.Fatalf("add with ?id= via gateway: %d %s", rec.Code, rec.Body.String())
	}
	// Model-addressed routes reach the owner: simulate works for every id
	// through the same gateway URL regardless of which node holds it.
	for _, id := range ids {
		rec := do(t, gw, "POST", "/v1/simulate", jsonBody(t, map[string]any{
			"id": id, "t0": 0, "t1": 0.5, "step": 0.1,
		}))
		if rec.Code != http.StatusOK {
			t.Fatalf("simulate %s via gateway: %d %s", id, rec.Code, rec.Body.String())
		}
	}
	// Unknown and empty ids answer the node's not-found shape.
	rec = do(t, gw, "POST", "/v1/compose", jsonBody(t, map[string]any{"id": "nope", "sbml": modelXML("q", 1)}))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("compose unknown id: %d", rec.Code)
	}
	rec = do(t, gw, "POST", "/v1/check", `{"formula": "G({x >= 0})"}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("check with empty id: %d", rec.Code)
	}
	rec = do(t, gw, "POST", "/v1/simulate", "{bad json")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("simulate bad json: %d", rec.Code)
	}

	// DELETE routes to the owner and relays its answer; the model is gone
	// from the fleet afterwards.
	rec = do(t, gw, "DELETE", "/v1/models/"+url.PathEscape(ids[4]), "")
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete via gateway: %d", rec.Code)
	}
	rec = do(t, gw, "DELETE", "/v1/models/"+url.PathEscape(ids[4]), "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("second delete via gateway: %d", rec.Code)
	}
}

// --- degraded mode ---

func TestClusterDegradedSearch(t *testing.T) {
	gw, nodes := newCluster(t, 3, 1)
	ids := seedModels(t, gw, 9, 700)
	query := modelXML("cl_1", 701)
	body := jsonBody(t, map[string]any{"sbml": query, "top_k": -1})

	// Down one node. Which ids died with it determines the partial set.
	down := nodes[1]
	down.Close()
	parts := gw.Partition()
	var surviving []string
	for _, id := range ids {
		if parts.Owner(id) != down.URL {
			surviving = append(surviving, id)
		}
	}
	if len(surviving) == 0 || len(surviving) == len(ids) {
		t.Fatalf("degenerate partition: %d of %d ids survive", len(surviving), len(ids))
	}

	// Default: refuse with 503 and the machine-readable partial code.
	rec := do(t, gw, "POST", "/v1/search", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("search with node down: %d %s", rec.Code, rec.Body.String())
	}
	var er struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "partial" || !strings.Contains(er.Error, down.URL) {
		t.Fatalf("degraded refusal should carry code=partial and name %s: %+v", down.URL, er)
	}

	// Explicit opt-in: the merged ranking of the surviving nodes, marked
	// partial with the dead node listed.
	rec = do(t, gw, "POST", "/v1/search", jsonBody(t, map[string]any{
		"sbml": query, "top_k": -1, "allow_partial": true,
	}))
	if rec.Code != http.StatusOK {
		t.Fatalf("allow_partial search: %d %s", rec.Code, rec.Body.String())
	}
	var partial struct {
		Hits []struct {
			ModelID string  `json:"model_id"`
			Score   float64 `json:"score"`
		} `json:"hits"`
		Partial     bool     `json:"partial"`
		FailedNodes []string `json:"failed_nodes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &partial); err != nil {
		t.Fatal(err)
	}
	if !partial.Partial || len(partial.FailedNodes) != 1 || partial.FailedNodes[0] != down.URL {
		t.Fatalf("partial response not marked: %s", rec.Body.String())
	}
	got := make([]string, len(partial.Hits))
	for i, h := range partial.Hits {
		got[i] = h.ModelID
	}
	sort.Strings(got)
	sort.Strings(surviving)
	// min_score 0 keeps every stored model in an unbounded ranking, so
	// the partial answer is exactly the surviving ids.
	if strings.Join(got, ",") != strings.Join(surviving, ",") {
		t.Fatalf("partial hits %v, want surviving ids %v", got, surviving)
	}
	for i := 1; i < len(partial.Hits); i++ {
		a, b := partial.Hits[i-1], partial.Hits[i]
		if a.Score < b.Score || (a.Score == b.Score && a.ModelID > b.ModelID) {
			t.Fatalf("partial ranking out of order at %d: %+v then %+v", i, a, b)
		}
	}

	// A complete answer never carries the partial fields (bytes stay
	// identical to a single node's): checked implicitly by the
	// byte-identity test; here pin a write to a dead owner → 502.
	var deadID string
	for _, id := range ids {
		if parts.Owner(id) == down.URL {
			deadID = id
			break
		}
	}
	rec = do(t, gw, "POST", "/v1/simulate", jsonBody(t, map[string]any{
		"id": deadID, "t0": 0, "t1": 0.5, "step": 0.1,
	}))
	if rec.Code != http.StatusBadGateway || !strings.Contains(rec.Body.String(), "node_unreachable") {
		t.Fatalf("write to dead owner: %d %s", rec.Code, rec.Body.String())
	}

	// Health aggregates to degraded while staying 200 (gateway liveness).
	rec = do(t, gw, "GET", "/v1/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var health struct {
		Status string `json:"status"`
		Role   string `json:"role"`
		Models int    `json:"models"`
		Nodes  []struct {
			URL    string `json:"url"`
			Status string `json:"status"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Role != "gateway" {
		t.Fatalf("health with node down: %+v", health)
	}
	if health.Models != len(surviving) {
		t.Fatalf("degraded health models = %d, want surviving %d", health.Models, len(surviving))
	}
	downSeen := false
	for _, n := range health.Nodes {
		if n.URL == down.URL {
			downSeen = n.Status == "down"
		}
	}
	if !downSeen {
		t.Fatalf("health does not report %s down: %s", down.URL, rec.Body.String())
	}

	// All nodes down → 503 regardless of allow_partial.
	for _, ts := range nodes {
		ts.Close()
	}
	rec = do(t, gw, "POST", "/v1/search", jsonBody(t, map[string]any{
		"sbml": query, "allow_partial": true,
	}))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("search with fleet down: %d %s", rec.Code, rec.Body.String())
	}
}

// TestClusterRelaysQueryErrors pins that a query every node rejects the
// same way (unparseable SBML → 400) relays the node's answer instead of
// masquerading as a gateway fault.
func TestClusterRelaysQueryErrors(t *testing.T) {
	gw, _ := newCluster(t, 2, 1)
	seedModels(t, gw, 2, 800)
	rec := do(t, gw, "POST", "/v1/search", jsonBody(t, map[string]any{"sbml": "<not-sbml"}))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unparseable query via gateway: %d %s", rec.Code, rec.Body.String())
	}
	rec = do(t, gw, "POST", "/v1/search", `{"sbml": "x", "bogus_field": 1}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field via gateway: %d", rec.Code)
	}
}

// --- request-id propagation and retries ---

// recordingProxy forwards to a node while recording the X-Request-Id of
// every forwarded request, and can drop the first n connections to
// exercise the transport retry path.
type recordingProxy struct {
	mu       sync.Mutex
	seen     []string
	failures int
	backend  http.Handler
}

func (p *recordingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	p.seen = append(p.seen, r.Header.Get("X-Request-Id"))
	fail := p.failures > 0
	if fail {
		p.failures--
	}
	p.mu.Unlock()
	if fail {
		// Kill the connection without an HTTP answer: a transport-level
		// failure, the kind the gateway retries.
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("recordingProxy: no hijack support")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close()
		return
	}
	p.backend.ServeHTTP(w, r)
}

func TestClusterRequestIDPropagationAndRetry(t *testing.T) {
	backend := serve.New(sbmlcompose.NewCorpus(&sbmlcompose.CorpusOptions{Shards: 1, Workers: 1}), serve.Config{})
	proxy := &recordingProxy{backend: backend}
	ts := httptest.NewServer(proxy)
	defer ts.Close()
	gw, err := cluster.New(cluster.Options{
		Nodes:      []string{ts.URL},
		Retries:    3,
		MinBackoff: time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A valid inbound id rides through to the node and back out.
	req := httptest.NewRequest("POST", "/v1/models", strings.NewReader(modelXML("rid_m", 900)))
	req.Header.Set("X-Request-Id", "ci-cluster-42")
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("add via gateway: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Request-Id") != "ci-cluster-42" {
		t.Fatalf("gateway did not echo the inbound id: %q", rec.Header().Get("X-Request-Id"))
	}
	proxy.mu.Lock()
	last := proxy.seen[len(proxy.seen)-1]
	proxy.mu.Unlock()
	if last != "ci-cluster-42" {
		t.Fatalf("node saw request id %q, want the inbound id", last)
	}

	// An unsafe inbound id is replaced before it reaches the node.
	req = httptest.NewRequest("GET", "/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "evil\x01id")
	rec = httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	minted := rec.Header().Get("X-Request-Id")
	if minted == "evil\x01id" || !regexp.MustCompile(`^[0-9a-f]{10}-[0-9]+$`).MatchString(minted) {
		t.Fatalf("unsafe inbound id came back as %q", minted)
	}
	proxy.mu.Lock()
	last = proxy.seen[len(proxy.seen)-1]
	proxy.mu.Unlock()
	if last != minted {
		t.Fatalf("node saw %q, gateway minted %q", last, minted)
	}

	// Transport failures retry with backoff: two dropped connections
	// still end in the node's answer on the third attempt.
	proxy.mu.Lock()
	proxy.failures = 2
	before := len(proxy.seen)
	proxy.mu.Unlock()
	rec2 := do(t, gw, "POST", "/v1/simulate", jsonBody(t, map[string]any{
		"id": "rid_m", "t0": 0, "t1": 0.5, "step": 0.1,
	}))
	if rec2.Code != http.StatusOK {
		t.Fatalf("simulate after transport failures: %d %s", rec2.Code, rec2.Body.String())
	}
	proxy.mu.Lock()
	attempts := len(proxy.seen) - before
	proxy.mu.Unlock()
	if attempts != 3 {
		t.Fatalf("saw %d attempts, want 3 (2 failures + success)", attempts)
	}

	// The per-node fan-out series recorded the traffic.
	var metrics strings.Builder
	if err := gw.Registry().WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`sbmlgw_node_requests_total{node="` + ts.URL + `"}`,
		`sbmlgw_node_errors_total{node="` + ts.URL + `"} 2`,
		`sbmlgw_http_requests_total{route="simulate"}`,
		"sbmlgw_nodes 1",
	} {
		if !strings.Contains(metrics.String(), series) {
			t.Errorf("metrics missing %q:\n%s", series, metrics.String())
		}
	}
}

// TestOpenGatewayFacade pins the embedder surface: Client.OpenGateway
// returns a serving Gateway with defaulted options.
func TestOpenGatewayFacade(t *testing.T) {
	node := newNode(t, 1)
	gw, err := sbmlcompose.New().OpenGateway([]string{node.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, gw, "GET", "/v1/healthz", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"role":"gateway"`) {
		t.Fatalf("facade gateway healthz: %d %s", rec.Code, rec.Body.String())
	}
	if _, err := sbmlcompose.New().OpenGateway(nil, nil); err == nil {
		t.Fatal("OpenGateway with no nodes accepted")
	}
}
