// Package serve implements the sbmlserved HTTP server: the corpus
// subsystem (sharded storage, inverted-index top-K matching, cached
// simulation engines) exposed as a versioned JSON query service, with
// per-route latency histograms, stage tracing, request IDs, and
// Prometheus text exposition at GET /v1/metrics. It lives as a library
// rather than inside cmd/sbmlserved so the serving-level load harness in
// cmd/benchfig can drive a fully wired in-process server through
// httptest, measuring exactly what production serves.
//
// The API is versioned under /v1/ with typed JSON requests and responses:
//
//	POST   /v1/models        add a model; body is SBML XML, ?id= overrides
//	                         the model id. 201 with {"id","components",
//	                         "models"}.
//	DELETE /v1/models/{id}   remove a model. 204, or 404 if absent.
//	POST   /v1/search        rank the corpus against a query model. JSON
//	                         body {"sbml","top_k","cutoff","min_score",
//	                         "offset","limit"}; returns the ranked page
//	                         with per-component evidence.
//	POST   /v1/compose       merge a query model into a stored model.
//	POST   /v1/simulate      simulate a stored model on its cached engine.
//	POST   /v1/check         evaluate a temporal-logic property over a
//	                         deterministic simulation of a stored model.
//	POST   /v1/snapshot      force a snapshot + WAL compaction.
//	GET    /v1/healthz       liveness, in-flight gauge, per-endpoint
//	                         counts with mean and p50/p95/p99 latency.
//	GET    /v1/metrics       Prometheus text exposition of every
//	                         registered series (HTTP routes, pipeline
//	                         stages, WAL/fsync, replication).
//
// Every response carries an X-Request-Id header (the inbound value when
// the client sent one, a generated id otherwise), and JSON error bodies
// echo the same id as "request_id", so one string ties a client-observed
// failure to the server's log line for it. Requests slower than the
// configured slow-request threshold log their id plus a per-stage span
// breakdown (decode, cache lookup, parse, compile, retrieval, scoring,
// merge, ...), so one line explains where a slow search went.
//
// The legacy unversioned routes (POST /models, /search, ...) respond
// with a permanent redirect to their /v1/ equivalents (308 for
// method-bearing requests, 301 for GET/HEAD). GET /healthz keeps
// answering in place for liveness probes.
//
// Request handlers run under the request context capped by
// Config.RequestTimeout; context terminations map to 408 (server-side
// deadline) or 499 (client closed request). Bodies cap at 64 MiB.
// /v1/search is accelerated by a raw-body query cache; see Config.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sbmlcompose"
	"sbmlcompose/internal/api"
	"sbmlcompose/internal/lru"
	"sbmlcompose/internal/obs"
)

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the response was written. There is no standard
// status for it; 499 is what fleet dashboards already aggregate.
const statusClientClosedRequest = 499

// maxBodyBytes caps request bodies (models can legitimately be large).
const maxBodyBytes = 64 << 20

// defaultQueryCache is the query-cache default: how many compiled search
// queries the server remembers, keyed on the raw request body.
const defaultQueryCache = 128

// defaultSlowRequest is the default slow-request log threshold.
const defaultSlowRequest = time.Second

// searchCacheMaxBody bounds which /v1/search bodies are cache-keyed; a
// giant one-off query should not evict a working set of small ones (the
// cache holds the raw body as its key).
const searchCacheMaxBody = 1 << 20

// cachedSearch is one query-cache entry: the decoded request and the
// query compiled against the corpus's match options. Rankings are always
// computed fresh against the live corpus, so an entry never goes stale
// when models are added or removed — only the parse/compile work is
// reused, never a result.
type cachedSearch struct {
	req searchRequest
	cq  *sbmlcompose.CompiledQuery
}

// Config tunes a Server. The zero value is a sensible default: fresh
// metrics registry, 128-entry query cache, 1s slow-request threshold, no
// request logging, no pprof.
type Config struct {
	// Registry receives every metric the server registers; nil creates a
	// private registry (still served at /v1/metrics). Pass the registry
	// the store metrics were created against so one scrape covers both.
	Registry *obs.Registry
	// RequestTimeout caps each handler's context; 0 leaves only the
	// client-disconnect cancellation.
	RequestTimeout time.Duration
	// QueryCache is the compiled-query cache size keyed on raw /v1/search
	// bodies: 0 means the 128-entry default, negative disables caching.
	QueryCache int
	// SlowRequest is the latency past which a request logs its id and
	// per-stage breakdown: 0 means the 1s default, negative disables.
	SlowRequest time.Duration
	// Logf, when non-nil, receives one structured line per request
	// (method, path, status, duration, request id) plus slow-request and
	// lifecycle lines. Nil keeps the server silent (tests, benchmarks).
	Logf func(format string, args ...any)
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// routeStat is one route's metric pair, kept alongside the registry so
// /v1/healthz and the shutdown stats render without a registry scrape.
type routeStat struct {
	count *obs.Counter
	lat   *obs.Histogram
}

// Server routes requests to the corpus and records per-route histograms.
type Server struct {
	corpus *sbmlcompose.Corpus
	// store is the durable backing, nil when serving in-memory.
	store *sbmlcompose.CorpusStore
	// replica is non-nil when following a primary: the puller that keeps
	// the store converged. Its Status feeds /healthz and the
	// X-Replica-Lag-Seq header; POST /v1/promote stops it.
	replica *sbmlcompose.Replica
	mux     *http.ServeMux
	start   time.Time
	reg     *obs.Registry
	stats   map[string]*routeStat // route pattern → metrics, fixed at construction
	// timeout caps each request handler's context; 0 leaves only the
	// client-disconnect cancellation of r.Context().
	timeout time.Duration
	// slowRequest is the slow-request log threshold; 0 disables.
	slowRequest time.Duration
	logf        func(format string, args ...any)
	// ridPrefix + ridSeq generate request ids for requests that arrive
	// without an X-Request-Id header.
	ridPrefix string
	ridSeq    atomic.Uint64
	// inFlight gauges currently executing requests, served by /healthz.
	inFlight atomic.Int64
	// searchCache maps raw /v1/search bodies to their decoded request and
	// compiled query; nil disables caching. Byte-for-byte repeat searches
	// skip JSON decoding, SBML parsing and match-key derivation.
	searchCache *lru.Cache[cachedSearch]
	// searchCacheHits counts cache hits, reported by /healthz.
	searchCacheHits atomic.Int64
	// stages caches the sbmlserved_stage_seconds histogram handles so the
	// per-request middleware never goes through the registry's locked
	// getOrAdd on the hot path.
	stages stageCache
	// slowTotal and readOnlyRejected count slow requests and follower
	// write rejections for the registry.
	slowTotal        *obs.Counter
	readOnlyRejected *obs.Counter
	// closing is closed when graceful shutdown begins, waking replication
	// long-polls that would otherwise sit out their full wait_ms inside
	// the drain window.
	closing   chan struct{}
	closeOnce sync.Once
}

// New wires the routes over an in-memory corpus.
func New(c *sbmlcompose.Corpus, cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		corpus:      c,
		mux:         http.NewServeMux(),
		start:       time.Now(),
		reg:         reg,
		stats:       map[string]*routeStat{},
		timeout:     cfg.RequestTimeout,
		slowRequest: cfg.SlowRequest,
		logf:        cfg.Logf,
		ridPrefix:   newRIDPrefix(),
		closing:     make(chan struct{}),
	}
	s.stages.init(reg)
	if s.slowRequest == 0 {
		s.slowRequest = defaultSlowRequest
	} else if s.slowRequest < 0 {
		s.slowRequest = 0
	}
	switch {
	case cfg.QueryCache == 0:
		s.searchCache = lru.New[cachedSearch](defaultQueryCache)
	case cfg.QueryCache > 0:
		s.searchCache = lru.New[cachedSearch](cfg.QueryCache)
	}
	s.reg.GaugeFunc("sbmlserved_in_flight_requests",
		"Requests currently executing.",
		func() float64 { return float64(s.inFlight.Load()) })
	s.reg.CounterFunc("sbmlserved_query_cache_hits_total",
		"/v1/search requests answered from the raw-body compiled-query cache.",
		func() float64 { return float64(s.searchCacheHits.Load()) })
	s.slowTotal = s.reg.Counter("sbmlserved_slow_requests_total",
		"Requests that exceeded the slow-request threshold.")
	s.readOnlyRejected = s.reg.Counter("sbmlserved_readonly_rejections_total",
		"Writes rejected because this node is an unpromoted replica.")

	s.route("POST /v1/models", "add_model", s.handleAddModel)
	s.route("DELETE /v1/models/{id}", "remove_model", s.handleRemoveModel)
	s.route("POST /v1/search", "search", s.handleSearch)
	s.route("POST /v1/compose", "compose", s.handleCompose)
	s.route("POST /v1/simulate", "simulate", s.handleSimulate)
	s.route("POST /v1/check", "check", s.handleCheck)
	s.route("POST /v1/snapshot", "snapshot", s.handleSnapshot)
	s.route("GET /v1/healthz", "healthz", s.handleHealthz)
	s.route("GET /v1/metrics", "metrics", s.handleMetrics)

	// Legacy unversioned API routes moved permanently to /v1/. The
	// redirect carries the method-specific pattern so an unknown
	// path/method still 404/405s instead of bouncing.
	for _, pattern := range []string{
		"POST /models",
		"DELETE /models/{id}",
		"POST /search",
		"POST /compose",
		"POST /simulate",
		"POST /check",
		"POST /snapshot",
	} {
		s.mux.HandleFunc(pattern, redirectV1)
	}
	// Liveness probes don't follow redirects; /healthz keeps answering in
	// place, identically to /v1/healthz.
	s.route("GET /healthz", "healthz_legacy", s.handleHealthz)

	if cfg.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// NewPersistent wires the routes over a recovered durable store,
// including the replication surface: the WAL feed a follower pulls
// (mounted straight off the store, which implements the handlers) and
// the promotion lever.
func NewPersistent(st *sbmlcompose.CorpusStore, cfg Config) *Server {
	s := New(st.Corpus(), cfg)
	s.store = st
	s.reg.GaugeFunc("sbmlstore_wal_tail_bytes",
		"Bytes in the live WAL segment since the last snapshot.",
		func() float64 { return float64(st.Status().TailBytes) })
	s.reg.CounterFunc("sbmlstore_snapshots_total",
		"Snapshots taken since open (manual, automatic, on close).",
		func() float64 { return float64(st.Status().Snapshots) })
	s.route("GET /v1/replicate", "replicate", s.cancelOnShutdown(st.ServeReplicate))
	s.route("GET /v1/replicate/snapshot", "replicate_snapshot", st.ServeReplicateSnapshot)
	s.route("POST /v1/promote", "promote", s.handlePromote)
	return s
}

// newServer and newPersistentServer are the zero-config constructors the
// package tests use.
func newServer(c *sbmlcompose.Corpus) *Server                 { return New(c, Config{}) }
func newPersistentServer(st *sbmlcompose.CorpusStore) *Server { return NewPersistent(st, Config{}) }

// SetReplica attaches the replication puller whose Status feeds /healthz,
// the lag headers, and the replication gauges. Call once, before serving.
func (s *Server) SetReplica(rep *sbmlcompose.Replica) {
	s.replica = rep
	s.registerReplicaGauges()
}

// registerReplicaGauges exposes the replica's staleness signals. Lag in
// records/bytes freezes while the primary is unreachable (it is
// last-contact data); the age gauges keep growing, which makes them the
// disconnection alarm.
func (s *Server) registerReplicaGauges() {
	rep := s.replica
	s.reg.GaugeFunc("sbmlrepl_lag_records",
		"Primary acknowledged records not yet applied locally (last-contact data).",
		func() float64 { return float64(rep.Status().LagRecords) })
	s.reg.GaugeFunc("sbmlrepl_lag_bytes",
		"Primary's estimate of WAL bytes not yet delivered (upper bound, last-contact data).",
		func() float64 { return float64(rep.Status().LagBytes) })
	s.reg.GaugeFunc("sbmlrepl_last_apply_age_seconds",
		"Seconds since the last applied chunk or snapshot image.",
		func() float64 { return rep.Status().SecondsSinceLastApply })
	s.reg.GaugeFunc("sbmlrepl_last_contact_age_seconds",
		"Seconds since the primary last answered.",
		func() float64 { return rep.Status().SecondsSinceLastContact })
	s.reg.GaugeFunc("sbmlrepl_connected",
		"1 when the most recent feed request succeeded, else 0.",
		func() float64 {
			if rep.Status().Connected {
				return 1
			}
			return 0
		})
	s.reg.CounterFunc("sbmlrepl_reconnects_total",
		"Contact re-established after at least one failure.",
		func() float64 { return float64(rep.Status().Reconnects) })
}

// Registry returns the server's metric registry (for wiring store or
// replica metrics created after construction into the same scrape).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Store returns the durable backing, nil for an in-memory server. The
// caller owns closing it after the HTTP listener drains.
func (s *Server) Store() *sbmlcompose.CorpusStore { return s.store }

// ReplicaHandle returns the replication puller set via SetReplica, nil
// otherwise.
func (s *Server) ReplicaHandle() *sbmlcompose.Replica { return s.replica }

// respWriter captures the response status and carries the request id so
// error bodies can echo it without threading it through every handler.
type respWriter struct {
	http.ResponseWriter
	reqID  string
	status int
}

func (w *respWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *respWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// newRIDPrefix mints the per-server request-id prefix from crypto/rand:
// 40 random bits, so two nodes started in the same instant — the normal
// case when a cluster boots — cannot mint colliding ids the way the old
// truncated wall-clock prefix did. Cross-node request correlation through
// the gateway depends on ids being unique fleet-wide.
func newRIDPrefix() string {
	var b [5]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Only reachable when the system's randomness is broken; a
		// time-derived prefix is strictly better than no server identity.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// requestID returns the inbound X-Request-Id when the client sent a safe
// one — printable-safe charset, bounded length (api.ValidRequestID) —
// else a fresh "<server-prefix>-<seq>" id. Arbitrary inbound bytes are
// never adopted: the id is echoed into response headers, JSON error
// bodies and log lines, so control bytes or quotes would let a client
// corrupt logs and break error-body parsing.
func (s *Server) requestID(r *http.Request) string {
	if rid := r.Header.Get("X-Request-Id"); api.ValidRequestID(rid) {
		return rid
	}
	return s.ridPrefix + "-" + strconv.FormatUint(s.ridSeq.Add(1), 10)
}

// route registers a handler wrapped in the serving middleware: request-id
// assignment, a per-request stage trace, per-route count + latency
// histogram, per-stage histograms, structured request logging, and the
// slow-request breakdown log.
func (s *Server) route(pattern, label string, h func(http.ResponseWriter, *http.Request)) {
	st := &routeStat{
		count: s.reg.Counter("sbmlserved_http_requests_total",
			"Requests served, by route.", obs.L("route", label)),
		lat: s.reg.Histogram("sbmlserved_http_request_seconds",
			"Request latency in seconds, by route.", obs.LatencyBuckets(),
			obs.L("route", label)),
	}
	s.stats[pattern] = st
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rid := s.requestID(r)
		rw := &respWriter{ResponseWriter: w, reqID: rid, status: http.StatusOK}
		rw.Header().Set("X-Request-Id", rid)
		tr := obs.NewTrace()
		r = r.WithContext(obs.NewContext(r.Context(), tr))
		h(rw, r)
		d := time.Since(t0)
		st.count.Inc()
		st.lat.Observe(d.Seconds())
		for _, stage := range tr.StageDurations() {
			s.stages.get(stage.Name).Observe(stage.Duration.Seconds())
		}
		if s.logf != nil {
			s.logf("sbmlserved: %s %s status=%d dur=%.3fms rid=%s", r.Method, r.URL.Path, rw.status, float64(d.Nanoseconds())/1e6, rid)
		}
		if s.slowRequest > 0 && d >= s.slowRequest {
			s.slowTotal.Inc()
			if s.logf != nil {
				bd := tr.Breakdown()
				if bd == "" {
					bd = "(no stages recorded)"
				}
				s.logf("sbmlserved: SLOW %s %s status=%d dur=%.3fms rid=%s stages: %s", r.Method, r.URL.Path, rw.status, float64(d.Nanoseconds())/1e6, rid, bd)
			}
		}
	})
}

// knownStageNames enumerates every stage span the pipeline records today
// (handlers: cache_lookup/decode/parse/compile/persist; corpus:
// retrieve/score/merge/compose/simulate/check), so their histogram
// handles exist before the first request and the middleware's hot path
// is a read-only map lookup.
var knownStageNames = []string{
	"cache_lookup", "decode", "parse", "compile", "persist",
	"retrieve", "score", "merge", "compose", "simulate", "check",
}

// stageCache resolves stage names to their sbmlserved_stage_seconds
// histogram handles without going through the registry's locked getOrAdd
// per stage of every request (that per-request lock churn was the same
// code path behind the WriteText scrape race). Known stages — all of
// them, today — resolve through an immutable map built at construction:
// lock-free and allocation-free. A stage name introduced later (new
// instrumentation without this list updated) still works through the
// sync.Map slow path, registering once and then loading lock-free.
type stageCache struct {
	reg   *obs.Registry
	known map[string]*obs.Histogram
	dyn   sync.Map // string → *obs.Histogram
}

const stageHistName = "sbmlserved_stage_seconds"
const stageHistHelp = "Pipeline stage latency in seconds, by stage."

func (c *stageCache) init(reg *obs.Registry) {
	c.reg = reg
	c.known = make(map[string]*obs.Histogram, len(knownStageNames))
	for _, name := range knownStageNames {
		c.known[name] = reg.Histogram(stageHistName, stageHistHelp,
			obs.LatencyBuckets(), obs.L("stage", name))
	}
}

func (c *stageCache) get(name string) *obs.Histogram {
	if h, ok := c.known[name]; ok {
		return h
	}
	if h, ok := c.dyn.Load(name); ok {
		return h.(*obs.Histogram)
	}
	h := c.reg.Histogram(stageHistName, stageHistHelp,
		obs.LatencyBuckets(), obs.L("stage", name))
	c.dyn.Store(name, h)
	return h
}

// redirectV1 permanently redirects a legacy route to its /v1 equivalent,
// preserving the remaining path and the query string. GET/HEAD use the
// classic 301; everything else uses 308 Permanent Redirect, because
// clients rewrite a 301'd POST into a body-less GET (Go's http.Client,
// curl -L) — the redirect must preserve method and body for a legacy
// POST /search caller that follows it to keep working.
func redirectV1(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	status := http.StatusPermanentRedirect
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		status = http.StatusMovedPermanently
	}
	http.Redirect(w, r, target, status)
}

// BeginShutdown wakes in-flight replication long-polls so the drain
// window isn't spent waiting out their wait_ms. Idempotent.
func (s *Server) BeginShutdown() {
	s.closeOnce.Do(func() { close(s.closing) })
}

// beginShutdown is the test-facing alias.
func (s *Server) beginShutdown() { s.BeginShutdown() }

// cancelOnShutdown derives the request context so it is cancelled when
// graceful shutdown begins. A follower whose poll is cut this way sees a
// transient fetch error and re-requests from its durable seq — exactly
// the reconnect path it takes for any other dropped connection.
func (s *Server) cancelOnShutdown(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		go func() {
			select {
			case <-s.closing:
				cancel()
			case <-ctx.Done():
			}
		}()
		h(w, r.WithContext(ctx))
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// requestCtx derives the handler context: the request's own context (so a
// client disconnect cancels in-flight work) capped by the configured
// per-request deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return context.WithCancel(r.Context())
}

// StatsLines renders the per-endpoint timing summary logged at shutdown:
// the same count, mean, and p50/p95/p99 numbers /v1/healthz serves.
func (s *Server) StatsLines() []string {
	var out []string
	for pattern, ep := range s.endpointReport() {
		out = append(out, fmt.Sprintf("sbmlserved: %-22s %6d requests, mean %.3f ms, p50 %.3f ms, p95 %.3f ms, p99 %.3f ms",
			pattern, ep.Count, ep.MeanMs, ep.P50Ms, ep.P95Ms, ep.P99Ms))
	}
	// The pattern is the leading field of every line, so a lexical sort
	// orders the summary by route instead of by map iteration accident.
	sort.Strings(out)
	return out
}

// statsLines is the test-facing alias.
func (s *Server) statsLines() []string { return s.StatsLines() }

// endpointReport is one route's latency summary: the request count, the
// mean (kept for compatibility with pre-histogram clients), and the
// p50/p95/p99/max read from the route's histogram.
type endpointReport struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func (s *Server) endpointReport() map[string]endpointReport {
	out := make(map[string]endpointReport, len(s.stats))
	for pattern, st := range s.stats {
		h := st.lat
		out[pattern] = endpointReport{
			Count:  int64(st.count.Value()),
			MeanMs: h.Mean() * 1e3,
			P50Ms:  h.Quantile(0.50) * 1e3,
			P95Ms:  h.Quantile(0.95) * 1e3,
			P99Ms:  h.Quantile(0.99) * 1e3,
			MaxMs:  h.Max() * 1e3,
		}
	}
	return out
}

// handleMetrics serves the Prometheus text exposition of every series in
// the server's registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}

// NewStoreMetrics registers the store durability series against reg and
// returns the struct to pass as StoreOptions.Metrics, so WAL append,
// fsync, group-commit batch sizes and snapshot durations land in the same
// scrape as the HTTP series.
func NewStoreMetrics(reg *obs.Registry) *sbmlcompose.StoreMetrics {
	return &sbmlcompose.StoreMetrics{
		AppendSeconds: reg.Histogram("sbmlstore_wal_append_seconds",
			"WAL append latency in seconds (including any group-commit wait).",
			obs.LatencyBuckets()),
		FsyncSeconds: reg.Histogram("sbmlstore_wal_fsync_seconds",
			"Physical WAL fsync latency in seconds (all policies and paths).",
			obs.LatencyBuckets()),
		GroupBatchRecords: reg.Histogram("sbmlstore_group_batch_records",
			"Records acknowledged per successful group commit.",
			obs.ExponentialBuckets(1, 2, 12)),
		SnapshotSeconds: reg.Histogram("sbmlstore_snapshot_seconds",
			"Snapshot + WAL compaction duration in seconds.",
			obs.LatencyBuckets()),
	}
}

// NewReplicaMetrics registers the follower-side replication series
// against reg and returns the struct to pass as ReplicaOptions.Metrics.
func NewReplicaMetrics(reg *obs.Registry) *sbmlcompose.ReplicaMetrics {
	return &sbmlcompose.ReplicaMetrics{
		FetchSeconds: reg.Histogram("sbmlrepl_fetch_seconds",
			"Feed fetch latency in seconds for chunks that shipped records.",
			obs.LatencyBuckets()),
		VerifySeconds: reg.Histogram("sbmlrepl_verify_seconds",
			"Frame verification (CRC + decode) latency per received chunk.",
			obs.LatencyBuckets()),
		ApplySeconds: reg.Histogram("sbmlrepl_apply_seconds",
			"Parse + WAL + corpus apply latency per verified chunk.",
			obs.LatencyBuckets()),
		Reconnects: reg.Counter("sbmlrepl_reconnect_events_total",
			"Contact re-established after at least one failure (event count)."),
		SnapshotResyncs: reg.Counter("sbmlrepl_snapshot_resyncs_total",
			"Bootstraps through a full snapshot image."),
	}
}
