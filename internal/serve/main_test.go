package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sbmlcompose"
	"sbmlcompose/internal/biomodels"
)

func testServer() *Server {
	return newServer(sbmlcompose.NewCorpus(&sbmlcompose.CorpusOptions{Shards: 2, Workers: 2}))
}

func modelXML(id string, seed int64) string {
	m := biomodels.Generate(biomodels.Config{
		ID: id, Nodes: 10, Edges: 14, Seed: seed, VocabularySize: 60, Decorate: true,
	})
	return sbmlcompose.ModelToString(m)
}

func do(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var payload map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
			t.Fatalf("%s %s: non-JSON response %q", method, path, rec.Body.String())
		}
	}
	return rec, payload
}

func jsonBody(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestModelLifecycleEndpoints(t *testing.T) {
	s := testServer()

	rec, payload := do(t, s, "POST", "/v1/models", modelXML("srv_a", 100))
	if rec.Code != http.StatusCreated || payload["id"] != "srv_a" {
		t.Fatalf("POST /models: %d %v", rec.Code, payload)
	}
	// Duplicate id → 409.
	rec, _ = do(t, s, "POST", "/v1/models", modelXML("srv_a", 100))
	if rec.Code != http.StatusConflict {
		t.Fatalf("duplicate POST /models: %d", rec.Code)
	}
	// ?id= override.
	rec, payload = do(t, s, "POST", "/v1/models?id=renamed", modelXML("srv_a", 101))
	if rec.Code != http.StatusCreated || payload["id"] != "renamed" {
		t.Fatalf("POST /models?id=: %d %v", rec.Code, payload)
	}
	// Malformed body → 400.
	rec, _ = do(t, s, "POST", "/v1/models", "<not-sbml")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed POST /models: %d", rec.Code)
	}

	rec, _ = do(t, s, "DELETE", "/v1/models/renamed", "")
	if rec.Code != http.StatusNoContent {
		t.Fatalf("DELETE /models/renamed: %d", rec.Code)
	}
	rec, _ = do(t, s, "DELETE", "/v1/models/renamed", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("second DELETE: %d", rec.Code)
	}
}

func TestSearchComposeEndpoints(t *testing.T) {
	s := testServer()
	for i := 0; i < 5; i++ {
		rec, _ := do(t, s, "POST", "/v1/models", modelXML(fmt.Sprintf("corp%d", i), int64(200+i)))
		if rec.Code != http.StatusCreated {
			t.Fatalf("seed model %d: %d", i, rec.Code)
		}
	}

	query := modelXML("corp3", 203) // clone of a stored model
	rec, payload := do(t, s, "POST", "/v1/search", jsonBody(t, map[string]any{"sbml": query, "top_k": 3}))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /search: %d %v", rec.Code, payload)
	}
	hits, ok := payload["hits"].([]any)
	if !ok || len(hits) == 0 {
		t.Fatalf("search returned no hits: %v", payload)
	}
	top := hits[0].(map[string]any)
	if top["model_id"] != "corp3" {
		t.Fatalf("top hit = %v, want corp3", top["model_id"])
	}
	if _, ok := payload["took_ms"]; !ok {
		t.Fatal("search response missing took_ms")
	}

	rec, payload = do(t, s, "POST", "/v1/compose", jsonBody(t, map[string]any{"id": "corp0", "sbml": query}))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /compose: %d %v", rec.Code, payload)
	}
	merged, err := sbmlcompose.ParseModelString(payload["sbml"].(string))
	if err != nil {
		t.Fatalf("compose returned unparsable SBML: %v", err)
	}
	if err := sbmlcompose.Validate(merged); err != nil {
		t.Fatalf("composed model invalid: %v", err)
	}
	rec, _ = do(t, s, "POST", "/v1/compose", jsonBody(t, map[string]any{"id": "nope", "sbml": query}))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("compose with missing id: %d", rec.Code)
	}
	rec, _ = do(t, s, "POST", "/v1/search", `{"sbml": 42}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed search body: %d", rec.Code)
	}
}

func TestSimulateCheckHealthzEndpoints(t *testing.T) {
	s := testServer()
	m := biomodels.Generate(biomodels.Config{
		ID: "sim_m", Nodes: 8, Edges: 10, Seed: 300, VocabularySize: 50, Decorate: true,
	})
	rec, _ := do(t, s, "POST", "/v1/models", sbmlcompose.ModelToString(m))
	if rec.Code != http.StatusCreated {
		t.Fatalf("seed: %d", rec.Code)
	}

	simReq := map[string]any{"id": "sim_m", "t0": 0, "t1": 1, "step": 0.1}
	rec, payload := do(t, s, "POST", "/v1/simulate", jsonBody(t, simReq))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /simulate: %d %v", rec.Code, payload)
	}
	times := payload["times"].([]any)
	if len(times) != 11 {
		t.Fatalf("ODE trace has %d samples, want 11", len(times))
	}
	simReq["method"] = "ssa"
	simReq["seed"] = 42
	rec, _ = do(t, s, "POST", "/v1/simulate", jsonBody(t, simReq))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /simulate ssa: %d", rec.Code)
	}
	simReq["method"] = "quantum"
	rec, _ = do(t, s, "POST", "/v1/simulate", jsonBody(t, simReq))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad method: %d", rec.Code)
	}
	simReq["method"] = "ode"
	simReq["id"] = "missing"
	rec, _ = do(t, s, "POST", "/v1/simulate", jsonBody(t, simReq))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("simulate missing model: %d", rec.Code)
	}

	checkReq := map[string]any{
		"id": "sim_m", "formula": "G({" + m.Species[0].ID + " >= 0})",
		"t0": 0, "t1": 1, "step": 0.1,
	}
	rec, payload = do(t, s, "POST", "/v1/check", jsonBody(t, checkReq))
	if rec.Code != http.StatusOK || payload["satisfied"] != true {
		t.Fatalf("POST /check: %d %v", rec.Code, payload)
	}

	rec, payload = do(t, s, "GET", "/v1/healthz", "")
	if rec.Code != http.StatusOK || payload["status"] != "ok" {
		t.Fatalf("GET /healthz: %d %v", rec.Code, payload)
	}
	if payload["models"].(float64) != 1 {
		t.Fatalf("healthz models = %v, want 1", payload["models"])
	}
	endpoints := payload["endpoints"].(map[string]any)
	sim := endpoints["POST /v1/simulate"].(map[string]any)
	if sim["count"].(float64) != 4 {
		t.Fatalf("per-endpoint count for /simulate = %v, want 4", sim["count"])
	}
	if sim["mean_ms"].(float64) <= 0 {
		t.Fatal("per-endpoint mean latency not recorded")
	}
}

// TestMethodRouting pins that unregistered method/path combinations 404/405
// instead of panicking or matching the wrong handler.
func TestMethodRouting(t *testing.T) {
	s := testServer()
	for _, tc := range []struct{ method, path string }{
		{"GET", "/v1/models"},
		{"PUT", "/v1/search"},
		{"GET", "/nope"},
	} {
		req := httptest.NewRequest(tc.method, tc.path, bytes.NewReader(nil))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotFound && rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %d, want 404/405", tc.method, tc.path, rec.Code)
		}
	}
}
