package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"sbmlcompose"
	"sbmlcompose/internal/api"
	"sbmlcompose/internal/obs"
)

// --- response helpers ---

// errorResponse is the uniform JSON error body (internal/api): Code is
// machine-readable and set for context terminations ("deadline_exceeded",
// "client_closed_request"); RequestID echoes the X-Request-Id header so
// one string ties the failure a client saw to the server's log line for
// it. The type lives in internal/api so the cluster gateway answers the
// exact same shape.
type errorResponse = api.ErrorResponse

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Error bodies pick up the request id from the middleware's writer;
	// handlers never thread it explicitly.
	if er, isErr := v.(errorResponse); isErr && er.RequestID == "" {
		if rw, wrapped := w.(*respWriter); wrapped {
			er.RequestID = rw.reqID
			v = er
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeCtxError reports a context termination: 408 when the server-side
// deadline expired, 499 when the client went away (the write is then
// best-effort, but the status still lands in the endpoint stats).
// Returns false if err is not a context termination.
func writeCtxError(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusRequestTimeout, errorResponse{
			Error: "request timed out server-side: " + err.Error(),
			Code:  "deadline_exceeded",
		})
		return true
	case errors.Is(err, context.Canceled):
		writeJSON(w, statusClientClosedRequest, errorResponse{
			Error: "client closed request: " + err.Error(),
			Code:  "client_closed_request",
		})
		return true
	}
	return false
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	sp := obs.FromContext(r.Context()).Start("decode")
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// modelError reports corpus "no model" errors as 404, context
// terminations as 408/499, and everything else as 422 (the model exists
// but the operation failed on it).
func modelError(w http.ResponseWriter, err error) {
	if errors.Is(err, sbmlcompose.ErrModelNotFound) {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if writeCtxError(w, err) {
		return
	}
	writeError(w, http.StatusUnprocessableEntity, "%v", err)
}

// --- typed request/response DTOs ---

type addModelResponse struct {
	ID         string `json:"id"`
	Components int    `json:"components"`
	Models     int    `json:"models"`
}

// searchRequest/searchResponse are the /v1/search wire shapes, shared
// with the cluster gateway through internal/api: the gateway both
// normalizes the window with the same rules (pages must tile across
// partitions) and answers the same response shape (a complete gateway
// answer is byte-identical to a single node's, modulo took_ms).
type (
	searchRequest  = api.SearchRequest
	searchResponse = api.SearchResponse
)

type composeRequest struct {
	ID   string `json:"id"`
	SBML string `json:"sbml"`
}

type composeStats struct {
	Merged    int `json:"merged"`
	Added     int `json:"added"`
	Renamed   int `json:"renamed"`
	Conflicts int `json:"conflicts"`
}

type composeResponse struct {
	SBML     string       `json:"sbml"`
	Warnings []string     `json:"warnings,omitempty"`
	Stats    composeStats `json:"stats"`
}

type simulateRequest struct {
	ID        string  `json:"id"`
	Method    string  `json:"method"` // "ode" (default) or "ssa"
	T0        float64 `json:"t0"`
	T1        float64 `json:"t1"`
	Step      float64 `json:"step"`
	Seed      int64   `json:"seed"`
	Adaptive  bool    `json:"adaptive"`
	Tolerance float64 `json:"tolerance"`
}

type simulateResponse struct {
	// All three series are populated from the trace on every 200: a
	// simulation always has at least its initial time point.
	//sbml:alwayspresent filled from the trace on every success; never empty on a 200
	Names []string `json:"names"`
	//sbml:alwayspresent filled from the trace on every success; never empty on a 200
	Times []float64 `json:"times"`
	//sbml:alwayspresent filled from the trace on every success; never empty on a 200
	Values [][]float64 `json:"values"`
}

type checkRequest struct {
	ID      string  `json:"id"`
	Formula string  `json:"formula"`
	T0      float64 `json:"t0"`
	T1      float64 `json:"t1"`
	Step    float64 `json:"step"`
}

type checkResponse struct {
	//sbml:alwayspresent false is the verdict, not absence; clients key on the field existing
	Satisfied bool `json:"satisfied"`
}

type snapshotResponse struct {
	Status string                  `json:"status"`
	Store  sbmlcompose.StoreStatus `json:"store"`
}

type promoteResponse struct {
	Status         string `json:"status"`
	Role           string `json:"role"`
	LastAppliedSeq uint64 `json:"last_applied_seq"`
	Epoch          uint64 `json:"epoch,omitempty"`
	// Warning reports a promotion that succeeded but could not durably
	// record its epoch bump (the stale-primary guard is weakened until
	// the disk heals).
	Warning string `json:"warning,omitempty"`
}

type healthzResponse struct {
	Status   string  `json:"status"`
	Models   int     `json:"models"`
	InFlight int64   `json:"in_flight"`
	UptimeS  float64 `json:"uptime_s"`
	//sbml:alwayspresent always make()'d by the stats snapshot, even with zero routes hit
	Endpoints map[string]endpointReport `json:"endpoints"`
	// QueryCacheHits counts /v1/search requests answered from the raw-body
	// compiled-query cache.
	QueryCacheHits int64                    `json:"query_cache_hits"`
	Store          *sbmlcompose.StoreStatus `json:"store,omitempty"`
	// Replication health, reported on every role: a plain primary (or an
	// in-memory server) shows role "primary" with zero lag; a follower
	// shows its applied position, lag behind the primary's acknowledged
	// watermark in records and bytes, staleness ages in seconds, and the
	// reconnect count, with the full replica detail nested. The lag
	// fields freeze at their last-contact values while the primary is
	// unreachable; the age fields keep growing — they are the
	// disconnection alarm.
	Role                  string                     `json:"role"`
	LastAppliedSeq        uint64                     `json:"last_applied_seq"`
	ReplicationLagRecords uint64                     `json:"replication_lag_records"`
	ReplicationLagBytes   uint64                     `json:"replication_lag_bytes"`
	SecondsSinceLastApply float64                    `json:"seconds_since_last_apply,omitempty"`
	Reconnects            uint64                     `json:"reconnects"`
	Replica               *sbmlcompose.ReplicaStatus `json:"replica,omitempty"`
}

// --- handlers ---

func (s *Server) handleAddModel(w http.ResponseWriter, r *http.Request) {
	if s.followerMode() {
		s.writeReadOnlyError(w)
		return
	}
	sp := obs.FromContext(r.Context()).Start("parse")
	m, err := sbmlcompose.ParseModel(r.Body)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		m.ID = id
	}
	sp = obs.FromContext(r.Context()).Start("persist")
	id, err := s.corpus.Add(m)
	sp.End()
	if err != nil {
		if errors.Is(err, sbmlcompose.ErrReplicaReadOnly) {
			s.writeReadOnlyError(w)
			return
		}
		status := persistStatus(err)
		if errors.Is(err, sbmlcompose.ErrDuplicateModel) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, addModelResponse{
		ID:         id,
		Components: m.ComponentCount(),
		Models:     s.corpus.Len(),
	})
}

func (s *Server) handleRemoveModel(w http.ResponseWriter, r *http.Request) {
	if s.followerMode() {
		s.writeReadOnlyError(w)
		return
	}
	id := r.PathValue("id")
	sp := obs.FromContext(r.Context()).Start("persist")
	ok, err := s.corpus.Remove(id)
	sp.End()
	if err != nil {
		if errors.Is(err, sbmlcompose.ErrReplicaReadOnly) {
			s.writeReadOnlyError(w)
			return
		}
		writeError(w, persistStatus(err), "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "corpus: no model %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// persistStatus maps a mutation error to a status: durable-store failures
// are server faults (500), everything else is a request fault (422).
func persistStatus(err error) int {
	if errors.Is(err, sbmlcompose.ErrPersistFailed) {
		return http.StatusInternalServerError
	}
	return http.StatusUnprocessableEntity
}

// followerMode reports whether this server is currently an unpromoted
// replica. Mutation handlers check it before doing any work, so a
// follower answers every write — even one that would fail validation —
// with the same 403, leaking nothing about its (possibly stale) state.
// The store-level ErrReadOnly mapping in the handlers stays as the
// backstop for races with promotion.
func (s *Server) followerMode() bool {
	return s.replica != nil && s.replica.Status().Role == "follower"
}

// writeReadOnlyError answers a mutation attempted on a follower: 403 with
// the machine-readable "read_only" code, so clients can distinguish the
// graceful-degradation rejection from a real authorization failure and
// retry against the primary (or after promotion). Each rejection counts
// toward sbmlserved_readonly_rejections_total.
func (s *Server) writeReadOnlyError(w http.ResponseWriter) {
	s.readOnlyRejected.Inc()
	writeJSON(w, http.StatusForbidden, errorResponse{
		Error: "this node is a read-only replica; send writes to the primary or promote this node",
		Code:  "read_only",
	})
}

// setLagHeader stamps follower read responses with the replication lag in
// sequence numbers (X-Replica-Lag-Seq), the staleness bound for the data
// about to be served. Primaries and in-memory servers add nothing.
func (s *Server) setLagHeader(w http.ResponseWriter) {
	if s.replica == nil {
		return
	}
	st := s.replica.Status()
	if st.Role != "follower" {
		return
	}
	w.Header().Set("X-Replica-Lag-Seq", fmt.Sprintf("%d", st.LagRecords))
}

// handlePromote stops replication and lifts the read-only gate — the
// failover lever. Idempotent: promoting an already promoted node answers
// 200 again; a server that never was a replica answers 409.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.replica == nil {
		writeError(w, http.StatusConflict, "this server is not a replica; nothing to promote")
		return
	}
	perr := s.replica.Promote()
	st := s.replica.Status()
	if s.logf != nil {
		s.logf("sbmlserved: promoted to primary at seq %d, epoch %d (was following %s)", st.LastAppliedSeq, st.Epoch, st.PrimaryURL)
	}
	resp := promoteResponse{
		Status:         "ok",
		Role:           st.Role,
		LastAppliedSeq: st.LastAppliedSeq,
		Epoch:          st.Epoch,
	}
	if perr != nil {
		// The node is promoted and serving; only the epoch bump's
		// persistence failed. Surface it rather than failing the failover.
		resp.Warning = perr.Error()
		if s.logf != nil {
			s.logf("sbmlserved: promote: %v", perr)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.setLagHeader(w)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read request body: %v", err)
		return
	}
	req, cq, ok := s.searchQuery(r.Context(), w, body)
	if !ok {
		return
	}
	// Normalize the pagination window exactly once, after the (possibly
	// cached) decode: the same Window drives the corpus call and the
	// response echo, so the two can never disagree, and the cluster
	// gateway applies the identical function so its pages tile across
	// partitions. Disagreeing limit/top_k is a client bug, reported as
	// one rather than silently resolved.
	win, err := api.NormalizeWindow(req.TopK, req.Limit, req.Offset)
	if err != nil {
		writeError(w, http.StatusBadRequest, "search: %v", err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	t0 := time.Now()
	hits, err := s.corpus.SearchCompiledContext(ctx, cq, sbmlcompose.SearchOptions{
		TopK: win.Limit, Offset: win.Offset, Cutoff: req.Cutoff, MinScore: req.MinScore,
	})
	if err != nil {
		if writeCtxError(w, err) {
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "search: %v", err)
		return
	}
	if hits == nil {
		hits = []sbmlcompose.Hit{}
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Hits:     hits,
		Offset:   win.Offset,
		Limit:    win.Limit,
		Returned: len(hits),
		TookMs:   float64(time.Since(t0).Nanoseconds()) / 1e6,
	})
}

// searchQuery resolves a raw /v1/search body to its decoded request and
// compiled query, through the raw-body cache when one is configured. On
// a hit the body is never JSON-decoded, the SBML never parsed, the match
// keys never rederived; rankings still run fresh per request, so cached
// and uncached responses are identical. Only fully successful
// decode+parse+compile chains are cached — a body that produced a 4xx
// re-earns its error every time — and oversized bodies bypass the cache
// rather than evict a working set. On failure the response has been
// written and ok is false. Each step records a stage span (cache_lookup,
// decode, parse, compile) into the request trace.
func (s *Server) searchQuery(ctx context.Context, w http.ResponseWriter, body []byte) (req searchRequest, cq *sbmlcompose.CompiledQuery, ok bool) {
	tr := obs.FromContext(ctx)
	cacheable := s.searchCache != nil && len(body) <= searchCacheMaxBody
	if cacheable {
		sp := tr.Start("cache_lookup")
		hit, found := s.searchCache.Get(string(body))
		sp.End()
		if found {
			s.searchCacheHits.Add(1)
			return hit.req, hit.cq, true
		}
	}
	sp := tr.Start("decode")
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return req, nil, false
	}
	sp = tr.Start("parse")
	query, err := sbmlcompose.ParseModelString(req.SBML)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse query: %v", err)
		return req, nil, false
	}
	sp = tr.Start("compile")
	cq, err = s.corpus.CompileQuery(query)
	sp.End()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "search: %v", err)
		return req, nil, false
	}
	if cacheable {
		s.searchCache.Put(string(body), cachedSearch{req: req, cq: cq})
	}
	return req, cq, true
}

func (s *Server) handleCompose(w http.ResponseWriter, r *http.Request) {
	s.setLagHeader(w)
	var req composeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sp := obs.FromContext(r.Context()).Start("parse")
	query, err := sbmlcompose.ParseModelString(req.SBML)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse query: %v", err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, err := s.corpus.ComposeWithContext(ctx, req.ID, query)
	if err != nil {
		modelError(w, err)
		return
	}
	warnings := make([]string, len(res.Warnings))
	for i, warn := range res.Warnings {
		warnings[i] = warn.String()
	}
	writeJSON(w, http.StatusOK, composeResponse{
		SBML:     sbmlcompose.ModelToString(res.Model),
		Warnings: warnings,
		Stats: composeStats{
			Merged:    res.Stats.Merged,
			Added:     res.Stats.Added,
			Renamed:   res.Stats.Renamed,
			Conflicts: res.Stats.Conflicts,
		},
	})
}

func (r simulateRequest) simOptions() sbmlcompose.SimOptions {
	return sbmlcompose.SimOptions{
		T0: r.T0, T1: r.T1, Step: r.Step, Seed: r.Seed,
		Adaptive: r.Adaptive, Tolerance: r.Tolerance,
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.setLagHeader(w)
	var req simulateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var (
		tr  *sbmlcompose.Trace
		err error
	)
	switch req.Method {
	case "", "ode":
		tr, err = s.corpus.SimulateODEContext(ctx, req.ID, req.simOptions())
	case "ssa":
		tr, err = s.corpus.SimulateSSAContext(ctx, req.ID, req.simOptions())
	default:
		writeError(w, http.StatusBadRequest, "method must be \"ode\" or \"ssa\"")
		return
	}
	if err != nil {
		modelError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, simulateResponse{
		Names:  tr.Names,
		Times:  tr.Times,
		Values: tr.Values,
	})
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	s.setLagHeader(w)
	var req checkRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	sat, err := s.corpus.CheckPropertyContext(ctx, req.ID, req.Formula, sbmlcompose.SimOptions{
		T0: req.T0, T1: req.T1, Step: req.Step,
	})
	if err != nil {
		modelError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, checkResponse{Satisfied: sat})
}

// handleSnapshot forces a snapshot + WAL compaction: the admin lever for
// bounding recovery time before a planned restart. Failures are server
// faults (500) carrying the store error detail. The snapshot honors the
// request context too — an impatient admin's Ctrl-C abandons the dump
// between models rather than writing a snapshot nobody waits for.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusConflict, "server is running without -data; nothing to snapshot")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if err := s.store.SnapshotContext(ctx); err != nil {
		if writeCtxError(w, err) {
			return
		}
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{Status: "ok", Store: s.store.Status()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	payload := healthzResponse{
		Status:         "ok",
		Models:         s.corpus.Len(),
		InFlight:       s.inFlight.Load(),
		UptimeS:        time.Since(s.start).Seconds(),
		Endpoints:      s.endpointReport(),
		QueryCacheHits: s.searchCacheHits.Load(),
		Role:           "primary",
	}
	if s.store != nil {
		st := s.store.Status()
		payload.Store = &st
		payload.LastAppliedSeq = st.LastSeq
	}
	if s.replica != nil {
		rs := s.replica.Status()
		payload.Role = rs.Role
		payload.LastAppliedSeq = rs.LastAppliedSeq
		payload.ReplicationLagRecords = rs.LagRecords
		payload.ReplicationLagBytes = rs.LagBytes
		payload.SecondsSinceLastApply = rs.SecondsSinceLastApply
		payload.Reconnects = rs.Reconnects
		payload.Replica = &rs
	}
	writeJSON(w, http.StatusOK, payload)
}
